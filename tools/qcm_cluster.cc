// qcm_cluster: launcher for the real multi-process deployment.
//
// Spawns N qcm_worker processes (one per machine), distributes the run
// configuration over the wire handshake, masters load balancing and
// distributed termination detection from the coordinator side, then
// merges every rank's EngineReport and raw candidate results, applies
// the maximality postprocessing once over the union, and prints the
// canonical result digest -- which must be bit-identical to a
// single-process `qcm_mine` run on the same input (asserted by
// tests/cluster_e2e_test.cc and tools/check_smoke.sh).
//
// Usage:
//   qcm_cluster (--input PATH | --gen-planted SPEC) --workers N
//               [--threads N] [--gamma F] [--min-size N] [--tau-split N]
//               [--tau-time F] [--mode none|size|time]
//               [--cache-capacity N] [--cache-policy lru|clock|tinylfu]
//               [--pull-batch N] [--net-latency F] [--net-latency-ticks N]
//               [--net-coalesce-bytes N] [--net-linger-usec N]
//               [--prefetch] [--prefetch-limit N] [--steal-rtt-ref F]
//               [--steal-batch-factor N]
//               [--seed N] [--output PATH] [--no-filter] [--stats]
//               [--stats-json PATH] [--worker-bin PATH] [--log-dir DIR]
//
// Worker stdout/stderr are redirected to <log-dir>/worker<rank>.log
// (default: a fresh temp dir, path printed) so a crashed rank's last
// words are always on disk for CI to upload.

#include <libgen.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gthinker/metrics.h"
#include "net/coordinator.h"
#include "net/job_spec.h"
#include "quick/maximality_filter.h"
#include "util/serde.h"

namespace {

using namespace qcm;

struct Args {
  ClusterJobSpec spec;
  int workers = 3;
  std::string output;
  bool no_filter = false;
  bool stats = false;
  std::string stats_json;
  std::string worker_bin;
  std::string log_dir;
  std::string cache_policy = "lru";
  std::string mode = "time";
  /// --net-coalesce-bytes given without an explicit --net-linger-usec:
  /// the linger falls back to the classic ~100 us bound instead of
  /// tripping the linger-without-coalescing validation.
  bool linger_defaulted = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: qcm_cluster (--input PATH | --gen-planted SPEC) "
               "--workers N [--threads N]\n"
               "                   [mining/engine flags, see file header] "
               "[--output PATH]\n"
               "                   [--worker-bin PATH] [--log-dir DIR]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  EngineConfig& config = args->spec.config;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (a == "--input") {
      if ((v = next("--input")) == nullptr) return false;
      args->spec.input = v;
    } else if (a == "--gen-planted") {
      if ((v = next("--gen-planted")) == nullptr) return false;
      args->spec.gen_planted = v;
    } else if (a == "--workers") {
      if ((v = next("--workers")) == nullptr) return false;
      args->workers = std::atoi(v);
    } else if (a == "--threads") {
      if ((v = next("--threads")) == nullptr) return false;
      config.threads_per_machine = std::atoi(v);
    } else if (a == "--gamma") {
      if ((v = next("--gamma")) == nullptr) return false;
      config.mining.gamma = std::atof(v);
    } else if (a == "--min-size") {
      if ((v = next("--min-size")) == nullptr) return false;
      config.mining.min_size = static_cast<uint32_t>(std::atoi(v));
    } else if (a == "--tau-split") {
      if ((v = next("--tau-split")) == nullptr) return false;
      config.tau_split = static_cast<uint32_t>(std::atoi(v));
    } else if (a == "--tau-time") {
      if ((v = next("--tau-time")) == nullptr) return false;
      config.tau_time = std::atof(v);
    } else if (a == "--mode") {
      if ((v = next("--mode")) == nullptr) return false;
      args->mode = v;
    } else if (a == "--cache-capacity") {
      if ((v = next("--cache-capacity")) == nullptr) return false;
      config.vertex_cache_capacity = static_cast<size_t>(std::atoll(v));
    } else if (a == "--cache-policy") {
      if ((v = next("--cache-policy")) == nullptr) return false;
      args->cache_policy = v;
    } else if (a == "--pull-batch") {
      if ((v = next("--pull-batch")) == nullptr) return false;
      config.max_pull_batch = static_cast<size_t>(std::atoll(v));
    } else if (a == "--net-latency") {
      if ((v = next("--net-latency")) == nullptr) return false;
      config.net_latency_sec = std::atof(v);
      if (config.net_latency_sec < 0) {
        std::fprintf(stderr, "--net-latency must be >= 0\n");
        return false;
      }
    } else if (a == "--net-latency-ticks") {
      if ((v = next("--net-latency-ticks")) == nullptr) return false;
      const long long ticks = std::atoll(v);
      if (ticks < 0) {
        // A blind cast would wrap to a near-infinite delay and hang the
        // cluster; reject loudly instead.
        std::fprintf(stderr, "--net-latency-ticks must be >= 0\n");
        return false;
      }
      config.net_latency_ticks = static_cast<uint64_t>(ticks);
    } else if (a == "--net-coalesce-bytes") {
      if ((v = next("--net-coalesce-bytes")) == nullptr) return false;
      config.net_coalesce_bytes = std::atoll(v);
      args->linger_defaulted = config.net_linger_usec == 0;
    } else if (a == "--net-linger-usec") {
      if ((v = next("--net-linger-usec")) == nullptr) return false;
      config.net_linger_usec = std::atoll(v);
      args->linger_defaulted = false;
    } else if (a == "--prefetch") {
      config.spawn_prefetch = true;
    } else if (a == "--prefetch-limit") {
      if ((v = next("--prefetch-limit")) == nullptr) return false;
      const long long limit = std::atoll(v);
      if (limit < 0) {
        std::fprintf(stderr, "--prefetch-limit must be >= 0\n");
        return false;
      }
      config.prefetch_limit = static_cast<size_t>(limit);
    } else if (a == "--steal-rtt-ref") {
      if ((v = next("--steal-rtt-ref")) == nullptr) return false;
      config.steal_rtt_reference_sec = std::atof(v);
    } else if (a == "--steal-batch-factor") {
      if ((v = next("--steal-batch-factor")) == nullptr) return false;
      const long long factor = std::atoll(v);
      if (factor < 1) {
        std::fprintf(stderr, "--steal-batch-factor must be >= 1\n");
        return false;
      }
      config.steal_max_batch_factor = static_cast<uint64_t>(factor);
    } else if (a == "--seed") {
      if ((v = next("--seed")) == nullptr) return false;
      args->spec.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (a == "--output") {
      if ((v = next("--output")) == nullptr) return false;
      args->output = v;
    } else if (a == "--no-filter") {
      args->no_filter = true;
    } else if (a == "--stats") {
      args->stats = true;
    } else if (a == "--stats-json") {
      if ((v = next("--stats-json")) == nullptr) return false;
      args->stats_json = v;
    } else if (a == "--worker-bin") {
      if ((v = next("--worker-bin")) == nullptr) return false;
      args->worker_bin = v;
    } else if (a == "--log-dir") {
      if ((v = next("--log-dir")) == nullptr) return false;
      args->log_dir = v;
    } else if (a == "--help" || a == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  if (args->spec.input.empty() == args->spec.gen_planted.empty()) {
    std::fprintf(stderr,
                 "exactly one of --input / --gen-planted is required\n");
    return false;
  }
  if (args->workers < 1 || args->workers > 64) {
    std::fprintf(stderr, "--workers must be in [1, 64]\n");
    return false;
  }
  Status policy = ParseCachePolicy(args->cache_policy,
                                   &config.cache_policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "--cache-policy: %s\n", policy.ToString().c_str());
    return false;
  }
  if (args->linger_defaulted && config.net_coalesce_bytes > 0) {
    config.net_linger_usec = 100;
  }
  // Surface contradictory settings here with the validator's file:line
  // message instead of shipping them to every worker first.
  Status valid = config.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 valid.ToString().c_str());
    return false;
  }
  if (args->mode == "none") {
    config.mode = DecomposeMode::kNone;
  } else if (args->mode == "size") {
    config.mode = DecomposeMode::kSizeThreshold;
  } else if (args->mode == "time") {
    config.mode = DecomposeMode::kTimeDelayed;
  } else {
    std::fprintf(stderr, "unknown --mode %s\n", args->mode.c_str());
    return false;
  }
  config.num_machines = args->workers;
  return true;
}

/// Default worker binary: qcm_worker next to this executable.
std::string DefaultWorkerBin() {
  char buf[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "./qcm_worker";
  buf[n] = '\0';
  return std::string(::dirname(buf)) + "/qcm_worker";
}

struct WorkerProcess {
  pid_t pid = -1;
  std::string log_path;
  bool reaped = false;
  int wstatus = 0;
};

void KillAll(std::vector<WorkerProcess>* workers) {
  for (WorkerProcess& w : *workers) {
    if (w.pid > 0 && !w.reaped) ::kill(w.pid, SIGKILL);
  }
}

void PrintLogTails(const std::vector<WorkerProcess>& workers) {
  for (const WorkerProcess& w : workers) {
    std::fprintf(stderr, "---- %s ----\n", w.log_path.c_str());
    if (FILE* f = std::fopen(w.log_path.c_str(), "r")) {
      // Last 2 KiB is plenty for a crash message.
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      std::fseek(f, size > 2048 ? size - 2048 : 0, SEEK_SET);
      char buf[2049];
      const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
      buf[n] = '\0';
      std::fputs(buf, stderr);
      std::fclose(f);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  const std::string worker_bin =
      args.worker_bin.empty() ? DefaultWorkerBin() : args.worker_bin;
  if (::access(worker_bin.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "worker binary not executable: %s\n",
                 worker_bin.c_str());
    return 2;
  }
  std::string log_dir = args.log_dir;
  if (log_dir.empty()) {
    char templ[] = "/tmp/qcm_cluster_XXXXXX";
    char* dir = ::mkdtemp(templ);
    if (dir == nullptr) {
      std::fprintf(stderr, "cannot create log directory\n");
      return 1;
    }
    log_dir = dir;
  } else {
    ::mkdir(log_dir.c_str(), 0755);
  }

  // Bind the control-plane listener before spawning anyone.
  CoordinatorConfig coord_config;
  coord_config.world_size = args.workers;
  coord_config.config_blob = EncodeJobSpec(args.spec);
  coord_config.steal_period_sec =
      args.spec.config.enable_stealing && args.workers >= 2
          ? args.spec.config.steal_period_sec
          : 0.0;
  coord_config.steal_batch_cap = args.spec.config.batch_size;
  coord_config.steal_rtt_reference_sec =
      args.spec.config.steal_rtt_reference_sec;
  coord_config.steal_max_batch_factor =
      args.spec.config.steal_max_batch_factor;
  auto listening = Coordinator::Listen(std::move(coord_config));
  if (!listening.ok()) {
    std::fprintf(stderr, "coordinator listen failed: %s\n",
                 listening.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Coordinator> coordinator = std::move(listening).value();
  std::fprintf(stderr,
               "qcm_cluster: coordinator on 127.0.0.1:%u, spawning %d "
               "workers (logs in %s)\n",
               coordinator->port(), args.workers, log_dir.c_str());

  // Spawn one worker process per machine, logs redirected per rank.
  const std::string port_str = std::to_string(coordinator->port());
  std::vector<WorkerProcess> workers(args.workers);
  for (int i = 0; i < args.workers; ++i) {
    workers[i].log_path = log_dir + "/worker" + std::to_string(i) + ".log";
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork failed: %s\n", std::strerror(errno));
      KillAll(&workers);
      return 1;
    }
    if (pid == 0) {
      if (FILE* log = std::fopen(workers[i].log_path.c_str(), "w")) {
        ::dup2(::fileno(log), STDOUT_FILENO);
        ::dup2(::fileno(log), STDERR_FILENO);
      }
      ::execl(worker_bin.c_str(), worker_bin.c_str(), "--coordinator-port",
              port_str.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "execl %s failed: %s\n", worker_bin.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    workers[i].pid = pid;
  }

  // Child watchdog: a worker that dies mid-run (or before connecting)
  // must fail the whole run promptly, not after a network timeout.
  std::atomic<bool> run_done{false};
  std::thread watchdog([&] {
    while (!run_done.load()) {
      for (size_t i = 0; i < workers.size(); ++i) {
        WorkerProcess& w = workers[i];
        if (w.pid <= 0 || w.reaped) continue;
        int wstatus = 0;
        if (::waitpid(w.pid, &wstatus, WNOHANG) == w.pid) {
          w.reaped = true;
          w.wstatus = wstatus;
          if (!(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)) {
            coordinator->Abort(
                "worker process for connection slot " + std::to_string(i) +
                " died (" +
                (WIFSIGNALED(wstatus)
                     ? "signal " + std::to_string(WTERMSIG(wstatus))
                     : "status " + std::to_string(WEXITSTATUS(wstatus))) +
                ")");
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // Handshake, then drive the run to global termination.
  Status run_status = coordinator->RunHandshake();
  std::vector<std::string> report_blobs;
  if (run_status.ok()) {
    auto reports = coordinator->RunToCompletion();
    run_status = reports.status();
    if (reports.ok()) report_blobs = std::move(reports).value();
  }
  const uint64_t steal_commands = coordinator->steal_commands_issued();
  run_done.store(true);
  watchdog.join();
  coordinator->Close();

  // Reap every worker; any nonzero exit fails the run.
  bool workers_ok = true;
  for (int i = 0; i < args.workers; ++i) {
    WorkerProcess& w = workers[i];
    if (!w.reaped) {
      if (!run_status.ok()) ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, &w.wstatus, 0);
      w.reaped = true;
    }
    const bool clean = WIFEXITED(w.wstatus) && WEXITSTATUS(w.wstatus) == 0;
    if (!clean && run_status.ok()) {
      std::fprintf(stderr, "qcm_cluster: rank %d exited abnormally (%s)\n",
                   i,
                   WIFSIGNALED(w.wstatus)
                       ? ("signal " + std::to_string(WTERMSIG(w.wstatus)))
                             .c_str()
                       : ("status " +
                          std::to_string(WEXITSTATUS(w.wstatus)))
                             .c_str());
      workers_ok = false;
    }
  }
  if (!run_status.ok() || !workers_ok) {
    std::fprintf(stderr, "qcm_cluster: FAILED -- %s\n",
                 run_status.ok() ? "worker exit failure"
                                 : run_status.ToString().c_str());
    PrintLogTails(workers);
    return 1;
  }

  // Merge the per-rank reports and postprocess the union of candidates.
  std::vector<EngineReport> rank_reports(report_blobs.size());
  for (size_t r = 0; r < report_blobs.size(); ++r) {
    Decoder dec(report_blobs[r]);
    Status s = DecodeEngineReport(&dec, &rank_reports[r]);
    if (!s.ok()) {
      std::fprintf(stderr, "qcm_cluster: corrupt report from rank %zu: %s\n",
                   r, s.ToString().c_str());
      return 1;
    }
  }
  EngineReport merged = MergeEngineReports(rank_reports);
  const size_t raw_candidates = merged.results.size();
  std::vector<VertexSet> results =
      args.no_filter ? std::move(merged.results)
                     : FilterMaximal(std::move(merged.results));

  std::fprintf(stderr, "%zu %s quasi-cliques in %.3f s\n", results.size(),
               args.no_filter ? "candidate" : "maximal",
               merged.wall_seconds);
  // Canonical order + digest + output file, shared with qcm_mine so the
  // digest-parity gate compares one implementation against itself.
  auto digest = EmitCanonicalResults(&results, args.output);
  if (!digest.ok()) {
    std::fprintf(stderr, "%s\n", digest.status().ToString().c_str());
    return 1;
  }
  if (args.stats) {
    std::fprintf(
        stderr,
        "cluster: %d workers, %llu tasks, %llu stolen (%llu steal "
        "commands), %llu pulled vertices, %llu raw candidates\n",
        args.workers,
        static_cast<unsigned long long>(merged.counters.tasks_completed),
        static_cast<unsigned long long>(merged.counters.stolen_tasks),
        static_cast<unsigned long long>(steal_commands),
        static_cast<unsigned long long>(merged.counters.pulled_vertices),
        static_cast<unsigned long long>(raw_candidates));
  }

  if (!args.stats_json.empty()) {
    // One JSON object per rank plus the merged totals, so CI can chart
    // per-rank balance without re-deriving it.
    std::string json = "{\n  \"ranks\": [\n";
    for (size_t r = 0; r < rank_reports.size(); ++r) {
      json += EngineReportJson(rank_reports[r]);
      if (r + 1 < rank_reports.size()) json += ",";
      json += "\n";
    }
    json += "  ],\n  \"merged\": " + EngineReportJson(merged) + "}\n";
    FILE* f = args.stats_json == "-"
                  ? stdout
                  : std::fopen(args.stats_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   args.stats_json.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    if (f != stdout) std::fclose(f);
  }
  return 0;
}
