// qcm_cluster: launcher for the real multi-process deployment.
//
// Spawns N qcm_worker processes (one per machine), distributes the run
// configuration over the wire handshake, masters load balancing,
// distributed termination detection, and rank recovery from the
// coordinator side, then merges every rank's EngineReport and raw
// candidate results, applies the maximality postprocessing once over the
// union, and prints the canonical result digest -- which must be
// bit-identical to a single-process `qcm_mine` run on the same input
// (asserted by tests/cluster_e2e_test.cc and tools/check_smoke.sh), even
// when a worker is killed mid-run and recovered from its checkpoint.
//
// Usage:
//   qcm_cluster (--input PATH | --gen-planted SPEC) --workers N
//               [--threads N] [--gamma F] [--min-size N] [--tau-split N]
//               [--tau-time F] [--mode none|size|time]
//               [--cache-capacity N] [--cache-policy lru|clock|tinylfu]
//               [--pull-batch N] [--net-latency F] [--net-latency-ticks N]
//               [--net-coalesce-bytes N] [--net-linger-usec N]
//               [--prefetch] [--prefetch-limit N] [--steal-rtt-ref F]
//               [--steal-batch-factor N] [--dense-threshold N]
//               [--heartbeat-usec N] [--checkpoint-interval F]
//               [--checkpoint-dir DIR] [--max-rank-restarts N]
//               [--seed N] [--output PATH] [--no-filter] [--stats]
//               [--stats-json PATH] [--worker-bin PATH] [--log-dir DIR]
//               [--trace-out PATH] [--trace-buffer-kb N]
//               [--stats-interval-ms N] [--log-level L]
//               [--snapshot PATH.qcsr] [--no-snapshot]
//               [--graph-memory-budget BYTES] [--graph-page-size BYTES]
//
// Graph distribution: by default the launcher packs the input into a
// .qcsr snapshot ONCE (<log-dir>/graph.qcsr) and ships only the path;
// workers mmap it and fault in just their partition's pages, so no rank
// ever materializes the full graph. --snapshot reuses a qcm_pack output,
// --no-snapshot restores the legacy per-rank rebuild, and
// --graph-memory-budget caps each rank's resident adjacency bytes
// (evicted pages refault on demand -- out-of-core mining).
//
// --trace-out records one MERGED Chrome trace-event timeline of the whole
// cluster (launcher recovery phases + every rank's spans + kStats counter
// tracks; pid = rank). Workers write <path>.rank<R>.jsonl fragments which
// the launcher stitches into <path> after the run and deletes. While the
// run is live, the kStats stream also drives a one-line telemetry ticker
// on stderr (cadence --stats-interval-ms; 0 disables both).
// --log-level sets the launcher's level; workers inherit QCM_LOG_LEVEL
// from the environment.
//
// Worker stdout/stderr are redirected to <log-dir>/worker<rank>.log
// (a replacement incarnation logs to worker<rank>.r<restart>.log so the
// dead incarnation's last words survive; default log dir: a fresh temp
// dir, path printed) so a crashed rank's story is always on disk for CI
// to upload.
//
// Fault-injection hook (CI smoke): QCM_SMOKE_KILL_RANK=<r> makes the
// launcher SIGKILL rank r's worker once it verifiably holds pending
// work, exercising the detection -> kPeerDown -> relaunch -> checkpoint
// replay -> kPeerUp recovery path end to end. The final digest must be
// identical to an uninjected run.

#include <libgen.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/csr_snapshot.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "gthinker/metrics.h"
#include "net/coordinator.h"
#include "net/job_spec.h"
#include "quick/maximality_filter.h"
#include "util/logging.h"
#include "util/mem.h"
#include "util/serde.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

using namespace qcm;

struct Args {
  ClusterJobSpec spec;
  int workers = 3;
  std::string output;
  /// Pre-packed .qcsr to ship to workers (skips the launcher pack step).
  std::string snapshot;
  /// Legacy bring-up: every rank re-parses / regenerates the full graph.
  bool no_snapshot = false;
  bool no_filter = false;
  bool stats = false;
  std::string stats_json;
  std::string worker_bin;
  std::string log_dir;
  std::string checkpoint_dir;
  int max_rank_restarts = 2;
  std::string cache_policy = "lru";
  std::string mode = "time";
  /// --net-coalesce-bytes given without an explicit --net-linger-usec:
  /// the linger falls back to the classic ~100 us bound instead of
  /// tripping the linger-without-coalescing validation.
  bool linger_defaulted = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: qcm_cluster (--input PATH | --gen-planted SPEC) "
               "--workers N [--threads N]\n"
               "                   [mining/engine flags, see file header] "
               "[--output PATH]\n"
               "                   [--heartbeat-usec N] "
               "[--checkpoint-interval F] [--checkpoint-dir DIR]\n"
               "                   [--max-rank-restarts N] "
               "[--worker-bin PATH] [--log-dir DIR]\n"
               "                   [--snapshot PATH.qcsr] [--no-snapshot] "
               "[--graph-memory-budget BYTES]\n"
               "                   [--graph-page-size BYTES]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  EngineConfig& config = args->spec.config;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (a == "--input") {
      if ((v = next("--input")) == nullptr) return false;
      args->spec.input = v;
    } else if (a == "--gen-planted") {
      if ((v = next("--gen-planted")) == nullptr) return false;
      args->spec.gen_planted = v;
    } else if (a == "--workers") {
      if ((v = next("--workers")) == nullptr) return false;
      args->workers = std::atoi(v);
    } else if (a == "--threads") {
      if ((v = next("--threads")) == nullptr) return false;
      config.threads_per_machine = std::atoi(v);
    } else if (a == "--gamma") {
      if ((v = next("--gamma")) == nullptr) return false;
      config.mining.gamma = std::atof(v);
    } else if (a == "--min-size") {
      if ((v = next("--min-size")) == nullptr) return false;
      config.mining.min_size = static_cast<uint32_t>(std::atoi(v));
    } else if (a == "--dense-threshold") {
      if ((v = next("--dense-threshold")) == nullptr) return false;
      const long long threshold = std::atoll(v);
      if (threshold < 0) {
        std::fprintf(stderr,
                     "--dense-threshold must be >= 0 (0 disables the dense "
                     "bitset kernels)\n");
        return false;
      }
      config.mining.dense_threshold = threshold;
    } else if (a == "--tau-split") {
      if ((v = next("--tau-split")) == nullptr) return false;
      config.tau_split = static_cast<uint32_t>(std::atoi(v));
    } else if (a == "--tau-time") {
      if ((v = next("--tau-time")) == nullptr) return false;
      config.tau_time = std::atof(v);
    } else if (a == "--mode") {
      if ((v = next("--mode")) == nullptr) return false;
      args->mode = v;
    } else if (a == "--cache-capacity") {
      if ((v = next("--cache-capacity")) == nullptr) return false;
      config.vertex_cache_capacity = static_cast<size_t>(std::atoll(v));
    } else if (a == "--cache-policy") {
      if ((v = next("--cache-policy")) == nullptr) return false;
      args->cache_policy = v;
    } else if (a == "--pull-batch") {
      if ((v = next("--pull-batch")) == nullptr) return false;
      config.max_pull_batch = static_cast<size_t>(std::atoll(v));
    } else if (a == "--net-latency") {
      if ((v = next("--net-latency")) == nullptr) return false;
      config.net_latency_sec = std::atof(v);
      if (config.net_latency_sec < 0) {
        std::fprintf(stderr, "--net-latency must be >= 0\n");
        return false;
      }
    } else if (a == "--net-latency-ticks") {
      if ((v = next("--net-latency-ticks")) == nullptr) return false;
      const long long ticks = std::atoll(v);
      if (ticks < 0) {
        // A blind cast would wrap to a near-infinite delay and hang the
        // cluster; reject loudly instead.
        std::fprintf(stderr, "--net-latency-ticks must be >= 0\n");
        return false;
      }
      config.net_latency_ticks = static_cast<uint64_t>(ticks);
    } else if (a == "--net-coalesce-bytes") {
      if ((v = next("--net-coalesce-bytes")) == nullptr) return false;
      config.net_coalesce_bytes = std::atoll(v);
      args->linger_defaulted = config.net_linger_usec == 0;
    } else if (a == "--net-linger-usec") {
      if ((v = next("--net-linger-usec")) == nullptr) return false;
      config.net_linger_usec = std::atoll(v);
      args->linger_defaulted = false;
    } else if (a == "--prefetch") {
      config.spawn_prefetch = true;
    } else if (a == "--prefetch-limit") {
      if ((v = next("--prefetch-limit")) == nullptr) return false;
      const long long limit = std::atoll(v);
      if (limit < 0) {
        std::fprintf(stderr, "--prefetch-limit must be >= 0\n");
        return false;
      }
      config.prefetch_limit = static_cast<size_t>(limit);
    } else if (a == "--steal-rtt-ref") {
      if ((v = next("--steal-rtt-ref")) == nullptr) return false;
      config.steal_rtt_reference_sec = std::atof(v);
    } else if (a == "--steal-batch-factor") {
      if ((v = next("--steal-batch-factor")) == nullptr) return false;
      const long long factor = std::atoll(v);
      if (factor < 1) {
        std::fprintf(stderr, "--steal-batch-factor must be >= 1\n");
        return false;
      }
      config.steal_max_batch_factor = static_cast<uint64_t>(factor);
    } else if (a == "--heartbeat-usec") {
      if ((v = next("--heartbeat-usec")) == nullptr) return false;
      const long long usec = std::atoll(v);
      if (usec < 0) {
        std::fprintf(stderr, "--heartbeat-usec must be >= 0\n");
        return false;
      }
      config.heartbeat_usec = usec;
    } else if (a == "--checkpoint-interval") {
      if ((v = next("--checkpoint-interval")) == nullptr) return false;
      config.checkpoint_interval_sec = std::atof(v);
      if (config.checkpoint_interval_sec <= 0) {
        std::fprintf(stderr, "--checkpoint-interval must be > 0\n");
        return false;
      }
    } else if (a == "--checkpoint-dir") {
      if ((v = next("--checkpoint-dir")) == nullptr) return false;
      args->checkpoint_dir = v;
    } else if (a == "--max-rank-restarts") {
      if ((v = next("--max-rank-restarts")) == nullptr) return false;
      args->max_rank_restarts = std::atoi(v);
      if (args->max_rank_restarts < 0) {
        std::fprintf(stderr, "--max-rank-restarts must be >= 0\n");
        return false;
      }
    } else if (a == "--snapshot") {
      if ((v = next("--snapshot")) == nullptr) return false;
      args->snapshot = v;
    } else if (a == "--no-snapshot") {
      args->no_snapshot = true;
    } else if (a == "--graph-memory-budget") {
      if ((v = next("--graph-memory-budget")) == nullptr) return false;
      config.graph_memory_budget = std::atoll(v);
    } else if (a == "--graph-page-size") {
      if ((v = next("--graph-page-size")) == nullptr) return false;
      config.graph_page_size = std::atoll(v);
    } else if (a == "--seed") {
      if ((v = next("--seed")) == nullptr) return false;
      args->spec.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (a == "--output") {
      if ((v = next("--output")) == nullptr) return false;
      args->output = v;
    } else if (a == "--no-filter") {
      args->no_filter = true;
    } else if (a == "--stats") {
      args->stats = true;
    } else if (a == "--stats-json") {
      if ((v = next("--stats-json")) == nullptr) return false;
      args->stats_json = v;
    } else if (a == "--trace-out") {
      if ((v = next("--trace-out")) == nullptr) return false;
      config.trace_out = v;
    } else if (a == "--trace-buffer-kb") {
      if ((v = next("--trace-buffer-kb")) == nullptr) return false;
      config.trace_buffer_kb = std::atoll(v);
    } else if (a == "--stats-interval-ms") {
      if ((v = next("--stats-interval-ms")) == nullptr) return false;
      config.stats_interval_ms = std::atoll(v);
    } else if (a == "--log-level") {
      if ((v = next("--log-level")) == nullptr) return false;
      LogLevel level;
      if (!ParseLogLevel(v, &level)) {
        std::fprintf(stderr, "unknown --log-level %s\n", v);
        return false;
      }
      SetLogLevel(level);
    } else if (a == "--worker-bin") {
      if ((v = next("--worker-bin")) == nullptr) return false;
      args->worker_bin = v;
    } else if (a == "--log-dir") {
      if ((v = next("--log-dir")) == nullptr) return false;
      args->log_dir = v;
    } else if (a == "--help" || a == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  if (args->spec.input.empty() == args->spec.gen_planted.empty()) {
    std::fprintf(stderr,
                 "exactly one of --input / --gen-planted is required\n");
    return false;
  }
  if (args->workers < 1 || args->workers > 64) {
    std::fprintf(stderr, "--workers must be in [1, 64]\n");
    return false;
  }
  Status policy = ParseCachePolicy(args->cache_policy,
                                   &config.cache_policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "--cache-policy: %s\n", policy.ToString().c_str());
    return false;
  }
  if (args->linger_defaulted && config.net_coalesce_bytes > 0) {
    config.net_linger_usec = 100;
  }
  if (!args->snapshot.empty() && args->no_snapshot) {
    std::fprintf(stderr, "--snapshot and --no-snapshot are contradictory\n");
    return false;
  }
  if (args->no_snapshot && config.graph_memory_budget > 0) {
    std::fprintf(stderr,
                 "--graph-memory-budget needs a snapshot-backed run; drop "
                 "--no-snapshot\n");
    return false;
  }
  // NOTE: config.Validate() runs in main() AFTER the launcher pack step
  // fills in config.graph_snapshot -- validating here would flag the
  // budget-without-snapshot contradiction on every budgeted run.
  if (args->mode == "none") {
    config.mode = DecomposeMode::kNone;
  } else if (args->mode == "size") {
    config.mode = DecomposeMode::kSizeThreshold;
  } else if (args->mode == "time") {
    config.mode = DecomposeMode::kTimeDelayed;
  } else {
    std::fprintf(stderr, "unknown --mode %s\n", args->mode.c_str());
    return false;
  }
  config.num_machines = args->workers;
  return true;
}

/// Default worker binary: qcm_worker next to this executable.
std::string DefaultWorkerBin() {
  char buf[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "./qcm_worker";
  buf[n] = '\0';
  return std::string(::dirname(buf)) + "/qcm_worker";
}

struct WorkerProcess {
  pid_t pid = -1;
  std::string log_path;
  bool reaped = false;
  int wstatus = 0;
  /// Replacement incarnations spawned for this rank so far.
  int restarts = 0;
};

void KillAll(std::vector<WorkerProcess>* workers) {
  for (WorkerProcess& w : *workers) {
    if (w.pid > 0 && !w.reaped) ::kill(w.pid, SIGKILL);
  }
}

void PrintLogTails(const std::vector<WorkerProcess>& workers) {
  for (const WorkerProcess& w : workers) {
    std::fprintf(stderr, "---- %s ----\n", w.log_path.c_str());
    if (FILE* f = std::fopen(w.log_path.c_str(), "r")) {
      // Last 2 KiB is plenty for a crash message.
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      std::fseek(f, size > 2048 ? size - 2048 : 0, SEEK_SET);
      char buf[2049];
      const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
      buf[n] = '\0';
      std::fputs(buf, stderr);
      std::fclose(f);
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  const std::string worker_bin =
      args.worker_bin.empty() ? DefaultWorkerBin() : args.worker_bin;
  if (::access(worker_bin.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "worker binary not executable: %s\n",
                 worker_bin.c_str());
    return 2;
  }
  std::string log_dir = args.log_dir;
  if (log_dir.empty()) {
    char templ[] = "/tmp/qcm_cluster_XXXXXX";
    char* dir = ::mkdtemp(templ);
    if (dir == nullptr) {
      std::fprintf(stderr, "cannot create log directory\n");
      return 1;
    }
    log_dir = dir;
  } else {
    ::mkdir(log_dir.c_str(), 0755);
  }

  // Pack the graph ONCE in the launcher and ship only the snapshot path:
  // workers mmap <log-dir>/graph.qcsr instead of each re-parsing /
  // regenerating and transiently materializing the full graph.
  // --snapshot reuses a pre-packed file; --no-snapshot keeps the legacy
  // per-rank rebuild path alive as a fallback.
  EngineConfig& config = args.spec.config;
  if (!args.no_snapshot) {
    if (!args.snapshot.empty()) {
      config.graph_snapshot = args.snapshot;
    } else {
      WallTimer pack_timer;
      Graph full;
      if (!args.spec.input.empty()) {
        auto loaded = LoadEdgeList(args.spec.input);
        if (!loaded.ok()) {
          std::fprintf(stderr, "graph load failed: %s\n",
                       loaded.status().ToString().c_str());
          return 1;
        }
        full = std::move(loaded->graph);
        CsrWriteOptions opts;
        opts.page_size = static_cast<uint32_t>(config.graph_page_size);
        Status packed = WriteCsrSnapshot(full, loaded->original_ids,
                                         log_dir + "/graph.qcsr", opts);
        if (!packed.ok()) {
          std::fprintf(stderr, "snapshot pack failed: %s\n",
                       packed.ToString().c_str());
          return 1;
        }
      } else {
        auto parsed = ParsePlantedSpec(args.spec.gen_planted, args.spec.seed);
        if (!parsed.ok()) {
          std::fprintf(stderr, "bad planted spec: %s\n",
                       parsed.status().ToString().c_str());
          return 1;
        }
        auto generated = GenPlantedCommunities(parsed.value());
        if (!generated.ok()) {
          std::fprintf(stderr, "graph generation failed: %s\n",
                       generated.status().ToString().c_str());
          return 1;
        }
        full = std::move(generated).value();
        CsrWriteOptions opts;
        opts.page_size = static_cast<uint32_t>(config.graph_page_size);
        opts.build_seed = args.spec.seed;
        Status packed = WriteCsrSnapshot(full, {}, log_dir + "/graph.qcsr",
                                         opts);
        if (!packed.ok()) {
          std::fprintf(stderr, "snapshot pack failed: %s\n",
                       packed.ToString().c_str());
          return 1;
        }
      }
      config.graph_snapshot = log_dir + "/graph.qcsr";
      std::fprintf(stderr,
                   "qcm_cluster: packed %s (%u vertices, %llu edges) in "
                   "%.3f s\n",
                   config.graph_snapshot.c_str(), full.NumVertices(),
                   static_cast<unsigned long long>(full.NumEdges()),
                   pack_timer.Seconds());
      // `full` is dropped here -- the launcher, like the workers, does
      // not hold a resident graph during the run.
    }
    // Early, launcher-side sanity check (metadata checksums only) so a
    // bad --snapshot path fails before N workers are forked. The file's
    // actual page size wins over the flag: a pre-packed --snapshot may
    // have been built with a different --page-size, and the budget
    // validation below must check against what the workers will map.
    auto snap = CsrSnapshot::Open(config.graph_snapshot);
    if (!snap.ok()) {
      std::fprintf(stderr, "snapshot open failed: %s\n",
                   snap.status().ToString().c_str());
      return 1;
    }
    config.graph_page_size = (*snap)->page_size();
  }
  // Surface contradictory settings with the validator's file:line message
  // instead of shipping them to every worker first. Runs after the pack
  // step so graph_snapshot / graph_memory_budget are seen together.
  if (Status valid = config.Validate(); !valid.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 valid.ToString().c_str());
    return 2;
  }

  // Checkpoint root shared by every rank (each keeps rank<R>/log under
  // it). A launcher-owned temp dir is removed on success; a caller-
  // provided one is left alone.
  std::string ckpt_dir = args.checkpoint_dir;
  bool owns_ckpt_dir = false;
  if (ckpt_dir.empty()) {
    char templ[] = "/tmp/qcm_ckpt_XXXXXX";
    char* dir = ::mkdtemp(templ);
    if (dir == nullptr) {
      std::fprintf(stderr, "cannot create checkpoint directory\n");
      return 1;
    }
    ckpt_dir = dir;
    owns_ckpt_dir = true;
  } else {
    ::mkdir(ckpt_dir.c_str(), 0755);
  }
  args.spec.config.checkpoint_dir = ckpt_dir;

  // Launcher-side tracing must be live before the coordinator runs so
  // recovery spans (rank_declared_dead, recover_*) land in a ring. The
  // workers start their own rings from the job spec.
  const std::string trace_out = args.spec.config.trace_out;
  if (!trace_out.empty()) {
    trace::Start(static_cast<size_t>(args.spec.config.trace_buffer_kb));
    trace::SetThreadName("launcher");
  }

  // Bind the control-plane listener before spawning anyone.
  CoordinatorConfig coord_config;
  coord_config.world_size = args.workers;
  coord_config.config_blob = EncodeJobSpec(args.spec);
  coord_config.steal_period_sec =
      args.spec.config.enable_stealing && args.workers >= 2
          ? args.spec.config.steal_period_sec
          : 0.0;
  coord_config.steal_batch_cap = args.spec.config.batch_size;
  coord_config.steal_rtt_reference_sec =
      args.spec.config.steal_rtt_reference_sec;
  coord_config.steal_max_batch_factor =
      args.spec.config.steal_max_batch_factor;
  coord_config.max_rank_restarts = args.max_rank_restarts;
  // Liveness deadline: many heartbeat periods of slack (slow CI, TSan),
  // but never so long that a hung rank stalls the run indefinitely.
  // Child-exit detection (the watchdog below) catches clean crashes far
  // faster; the deadline is the backstop for wedged-but-alive processes.
  coord_config.heartbeat_deadline_sec =
      args.spec.config.heartbeat_usec > 0
          ? std::max(1.0, 50.0 * 1e-6 *
                              static_cast<double>(
                                  args.spec.config.heartbeat_usec))
          : 0.0;
  auto listening = Coordinator::Listen(std::move(coord_config));
  if (!listening.ok()) {
    std::fprintf(stderr, "coordinator listen failed: %s\n",
                 listening.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Coordinator> coordinator = std::move(listening).value();
  std::fprintf(stderr,
               "qcm_cluster: coordinator on 127.0.0.1:%u, spawning %d "
               "workers (logs in %s, checkpoints in %s)\n",
               coordinator->port(), args.workers, log_dir.c_str(),
               ckpt_dir.c_str());

  // Worker process table, shared between the main thread, the child
  // watchdog, the recovery callbacks, and the fault-injection hook.
  const std::string port_str = std::to_string(coordinator->port());
  std::vector<WorkerProcess> workers(args.workers);
  // The coordinator assigns ranks in CONNECT order, which need not match
  // the spawn order this table is indexed by. rank_slot[r] maps rank r to
  // its process-table slot; filled from the coordinator's rank->pid map
  // (kHello carries the pid) once the handshake completes. Guarded by
  // workers_mu.
  std::vector<int> rank_slot(args.workers, -1);
  std::mutex workers_mu;

  // Forks one worker for `rank`; returns false on fork failure. The
  // caller holds workers_mu (or is still single-threaded).
  auto spawn_worker = [&](int rank) -> bool {
    WorkerProcess& w = workers[rank];
    w.log_path = log_dir + "/worker" + std::to_string(rank) +
                 (w.restarts > 0 ? ".r" + std::to_string(w.restarts) : "") +
                 ".log";
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork failed: %s\n", std::strerror(errno));
      return false;
    }
    if (pid == 0) {
      if (FILE* log = std::fopen(w.log_path.c_str(), "w")) {
        ::dup2(::fileno(log), STDOUT_FILENO);
        ::dup2(::fileno(log), STDERR_FILENO);
      }
      ::execl(worker_bin.c_str(), worker_bin.c_str(), "--coordinator-port",
              port_str.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "execl %s failed: %s\n", worker_bin.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    w.pid = pid;
    w.reaped = false;
    w.wstatus = 0;
    return true;
  };

  for (int i = 0; i < args.workers; ++i) {
    if (!spawn_worker(i)) {
      KillAll(&workers);
      return 1;
    }
  }

  // Recovery callbacks: the coordinator's RunToCompletion thread calls
  // these inline while replacing a dead rank.
  coordinator->SetRecoveryCallbacks(
      [&](int rank) {
        // Guarantee the old incarnation is dead and reaped before the
        // survivors are told so.
        pid_t pid = -1;
        int slot = -1;
        {
          std::lock_guard<std::mutex> lock(workers_mu);
          slot = rank_slot[rank];
          if (slot >= 0 && !workers[slot].reaped) pid = workers[slot].pid;
        }
        if (pid > 0) {
          ::kill(pid, SIGKILL);
          int wstatus = 0;
          ::waitpid(pid, &wstatus, 0);
          std::lock_guard<std::mutex> lock(workers_mu);
          workers[slot].reaped = true;
          workers[slot].wstatus = wstatus;
        }
      },
      [&](int rank) -> Status {
        std::lock_guard<std::mutex> lock(workers_mu);
        const int slot = rank_slot[rank];
        if (slot < 0) {
          return Status::Internal("no process slot mapped for rank " +
                                  std::to_string(rank));
        }
        ++workers[slot].restarts;
        if (!spawn_worker(slot)) {
          return Status::IOError("relaunch fork failed for rank " +
                                 std::to_string(rank));
        }
        std::fprintf(stderr,
                     "qcm_cluster: relaunched rank %d (pid %d, attempt %d, "
                     "log %s)\n",
                     rank, static_cast<int>(workers[slot].pid),
                     workers[slot].restarts,
                     workers[slot].log_path.c_str());
        return Status::OK();
      });

  // Live telemetry: every kStats frame updates the per-rank snapshot the
  // ticker prints from and, when tracing, appends pre-formatted counter
  // event lines ("ph":"C", pid = rank) for the merged timeline. The
  // callback runs on per-rank receiver threads.
  std::mutex stats_mu;
  std::vector<WireStatsSample> latest_stats(args.workers);
  std::vector<bool> stats_seen(args.workers, false);
  std::vector<std::string> stats_events;
  coordinator->SetStatsCallback(
      [&](int rank, const WireStatsSample& sample) {
        std::lock_guard<std::mutex> lock(stats_mu);
        latest_stats[rank] = sample;
        stats_seen[rank] = true;
        if (trace_out.empty()) return;
        // ~7 small lines per sample per rank; a day-long run at the
        // default 500 ms cadence stays well under typical trace sizes,
        // but cap the buffer so a pathological cadence cannot eat RAM.
        if (stats_events.size() > 2'000'000) return;
        auto counter = [&](const char* name, uint64_t value) {
          stats_events.push_back(
              "{\"name\":\"" + std::string(name) +
              "\",\"cat\":\"stats\",\"ph\":\"C\",\"ts\":" +
              std::to_string(sample.ts_usec) +
              ",\"pid\":" + std::to_string(rank) +
              ",\"tid\":0,\"args\":{\"value\":" + std::to_string(value) +
              "}}");
        };
        counter("queue_depth", sample.queue_depth);
        counter("inflight_bytes", sample.inflight_bytes);
        counter("busy_compers", sample.busy_compers);
        counter("tasks_completed", sample.tasks_completed);
        counter("cache_hits", sample.cache_hits);
        counter("cache_misses", sample.cache_misses);
        counter("pending_tasks",
                sample.pending < 0
                    ? 0
                    : static_cast<uint64_t>(sample.pending));
      });

  // Child watchdog: a worker that dies mid-run is routed into the
  // coordinator's recovery path (before the handshake completes there is
  // nothing to recover into, so it still fails the run promptly).
  std::atomic<bool> run_done{false};
  std::atomic<bool> handshake_done{false};
  std::thread watchdog([&] {
    while (!run_done.load()) {
      for (size_t i = 0; i < workers.size(); ++i) {
        pid_t pid = -1;
        {
          std::lock_guard<std::mutex> lock(workers_mu);
          if (workers[i].pid <= 0 || workers[i].reaped) continue;
          pid = workers[i].pid;
        }
        int wstatus = 0;
        if (::waitpid(pid, &wstatus, WNOHANG) == pid) {
          bool stale = false;
          {
            std::lock_guard<std::mutex> lock(workers_mu);
            // The recovery callback may have reaped and replaced this
            // pid between our snapshot and now.
            if (workers[i].pid != pid || workers[i].reaped) {
              stale = true;
            } else {
              workers[i].reaped = true;
              workers[i].wstatus = wstatus;
            }
          }
          if (stale) continue;
          const bool clean =
              WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
          if (clean) continue;
          const std::string how =
              WIFSIGNALED(wstatus)
                  ? "signal " + std::to_string(WTERMSIG(wstatus))
                  : "status " + std::to_string(WEXITSTATUS(wstatus));
          if (!handshake_done.load()) {
            coordinator->Abort("worker process " + std::to_string(i) +
                               " died during bring-up (" + how + ")");
          } else {
            // Translate the process slot back to the rank the coordinator
            // knows it as.
            int rank = -1;
            {
              std::lock_guard<std::mutex> lock(workers_mu);
              for (int r = 0; r < args.workers; ++r) {
                if (rank_slot[r] == static_cast<int>(i)) rank = r;
              }
            }
            if (rank < 0) continue;
            std::fprintf(stderr,
                         "qcm_cluster: rank %d process died (%s)\n", rank,
                         how.c_str());
            coordinator->OnRankDeath(rank);
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // Fault injection for the CI smoke: SIGKILL the named rank once it
  // verifiably holds pending work, so recovery happens mid-mining.
  std::thread killer;
  if (const char* kill_rank_env = std::getenv("QCM_SMOKE_KILL_RANK")) {
    const int kill_rank = std::atoi(kill_rank_env);
    if (kill_rank >= 0 && kill_rank < args.workers) {
      killer = std::thread([&, kill_rank] {
        while (!run_done.load()) {
          WireRankStatus status;
          if (coordinator->SnapshotStatus(kill_rank, &status) &&
              status.pending > 0) {
            pid_t pid = -1;
            {
              std::lock_guard<std::mutex> lock(workers_mu);
              const int slot = rank_slot[kill_rank];
              if (slot >= 0 && !workers[slot].reaped &&
                  workers[slot].restarts == 0) {
                pid = workers[slot].pid;
              }
            }
            if (pid > 0) {
              std::fprintf(stderr,
                           "qcm_cluster: fault injection: SIGKILL rank %d "
                           "(pid %d)\n",
                           kill_rank, static_cast<int>(pid));
              ::kill(pid, SIGKILL);
            }
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    } else {
      std::fprintf(stderr,
                   "qcm_cluster: ignoring QCM_SMOKE_KILL_RANK=%s (out of "
                   "range)\n",
                   kill_rank_env);
    }
  }

  // Live one-line ticker: a cross-rank rollup of the latest kStats
  // samples, printed at the sampling cadence once the first sample lands.
  std::thread ticker;
  if (args.spec.config.stats_interval_ms > 0) {
    ticker = std::thread([&] {
      const int64_t interval_ms =
          std::max<int64_t>(args.spec.config.stats_interval_ms, 250);
      int64_t slept_ms = 0;
      while (!run_done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        slept_ms += 20;
        if (slept_ms < interval_ms) continue;
        slept_ms = 0;
        unsigned long long pending = 0, queue = 0, busy = 0, inflight = 0,
                           hits = 0, misses = 0, tasks = 0;
        int seen = 0;
        {
          std::lock_guard<std::mutex> lock(stats_mu);
          for (int r = 0; r < args.workers; ++r) {
            if (!stats_seen[r]) continue;
            ++seen;
            const WireStatsSample& s = latest_stats[r];
            if (s.pending > 0) pending += s.pending;
            queue += s.queue_depth;
            busy += s.busy_compers;
            inflight += s.inflight_bytes;
            hits += s.cache_hits;
            misses += s.cache_misses;
            tasks += s.tasks_completed;
          }
        }
        if (seen == 0) continue;
        const double hit_pct =
            hits + misses == 0
                ? 100.0
                : 100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses);
        std::fprintf(stderr,
                     "telemetry: %d/%d ranks | pending %llu | big-queue "
                     "%llu | busy %llu compers | in-flight %llu B | "
                     "cache-hit %.1f%% | %llu tasks done\n",
                     seen, args.workers, pending, queue, busy, inflight,
                     hit_pct, tasks);
      }
    });
  }

  // Handshake, then drive the run to global termination.
  Status run_status = coordinator->RunHandshake();
  if (run_status.ok()) {
    // Resolve which forked process ended up with which rank (connect
    // order decides) BEFORE releasing the watchdog/killer onto the
    // recovery path.
    std::lock_guard<std::mutex> lock(workers_mu);
    for (int r = 0; r < args.workers; ++r) {
      const uint64_t pid = coordinator->RankPid(r);
      for (int s = 0; s < args.workers; ++s) {
        if (static_cast<uint64_t>(workers[s].pid) == pid) rank_slot[r] = s;
      }
    }
    handshake_done.store(true);
  }
  std::vector<std::string> report_blobs;
  if (run_status.ok()) {
    auto reports = coordinator->RunToCompletion();
    run_status = reports.status();
    if (reports.ok()) report_blobs = std::move(reports).value();
  }
  const uint64_t steal_commands = coordinator->steal_commands_issued();
  const std::vector<Coordinator::RecoveryEvent> recoveries =
      coordinator->recovery_events();
  const std::vector<int> restarts = coordinator->restarts();
  run_done.store(true);
  watchdog.join();
  if (killer.joinable()) killer.join();
  if (ticker.joinable()) ticker.join();
  coordinator->Close();

  // Reap every live worker; a nonzero exit of a CURRENT incarnation fails
  // the run (superseded incarnations died by design and were already
  // reaped by the watchdog or the kill callback).
  bool workers_ok = true;
  for (int i = 0; i < args.workers; ++i) {
    WorkerProcess& w = workers[i];
    if (!w.reaped) {
      if (!run_status.ok()) ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, &w.wstatus, 0);
      w.reaped = true;
    }
    const bool clean = WIFEXITED(w.wstatus) && WEXITSTATUS(w.wstatus) == 0;
    if (!clean && run_status.ok()) {
      std::fprintf(stderr, "qcm_cluster: worker %d exited abnormally (%s)\n",
                   i,
                   WIFSIGNALED(w.wstatus)
                       ? ("signal " + std::to_string(WTERMSIG(w.wstatus)))
                             .c_str()
                       : ("status " +
                          std::to_string(WEXITSTATUS(w.wstatus)))
                             .c_str());
      workers_ok = false;
    }
  }
  if (!run_status.ok() || !workers_ok) {
    std::fprintf(stderr, "qcm_cluster: FAILED -- %s\n",
                 run_status.ok() ? "worker exit failure"
                                 : run_status.ToString().c_str());
    PrintLogTails(workers);
    std::fprintf(stderr, "qcm_cluster: checkpoints kept in %s\n",
                 ckpt_dir.c_str());
    return 1;
  }

  // Merge the per-rank reports and postprocess the union of candidates.
  std::vector<EngineReport> rank_reports(report_blobs.size());
  for (size_t r = 0; r < report_blobs.size(); ++r) {
    Decoder dec(report_blobs[r]);
    Status s = DecodeEngineReport(&dec, &rank_reports[r]);
    if (!s.ok()) {
      std::fprintf(stderr, "qcm_cluster: corrupt report from rank %zu: %s\n",
                   r, s.ToString().c_str());
      return 1;
    }
  }
  EngineReport merged = MergeEngineReports(rank_reports);
  const size_t raw_candidates = merged.results.size();
  size_t duplicates_suppressed = 0;
  std::vector<VertexSet> results =
      args.no_filter
          ? std::move(merged.results)
          : FilterMaximal(std::move(merged.results), &duplicates_suppressed);

  std::fprintf(stderr, "%zu %s quasi-cliques in %.3f s\n", results.size(),
               args.no_filter ? "candidate" : "maximal",
               merged.wall_seconds);
  // Canonical order + digest + output file, shared with qcm_mine so the
  // digest-parity gate compares one implementation against itself.
  auto digest = EmitCanonicalResults(&results, args.output);
  if (!digest.ok()) {
    std::fprintf(stderr, "%s\n", digest.status().ToString().c_str());
    return 1;
  }
  if (args.stats) {
    std::fprintf(
        stderr,
        "cluster: %d workers, %llu tasks, %llu stolen (%llu steal "
        "commands), %llu pulled vertices, %llu raw candidates\n",
        args.workers,
        static_cast<unsigned long long>(merged.counters.tasks_completed),
        static_cast<unsigned long long>(merged.counters.stolen_tasks),
        static_cast<unsigned long long>(steal_commands),
        static_cast<unsigned long long>(merged.counters.pulled_vertices),
        static_cast<unsigned long long>(raw_candidates));
    std::fprintf(
        stderr,
        "graph: %llu page pins, %llu page-ins, %llu evictions, "
        "%llu inline-served, fault stall %.1f ms; aggregate peak rss %s\n",
        static_cast<unsigned long long>(merged.counters.graph_page_pins),
        static_cast<unsigned long long>(merged.counters.graph_page_ins),
        static_cast<unsigned long long>(
            merged.counters.graph_page_evictions),
        static_cast<unsigned long long>(
            merged.counters.graph_inline_served),
        static_cast<double>(merged.counters.graph_fault_stall_usec) / 1e3,
        HumanBytes(merged.peak_rss_bytes).c_str());
  }
  if (!recoveries.empty()) {
    for (const auto& e : recoveries) {
      std::fprintf(stderr,
                   "recovery: rank %d epoch %u via %s (detected after "
                   "%llu us, rewired in %.3f s)\n",
                   e.rank, e.epoch, e.method.c_str(),
                   static_cast<unsigned long long>(
                       e.detection_latency_usec),
                   e.recovery_sec);
    }
    std::fprintf(stderr,
                 "recovery: %zu duplicate candidates suppressed by the "
                 "maximality filter\n",
                 duplicates_suppressed);
  }

  // Stitch the per-rank fragments, the launcher's own events (recovery
  // spans, under a pid past every rank), the kStats counter tracks, and
  // rank-naming metadata into ONE Perfetto-loadable timeline.
  if (!trace_out.empty()) {
    std::vector<std::string> fragments;
    for (int r = 0; r < args.workers; ++r) {
      fragments.push_back(trace_out + ".rank" + std::to_string(r) +
                          ".jsonl");
    }
    std::vector<std::string> extra;
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      extra = std::move(stats_events);
    }
    const int launcher_pid = args.workers;
    const std::string drained = trace::DrainJsonLines(launcher_pid);
    for (size_t start = 0; start < drained.size();) {
      size_t end = drained.find('\n', start);
      if (end == std::string::npos) end = drained.size();
      if (end > start) extra.push_back(drained.substr(start, end - start));
      start = end + 1;
    }
    for (int r = 0; r <= args.workers; ++r) {
      const std::string label =
          r == args.workers ? "launcher" : "rank" + std::to_string(r);
      extra.push_back(
          "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" +
          std::to_string(r) + ",\"tid\":0,\"args\":{\"name\":\"" + label +
          "\"}}");
    }
    Status merge_status = trace::MergeFragments(fragments, extra, trace_out);
    if (merge_status.ok()) {
      for (const std::string& f : fragments) ::remove(f.c_str());
      std::fprintf(stderr,
                   "trace: %s (%d rank fragments merged, %llu launcher "
                   "records dropped)\n",
                   trace_out.c_str(), args.workers,
                   static_cast<unsigned long long>(trace::DroppedRecords()));
    } else {
      std::fprintf(stderr, "trace merge failed: %s\n",
                   merge_status.ToString().c_str());
    }
  }

  if (!args.stats_json.empty()) {
    // One JSON object per rank plus the merged totals and the recovery
    // story, so CI can chart per-rank balance and fault-tolerance
    // overhead without re-deriving them.
    std::string json = "{\n  \"ranks\": [\n";
    for (size_t r = 0; r < rank_reports.size(); ++r) {
      json += EngineReportJson(rank_reports[r]);
      if (r + 1 < rank_reports.size()) json += ",";
      json += "\n";
    }
    json += "  ],\n  \"merged\": " + EngineReportJson(merged) + ",\n";
    json += "  \"recovery\": {\n    \"restarts\": [";
    for (size_t r = 0; r < restarts.size(); ++r) {
      json += std::to_string(restarts[r]);
      if (r + 1 < restarts.size()) json += ", ";
    }
    json += "],\n    \"duplicates_suppressed\": " +
            std::to_string(duplicates_suppressed) + ",\n";
    json += "    \"events\": [";
    for (size_t e = 0; e < recoveries.size(); ++e) {
      const auto& ev = recoveries[e];
      json += std::string(e == 0 ? "" : ", ") + "{\"rank\": " +
              std::to_string(ev.rank) +
              ", \"epoch\": " + std::to_string(ev.epoch) +
              ", \"method\": \"" + JsonEscape(ev.method) + "\"" +
              ", \"detection_latency_usec\": " +
              std::to_string(ev.detection_latency_usec) +
              ", \"recovery_sec\": " + std::to_string(ev.recovery_sec) +
              "}";
    }
    json += "]\n  }\n}\n";
    FILE* f = args.stats_json == "-"
                  ? stdout
                  : std::fopen(args.stats_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   args.stats_json.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    if (f != stdout) std::fclose(f);
  }

  if (owns_ckpt_dir) {
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir, ec);
  }
  return 0;
}
