// tau_sweep: the ROADMAP's tau_time sweep harness.
//
// Sweeps tau_time across decades on a chosen dataset from the bench
// registry and emits one Table-3/4-style series -- job time, mining vs.
// materialization split, subtask counts, cache behavior -- as a printed
// table plus a JSON array, instead of the fixed grids baked into the
// individual benches.
//
// Usage:
//   tau_sweep [--dataset NAME] [--tau-max F] [--tau-min F]
//             [--per-decade N] [--machines N] [--threads N]
//             [--net-latency SEC] [--net-latency-ticks N]
//             [--cache-policy lru|clock] [--json PATH]
//
//   --dataset NAME     bench registry name ("Hyves-like", "GSE1730-like",
//                      or the paper's names)         (default Hyves-like)
//   --tau-max F        largest tau_time of the sweep  (default 0.5)
//   --tau-min F        smallest tau_time              (default 0.005)
//   --per-decade N     sample points per decade       (default 2)
//   --json PATH        write the JSON series here ("-" = stdout);
//                      QCM_BENCH_JSON is honored as a fallback

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/datasets.h"
#include "mining/parallel_miner.h"

namespace {

using namespace qcm;
using namespace qcm::bench;

struct Args {
  std::string dataset = "Hyves-like";
  double tau_max = 0.5;
  double tau_min = 0.005;
  int per_decade = 2;
  int machines = 0;  // 0 = ClusterPreset default
  int threads = 0;
  double net_latency_sec = 0.0;
  uint64_t net_latency_ticks = 0;
  std::string cache_policy = "lru";
  std::string json_path;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: tau_sweep [--dataset NAME] [--tau-max F] [--tau-min F]\n"
      "                 [--per-decade N] [--machines N] [--threads N]\n"
      "                 [--net-latency SEC] [--net-latency-ticks N]\n"
      "                 [--cache-policy lru|clock] [--json PATH]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (a == "--dataset") {
      if ((v = next("--dataset")) == nullptr) return false;
      args->dataset = v;
    } else if (a == "--tau-max") {
      if ((v = next("--tau-max")) == nullptr) return false;
      args->tau_max = std::atof(v);
    } else if (a == "--tau-min") {
      if ((v = next("--tau-min")) == nullptr) return false;
      args->tau_min = std::atof(v);
    } else if (a == "--per-decade") {
      if ((v = next("--per-decade")) == nullptr) return false;
      args->per_decade = std::atoi(v);
    } else if (a == "--machines") {
      if ((v = next("--machines")) == nullptr) return false;
      args->machines = std::atoi(v);
    } else if (a == "--threads") {
      if ((v = next("--threads")) == nullptr) return false;
      args->threads = std::atoi(v);
    } else if (a == "--net-latency") {
      if ((v = next("--net-latency")) == nullptr) return false;
      args->net_latency_sec = std::atof(v);
      if (args->net_latency_sec < 0) {
        std::fprintf(stderr, "--net-latency must be >= 0\n");
        return false;
      }
    } else if (a == "--net-latency-ticks") {
      if ((v = next("--net-latency-ticks")) == nullptr) return false;
      const long long ticks = std::atoll(v);
      if (ticks < 0) {
        std::fprintf(stderr, "--net-latency-ticks must be >= 0\n");
        return false;
      }
      args->net_latency_ticks = static_cast<uint64_t>(ticks);
    } else if (a == "--cache-policy") {
      if ((v = next("--cache-policy")) == nullptr) return false;
      args->cache_policy = v;
    } else if (a == "--json") {
      if ((v = next("--json")) == nullptr) return false;
      args->json_path = v;
    } else if (a == "--help" || a == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  if (args->tau_max <= 0 || args->tau_min <= 0 ||
      args->tau_min > args->tau_max) {
    std::fprintf(stderr, "need 0 < --tau-min <= --tau-max\n");
    return false;
  }
  if (args->per_decade < 1) {
    std::fprintf(stderr, "--per-decade must be >= 1\n");
    return false;
  }
  if (args->cache_policy != "lru" && args->cache_policy != "clock") {
    std::fprintf(stderr, "unknown --cache-policy %s\n",
                 args->cache_policy.c_str());
    return false;
  }
  return true;
}

/// Decade grid from tau_max down to (at least) tau_min, `per_decade`
/// logarithmically spaced samples per decade.
std::vector<double> TauGrid(double tau_max, double tau_min,
                            int per_decade) {
  std::vector<double> grid;
  const double step = std::pow(10.0, -1.0 / per_decade);
  for (double tau = tau_max; tau >= tau_min * 0.999; tau *= step) {
    grid.push_back(tau);
  }
  if (grid.empty() || grid.back() > tau_min * 1.001) {
    grid.push_back(tau_min);
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  const DatasetSpec* spec = FindDataset(args.dataset);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset %s; known:\n",
                 args.dataset.c_str());
    for (const DatasetSpec& d : AllDatasets()) {
      std::fprintf(stderr, "  %s (%s)\n", d.name.c_str(),
                   d.paper_name.c_str());
    }
    return 2;
  }

  Banner("tau_time sweep on " + spec->name + " (paper Tables 3/4 style)");
  auto graph = BuildDataset(*spec);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  std::vector<double> taus =
      TauGrid(args.tau_max, args.tau_min, args.per_decade);
  if (QuickMode()) {
    taus = TauGrid(args.tau_max, args.tau_min, 1);
  }

  Table table({"tau_time", "Job Time", "Mining Time", "Materialize Time",
               "Ego Build Time", "Tasks Done", "Suspensions", "Results",
               "Cache Hit %", "Overlap %"});
  std::string json = "[\n";
  bool first = true;
  for (double tau : taus) {
    EngineConfig config = ClusterPreset();
    config.mining = spec->Mining();
    config.tau_split = spec->tau_split;
    config.tau_time = tau;
    if (args.machines > 0) config.num_machines = args.machines;
    if (args.threads > 0) config.threads_per_machine = args.threads;
    config.net_latency_sec = args.net_latency_sec;
    config.net_latency_ticks = args.net_latency_ticks;
    config.cache_policy = args.cache_policy == "clock" ? CachePolicy::kClock
                                                       : CachePolicy::kLRU;
    ParallelMiner miner(config);
    auto result = miner.Run(*graph);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const EngineReport& r = result->report;
    table.AddRow({FmtDouble(tau, 4) + " s", FmtSeconds(r.wall_seconds),
                  FmtSeconds(r.total_mining_seconds),
                  FmtSeconds(r.total_materialize_seconds),
                  FmtSeconds(r.total_build_seconds),
                  FmtCount(r.counters.tasks_completed),
                  FmtCount(r.counters.task_suspensions),
                  FmtCount(result->maximal.size()),
                  FmtDouble(100.0 * r.counters.CacheHitRatio(), 1),
                  FmtDouble(100.0 * r.counters.MessageOverlapRatio(), 1)});
    if (!first) json += ",\n";
    first = false;
    json += "  {\"dataset\": \"" + spec->name + "\"" +
            ", \"tau_time\": " + FmtDouble(tau, 6) +
            ", \"machines\": " + std::to_string(config.num_machines) +
            ", \"threads\": " + std::to_string(config.threads_per_machine) +
            ", \"net_latency_sec\": " +
            FmtDouble(config.net_latency_sec, 6) +
            ", \"cache_policy\": \"" +
            CachePolicyName(config.cache_policy) + "\"" +
            ", \"job_seconds\": " + FmtDouble(r.wall_seconds, 6) +
            ", \"mining_seconds\": " +
            FmtDouble(r.total_mining_seconds, 6) +
            ", \"materialize_seconds\": " +
            FmtDouble(r.total_materialize_seconds, 6) +
            ", \"ego_build_seconds\": " +
            FmtDouble(r.total_build_seconds, 6) +
            ", \"tasks_completed\": " +
            std::to_string(r.counters.tasks_completed) +
            ", \"results\": " + std::to_string(result->maximal.size()) +
            ", \"cache_hit_ratio\": " +
            FmtDouble(r.counters.CacheHitRatio(), 4) +
            ", \"overlap_ratio\": " +
            FmtDouble(r.counters.MessageOverlapRatio(), 4) + "}";
  }
  table.Print();
  json += "\n]\n";

  std::string json_path = args.json_path;
  if (json_path.empty()) {
    const char* env = std::getenv("QCM_BENCH_JSON");
    if (env != nullptr) json_path = env;
  }
  if (!json_path.empty()) {
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("(json written to %s)\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
  }
  Note("\nPaper reference (Tables 3/4): job time is U-shaped in tau_time "
       "-- too large starves the cluster of decomposable work, too small "
       "over-decomposes into materialization overhead. The sweep above "
       "reproduces the shape on the scaled dataset; absolute values are "
       "host-dependent.");
  return 0;
}
