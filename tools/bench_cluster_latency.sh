#!/usr/bin/env bash
# Cluster-scale latency bench (ROADMAP "cluster-scale benches"): sweep
# --net-latency through tools/qcm_cluster -- a REAL 3-process run over
# loopback TCP sockets, not the in-process simulation bench_table6_latency
# measures -- and record, per latency point and for prefetch off ("before",
# with flat steal batching) vs on ("after", with latency-aware steal
# planning), the per-rank balance and scheduling counters from
# --stats-json. A steal-planner RTT sweep (steal_planner_probe) is
# embedded alongside so the batch-size-vs-latency policy is demonstrated
# deterministically even when a balanced run never steals.
#
# Every run's result digest is compared against the zero-latency
# prefetch-off run: any divergence fails the bench loudly.
#
# A second sweep (cluster_coalesce_before_after.json) drives a
# small-message workload -- vertex cache OFF so every remote adjacency
# rides the pull path, --pull-batch 64 so pulls fragment into many small
# frames, prefetch ON -- with transport send-coalescing off vs on, at
# --net-latency 0 and 1 ms. It records frames-per-syscall, the flush-cause
# breakdown and the bytes-per-flush histogram, cross-checks every digest
# against the same baseline, and fails unless coalescing cuts data-frame
# syscalls by at least 3x.
#
# Usage: tools/bench_cluster_latency.sh [build-dir] [out.json] [coalesce-out.json]
set -u -o pipefail

BUILD="${1:-./build}"
OUT="${2:-bench/cluster_latency_before_after.json}"
COALESCE_OUT="${3:-bench/cluster_coalesce_before_after.json}"
CLUSTER="$BUILD/qcm_cluster"
PROBE="$BUILD/steal_planner_probe"
for bin in "$CLUSTER" "$PROBE"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_cluster_latency: FAIL -- missing binary $bin" >&2
    exit 1
  fi
done

# Large enough that each run lasts a few hundred ms and sends ~10k fabric
# messages -- the overlap-ratio sampling is noise on toy runs.
GRAPH="--gen-planted n=60000,communities=120,size=10..14,density=0.95"
PARAMS="--gamma 0.85 --min-size 8 --workers 3 --threads 2"
LATENCIES=(0 0.001 0.005)

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

baseline_digest=""
rows=""

for mode in before after; do
  if [[ "$mode" == "before" ]]; then
    # The pre-sched-layer policies: no prefetch stage, flat steal batches
    # (max factor 1 disables latency scaling).
    extra="--steal-batch-factor 1"
  else
    extra="--prefetch --steal-batch-factor 8"
  fi
  for lat in "${LATENCIES[@]}"; do
    json="$workdir/${mode}_${lat}.json"
    out=$($CLUSTER $GRAPH $PARAMS --net-latency "$lat" $extra \
          --stats-json "$json" --log-dir "$workdir/logs_${mode}_${lat}" \
          2>&1)
    status=$?
    if [[ $status -ne 0 ]]; then
      echo "bench_cluster_latency: FAIL -- qcm_cluster exited $status" \
        "(mode=$mode latency=$lat)" >&2
      printf '%s\n' "$out" >&2
      exit 1
    fi
    digest=$(printf '%s\n' "$out" |
      sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
    if [[ -z "$baseline_digest" ]]; then
      baseline_digest="$digest"
    elif [[ "$digest" != "$baseline_digest" ]]; then
      echo "bench_cluster_latency: FAIL -- digest $digest (mode=$mode," \
        "latency=$lat) != baseline $baseline_digest" >&2
      exit 1
    fi
    wall=$(printf '%s\n' "$out" |
      sed -n 's/^[0-9]* maximal quasi-cliques in \([0-9.]*\) s$/\1/p' |
      tail -1)
    row=$(python3 - "$json" "$mode" "$lat" "$digest" "$wall" <<'EOF'
import json, sys
path, mode, lat, digest, wall = sys.argv[1:6]
doc = json.load(open(path))
merged = doc["merged"]
c = merged["counters"]
ranks = []
for r in doc["ranks"]:
    rc = r["counters"]
    ranks.append({
        "busy_seconds": round(r["total_busy_seconds"], 6),
        "tasks_completed": rc["tasks_completed"],
        "stolen_tasks": rc["stolen_tasks"],
        "steal_events": rc["steal_events"],
        "prefetch_tasks": rc["prefetch_tasks"],
        "first_schedule_pins": rc["first_schedule_pins"],
    })
se, st = c["steal_events"], c["stolen_tasks"]
row = {
    "mode": mode,
    "net_latency_sec": float(lat),
    "digest": digest,
    "wall_seconds": float(wall),
    "overlap_ratio": merged["derived"]["message_overlap_ratio"],
    "busy_imbalance": merged["derived"]["busy_imbalance"],
    "mean_delivery_latency_sec":
        merged["derived"]["mean_delivery_latency_sec"],
    "steal_events": se,
    "stolen_tasks": st,
    "avg_steal_batch": round(st / se, 3) if se else 0.0,
    "prefetch_tasks": c["prefetch_tasks"],
    "prefetch_issued": c["prefetch_issued"],
    "prefetch_hits": c["prefetch_hits"],
    "first_schedule_pins": c["first_schedule_pins"],
    "ranks": ranks,
}
print(json.dumps(row))
EOF
)
    if [[ -z "$row" ]]; then
      echo "bench_cluster_latency: FAIL -- could not digest $json" >&2
      exit 1
    fi
    rows="$rows$row"$'\n'
    echo "bench_cluster_latency: $mode latency=$lat digest=$digest OK"
  done
done

planner_sweep=$("$PROBE" 16 8)

rows_file="$workdir/rows.jsonl"
printf '%s' "$rows" > "$rows_file"
python3 - "$OUT" "$planner_sweep" "$rows_file" <<'EOF'
import json, sys
out_path, planner = sys.argv[1], json.loads(sys.argv[2])
rows = [json.loads(line) for line in open(sys.argv[3]) if line.strip()]
doc = {
    "bench": "cluster_latency_before_after",
    "description": (
        "3-process qcm_cluster over real loopback sockets, sweeping "
        "--net-latency; 'before' = no prefetch + flat steal batches, "
        "'after' = spawn-time prefetch + latency-aware steal planning. "
        "All digests bit-identical. planner_rtt_sweep shows the planner's "
        "batch caps growing with link RTT (larger, rarer batches)."
    ),
    "runs": rows,
    "planner_rtt_sweep": planner,
}
json.dump(doc, open(out_path, "w"), indent=2)
print(f"bench_cluster_latency: wrote {out_path} ({len(rows)} runs)")
EOF
status=$?
if [[ $status -ne 0 ]]; then exit $status; fi

# ---------------------------------------------------------------------------
# Coalescing sweep: small-message workload, transport aggregation off vs on.
# ---------------------------------------------------------------------------

# Cache off + small pull chunks = the syscall-per-frame worst case the
# coalescing buffer exists to fix.
SMALLMSG="--cache-capacity 0 --pull-batch 64 --prefetch"
COALESCE_LATENCIES=(0 0.001)

crows=""
for mode in before after; do
  if [[ "$mode" == "before" ]]; then
    extra=""  # coalescing off: every data frame is its own writev
  else
    extra="--net-coalesce-bytes 1400 --net-linger-usec 100"
  fi
  for lat in "${COALESCE_LATENCIES[@]}"; do
    json="$workdir/coalesce_${mode}_${lat}.json"
    # Loopback walls at these run lengths are noisy; take the best of 3
    # repeats (every repeat still digest-checked) so the no-regression
    # gate below measures the transport, not the scheduler's dice.
    wall=""
    for rep in 1 2 3; do
      out=$($CLUSTER $GRAPH $PARAMS $SMALLMSG --net-latency "$lat" $extra \
            --stats-json "$json" \
            --log-dir "$workdir/logs_coalesce_${mode}_${lat}_${rep}" 2>&1)
      status=$?
      if [[ $status -ne 0 ]]; then
        echo "bench_cluster_latency: FAIL -- qcm_cluster exited $status" \
          "(coalesce mode=$mode latency=$lat rep=$rep)" >&2
        printf '%s\n' "$out" >&2
        exit 1
      fi
      digest=$(printf '%s\n' "$out" |
        sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
      if [[ "$digest" != "$baseline_digest" ]]; then
        echo "bench_cluster_latency: FAIL -- coalesce digest $digest" \
          "(mode=$mode latency=$lat rep=$rep) != baseline" \
          "$baseline_digest" >&2
        exit 1
      fi
      rep_wall=$(printf '%s\n' "$out" |
        sed -n 's/^[0-9]* maximal quasi-cliques in \([0-9.]*\) s$/\1/p' |
        tail -1)
      if [[ -z "$wall" ]] ||
         awk -v a="$rep_wall" -v b="$wall" 'BEGIN { exit !(a < b) }'; then
        wall="$rep_wall"
      fi
    done
    row=$(python3 - "$json" "$mode" "$lat" "$digest" "$wall" <<'EOF'
import json, sys
path, mode, lat, digest, wall = sys.argv[1:6]
doc = json.load(open(path))
merged = doc["merged"]
c = merged["counters"]
row = {
    "mode": mode,
    "net_latency_sec": float(lat),
    "digest": digest,
    "wall_seconds": float(wall),
    "data_frames": c["net_flush_frames"],
    "data_frame_syscalls": c["net_flushes"],
    "flushed_bytes": c["net_flush_bytes"],
    "frames_per_syscall": merged["derived"]["frames_per_flush"],
    "flush_causes": {
        "size": c["net_flush_size"],
        "linger": c["net_flush_linger"],
        "forced": c["net_flush_forced"],
        "direct": c["net_flush_direct"],
    },
    "mean_flush_park_usec": merged["derived"]["mean_flush_park_usec"],
    "mean_delivery_latency_sec":
        merged["derived"]["mean_delivery_latency_sec"],
    "flush_bytes_hist": merged["net_flush_bytes_hist"],
}
print(json.dumps(row))
EOF
)
    if [[ -z "$row" ]]; then
      echo "bench_cluster_latency: FAIL -- could not digest $json" >&2
      exit 1
    fi
    crows="$crows$row"$'\n'
    echo "bench_cluster_latency: coalesce $mode latency=$lat" \
      "digest=$digest OK"
  done
done

crows_file="$workdir/coalesce_rows.jsonl"
printf '%s' "$crows" > "$crows_file"
python3 - "$COALESCE_OUT" "$crows_file" <<'EOF'
import json, sys
out_path = sys.argv[1]
rows = [json.loads(line) for line in open(sys.argv[2]) if line.strip()]
by_key = {(r["mode"], r["net_latency_sec"]): r for r in rows}
reductions = {}
for lat in sorted({r["net_latency_sec"] for r in rows}):
    before, after = by_key[("before", lat)], by_key[("after", lat)]
    reductions[str(lat)] = round(
        before["data_frame_syscalls"] / after["data_frame_syscalls"], 3)
doc = {
    "bench": "cluster_coalesce_before_after",
    "description": (
        "3-process qcm_cluster over real loopback sockets on a "
        "small-message workload (vertex cache off, --pull-batch 64, "
        "prefetch on): 'before' = coalescing off (one writev per data "
        "frame), 'after' = --net-coalesce-bytes 1400 --net-linger-usec "
        "100. All digests bit-identical to the latency sweep's baseline; "
        "syscall_reduction = before/after data-frame syscalls per "
        "latency point."
    ),
    "runs": rows,
    "syscall_reduction": reductions,
}
json.dump(doc, open(out_path, "w"), indent=2)
print(f"bench_cluster_latency: wrote {out_path} ({len(rows)} runs)")
worst = min(reductions.values())
if worst < 3.0:
    print("bench_cluster_latency: FAIL -- coalescing cut data-frame "
          f"syscalls only {worst}x (< 3x)", file=sys.stderr)
    sys.exit(1)
zero = "0" if "0" in reductions else "0.0"
b0, a0 = by_key[("before", float(zero))], by_key[("after", float(zero))]
if a0["wall_seconds"] > b0["wall_seconds"] * 1.5:
    print("bench_cluster_latency: FAIL -- coalescing regressed wall at "
          f"latency 0: {b0['wall_seconds']}s -> {a0['wall_seconds']}s",
          file=sys.stderr)
    sys.exit(1)
EOF
