#!/usr/bin/env bash
# Dense-vs-sparse mining kernel bench (ISSUE 8 / ROADMAP "word-parallel
# bitset kernels"): three sweeps, all digest-gated.
#
#   1. kernel_bitset_probe: per-kernel microbench rows (4 kernels x sizes
#      64..4096), scalar CSR path vs word-parallel bitset path on the
#      same inputs, with built-in answer parity checks.
#   2. Single-machine end-to-end: qcm_mine on a mining-dominated planted
#      workload (tau_time = 0.1, Table-6-style time-delayed runs) with
#      --dense-threshold 0 ("before", scalar kernels everywhere) vs the
#      default threshold ("after", dense bitmap rows on every task).
#      Best-of-3 walls; every run's result digest must match.
#   3. 3-process cluster (qcm_cluster over real loopback sockets): same
#      workload, same before/after split; digests must match the
#      single-machine baseline bit for bit.
#
# The run FAILS unless every parity/digest check passes AND the
# single-machine end-to-end speedup is >= 2x.
#
# Usage: tools/bench_kernel_before_after.sh [build-dir] [out.json]
set -u -o pipefail

BUILD="${1:-./build}"
OUT="${2:-bench/kernel_bitset_before_after.json}"
PROBE="$BUILD/kernel_bitset_probe"
MINE="$BUILD/qcm_mine"
CLUSTER="$BUILD/qcm_cluster"
for bin in "$PROBE" "$MINE" "$CLUSTER"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_kernel_before_after: FAIL -- missing binary $bin" >&2
    exit 1
  fi
done

# Dense planted communities, gamma 0.85: the bounding/cover/validity
# kernels dominate, which is exactly the regime the bitset rows target.
GRAPH="--gen-planted n=8000,communities=8,size=22..28,density=0.9"
PARAMS="--gamma 0.85 --min-size 14 --tau-time 0.1"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "bench_kernel_before_after: probe sweep..."
probe_json="$workdir/probe.json"
if ! "$PROBE" --json "$probe_json"; then
  echo "bench_kernel_before_after: FAIL -- kernel parity probe" >&2
  exit 1
fi

baseline_digest=""
rows=""
for mode in before after; do
  if [[ "$mode" == "before" ]]; then
    extra="--dense-threshold 0"
  else
    extra=""  # ship default: dense kernels on tasks up to 4096 vertices
  fi
  json="$workdir/mine_${mode}.json"
  wall=""
  for rep in 1 2 3; do
    out=$($MINE $GRAPH $PARAMS $extra --stats-json "$json" 2>&1)
    status=$?
    if [[ $status -ne 0 ]]; then
      echo "bench_kernel_before_after: FAIL -- qcm_mine exited $status" \
        "(mode=$mode rep=$rep)" >&2
      printf '%s\n' "$out" >&2
      exit 1
    fi
    digest=$(printf '%s\n' "$out" |
      sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
    if [[ -z "$baseline_digest" ]]; then
      baseline_digest="$digest"
    elif [[ "$digest" != "$baseline_digest" ]]; then
      echo "bench_kernel_before_after: FAIL -- digest $digest" \
        "(mode=$mode rep=$rep) != baseline $baseline_digest" >&2
      exit 1
    fi
    rep_wall=$(printf '%s\n' "$out" |
      sed -n 's/^[0-9]* maximal quasi-cliques in \([0-9.]*\) s$/\1/p' |
      tail -1)
    if [[ -z "$wall" ]] || python3 -c \
        "exit(0 if float('$rep_wall') < float('$wall') else 1)"; then
      wall="$rep_wall"
    fi
  done
  row=$(python3 - "$json" "$mode" "$baseline_digest" "$wall" <<'EOF'
import json, sys
path, mode, digest, wall = sys.argv[1:5]
c = json.load(open(path))["counters"]
print(json.dumps({
    "mode": mode,
    "wall_seconds": float(wall),
    "digest": digest,
    "dense_tasks": c["mining_dense_tasks"],
    "sparse_tasks": c["mining_sparse_tasks"],
    "bitset_words_touched": c["mining_bitset_words_touched"],
}))
EOF
)
  rows="$rows$row"$'\n'
  echo "bench_kernel_before_after: single-machine $mode" \
    "wall=${wall}s digest=$baseline_digest OK"
done

crows=""
for mode in before after; do
  if [[ "$mode" == "before" ]]; then
    extra="--dense-threshold 0"
  else
    extra=""
  fi
  out=$($CLUSTER $GRAPH $PARAMS --workers 3 --threads 2 $extra \
        --log-dir "$workdir/logs_$mode" 2>&1)
  status=$?
  if [[ $status -ne 0 ]]; then
    echo "bench_kernel_before_after: FAIL -- qcm_cluster exited $status" \
      "(mode=$mode)" >&2
    printf '%s\n' "$out" >&2
    exit 1
  fi
  digest=$(printf '%s\n' "$out" |
    sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
  if [[ "$digest" != "$baseline_digest" ]]; then
    echo "bench_kernel_before_after: FAIL -- cluster digest $digest" \
      "(mode=$mode) != single-machine baseline $baseline_digest" >&2
    exit 1
  fi
  wall=$(printf '%s\n' "$out" |
    sed -n 's/^[0-9]* maximal quasi-cliques in \([0-9.]*\) s$/\1/p' |
    tail -1)
  crows="$crows{\"mode\": \"$mode\", \"wall_seconds\": $wall, \
\"digest\": \"$digest\"}"$'\n'
  echo "bench_kernel_before_after: cluster $mode wall=${wall}s" \
    "digest=$digest OK"
done

rows_file="$workdir/rows.jsonl"
crows_file="$workdir/crows.jsonl"
printf '%s' "$rows" > "$rows_file"
printf '%s' "$crows" > "$crows_file"
python3 - "$OUT" "$probe_json" "$rows_file" "$crows_file" \
    "$GRAPH $PARAMS" <<'EOF'
import json, sys
out_path, probe_path, rows_path, crows_path, workload = sys.argv[1:6]
probe = json.load(open(probe_path))
rows = [json.loads(l) for l in open(rows_path) if l.strip()]
crows = [json.loads(l) for l in open(crows_path) if l.strip()]
by_mode = {r["mode"]: r for r in rows}
speedup = by_mode["before"]["wall_seconds"] / by_mode["after"]["wall_seconds"]
cluster_by_mode = {r["mode"]: r for r in crows}
cluster_speedup = (cluster_by_mode["before"]["wall_seconds"] /
                   cluster_by_mode["after"]["wall_seconds"])
doc = {
    "bench": "kernel_bitset_before_after",
    "description": (
        "Scalar CSR mining kernels (--dense-threshold 0) vs the "
        "word-parallel bitset kernels (default threshold) on a "
        "mining-dominated planted workload, tau_time=0.1. Probe rows "
        "microbench the four hybrid kernels with built-in answer parity "
        "checks; end-to-end rows are best-of-3 qcm_mine walls plus one "
        "3-process qcm_cluster run per mode. Every digest bit-identical."
    ),
    "workload": workload.strip(),
    "kernel_probe": probe,
    "single_machine": rows,
    "single_machine_speedup": round(speedup, 2),
    "cluster_3proc": crows,
    "cluster_speedup": round(cluster_speedup, 2),
    "digest": by_mode["after"]["digest"],
}
json.dump(doc, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
print(f"bench_kernel_before_after: wrote {out_path} "
      f"(single-machine {speedup:.2f}x, cluster {cluster_speedup:.2f}x)")
if not probe.get("all_parity", False):
    print("bench_kernel_before_after: FAIL -- probe parity", file=sys.stderr)
    sys.exit(1)
if speedup < 2.0:
    print(f"bench_kernel_before_after: FAIL -- end-to-end speedup "
          f"{speedup:.2f}x < 2x", file=sys.stderr)
    sys.exit(1)
EOF
status=$?
if [[ $status -ne 0 ]]; then exit $status; fi
echo "bench_kernel_before_after: PASS"
