// qcm_worker: one machine of a real multi-process mining cluster.
//
// Spawned by qcm_cluster (one process per machine), it connects to the
// coordinator, receives its rank and the job spec over the wire
// handshake, rebuilds the input graph deterministically, keeps ONLY its
// own hash partition (plus replicated degree metadata) in its
// VertexTable, and runs the G-thinker engine over the TCP-backed
// CommFabric: vertex pulls and stolen big-task batches are the same typed
// messages as in simulated mode, but they cross process boundaries as
// length-prefixed kData frames. Termination arrives from the
// coordinator's distributed detection; the final EngineReport and raw
// candidate results ship back as the kReport payload.
//
// Usage (normally via qcm_cluster):
//   qcm_worker --coordinator-port P [--coordinator-host H]
//              [--stats-json PATH] [--dense-threshold N]
//
// --dense-threshold overrides the job spec's mining.dense_threshold on
// this rank only -- safe because the dense and sparse kernels emit
// bit-identical results, so a mixed-mode cluster still digests clean.
//
// Exit status: 0 only for a clean run (connected, mined, reported);
// anything else is a loud failure the launcher must surface.

#ifdef __linux__
#include <sys/prctl.h>
#include <unistd.h>
#endif

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "graph/csr_snapshot.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "gthinker/engine.h"
#include "mining/qc_app.h"
#include "net/job_spec.h"
#include "net/tcp_transport.h"
#include "util/logging.h"
#include "util/mem.h"
#include "util/serde.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

using namespace qcm;

int Fail(TcpTransport* transport, const std::string& message) {
  std::fprintf(stderr, "qcm_worker: %s\n", message.c_str());
  if (transport != nullptr) transport->SendAbort(message);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef __linux__
  // Never outlive the launcher: if qcm_cluster dies (crash, ^C, CI
  // timeout kill), the kernel SIGKILLs this worker instead of leaving an
  // orphan mining forever. The getppid check closes the race where the
  // parent died between our fork and this prctl (we were already
  // reparented, so the death signal would never fire).
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) {
    std::fprintf(stderr, "qcm_worker: launcher already gone, exiting\n");
    return 1;
  }
#endif
  std::string host = "127.0.0.1";
  int port = 0;
  std::string stats_json;
  long long dense_threshold_override = -1;  // -1 = keep the job spec value
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--coordinator-port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (a == "--coordinator-host" && i + 1 < argc) {
      host = argv[++i];
    } else if (a == "--stats-json" && i + 1 < argc) {
      stats_json = argv[++i];
    } else if (a == "--log-level" && i + 1 < argc) {
      LogLevel level;
      if (!ParseLogLevel(argv[++i], &level)) {
        std::fprintf(stderr, "qcm_worker: unknown --log-level %s\n",
                     argv[i]);
        return 2;
      }
      SetLogLevel(level);
    } else if (a == "--dense-threshold" && i + 1 < argc) {
      dense_threshold_override = std::atoll(argv[++i]);
      if (dense_threshold_override < 0) {
        std::fprintf(stderr,
                     "qcm_worker: --dense-threshold must be >= 0 (0 "
                     "disables the dense bitset kernels)\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: qcm_worker --coordinator-port P "
                   "[--coordinator-host H] [--stats-json PATH] "
                   "[--log-level L] [--dense-threshold N]\n");
      return 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "qcm_worker: --coordinator-port is required\n");
    return 2;
  }

  // Handshake: rank assignment + job spec + peer mesh.
  auto connected =
      TcpTransport::ConnectWorker(host, static_cast<uint16_t>(port));
  if (!connected.ok()) {
    return Fail(nullptr,
                "cluster handshake failed: " +
                    connected.status().ToString());
  }
  std::unique_ptr<TcpTransport> transport = std::move(connected).value();
  const int rank = transport->rank();

  ClusterJobSpec spec;
  {
    Status s = DecodeJobSpec(transport->config_blob(), &spec);
    if (!s.ok()) {
      return Fail(transport.get(), "bad job spec: " + s.ToString());
    }
  }
  if (spec.config.num_machines != transport->world_size()) {
    return Fail(transport.get(), "job spec world size mismatch");
  }
  if (dense_threshold_override >= 0) {
    spec.config.mining.dense_threshold = dense_threshold_override;
  }
  SetLogContext(rank, transport->epoch());
  // Tracing rides the job spec: every rank writes its own fragment file
  // beside the launcher's --trace-out path; qcm_cluster merges them into
  // one timeline after the run.
  const std::string trace_fragment =
      spec.config.trace_out.empty()
          ? ""
          : spec.config.trace_out + ".rank" + std::to_string(rank) +
                ".jsonl";
  if (!trace_fragment.empty()) {
    trace::Start(static_cast<size_t>(spec.config.trace_buffer_kb));
    trace::SetThreadName("worker_main");
  }

  // Graph load. Preferred path: mmap the launcher-packed .qcsr snapshot
  // (metadata checksums verified, adjacency pages faulted lazily) --
  // startup never materializes the full graph in this process. Legacy
  // fallback: rebuild deterministically from the edge list / planted
  // spec, then keep only this rank's partition.
  std::unique_ptr<VertexTable> table;
  WallTimer graph_timer;
  if (!spec.config.graph_snapshot.empty()) {
    auto snap = CsrSnapshot::Open(spec.config.graph_snapshot);
    if (!snap.ok()) {
      return Fail(transport.get(),
                  "snapshot open failed: " + snap.status().ToString());
    }
    table = std::make_unique<VertexTable>(
        std::move(snap).value(), transport->world_size(), rank,
        static_cast<uint64_t>(spec.config.graph_memory_budget));
    const PagedAdjacencyStore* store = table->paged_store();
    std::fprintf(
        stderr,
        "qcm_worker rank %d/%d epoch %u: snapshot %s, %u vertices "
        "total, %zu owned, mapped %s vs resident %s%s%s\n",
        rank, transport->world_size(), transport->epoch(),
        spec.config.graph_snapshot.c_str(), table->NumVertices(),
        table->OwnedVertices(rank).size(),
        HumanBytes(table->snapshot()->MappedBytes()).c_str(),
        HumanBytes(CurrentRssBytes()).c_str(),
        store != nullptr && store->paging_enabled()
            ? (", adjacency budget " + HumanBytes(store->budget_bytes()))
                  .c_str()
            : "",
        transport->epoch() > 0 ? " (replacement; replaying checkpoint)"
                               : "");
  } else {
    Graph full;
    if (!spec.input.empty()) {
      auto loaded = LoadEdgeList(spec.input);
      if (!loaded.ok()) {
        return Fail(transport.get(),
                    "graph load failed: " + loaded.status().ToString());
      }
      full = std::move(loaded->graph);
    } else {
      auto parsed = ParsePlantedSpec(spec.gen_planted, spec.seed);
      if (!parsed.ok()) {
        return Fail(transport.get(),
                    "bad planted spec: " + parsed.status().ToString());
      }
      auto generated = GenPlantedCommunities(parsed.value());
      if (!generated.ok()) {
        return Fail(transport.get(),
                    "graph generation failed: " +
                        generated.status().ToString());
      }
      full = std::move(generated).value();
    }
    table = std::make_unique<VertexTable>(full, transport->world_size(),
                                          rank);
    std::fprintf(stderr,
                 "qcm_worker rank %d/%d epoch %u: %u vertices total, "
                 "%zu owned%s\n",
                 rank, transport->world_size(), transport->epoch(),
                 table->NumVertices(),
                 table->OwnedVertices(rank).size(),
                 transport->epoch() > 0
                     ? " (replacement; replaying checkpoint)"
                     : "");
  }
  std::fprintf(stderr, "qcm_worker rank %d: graph ready in %.3f s\n", rank,
               graph_timer.Seconds());

  // Liveness beacons must flow before the engine starts the transport:
  // the coordinator's deadline for this rank is already armed.
  transport->SetHeartbeatInterval(spec.config.heartbeat_usec);

  QCApp app(spec.config);
  Engine engine(std::move(table), spec.config, &app, transport.get());
  auto report = engine.Run();
  if (!report.ok()) {
    return Fail(transport.get(),
                "engine failed: " + report.status().ToString());
  }

  // Ship the report + raw candidates to the coordinator for merging.
  {
    Encoder enc;
    EncodeEngineReport(report.value(), &enc);
    Status s = transport->SendReport(enc.Release());
    if (!s.ok()) {
      return Fail(transport.get(),
                  "report send failed: " + s.ToString());
    }
  }

  if (!trace_fragment.empty()) {
    Status ts = trace::WriteFragment(trace_fragment, rank);
    if (!ts.ok()) {
      std::fprintf(stderr, "qcm_worker rank %d: trace fragment failed: %s\n",
                   rank, ts.ToString().c_str());
    }
  }

  if (!stats_json.empty()) {
    const std::string json = EngineReportJson(report.value());
    if (FILE* f = std::fopen(stats_json.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "qcm_worker: cannot write %s\n",
                   stats_json.c_str());
    }
  }

  std::fprintf(stderr,
               "qcm_worker rank %d: done, %zu raw candidates, "
               "%llu tasks completed\n",
               rank, report->results.size(),
               static_cast<unsigned long long>(
                   report->counters.tasks_completed));
  const bool ok = transport->terminated() && !transport->failed();
  if (!ok) {
    std::fprintf(stderr, "qcm_worker rank %d: transport failure: %s\n",
                 rank, transport->failure().c_str());
  }
  transport->Shutdown();
  return ok ? 0 : 1;
}
