// qcm_pack: converts a SNAP-format edge list or a planted-community spec
// into a page-aligned, checksummed .qcsr snapshot (graph/csr_snapshot.h)
// that qcm_mine / qcm_worker mmap instead of text-parsing. Pack once,
// mine many times: qcm_cluster runs this conversion in-process and ships
// only the snapshot path to its workers.
//
// Usage:
//   qcm_pack --input graph.txt --output graph.qcsr [--page-size N]
//   qcm_pack --gen-planted n=5000,communities=10,size=16..20,density=0.95
//            --seed 7 --output planted.qcsr --verify
//
// Options:
//   --input PATH        SNAP edge list ('#' comments, "u v" lines)
//   --gen-planted SPEC  synthetic planted-community graph (qcm_mine SPEC)
//   --output PATH       snapshot file to write               (required)
//   --page-size N       section alignment / paging granularity in bytes;
//                       power of two >= 4096                 (default 65536)
//   --seed N            generator seed                       (default 1)
//   --verify            re-open the written file and stream-verify every
//                       section checksum (including adjacency)
//   --quiet             suppress the layout report

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/csr_snapshot.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "util/mem.h"
#include "util/timer.h"

namespace {

using namespace qcm;

struct Args {
  std::string input;
  std::string gen_planted;
  std::string output;
  uint32_t page_size = kCsrDefaultPageSize;
  uint64_t seed = 1;
  bool verify = false;
  bool quiet = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: qcm_pack (--input PATH | --gen-planted SPEC) "
               "--output FILE.qcsr\n"
               "                [--page-size N] [--seed N] [--verify] "
               "[--quiet]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--input") {
      const char* v = next("--input");
      if (!v) return false;
      args->input = v;
    } else if (a == "--gen-planted") {
      const char* v = next("--gen-planted");
      if (!v) return false;
      args->gen_planted = v;
    } else if (a == "--output") {
      const char* v = next("--output");
      if (!v) return false;
      args->output = v;
    } else if (a == "--page-size") {
      const char* v = next("--page-size");
      if (!v) return false;
      const long long page = std::atoll(v);
      if (page < static_cast<long long>(kCsrMinPageSize) ||
          (page & (page - 1)) != 0) {
        std::fprintf(stderr,
                     "--page-size must be a power of two >= %u\n",
                     kCsrMinPageSize);
        return false;
      }
      args->page_size = static_cast<uint32_t>(page);
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (a == "--verify") {
      args->verify = true;
    } else if (a == "--quiet") {
      args->quiet = true;
    } else if (a == "--help" || a == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  if (args->input.empty() == args->gen_planted.empty()) {
    std::fprintf(stderr,
                 "exactly one of --input / --gen-planted is required\n");
    return false;
  }
  if (args->output.empty()) {
    std::fprintf(stderr, "--output is required\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  WallTimer load_timer;
  Graph graph;
  std::vector<uint64_t> original_ids;
  if (!args.input.empty()) {
    auto loaded = LoadEdgeList(args.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded->graph);
    original_ids = std::move(loaded->original_ids);
  } else {
    auto spec = ParsePlantedSpec(args.gen_planted, args.seed);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    auto generated = GenPlantedCommunities(spec.value());
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
  }
  const double load_seconds = load_timer.Seconds();

  CsrWriteOptions opts;
  opts.page_size = args.page_size;
  opts.build_seed = args.gen_planted.empty() ? 0 : args.seed;
  WallTimer pack_timer;
  if (Status s = WriteCsrSnapshot(graph, original_ids, args.output, opts);
      !s.ok()) {
    std::fprintf(stderr, "pack failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double pack_seconds = pack_timer.Seconds();

  CsrSnapshot::OpenOptions open_opts;
  open_opts.verify_sections = args.verify;
  open_opts.verify_adjacency = args.verify;
  WallTimer verify_timer;
  auto snap = CsrSnapshot::Open(args.output, open_opts);
  if (!snap.ok()) {
    std::fprintf(stderr, "re-open of packed snapshot failed: %s\n",
                 snap.status().ToString().c_str());
    return 1;
  }
  const double verify_seconds = verify_timer.Seconds();

  if (!args.quiet) {
    const CsrHeader& h = (*snap)->header();
    std::fprintf(stderr,
                 "packed %s: %u vertices, %llu edges, %s (page size %s)\n",
                 args.output.c_str(), h.num_vertices,
                 static_cast<unsigned long long>(h.num_edges),
                 HumanBytes(h.file_bytes).c_str(),
                 HumanBytes(h.page_size).c_str());
    for (int i = 0; i < kCsrNumSections; ++i) {
      const CsrSectionDesc& s = h.sections[i];
      std::fprintf(stderr,
                   "  section %-12s offset %-10llu %-12s checksum "
                   "%016llx\n",
                   CsrSectionName(i),
                   static_cast<unsigned long long>(s.file_offset),
                   HumanBytes(s.bytes).c_str(),
                   static_cast<unsigned long long>(s.checksum));
    }
    std::fprintf(stderr,
                 "pack: load %.3f s, pack %.3f s, %s %.3f s\n",
                 load_seconds, pack_seconds,
                 args.verify ? "verify" : "re-open", verify_seconds);
  }
  return 0;
}
