#!/usr/bin/env python3
"""Gate: tracing compiled in but DISABLED must not slow the mining kernels.

Reads bench/trace_overhead_before_after.json -- kernel_bitset_probe cell
timings from the pre-tracing build ("before") and from the current build
with util/trace compiled in but switched off ("after") -- and fails if the
geometric mean of the after/before ratios exceeds the budget (default 5%).

The geometric mean is the gated statistic because the probe's smallest
cells are sub-microsecond and individually jitter by 20% on a shared CI
host; a uniform slowdown (what an always-armed trace hook would cause)
moves the geomean, single-cell noise does not. Each cell still gets a
loose individual ceiling so one severely-regressed kernel cannot hide
behind fifteen clean ones.

Usage: tools/check_trace_overhead.py [evidence.json] [--budget 1.05]
"""

import argparse
import json
import math
import sys


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("evidence", nargs="?",
                        default="bench/trace_overhead_before_after.json")
    parser.add_argument("--budget", type=float, default=1.05,
                        help="max allowed geomean after/before ratio")
    parser.add_argument("--cell-budget", type=float, default=1.50,
                        help="max allowed single-cell ratio (noise ceiling)")
    args = parser.parse_args()

    with open(args.evidence) as f:
        evidence = json.load(f)
    before, after = evidence["before"], evidence["after"]

    for name, run in (("before", before), ("after", after)):
        if not run.get("all_parity", False):
            print(f"FAIL: {name} probe run reports a dense/sparse parity "
                  "violation", file=sys.stderr)
            return 1

    before_cells = {(c["kernel"], c["n"]): c for c in before["cells"]}
    ratios = []
    for cell in after["cells"]:
        key = (cell["kernel"], cell["n"])
        if key not in before_cells:
            print(f"FAIL: cell {key} missing from the before run",
                  file=sys.stderr)
            return 1
        base = before_cells[key]
        for field in ("dense_ns", "sparse_ns"):
            if base[field] <= 0:
                print(f"FAIL: non-positive {field} in before cell {key}",
                      file=sys.stderr)
                return 1
            ratio = cell[field] / base[field]
            ratios.append(ratio)
            if ratio > args.cell_budget:
                print(f"FAIL: {key} {field} regressed {ratio:.3f}x "
                      f"({base[field]} -> {cell[field]} ns), over the "
                      f"{args.cell_budget:.2f}x single-cell ceiling",
                      file=sys.stderr)
                return 1

    if not ratios:
        print("FAIL: no comparable cells in the evidence file",
              file=sys.stderr)
        return 1
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    verdict = "OK" if geomean <= args.budget else "FAIL"
    print(f"{verdict}: tracing-off kernel overhead geomean {geomean:.4f} "
          f"over {len(ratios)} measurements (budget {args.budget:.2f}, "
          f"max cell {max(ratios):.3f})")
    return 0 if geomean <= args.budget else 1


if __name__ == "__main__":
    sys.exit(main())
