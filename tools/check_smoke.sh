#!/usr/bin/env bash
# Loud smoke check for CI: run qcm_mine on a planted-community graph and
# fail unless (a) it exits 0 and (b) its --stats output reports a nonzero
# maximal result count. A miner that silently finds nothing is as broken
# as one that crashes.
#
# If a qcm_cluster binary sits next to qcm_mine, the check also runs a
# real 3-process cluster (qcm_cluster + 3 forked qcm_worker ranks over
# loopback TCP) on the same graph and fails loudly unless every worker
# exits cleanly AND the cluster's result digest is bit-identical to the
# single-process run's. Worker logs land in QCM_SMOKE_LOG_DIR (default
# /tmp/qcm_smoke_logs) so CI can upload them when something breaks.
#
# Usage: tools/check_smoke.sh [path/to/qcm_mine] [extra miner flags...]
# Extra flags are appended to the miner invocation, e.g.
#   tools/check_smoke.sh ./build/qcm_mine --net-latency 0.002
# exercises the asynchronous CommFabric delivery path.
set -u -o pipefail

BIN="${1:-./build/qcm_mine}"
if [[ $# -gt 0 ]]; then shift; fi
if [[ ! -x "$BIN" ]]; then
  echo "check_smoke: FAIL -- miner binary not found/executable: $BIN" >&2
  exit 1
fi

out=$("$BIN" \
  --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
  --gamma 0.85 --min-size 8 --machines 2 --threads 2 --stats "$@" 2>&1)
status=$?
echo "$out"

if [[ $status -ne 0 ]]; then
  echo "check_smoke: FAIL -- qcm_mine exited with status $status" >&2
  exit 1
fi

# The final --stats line reads "N maximal quasi-cliques in X s".
count=$(printf '%s\n' "$out" |
  sed -n 's/^\([0-9][0-9]*\) maximal quasi-cliques in .*/\1/p' | tail -1)
if [[ -z "$count" ]]; then
  echo "check_smoke: FAIL -- no result-count line in --stats output" >&2
  exit 1
fi
if [[ "$count" -eq 0 ]]; then
  echo "check_smoke: FAIL -- miner reported 0 maximal quasi-cliques" >&2
  exit 1
fi

echo "check_smoke: OK -- $count maximal quasi-cliques"

single_digest=$(printf '%s\n' "$out" |
  sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
if [[ -z "$single_digest" ]]; then
  echo "check_smoke: FAIL -- qcm_mine printed no result-digest line" >&2
  exit 1
fi

# ---- Spawn-time prefetch phase -----------------------------------------
# The prefetch pipeline stage only changes vertex AVAILABILITY, never
# results: the same run with --prefetch must produce the bit-identical
# digest, and its stats must show the stage actually staged tasks.
prefetch_out=$("$BIN" \
  --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
  --gamma 0.85 --min-size 8 --machines 2 --threads 2 --stats --prefetch \
  "$@" 2>&1)
prefetch_status=$?
echo "$prefetch_out"

if [[ $prefetch_status -ne 0 ]]; then
  echo "check_smoke: FAIL -- qcm_mine --prefetch exited with status" \
    "$prefetch_status" >&2
  exit 1
fi
prefetch_digest=$(printf '%s\n' "$prefetch_out" |
  sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
if [[ "$prefetch_digest" != "$single_digest" ]]; then
  echo "check_smoke: FAIL -- prefetch digest $prefetch_digest !=" \
    "default digest $single_digest (prefetch must not change results)" >&2
  exit 1
fi
staged=$(printf '%s\n' "$prefetch_out" |
  sed -n 's/^prefetch: \([0-9][0-9]*\) tasks staged.*/\1/p' | tail -1)
if [[ -z "$staged" ]]; then
  echo "check_smoke: FAIL -- no prefetch stats line in --prefetch run" >&2
  exit 1
fi
if [[ "$staged" -eq 0 ]]; then
  # The 2-machine planted graph always has remote frontier vertices; a
  # run that staged nothing means the prefetch stage silently stopped
  # running, which is exactly what this phase exists to catch.
  echo "check_smoke: FAIL -- --prefetch run staged 0 tasks" >&2
  exit 1
fi
echo "check_smoke: OK -- prefetch digest matches ($staged tasks staged)"

# ---- Scalar-kernel phase -----------------------------------------------
# --dense-threshold 0 forces the scalar CSR kernels everywhere; the
# hybrid dense/sparse kernel split must not change results by a bit.
# First make sure the default run actually exercised the dense path.
dense_tasks=$(printf '%s\n' "$out" |
  sed -n 's/^kernels: \([0-9][0-9]*\) dense .*/\1/p' | tail -1)
if [[ -z "$dense_tasks" || "$dense_tasks" -eq 0 ]]; then
  echo "check_smoke: FAIL -- default run mined 0 dense tasks (the" \
    "word-parallel kernels silently stopped engaging)" >&2
  exit 1
fi
scalar_out=$("$BIN" \
  --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
  --gamma 0.85 --min-size 8 --machines 2 --threads 2 --stats \
  --dense-threshold 0 "$@" 2>&1)
scalar_status=$?
echo "$scalar_out"

if [[ $scalar_status -ne 0 ]]; then
  echo "check_smoke: FAIL -- qcm_mine --dense-threshold 0 exited with" \
    "status $scalar_status" >&2
  exit 1
fi
scalar_digest=$(printf '%s\n' "$scalar_out" |
  sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
if [[ "$scalar_digest" != "$single_digest" ]]; then
  echo "check_smoke: FAIL -- scalar-kernel digest $scalar_digest !=" \
    "default digest $single_digest (dense and sparse kernels must be" \
    "bit-identical)" >&2
  exit 1
fi
echo "check_smoke: OK -- scalar-kernel digest matches" \
  "($dense_tasks dense tasks in the default run)"

# ---- 3-process cluster phase -------------------------------------------
# Same graph, same parameters: the multi-process deployment must mine the
# bit-identical maximal set (compared via the canonical result digest both
# tools print).
CLUSTER_BIN="$(dirname "$BIN")/qcm_cluster"
if [[ ! -x "$CLUSTER_BIN" ]]; then
  echo "check_smoke: NOTE -- $CLUSTER_BIN not built, skipping cluster phase"
  exit 0
fi

LOG_DIR="${QCM_SMOKE_LOG_DIR:-/tmp/qcm_smoke_logs}"
mkdir -p "$LOG_DIR"
cluster_out=$("$CLUSTER_BIN" \
  --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
  --gamma 0.85 --min-size 8 --workers 3 --threads 2 --stats \
  --log-dir "$LOG_DIR" "$@" 2>&1)
cluster_status=$?
echo "$cluster_out"

if [[ $cluster_status -ne 0 ]]; then
  echo "check_smoke: FAIL -- qcm_cluster exited with status $cluster_status" \
    "(worker logs in $LOG_DIR)" >&2
  exit 1
fi

cluster_digest=$(printf '%s\n' "$cluster_out" |
  sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
if [[ -z "$cluster_digest" ]]; then
  echo "check_smoke: FAIL -- qcm_cluster printed no result-digest line" >&2
  exit 1
fi
if [[ "$cluster_digest" != "$single_digest" ]]; then
  echo "check_smoke: FAIL -- cluster digest $cluster_digest !=" \
    "single-process digest $single_digest (worker logs in $LOG_DIR)" >&2
  exit 1
fi

echo "check_smoke: OK -- 3-process cluster digest matches ($cluster_digest)"

# ---- Scalar-kernel cluster phase ---------------------------------------
# The same 3-process run with the dense kernels disabled must also land on
# the single-process digest: dense-default vs --dense-threshold 0 is the
# cross-process version of the kernel parity contract.
scalar_cluster_out=$("$CLUSTER_BIN" \
  --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
  --gamma 0.85 --min-size 8 --workers 3 --threads 2 --stats \
  --dense-threshold 0 --log-dir "$LOG_DIR" "$@" 2>&1)
scalar_cluster_status=$?
echo "$scalar_cluster_out"

if [[ $scalar_cluster_status -ne 0 ]]; then
  echo "check_smoke: FAIL -- --dense-threshold 0 qcm_cluster exited with" \
    "status $scalar_cluster_status (worker logs in $LOG_DIR)" >&2
  exit 1
fi
scalar_cluster_digest=$(printf '%s\n' "$scalar_cluster_out" |
  sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
if [[ "$scalar_cluster_digest" != "$single_digest" ]]; then
  echo "check_smoke: FAIL -- scalar-kernel cluster digest" \
    "$scalar_cluster_digest != single-process digest $single_digest" \
    "(worker logs in $LOG_DIR)" >&2
  exit 1
fi
echo "check_smoke: OK -- scalar-kernel cluster digest matches" \
  "($scalar_cluster_digest)"

# ---- Out-of-core snapshot phase ----------------------------------------
# Pack the same graph into a checksummed .qcsr snapshot (qcm_pack
# --verify re-reads every section), then mine it with a per-rank
# adjacency budget of two 4 KiB pages -- a small fraction of any rank's
# partition. The digest must stay bit-identical to the resident run while
# the pager demonstrably evicts, and the --stats rollup must report the
# bounded aggregate peak RSS.
PACK_BIN="$(dirname "$BIN")/qcm_pack"
if [[ -x "$PACK_BIN" ]]; then
  SNAP="$LOG_DIR/smoke_graph.qcsr"
  pack_out=$("$PACK_BIN" \
    --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
    --seed 1 --page-size 4096 --verify --output "$SNAP" 2>&1)
  pack_status=$?
  echo "$pack_out"
  if [[ $pack_status -ne 0 ]]; then
    echo "check_smoke: FAIL -- qcm_pack exited with status $pack_status" >&2
    exit 1
  fi

  oocsr_out=$("$CLUSTER_BIN" \
    --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
    --gamma 0.85 --min-size 8 --workers 3 --threads 2 --stats \
    --snapshot "$SNAP" --graph-page-size 4096 --graph-memory-budget 8192 \
    --log-dir "$LOG_DIR" "$@" 2>&1)
  oocsr_status=$?
  echo "$oocsr_out"
  if [[ $oocsr_status -ne 0 ]]; then
    echo "check_smoke: FAIL -- snapshot+budget qcm_cluster exited with" \
      "status $oocsr_status (worker logs in $LOG_DIR)" >&2
    exit 1
  fi
  oocsr_digest=$(printf '%s\n' "$oocsr_out" |
    sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
  if [[ "$oocsr_digest" != "$single_digest" ]]; then
    echo "check_smoke: FAIL -- snapshot+budget digest $oocsr_digest !=" \
      "single-process digest $single_digest (out-of-core paging must not" \
      "change results; worker logs in $LOG_DIR)" >&2
    exit 1
  fi
  evictions=$(printf '%s\n' "$oocsr_out" |
    sed -n 's/^graph: .* \([0-9][0-9]*\) evictions.*/\1/p' | tail -1)
  if [[ -z "$evictions" || "$evictions" -eq 0 ]]; then
    echo "check_smoke: FAIL -- budgeted run reported no page evictions" \
      "(the paged adjacency store silently stopped engaging)" >&2
    exit 1
  fi
  peak_rss=$(printf '%s\n' "$oocsr_out" |
    sed -n 's/^graph: .*aggregate peak rss \(.*\)$/\1/p' | tail -1)
  echo "check_smoke: OK -- snapshot+budget cluster digest matches" \
    "($evictions evictions, aggregate peak rss ${peak_rss:-unknown})"
else
  echo "check_smoke: NOTE -- $PACK_BIN not built, skipping snapshot phase"
fi

# ---- Coalescing-on cluster phase ---------------------------------------
# Same 3-process run with transport send-aggregation enabled: coalescing
# only changes how data frames share syscalls, never what arrives, so the
# digest must stay bit-identical to the single-process run.
coalesce_out=$("$CLUSTER_BIN" \
  --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
  --gamma 0.85 --min-size 8 --workers 3 --threads 2 --stats \
  --net-coalesce-bytes 1400 --net-linger-usec 100 \
  --log-dir "$LOG_DIR" "$@" 2>&1)
coalesce_status=$?
echo "$coalesce_out"

if [[ $coalesce_status -ne 0 ]]; then
  echo "check_smoke: FAIL -- coalescing-on qcm_cluster exited with status" \
    "$coalesce_status (worker logs in $LOG_DIR)" >&2
  exit 1
fi

coalesce_digest=$(printf '%s\n' "$coalesce_out" |
  sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
if [[ "$coalesce_digest" != "$single_digest" ]]; then
  echo "check_smoke: FAIL -- coalescing-on digest $coalesce_digest !=" \
    "single-process digest $single_digest (coalescing must not change" \
    "results; worker logs in $LOG_DIR)" >&2
  exit 1
fi

echo "check_smoke: OK -- coalescing-on cluster digest matches" \
  "($coalesce_digest)"

# ---- Tracing-on cluster phase ------------------------------------------
# Same 3-process run with --trace-out: tracing must be invisible in the
# results (bit-identical digest) while producing ONE merged Perfetto-
# loadable timeline containing events from every rank plus the kStats
# counter tracks. The merged trace lands in $LOG_DIR for CI to upload.
TRACE_OUT="$LOG_DIR/smoke_trace.json"
trace_cluster_out=$("$CLUSTER_BIN" \
  --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
  --gamma 0.85 --min-size 8 --workers 3 --threads 2 --stats \
  --trace-out "$TRACE_OUT" --stats-interval-ms 100 \
  --log-dir "$LOG_DIR" "$@" 2>&1)
trace_cluster_status=$?
echo "$trace_cluster_out"

if [[ $trace_cluster_status -ne 0 ]]; then
  echo "check_smoke: FAIL -- tracing-on qcm_cluster exited with status" \
    "$trace_cluster_status (worker logs in $LOG_DIR)" >&2
  exit 1
fi
trace_digest=$(printf '%s\n' "$trace_cluster_out" |
  sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
if [[ "$trace_digest" != "$single_digest" ]]; then
  echo "check_smoke: FAIL -- tracing-on digest $trace_digest !=" \
    "single-process digest $single_digest (tracing must not change" \
    "results; worker logs in $LOG_DIR)" >&2
  exit 1
fi
if [[ ! -s "$TRACE_OUT" ]]; then
  echo "check_smoke: FAIL -- tracing-on run produced no merged trace at" \
    "$TRACE_OUT" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  if ! python3 - "$TRACE_OUT" <<'PYEOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
pids = {e["pid"] for e in events}
missing = [r for r in range(3) if r not in pids]
if missing:
    sys.exit(f"no trace events from ranks {missing}")
if not any(e["ph"] == "C" for e in events):
    sys.exit("no kStats counter tracks in the merged trace")
ts = [e["ts"] for e in events]
if ts != sorted(ts):
    sys.exit("merged trace timestamps are not monotone")
print(f"merged trace valid: {len(events)} events from pids {sorted(pids)}")
PYEOF
  then
    echo "check_smoke: FAIL -- merged trace $TRACE_OUT is invalid" >&2
    exit 1
  fi
else
  # No python3: at least require the envelope and per-rank events.
  for r in 0 1 2; do
    if ! grep -q "\"pid\":$r," "$TRACE_OUT"; then
      echo "check_smoke: FAIL -- merged trace has no events from rank $r" >&2
      exit 1
    fi
  done
fi
ranks_left=$(ls "$TRACE_OUT".rank*.jsonl 2>/dev/null | wc -l)
if [[ "$ranks_left" -ne 0 ]]; then
  echo "check_smoke: FAIL -- $ranks_left trace fragments left behind" \
    "after the merge" >&2
  exit 1
fi
echo "check_smoke: OK -- tracing-on cluster digest matches, merged trace" \
  "at $TRACE_OUT"

# ---- Fault-injection phase ---------------------------------------------
# Same 3-process run, but the launcher SIGKILLs rank 1 once it is mid-
# mining (QCM_SMOKE_KILL_RANK env hook). The coordinator must detect the
# death, relaunch the rank, replay its checkpoint, and finish with the
# bit-identical digest -- recovery that loses or invents results is a
# correctness bug, not a flakiness problem.
fault_out=$(QCM_SMOKE_KILL_RANK=1 "$CLUSTER_BIN" \
  --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
  --gamma 0.85 --min-size 8 --workers 3 --threads 2 --stats \
  --log-dir "$LOG_DIR" "$@" 2>&1)
fault_status=$?
echo "$fault_out"

if [[ $fault_status -ne 0 ]]; then
  echo "check_smoke: FAIL -- fault-injected qcm_cluster exited with status" \
    "$fault_status (worker logs in $LOG_DIR)" >&2
  exit 1
fi

# The kill must actually have fired AND been recovered from; a run where
# the injection silently no-ops would vacuously "pass" the digest check.
if ! printf '%s\n' "$fault_out" |
    grep -q 'fault injection: SIGKILL rank 1'; then
  echo "check_smoke: FAIL -- fault injection never fired" \
    "(QCM_SMOKE_KILL_RANK=1 run printed no injection line)" >&2
  exit 1
fi
if ! printf '%s\n' "$fault_out" | grep -q 'rank 1 recovered: epoch 1'; then
  echo "check_smoke: FAIL -- rank 1 was killed but never recovered" \
    "(worker logs in $LOG_DIR)" >&2
  exit 1
fi

fault_digest=$(printf '%s\n' "$fault_out" |
  sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
if [[ "$fault_digest" != "$single_digest" ]]; then
  echo "check_smoke: FAIL -- fault-injected digest $fault_digest !=" \
    "single-process digest $single_digest (recovery lost or invented" \
    "results; worker logs in $LOG_DIR)" >&2
  exit 1
fi

echo "check_smoke: OK -- SIGKILL-rank-1 cluster digest matches" \
  "($fault_digest)"

# ---- Orphan check ------------------------------------------------------
# No qcm_worker may outlive its cluster: every worker sets
# PR_SET_PDEATHSIG and the launcher reaps replacements, so a survivor
# here is a process leak that would accumulate across CI runs.
if pgrep -x qcm_worker >/dev/null 2>&1; then
  echo "check_smoke: FAIL -- orphaned qcm_worker processes survived:" >&2
  pgrep -ax qcm_worker >&2
  exit 1
fi
echo "check_smoke: OK -- no orphaned qcm_worker processes"
