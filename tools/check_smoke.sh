#!/usr/bin/env bash
# Loud smoke check for CI: run qcm_mine on a planted-community graph and
# fail unless (a) it exits 0 and (b) its --stats output reports a nonzero
# maximal result count. A miner that silently finds nothing is as broken
# as one that crashes.
#
# Usage: tools/check_smoke.sh [path/to/qcm_mine] [extra miner flags...]
# Extra flags are appended to the miner invocation, e.g.
#   tools/check_smoke.sh ./build/qcm_mine --net-latency 0.002
# exercises the asynchronous CommFabric delivery path.
set -u -o pipefail

BIN="${1:-./build/qcm_mine}"
if [[ $# -gt 0 ]]; then shift; fi
if [[ ! -x "$BIN" ]]; then
  echo "check_smoke: FAIL -- miner binary not found/executable: $BIN" >&2
  exit 1
fi

out=$("$BIN" \
  --gen-planted n=2000,communities=5,size=10..14,density=0.95 \
  --gamma 0.85 --min-size 8 --machines 2 --threads 2 --stats "$@" 2>&1)
status=$?
echo "$out"

if [[ $status -ne 0 ]]; then
  echo "check_smoke: FAIL -- qcm_mine exited with status $status" >&2
  exit 1
fi

# The final --stats line reads "N maximal quasi-cliques in X s".
count=$(printf '%s\n' "$out" |
  sed -n 's/^\([0-9][0-9]*\) maximal quasi-cliques in .*/\1/p' | tail -1)
if [[ -z "$count" ]]; then
  echo "check_smoke: FAIL -- no result-count line in --stats output" >&2
  exit 1
fi
if [[ "$count" -eq 0 ]]; then
  echo "check_smoke: FAIL -- miner reported 0 maximal quasi-cliques" >&2
  exit 1
fi

echo "check_smoke: OK -- $count maximal quasi-cliques"
