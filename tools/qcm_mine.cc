// qcm_mine: command-line maximal quasi-clique miner.
//
// Load a SNAP-format edge list (or generate a synthetic graph), mine all
// maximal gamma-quasi-cliques serially or on the simulated G-thinker
// cluster, and write results / statistics.
//
// Usage:
//   qcm_mine --input graph.txt --gamma 0.9 --min-size 10 [options]
//   qcm_mine --gen-planted n=5000,communities=10,size=16..20,density=0.95
//            --gamma 0.9 --min-size 12 --machines 2 --threads 2
//
// Options:
//   --input PATH          SNAP edge list ('#' comments, "u v" lines)
//   --input-snapshot PATH qcm_pack .qcsr snapshot (checksummed binary
//                         CSR; loads without text parsing)
//   --gen-planted SPEC    synthetic planted-community graph (see below)
//   --gamma F             degree threshold in [0.5, 1]      (default 0.9)
//   --min-size N          minimum result size tau_size      (default 10)
//   --serial              single-thread reference miner
//   --machines N          simulated machines                (default 2)
//   --threads N           mining threads per machine        (default 2)
//   --tau-split N         big-task |ext(S)| threshold       (default 100)
//   --tau-time F          time-delayed timeout seconds      (default 0.01)
//   --mode M              none | size | time                (default time)
//   --cache-capacity N    per-machine vertex-cache entries; 0 disables
//                         caching                           (default 65536)
//   --cache-policy P      eviction policy: lru | clock | tinylfu
//                                                           (default lru)
//   --pull-batch N        max vertex ids per batched pull   (default 2048)
//   --net-latency F       modeled delivery delay in seconds applied to
//                         every cross-machine message       (default 0)
//   --net-latency-ticks N delivery delay in destination service ticks
//                                                           (default 0)
//   --prefetch            spawn-time pull prefetch: spawned tasks request
//                         their 1-hop frontier through the fabric before
//                         first schedule (results are bit-identical with
//                         the stage on or off)              (default off)
//   --prefetch-limit N    max tasks parked in the prefetch stage per
//                         machine                           (default 64)
//   --steal-rtt-ref F     link RTT (seconds) granting the steal planner
//                         one extra batch of per-move cap   (default 1e-3)
//   --steal-batch-factor N  hard cap multiplier for latency-scaled steal
//                         batches                           (default 8)
//   --dense-threshold N   task subgraphs with <= N vertices run the
//                         word-parallel bitset kernels (adjacency bitmap
//                         rows + popcount pruning); 0 forces the scalar
//                         CSR path everywhere. Results are bit-identical
//                         either way.                       (default 4096)
//   --output PATH         write one result per line ("v1 v2 ..."), in
//                         canonical order (sets sorted lexicographically)
//   --no-filter           report raw candidates (skip maximality filter)
//   --stats               print engine/pruning statistics
//   --stats-json PATH     write the EngineReport as JSON ("-" = stdout)
//   --trace-out PATH      record a Chrome trace-event timeline of the run
//                         (load in Perfetto / chrome://tracing); tracing
//                         is off without this flag and results are
//                         bit-identical either way
//   --trace-buffer-kb N   per-thread trace ring size        (default 256)
//   --stats-interval-ms N telemetry sampling cadence; 0 disables
//                                                           (default 500)
//   --log-level L         debug|info|warning|error|off (also settable via
//                         the QCM_LOG_LEVEL env var)        (default info)
//   --seed N              generator seed                    (default 1)
//
// The stderr summary always includes "result-digest: <16 hex>" -- the
// canonical-order FNV digest of the result set, comparable across serial,
// simulated and multi-process (qcm_cluster) runs.
//
// SPEC for --gen-planted: comma-separated key=value pairs --
//   n, communities, size=LO..HI, density, overlap, edges (ER background).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/csr_snapshot.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "mining/parallel_miner.h"
#include "quick/maximality_filter.h"
#include "quick/serial_miner.h"
#include "util/logging.h"
#include "util/mem.h"
#include "util/trace.h"

namespace {

using namespace qcm;

struct Args {
  std::string input;
  std::string input_snapshot;
  std::string gen_planted;
  double gamma = 0.9;
  uint32_t min_size = 10;
  bool serial = false;
  int machines = 2;
  int threads = 2;
  uint32_t tau_split = 100;
  double tau_time = 0.01;
  std::string mode = "time";
  size_t cache_capacity = 1 << 16;
  std::string cache_policy = "lru";
  size_t pull_batch = 2048;
  double net_latency_sec = 0.0;
  uint64_t net_latency_ticks = 0;
  bool prefetch = false;
  size_t prefetch_limit = 64;
  double steal_rtt_ref = 1e-3;
  uint64_t steal_batch_factor = 8;
  int64_t dense_threshold = MiningOptions{}.dense_threshold;
  std::string output;
  bool no_filter = false;
  bool stats = false;
  std::string stats_json;
  std::string trace_out;
  int64_t trace_buffer_kb = EngineConfig{}.trace_buffer_kb;
  int64_t stats_interval_ms = EngineConfig{}.stats_interval_ms;
  std::string log_level;
  uint64_t seed = 1;
};

void Usage() {
  std::fprintf(stderr,
               "usage: qcm_mine (--input PATH | --input-snapshot PATH | "
               "--gen-planted SPEC)\n"
               "                [--gamma F] [--min-size N]\n"
               "                [--serial | --machines N --threads N] "
               "[--tau-split N] [--tau-time F]\n"
               "                [--mode none|size|time] [--output PATH] "
               "[--no-filter] [--stats] [--seed N]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--input") {
      const char* v = next("--input");
      if (!v) return false;
      args->input = v;
    } else if (a == "--input-snapshot") {
      const char* v = next("--input-snapshot");
      if (!v) return false;
      args->input_snapshot = v;
    } else if (a == "--gen-planted") {
      const char* v = next("--gen-planted");
      if (!v) return false;
      args->gen_planted = v;
    } else if (a == "--gamma") {
      const char* v = next("--gamma");
      if (!v) return false;
      args->gamma = std::atof(v);
    } else if (a == "--min-size") {
      const char* v = next("--min-size");
      if (!v) return false;
      args->min_size = static_cast<uint32_t>(std::atoi(v));
    } else if (a == "--serial") {
      args->serial = true;
    } else if (a == "--machines") {
      const char* v = next("--machines");
      if (!v) return false;
      args->machines = std::atoi(v);
    } else if (a == "--threads") {
      const char* v = next("--threads");
      if (!v) return false;
      args->threads = std::atoi(v);
    } else if (a == "--tau-split") {
      const char* v = next("--tau-split");
      if (!v) return false;
      args->tau_split = static_cast<uint32_t>(std::atoi(v));
    } else if (a == "--tau-time") {
      const char* v = next("--tau-time");
      if (!v) return false;
      args->tau_time = std::atof(v);
    } else if (a == "--mode") {
      const char* v = next("--mode");
      if (!v) return false;
      args->mode = v;
    } else if (a == "--cache-capacity") {
      const char* v = next("--cache-capacity");
      if (!v) return false;
      args->cache_capacity = static_cast<size_t>(std::atoll(v));
    } else if (a == "--cache-policy") {
      const char* v = next("--cache-policy");
      if (!v) return false;
      args->cache_policy = v;
    } else if (a == "--net-latency") {
      const char* v = next("--net-latency");
      if (!v) return false;
      args->net_latency_sec = std::atof(v);
      if (args->net_latency_sec < 0) {
        std::fprintf(stderr, "--net-latency must be >= 0\n");
        return false;
      }
    } else if (a == "--net-latency-ticks") {
      const char* v = next("--net-latency-ticks");
      if (!v) return false;
      const long long ticks = std::atoll(v);
      if (ticks < 0) {
        std::fprintf(stderr, "--net-latency-ticks must be >= 0\n");
        return false;
      }
      args->net_latency_ticks = static_cast<uint64_t>(ticks);
    } else if (a == "--pull-batch") {
      const char* v = next("--pull-batch");
      if (!v) return false;
      args->pull_batch = static_cast<size_t>(std::atoll(v));
    } else if (a == "--prefetch") {
      args->prefetch = true;
    } else if (a == "--prefetch-limit") {
      const char* v = next("--prefetch-limit");
      if (!v) return false;
      const long long limit = std::atoll(v);
      if (limit < 0) {
        std::fprintf(stderr, "--prefetch-limit must be >= 0\n");
        return false;
      }
      args->prefetch_limit = static_cast<size_t>(limit);
    } else if (a == "--steal-rtt-ref") {
      const char* v = next("--steal-rtt-ref");
      if (!v) return false;
      args->steal_rtt_ref = std::atof(v);
    } else if (a == "--steal-batch-factor") {
      const char* v = next("--steal-batch-factor");
      if (!v) return false;
      const long long factor = std::atoll(v);
      if (factor < 1) {
        std::fprintf(stderr, "--steal-batch-factor must be >= 1\n");
        return false;
      }
      args->steal_batch_factor = static_cast<uint64_t>(factor);
    } else if (a == "--dense-threshold") {
      const char* v = next("--dense-threshold");
      if (!v) return false;
      const long long threshold = std::atoll(v);
      if (threshold < 0) {
        std::fprintf(stderr,
                     "--dense-threshold must be >= 0 (0 disables the dense "
                     "bitset kernels)\n");
        return false;
      }
      args->dense_threshold = threshold;
    } else if (a == "--output") {
      const char* v = next("--output");
      if (!v) return false;
      args->output = v;
    } else if (a == "--no-filter") {
      args->no_filter = true;
    } else if (a == "--stats") {
      args->stats = true;
    } else if (a == "--stats-json") {
      const char* v = next("--stats-json");
      if (!v) return false;
      args->stats_json = v;
    } else if (a == "--trace-out") {
      const char* v = next("--trace-out");
      if (!v) return false;
      args->trace_out = v;
    } else if (a == "--trace-buffer-kb") {
      const char* v = next("--trace-buffer-kb");
      if (!v) return false;
      args->trace_buffer_kb = std::atoll(v);
      if (args->trace_buffer_kb < 1) {
        std::fprintf(stderr, "--trace-buffer-kb must be >= 1\n");
        return false;
      }
    } else if (a == "--stats-interval-ms") {
      const char* v = next("--stats-interval-ms");
      if (!v) return false;
      args->stats_interval_ms = std::atoll(v);
      if (args->stats_interval_ms < 0) {
        std::fprintf(stderr, "--stats-interval-ms must be >= 0\n");
        return false;
      }
    } else if (a == "--log-level") {
      const char* v = next("--log-level");
      if (!v) return false;
      args->log_level = v;
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (a == "--help" || a == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  const int sources = (args->input.empty() ? 0 : 1) +
                      (args->input_snapshot.empty() ? 0 : 1) +
                      (args->gen_planted.empty() ? 0 : 1);
  if (sources != 1) {
    std::fprintf(stderr,
                 "exactly one of --input / --input-snapshot / "
                 "--gen-planted is required\n");
    return false;
  }
  if (args->serial && !args->stats_json.empty()) {
    std::fprintf(stderr,
                 "--stats-json requires the engine (not --serial)\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (!args.log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(args.log_level, &level)) {
      std::fprintf(stderr, "unknown --log-level %s\n",
                   args.log_level.c_str());
      return 2;
    }
    SetLogLevel(level);
  }
  if (!args.trace_out.empty()) {
    trace::Start(static_cast<size_t>(args.trace_buffer_kb));
    trace::SetThreadName("main");
  }

  // ---- Load or generate the graph. ----
  Graph graph;
  if (!args.input.empty()) {
    auto loaded = LoadEdgeList(args.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded->graph);
  } else if (!args.input_snapshot.empty()) {
    // Resident load from a qcm_pack .qcsr: no text parsing, checksummed.
    auto snap = CsrSnapshot::Open(args.input_snapshot);
    if (!snap.ok()) {
      std::fprintf(stderr, "snapshot open failed: %s\n",
                   snap.status().ToString().c_str());
      return 1;
    }
    auto materialized = (*snap)->ToGraph();
    if (!materialized.ok()) {
      std::fprintf(stderr, "snapshot load failed: %s\n",
                   materialized.status().ToString().c_str());
      return 1;
    }
    graph = std::move(materialized).value();
  } else {
    auto spec = ParsePlantedSpec(args.gen_planted, args.seed);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    auto generated = GenPlantedCommunities(spec.value());
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
  }
  std::fprintf(stderr, "graph: %u vertices, %lu edges\n",
               graph.NumVertices(),
               static_cast<unsigned long>(graph.NumEdges()));

  MiningOptions mining;
  mining.gamma = args.gamma;
  mining.min_size = args.min_size;
  mining.dense_threshold = args.dense_threshold;

  std::vector<VertexSet> candidates;
  std::string stats_json;
  double seconds = 0;
  if (args.serial) {
    VectorSink sink;
    SerialMiner miner(mining);
    auto report = miner.Run(graph, &sink);
    if (!report.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    candidates = std::move(sink.results());
    seconds = report->total_seconds;
    if (args.stats) {
      std::fprintf(stderr,
                   "serial: %lu roots, %lu search nodes, %lu candidates, "
                   "k-core %lu, build %.3f s, mine %.3f s\n",
                   static_cast<unsigned long>(report->roots_processed),
                   static_cast<unsigned long>(report->stats.nodes_explored),
                   static_cast<unsigned long>(report->stats.emitted),
                   static_cast<unsigned long>(report->kcore_size),
                   report->build_seconds, report->mine_seconds);
      std::fprintf(
          stderr,
          "kernels: %lu dense / %lu sparse tasks, %lu bitset words "
          "touched\n",
          static_cast<unsigned long>(report->stats.dense_tasks),
          static_cast<unsigned long>(report->stats.sparse_tasks),
          static_cast<unsigned long>(report->stats.bitset_words_touched));
    }
  } else {
    EngineConfig config;
    config.mining = mining;
    config.num_machines = args.machines;
    config.threads_per_machine = args.threads;
    config.tau_split = args.tau_split;
    config.tau_time = args.tau_time;
    config.vertex_cache_capacity = args.cache_capacity;
    config.max_pull_batch = args.pull_batch;
    config.net_latency_sec = args.net_latency_sec;
    config.net_latency_ticks = args.net_latency_ticks;
    config.spawn_prefetch = args.prefetch;
    config.prefetch_limit = args.prefetch_limit;
    config.steal_rtt_reference_sec = args.steal_rtt_ref;
    config.steal_max_batch_factor = args.steal_batch_factor;
    config.trace_out = args.trace_out;
    config.trace_buffer_kb = args.trace_buffer_kb;
    config.stats_interval_ms = args.stats_interval_ms;
    Status policy = ParseCachePolicy(args.cache_policy, &config.cache_policy);
    if (!policy.ok()) {
      std::fprintf(stderr, "--cache-policy: %s\n",
                   policy.ToString().c_str());
      return 2;
    }
    if (args.mode == "none") {
      config.mode = DecomposeMode::kNone;
    } else if (args.mode == "size") {
      config.mode = DecomposeMode::kSizeThreshold;
    } else if (args.mode == "time") {
      config.mode = DecomposeMode::kTimeDelayed;
    } else {
      std::fprintf(stderr, "unknown --mode %s\n", args.mode.c_str());
      return 2;
    }
    ParallelMiner miner(config);
    auto result = miner.Run(graph);
    if (!result.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    candidates = std::move(result->report.results);
    seconds = result->report.wall_seconds;
    if (!args.stats_json.empty()) {
      stats_json = EngineReportJson(result->report);
    }
    if (args.stats) {
      const EngineReport& r = result->report;
      std::fprintf(stderr,
                   "engine: %lu tasks (%lu big/%lu small), spill %lu "
                   "tasks/%s, steals %lu, cache %lu/%lu (%.1f%% hit), busy "
                   "max/min %.2f, peak RSS %s\n",
                   static_cast<unsigned long>(r.counters.tasks_completed),
                   static_cast<unsigned long>(r.counters.big_tasks),
                   static_cast<unsigned long>(r.counters.small_tasks),
                   static_cast<unsigned long>(r.counters.spilled_tasks),
                   HumanBytes(r.counters.spill_bytes_written).c_str(),
                   static_cast<unsigned long>(r.counters.stolen_tasks),
                   static_cast<unsigned long>(r.counters.cache_hits),
                   static_cast<unsigned long>(r.counters.cache_misses),
                   100.0 * r.counters.CacheHitRatio(), r.BusyImbalance(),
                   HumanBytes(r.peak_rss_bytes).c_str());
      std::fprintf(stderr,
                   "pulls: %lu suspensions, %lu rounds, %lu batches, %lu "
                   "vertices/%s pulled, %lu pin hits, fallback %s\n",
                   static_cast<unsigned long>(r.counters.task_suspensions),
                   static_cast<unsigned long>(r.counters.pull_rounds),
                   static_cast<unsigned long>(r.counters.pull_batches),
                   static_cast<unsigned long>(r.counters.pulled_vertices),
                   HumanBytes(r.counters.pull_bytes).c_str(),
                   static_cast<unsigned long>(r.counters.pin_hits),
                   HumanBytes(r.counters.remote_bytes).c_str());
      std::fprintf(
          stderr,
          "prefetch: %lu tasks staged, %lu vertices issued, %lu pins at "
          "first schedule, %lu first-round pin hits\n",
          static_cast<unsigned long>(r.counters.prefetch_tasks),
          static_cast<unsigned long>(r.counters.prefetch_issued),
          static_cast<unsigned long>(r.counters.first_schedule_pins),
          static_cast<unsigned long>(r.counters.prefetch_hits));
      const int req = static_cast<int>(MessageType::kPullRequest);
      const int resp = static_cast<int>(MessageType::kPullResponse);
      const int steal = static_cast<int>(MessageType::kStealBatch);
      std::fprintf(
          stderr,
          "comm: %lu msgs (%lu req/%lu resp/%lu steal), %s sent, "
          "mean delivery %.3f ms, overlap %.1f%%, peak in-flight %s, "
          "peak depth %lu, steal master %.3f s idle/%.3f s active\n",
          static_cast<unsigned long>(r.counters.MessagesSent()),
          static_cast<unsigned long>(r.counters.msg_sent[req]),
          static_cast<unsigned long>(r.counters.msg_sent[resp]),
          static_cast<unsigned long>(r.counters.msg_sent[steal]),
          HumanBytes(r.counters.MessageBytes()).c_str(),
          1e3 * r.counters.MeanDeliveryLatencySeconds(),
          100.0 * r.counters.MessageOverlapRatio(),
          HumanBytes(r.counters.msg_inflight_bytes_peak).c_str(),
          static_cast<unsigned long>(r.counters.msg_queue_depth_peak),
          1e-6 * static_cast<double>(r.counters.steal_idle_usec),
          1e-6 * static_cast<double>(r.counters.steal_active_usec));
      std::fprintf(
          stderr,
          "kernels: %lu dense / %lu sparse tasks, %lu bitset words "
          "touched\n",
          static_cast<unsigned long>(r.mining.dense_tasks),
          static_cast<unsigned long>(r.mining.sparse_tasks),
          static_cast<unsigned long>(r.mining.bitset_words_touched));
    }
  }

  std::vector<VertexSet> results =
      args.no_filter ? std::move(candidates)
                     : FilterMaximal(std::move(candidates));
  std::fprintf(stderr, "%zu %s quasi-cliques in %.3f s\n", results.size(),
               args.no_filter ? "candidate" : "maximal", seconds);
  // Canonical order + digest + output file, shared with qcm_cluster so
  // the two tools' bytes are comparable by construction.
  CanonicalizeStats canon;
  auto digest = EmitCanonicalResults(&results, args.output, &canon);
  if (!digest.ok()) {
    std::fprintf(stderr, "%s\n", digest.status().ToString().c_str());
    return 1;
  }
  if (args.stats) {
    std::fprintf(stderr,
                 "canonicalize: %lu sets already sorted, %lu re-sorted, "
                 "vector sort %s, ~%lu comparisons saved\n",
                 static_cast<unsigned long>(canon.sets_already_sorted),
                 static_cast<unsigned long>(canon.sets_resorted),
                 canon.vector_sort_skipped ? "skipped" : "needed",
                 static_cast<unsigned long>(canon.comparisons_saved));
  }

  if (!args.stats_json.empty()) {
    FILE* f = args.stats_json == "-" ? stdout
                                     : std::fopen(args.stats_json.c_str(),
                                                  "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   args.stats_json.c_str());
      return 1;
    }
    std::fputs(stats_json.c_str(), f);
    if (f != stdout) std::fclose(f);
  }

  // Single-process run: the whole timeline is local, so merge straight
  // from the in-memory rings (no fragment files).
  if (!args.trace_out.empty()) {
    std::vector<std::string> events;
    const std::string drained = trace::DrainJsonLines(/*pid=*/0);
    size_t start = 0;
    while (start < drained.size()) {
      size_t end = drained.find('\n', start);
      if (end == std::string::npos) end = drained.size();
      if (end > start) events.push_back(drained.substr(start, end - start));
      start = end + 1;
    }
    Status ts = trace::MergeFragments({}, events, args.trace_out);
    if (!ts.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   ts.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %s (%zu events, %lu dropped)\n",
                 args.trace_out.c_str(), events.size(),
                 static_cast<unsigned long>(trace::DroppedRecords()));
  }
  return 0;
}
