#!/usr/bin/env bash
# Out-of-core CSR snapshot bench (ISSUE 10 acceptance): quantify what the
# launcher-packed .qcsr snapshot buys a real 3-process qcm_cluster run,
# before vs after, on one planted graph:
#
#   before       --no-snapshot: every rank text-regenerates the FULL
#                graph and transiently materializes it before dropping
#                down to its partition (the legacy bring-up path).
#   after_mmap   launcher packs once, workers mmap the snapshot with no
#                adjacency budget (whole partition resident on demand).
#   after_budget same, plus --graph-memory-budget capped at <= 1/4 of a
#                rank's share of adjacency bytes: the rank mines a
#                partition LARGER than its adjacency budget, and the run
#                fails unless the pager reports evictions > 0.
#
# Every run's digest must be bit-identical to the 'before' baseline --
# out-of-core storage is a memory/startup optimization, never a results
# change. Recorded per mode: end-to-end wall seconds, the slowest rank's
# graph-ready time, per-rank peak RSS, and the paged-store counters.
#
# Usage: tools/bench_oocsr.sh [build-dir] [out.json]
set -u -o pipefail

BUILD="${1:-./build}"
OUT="${2:-bench/oocsr_before_after.json}"
CLUSTER="$BUILD/qcm_cluster"
PACK="$BUILD/qcm_pack"
for bin in "$CLUSTER" "$PACK"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_oocsr: FAIL -- missing binary $bin" >&2
    exit 1
  fi
done

# Dense enough that adjacency dwarfs the page budget; small enough that
# the 'before' per-rank full rebuild still finishes fast in CI.
GRAPH_SPEC="n=20000,communities=40,size=16..24,density=0.9"
PARAMS="--gamma 0.85 --min-size 12 --workers 3 --threads 2 --seed 1"
WORKERS=3
PAGE=4096
BUDGET=16384  # 4 frames -- well under 1/4 of a rank's adjacency share

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

SNAP="$workdir/graph.qcsr"
pack_out=$("$PACK" --gen-planted "$GRAPH_SPEC" --seed 1 \
  --page-size "$PAGE" --verify --output "$SNAP" 2>&1)
if [[ $? -ne 0 ]]; then
  echo "bench_oocsr: FAIL -- qcm_pack failed" >&2
  printf '%s\n' "$pack_out" >&2
  exit 1
fi
echo "$pack_out"
edges=$(printf '%s\n' "$pack_out" |
  sed -n 's/^packed .* vertices, \([0-9]*\) edges.*/\1/p' | tail -1)
if [[ -z "$edges" ]]; then
  echo "bench_oocsr: FAIL -- cannot parse edge count from qcm_pack" >&2
  exit 1
fi
# u32 per directed adjacency entry, 2 entries per undirected edge.
adjacency_bytes=$((edges * 8))
per_rank_bytes=$((adjacency_bytes / WORKERS))
if [[ $((BUDGET * 4)) -gt "$per_rank_bytes" ]]; then
  echo "bench_oocsr: FAIL -- budget $BUDGET is not <= 1/4 of a rank's" \
    "adjacency share ($per_rank_bytes B); grow the graph" >&2
  exit 1
fi

baseline_digest=""
rows=""

for mode in before after_mmap after_budget; do
  case "$mode" in
    before)       extra="--no-snapshot" ;;
    after_mmap)   extra="--snapshot $SNAP" ;;
    after_budget) extra="--snapshot $SNAP --graph-page-size $PAGE
                         --graph-memory-budget $BUDGET" ;;
  esac
  json="$workdir/$mode.json"
  logs="$workdir/logs_$mode"
  out=$($CLUSTER --gen-planted "$GRAPH_SPEC" $PARAMS $extra --stats \
        --stats-json "$json" --log-dir "$logs" 2>&1)
  status=$?
  if [[ $status -ne 0 ]]; then
    echo "bench_oocsr: FAIL -- qcm_cluster exited $status (mode=$mode)" >&2
    printf '%s\n' "$out" >&2
    exit 1
  fi

  digest=$(printf '%s\n' "$out" |
    sed -n 's/^result-digest: \([0-9a-f]\{16\}\)$/\1/p' | tail -1)
  if [[ -z "$baseline_digest" ]]; then
    baseline_digest="$digest"
  elif [[ "$digest" != "$baseline_digest" ]]; then
    echo "bench_oocsr: FAIL -- digest $digest (mode=$mode) != baseline" \
      "$baseline_digest (out-of-core storage changed the results)" >&2
    exit 1
  fi

  wall=$(printf '%s\n' "$out" |
    sed -n 's/^[0-9]* maximal quasi-cliques in \([0-9.]*\) s$/\1/p' |
    tail -1)
  ready_max=$(sed -n 's/.*graph ready in \([0-9.]*\) s$/\1/p' \
    "$logs"/worker*.log 2>/dev/null | sort -g | tail -1)
  peaks=$(grep -o '"peak_rss_bytes": [0-9]*' "$json" |
    awk '{print $2}' | head -"$WORKERS" | paste -sd, -)
  page_ins=$(printf '%s\n' "$out" |
    sed -n 's/^graph: .* \([0-9]*\) page-ins.*/\1/p' | tail -1)
  evictions=$(printf '%s\n' "$out" |
    sed -n 's/^graph: .* \([0-9]*\) evictions.*/\1/p' | tail -1)
  stall_ms=$(printf '%s\n' "$out" |
    sed -n 's/^graph: .*fault stall \([0-9.]*\) ms.*/\1/p' | tail -1)

  if [[ "$mode" == "after_budget" ]]; then
    if [[ -z "$evictions" || "$evictions" -eq 0 ]]; then
      echo "bench_oocsr: FAIL -- budgeted run reported no evictions (the" \
        "partition must exceed the adjacency budget)" >&2
      exit 1
    fi
  fi

  [[ -n "$rows" ]] && rows+=","
  rows+=$(printf '
    {
      "mode": "%s",
      "digest": "%s",
      "wall_seconds": %s,
      "graph_ready_sec_slowest_rank": %s,
      "rank_peak_rss_bytes": [%s],
      "graph_page_ins": %s,
      "graph_page_evictions": %s,
      "graph_fault_stall_ms": %s
    }' "$mode" "$digest" "${wall:-0}" "${ready_max:-0}" "${peaks:-0}" \
       "${page_ins:-0}" "${evictions:-0}" "${stall_ms:-0}")
  echo "bench_oocsr: $mode digest=$digest wall=${wall}s" \
    "ready=${ready_max}s evictions=${evictions:-0}"
done

mkdir -p "$(dirname "$OUT")"
cat > "$OUT" <<EOF
{
  "bench": "oocsr_before_after",
  "description": "Real 3-process qcm_cluster on $GRAPH_SPEC: 'before' = legacy --no-snapshot bring-up (every rank transiently materializes the full graph), 'after_mmap' = launcher packs one .qcsr and workers mmap it, 'after_budget' = same plus a per-rank adjacency budget of $BUDGET bytes (<= 1/4 of a rank's adjacency share), forcing CLOCK page eviction mid-mining. All digests bit-identical to 'before'.",
  "graph_spec": "$GRAPH_SPEC",
  "page_size": $PAGE,
  "memory_budget_bytes": $BUDGET,
  "adjacency_bytes_total": $adjacency_bytes,
  "adjacency_bytes_per_rank": $per_rank_bytes,
  "digest": "$baseline_digest",
  "runs": [$rows
  ]
}
EOF
echo "bench_oocsr: OK -- wrote $OUT (digest $baseline_digest)"
