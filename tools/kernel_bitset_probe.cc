// kernel_bitset_probe: deterministic dense-vs-sparse sweep over the four
// hybrid mining kernels (degree recomputation, two-hop filtering,
// cover-vertex intersection, union validity check) -- the standalone half
// of bench_kernel_before_after.sh. For every kernel x subgraph size it
// times the scalar CSR path against the word-parallel bitset path on the
// same inputs, cross-checks that both produce identical answers (the
// hybrid design's bit-identical contract), and prints the whole sweep as
// JSON. Unlike bench_micro_kernels it needs no google-benchmark, so CI
// can always run it.
//
// Usage: kernel_bitset_probe [--json PATH] [--target-ms N]
//
// Exit status: 0 iff every dense/sparse parity check passed.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/ego_builder.h"
#include "graph/generators.h"
#include "graph/local_graph.h"
#include "quick/cover_vertex.h"
#include "quick/mining_context.h"
#include "quick/recursive_mine.h"
#include "util/timer.h"

namespace {

using namespace qcm;

LocalGraph MakeGraph(uint32_t n, double density, uint64_t seed) {
  const uint64_t edges = static_cast<uint64_t>(
      density * static_cast<double>(n) * (n - 1) / 2.0);
  auto g = std::move(GenErdosRenyi(n, edges, seed)).value();
  EgoBuilder builder;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::vector<VertexId> adj(g.Neighbors(v).begin(), g.Neighbors(v).end());
    builder.Stage(v, adj);
  }
  return builder.Build();
}

MiningOptions ProbeOptions(bool dense, double gamma) {
  MiningOptions opts;
  opts.gamma = gamma;
  opts.min_size = 5;
  opts.dense_threshold = dense ? (int64_t{1} << 20) : 0;
  return opts;
}

/// Runs `body` repeatedly until `target_ms` of wall time accumulates
/// (at least 3 calls) and returns the mean nanoseconds per call.
template <typename Fn>
double TimeNs(double target_ms, Fn&& body) {
  WallTimer timer;
  uint64_t reps = 0;
  do {
    body();
    ++reps;
  } while (timer.Seconds() * 1e3 < target_ms || reps < 3);
  return timer.Seconds() * 1e9 / static_cast<double>(reps);
}

uint64_t MixChecksum(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

struct Cell {
  const char* kernel;
  uint32_t n;
  double sparse_ns;
  double dense_ns;
  uint64_t checksum_sparse;
  uint64_t checksum_dense;
  bool parity;
};

/// One kernel x size measurement: `run(ctx)` must return a checksum that
/// is a pure function of the kernel's answer, so equal checksums across
/// the two modes certify parity.
template <typename Fn>
Cell Measure(const char* kernel, const LocalGraph* g, double gamma,
             double target_ms, uint32_t n, Fn&& run) {
  CountingSink sink;
  MiningOptions sparse_opts = ProbeOptions(false, gamma);
  MiningOptions dense_opts = ProbeOptions(true, gamma);
  MiningContext sparse_ctx(g, sparse_opts, &sink);
  MiningContext dense_ctx(g, dense_opts, &sink);

  Cell cell{kernel, n, 0, 0, 0, 0, false};
  cell.checksum_sparse = run(sparse_ctx);
  cell.checksum_dense = run(dense_ctx);
  cell.parity = cell.checksum_sparse == cell.checksum_dense;
  uint64_t sink_sum = 0;  // keep the timed calls observable
  cell.sparse_ns =
      TimeNs(target_ms, [&] { sink_sum += run(sparse_ctx); });
  cell.dense_ns = TimeNs(target_ms, [&] { sink_sum += run(dense_ctx); });
  if (sink_sum == 0xdeadbeef) std::fprintf(stderr, "(unreachable)\n");
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double target_ms = 30.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--target-ms") == 0 && i + 1 < argc) {
      target_ms = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: kernel_bitset_probe [--json PATH] "
                   "[--target-ms N]\n");
      return 2;
    }
  }

  const uint32_t sizes[] = {64, 256, 1024, 4096};
  std::vector<Cell> cells;

  for (uint32_t n : sizes) {
    // ComputeDegrees: moderately dense subgraph, S = n/8 head vertices.
    {
      LocalGraph g = MakeGraph(n, 0.3, 7);
      std::vector<LocalId> s, ext;
      for (LocalId v = 0; v < n; ++v) (v < n / 8 ? s : ext).push_back(v);
      cells.push_back(Measure(
          "compute_degrees", &g, 0.85, target_ms, n,
          [&](MiningContext& ctx) {
            for (LocalId v : s) ctx.SetVState(v, VState::kInS);
            for (LocalId u : ext) ctx.SetVState(u, VState::kInExt);
            ComputeDegrees(ctx, s, ext);
            uint64_t h = 0;
            for (LocalId v : s) h = MixChecksum(h, ctx.ds()[v]);
            for (LocalId u : ext) {
              h = MixChecksum(h, ctx.ds()[u]);
              h = MixChecksum(h, ctx.dext()[u]);
            }
            for (LocalId v = 0; v < n; ++v)
              ctx.SetVState(v, VState::kOut);
            return h;
          }));
    }
    // TwoHopFilter: sparse subgraph so the 2-hop ball actually filters.
    {
      LocalGraph g = MakeGraph(n, 8.0 / n, 11);
      std::vector<LocalId> candidates;
      for (LocalId u = 1; u < n; ++u) candidates.push_back(u);
      cells.push_back(Measure(
          "two_hop_filter", &g, 0.85, target_ms, n,
          [&](MiningContext& ctx) {
            auto kept = TwoHopFilter(ctx, candidates, 0);
            uint64_t h = MixChecksum(0, kept.size());
            for (LocalId v : kept) h = MixChecksum(h, v);
            return h;
          }));
    }
    // Cover-vertex: dense subgraph, small S. The winning cover SET is
    // mode-independent; its element order is not, so checksum the sorted
    // set.
    {
      LocalGraph g = MakeGraph(n, 0.5, 17);
      std::vector<LocalId> s, ext;
      for (LocalId v = 0; v < n; ++v) (v < 4 ? s : ext).push_back(v);
      cells.push_back(Measure(
          "cover_vertex", &g, 0.6, target_ms, n,
          [&](MiningContext& ctx) {
            auto cover = FindBestCoverSet(ctx, s, ext);
            std::sort(cover.begin(), cover.end());
            uint64_t h = MixChecksum(0, cover.size());
            for (LocalId v : cover) h = MixChecksum(h, v);
            return h;
          }));
    }
    // Union validity check: low gamma so the scan rarely early-exits.
    {
      LocalGraph g = MakeGraph(n, 0.6, 23);
      std::vector<LocalId> a, b;
      for (LocalId v = 0; v < n / 2; ++v) a.push_back(v);
      for (LocalId v = n / 2; v < n / 2 + n / 4; ++v) b.push_back(v);
      cells.push_back(Measure(
          "union_check", &g, 0.5, target_ms, n,
          [&](MiningContext& ctx) {
            return MixChecksum(1, ctx.IsQuasiCliqueUnion(a, b) ? 1 : 0);
          }));
    }
  }

  bool all_parity = true;
  std::string out = "{\n  \"tool\": \"kernel_bitset_probe\",\n  \"cells\": [\n";
  char line[512];
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    all_parity = all_parity && c.parity;
    std::snprintf(
        line, sizeof(line),
        "    {\"kernel\": \"%s\", \"n\": %u, \"sparse_ns\": %.0f, "
        "\"dense_ns\": %.0f, \"speedup\": %.2f, \"parity\": %s}%s\n",
        c.kernel, c.n, c.sparse_ns, c.dense_ns,
        c.dense_ns > 0 ? c.sparse_ns / c.dense_ns : 0.0,
        c.parity ? "true" : "false", i + 1 < cells.size() ? "," : "");
    out += line;
  }
  out += "  ],\n  \"all_parity\": ";
  out += all_parity ? "true" : "false";
  out += "\n}\n";

  if (json_path.empty() || json_path == "-") {
    std::fputs(out.c_str(), stdout);
  } else {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
  }
  if (!all_parity) {
    std::fprintf(stderr,
                 "kernel_bitset_probe: dense/sparse PARITY FAILURE\n");
    return 1;
  }
  return 0;
}
