// steal_planner_probe: prints (as JSON) the steal planner's behavior over
// an RTT sweep -- the deterministic, policy-level half of the cluster
// latency bench (bench_cluster_latency.sh). For each RTT it plans one
// balancing round over a fixed skewed pending-big distribution and
// reports the per-move batch caps and planned batch sizes, demonstrating
// the "larger, rarer batches on slow links" policy without depending on
// a live run happening to trigger steals.
//
// Usage: steal_planner_probe [base_batch] [max_factor]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sched/rtt.h"
#include "sched/steal_planner.h"

int main(int argc, char** argv) {
  using namespace qcm;
  StealPlannerOptions opts;
  opts.base_batch = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  opts.max_batch_factor =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

  // A heavily skewed 3-machine cluster: machine 0 holds all big tasks.
  const std::vector<uint64_t> pending = {600, 0, 0};
  const double rtts[] = {0.0, 0.0005, 0.001, 0.002, 0.005, 0.010, 0.050};

  std::printf("{\n  \"base_batch\": %llu,\n  \"max_batch_factor\": %llu,\n",
              static_cast<unsigned long long>(opts.base_batch),
              static_cast<unsigned long long>(opts.max_batch_factor));
  std::printf("  \"pending_big\": [600, 0, 0],\n  \"sweep\": [\n");
  for (size_t i = 0; i < sizeof(rtts) / sizeof(rtts[0]); ++i) {
    const double rtt = rtts[i];
    LinkRttTracker tracker(3, 1.0);
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        if (a != b) tracker.RecordOneWay(a, b, rtt / 2.0);
      }
    }
    const uint64_t cap = LatencyAwareBatchCap(opts, rtt);
    auto moves = PlanSteals(pending, opts, &tracker);
    uint64_t planned = 0;
    for (const StealMove& m : moves) planned += m.want;
    std::printf(
        "    {\"rtt_sec\": %g, \"batch_cap\": %llu, \"moves\": %zu, "
        "\"tasks_per_move\": %g}%s\n",
        rtt, static_cast<unsigned long long>(cap), moves.size(),
        moves.empty() ? 0.0
                      : static_cast<double>(planned) /
                            static_cast<double>(moves.size()),
        i + 1 < sizeof(rtts) / sizeof(rtts[0]) ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
