// The steal planner: the single balancing-plan implementation behind both
// steal masters -- the in-process Engine::StealLoop (simulated cluster)
// and the multi-process Coordinator's kStealCmd mastering. Before this
// layer the two reimplemented the same plan independently and both were
// latency-blind.
//
// Base plan (paper §5): collect per-machine pending big-task counts,
// compute the average, and move at most one batch per donor per planning
// round toward the average, always into the currently most starved
// receiver.
//
// Latency awareness (ROADMAP "latency-aware steal planning"): each
// message on a slow link pays its round-trip time regardless of batch
// size, so the per-task cost of a steal falls as the batch grows. The
// planner therefore scales the per-move batch cap with the link's RTT
// EWMA (measured off fabric message timestamps by LinkRttTracker) --
// slow links carry LARGER batches -- and suppresses moves whose gain
// would not fill half a cap on a link slower than the reference RTT --
// slow links carry RARER batches. With an unmeasured or sub-reference
// RTT the plan degenerates to exactly the legacy flat-batch behavior,
// which is what keeps result digests bit-identical across modes.

#ifndef QCM_SCHED_STEAL_PLANNER_H_
#define QCM_SCHED_STEAL_PLANNER_H_

#include <cstdint>
#include <vector>

#include "sched/rtt.h"

namespace qcm {

/// One planned transfer of big tasks between machines.
struct StealMove {
  int donor = 0;
  int receiver = 0;
  uint64_t want = 0;
};

struct StealPlannerOptions {
  /// The engine's batch size C: the per-move cap on a zero-latency link.
  uint64_t base_batch = 16;
  /// Link RTT granting one extra base batch of cap (and the threshold
  /// past which sub-half-cap moves are suppressed).
  double rtt_reference_sec = 1e-3;
  /// Hard cap multiplier: a move never exceeds base_batch * this.
  uint64_t max_batch_factor = 8;
};

/// Per-move batch cap for a link with the given RTT estimate:
/// base_batch * (1 + floor(rtt / rtt_reference)), clamped to
/// base_batch * max_batch_factor. An RTT of 0 (unmeasured) or below the
/// reference yields exactly base_batch -- the legacy flat cap.
uint64_t LatencyAwareBatchCap(const StealPlannerOptions& opts,
                              double rtt_sec);

/// Plans one balancing round over per-machine pending big-task counts.
/// `rtt` may be null (all links treated as unmeasured). Deterministic:
/// donors are visited in machine order and counts are adjusted move by
/// move, exactly like the legacy inline planners.
std::vector<StealMove> PlanSteals(const std::vector<uint64_t>& pending_big,
                                  const StealPlannerOptions& opts,
                                  const LinkRttTracker* rtt);

}  // namespace qcm

#endif  // QCM_SCHED_STEAL_PLANNER_H_
