#include "sched/scheduler.h"

#include "util/logging.h"
#include "util/serde.h"
#include "util/trace.h"

namespace qcm {

// ---------------------------------------------------------------------------
// Spawn-time prefetch oracle: the PrefetchContext App::SpawnPrefetch runs
// against. Want() mirrors ComputeContext::Request exactly -- local, pinned
// and cached vertices are available without a transfer (cache hits are
// pinned into the task so eviction cannot lose them before the first
// round) -- except that a miss queues the id for the task's SPAWN-TIME
// pull instead of suspending a compute round.
// ---------------------------------------------------------------------------

class Scheduler::SpawnPrefetchOracle : public PrefetchContext {
 public:
  SpawnPrefetchOracle(DataService* data, Task* task,
                      EngineCounters* counters)
      : data_(data), task_(task), counters_(counters) {}

  bool IsLocal(VertexId v) const override { return data_->IsLocal(v); }

  uint32_t Degree(VertexId v) const override { return data_->Degree(v); }

  std::span<const VertexId> LocalAdjacency(VertexId v) const override {
    QCM_CHECK(data_->IsLocal(v))
        << "SpawnPrefetch read of non-local adjacency " << v;
    return data_->table().Adjacency(v);
  }

  bool Want(VertexId v) override {
    if (data_->IsLocal(v)) return true;
    TaskPullState& pulls = task_->pulls();
    if (pulls.Find(v) != nullptr) return true;
    if (auto cached = data_->TryCached(v)) {
      pulls.Pin(v, std::move(cached));
      return true;
    }
    pulls.Want(v);
    counters_->prefetch_issued.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

 private:
  DataService* data_;
  Task* task_;
  EngineCounters* counters_;
};

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

Scheduler::Scheduler(Deps deps) : deps_(deps) {
  QCM_CHECK(deps_.config != nullptr && deps_.app != nullptr &&
            deps_.table != nullptr && deps_.data != nullptr &&
            deps_.broker != nullptr && deps_.global_queue != nullptr &&
            deps_.small_spill != nullptr && deps_.counters != nullptr &&
            deps_.pending != nullptr && deps_.active_spawners != nullptr)
      << "Scheduler constructed with missing dependencies";
}

void Scheduler::ServiceFabric(CommFabric* fabric, LocalQueue& local) {
  for (Message& m : fabric->Service(deps_.machine)) {
    switch (m.type) {
      case MessageType::kPullRequest:
        // We own the requested vertices; serve from the local table and
        // send the adjacency batch back through the modeled network.
        fabric->Send(MessageType::kPullResponse, deps_.machine, m.src,
                     deps_.broker->ServeRequest(m.payload));
        break;
      case MessageType::kPullResponse:
        for (TaskPtr& task : deps_.broker->AcceptResponse(m.payload)) {
          OnResumed(std::move(task), local);
        }
        break;
      case MessageType::kStealBatch: {
        // Stolen big tasks arrive as prefetched work for this machine's
        // global queue; they stayed counted in pending_ during flight.
        Decoder dec(m.payload);
        uint32_t count = 0;
        Status s = dec.GetU32(&count);
        QCM_CHECK(s.ok()) << "corrupt steal batch: " << s.ToString();
        std::vector<TaskPtr> tasks;
        tasks.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          auto task = deps_.app->DecodeTask(&dec);
          QCM_CHECK(task.ok()) << "steal transfer decode failed: "
                               << task.status().ToString();
          RehydrateTaskState(*task.value(), TaskState::kStolen,
                             lifecycle());
          tasks.push_back(std::move(task).value());
        }
        deps_.global_queue->PushStolenFront(std::move(tasks));
        break;
      }
    }
  }
  for (TaskPtr& task : deps_.broker->PumpRequests(fabric)) {
    OnResumed(std::move(task), local);
  }
}

TaskPtr Scheduler::NextTask(LocalQueue& local, ComputeContext& ctx) {
  TaskPtr task = deps_.global_queue->TryPop();
  if (task == nullptr) task = PopLocal(local, ctx);
  if (task != nullptr) {
    AdvanceTaskState(*task, TaskState::kRunning, lifecycle());
  }
  return task;
}

void Scheduler::OnComputeResult(TaskPtr task, ComputeStatus status,
                                LocalQueue& local) {
  task->sched_info().computed_once = true;
  if (status == ComputeStatus::kRequeue) {
    AdvanceTaskState(*task, TaskState::kReady, lifecycle());
    Enqueue(std::move(task), local);  // still counted in pending_
  } else if (status == ComputeStatus::kSuspended &&
             task->pulls().HasWanted()) {
    // The task's pull is outstanding: yield the comper (Alg. 3's "add t
    // back to the queue"). The task stays counted in pending_ while it
    // is parked, so termination cannot race past it; a broker flush
    // resumes it.
    deps_.counters->task_suspensions.fetch_add(1,
                                               std::memory_order_relaxed);
    AdvanceTaskState(*task, TaskState::kSuspended, lifecycle());
    deps_.broker->Park(std::move(task));
  } else if (status == ComputeStatus::kSuspended) {
    // Nothing actually outstanding: degenerate to a requeue.
    AdvanceTaskState(*task, TaskState::kReady, lifecycle());
    Enqueue(std::move(task), local);
  } else {
    AdvanceTaskState(*task, TaskState::kDone, lifecycle());
    deps_.counters->tasks_completed.fetch_add(1, std::memory_order_relaxed);
    // Root-progress update happens-after the comper appended this round's
    // results to the checkpoint log, so a root-done record can never
    // become durable ahead of its subtree's results.
    if (deps_.root_progress != nullptr) {
      deps_.root_progress->OnTaskDone(task->root());
    }
    deps_.pending->fetch_sub(1);
  }
}

void Scheduler::SubmitNew(TaskPtr task, LocalQueue& local) {
  deps_.pending->fetch_add(1);
  // Registered before the parent's own kDone can decrement the root's
  // outstanding count (AddTask runs inside the parent's compute round),
  // so a tracked root's subtree count never touches zero early.
  if (deps_.root_progress != nullptr) {
    deps_.root_progress->OnSubtask(task->root());
  }
  AdvanceTaskState(*task, TaskState::kReady, lifecycle());
  Enqueue(std::move(task), local);
}

bool Scheduler::SpawnExhausted() const {
  return spawn_cursor_.load() >=
         deps_.table->OwnedVertices(deps_.machine).size();
}

void Scheduler::Enqueue(TaskPtr task, LocalQueue& local) {
  QCM_CHECK(task->sched_info().state == TaskState::kReady)
      << "enqueue of a task in state "
      << TaskStateName(task->sched_info().state);
  if (task->SizeHint() > deps_.config->tau_split) {
    deps_.counters->big_tasks.fetch_add(1, std::memory_order_relaxed);
    deps_.global_queue->Push(std::move(task));
  } else {
    deps_.counters->small_tasks.fetch_add(1, std::memory_order_relaxed);
    PushLocal(local, std::move(task));
  }
}

void Scheduler::OnResumed(TaskPtr task, LocalQueue& local) {
  const bool was_prefetching =
      task->sched_info().state == TaskState::kPrefetching;
  AdvanceTaskState(*task, TaskState::kReady, lifecycle());
  if (was_prefetching) {
    prefetching_.fetch_sub(1, std::memory_order_relaxed);
    // The pipeline's payoff, measured: these pins are sitting in the
    // task BEFORE its first schedule.
    deps_.counters->first_schedule_pins.fetch_add(
        task->pulls().PinCount(), std::memory_order_relaxed);
  }
  Enqueue(std::move(task), local);
}

bool Scheduler::AdmitSpawned(TaskPtr task, LocalQueue& local) {
  deps_.pending->fetch_add(1);
  const bool big = task->SizeHint() > deps_.config->tau_split;
  if (deps_.config->spawn_prefetch &&
      prefetching_.load(std::memory_order_relaxed) <
          deps_.config->prefetch_limit) {
    SpawnPrefetchOracle oracle(deps_.data, task.get(), deps_.counters);
    deps_.app->SpawnPrefetch(*task, oracle);
    task->sched_info().prefetched = true;
    if (task->pulls().HasWanted()) {
      // Transfer needed: enter the prefetch pipeline stage. The task
      // parks in the broker exactly like a suspended one; the next
      // request pump ships its wants as batched kPullRequests, and the
      // task is first scheduled only once every response has pinned.
      deps_.counters->prefetch_tasks.fetch_add(1,
                                               std::memory_order_relaxed);
      prefetching_.fetch_add(1, std::memory_order_relaxed);
      AdvanceTaskState(*task, TaskState::kPrefetching, lifecycle());
      deps_.broker->Park(std::move(task));
      return big;
    }
    // Everything the first round needs is already here; any cache hits
    // Want() pinned count as first-schedule pins too.
    deps_.counters->first_schedule_pins.fetch_add(
        task->pulls().PinCount(), std::memory_order_relaxed);
  }
  AdvanceTaskState(*task, TaskState::kReady, lifecycle());
  Enqueue(std::move(task), local);
  return big;
}

void Scheduler::PushLocal(LocalQueue& local, TaskPtr task) {
  local.q_.push_back(std::move(task));
  if (local.q_.size() > deps_.config->local_queue_capacity) {
    QCM_TRACE_SPAN(trace::kLifecycle, "spill_batch",
                   deps_.config->batch_size);
    // Spill a batch of C tasks from the tail of the queue.
    std::vector<std::string> blobs;
    blobs.reserve(deps_.config->batch_size);
    while (blobs.size() < deps_.config->batch_size &&
           local.q_.size() > 1) {
      AdvanceTaskState(*local.q_.back(), TaskState::kSpilled, lifecycle());
      Encoder enc;
      local.q_.back()->Encode(&enc);
      blobs.push_back(enc.Release());
      local.q_.pop_back();
    }
    Status s = deps_.small_spill->SpillBatch(blobs);
    QCM_CHECK(s.ok()) << "local queue spill failed: " << s.ToString();
  }
}

TaskPtr Scheduler::PopLocal(LocalQueue& local, ComputeContext& ctx) {
  if (local.q_.size() < deps_.config->batch_size) RefillLocal(local, ctx);
  if (local.q_.empty()) return nullptr;
  TaskPtr t = std::move(local.q_.front());
  local.q_.pop_front();
  return t;
}

/// Refill priority (paper §5 "third change"): L_small first, then spawn a
/// batch of fresh tasks, stopping as soon as a spawned task is big.
void Scheduler::RefillLocal(LocalQueue& local, ComputeContext& ctx) {
  auto blobs = deps_.small_spill->PopBatch();
  QCM_CHECK(blobs.ok()) << "L_small refill failed: "
                        << blobs.status().ToString();
  if (!blobs->empty()) {
    // Traced only when a batch actually rehydrates: an idle comper polls
    // this path constantly and must not flood the ring.
    QCM_TRACE_SPAN(trace::kLifecycle, "refill_spill", blobs->size());
    for (const std::string& blob : blobs.value()) {
      Decoder dec(blob);
      auto task = deps_.app->DecodeTask(&dec);
      QCM_CHECK(task.ok()) << "task decode from L_small failed: "
                           << task.status().ToString();
      RehydrateTaskState(*task.value(), TaskState::kSpilled, lifecycle());
      local.q_.push_back(std::move(task).value());
    }
    return;
  }
  // Spawn from the machine's unspawned vertices. The span is emitted
  // retroactively so an exhausted spawn cursor (the common idle case)
  // records nothing.
  const uint64_t spawn_begin_usec =
      trace::Enabled() ? trace::TraceNowMicros() : 0;
  size_t admitted = 0;
  const std::vector<VertexId>& owned =
      deps_.table->OwnedVertices(deps_.machine);
  deps_.active_spawners->fetch_add(1);
  size_t spawned_small = 0;
  while (spawned_small < deps_.config->batch_size) {
    const size_t idx = spawn_cursor_.fetch_add(1);
    if (idx >= owned.size()) break;
    // Checkpoint replay: roots the previous incarnation fully mined are
    // already in the recovered results; spawning them again would only
    // manufacture duplicates for the dedup to discard.
    if (deps_.completed_roots != nullptr &&
        deps_.completed_roots->count(owned[idx]) != 0) {
      deps_.counters->completed_roots_skipped.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    TaskPtr task = deps_.app->Spawn(owned[idx], ctx);
    if (task == nullptr) continue;
    if (deps_.root_progress != nullptr) {
      deps_.root_progress->OnSpawn(owned[idx]);
    }
    ++ctx.metrics().tasks_spawned;
    const bool big = AdmitSpawned(std::move(task), local);
    ++admitted;
    if (big) break;  // avoid generating many big tasks out of one refill
    ++spawned_small;
  }
  deps_.active_spawners->fetch_sub(1);
  if (admitted > 0 && trace::Enabled()) {
    trace::EmitSpan(QCM_TRACE_NAME("spawn_batch"), trace::kLifecycle,
                    spawn_begin_usec,
                    trace::TraceNowMicros() - spawn_begin_usec,
                    static_cast<uint32_t>(admitted));
  }
}

}  // namespace qcm
