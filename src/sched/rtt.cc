#include "sched/rtt.h"

#include <bit>

#include "util/logging.h"

namespace qcm {

namespace {

// 0.0 bit-casts to 0, so zero-initialized cells read as "unmeasured".
uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }
double Value(uint64_t bits) { return std::bit_cast<double>(bits); }

}  // namespace

LinkRttTracker::LinkRttTracker(int num_machines, double alpha)
    : n_(num_machines),
      alpha_(alpha),
      links_(static_cast<size_t>(num_machines) * num_machines),
      inbound_(num_machines) {
  QCM_CHECK(num_machines >= 1) << "LinkRttTracker needs >= 1 machine";
  QCM_CHECK(alpha > 0.0 && alpha <= 1.0)
      << "EWMA alpha must be in (0, 1], got " << alpha;
}

void LinkRttTracker::Ewma(std::atomic<uint64_t>* cell, double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  uint64_t seen = cell->load(std::memory_order_relaxed);
  for (;;) {
    const double prev = Value(seen);
    // First sample seeds the average (0.0 means "never observed").
    const double next =
        prev == 0.0 ? seconds : alpha_ * seconds + (1.0 - alpha_) * prev;
    if (cell->compare_exchange_weak(seen, Bits(next),
                                    std::memory_order_relaxed)) {
      return;
    }
    // CAS failure reloaded `seen`; retry against the fresher average.
  }
}

double LinkRttTracker::Load(const std::atomic<uint64_t>& cell) {
  return Value(cell.load(std::memory_order_relaxed));
}

void LinkRttTracker::RecordOneWay(int src, int dst, double seconds) {
  if (src < 0 || src >= n_ || dst < 0 || dst >= n_) return;
  Ewma(&links_[static_cast<size_t>(src) * n_ + dst], seconds);
}

void LinkRttTracker::RecordInbound(int dst, double seconds) {
  if (dst < 0 || dst >= n_) return;
  Ewma(&inbound_[dst], seconds);
}

double LinkRttTracker::OneWay(int src, int dst) const {
  if (src < 0 || src >= n_ || dst < 0 || dst >= n_) return 0.0;
  const double link = Load(links_[static_cast<size_t>(src) * n_ + dst]);
  if (link > 0.0) return link;
  return Load(inbound_[dst]);
}

}  // namespace qcm
