// The task lifecycle of the reforged G-thinker engine, made explicit
// (paper §5 codesign): every task moves through one state machine no
// matter which component currently holds it --
//
//     Spawned --+--> Prefetching --+
//               |                  v
//               +---------------> Ready <---> Running --> Done
//                                  ^  |          |
//                                  |  +--> Spilled   (disk round trip)
//                                  |  +--> Stolen    (machine round trip)
//                                  |                 |
//                                  +---- Suspended <-+   (pull outstanding)
//
// Before this layer existed the same lifecycle was implicit and scattered:
// the Engine's compute loop knew about running/requeue, the PullBroker
// about parked tasks, the GlobalQueue/SpillManager about disk round
// trips, and the steal paths about machine round trips -- none of them
// could see (let alone assert) the whole picture. Centralizing the state
// vocabulary and the legality table here lets every component record its
// transition through one checked helper, gives the metrics layer a full
// transition matrix for free, and is what makes scheduling policies
// (spawn-time prefetch, latency-aware stealing) tractable to add: a new
// pipeline stage is a new state plus a few table rows, not a hunt through
// five files.
//
// This header is a leaf: it must not include engine or task headers (they
// include it).

#ifndef QCM_SCHED_LIFECYCLE_H_
#define QCM_SCHED_LIFECYCLE_H_

#include <atomic>
#include <cstdint>

namespace qcm {

class Task;

/// Where in its lifecycle a task currently is. Values are stable (they
/// index the transition matrix and appear in reports).
enum class TaskState : uint8_t {
  /// Created by App::Spawn or ComputeContext::AddTask; not yet admitted.
  kSpawned = 0,
  /// Spawn-time prefetch pipeline stage: the task's first-round vertex
  /// requests ride the fabric before its first schedule; the task is
  /// parked in the PullBroker until every response pinned.
  kPrefetching = 1,
  /// Admitted to a queue (thread-local, global, or broker-released),
  /// waiting for a comper.
  kReady = 2,
  /// Inside App::Compute on a mining thread.
  kRunning = 3,
  /// A compute round Request()ed vertices that are in flight; parked in
  /// the PullBroker until the pull completes (Alg. 3's "add t back").
  kSuspended = 4,
  /// Serialized into an L_small/L_big spill file (disk round trip; the
  /// in-memory object is destroyed and rehydrated on refill).
  kSpilled = 5,
  /// Serialized into a kStealBatch transfer to another machine (the
  /// receiving machine rehydrates it into its global queue).
  kStolen = 6,
  /// Compute returned kDone; the task is finished and destroyed.
  kDone = 7,
};

inline constexpr int kNumTaskStates = 8;

const char* TaskStateName(TaskState state);

/// The legality table of the diagram above.
bool IsLegalTransition(TaskState from, TaskState to);

/// Full transition matrix (atomics; relaxed ordering suffices -- read only
/// after the engine quiesces, exactly like EngineCounters).
struct LifecycleCounters {
  std::atomic<uint64_t> transitions[kNumTaskStates][kNumTaskStates]{};

  void Count(TaskState from, TaskState to) {
    transitions[static_cast<int>(from)][static_cast<int>(to)].fetch_add(
        1, std::memory_order_relaxed);
  }

  uint64_t Transitions(TaskState from, TaskState to) const {
    return transitions[static_cast<int>(from)][static_cast<int>(to)].load(
        std::memory_order_relaxed);
  }

  /// Total transitions entering `to` from any state.
  uint64_t TotalEntering(TaskState to) const {
    uint64_t total = 0;
    for (int from = 0; from < kNumTaskStates; ++from) {
      total += transitions[from][static_cast<int>(to)].load(
          std::memory_order_relaxed);
    }
    return total;
  }
};

/// Moves `task` to `to`, QCM_CHECK-failing (with both state names) on a
/// transition the table forbids, and counts it. `counters` may be null.
void AdvanceTaskState(Task& task, TaskState to, LifecycleCounters* counters);

/// Re-establishes the lifecycle of a task that was serialized away and
/// decoded back (spill refill, steal arrival): the fresh object is stamped
/// with the `origin` state its predecessor was serialized in (kSpilled or
/// kStolen), then advanced to kReady -- so a disk or machine round trip
/// counts as kSpilled->kReady / kStolen->kReady, not as a new spawn.
void RehydrateTaskState(Task& task, TaskState origin,
                        LifecycleCounters* counters);

}  // namespace qcm

#endif  // QCM_SCHED_LIFECYCLE_H_
