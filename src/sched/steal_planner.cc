#include "sched/steal_planner.h"

#include <algorithm>

namespace qcm {

namespace {

/// a * b clamped at uint64 max (absurdly large flag values must degrade
/// to "huge cap", never wrap around to a tiny or zero one).
uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (b != 0 && a > UINT64_MAX / b) return UINT64_MAX;
  return a * b;
}

}  // namespace

uint64_t LatencyAwareBatchCap(const StealPlannerOptions& opts,
                              double rtt_sec) {
  const uint64_t base = std::max<uint64_t>(1, opts.base_batch);
  const uint64_t factor = std::max<uint64_t>(1, opts.max_batch_factor);
  const uint64_t max_cap = SaturatingMul(base, factor);
  if (rtt_sec <= 0.0 || opts.rtt_reference_sec <= 0.0) return base;
  const double extra = rtt_sec / opts.rtt_reference_sec;
  if (extra >= static_cast<double>(factor)) return max_cap;
  return std::min<uint64_t>(
      max_cap, SaturatingMul(base, 1 + static_cast<uint64_t>(extra)));
}

std::vector<StealMove> PlanSteals(const std::vector<uint64_t>& pending_big,
                                  const StealPlannerOptions& opts,
                                  const LinkRttTracker* rtt) {
  std::vector<StealMove> moves;
  const size_t n = pending_big.size();
  if (n < 2) return moves;

  std::vector<uint64_t> counts = pending_big;
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  const uint64_t avg = total / n;

  for (size_t donor = 0; donor < n; ++donor) {
    if (counts[donor] <= avg + 1) continue;
    // Most starved receiver, given the moves already planned this round.
    size_t receiver = donor;
    for (size_t r = 0; r < n; ++r) {
      if (counts[r] < counts[receiver]) receiver = r;
    }
    if (receiver == donor || counts[receiver] >= avg) continue;

    const double link_rtt =
        rtt != nullptr
            ? rtt->Rtt(static_cast<int>(donor), static_cast<int>(receiver))
            : 0.0;
    const uint64_t cap = LatencyAwareBatchCap(opts, link_rtt);
    const uint64_t want = std::min<uint64_t>(
        {counts[donor] - avg, avg - counts[receiver], cap});
    if (want == 0) continue;
    // Rarer on slow links: a transfer pays ~one RTT whatever it carries,
    // so past the reference RTT refuse moves that would not fill half a
    // cap -- the imbalance is cheaper to leave than the message is to
    // send, and a later round can still move it once it has grown.
    if (link_rtt >= opts.rtt_reference_sec && want * 2 < cap) continue;

    moves.push_back(StealMove{static_cast<int>(donor),
                              static_cast<int>(receiver), want});
    counts[donor] -= want;
    counts[receiver] += want;
  }
  return moves;
}

}  // namespace qcm
