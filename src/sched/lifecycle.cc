#include "sched/lifecycle.h"

#include "gthinker/task.h"
#include "util/logging.h"
#include "util/trace.h"

namespace qcm {

namespace {

/// Trace name id per transition target, interned once (indexed by the
/// TaskState value; order matches the enum).
uint16_t LifecycleTraceName(TaskState to) {
  static const uint16_t ids[] = {
      trace::InternName("to_spawned"),   trace::InternName("to_prefetching"),
      trace::InternName("to_ready"),     trace::InternName("to_running"),
      trace::InternName("to_suspended"), trace::InternName("to_spilled"),
      trace::InternName("to_stolen"),    trace::InternName("to_done"),
  };
  return ids[static_cast<int>(to)];
}

}  // namespace

const char* TaskStateName(TaskState state) {
  switch (state) {
    case TaskState::kSpawned:
      return "spawned";
    case TaskState::kPrefetching:
      return "prefetching";
    case TaskState::kReady:
      return "ready";
    case TaskState::kRunning:
      return "running";
    case TaskState::kSuspended:
      return "suspended";
    case TaskState::kSpilled:
      return "spilled";
    case TaskState::kStolen:
      return "stolen";
    case TaskState::kDone:
      return "done";
  }
  return "?";
}

bool IsLegalTransition(TaskState from, TaskState to) {
  switch (from) {
    case TaskState::kSpawned:
      // Admission: straight to a queue, or through the prefetch stage.
      return to == TaskState::kReady || to == TaskState::kPrefetching;
    case TaskState::kPrefetching:
      // The prefetch pull delivered (or nothing was actually remote).
      return to == TaskState::kReady;
    case TaskState::kReady:
      // Scheduled, spilled out of an overflowing queue, or stolen away.
      return to == TaskState::kRunning || to == TaskState::kSpilled ||
             to == TaskState::kStolen;
    case TaskState::kRunning:
      // Requeue, park on an outstanding pull, or finish.
      return to == TaskState::kReady || to == TaskState::kSuspended ||
             to == TaskState::kDone;
    case TaskState::kSuspended:
      return to == TaskState::kReady;
    case TaskState::kSpilled:
      return to == TaskState::kReady;  // rehydrated from disk
    case TaskState::kStolen:
      return to == TaskState::kReady;  // rehydrated on the receiver
    case TaskState::kDone:
      return false;  // terminal
  }
  return false;
}

void AdvanceTaskState(Task& task, TaskState to,
                      LifecycleCounters* counters) {
  const TaskState from = task.sched_info().state;
  QCM_CHECK(IsLegalTransition(from, to))
      << "illegal task lifecycle transition " << TaskStateName(from)
      << " -> " << TaskStateName(to) << " (root " << task.root() << ")";
  task.sched_info().state = to;
  if (counters != nullptr) counters->Count(from, to);
  if (trace::Enabled()) {
    trace::EmitInstant(LifecycleTraceName(to), trace::kLifecycle,
                       static_cast<uint32_t>(task.root()));
  }
}

void RehydrateTaskState(Task& task, TaskState origin,
                        LifecycleCounters* counters) {
  QCM_CHECK(origin == TaskState::kSpilled || origin == TaskState::kStolen)
      << "rehydrate from non-serialized state " << TaskStateName(origin);
  // The decoded object is a fresh kSpawned; stamp it with its
  // predecessor's serialized state so the round trip is visible as
  // kSpilled->kReady / kStolen->kReady in the transition matrix.
  task.sched_info().state = origin;
  AdvanceTaskState(task, TaskState::kReady, counters);
}

}  // namespace qcm
