// Per-link latency estimation for the scheduling layer (paper §5: with
// slow links the steal master should prefer larger, rarer batches). The
// tracker keeps one exponentially-weighted moving average of observed
// one-way delivery latency per (src, dst) machine pair, fed by the
// CommFabric off its own message timestamps (enqueue -> delivery), plus a
// per-destination inbound fallback for observers that only see scalar
// per-rank latencies (the cluster Coordinator, which learns them from
// RankStatus publications rather than from the fabric directly).
//
// Updates ride the fabric's delivery hot path, so they are lock-free:
// each EWMA is an atomic bit-cast double updated with a relaxed CAS loop
// (an occasionally lost update only delays convergence of an estimate).

#ifndef QCM_SCHED_RTT_H_
#define QCM_SCHED_RTT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace qcm {

class LinkRttTracker {
 public:
  /// `alpha` in (0, 1] is the EWMA weight of a new sample (1 = keep only
  /// the latest sample).
  LinkRttTracker(int num_machines, double alpha);

  LinkRttTracker(const LinkRttTracker&) = delete;
  LinkRttTracker& operator=(const LinkRttTracker&) = delete;

  /// Folds one observed one-way delivery latency (seconds) of a message
  /// src -> dst into the link's EWMA.
  void RecordOneWay(int src, int dst, double seconds);

  /// Folds a scalar delivery-latency observation for messages INTO `dst`
  /// (any source) -- the coordinator's view, assembled from per-rank
  /// status publications.
  void RecordInbound(int dst, double seconds);

  /// EWMA one-way latency src -> dst; falls back to the inbound estimate
  /// of dst when the link was never observed directly; 0.0 when neither
  /// was.
  double OneWay(int src, int dst) const;

  /// Round-trip estimate of the link between a and b: one request leg
  /// plus one response leg.
  double Rtt(int a, int b) const { return OneWay(a, b) + OneWay(b, a); }

  int num_machines() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  void Ewma(std::atomic<uint64_t>* cell, double seconds);
  static double Load(const std::atomic<uint64_t>& cell);

  int n_;
  double alpha_;
  /// n*n link EWMAs plus n inbound fallbacks, as bit-cast doubles.
  std::vector<std::atomic<uint64_t>> links_;
  std::vector<std::atomic<uint64_t>> inbound_;
};

}  // namespace qcm

#endif  // QCM_SCHED_RTT_H_
