// Scheduler: one machine's task-scheduling policy object -- the single
// owner of the task lifecycle (sched/lifecycle.h) that was previously
// inlined across Engine::Comper (admission, routing, spawn batching,
// local-queue spilling), the PullBroker call sites (park/resume), the
// GlobalQueue (big-task routing) and the steal paths. The engine's
// compute loop, its StealLoop, and the cluster Coordinator's steal
// mastering are thin drivers over this layer: a comper asks the
// scheduler for work, hands back the compute outcome, and services the
// fabric through it; every task state move funnels through the checked
// lifecycle helpers.
//
// The scheduler also owns the two ROADMAP policies this centralization
// exists to make tractable:
//
//   * Spawn-time prefetch (EngineConfig::spawn_prefetch): admission of a
//     freshly spawned task runs App::SpawnPrefetch, which Want()s the
//     vertices the task's first compute round will read. A task with a
//     transfer outstanding enters the kPrefetching pipeline stage --
//     parked in the PullBroker, its batched kPullRequest riding the
//     fabric while compers mine other tasks -- and is first scheduled
//     only once every response has pinned, so the first round runs
//     pin-hit-only instead of suspending mid-build (counted by
//     prefetch_hits / first_schedule_pins).
//
//   * Latency-aware steal planning lives in the sibling
//     sched/steal_planner.h, shared by Engine::StealLoop and the cluster
//     Coordinator and fed by sched/rtt.h EWMAs off fabric timestamps.
//
// Threading: one Scheduler per machine, shared by that machine's compers.
// The scheduler itself holds only atomics; mutual exclusion lives where
// it always did (GlobalQueue lock, PullBroker lock, SpillManager lock,
// single-owner LocalQueue per comper).

#ifndef QCM_SCHED_SCHEDULER_H_
#define QCM_SCHED_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <unordered_set>

#include "gthinker/checkpoint.h"
#include "gthinker/comm.h"
#include "gthinker/engine_config.h"
#include "gthinker/metrics.h"
#include "gthinker/spill.h"
#include "gthinker/task.h"
#include "gthinker/task_queue.h"
#include "gthinker/vertex_table.h"
#include "sched/lifecycle.h"

namespace qcm {

/// One comper's thread-local small-task queue: a single-owner deque whose
/// overflow, refill, and spawn policy belongs to the Scheduler (the
/// paper's L_small discipline), not to the thread that happens to hold
/// it.
class LocalQueue {
 public:
  size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }

 private:
  friend class Scheduler;
  std::deque<TaskPtr> q_;
};

class Scheduler {
 public:
  /// Everything one machine's scheduling policy touches. All pointers
  /// must outlive the scheduler; `pending`/`active_spawners` are the
  /// engine-wide termination-accounting atomics.
  struct Deps {
    int machine = 0;
    const EngineConfig* config = nullptr;
    App* app = nullptr;
    const VertexTable* table = nullptr;
    DataService* data = nullptr;
    PullBroker* broker = nullptr;
    GlobalQueue* global_queue = nullptr;
    SpillManager* small_spill = nullptr;
    EngineCounters* counters = nullptr;
    std::atomic<int64_t>* pending = nullptr;
    std::atomic<int>* active_spawners = nullptr;
    /// Optional checkpoint hooks (null when checkpointing is off). The
    /// scheduler reports root-subtree progress so a root whose every task
    /// completed locally becomes durable as a root-done record.
    RootProgress* root_progress = nullptr;
    /// Optional set of spawn roots already fully mined by this rank's
    /// previous incarnation (from checkpoint replay): the spawn path
    /// skips them entirely. Read-only; must outlive the scheduler.
    const std::unordered_set<VertexId>* completed_roots = nullptr;
  };

  explicit Scheduler(Deps deps);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// One fabric service round for this machine: deliver every due
  /// message (serve peer pull requests, accept pull responses and resume
  /// the tasks that were parked on them, inject stolen big-task batches
  /// into the global queue), then pump the broker's outstanding requests
  /// onto the fabric. Resumed tasks route through `local` when small.
  void ServiceFabric(CommFabric* fabric, LocalQueue& local);

  /// Next task for a comper (marked kRunning): the machine's global
  /// big-task queue first, then the comper's local queue -- refilled from
  /// L_small or, failing that, by spawning a fresh batch from the
  /// machine's unspawned vertices (which is where the spawn-time
  /// prefetch stage runs). Null when nothing is available.
  TaskPtr NextTask(LocalQueue& local, ComputeContext& ctx);

  /// Folds one compute round's outcome back into the lifecycle:
  /// kRequeue re-routes, kSuspended parks on the broker (or degenerates
  /// to a requeue when nothing is actually outstanding), kDone retires
  /// the task and its pending count.
  void OnComputeResult(TaskPtr task, ComputeStatus status,
                       LocalQueue& local);

  /// Admits a task freshly created by a UDF (ComputeContext::AddTask):
  /// counts it pending and routes it.
  void SubmitNew(TaskPtr task, LocalQueue& local);

  /// Every owned vertex has been offered to Spawn.
  bool SpawnExhausted() const;

  /// Tasks currently parked in the kPrefetching stage.
  size_t PrefetchingCount() const {
    return prefetching_.load(std::memory_order_relaxed);
  }

  /// Spawn progress: owned-vertex indices consumed so far (checkpoint
  /// manifest observability; may briefly overshoot the owned count).
  size_t SpawnCursor() const { return spawn_cursor_.load(); }

 private:
  class SpawnPrefetchOracle;

  /// Routes a kReady task already counted in pending_: big tasks to the
  /// machine's global queue, small ones to `local`.
  void Enqueue(TaskPtr task, LocalQueue& local);

  /// A task released by the PullBroker (prefetch or suspension pull
  /// complete): advance it to kReady and route it.
  void OnResumed(TaskPtr task, LocalQueue& local);

  /// Admission of one freshly spawned task, including the prefetch
  /// stage. Returns true when the task was big (the spawn batch stops
  /// early, the paper's "avoid generating many big tasks").
  bool AdmitSpawned(TaskPtr task, LocalQueue& local);

  void PushLocal(LocalQueue& local, TaskPtr task);
  TaskPtr PopLocal(LocalQueue& local, ComputeContext& ctx);
  void RefillLocal(LocalQueue& local, ComputeContext& ctx);

  LifecycleCounters* lifecycle() { return &deps_.counters->lifecycle; }

  Deps deps_;
  std::atomic<size_t> spawn_cursor_{0};
  std::atomic<size_t> prefetching_{0};
};

}  // namespace qcm

#endif  // QCM_SCHED_SCHEDULER_H_
