#include "util/mem.h"

#include <cstdio>
#include <cstring>

namespace qcm {

namespace {
uint64_t ReadStatusField(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      std::sscanf(line + field_len, " %lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}
}  // namespace

uint64_t PeakRssBytes() {
  // Some sandboxed kernels do not expose VmHWM; fall back to the current
  // RSS so callers always get a usable lower bound on the peak.
  uint64_t hwm = ReadStatusField("VmHWM:");
  return hwm != 0 ? hwm : CurrentRssBytes();
}

uint64_t CurrentRssBytes() { return ReadStatusField("VmRSS:"); }

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

}  // namespace qcm
