#include "util/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/timer.h"

namespace qcm {
namespace trace {
namespace {

const char* const kCategoryNames[kNumCategories] = {
    "lifecycle", "pull", "net", "checkpoint", "recovery", "kernel", "stats",
    "page",
};

// One per emitting thread. Records are written by the owner thread only;
// the drainer reads `records[0, size)` after an acquire load of `size`,
// pairing with the owner's release store — no locks on the emit path.
struct Ring {
  explicit Ring(size_t capacity) : records(capacity) {}

  std::vector<Record> records;
  std::atomic<size_t> size{0};
  std::atomic<uint64_t> dropped{0};
  int tid = 0;
  std::string thread_name;  // guarded by State::mu
};

struct State {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
  // Interned names live forever: call sites cache ids in function-local
  // statics that survive ResetForTest.
  std::vector<std::string> names;
  std::unordered_map<std::string, uint16_t> name_ids;
  size_t ring_capacity = 0;  // records per ring; 0 = tracing never started
  int next_tid = 1;
};

State& GlobalState() {
  static State* state = new State;  // leaked: emitters may outlive main
  return *state;
}

std::atomic<bool> g_enabled{false};
// Bumped by ResetForTest so threads holding a stale ring pointer
// re-register instead of writing into a freed ring.
std::atomic<uint64_t> g_generation{0};
std::atomic<uint64_t (*)()> g_clock_for_test{nullptr};

thread_local Ring* t_ring = nullptr;
thread_local uint64_t t_ring_generation = ~uint64_t{0};

Ring* CurrentRing() {
  const uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (t_ring == nullptr || t_ring_generation != gen) {
    State& s = GlobalState();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.ring_capacity == 0) return nullptr;
    auto ring = std::make_unique<Ring>(s.ring_capacity);
    ring->tid = s.next_tid++;
    t_ring = ring.get();
    t_ring_generation = gen;
    s.rings.push_back(std::move(ring));
  }
  return t_ring;
}

void EmitRecord(const Record& rec) {
  Ring* ring = CurrentRing();
  if (ring == nullptr) return;
  const size_t n = ring->size.load(std::memory_order_relaxed);
  if (n >= ring->records.size()) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->records[n] = rec;
  ring->size.store(n + 1, std::memory_order_release);
}

void AppendCommon(const State& s, const Record& rec, int pid, int tid,
                  std::string* out) {
  out->append("{\"name\":\"");
  out->append(s.names[rec.name_id]);
  out->append("\",\"cat\":\"");
  out->append(kCategoryNames[rec.category]);
  out->append("\"");
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"ts\":%llu,\"pid\":%d,\"tid\":%d",
                static_cast<unsigned long long>(rec.ts_usec), pid, tid);
  out->append(buf);
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Start(size_t ring_kb) {
  State& s = GlobalState();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.ring_capacity == 0) {
      if (ring_kb == 0) ring_kb = 1;
      s.ring_capacity = std::max<size_t>(1, ring_kb * 1024 / sizeof(Record));
    }
  }
  g_enabled.store(true, std::memory_order_release);
}

void Stop() { g_enabled.store(false, std::memory_order_release); }

void ResetForTest() {
  g_enabled.store(false, std::memory_order_release);
  State& s = GlobalState();
  std::lock_guard<std::mutex> lock(s.mu);
  s.rings.clear();
  s.ring_capacity = 0;
  s.next_tid = 1;
  g_generation.fetch_add(1, std::memory_order_release);
  g_clock_for_test.store(nullptr, std::memory_order_relaxed);
}

uint16_t InternName(const char* name) {
  State& s = GlobalState();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.name_ids.find(name);
  if (it != s.name_ids.end()) return it->second;
  const uint16_t id = static_cast<uint16_t>(s.names.size());
  s.names.emplace_back(name);
  s.name_ids.emplace(name, id);
  return id;
}

void EmitSpan(uint16_t name_id, Category cat, uint64_t ts_usec,
              uint64_t dur_usec, uint32_t arg) {
  if (!Enabled()) return;
  EmitRecord(Record{ts_usec, dur_usec, name_id, cat,
                    static_cast<uint8_t>(EventType::kSpan), arg});
}

void EmitInstant(uint16_t name_id, Category cat, uint32_t arg) {
  if (!Enabled()) return;
  EmitRecord(Record{TraceNowMicros(), 0, name_id, cat,
                    static_cast<uint8_t>(EventType::kInstant), arg});
}

void EmitCounter(uint16_t name_id, Category cat, uint64_t value) {
  if (!Enabled()) return;
  EmitRecord(Record{TraceNowMicros(), value, name_id, cat,
                    static_cast<uint8_t>(EventType::kCounter), 0});
}

void EmitFlow(EventType type, uint16_t name_id, Category cat,
              uint64_t flow_id) {
  if (!Enabled()) return;
  EmitRecord(Record{TraceNowMicros(), flow_id, name_id, cat,
                    static_cast<uint8_t>(type), 0});
}

void SetThreadName(const char* name) {
  if (!Enabled()) return;
  Ring* ring = CurrentRing();
  if (ring == nullptr) return;
  State& s = GlobalState();
  std::lock_guard<std::mutex> lock(s.mu);
  ring->thread_name = name;
}

uint64_t TraceNowMicros() {
  auto* fn = g_clock_for_test.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : static_cast<uint64_t>(NowMicros());
}

uint64_t DroppedRecords() {
  State& s = GlobalState();
  std::lock_guard<std::mutex> lock(s.mu);
  uint64_t total = 0;
  for (const auto& ring : s.rings) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void SetClockForTest(uint64_t (*now_fn)()) {
  g_clock_for_test.store(now_fn, std::memory_order_relaxed);
}

std::string DrainJsonLines(int pid) {
  State& s = GlobalState();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out;
  char buf[128];
  uint64_t dropped = 0;
  uint64_t last_ts = 0;
  for (const auto& ring : s.rings) {
    const size_t n = ring->size.load(std::memory_order_acquire);
    dropped += ring->dropped.load(std::memory_order_relaxed);
    if (!ring->thread_name.empty()) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,"
                    "\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"",
                    pid, ring->tid);
      out.append(buf);
      out.append(ring->thread_name);
      out.append("\"}}\n");
    }
    for (size_t i = 0; i < n; ++i) {
      const Record& rec = ring->records[i];
      last_ts = std::max(last_ts, rec.ts_usec);
      AppendCommon(s, rec, pid, ring->tid, &out);
      switch (static_cast<EventType>(rec.type)) {
        case EventType::kSpan:
          std::snprintf(buf, sizeof(buf),
                        ",\"ph\":\"X\",\"dur\":%llu,\"args\":{\"a\":%u}}\n",
                        static_cast<unsigned long long>(rec.dur_or_value),
                        rec.arg);
          break;
        case EventType::kInstant:
          std::snprintf(buf, sizeof(buf),
                        ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"a\":%u}}\n",
                        rec.arg);
          break;
        case EventType::kCounter:
          std::snprintf(buf, sizeof(buf),
                        ",\"ph\":\"C\",\"args\":{\"value\":%llu}}\n",
                        static_cast<unsigned long long>(rec.dur_or_value));
          break;
        case EventType::kFlowStart:
          std::snprintf(buf, sizeof(buf), ",\"ph\":\"s\",\"id\":%llu}\n",
                        static_cast<unsigned long long>(rec.dur_or_value));
          break;
        case EventType::kFlowEnd:
          std::snprintf(buf, sizeof(buf),
                        ",\"ph\":\"f\",\"bp\":\"e\",\"id\":%llu}\n",
                        static_cast<unsigned long long>(rec.dur_or_value));
          break;
      }
      out.append(buf);
    }
  }
  if (dropped > 0) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"trace_dropped_records\",\"cat\":\"stats\","
                  "\"ph\":\"C\",\"ts\":%llu,\"pid\":%d,\"tid\":0,"
                  "\"args\":{\"value\":%llu}}\n",
                  static_cast<unsigned long long>(last_ts), pid,
                  static_cast<unsigned long long>(dropped));
    out.append(buf);
  }
  return out;
}

Status WriteFragment(const std::string& path, int pid) {
  const std::string lines = DrainJsonLines(pid);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open trace fragment: " + path);
  out.write(lines.data(), static_cast<std::streamsize>(lines.size()));
  out.flush();
  if (!out) return Status::IOError("short write to trace fragment: " + path);
  return Status::OK();
}

namespace {

// Extracts the integer after `"ts":` so fragments can be merged into one
// time-ordered stream without a full JSON parser. Events we emit always
// carry a ts field.
bool ParseEventTs(const std::string& line, uint64_t* ts) {
  const char* pos = std::strstr(line.c_str(), "\"ts\":");
  if (pos == nullptr) return false;
  pos += 5;
  if (*pos < '0' || *pos > '9') return false;
  uint64_t value = 0;
  while (*pos >= '0' && *pos <= '9') {
    value = value * 10 + static_cast<uint64_t>(*pos - '0');
    ++pos;
  }
  *ts = value;
  return true;
}

}  // namespace

Status MergeFragments(const std::vector<std::string>& fragment_paths,
                      const std::vector<std::string>& extra_event_lines,
                      const std::string& out_path) {
  struct Entry {
    uint64_t ts;
    std::string line;
  };
  std::vector<Entry> entries;
  auto add_line = [&entries](const std::string& line) {
    if (line.empty()) return Status::OK();
    uint64_t ts = 0;
    if (!ParseEventTs(line, &ts)) {
      return Status::Corruption("trace event line without ts field: " + line);
    }
    entries.push_back(Entry{ts, line});
    return Status::OK();
  };
  for (const std::string& path : fragment_paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;  // rank died before draining; merge what exists
    std::string line;
    while (std::getline(in, line)) {
      QCM_RETURN_IF_ERROR(add_line(line));
    }
  }
  for (const std::string& line : extra_event_lines) {
    QCM_RETURN_IF_ERROR(add_line(line));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.ts < b.ts; });

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open merged trace: " + out_path);
  out << "{\"traceEvents\":[\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    out << entries[i].line;
    if (i + 1 < entries.size()) out << ',';
    out << '\n';
  }
  out << "]}\n";
  out.flush();
  if (!out) return Status::IOError("short write to merged trace: " + out_path);
  return Status::OK();
}

}  // namespace trace
}  // namespace qcm
