#include "util/status.h"

namespace qcm {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace qcm
