// Status / StatusOr: exception-free error handling for library code paths.
// Modeled after the RocksDB / Abseil idiom: functions that can fail return a
// Status (or StatusOr<T>) instead of throwing, so mining hot loops never
// unwind.

#ifndef QCM_UTIL_STATUS_H_
#define QCM_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace qcm {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kOutOfRange,
  kAborted,
  kInternal,
};

/// Lightweight result type carrying a code and a human-readable message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy when OK
/// (no message allocation).
class Status {
 public:
  Status() = default;

  /// Returns an OK status (no error).
  static Status OK() { return Status(); }
  /// Caller passed an argument outside the documented domain.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// A requested entity (vertex, file, dataset) does not exist.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Filesystem / IO failure (spill files, graph loading).
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Persisted bytes failed validation during decode.
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  /// Numeric or index value outside the representable range.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Operation stopped before completion (e.g. engine shutdown).
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  /// Invariant violation inside the library itself.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of T or an error Status. Access to value() requires ok().
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: success.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define QCM_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::qcm::Status _qcm_status = (expr);    \
    if (!_qcm_status.ok()) {               \
      return _qcm_status;                  \
    }                                      \
  } while (0)

/// Assigns the value of a StatusOr expression or propagates its error.
#define QCM_ASSIGN_OR_RETURN(lhs, expr)            \
  auto _qcm_sor_##__LINE__ = (expr);               \
  if (!_qcm_sor_##__LINE__.ok()) {                 \
    return _qcm_sor_##__LINE__.status();           \
  }                                                \
  lhs = std::move(_qcm_sor_##__LINE__).value()

}  // namespace qcm

#endif  // QCM_UTIL_STATUS_H_
