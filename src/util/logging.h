// Minimal leveled logger. Thread-safe (each LogMessage flushes one formatted
// line under a mutex). Intended for engine diagnostics; mining inner loops
// must not log.

#ifndef QCM_UTIL_LOGGING_H_
#define QCM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace qcm {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the process-wide minimum level that is emitted. Default: kInfo,
/// overridable at startup by the QCM_LOG_LEVEL environment variable
/// (same spellings as ParseLogLevel).
void SetLogLevel(LogLevel level);
/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

/// Parses a level name ("debug", "info", "warning"/"warn", "error",
/// "off"; case-sensitive). Returns false (and leaves *out untouched) on
/// anything else.
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// Tags every subsequent log line with this process's cluster identity
/// ("[I r2 e1 file:line]"). Workers call it once their rank/incarnation
/// epoch are known; single-process tools never do (no tag).
void SetLogContext(int rank, uint32_t epoch);

namespace internal {

/// One log line; streams like std::ostream and emits on destruction.
/// When `fatal` is set the destructor aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qcm

#define QCM_LOG_ENABLED(level) \
  (static_cast<int>(level) >= static_cast<int>(::qcm::GetLogLevel()))

#define QCM_LOG(level)                                                    \
  if (!QCM_LOG_ENABLED(::qcm::LogLevel::level)) {                         \
  } else                                                                  \
    ::qcm::internal::LogMessage(::qcm::LogLevel::level, __FILE__,         \
                                __LINE__)                                 \
        .stream()

#define QCM_DLOG QCM_LOG(kDebug)
#define QCM_ILOG QCM_LOG(kInfo)
#define QCM_WLOG QCM_LOG(kWarning)
#define QCM_ELOG QCM_LOG(kError)

/// Always-on invariant check; aborts with a message on failure.
#define QCM_CHECK(cond)                                                      \
  if (cond) {                                                                \
  } else                                                                     \
    ::qcm::internal::LogMessage(::qcm::LogLevel::kError, __FILE__, __LINE__, \
                                /*fatal=*/true)                              \
            .stream()                                                        \
        << "CHECK failed: " #cond " "

#endif  // QCM_UTIL_LOGGING_H_
