#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace qcm {

namespace {

/// Startup level: kInfo unless QCM_LOG_LEVEL names something else.
int InitialLevel() {
  LogLevel level = LogLevel::kInfo;
  const char* env = std::getenv("QCM_LOG_LEVEL");
  if (env != nullptr) ParseLogLevel(env, &level);  // bad value: keep kInfo
  return static_cast<int>(level);
}

std::atomic<int> g_min_level{InitialLevel()};
std::mutex g_log_mutex;
/// Cluster identity prefix; rank < 0 = untagged (single-process tools).
std::atomic<int> g_log_rank{-1};
std::atomic<uint32_t> g_log_epoch{0};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *out = LogLevel::kWarning;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else if (name == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void SetLogContext(int rank, uint32_t epoch) {
  g_log_rank.store(rank, std::memory_order_relaxed);
  g_log_epoch.store(epoch, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_);
  const int rank = g_log_rank.load(std::memory_order_relaxed);
  if (rank >= 0) {
    stream_ << " r" << rank << " e"
            << g_log_epoch.load(std::memory_order_relaxed);
  }
  stream_ << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  using Clock = std::chrono::system_clock;
  auto now = Clock::to_time_t(Clock::now());
  struct tm tm_buf;
  localtime_r(&now, &tm_buf);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%02d:%02d:%02d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec);
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s %s\n", ts, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace qcm
