#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace qcm {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  using Clock = std::chrono::system_clock;
  auto now = Clock::to_time_t(Clock::now());
  struct tm tm_buf;
  localtime_r(&now, &tm_buf);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%02d:%02d:%02d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec);
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s %s\n", ts, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace qcm
