#include "util/serde.h"

namespace qcm {

namespace {
constexpr uint32_t kBlobMagic = 0x51434d42;  // "QCMB"
}

uint64_t ExtendFingerprint(uint64_t state, const char* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    state ^= static_cast<unsigned char>(data[i]);
    state *= 0x100000001b3ULL;
  }
  return state;
}

void AppendFramedBlob(const std::string& payload, std::string* out) {
  Encoder enc;
  enc.PutU32(kBlobMagic);
  enc.PutU64(payload.size());
  enc.PutU64(Fingerprint(payload));
  out->append(enc.buffer());
  out->append(payload);
}

Status ReadFramedBlob(const std::string& buf, size_t* pos,
                      std::string* payload) {
  Decoder dec(buf.data() + *pos, buf.size() - *pos);
  uint32_t magic = 0;
  uint64_t len = 0;
  uint64_t fp = 0;
  QCM_RETURN_IF_ERROR(dec.GetU32(&magic));
  if (magic != kBlobMagic) {
    return Status::Corruption("framed blob: bad magic");
  }
  QCM_RETURN_IF_ERROR(dec.GetU64(&len));
  QCM_RETURN_IF_ERROR(dec.GetU64(&fp));
  if (len > dec.Remaining()) {
    return Status::Corruption("framed blob: truncated payload");
  }
  size_t header = sizeof(uint32_t) + 2 * sizeof(uint64_t);
  payload->assign(buf.data() + *pos + header, len);
  if (Fingerprint(*payload) != fp) {
    return Status::Corruption("framed blob: checksum mismatch");
  }
  *pos += header + len;
  return Status::OK();
}

}  // namespace qcm
