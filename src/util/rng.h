// Deterministic, fast pseudo-random number generation for graph generators
// and property tests. SplitMix64 for seeding, xoshiro256** as the main
// generator; both are tiny, allocation-free and reproducible across
// platforms (unlike std::mt19937 + std::uniform_int_distribution, whose
// distribution output is implementation-defined).

#ifndef QCM_UTIL_RNG_H_
#define QCM_UTIL_RNG_H_

#include <cstdint>

namespace qcm {

/// xoshiro256** PRNG. Deterministic for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator (SplitMix64 expansion of the seed).
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace qcm

#endif  // QCM_UTIL_RNG_H_
