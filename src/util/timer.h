// Wall-clock timing utilities used by the engine (time-delayed task
// decomposition, per-task mining/materialization accounting) and the
// benchmark harness.

#ifndef QCM_UTIL_TIMER_H_
#define QCM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace qcm {

/// Monotonic wall-clock timer with microsecond resolution.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;

  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer at the current instant.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t Micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double (seconds) on destruction.
/// Used to attribute time to mining vs. subgraph materialization (Table 6).
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double* sink) : sink_(sink) {}
  ~ScopedAccumulator() { *sink_ += timer_.Seconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

/// Returns a monotonic timestamp in microseconds (for cheap deadline checks).
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace qcm

#endif  // QCM_UTIL_TIMER_H_
