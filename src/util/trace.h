// Always-compiled, runtime-gated tracing. Each thread that emits events
// owns a lock-free fixed-capacity ring of 24-byte records; when tracing is
// disabled an event site costs a couple of relaxed atomic loads and nothing
// else (no timestamp, no allocation). Rings drain to Chrome trace-event
// JSON (one object per line) which Perfetto / chrome://tracing load
// directly; multi-rank runs write per-rank fragments that MergeFragments
// stitches into one timeline (all ranks share the machine's steady clock
// on loopback, so timestamps are directly comparable).
//
// Overflow policy: keep-first. Once a ring is full further records bump a
// per-ring drop counter and are discarded — a comper is never blocked or
// slowed by a full ring, and the kept prefix is deterministic.

#ifndef QCM_UTIL_TRACE_H_
#define QCM_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace qcm {
namespace trace {

// Fixed category set; one byte per record. Names in kCategoryNames.
enum Category : uint8_t {
  kLifecycle = 0,  // task state machine + comper compute spans
  kPull = 1,       // PullBroker rounds, vertex-cache misses
  kNet = 2,        // coalescing flushes / writev syscalls
  kCheckpoint = 3, // checkpoint appends + replay
  kRecovery = 4,   // coordinator detect/kill/relaunch phases
  kKernel = 5,     // dense vs sparse kernel selection
  kStats = 6,      // periodic counter samples
  kPage = 7,       // paged adjacency store page-in stalls
  kNumCategories = 8,
};

enum class EventType : uint8_t {
  kSpan = 0,      // complete event: ts + dur ("ph":"X")
  kInstant = 1,   // point event ("ph":"i")
  kCounter = 2,   // counter sample ("ph":"C")
  kFlowStart = 3, // flow arrow origin ("ph":"s")
  kFlowEnd = 4,   // flow arrow target ("ph":"f")
};

// One ring slot. 24 bytes; written by exactly one thread, read by the
// drainer after a release/acquire handoff on the ring's size counter.
struct Record {
  uint64_t ts_usec;       // steady-clock microseconds (NowMicros domain)
  uint64_t dur_or_value;  // span: duration; counter: value; flow: id
  uint16_t name_id;       // index into the interned name table
  uint8_t category;       // Category
  uint8_t type;           // EventType
  uint32_t arg;           // free-form small argument ("args":{"a":N})
};
static_assert(sizeof(Record) == 24, "trace records are packed to 24 bytes");

/// True when tracing is on. One relaxed load; safe to call at any rate.
bool Enabled();

/// Turns tracing on. Threads allocate a `ring_kb` KiB ring lazily on
/// first emit. Idempotent; a second Start keeps existing rings.
void Start(size_t ring_kb);

/// Turns tracing off. Rings are retained so DrainJsonLines/WriteFragment
/// still see everything recorded; call ResetForTest to actually free them.
void Stop();

/// Test-only: stop tracing, drop all rings, and restore the real clock.
/// Interned names are kept — call sites cache ids in function-local
/// statics, so ids must stay valid across resets. Must not race with
/// emitting threads.
void ResetForTest();

/// Interns `name` (typically a string literal) and returns its id.
/// Cache the result at the call site:
///   static const uint16_t id = trace::InternName("flush");
uint16_t InternName(const char* name);

/// Low-level emitters. Callers must check Enabled() first (the QCM_TRACE_*
/// macros below do); emitting while disabled is a silent no-op.
void EmitSpan(uint16_t name_id, Category cat, uint64_t ts_usec,
              uint64_t dur_usec, uint32_t arg);
void EmitInstant(uint16_t name_id, Category cat, uint32_t arg);
void EmitCounter(uint16_t name_id, Category cat, uint64_t value);
void EmitFlow(EventType type, uint16_t name_id, Category cat,
              uint64_t flow_id);

/// Labels the calling thread in the trace ("M"/thread_name metadata).
/// No-op while disabled.
void SetThreadName(const char* name);

/// Current steady-clock timestamp for trace purposes (test-overridable).
uint64_t TraceNowMicros();

/// Total records discarded because a ring was full.
uint64_t DroppedRecords();

/// Test hook: replaces the clock behind TraceNowMicros. Pass nullptr to
/// restore the real steady clock.
void SetClockForTest(uint64_t (*now_fn)());

/// Serializes every ring to Chrome trace-event JSON objects, one per line
/// (no surrounding array). `pid` labels the process track — ranks pass
/// their rank id. Deterministic: rings in registration order, records in
/// write order, fixed key order. Includes thread_name metadata lines and,
/// when records were dropped, a trace_dropped_records counter line.
std::string DrainJsonLines(int pid);

/// Writes DrainJsonLines(pid) to `path` (one JSON object per line).
Status WriteFragment(const std::string& path, int pid);

/// Reads per-rank fragment files (+ optional pre-formatted event lines,
/// e.g. kStats counter tracks or coordinator metadata), sorts every event
/// by its "ts" field, and writes one {"traceEvents":[...]} file that
/// Perfetto loads directly. Missing fragment files are skipped (a rank
/// that died before draining), not an error.
Status MergeFragments(const std::vector<std::string>& fragment_paths,
                      const std::vector<std::string>& extra_event_lines,
                      const std::string& out_path);

/// RAII complete-span: stamps begin at construction, emits one "X" record
/// at destruction. Cost when disabled: one relaxed load in the ctor.
class Span {
 public:
  Span(Category cat, uint16_t name_id, uint32_t arg = 0)
      : armed_(Enabled()), cat_(cat), name_id_(name_id), arg_(arg) {
    if (armed_) begin_usec_ = TraceNowMicros();
  }
  ~Span() {
    if (armed_) {
      EmitSpan(name_id_, cat_, begin_usec_, TraceNowMicros() - begin_usec_,
               arg_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Updates the span's small argument (e.g. bytes flushed, discovered
  /// after construction).
  void set_arg(uint32_t arg) { arg_ = arg; }

 private:
  bool armed_;
  Category cat_;
  uint16_t name_id_;
  uint32_t arg_;
  uint64_t begin_usec_ = 0;
};

}  // namespace trace
}  // namespace qcm

// Interns a string literal once per call site and yields its id. The
// static guard is the only cost after first use.
#define QCM_TRACE_NAME(name_literal)                                   \
  ([]() -> uint16_t {                                                  \
    static const uint16_t qcm_trace_name_id =                          \
        ::qcm::trace::InternName(name_literal);                        \
    return qcm_trace_name_id;                                          \
  }())

// Scoped span covering the rest of the enclosing block.
#define QCM_TRACE_CONCAT_(a, b) a##b
#define QCM_TRACE_CONCAT(a, b) QCM_TRACE_CONCAT_(a, b)
#define QCM_TRACE_SPAN(cat, name_literal, arg)                       \
  ::qcm::trace::Span QCM_TRACE_CONCAT(qcm_trace_span_, __LINE__)(    \
      cat, QCM_TRACE_NAME(name_literal), static_cast<uint32_t>(arg))

// Point / counter / flow events; fully gated, one relaxed load when off.
#define QCM_TRACE_INSTANT(cat, name_literal, arg)                    \
  do {                                                               \
    if (::qcm::trace::Enabled()) {                                   \
      ::qcm::trace::EmitInstant(QCM_TRACE_NAME(name_literal), cat,   \
                                static_cast<uint32_t>(arg));         \
    }                                                                \
  } while (0)

#define QCM_TRACE_COUNTER(cat, name_literal, value)                  \
  do {                                                               \
    if (::qcm::trace::Enabled()) {                                   \
      ::qcm::trace::EmitCounter(QCM_TRACE_NAME(name_literal), cat,   \
                                static_cast<uint64_t>(value));       \
    }                                                                \
  } while (0)

#define QCM_TRACE_FLOW_START(cat, name_literal, flow_id)             \
  do {                                                               \
    if (::qcm::trace::Enabled()) {                                   \
      ::qcm::trace::EmitFlow(::qcm::trace::EventType::kFlowStart,    \
                             QCM_TRACE_NAME(name_literal), cat,      \
                             static_cast<uint64_t>(flow_id));        \
    }                                                                \
  } while (0)

#define QCM_TRACE_FLOW_END(cat, name_literal, flow_id)               \
  do {                                                               \
    if (::qcm::trace::Enabled()) {                                   \
      ::qcm::trace::EmitFlow(::qcm::trace::EventType::kFlowEnd,      \
                             QCM_TRACE_NAME(name_literal), cat,      \
                             static_cast<uint64_t>(flow_id));        \
    }                                                                \
  } while (0)

#endif  // QCM_UTIL_TRACE_H_
