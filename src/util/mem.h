// Process memory accounting: peak RSS as reported by the kernel, used for
// the "RAM" column of Table 2 and the scalability tables.

#ifndef QCM_UTIL_MEM_H_
#define QCM_UTIL_MEM_H_

#include <cstdint>
#include <string>

namespace qcm {

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Returns 0 if unavailable.
uint64_t PeakRssBytes();

/// Current resident set size in bytes (VmRSS). Returns 0 if unavailable.
uint64_t CurrentRssBytes();

/// Human-readable byte count, e.g. "3.1 GB", "12.0 MB".
std::string HumanBytes(uint64_t bytes);

}  // namespace qcm

#endif  // QCM_UTIL_MEM_H_
