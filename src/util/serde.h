// Binary encoding/decoding used for task spilling to disk and for the
// simulated inter-machine transfer of stolen tasks. Little-endian
// fixed-width integers plus varint-free length-prefixed containers; the
// format carries a small magic + checksum per blob so corrupted spill files
// surface as Status::Corruption instead of undefined behavior.

#ifndef QCM_UTIL_SERDE_H_
#define QCM_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace qcm {

/// Appends typed values to a growable byte buffer.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }

  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }

  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }

  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  void PutString(const std::string& s) {
    PutU64(s.size());
    buf_.append(s);
  }

  /// Length-prefixed vector of 32-bit values (vertex id lists).
  void PutU32Vector(const std::vector<uint32_t>& v) {
    PutU32Span(v.data(), v.size());
  }

  /// Length-prefixed span of 32-bit values; decodes via GetU32Vector.
  /// Avoids materializing a temporary vector when the source is a raw
  /// range (adjacency spans on the pull-serve path).
  void PutU32Span(const uint32_t* data, size_t n) {
    PutU64(n);
    if (n != 0) PutRaw(data, n * sizeof(uint32_t));
  }

  /// Length-prefixed vector of 64-bit values (offset arrays).
  void PutU64Vector(const std::vector<uint64_t>& v) {
    PutU64(v.size());
    if (!v.empty()) PutRaw(v.data(), v.size() * sizeof(uint64_t));
  }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
};

/// Reads typed values back from a byte span; all getters return
/// Status::Corruption on underflow rather than reading out of bounds.
class Decoder {
 public:
  Decoder(const char* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::string& s) : Decoder(s.data(), s.size()) {}

  Status GetU8(uint8_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU32(uint32_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU64(uint64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetI64(int64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetDouble(double* out) { return GetRaw(out, sizeof(*out)); }

  Status GetString(std::string* out) {
    uint64_t n = 0;
    QCM_RETURN_IF_ERROR(GetU64(&n));
    if (n > Remaining()) return Underflow();
    out->assign(data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status GetU32Vector(std::vector<uint32_t>* out) {
    uint64_t n = 0;
    QCM_RETURN_IF_ERROR(GetU64(&n));
    if (n * sizeof(uint32_t) > Remaining()) return Underflow();
    out->resize(n);
    return n == 0 ? Status::OK() : GetRaw(out->data(), n * sizeof(uint32_t));
  }

  Status GetU64Vector(std::vector<uint64_t>* out) {
    uint64_t n = 0;
    QCM_RETURN_IF_ERROR(GetU64(&n));
    if (n * sizeof(uint64_t) > Remaining()) return Underflow();
    out->resize(n);
    return n == 0 ? Status::OK() : GetRaw(out->data(), n * sizeof(uint64_t));
  }

  size_t Remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }

 private:
  Status GetRaw(void* out, size_t n) {
    if (n > Remaining()) return Underflow();
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  static Status Underflow() {
    return Status::Corruption("decode underflow: truncated blob");
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// FNV-1a checksum over a byte buffer; cheap integrity guard for spill blobs.
/// Streamable: Fingerprint(a+b) == ExtendFingerprint(Fingerprint(a), b).
inline constexpr uint64_t kFingerprintSeed = 0xcbf29ce484222325ULL;
uint64_t ExtendFingerprint(uint64_t state, const char* data, size_t size);
inline uint64_t Fingerprint(const char* data, size_t size) {
  return ExtendFingerprint(kFingerprintSeed, data, size);
}
inline uint64_t Fingerprint(const std::string& s) {
  return Fingerprint(s.data(), s.size());
}

/// Frames `payload` as [magic u32][len u64][fingerprint u64][payload] and
/// appends it to `out`. Paired with ReadFramedBlob.
void AppendFramedBlob(const std::string& payload, std::string* out);

/// Reads one framed blob starting at *pos; advances *pos past it.
/// Returns Corruption on bad magic / truncation / checksum mismatch.
Status ReadFramedBlob(const std::string& buf, size_t* pos,
                      std::string* payload);

}  // namespace qcm

#endif  // QCM_UTIL_SERDE_H_
