// Disk spilling of task batches (paper §5): when an in-memory task queue
// overflows, a batch of C tasks at its tail is serialized to a file; when a
// queue runs low it refills from the most recent file first (LIFO keeps the
// on-disk volume small, matching G-thinker's "minimize the task volume on
// disks"). One SpillManager backs L_small (per machine, fed by the local
// queues) and another backs L_big (fed by the machine's global queue).

#ifndef QCM_GTHINKER_SPILL_H_
#define QCM_GTHINKER_SPILL_H_

#include <mutex>
#include <string>
#include <vector>

#include "gthinker/metrics.h"
#include "util/status.h"

namespace qcm {

class SpillManager {
 public:
  /// Files are created as `dir/tag_<seq>.spill`. `counters` may be null.
  SpillManager(std::string dir, std::string tag, EngineCounters* counters);

  /// Writes one batch of serialized tasks as a new spill file.
  Status SpillBatch(const std::vector<std::string>& blobs);

  /// Pops the most recently spilled batch; empty vector if none exist.
  StatusOr<std::vector<std::string>> PopBatch();

  /// Number of spill files currently on disk.
  size_t FileCount() const;

  /// Total tasks currently buffered on disk.
  uint64_t PendingTasks() const;

  /// Removes all remaining spill files (end-of-run cleanup).
  void RemoveAll();

 private:
  struct FileEntry {
    std::string path;
    size_t task_count;
  };

  std::string dir_;
  std::string tag_;
  EngineCounters* counters_;

  mutable std::mutex mu_;
  std::vector<FileEntry> files_;
  uint64_t seq_ = 0;
  uint64_t pending_tasks_ = 0;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_SPILL_H_
