// Engine metrics: shared atomic counters, per-thread accumulators, and the
// final run report. These feed every table and figure of the evaluation:
// Table 2's RAM/disk columns, Table 5's load-balance evidence, Table 6's
// mining vs. materialization split, and Figures 1-3's per-root task costs.

#ifndef QCM_GTHINKER_METRICS_H_
#define QCM_GTHINKER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "net/transport.h"
#include "quick/mining_context.h"
#include "quick/quasi_clique.h"
#include "sched/lifecycle.h"

namespace qcm {

/// Message types carried by the CommFabric (every cross-machine transfer
/// of the simulation goes through exactly one of these).
inline constexpr int kNumMessageTypes = 3;

/// Buckets of the message delivery-latency histogram: log-decade bounds
/// [<10us, <100us, <1ms, <10ms, <100ms, <1s, <10s, >=10s].
inline constexpr int kMsgLatencyBuckets = 8;

/// Bucket index of an observed delivery latency in seconds.
int MsgLatencyBucketIndex(double seconds);
/// Human-readable bucket label ("<1ms", ">=10s").
const char* MsgLatencyBucketLabel(int bucket);

/// Per-root aggregate across all (sub)tasks of that root: the unit the
/// paper's Figures 1-3 plot.
struct RootTaskAgg {
  VertexId root = 0;
  uint32_t subgraph_vertices = 0;  // |V(t.g)| of the spawned task
  uint64_t subgraph_edges = 0;
  double mining_seconds = 0.0;  // summed over the root's subtasks
  uint64_t tasks = 0;           // 1 + number of decomposed subtasks
};

/// Metrics owned by one mining thread (no synchronization; merged at end).
struct ThreadMetrics {
  int machine = 0;
  int thread = 0;

  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  /// Time inside RecursiveMine (the "actual mining" of Table 6).
  double mining_seconds = 0.0;
  /// Time materializing subtask subgraphs (Table 6's counterpart).
  double materialize_seconds = 0.0;
  /// Time building spawned tasks' 2-hop ego networks (iterations 1-2);
  /// kept separate so Table 6's ratio reflects decomposition overhead only.
  double build_seconds = 0.0;

  uint64_t tasks_processed = 0;
  uint64_t tasks_spawned = 0;
  uint64_t subtasks_created = 0;

  MiningStats mining_stats;
  std::vector<VertexSet> results;

  /// root -> aggregate; only filled when EngineConfig::record_task_log.
  std::unordered_map<VertexId, RootTaskAgg> root_agg;
};

/// Cross-thread counters (atomics; relaxed ordering is sufficient --
/// counters are read only after the engine quiesces).
struct EngineCounters {
  std::atomic<uint64_t> big_tasks{0};
  std::atomic<uint64_t> small_tasks{0};
  std::atomic<uint64_t> spill_files{0};
  std::atomic<uint64_t> spilled_tasks{0};
  std::atomic<uint64_t> spill_bytes_written{0};
  std::atomic<uint64_t> spill_bytes_read{0};
  std::atomic<uint64_t> steal_events{0};
  std::atomic<uint64_t> stolen_tasks{0};
  std::atomic<uint64_t> steal_bytes{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> cache_evictions{0};
  /// Inserts the TinyLFU admission filter rejected (the candidate's
  /// estimated frequency lost against the eviction victim's).
  std::atomic<uint64_t> cache_admit_rejects{0};
  /// Fetch/Request served by an adjacency the task itself pinned from a
  /// prior pull round (no cache lookup, no transfer).
  std::atomic<uint64_t> pin_hits{0};
  /// Bytes moved by synchronous fallback fetches (cache miss during a
  /// compute round, outside the batched pull path).
  std::atomic<uint64_t> remote_bytes{0};
  /// Compute rounds that ended in ComputeStatus::kSuspended (the paper's
  /// "add t back to the queue" while its vertex pull is outstanding).
  std::atomic<uint64_t> task_suspensions{0};

  // -- Spawn-time prefetch (sched/scheduler.h pipeline stage) --

  /// Tasks that entered the kPrefetching stage (parked on a spawn-time
  /// pull before their first schedule).
  std::atomic<uint64_t> prefetch_tasks{0};
  /// Vertex ids queued for a spawn-time pull (a transfer was needed).
  std::atomic<uint64_t> prefetch_issued{0};
  /// Pin hits during the FIRST compute round of a prefetched task -- the
  /// reads the prefetch pipeline turned from transfers into pins.
  std::atomic<uint64_t> prefetch_hits{0};
  /// Adjacencies already pinned when a prefetched task became kReady for
  /// its first schedule (the "first compute round finds pins" evidence).
  std::atomic<uint64_t> first_schedule_pins{0};
  /// Broker flushes that transferred at least one batched request.
  std::atomic<uint64_t> pull_rounds{0};
  /// Machine-to-machine batched pull messages (one per remote machine per
  /// flush, split at EngineConfig::max_pull_batch ids).
  std::atomic<uint64_t> pull_batches{0};
  /// Vertices transferred via batched pulls (deduplicated per flush).
  std::atomic<uint64_t> pulled_vertices{0};
  /// Bytes of adjacency moved by batched pulls.
  std::atomic<uint64_t> pull_bytes{0};
  std::atomic<uint64_t> tasks_completed{0};

  // -- CommFabric message accounting (indexed by MessageType) --

  /// Messages enqueued on the fabric, per type.
  std::atomic<uint64_t> msg_sent[kNumMessageTypes]{};
  /// Messages delivered by a destination service tick, per type.
  std::atomic<uint64_t> msg_delivered[kNumMessageTypes]{};
  /// Serialized payload bytes enqueued, per type.
  std::atomic<uint64_t> msg_bytes[kNumMessageTypes]{};
  /// Messages removed by a termination drain instead of a normal delivery
  /// (should stay 0 in a healthy run: pending-task accounting keeps the
  /// engine alive while anything meaningful is in flight).
  std::atomic<uint64_t> msg_drained{0};
  /// Current serialized bytes in flight (gauge) and its observed peak.
  std::atomic<uint64_t> msg_inflight_bytes{0};
  std::atomic<uint64_t> msg_inflight_bytes_peak{0};
  /// Deepest per-machine inbox observed (undelivered messages).
  std::atomic<uint64_t> msg_queue_depth_peak{0};
  /// Histogram of observed enqueue->delivery wall latency.
  std::atomic<uint64_t> msg_latency_hist[kMsgLatencyBuckets]{};
  /// Sum of observed enqueue->delivery wall latency (microseconds).
  std::atomic<uint64_t> msg_latency_usec_sum{0};
  /// Messages whose destination machine had at least one comper busy
  /// mining when the message was enqueued (sampled overlap evidence: the
  /// transfer's flight time was hidden behind computation).
  std::atomic<uint64_t> msg_overlapped{0};

  /// Wall time the steal master spent sleeping between balancing rounds
  /// vs. actively planning/serializing steals (microseconds).
  std::atomic<uint64_t> steal_idle_usec{0};
  std::atomic<uint64_t> steal_active_usec{0};

  // -- Fault tolerance (gthinker/checkpoint.h; all zero when
  // checkpointing is off or the run never lost a rank) --

  /// Tasks re-injected locally because the peer they had been stolen to
  /// (or was being stolen to) died before mining them.
  std::atomic<uint64_t> replayed_tasks{0};
  /// Result sets recovered from a dead predecessor's checkpoint log.
  std::atomic<uint64_t> recovered_results{0};
  /// Spawn roots skipped because the predecessor's log proved them done.
  std::atomic<uint64_t> completed_roots_skipped{0};
  /// Checkpoint-log durability flushes and bytes appended.
  std::atomic<uint64_t> checkpoint_flushes{0};
  std::atomic<uint64_t> checkpoint_bytes{0};

  /// Task lifecycle transition matrix (sched/lifecycle.h): every state
  /// move of every task, recorded by AdvanceTaskState.
  LifecycleCounters lifecycle;
};

/// Plain-value snapshot of EngineCounters for reports.
struct EngineCountersSnapshot {
  uint64_t big_tasks = 0;
  uint64_t small_tasks = 0;
  uint64_t spill_files = 0;
  uint64_t spilled_tasks = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_bytes_read = 0;
  uint64_t steal_events = 0;
  uint64_t stolen_tasks = 0;
  uint64_t steal_bytes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_admit_rejects = 0;
  uint64_t pin_hits = 0;
  uint64_t remote_bytes = 0;
  uint64_t task_suspensions = 0;
  uint64_t prefetch_tasks = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t first_schedule_pins = 0;
  uint64_t pull_rounds = 0;
  uint64_t pull_batches = 0;
  uint64_t pulled_vertices = 0;
  uint64_t pull_bytes = 0;
  uint64_t tasks_completed = 0;

  uint64_t msg_sent[kNumMessageTypes] = {};
  uint64_t msg_delivered[kNumMessageTypes] = {};
  uint64_t msg_bytes[kNumMessageTypes] = {};
  uint64_t msg_drained = 0;
  uint64_t msg_inflight_bytes_peak = 0;
  uint64_t msg_queue_depth_peak = 0;
  uint64_t msg_latency_hist[kMsgLatencyBuckets] = {};
  uint64_t msg_latency_usec_sum = 0;
  uint64_t msg_overlapped = 0;

  uint64_t steal_idle_usec = 0;
  uint64_t steal_active_usec = 0;

  uint64_t replayed_tasks = 0;
  uint64_t recovered_results = 0;
  uint64_t completed_roots_skipped = 0;
  uint64_t checkpoint_flushes = 0;
  uint64_t checkpoint_bytes = 0;

  // -- Transport data-plane flush accounting (process-per-machine mode
  // only; all zero in simulated runs). Copied from the transport's
  // TransportFlushStats after the run via AddFlushStats. --

  /// Write syscalls issued for data frames.
  uint64_t net_flushes = 0;
  /// Data frames / frame bytes pushed through those flushes
  /// (net_flush_frames / net_flushes = frames per syscall).
  uint64_t net_flush_frames = 0;
  uint64_t net_flush_bytes = 0;
  /// Flush-cause breakdown: size threshold / linger expiry / shutdown
  /// residue / coalescing off.
  uint64_t net_flush_size = 0;
  uint64_t net_flush_linger = 0;
  uint64_t net_flush_forced = 0;
  uint64_t net_flush_direct = 0;
  /// Total microseconds frames sat parked in coalescing buffers.
  uint64_t net_flush_park_usec = 0;
  /// Bytes-per-flush histogram (buckets of FlushBytesBucketIndex).
  uint64_t net_flush_bytes_hist[kFlushBytesBuckets] = {};

  // -- Paged adjacency store (snapshot-backed tables only; all zero when
  // the graph is resident). Copied from PagedAdjacencyStore::stats()
  // after the run via AddPagedStoreStats. --

  /// Page references taken through the pager (repins included).
  uint64_t graph_page_pins = 0;
  /// Pages faulted into the frame pool / dropped via MADV_DONTNEED.
  uint64_t graph_page_ins = 0;
  uint64_t graph_page_evictions = 0;
  /// Wall microseconds mining threads stalled on page-in faults.
  uint64_t graph_fault_stall_usec = 0;
  /// Small-list reads served by the resident inline arena.
  uint64_t graph_inline_served = 0;

  /// Plain-value copy of the lifecycle transition matrix.
  uint64_t lifecycle_transitions[kNumTaskStates][kNumTaskStates] = {};

  static EngineCountersSnapshot From(const EngineCounters& c);

  /// Folds a transport's flush statistics into the net_flush_* fields.
  void AddFlushStats(const TransportFlushStats& fs);

  /// Folds a paged adjacency store's counters into the graph_* fields.
  void AddPagedStoreStats(const struct PagedStoreStatsSnapshot& ps);

  /// Mean data frames per write syscall (0.0 before any flush).
  double FramesPerFlush() const;
  /// Mean microseconds a frame waited in a coalescing buffer.
  double MeanFlushParkUsec() const;

  uint64_t LifecycleTransitions(TaskState from, TaskState to) const {
    return lifecycle_transitions[static_cast<int>(from)]
                                [static_cast<int>(to)];
  }

  /// Fraction of remote-adjacency demands served without a transfer
  /// (cache or pin); 1.0 when there was no remote traffic at all.
  double CacheHitRatio() const;

  /// Total CommFabric messages enqueued across all types.
  uint64_t MessagesSent() const;
  /// Total serialized payload bytes enqueued across all types.
  uint64_t MessageBytes() const;
  /// Fraction of fabric messages whose destination was busy mining when
  /// they were enqueued (sampled); 1.0 when no messages were sent. The
  /// higher the ratio, the better transfer latency is hidden.
  double MessageOverlapRatio() const;
  /// Mean observed enqueue->delivery latency in seconds (0.0 when no
  /// message was ever delivered).
  double MeanDeliveryLatencySeconds() const;
};

/// Per-thread summary included in the report (load-balance evidence).
struct ThreadSummary {
  int machine = 0;
  int thread = 0;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  double mining_seconds = 0.0;
  double materialize_seconds = 0.0;
  uint64_t tasks_processed = 0;
};

/// Final report of an engine run.
struct EngineReport {
  double wall_seconds = 0.0;
  EngineCountersSnapshot counters;
  MiningStats mining;
  std::vector<ThreadSummary> threads;
  /// Raw emitted candidates (postprocess with FilterMaximal).
  std::vector<VertexSet> results;
  /// Per-root task aggregates (record_task_log only), unordered.
  std::vector<RootTaskAgg> root_tasks;

  uint64_t peak_rss_bytes = 0;
  double total_mining_seconds = 0.0;
  double total_materialize_seconds = 0.0;
  double total_build_seconds = 0.0;
  double total_busy_seconds = 0.0;
  double total_idle_seconds = 0.0;

  /// Max/min per-thread busy time ratio; 1.0 = perfectly balanced, 0.0
  /// when some thread never ran (the ratio is undefined -- never NaN/inf).
  double BusyImbalance() const;
};

class Encoder;
class Decoder;

/// Serializes an EngineReport (everything except the per-root task log,
/// which only figure-reproduction benches consume locally) so a worker
/// process can ship its run report to the cluster coordinator.
void EncodeEngineReport(const EngineReport& report, Encoder* enc);
Status DecodeEngineReport(Decoder* dec, EngineReport* report);

/// Merges per-rank reports into one cluster-wide report: counters and
/// cumulative times sum, gauge peaks take the max, wall time is the
/// slowest rank, thread summaries and raw results concatenate.
EngineReport MergeEngineReports(const std::vector<EngineReport>& reports);

/// Machine-readable EngineReport (counters, derived ratios, per-thread
/// summaries, result count) as a self-contained JSON object -- the
/// payload of qcm_mine/qcm_worker --stats-json, merged across ranks by
/// qcm_cluster.
std::string EngineReportJson(const EngineReport& report);

}  // namespace qcm

#endif  // QCM_GTHINKER_METRICS_H_
