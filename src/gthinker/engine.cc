#include "gthinker/engine.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "net/wire.h"
#include "quick/mining_context.h"
#include "sched/steal_planner.h"
#include "util/logging.h"
#include "util/mem.h"
#include "util/serde.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qcm {

// ---------------------------------------------------------------------------
// Worker: one simulated machine.
// ---------------------------------------------------------------------------

struct Engine::Worker {
  int id = 0;
  std::unique_ptr<DataService> data;
  std::unique_ptr<PullBroker> broker;         // batched vertex pulls
  std::unique_ptr<SpillManager> small_spill;  // L_small
  std::unique_ptr<SpillManager> big_spill;    // L_big
  std::unique_ptr<GlobalQueue> global_queue;  // Q_global
  std::unique_ptr<Scheduler> sched;           // the machine's policy object
  /// Compers of this machine currently inside App::Compute; sampled by
  /// the CommFabric at enqueue time for the overlap-ratio metric.
  std::atomic<int> busy_compers{0};

  /// Pending big tasks = Q_global + L_big (the quantity the steal master
  /// balances across machines).
  uint64_t PendingBig() const {
    return global_queue->ApproxSize() + big_spill->PendingTasks();
  }
};

// ---------------------------------------------------------------------------
// Comper: one mining thread. A thin driver of the machine's Scheduler --
// it owns the thread-local LocalQueue and implements the ComputeContext
// the application UDFs run against; every scheduling decision (routing,
// spawn batching, prefetch, park/resume, spilling, lifecycle) happens in
// the sched layer.
// ---------------------------------------------------------------------------

class Engine::Comper : public ComputeContext {
 public:
  Comper(Engine* engine, Worker* worker, int machine, int thread)
      : engine_(engine), worker_(worker) {
    metrics_.machine = machine;
    metrics_.thread = thread;
    // Pre-size the materialization scratch so the first task already runs
    // allocation-free over the full vertex-id space.
    ego_scratch_.Reset(engine_->table_->NumVertices());
  }

  void Run() {
    if (trace::Enabled()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "comper%d.%d", metrics_.machine,
                    metrics_.thread);
      trace::SetThreadName(buf);
    }
    Scheduler* sched = worker_->sched.get();
    while (!engine_->done_.load()) {
      sched->ServiceFabric(engine_->fabric_.get(), local_);
      TaskPtr task = sched->NextTask(local_, *this);
      if (task != nullptr) {
        WallTimer busy;
        const bool first_round = !task->sched_info().computed_once;
        active_task_ = task.get();
        active_task_first_round_ = first_round;
        const size_t sink_before = sink_.results().size();
        worker_->busy_compers.fetch_add(1, std::memory_order_relaxed);
        ComputeStatus status;
        {
          QCM_TRACE_SPAN(trace::kLifecycle, "compute", task->root());
          status = engine_->app_->Compute(*task, *this);
        }
        worker_->busy_compers.fetch_sub(1, std::memory_order_relaxed);
        active_task_ = nullptr;
        metrics_.busy_seconds += busy.Seconds();
        ++metrics_.tasks_processed;
        // Checkpoint the round's results BEFORE the lifecycle sees the
        // round's completion: the log's append order is what guarantees a
        // root-done record is never durable ahead of its subtree's
        // results.
        if (engine_->ckpt_log_ != nullptr) {
          const auto& results = sink_.results();
          for (size_t i = sink_before; i < results.size(); ++i) {
            engine_->ckpt_log_->AppendResult(results[i]);
          }
        }
        sched->OnComputeResult(std::move(task), status, local_);
        continue;
      }
      // No work found anywhere: maybe everything is finished; otherwise
      // nap briefly (other threads hold decomposable or suspended tasks).
      WallTimer idle;
      engine_->MaybeFinish();
      if (!engine_->done_.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      metrics_.idle_seconds += idle.Seconds();
    }
  }

  // ---- ComputeContext ----

  AdjRef Fetch(VertexId v) override {
    if (active_task_ != nullptr && !worker_->data->IsLocal(v)) {
      if (const auto* pin = active_task_->pulls().Find(v)) {
        CountPinHit();
        return AdjRef{
            std::span<const VertexId>((*pin)->data(), (*pin)->size()), *pin};
      }
    }
    return worker_->data->Fetch(v);
  }

  bool Request(VertexId v) override {
    QCM_CHECK(active_task_ != nullptr)
        << "Request() outside a compute round";
    if (worker_->data->IsLocal(v)) return true;
    TaskPullState& pulls = active_task_->pulls();
    if (pulls.Find(v) != nullptr) {
      CountPinHit();
      return true;
    }
    if (auto cached = worker_->data->TryCached(v)) {
      // Pin the cache copy so a later Fetch cannot lose it to eviction.
      pulls.Pin(v, std::move(cached));
      return true;
    }
    pulls.Want(v);
    return false;
  }

  uint32_t Degree(VertexId v) override { return worker_->data->Degree(v); }

  void AddTask(TaskPtr task) override {
    worker_->sched->SubmitNew(std::move(task), local_);
  }

  ResultSink& sink() override { return sink_; }
  ThreadMetrics& metrics() override { return metrics_; }
  EgoScratch& ego_scratch() override { return ego_scratch_; }
  MiningScratch* mining_scratch() override { return &mining_scratch_; }
  const EngineConfig& config() const override { return engine_->config_; }

  ThreadMetrics metrics_;
  VectorSink sink_;

 private:
  /// A read served by a task-held pin; when it happens in the first
  /// compute round of a prefetched task, it is a read the spawn-time
  /// prefetch turned from a suspension-and-transfer into a pin hit.
  void CountPinHit() {
    engine_->counters_.pin_hits.fetch_add(1, std::memory_order_relaxed);
    if (active_task_first_round_ && active_task_->sched_info().prefetched) {
      engine_->counters_.prefetch_hits.fetch_add(1,
                                                 std::memory_order_relaxed);
    }
  }

  Engine* engine_;
  Worker* worker_;
  Task* active_task_ = nullptr;  // task currently in Compute (pull target)
  bool active_task_first_round_ = false;
  LocalQueue local_;
  EgoScratch ego_scratch_;
  MiningScratch mining_scratch_;
};

namespace {

/// Serializes a stolen batch into a kStealBatch payload, moving each
/// task's lifecycle to kStolen (the receiver rehydrates kStolen->kReady).
/// Shared by the in-process steal master and the coordinator-commanded
/// steal path so the wire format and lifecycle recording cannot drift.
/// With checkpointing on, shipping a task taints its root: the subtree's
/// completion is no longer locally observable, so the root must never be
/// checkpointed as done.
std::string EncodeStealBatchPayload(const std::vector<TaskPtr>& tasks,
                                    EngineCounters* counters,
                                    RootProgress* root_progress) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(tasks.size()));
  for (const TaskPtr& t : tasks) {
    if (root_progress != nullptr) root_progress->Taint(t->root());
    AdvanceTaskState(*t, TaskState::kStolen, &counters->lifecycle);
    t->Encode(&enc);
  }
  return enc.Release();
}

/// Mirrors a telemetry sample into local trace counter tracks (the
/// per-rank half of the kStats stream; the coordinator renders the
/// cluster-wide half from the frames themselves).
void RecordStatsCounters(const WireStatsSample& s) {
  if (!trace::Enabled()) return;
  trace::EmitCounter(QCM_TRACE_NAME("queue_depth"), trace::kStats,
                     s.queue_depth);
  trace::EmitCounter(QCM_TRACE_NAME("inflight_bytes"), trace::kStats,
                     s.inflight_bytes);
  trace::EmitCounter(QCM_TRACE_NAME("busy_compers"), trace::kStats,
                     s.busy_compers);
  trace::EmitCounter(QCM_TRACE_NAME("tasks_completed"), trace::kStats,
                     s.tasks_completed);
  trace::EmitCounter(QCM_TRACE_NAME("cache_hits"), trace::kStats,
                     s.cache_hits);
  trace::EmitCounter(QCM_TRACE_NAME("cache_misses"), trace::kStats,
                     s.cache_misses);
  trace::EmitCounter(
      QCM_TRACE_NAME("pending_tasks"), trace::kStats,
      static_cast<uint64_t>(s.pending < 0 ? 0 : s.pending));
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(const Graph* graph, EngineConfig config, App* app)
    : graph_(graph), config_(std::move(config)), app_(app) {}

Engine::Engine(std::unique_ptr<VertexTable> table, EngineConfig config,
               App* app, Transport* transport)
    : graph_(nullptr),
      config_(std::move(config)),
      app_(app),
      transport_(transport),
      table_(std::move(table)) {}

Engine::~Engine() {
  if (owns_spill_dir_ && !spill_dir_.empty()) {
    ::rmdir(spill_dir_.c_str());
  }
}

bool Engine::SpawnExhausted() const {
  for (const auto& worker : workers_) {
    if (!worker->sched->SpawnExhausted()) return false;
  }
  return true;
}

void Engine::MaybeFinish() {
  // Distributed mode: local quiescence proves nothing -- a peer may still
  // route work here. The coordinator's distributed detection (fed by
  // StatusLoop) is the only authority that may set done_.
  if (distributed()) return;
  // Order matters: a spawner increments active_spawners_ before claiming a
  // cursor slot, so reading spawners==0 after cursors-exhausted guarantees
  // no task materializes after our pending_ read.
  if (!SpawnExhausted()) return;
  if (active_spawners_.load() != 0) return;
  if (pending_.load() != 0) return;
  done_.store(true);
}

WireStatsSample Engine::SampleStats() const {
  WireStatsSample s;
  s.epoch = distributed() ? transport_->epoch() : 0;
  s.ts_usec = static_cast<uint64_t>(NowMicros());
  for (const auto& w : workers_) {
    s.queue_depth += w->PendingBig();
    s.busy_compers += static_cast<uint32_t>(
        std::max(0, w->busy_compers.load(std::memory_order_relaxed)));
  }
  s.inflight_bytes =
      counters_.msg_inflight_bytes.load(std::memory_order_relaxed);
  s.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = counters_.cache_misses.load(std::memory_order_relaxed);
  s.tasks_completed =
      counters_.tasks_completed.load(std::memory_order_relaxed);
  s.pending = pending_.load();
  return s;
}

void Engine::StatsSamplerLoop() {
  trace::SetThreadName("stats_sampler");
  const int64_t interval_usec = config_.stats_interval_ms * 1000;
  while (!done_.load()) {
    RecordStatsCounters(SampleStats());
    // Sleep one interval in small slices so termination is not delayed.
    int64_t slept = 0;
    while (!done_.load() && slept < interval_usec) {
      const int64_t slice = std::min<int64_t>(1000, interval_usec - slept);
      std::this_thread::sleep_for(std::chrono::microseconds(slice));
      slept += slice;
    }
  }
}

void Engine::StatusLoop() {
  // Publish this rank's termination inputs until the coordinator declares
  // global quiescence. Read order mirrors MaybeFinish: spawn state first,
  // then processed frames, then pending -- the transport snapshots its
  // per-peer sent counters after all of these inside PublishStatus --
  // combined with the wire-boundary pending accounting this keeps
  // in-flight work visible in every snapshot the coordinator can
  // assemble.
  trace::SetThreadName("status_loop");
  uint64_t last_manifest_usec = 0;
  uint64_t last_stats_usec = 0;
  const uint64_t stats_interval_usec =
      config_.stats_interval_ms > 0
          ? static_cast<uint64_t>(config_.stats_interval_ms) * 1000
          : 0;
  for (;;) {
    RankStatus status;
    status.spawn_done = SpawnExhausted() && active_spawners_.load() == 0;
    status.processed_from.resize(processed_from_.size());
    for (size_t r = 0; r < processed_from_.size(); ++r) {
      status.processed_from[r] =
          processed_from_[r].load(std::memory_order_acquire);
    }
    status.pending = pending_.load();
    status.pending_big = workers_[0]->PendingBig();
    // Mean observed delivery latency so far: the coordinator's input to
    // latency-aware steal planning (it cannot see our fabric directly).
    uint64_t delivered = 0;
    for (int t = 0; t < kNumMessageTypes; ++t) {
      delivered += counters_.msg_delivered[t].load(std::memory_order_relaxed);
    }
    status.delivery_latency_usec =
        delivered == 0
            ? 0
            : counters_.msg_latency_usec_sum.load(std::memory_order_relaxed) /
                  delivered;
    transport_->PublishStatus(status);
    if (stats_interval_usec > 0) {
      const uint64_t now = static_cast<uint64_t>(NowMicros());
      if (now - last_stats_usec >= stats_interval_usec) {
        last_stats_usec = now;
        // The coordinator renders these into the merged trace's counter
        // tracks (and the launcher ticker); recording them locally too
        // would double every track in the merged timeline.
        transport_->PublishStats(SampleStats());
      }
    }
    if (done_.load()) return;
    if (ckpt_log_ != nullptr) {
      const uint64_t now = static_cast<uint64_t>(NowMicros());
      if (now - last_manifest_usec > 1000000) {  // ~1s cadence
        last_manifest_usec = now;
        WriteCheckpointManifest();
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

void Engine::WriteCheckpointManifest() {
  // Human-readable crash-scene observability (never a recovery input).
  std::string m;
  m += "rank: " + std::to_string(first_machine()) + "\n";
  m += "epoch: " + std::to_string(transport_->epoch()) + "\n";
  m += "spill_dir: " + spill_dir_ + "\n";
  m += "spawn_cursor: " +
       std::to_string(workers_[0]->sched->SpawnCursor()) + "\n";
  m += "pending: " + std::to_string(pending_.load()) + "\n";
  m += "tasks_completed: " +
       std::to_string(counters_.tasks_completed.load(
           std::memory_order_relaxed)) + "\n";
  m += "tracked_roots: " +
       std::to_string(root_progress_ != nullptr ? root_progress_->tracked()
                                                : 0) + "\n";
  m += "checkpoint_bytes: " +
       std::to_string(ckpt_log_->bytes_appended()) + "\n";
  (void)ckpt_log_->WriteManifest(m);
}

void Engine::ReinjectStealPayload(std::string payload, bool add_pending) {
  auto count = StealBatchTaskCount(payload);
  QCM_CHECK(count.ok()) << "corrupt retained steal batch: "
                        << count.status().ToString();
  if (add_pending) pending_.fetch_add(count.value());
  counters_.replayed_tasks.fetch_add(count.value(),
                                     std::memory_order_relaxed);
  fabric_->Inject(MessageType::kStealBatch, first_machine(),
                  std::move(payload));
}

void Engine::OnPeerDown(int peer) {
  // The transport joined the dead incarnation's receive thread before
  // invoking this hook, so processed_from_[peer] is quiescent here and
  // the reset pairs exactly with the transport's sent_to[peer] reset.
  processed_from_[peer].store(0, std::memory_order_release);
  std::vector<std::string> retained;
  {
    std::lock_guard<std::mutex> lock(retained_mu_);
    retained.swap(retained_steals_[peer]);
  }
  for (std::string& payload : retained) {
    // These tasks left pending_ when their batch shipped; they re-enter
    // it now and are mined here. Parts the dead rank already finished
    // come back as exact duplicates for the final dedup.
    ReinjectStealPayload(std::move(payload), /*add_pending=*/true);
  }
  if (!retained.empty()) {
    QCM_ILOG << "rank " << first_machine() << ": re-injected "
             << retained.size() << " steal batch(es) shipped to dead rank "
             << peer;
  }
}

void Engine::OnPeerUp(int peer) {
  // Pulls that were in flight toward the dead incarnation died with it;
  // ask the replacement (same partition) again. Parked tasks stayed
  // counted in pending_ throughout, so termination never raced past
  // them.
  const size_t requeued = workers_[0]->broker->RequeueInflightFor(peer);
  if (requeued > 0) {
    QCM_ILOG << "rank " << first_machine() << ": re-requesting "
             << requeued << " vertex pull(s) from recovered rank " << peer;
  }
}

void Engine::OnWireData(int src, uint8_t type, std::string payload,
                        uint64_t wire_transit_usec) {
  QCM_CHECK(type <= static_cast<uint8_t>(MessageType::kStealBatch))
      << "unknown fabric message type " << static_cast<int>(type)
      << " from rank " << src;
  const MessageType mtype = static_cast<MessageType>(type);
  if (mtype == MessageType::kStealBatch) {
    // The batch's tasks enter this process's pending accounting before
    // the frame counts as processed (transport.h's counting discipline).
    auto count = StealBatchTaskCount(payload);
    QCM_CHECK(count.ok()) << "corrupt steal batch from rank " << src << ": "
                          << count.status().ToString();
    pending_.fetch_add(count.value());
    // Close the cross-rank flow arrow the donor opened (id = payload
    // fingerprint, so both ends agree without extra wire bytes).
    if (trace::Enabled()) {
      trace::EmitFlow(trace::EventType::kFlowEnd,
                      QCM_TRACE_NAME("steal_flow"), trace::kLifecycle,
                      Fingerprint(payload));
    }
  }
  frames_processed_.fetch_add(1, std::memory_order_acq_rel);
  processed_from_[src].fetch_add(1, std::memory_order_acq_rel);
  fabric_->Inject(mtype, src, std::move(payload), wire_transit_usec);
}

void Engine::OnStealCommand(int receiver, uint64_t want) {
  QCM_CHECK(receiver >= 0 && receiver < config_.num_machines &&
            receiver != first_machine())
      << "steal command with bad receiver " << receiver;
  if (want == 0 || done_.load()) return;
  std::vector<TaskPtr> tasks = workers_[0]->global_queue->StealBatch(want);
  if (tasks.empty()) return;  // the coordinator's estimate was stale
  std::string payload =
      EncodeStealBatchPayload(tasks, &counters_, root_progress_.get());
  const uint64_t bytes = payload.size();
  // Retention-before-ship: a copy of the batch enters retained_steals_
  // under the same mutex OnPeerDown drains, so whichever of the two runs
  // second sees the other's effect -- the batch is either re-injected by
  // the hook (and our send below is silently dropped by the transport)
  // or shipped to a live receiver. Tasks can never fall between.
  {
    std::lock_guard<std::mutex> lock(retained_mu_);
    if (!transport_->PeerAlive(receiver)) {
      // The receiver died between the coordinator's command and now:
      // keep the batch as local work (pending_ was never decremented).
      ReinjectStealPayload(std::move(payload), /*add_pending=*/false);
      return;
    }
    retained_steals_[receiver].push_back(payload);
  }
  // Send first (the frame is counted as sent before the wire write), only
  // then drop the tasks from this process's pending accounting: the
  // coordinator always sees the batch as either local work or an
  // unprocessed frame, never as nothing.
  if (trace::Enabled()) {
    trace::EmitFlow(trace::EventType::kFlowStart,
                    QCM_TRACE_NAME("steal_flow"), trace::kLifecycle,
                    Fingerprint(payload));
  }
  fabric_->Send(MessageType::kStealBatch, first_machine(), receiver,
                std::move(payload));
  pending_.fetch_sub(static_cast<int64_t>(tasks.size()));
  counters_.steal_events.fetch_add(1, std::memory_order_relaxed);
  counters_.stolen_tasks.fetch_add(tasks.size(), std::memory_order_relaxed);
  counters_.steal_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void Engine::StealLoop() {
  // Nothing will ever be stolen: exit instead of waking every period
  // forever (Engine::Run does not even spawn the thread in this case,
  // but keep the guard for direct callers).
  if (!config_.enable_stealing || workers_.size() < 2) return;

  trace::SetThreadName("steal_loop");
  WallTimer lifetime;
  double active_seconds = 0.0;
  while (!done_.load()) {
    // Sleep one balancing period in small slices so termination is not
    // delayed by a long period.
    WallTimer napped;
    while (!done_.load() && napped.Seconds() < config_.steal_period_sec) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min<int64_t>(1000, static_cast<int64_t>(
                                      config_.steal_period_sec * 1e6) + 1)));
    }
    if (done_.load()) break;

    // Periodic balancing round: the shared steal planner (the same plan
    // the cluster Coordinator runs, paper §5) computes the moves, sized
    // per link by the RTT EWMAs the fabric feeds -- larger, rarer
    // batches on slow links.
    WallTimer active;
    std::vector<uint64_t> counts(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
      counts[i] = workers_[i]->PendingBig();
    }
    StealPlannerOptions opts;
    opts.base_batch = config_.batch_size;
    opts.rtt_reference_sec = config_.steal_rtt_reference_sec;
    opts.max_batch_factor = config_.steal_max_batch_factor;
    for (const StealMove& move : PlanSteals(counts, opts, rtt_.get())) {
      std::vector<TaskPtr> tasks =
          workers_[move.donor]->global_queue->StealBatch(move.want);
      if (tasks.empty()) continue;  // the plan's estimate was stale

      // Serialize the batch into one kStealBatch message; the fabric
      // delivers it into the receiver's global queue on a later service
      // tick, so the transfer overlaps with mining on both ends instead
      // of blocking this thread. The tasks remain counted in pending_
      // throughout the flight, so termination cannot race past them.
      std::string payload =
          EncodeStealBatchPayload(tasks, &counters_, root_progress_.get());
      const uint64_t bytes = payload.size();
      fabric_->Send(MessageType::kStealBatch, move.donor, move.receiver,
                    std::move(payload));
      counters_.steal_events.fetch_add(1, std::memory_order_relaxed);
      counters_.stolen_tasks.fetch_add(tasks.size(),
                                       std::memory_order_relaxed);
      counters_.steal_bytes.fetch_add(bytes, std::memory_order_relaxed);
    }
    active_seconds += active.Seconds();
  }
  counters_.steal_active_usec.fetch_add(
      static_cast<uint64_t>(active_seconds * 1e6),
      std::memory_order_relaxed);
  counters_.steal_idle_usec.fetch_add(
      static_cast<uint64_t>(
          std::max(0.0, lifetime.Seconds() - active_seconds) * 1e6),
      std::memory_order_relaxed);
}

StatusOr<EngineReport> Engine::Run() {
  if (ran_) {
    return Status::InvalidArgument("Engine::Run may only be called once");
  }
  ran_ = true;
  QCM_RETURN_IF_ERROR(config_.Validate());
  if (distributed()) {
    if (config_.num_machines != transport_->world_size()) {
      return Status::InvalidArgument(
          "num_machines (" + std::to_string(config_.num_machines) +
          ") must equal the transport world size (" +
          std::to_string(transport_->world_size()) + ")");
    }
    QCM_CHECK(table_ != nullptr && table_->partitioned() &&
              table_->local_rank() == transport_->rank() &&
              table_->NumMachines() == config_.num_machines)
        << "distributed engine needs a matching partitioned vertex table";
  }

  // Spill directory.
  if (config_.spill_dir.empty()) {
    char templ[] = "/tmp/qcm_spill_XXXXXX";
    char* dir = ::mkdtemp(templ);
    if (dir == nullptr) {
      return Status::IOError("cannot create spill directory");
    }
    spill_dir_ = dir;
    owns_spill_dir_ = true;
  } else {
    spill_dir_ = config_.spill_dir;
    ::mkdir(spill_dir_.c_str(), 0755);
  }

  // Durable progress checkpointing (distributed mode only: the recovery
  // protocol that consumes it lives in the cluster coordinator). A
  // replacement incarnation (epoch > 0) replays its predecessor's log
  // before mining: replayed results join the final report, fully-mined
  // roots are skipped at spawn time.
  if (distributed() && !config_.checkpoint_dir.empty()) {
    ckpt_log_ = std::make_unique<CheckpointLog>();
    CheckpointLog::LoadResult replay;
    const std::string dir = config_.checkpoint_dir + "/rank" +
                            std::to_string(transport_->rank());
    QCM_RETURN_IF_ERROR(ckpt_log_->Open(dir, transport_->epoch(),
                                        config_.checkpoint_interval_sec,
                                        &replay));
    recovered_results_ = std::move(replay.results);
    completed_roots_ = std::move(replay.completed_roots);
    counters_.recovered_results.store(recovered_results_.size(),
                                      std::memory_order_relaxed);
    root_progress_ = std::make_unique<RootProgress>(ckpt_log_.get());
    if (transport_->epoch() > 0) {
      QCM_ILOG << "rank " << transport_->rank() << " epoch "
               << transport_->epoch() << ": replayed " << replay.records
               << " checkpoint record(s) (" << recovered_results_.size()
               << " results, " << completed_roots_.size()
               << " completed roots, " << replay.torn_bytes
               << " torn bytes discarded)";
    }
  }

  WallTimer wall;
  if (!distributed()) {
    table_ = std::make_unique<VertexTable>(graph_, config_.num_machines);
  }
  fabric_ = std::make_unique<CommFabric>(
      config_.num_machines, config_.net_latency_ticks,
      config_.net_latency_sec, &counters_, transport_);
  // Per-link delivery-latency EWMAs, measured off fabric message
  // timestamps; the steal planner sizes batches from them. Alpha 0.25:
  // converge within a few deliveries yet absorb one-off stalls.
  rtt_ = std::make_unique<LinkRttTracker>(config_.num_machines, 0.25);
  fabric_->SetRttTracker(rtt_.get());
  // Machines hosted by this process: all of them when simulated, exactly
  // the transport's rank when distributed.
  std::vector<int> local_machines;
  if (distributed()) {
    local_machines.push_back(transport_->rank());
  } else {
    for (int m = 0; m < config_.num_machines; ++m) {
      local_machines.push_back(m);
    }
  }
  workers_.clear();
  for (int m : local_machines) {
    auto w = std::make_unique<Worker>();
    w->id = m;
    w->data = std::make_unique<DataService>(
        table_.get(), m, config_.vertex_cache_capacity, &counters_,
        config_.cache_policy);
    w->broker = std::make_unique<PullBroker>(
        w->data.get(), m, config_.max_pull_batch, &counters_);
    w->small_spill = std::make_unique<SpillManager>(
        spill_dir_, "w" + std::to_string(m) + "_small", &counters_);
    w->big_spill = std::make_unique<SpillManager>(
        spill_dir_, "w" + std::to_string(m) + "_big", &counters_);
    w->global_queue = std::make_unique<GlobalQueue>(
        config_.global_queue_capacity, config_.batch_size,
        w->big_spill.get(), app_, &counters_);
    Scheduler::Deps deps;
    deps.machine = m;
    deps.config = &config_;
    deps.app = app_;
    deps.table = table_.get();
    deps.data = w->data.get();
    deps.broker = w->broker.get();
    deps.global_queue = w->global_queue.get();
    deps.small_spill = w->small_spill.get();
    deps.counters = &counters_;
    deps.pending = &pending_;
    deps.active_spawners = &active_spawners_;
    deps.root_progress = root_progress_.get();
    deps.completed_roots =
        root_progress_ != nullptr ? &completed_roots_ : nullptr;
    w->sched = std::make_unique<Scheduler>(deps);
    workers_.push_back(std::move(w));
  }
  fabric_->SetBusyProbe([this](int machine) {
    for (const auto& w : workers_) {
      if (w->id == machine) {
        return w->busy_compers.load(std::memory_order_relaxed);
      }
    }
    return 0;
  });

  if (distributed()) {
    transport_->SetDataHandler(
        [this](int src, uint8_t type, std::string payload,
               uint64_t wire_transit_usec) {
          OnWireData(src, type, std::move(payload), wire_transit_usec);
        });
    processed_from_ =
        std::vector<std::atomic<uint64_t>>(config_.num_machines);
    retained_steals_.resize(config_.num_machines);
    Transport::ControlHooks hooks;
    hooks.on_terminate = [this] { done_.store(true); };
    hooks.on_steal_command = [this](int receiver, uint64_t want) {
      OnStealCommand(receiver, want);
    };
    hooks.on_peer_down = [this](int peer) { OnPeerDown(peer); };
    hooks.on_peer_up = [this](int peer) { OnPeerUp(peer); };
    transport_->SetControlHooks(std::move(hooks));
    transport_->ConfigureCoalescing(
        {config_.net_coalesce_bytes, config_.net_linger_usec});
    QCM_RETURN_IF_ERROR(transport_->Start());
  }

  std::vector<std::unique_ptr<Comper>> compers;
  for (const auto& w : workers_) {
    for (int t = 0; t < config_.threads_per_machine; ++t) {
      compers.push_back(std::make_unique<Comper>(this, w.get(), w->id, t));
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(compers.size() + 1);
  for (auto& comper : compers) {
    threads.emplace_back([&comper] { comper->Run(); });
  }
  // Simulated mode runs the in-process steal master (when it could ever
  // move work); distributed mode instead reports status upward and lets
  // the coordinator master steals and termination.
  std::thread control_thread;
  if (distributed()) {
    control_thread = std::thread([this] { StatusLoop(); });
  } else if (config_.enable_stealing && workers_.size() >= 2) {
    control_thread = std::thread([this] { StealLoop(); });
  }
  // Distributed mode samples from StatusLoop; simulated mode needs its
  // own cadence thread, and only when the samples have somewhere to go
  // (the trace).
  std::thread stats_thread;
  if (!distributed() && trace::Enabled() && config_.stats_interval_ms > 0) {
    stats_thread = std::thread([this] { StatsSamplerLoop(); });
  }
  for (std::thread& t : threads) t.join();
  if (control_thread.joinable()) control_thread.join();
  if (stats_thread.joinable()) stats_thread.join();

  if (distributed() && !transport_->healthy()) {
    return Status::Aborted(
        "transport failed before global termination; partial mining state "
        "discarded");
  }
  QCM_CHECK(pending_.load() == 0) << "engine finished with pending tasks";
  // Every meaningful message holds a pending task (parked or stolen), so
  // a clean shutdown leaves the fabric empty; drain defensively and fail
  // loudly if the invariant broke rather than silently losing work.
  for (const auto& worker : workers_) {
    auto leftover = fabric_->Drain(worker->id);
    QCM_CHECK(leftover.empty())
        << "engine finished with " << leftover.size()
        << " undelivered fabric message(s) for machine " << worker->id
        << " (first type: "
        << MessageTypeName(leftover.front().type) << ")";
  }

  // Final checkpoint flush, then freeze the log's totals into the
  // counters before the snapshot below captures them.
  if (ckpt_log_ != nullptr) {
    ckpt_log_->Flush();
    counters_.checkpoint_flushes.store(ckpt_log_->flushes(),
                                       std::memory_order_relaxed);
    counters_.checkpoint_bytes.store(ckpt_log_->bytes_appended(),
                                     std::memory_order_relaxed);
    WriteCheckpointManifest();
  }

  // Aggregate the report.
  EngineReport report;
  report.wall_seconds = wall.Seconds();
  report.counters = EngineCountersSnapshot::From(counters_);
  if (distributed()) {
    // Shutdown's forced flush has not run yet, but the engine only gets
    // here after termination drained every frame, so the buffers are
    // already empty and the stats are final.
    report.counters.AddFlushStats(transport_->FlushStats());
  }
  if (table_ != nullptr && table_->paged_store() != nullptr) {
    report.counters.AddPagedStoreStats(table_->paged_store()->stats());
  }
  report.peak_rss_bytes = PeakRssBytes();

  std::unordered_map<VertexId, RootTaskAgg> root_aggs;
  for (auto& comper : compers) {
    ThreadMetrics& tm = comper->metrics_;
    report.mining.Add(tm.mining_stats);
    report.threads.push_back(ThreadSummary{
        .machine = tm.machine,
        .thread = tm.thread,
        .busy_seconds = tm.busy_seconds,
        .idle_seconds = tm.idle_seconds,
        .mining_seconds = tm.mining_seconds,
        .materialize_seconds = tm.materialize_seconds,
        .tasks_processed = tm.tasks_processed,
    });
    report.total_busy_seconds += tm.busy_seconds;
    report.total_idle_seconds += tm.idle_seconds;
    report.total_mining_seconds += tm.mining_seconds;
    report.total_materialize_seconds += tm.materialize_seconds;
    report.total_build_seconds += tm.build_seconds;
    for (auto& set : comper->sink_.results()) {
      report.results.push_back(std::move(set));
    }
    for (const auto& [root, agg] : tm.root_agg) {
      RootTaskAgg& merged = root_aggs[root];
      merged.root = root;
      merged.mining_seconds += agg.mining_seconds;
      merged.tasks += agg.tasks;
      if (agg.subgraph_vertices != 0) {
        merged.subgraph_vertices = agg.subgraph_vertices;
        merged.subgraph_edges = agg.subgraph_edges;
      }
    }
  }
  report.root_tasks.reserve(root_aggs.size());
  for (auto& [root, agg] : root_aggs) {
    report.root_tasks.push_back(agg);
  }
  // Results replayed from a crashed predecessor's checkpoint join the
  // freshly mined ones; overlap between the two (roots the predecessor
  // finished partially) is exact duplicates the downstream FilterMaximal
  // dedup removes, which is what keeps the final digest crash-invariant.
  for (VertexSet& s : recovered_results_) {
    report.results.push_back(std::move(s));
  }
  recovered_results_.clear();

  // All spill files should have been consumed; clean up defensively.
  for (auto& worker : workers_) {
    worker->small_spill->RemoveAll();
    worker->big_spill->RemoveAll();
  }
  return report;
}

}  // namespace qcm
