#include "gthinker/engine.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

#include "util/logging.h"
#include "util/mem.h"
#include "util/timer.h"

namespace qcm {

// ---------------------------------------------------------------------------
// Worker: one simulated machine.
// ---------------------------------------------------------------------------

struct Engine::Worker {
  int id = 0;
  std::unique_ptr<DataService> data;
  std::unique_ptr<PullBroker> broker;         // batched vertex pulls
  std::unique_ptr<SpillManager> small_spill;  // L_small
  std::unique_ptr<SpillManager> big_spill;    // L_big
  std::unique_ptr<GlobalQueue> global_queue;  // Q_global
  std::atomic<size_t> spawn_cursor{0};
  /// Compers of this machine currently inside App::Compute; sampled by
  /// the CommFabric at enqueue time for the overlap-ratio metric.
  std::atomic<int> busy_compers{0};

  /// Pending big tasks = Q_global + L_big (the quantity the steal master
  /// balances across machines).
  uint64_t PendingBig() const {
    return global_queue->ApproxSize() + big_spill->PendingTasks();
  }
};

// ---------------------------------------------------------------------------
// Comper: one mining thread; owns its local queue and implements the
// ComputeContext the application UDFs run against.
// ---------------------------------------------------------------------------

class Engine::Comper : public ComputeContext {
 public:
  Comper(Engine* engine, Worker* worker, int machine, int thread)
      : engine_(engine), worker_(worker) {
    metrics_.machine = machine;
    metrics_.thread = thread;
    // Pre-size the materialization scratch so the first task already runs
    // allocation-free over the full vertex-id space.
    ego_scratch_.Reset(engine_->table_->NumVertices());
  }

  void Run() {
    while (!engine_->done_.load()) {
      ServiceComm();
      TaskPtr task = PopBig();
      if (task == nullptr) task = PopLocal();
      if (task != nullptr) {
        WallTimer busy;
        active_task_ = task.get();
        worker_->busy_compers.fetch_add(1, std::memory_order_relaxed);
        ComputeStatus status = engine_->app_->Compute(*task, *this);
        worker_->busy_compers.fetch_sub(1, std::memory_order_relaxed);
        active_task_ = nullptr;
        metrics_.busy_seconds += busy.Seconds();
        ++metrics_.tasks_processed;
        if (status == ComputeStatus::kRequeue) {
          Enqueue(std::move(task));  // still counted in pending_
        } else if (status == ComputeStatus::kSuspended &&
                   task->pulls().HasWanted()) {
          // The task's pull is outstanding: yield the comper (Alg. 3's
          // "add t back to the queue"). The task stays counted in
          // pending_ while it is parked, so termination cannot race past
          // it; a broker flush re-enqueues it.
          engine_->counters_.task_suspensions.fetch_add(
              1, std::memory_order_relaxed);
          worker_->broker->Park(std::move(task));
        } else if (status == ComputeStatus::kSuspended) {
          // Nothing actually outstanding: degenerate to a requeue.
          Enqueue(std::move(task));
        } else {
          engine_->counters_.tasks_completed.fetch_add(
              1, std::memory_order_relaxed);
          engine_->pending_.fetch_sub(1);
        }
        continue;
      }
      // No work found anywhere: maybe everything is finished; otherwise
      // nap briefly (other threads hold decomposable or suspended tasks).
      WallTimer idle;
      engine_->MaybeFinish();
      if (!engine_->done_.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      metrics_.idle_seconds += idle.Seconds();
    }
  }

  // ---- ComputeContext ----

  AdjRef Fetch(VertexId v) override {
    if (active_task_ != nullptr && !worker_->data->IsLocal(v)) {
      if (const auto* pin = active_task_->pulls().Find(v)) {
        engine_->counters_.pin_hits.fetch_add(1, std::memory_order_relaxed);
        return AdjRef{
            std::span<const VertexId>((*pin)->data(), (*pin)->size()), *pin};
      }
    }
    return worker_->data->Fetch(v);
  }

  bool Request(VertexId v) override {
    QCM_CHECK(active_task_ != nullptr)
        << "Request() outside a compute round";
    if (worker_->data->IsLocal(v)) return true;
    TaskPullState& pulls = active_task_->pulls();
    if (pulls.Find(v) != nullptr) {
      engine_->counters_.pin_hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (auto cached = worker_->data->TryCached(v)) {
      // Pin the cache copy so a later Fetch cannot lose it to eviction.
      pulls.Pin(v, std::move(cached));
      return true;
    }
    pulls.Want(v);
    return false;
  }

  uint32_t Degree(VertexId v) override { return worker_->data->Degree(v); }

  void AddTask(TaskPtr task) override {
    engine_->pending_.fetch_add(1);
    Enqueue(std::move(task));
  }

  ResultSink& sink() override { return sink_; }
  ThreadMetrics& metrics() override { return metrics_; }
  EgoScratch& ego_scratch() override { return ego_scratch_; }
  const EngineConfig& config() const override { return engine_->config_; }

  ThreadMetrics metrics_;
  VectorSink sink_;

 private:
  /// Routes a task that is already counted in pending_ (big tasks to the
  /// machine's global queue, small ones to this thread's local queue).
  void Enqueue(TaskPtr task) {
    if (task->SizeHint() > engine_->config_.tau_split) {
      engine_->counters_.big_tasks.fetch_add(1, std::memory_order_relaxed);
      worker_->global_queue->Push(std::move(task));
    } else {
      engine_->counters_.small_tasks.fetch_add(1, std::memory_order_relaxed);
      PushLocal(std::move(task));
    }
  }

  /// One fabric service tick for this machine: deliver every due message
  /// (serve peer pull requests, accept pull responses, inject stolen big
  /// tasks), then pump the broker's outstanding vertex requests onto the
  /// fabric. Tasks resumed here never left pending_, so routing does not
  /// re-count them.
  void ServiceComm() {
    CommFabric* fabric = engine_->fabric_.get();
    for (Message& m : fabric->Service(worker_->id)) {
      switch (m.type) {
        case MessageType::kPullRequest:
          // We own the requested vertices; serve from the local table and
          // send the adjacency batch back through the modeled network.
          fabric->Send(MessageType::kPullResponse, worker_->id, m.src,
                       worker_->broker->ServeRequest(m.payload));
          break;
        case MessageType::kPullResponse:
          for (TaskPtr& task : worker_->broker->AcceptResponse(m.payload)) {
            Enqueue(std::move(task));
          }
          break;
        case MessageType::kStealBatch: {
          // Stolen big tasks arrive as prefetched work for this machine's
          // global queue; they stayed counted in pending_ during flight.
          Decoder dec(m.payload);
          uint32_t count = 0;
          Status s = dec.GetU32(&count);
          QCM_CHECK(s.ok()) << "corrupt steal batch: " << s.ToString();
          std::vector<TaskPtr> tasks;
          tasks.reserve(count);
          for (uint32_t i = 0; i < count; ++i) {
            auto task = engine_->app_->DecodeTask(&dec);
            QCM_CHECK(task.ok()) << "steal transfer decode failed: "
                                 << task.status().ToString();
            tasks.push_back(std::move(task).value());
          }
          worker_->global_queue->PushStolenFront(std::move(tasks));
          break;
        }
      }
    }
    for (TaskPtr& task : worker_->broker->PumpRequests(fabric)) {
      Enqueue(std::move(task));
    }
  }

  void PushLocal(TaskPtr task) {
    local_.push_back(std::move(task));
    if (local_.size() > engine_->config_.local_queue_capacity) {
      // Spill a batch of C tasks from the tail of the queue.
      std::vector<std::string> blobs;
      blobs.reserve(engine_->config_.batch_size);
      while (blobs.size() < engine_->config_.batch_size &&
             local_.size() > 1) {
        Encoder enc;
        local_.back()->Encode(&enc);
        blobs.push_back(enc.Release());
        local_.pop_back();
      }
      Status s = worker_->small_spill->SpillBatch(blobs);
      QCM_CHECK(s.ok()) << "local queue spill failed: " << s.ToString();
    }
  }

  TaskPtr PopBig() { return worker_->global_queue->TryPop(); }

  TaskPtr PopLocal() {
    if (local_.size() < engine_->config_.batch_size) RefillLocal();
    if (local_.empty()) return nullptr;
    TaskPtr t = std::move(local_.front());
    local_.pop_front();
    return t;
  }

  /// Refill priority (paper §5 "third change"): L_small first, then spawn
  /// a batch of fresh tasks, stopping as soon as a spawned task is big.
  void RefillLocal() {
    auto blobs = worker_->small_spill->PopBatch();
    QCM_CHECK(blobs.ok()) << "L_small refill failed: "
                          << blobs.status().ToString();
    if (!blobs->empty()) {
      for (const std::string& blob : blobs.value()) {
        Decoder dec(blob);
        auto task = engine_->app_->DecodeTask(&dec);
        QCM_CHECK(task.ok()) << "task decode from L_small failed: "
                             << task.status().ToString();
        local_.push_back(std::move(task).value());
      }
      return;
    }
    // Spawn from the machine's unspawned vertices.
    const std::vector<VertexId>& owned =
        engine_->table_->OwnedVertices(worker_->id);
    engine_->active_spawners_.fetch_add(1);
    size_t spawned_small = 0;
    while (spawned_small < engine_->config_.batch_size) {
      const size_t idx = worker_->spawn_cursor.fetch_add(1);
      if (idx >= owned.size()) break;
      TaskPtr task = engine_->app_->Spawn(owned[idx], *this);
      if (task == nullptr) continue;
      ++metrics_.tasks_spawned;
      engine_->pending_.fetch_add(1);
      if (task->SizeHint() > engine_->config_.tau_split) {
        engine_->counters_.big_tasks.fetch_add(1, std::memory_order_relaxed);
        worker_->global_queue->Push(std::move(task));
        break;  // avoid generating many big tasks out of one refill
      }
      engine_->counters_.small_tasks.fetch_add(1, std::memory_order_relaxed);
      local_.push_back(std::move(task));
      ++spawned_small;
    }
    engine_->active_spawners_.fetch_sub(1);
  }

  Engine* engine_;
  Worker* worker_;
  Task* active_task_ = nullptr;  // task currently in Compute (pull target)
  std::deque<TaskPtr> local_;
  EgoScratch ego_scratch_;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(const Graph* graph, EngineConfig config, App* app)
    : graph_(graph), config_(std::move(config)), app_(app) {}

Engine::Engine(std::unique_ptr<VertexTable> table, EngineConfig config,
               App* app, Transport* transport)
    : graph_(nullptr),
      config_(std::move(config)),
      app_(app),
      transport_(transport),
      table_(std::move(table)) {}

Engine::~Engine() {
  if (owns_spill_dir_ && !spill_dir_.empty()) {
    ::rmdir(spill_dir_.c_str());
  }
}

bool Engine::SpawnExhausted() const {
  for (const auto& worker : workers_) {
    if (worker->spawn_cursor.load() <
        table_->OwnedVertices(worker->id).size()) {
      return false;
    }
  }
  return true;
}

void Engine::MaybeFinish() {
  // Distributed mode: local quiescence proves nothing -- a peer may still
  // route work here. The coordinator's distributed detection (fed by
  // StatusLoop) is the only authority that may set done_.
  if (distributed()) return;
  // Order matters: a spawner increments active_spawners_ before claiming a
  // cursor slot, so reading spawners==0 after cursors-exhausted guarantees
  // no task materializes after our pending_ read.
  if (!SpawnExhausted()) return;
  if (active_spawners_.load() != 0) return;
  if (pending_.load() != 0) return;
  done_.store(true);
}

void Engine::StatusLoop() {
  // Publish this rank's termination inputs until the coordinator declares
  // global quiescence. Read order mirrors MaybeFinish: spawn state first,
  // then processed frames, then pending, then sent -- combined with the
  // wire-boundary pending accounting this keeps in-flight work visible in
  // every snapshot the coordinator can assemble.
  for (;;) {
    RankStatus status;
    status.spawn_done = SpawnExhausted() && active_spawners_.load() == 0;
    status.data_frames_processed =
        frames_processed_.load(std::memory_order_acquire);
    status.pending = pending_.load();
    status.data_frames_sent = transport_->DataFramesSent();
    status.pending_big = workers_[0]->PendingBig();
    transport_->PublishStatus(status);
    if (done_.load()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

void Engine::OnWireData(int src, uint8_t type, std::string payload) {
  QCM_CHECK(type <= static_cast<uint8_t>(MessageType::kStealBatch))
      << "unknown fabric message type " << static_cast<int>(type)
      << " from rank " << src;
  const MessageType mtype = static_cast<MessageType>(type);
  if (mtype == MessageType::kStealBatch) {
    // The batch's tasks enter this process's pending accounting before
    // the frame counts as processed (transport.h's counting discipline).
    auto count = StealBatchTaskCount(payload);
    QCM_CHECK(count.ok()) << "corrupt steal batch from rank " << src << ": "
                          << count.status().ToString();
    pending_.fetch_add(count.value());
  }
  frames_processed_.fetch_add(1, std::memory_order_acq_rel);
  fabric_->Inject(mtype, src, std::move(payload));
}

void Engine::OnStealCommand(int receiver, uint64_t want) {
  QCM_CHECK(receiver >= 0 && receiver < config_.num_machines &&
            receiver != first_machine())
      << "steal command with bad receiver " << receiver;
  if (want == 0 || done_.load()) return;
  std::vector<TaskPtr> tasks = workers_[0]->global_queue->StealBatch(want);
  if (tasks.empty()) return;  // the coordinator's estimate was stale
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(tasks.size()));
  for (const TaskPtr& t : tasks) t->Encode(&enc);
  const uint64_t bytes = enc.size();
  // Send first (the frame is counted as sent before the wire write), only
  // then drop the tasks from this process's pending accounting: the
  // coordinator always sees the batch as either local work or an
  // unprocessed frame, never as nothing.
  fabric_->Send(MessageType::kStealBatch, first_machine(), receiver,
                enc.Release());
  pending_.fetch_sub(static_cast<int64_t>(tasks.size()));
  counters_.steal_events.fetch_add(1, std::memory_order_relaxed);
  counters_.stolen_tasks.fetch_add(tasks.size(), std::memory_order_relaxed);
  counters_.steal_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void Engine::StealLoop() {
  // Nothing will ever be stolen: exit instead of waking every period
  // forever (Engine::Run does not even spawn the thread in this case,
  // but keep the guard for direct callers).
  if (!config_.enable_stealing || workers_.size() < 2) return;

  WallTimer lifetime;
  double active_seconds = 0.0;
  while (!done_.load()) {
    // Sleep one balancing period in small slices so termination is not
    // delayed by a long period.
    WallTimer napped;
    while (!done_.load() && napped.Seconds() < config_.steal_period_sec) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min<int64_t>(1000, static_cast<int64_t>(
                                      config_.steal_period_sec * 1e6) + 1)));
    }
    if (done_.load()) break;

    // Periodic balancing plan (paper: master collects per-machine pending
    // big-task counts, computes the average, and moves at most one batch
    // per machine per period toward the average).
    WallTimer active;
    const size_t n = workers_.size();
    std::vector<uint64_t> counts(n);
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      counts[i] = workers_[i]->PendingBig();
      total += counts[i];
    }
    const uint64_t avg = total / n;
    for (size_t donor = 0; donor < n; ++donor) {
      if (counts[donor] <= avg + 1) continue;
      // Most starved receiver.
      size_t receiver = donor;
      for (size_t r = 0; r < n; ++r) {
        if (counts[r] < counts[receiver]) receiver = r;
      }
      if (receiver == donor || counts[receiver] >= avg) continue;
      const uint64_t want =
          std::min<uint64_t>({counts[donor] - avg, avg - counts[receiver],
                              config_.batch_size});
      if (want == 0) continue;
      std::vector<TaskPtr> tasks =
          workers_[donor]->global_queue->StealBatch(want);
      if (tasks.empty()) continue;

      // Serialize the batch into one kStealBatch message; the fabric
      // delivers it into the receiver's global queue on a later service
      // tick, so the transfer overlaps with mining on both ends instead
      // of blocking this thread. The tasks remain counted in pending_
      // throughout the flight, so termination cannot race past them.
      Encoder enc;
      enc.PutU32(static_cast<uint32_t>(tasks.size()));
      for (const TaskPtr& t : tasks) t->Encode(&enc);
      const uint64_t bytes = enc.size();
      fabric_->Send(MessageType::kStealBatch, static_cast<int>(donor),
                    static_cast<int>(receiver), enc.Release());
      counters_.steal_events.fetch_add(1, std::memory_order_relaxed);
      counters_.stolen_tasks.fetch_add(tasks.size(),
                                       std::memory_order_relaxed);
      counters_.steal_bytes.fetch_add(bytes, std::memory_order_relaxed);
      counts[donor] -= tasks.size();
      counts[receiver] += tasks.size();
    }
    active_seconds += active.Seconds();
  }
  counters_.steal_active_usec.fetch_add(
      static_cast<uint64_t>(active_seconds * 1e6),
      std::memory_order_relaxed);
  counters_.steal_idle_usec.fetch_add(
      static_cast<uint64_t>(
          std::max(0.0, lifetime.Seconds() - active_seconds) * 1e6),
      std::memory_order_relaxed);
}

StatusOr<EngineReport> Engine::Run() {
  if (ran_) {
    return Status::InvalidArgument("Engine::Run may only be called once");
  }
  ran_ = true;
  QCM_RETURN_IF_ERROR(config_.Validate());
  if (distributed()) {
    if (config_.num_machines != transport_->world_size()) {
      return Status::InvalidArgument(
          "num_machines (" + std::to_string(config_.num_machines) +
          ") must equal the transport world size (" +
          std::to_string(transport_->world_size()) + ")");
    }
    QCM_CHECK(table_ != nullptr && table_->partitioned() &&
              table_->local_rank() == transport_->rank() &&
              table_->NumMachines() == config_.num_machines)
        << "distributed engine needs a matching partitioned vertex table";
  }

  // Spill directory.
  if (config_.spill_dir.empty()) {
    char templ[] = "/tmp/qcm_spill_XXXXXX";
    char* dir = ::mkdtemp(templ);
    if (dir == nullptr) {
      return Status::IOError("cannot create spill directory");
    }
    spill_dir_ = dir;
    owns_spill_dir_ = true;
  } else {
    spill_dir_ = config_.spill_dir;
    ::mkdir(spill_dir_.c_str(), 0755);
  }

  WallTimer wall;
  if (!distributed()) {
    table_ = std::make_unique<VertexTable>(graph_, config_.num_machines);
  }
  fabric_ = std::make_unique<CommFabric>(
      config_.num_machines, config_.net_latency_ticks,
      config_.net_latency_sec, &counters_, transport_);
  // Machines hosted by this process: all of them when simulated, exactly
  // the transport's rank when distributed.
  std::vector<int> local_machines;
  if (distributed()) {
    local_machines.push_back(transport_->rank());
  } else {
    for (int m = 0; m < config_.num_machines; ++m) {
      local_machines.push_back(m);
    }
  }
  workers_.clear();
  for (int m : local_machines) {
    auto w = std::make_unique<Worker>();
    w->id = m;
    w->data = std::make_unique<DataService>(
        table_.get(), m, config_.vertex_cache_capacity, &counters_,
        config_.cache_policy);
    w->broker = std::make_unique<PullBroker>(
        w->data.get(), m, config_.max_pull_batch, &counters_);
    w->small_spill = std::make_unique<SpillManager>(
        spill_dir_, "w" + std::to_string(m) + "_small", &counters_);
    w->big_spill = std::make_unique<SpillManager>(
        spill_dir_, "w" + std::to_string(m) + "_big", &counters_);
    w->global_queue = std::make_unique<GlobalQueue>(
        config_.global_queue_capacity, config_.batch_size,
        w->big_spill.get(), app_, &counters_);
    workers_.push_back(std::move(w));
  }
  fabric_->SetBusyProbe([this](int machine) {
    for (const auto& w : workers_) {
      if (w->id == machine) {
        return w->busy_compers.load(std::memory_order_relaxed);
      }
    }
    return 0;
  });

  if (distributed()) {
    transport_->SetDataHandler(
        [this](int src, uint8_t type, std::string payload) {
          OnWireData(src, type, std::move(payload));
        });
    Transport::ControlHooks hooks;
    hooks.on_terminate = [this] { done_.store(true); };
    hooks.on_steal_command = [this](int receiver, uint64_t want) {
      OnStealCommand(receiver, want);
    };
    transport_->SetControlHooks(std::move(hooks));
    QCM_RETURN_IF_ERROR(transport_->Start());
  }

  std::vector<std::unique_ptr<Comper>> compers;
  for (const auto& w : workers_) {
    for (int t = 0; t < config_.threads_per_machine; ++t) {
      compers.push_back(std::make_unique<Comper>(this, w.get(), w->id, t));
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(compers.size() + 1);
  for (auto& comper : compers) {
    threads.emplace_back([&comper] { comper->Run(); });
  }
  // Simulated mode runs the in-process steal master (when it could ever
  // move work); distributed mode instead reports status upward and lets
  // the coordinator master steals and termination.
  std::thread control_thread;
  if (distributed()) {
    control_thread = std::thread([this] { StatusLoop(); });
  } else if (config_.enable_stealing && workers_.size() >= 2) {
    control_thread = std::thread([this] { StealLoop(); });
  }
  for (std::thread& t : threads) t.join();
  if (control_thread.joinable()) control_thread.join();

  if (distributed() && !transport_->healthy()) {
    return Status::Aborted(
        "transport failed before global termination; partial mining state "
        "discarded");
  }
  QCM_CHECK(pending_.load() == 0) << "engine finished with pending tasks";
  // Every meaningful message holds a pending task (parked or stolen), so
  // a clean shutdown leaves the fabric empty; drain defensively and fail
  // loudly if the invariant broke rather than silently losing work.
  for (const auto& worker : workers_) {
    auto leftover = fabric_->Drain(worker->id);
    QCM_CHECK(leftover.empty())
        << "engine finished with " << leftover.size()
        << " undelivered fabric message(s) for machine " << worker->id
        << " (first type: "
        << MessageTypeName(leftover.front().type) << ")";
  }

  // Aggregate the report.
  EngineReport report;
  report.wall_seconds = wall.Seconds();
  report.counters = EngineCountersSnapshot::From(counters_);
  report.peak_rss_bytes = PeakRssBytes();

  std::unordered_map<VertexId, RootTaskAgg> root_aggs;
  for (auto& comper : compers) {
    ThreadMetrics& tm = comper->metrics_;
    report.mining.Add(tm.mining_stats);
    report.threads.push_back(ThreadSummary{
        .machine = tm.machine,
        .thread = tm.thread,
        .busy_seconds = tm.busy_seconds,
        .idle_seconds = tm.idle_seconds,
        .mining_seconds = tm.mining_seconds,
        .materialize_seconds = tm.materialize_seconds,
        .tasks_processed = tm.tasks_processed,
    });
    report.total_busy_seconds += tm.busy_seconds;
    report.total_idle_seconds += tm.idle_seconds;
    report.total_mining_seconds += tm.mining_seconds;
    report.total_materialize_seconds += tm.materialize_seconds;
    report.total_build_seconds += tm.build_seconds;
    for (auto& set : comper->sink_.results()) {
      report.results.push_back(std::move(set));
    }
    for (const auto& [root, agg] : tm.root_agg) {
      RootTaskAgg& merged = root_aggs[root];
      merged.root = root;
      merged.mining_seconds += agg.mining_seconds;
      merged.tasks += agg.tasks;
      if (agg.subgraph_vertices != 0) {
        merged.subgraph_vertices = agg.subgraph_vertices;
        merged.subgraph_edges = agg.subgraph_edges;
      }
    }
  }
  report.root_tasks.reserve(root_aggs.size());
  for (auto& [root, agg] : root_aggs) {
    report.root_tasks.push_back(agg);
  }

  // All spill files should have been consumed; clean up defensively.
  for (auto& worker : workers_) {
    worker->small_spill->RemoveAll();
    worker->big_spill->RemoveAll();
  }
  return report;
}

}  // namespace qcm
