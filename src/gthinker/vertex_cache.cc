#include "gthinker/vertex_cache.h"

#include <algorithm>

namespace qcm {

void VertexCache::FreqSketch::Init(size_t capacity_entries) {
  // 4 counters per cached entry keeps collision noise low; the halving
  // budget of 8x capacity matches the classic TinyLFU "sample = 8C".
  size_t size = 64;
  while (size < capacity_entries * 4) size <<= 1;
  counts.assign(size, 0);
  mask = size - 1;
  samples = 0;
  sample_cap = static_cast<uint64_t>(capacity_entries) * 8;
}

namespace {

/// Row hash: splitmix64 finalizer seeded per row. Distinct odd constants
/// give four effectively independent index streams.
inline uint64_t SketchHash(uint64_t key, uint64_t seed) {
  uint64_t x = key + seed;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr uint64_t kSketchSeeds[4] = {0x9e3779b97f4a7c15ULL,
                                      0xc2b2ae3d27d4eb4fULL,
                                      0x165667b19e3779f9ULL,
                                      0x27d4eb2f165667c5ULL};

}  // namespace

void VertexCache::FreqSketch::Touch(VertexId v) {
  for (uint64_t seed : kSketchSeeds) {
    uint8_t& c = counts[SketchHash(v, seed) & mask];
    if (c < 0xFF) ++c;
  }
  if (++samples >= sample_cap) {
    // Age: halve everything so yesterday's hot set cannot veto admission
    // forever.
    for (uint8_t& c : counts) c >>= 1;
    samples >>= 1;
  }
}

uint32_t VertexCache::FreqSketch::Estimate(VertexId v) const {
  uint32_t est = 0xFF;
  for (uint64_t seed : kSketchSeeds) {
    est = std::min<uint32_t>(est, counts[SketchHash(v, seed) & mask]);
  }
  return est;
}

VertexCache::VertexCache(size_t capacity_entries, EngineCounters* counters,
                         CachePolicy policy)
    : capacity_(capacity_entries), counters_(counters), policy_(policy) {
  const size_t num_shards =
      capacity_ >= kShardThreshold ? kMaxShards : 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  capacity_per_shard_ = std::max<size_t>(capacity_ / num_shards, 1);
  if (enabled() && policy_ == CachePolicy::kTinyLFU) {
    for (auto& shard : shards_) shard->sketch.Init(capacity_per_shard_);
  }
}

VertexCache::AdjPtr VertexCache::Lookup(VertexId v, bool count_stats) {
  if (enabled()) {
    Shard& shard = ShardFor(v);
    std::lock_guard<std::mutex> lock(shard.mu);
    // TinyLFU learns from every counted demand, hit or miss (internal
    // re-probes with count_stats=false must not inflate frequency either).
    if (policy_ == CachePolicy::kTinyLFU && count_stats) {
      shard.sketch.Touch(v);
    }
    if (policy_ != CachePolicy::kClock) {
      auto it = shard.map.find(v);
      if (it != shard.map.end()) {
        // Refresh: move to the most-recently-used position.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        if (count_stats && counters_ != nullptr) {
          counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
        return it->second->second;
      }
    } else {
      auto it = shard.slot.find(v);
      if (it != shard.slot.end()) {
        ClockEntry& entry = shard.ring[it->second];
        entry.referenced = true;  // second chance
        if (count_stats && counters_ != nullptr) {
          counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
        return entry.adj;
      }
    }
  }
  if (count_stats && counters_ != nullptr) {
    counters_->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

void VertexCache::InsertLru(Shard& shard, VertexId v, AdjPtr adj) {
  auto it = shard.map.find(v);
  if (it != shard.map.end()) {
    it->second->second = std::move(adj);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(v, std::move(adj));
  shard.map.emplace(v, shard.lru.begin());
  while (shard.lru.size() > capacity_per_shard_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    if (counters_ != nullptr) {
      counters_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void VertexCache::InsertClock(Shard& shard, VertexId v, AdjPtr adj) {
  auto it = shard.slot.find(v);
  if (it != shard.slot.end()) {
    ClockEntry& entry = shard.ring[it->second];
    entry.adj = std::move(adj);
    entry.referenced = true;
    return;
  }
  if (shard.ring.size() < capacity_per_shard_) {
    shard.slot.emplace(v, shard.ring.size());
    shard.ring.push_back(ClockEntry{v, std::move(adj), false});
    return;
  }
  // Advance the hand, clearing reference bits, until an unreferenced
  // victim is found (bounded: after one full revolution every bit is
  // clear). The fresh entry starts unreferenced, so a pure scan evicts
  // it before anything a hit has protected.
  while (shard.ring[shard.hand].referenced) {
    shard.ring[shard.hand].referenced = false;
    shard.hand = (shard.hand + 1) % shard.ring.size();
  }
  ClockEntry& victim = shard.ring[shard.hand];
  shard.slot.erase(victim.v);
  if (counters_ != nullptr) {
    counters_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
  }
  victim.v = v;
  victim.adj = std::move(adj);
  victim.referenced = false;
  shard.slot.emplace(v, shard.hand);
  shard.hand = (shard.hand + 1) % shard.ring.size();
}

void VertexCache::InsertTinyLfu(Shard& shard, VertexId v, AdjPtr adj) {
  auto it = shard.map.find(v);
  if (it != shard.map.end()) {
    it->second->second = std::move(adj);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // The arriving entry is itself a demand the sketch should know about
  // (inserts come from pull responses, i.e. real remote reads).
  shard.sketch.Touch(v);
  if (shard.lru.size() >= capacity_per_shard_ && !shard.lru.empty()) {
    // Admission duel: the newcomer must be at least as frequent as the
    // LRU victim, otherwise the victim stays and the newcomer is dropped
    // (a one-shot scan loses every duel against a warm working set).
    const VertexId victim = shard.lru.back().first;
    if (shard.sketch.Estimate(v) < shard.sketch.Estimate(victim)) {
      if (counters_ != nullptr) {
        counters_->cache_admit_rejects.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      return;
    }
  }
  shard.lru.emplace_front(v, std::move(adj));
  shard.map.emplace(v, shard.lru.begin());
  while (shard.lru.size() > capacity_per_shard_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    if (counters_ != nullptr) {
      counters_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void VertexCache::Insert(VertexId v, AdjPtr adj) {
  if (!enabled()) return;
  Shard& shard = ShardFor(v);
  std::lock_guard<std::mutex> lock(shard.mu);
  switch (policy_) {
    case CachePolicy::kLRU:
      InsertLru(shard, v, std::move(adj));
      break;
    case CachePolicy::kClock:
      InsertClock(shard, v, std::move(adj));
      break;
    case CachePolicy::kTinyLFU:
      InsertTinyLfu(shard, v, std::move(adj));
      break;
  }
}

size_t VertexCache::ApproxSize() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size() + shard->slot.size();
  }
  return total;
}

}  // namespace qcm
