#include "gthinker/vertex_cache.h"

#include <algorithm>

namespace qcm {

VertexCache::VertexCache(size_t capacity_entries, EngineCounters* counters,
                         CachePolicy policy)
    : capacity_(capacity_entries), counters_(counters), policy_(policy) {
  const size_t num_shards =
      capacity_ >= kShardThreshold ? kMaxShards : 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  capacity_per_shard_ = std::max<size_t>(capacity_ / num_shards, 1);
}

VertexCache::AdjPtr VertexCache::Lookup(VertexId v, bool count_stats) {
  if (enabled()) {
    Shard& shard = ShardFor(v);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (policy_ == CachePolicy::kLRU) {
      auto it = shard.map.find(v);
      if (it != shard.map.end()) {
        // Refresh: move to the most-recently-used position.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        if (count_stats && counters_ != nullptr) {
          counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
        return it->second->second;
      }
    } else {
      auto it = shard.slot.find(v);
      if (it != shard.slot.end()) {
        ClockEntry& entry = shard.ring[it->second];
        entry.referenced = true;  // second chance
        if (count_stats && counters_ != nullptr) {
          counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
        return entry.adj;
      }
    }
  }
  if (count_stats && counters_ != nullptr) {
    counters_->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

void VertexCache::InsertLru(Shard& shard, VertexId v, AdjPtr adj) {
  auto it = shard.map.find(v);
  if (it != shard.map.end()) {
    it->second->second = std::move(adj);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(v, std::move(adj));
  shard.map.emplace(v, shard.lru.begin());
  while (shard.lru.size() > capacity_per_shard_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    if (counters_ != nullptr) {
      counters_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void VertexCache::InsertClock(Shard& shard, VertexId v, AdjPtr adj) {
  auto it = shard.slot.find(v);
  if (it != shard.slot.end()) {
    ClockEntry& entry = shard.ring[it->second];
    entry.adj = std::move(adj);
    entry.referenced = true;
    return;
  }
  if (shard.ring.size() < capacity_per_shard_) {
    shard.slot.emplace(v, shard.ring.size());
    shard.ring.push_back(ClockEntry{v, std::move(adj), false});
    return;
  }
  // Advance the hand, clearing reference bits, until an unreferenced
  // victim is found (bounded: after one full revolution every bit is
  // clear). The fresh entry starts unreferenced, so a pure scan evicts
  // it before anything a hit has protected.
  while (shard.ring[shard.hand].referenced) {
    shard.ring[shard.hand].referenced = false;
    shard.hand = (shard.hand + 1) % shard.ring.size();
  }
  ClockEntry& victim = shard.ring[shard.hand];
  shard.slot.erase(victim.v);
  if (counters_ != nullptr) {
    counters_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
  }
  victim.v = v;
  victim.adj = std::move(adj);
  victim.referenced = false;
  shard.slot.emplace(v, shard.hand);
  shard.hand = (shard.hand + 1) % shard.ring.size();
}

void VertexCache::Insert(VertexId v, AdjPtr adj) {
  if (!enabled()) return;
  Shard& shard = ShardFor(v);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (policy_ == CachePolicy::kLRU) {
    InsertLru(shard, v, std::move(adj));
  } else {
    InsertClock(shard, v, std::move(adj));
  }
}

size_t VertexCache::ApproxSize() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size() + shard->slot.size();
  }
  return total;
}

}  // namespace qcm
