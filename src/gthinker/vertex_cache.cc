#include "gthinker/vertex_cache.h"

#include <algorithm>

namespace qcm {

VertexCache::VertexCache(size_t capacity_entries, EngineCounters* counters)
    : capacity_(capacity_entries), counters_(counters) {
  const size_t num_shards =
      capacity_ >= kShardThreshold ? kMaxShards : 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  capacity_per_shard_ = std::max<size_t>(capacity_ / num_shards, 1);
}

VertexCache::AdjPtr VertexCache::Lookup(VertexId v, bool count_stats) {
  if (enabled()) {
    Shard& shard = ShardFor(v);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(v);
    if (it != shard.map.end()) {
      // Refresh: move to the most-recently-used position.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (count_stats && counters_ != nullptr) {
        counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second->second;
    }
  }
  if (count_stats && counters_ != nullptr) {
    counters_->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

void VertexCache::Insert(VertexId v, AdjPtr adj) {
  if (!enabled()) return;
  Shard& shard = ShardFor(v);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(v);
  if (it != shard.map.end()) {
    it->second->second = std::move(adj);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(v, std::move(adj));
  shard.map.emplace(v, shard.lru.begin());
  while (shard.lru.size() > capacity_per_shard_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    if (counters_ != nullptr) {
      counters_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

size_t VertexCache::ApproxSize() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

}  // namespace qcm
