#include "gthinker/task_queue.h"

#include "sched/lifecycle.h"
#include "util/logging.h"

namespace qcm {

GlobalQueue::GlobalQueue(size_t capacity, size_t batch, SpillManager* spill,
                         const App* app, EngineCounters* counters)
    : capacity_(capacity),
      batch_(batch),
      spill_(spill),
      app_(app),
      counters_(counters) {}

void GlobalQueue::SpillTailLocked() {
  std::vector<std::string> blobs;
  blobs.reserve(batch_);
  while (blobs.size() < batch_ && q_.size() > 1) {
    AdvanceTaskState(*q_.back(), TaskState::kSpilled,
                     counters_ != nullptr ? &counters_->lifecycle : nullptr);
    Encoder enc;
    q_.back()->Encode(&enc);
    blobs.push_back(enc.Release());
    q_.pop_back();
  }
  size_.store(q_.size(), std::memory_order_relaxed);
  Status s = spill_->SpillBatch(blobs);
  if (!s.ok()) {
    // Spill failure is not recoverable mid-run (the tasks are gone from
    // memory otherwise); surface loudly.
    QCM_CHECK(s.ok()) << "global queue spill failed: " << s.ToString();
  }
}

void GlobalQueue::RefillLocked() {
  auto blobs = spill_->PopBatch();
  QCM_CHECK(blobs.ok()) << "L_big refill failed: "
                        << blobs.status().ToString();
  for (const std::string& blob : blobs.value()) {
    Decoder dec(blob);
    auto task = app_->DecodeTask(&dec);
    QCM_CHECK(task.ok()) << "task decode from L_big failed: "
                         << task.status().ToString();
    RehydrateTaskState(*task.value(), TaskState::kSpilled,
                       counters_ != nullptr ? &counters_->lifecycle
                                            : nullptr);
    q_.push_back(std::move(task).value());
  }
  size_.store(q_.size(), std::memory_order_relaxed);
}

void GlobalQueue::Push(TaskPtr task) {
  std::lock_guard<std::mutex> lock(mu_);
  q_.push_back(std::move(task));
  if (q_.size() > capacity_) {
    SpillTailLocked();
  } else {
    size_.store(q_.size(), std::memory_order_relaxed);
  }
}

TaskPtr GlobalQueue::TryPop() {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return nullptr;  // Case (I): fall back to local
  if (q_.size() < batch_) {
    RefillLocked();
  }
  if (q_.empty()) return nullptr;  // Case (II)
  TaskPtr t = std::move(q_.front());
  q_.pop_front();
  size_.store(q_.size(), std::memory_order_relaxed);
  return t;
}

std::vector<TaskPtr> GlobalQueue::StealBatch(size_t max_tasks) {
  std::vector<TaskPtr> out;
  std::lock_guard<std::mutex> lock(mu_);
  while (out.size() < max_tasks && !q_.empty()) {
    out.push_back(std::move(q_.back()));
    q_.pop_back();
  }
  size_.store(q_.size(), std::memory_order_relaxed);
  return out;
}

void GlobalQueue::PushStolenFront(std::vector<TaskPtr> tasks) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
    q_.push_front(std::move(*it));
  }
  size_.store(q_.size(), std::memory_order_relaxed);
}

}  // namespace qcm
