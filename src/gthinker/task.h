// The engine's task and application abstractions -- the G-thinker
// programming model (paper §5): a user writes an application by
// implementing two UDFs, task spawning and task computation, plus a task
// codec so the engine can spill tasks to disk and move ("steal") them
// between machines.

#ifndef QCM_GTHINKER_TASK_H_
#define QCM_GTHINKER_TASK_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "gthinker/engine_config.h"
#include "gthinker/metrics.h"
#include "graph/ego_builder.h"
#include "graph/graph.h"
#include "quick/quasi_clique.h"
#include "sched/lifecycle.h"
#include "util/serde.h"
#include "util/status.h"

namespace qcm {
class MiningScratch;  // quick/mining_context.h
}

namespace qcm {

/// Transient pull bookkeeping attached to every task (paper §5's vertex
/// pulling): the vertex ids whose batched pull is outstanding, and the
/// pinned responses delivered so far. Pins are shared_ptr references into
/// pulled adjacency copies, so a vertex a task requested stays available
/// to it even after the vertex cache evicts the entry. Engine-managed;
/// never serialized -- a task spilled to disk (or stolen to another
/// machine as a kStealBatch message) simply re-pulls (or falls back to a
/// synchronous fetch) after reload. While a pull is outstanding the task
/// stays parked in its machine's PullBroker until the CommFabric delivers
/// the kPullResponse, however long the modeled network latency delays it.
class TaskPullState {
 public:
  using AdjPtr = std::shared_ptr<const std::vector<VertexId>>;

  /// Queues v for the next batched pull round (the caller already checked
  /// that v is neither local, pinned, nor cached).
  void Want(VertexId v) { wanted_.push_back(v); }

  bool HasWanted() const { return !wanted_.empty(); }

  /// Hands the outstanding request ids to the pull broker.
  std::vector<VertexId> TakeWanted() {
    std::vector<VertexId> out = std::move(wanted_);
    wanted_.clear();
    return out;
  }

  /// Records a delivered adjacency for v.
  void Pin(VertexId v, AdjPtr adj) { pins_[v] = std::move(adj); }

  /// Adjacencies currently pinned into the task.
  size_t PinCount() const { return pins_.size(); }

  /// The pinned adjacency of v, or null if v was never delivered.
  const AdjPtr* Find(VertexId v) const {
    auto it = pins_.find(v);
    return it == pins_.end() ? nullptr : &it->second;
  }

  /// Releases all pins and outstanding requests. Call once the task no
  /// longer reads the big graph (e.g. its subgraph is materialized), so
  /// pulled adjacency memory is reclaimable during the mining phase.
  void Clear() {
    wanted_.clear();
    pins_.clear();
  }

 private:
  std::vector<VertexId> wanted_;
  std::unordered_map<VertexId, AdjPtr> pins_;
};

/// Scheduling metadata the src/sched layer attaches to every task:
/// its lifecycle state (sched/lifecycle.h) plus the two bits the
/// spawn-time prefetch policy needs. Engine-managed; never serialized --
/// a decoded task is rehydrated via RehydrateTaskState.
struct TaskSchedInfo {
  TaskState state = TaskState::kSpawned;
  /// The spawn-time prefetch hook ran for this task.
  bool prefetched = false;
  /// The task has finished at least one compute round (prefetch hit
  /// attribution stops after the first).
  bool computed_once = false;
};

/// A unit of work. Concrete tasks belong to the application; the engine
/// sees only the root (for per-root accounting), a size hint (big/small
/// classification against tau_split), the codec, the transient pull
/// state, and the scheduler's lifecycle metadata.
class Task {
 public:
  virtual ~Task() = default;

  /// The spawning vertex; quasi-cliques found by this task have this as
  /// their smallest member.
  virtual VertexId root() const = 0;

  /// Size proxy compared against tau_split: |ext(S)| once known, the
  /// spawning degree before that.
  virtual uint64_t SizeHint() const = 0;

  /// Serializes the task (spill files, steal transfers). Pull state is
  /// deliberately not serialized (see TaskPullState).
  virtual void Encode(Encoder* enc) const = 0;

  /// Outstanding requests + pinned pull responses (engine/broker-managed).
  TaskPullState& pulls() { return pulls_; }
  const TaskPullState& pulls() const { return pulls_; }

  /// Lifecycle + prefetch metadata (scheduler-managed; mutate the state
  /// only through AdvanceTaskState/RehydrateTaskState so every move is
  /// legality-checked and counted).
  TaskSchedInfo& sched_info() { return sched_info_; }
  const TaskSchedInfo& sched_info() const { return sched_info_; }

 private:
  TaskPullState pulls_;
  TaskSchedInfo sched_info_;
};

using TaskPtr = std::unique_ptr<Task>;

/// Adjacency handle returned by vertex fetches. `pin` keeps a cached remote
/// copy alive while the span is in use; it is null for machine-local reads.
struct AdjRef {
  std::span<const VertexId> adj;
  std::shared_ptr<const std::vector<VertexId>> pin;
};

/// Everything a UDF may touch while running on a mining thread.
class ComputeContext {
 public:
  virtual ~ComputeContext() = default;

  /// Pulls the adjacency list of v immediately: local table, the current
  /// task's pinned pull responses, or the machine's vertex cache; a miss
  /// falls back to a synchronous (unbatched) transfer that is counted as
  /// remote traffic. UDFs that can tolerate latency should Request() the
  /// vertices of their next round and suspend instead.
  virtual AdjRef Fetch(VertexId v) = 0;

  /// Registers v for the engine's next batched pull round (one aggregated
  /// kPullRequest message per remote machine, paper §5 Fig. 8). Returns
  /// true when v is already available without a transfer -- machine-local,
  /// pinned in the current task, or a vertex-cache hit (the cache copy is
  /// pinned into the task so a later Fetch cannot lose it to eviction).
  /// Returns false when the pull is outstanding; the UDF should finish its
  /// round and return ComputeStatus::kSuspended (Alg. 3's "add t back to
  /// queue") -- the task resumes once the CommFabric has delivered every
  /// response. Only valid while a task is being computed.
  virtual bool Request(VertexId v) = 0;

  /// Degree of v (vertex metadata, no adjacency transfer).
  virtual uint32_t Degree(VertexId v) = 0;

  /// Adds a newly created (sub)task to the system: big tasks go to this
  /// machine's global queue, small ones to this thread's local queue.
  virtual void AddTask(TaskPtr task) = 0;

  /// Per-thread result collector.
  virtual ResultSink& sink() = 0;

  /// Per-thread metrics (mining vs. materialization attribution).
  virtual ThreadMetrics& metrics() = 0;

  /// Per-thread reusable scratch for ego-network materialization
  /// (Alg. 6-7): lets every task this thread computes build its subgraph
  /// without steady-state allocations.
  virtual EgoScratch& ego_scratch() = 0;

  /// Per-thread reusable scratch for the mining kernels (per-task state
  /// arrays, epoch marks, dense bitset buffers). May be null: the mining
  /// layer then owns a private scratch per task.
  virtual MiningScratch* mining_scratch() { return nullptr; }

  virtual const EngineConfig& config() const = 0;
};

/// Result of one compute round.
enum class ComputeStatus {
  /// Task finished; delete it.
  kDone,
  /// Task must be scheduled again (re-enqueued by size classification).
  kRequeue,
  /// Task yields its comper until every vertex it Request()ed has been
  /// delivered by a batched pull over the CommFabric (one request/
  /// response message pair per remote machine, each delayed by the
  /// modeled network latency); the engine then re-enqueues it. A
  /// suspension with nothing outstanding degenerates to kRequeue.
  kSuspended,
};

/// What a spawn-time prefetch hook may touch (App::SpawnPrefetch): read
/// machine-local graph data and register the vertex wants of the task's
/// first compute round, so the scheduler can issue them through the pull
/// fabric before the task is first scheduled.
class PrefetchContext {
 public:
  virtual ~PrefetchContext() = default;

  /// True if v's adjacency lives on the spawning machine.
  virtual bool IsLocal(VertexId v) const = 0;

  /// Degree of v (vertex metadata, never a transfer).
  virtual uint32_t Degree(VertexId v) const = 0;

  /// Adjacency of a machine-local vertex (IsLocal(v) must hold).
  virtual std::span<const VertexId> LocalAdjacency(VertexId v) const = 0;

  /// Request()-equivalent at spawn time: returns true when v is already
  /// available without a transfer (local, pinned, or a cache hit that is
  /// pinned into the task); otherwise queues v for the task's spawn-time
  /// batched pull and returns false.
  virtual bool Want(VertexId v) = 0;
};

/// A G-thinker application: the two UDFs plus the task codec.
class App {
 public:
  virtual ~App() = default;

  /// UDF task_spawn(v): returns the task for v, or null if v spawns
  /// nothing (e.g. degree below the k-core threshold).
  virtual TaskPtr Spawn(VertexId v, ComputeContext& ctx) = 0;

  /// UDF compute(t, frontier): one processing round of t.
  virtual ComputeStatus Compute(Task& task, ComputeContext& ctx) = 0;

  /// Decodes a task previously written by Task::Encode.
  virtual StatusOr<TaskPtr> DecodeTask(Decoder* dec) const = 0;

  /// Optional spawn-time prefetch stage (EngineConfig::spawn_prefetch):
  /// Want() the vertices the task's first compute round will need. Only
  /// availability may change -- the first round must compute the same
  /// thing whether or not its wants were prefetched, which is what keeps
  /// result digests identical with the policy on or off. Default: no
  /// prefetch.
  virtual void SpawnPrefetch(Task& task, PrefetchContext& ctx) {
    (void)task;
    (void)ctx;
  }
};

}  // namespace qcm

#endif  // QCM_GTHINKER_TASK_H_
