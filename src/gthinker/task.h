// The engine's task and application abstractions -- the G-thinker
// programming model (paper §5): a user writes an application by
// implementing two UDFs, task spawning and task computation, plus a task
// codec so the engine can spill tasks to disk and move ("steal") them
// between machines.

#ifndef QCM_GTHINKER_TASK_H_
#define QCM_GTHINKER_TASK_H_

#include <cstdint>
#include <memory>
#include <span>

#include "gthinker/engine_config.h"
#include "gthinker/metrics.h"
#include "graph/ego_builder.h"
#include "graph/graph.h"
#include "quick/quasi_clique.h"
#include "util/serde.h"
#include "util/status.h"

namespace qcm {

/// A unit of work. Concrete tasks belong to the application; the engine
/// sees only the root (for per-root accounting), a size hint (big/small
/// classification against tau_split) and the codec.
class Task {
 public:
  virtual ~Task() = default;

  /// The spawning vertex; quasi-cliques found by this task have this as
  /// their smallest member.
  virtual VertexId root() const = 0;

  /// Size proxy compared against tau_split: |ext(S)| once known, the
  /// spawning degree before that.
  virtual uint64_t SizeHint() const = 0;

  /// Serializes the task (spill files, steal transfers).
  virtual void Encode(Encoder* enc) const = 0;
};

using TaskPtr = std::unique_ptr<Task>;

/// Adjacency handle returned by vertex fetches. `pin` keeps a cached remote
/// copy alive while the span is in use; it is null for machine-local reads.
struct AdjRef {
  std::span<const VertexId> adj;
  std::shared_ptr<const std::vector<VertexId>> pin;
};

/// Everything a UDF may touch while running on a mining thread.
class ComputeContext {
 public:
  virtual ~ComputeContext() = default;

  /// Pulls the adjacency list of v (local table or remote cache; remote
  /// misses count transferred bytes -- the paper's vertex pulling).
  virtual AdjRef Fetch(VertexId v) = 0;

  /// Degree of v (vertex metadata, no adjacency transfer).
  virtual uint32_t Degree(VertexId v) = 0;

  /// Adds a newly created (sub)task to the system: big tasks go to this
  /// machine's global queue, small ones to this thread's local queue.
  virtual void AddTask(TaskPtr task) = 0;

  /// Per-thread result collector.
  virtual ResultSink& sink() = 0;

  /// Per-thread metrics (mining vs. materialization attribution).
  virtual ThreadMetrics& metrics() = 0;

  /// Per-thread reusable scratch for ego-network materialization
  /// (Alg. 6-7): lets every task this thread computes build its subgraph
  /// without steady-state allocations.
  virtual EgoScratch& ego_scratch() = 0;

  virtual const EngineConfig& config() const = 0;
};

/// Result of one compute round.
enum class ComputeStatus {
  /// Task finished; delete it.
  kDone,
  /// Task must be scheduled again (re-enqueued by size classification).
  kRequeue,
};

/// A G-thinker application: the two UDFs plus the task codec.
class App {
 public:
  virtual ~App() = default;

  /// UDF task_spawn(v): returns the task for v, or null if v spawns
  /// nothing (e.g. degree below the k-core threshold).
  virtual TaskPtr Spawn(VertexId v, ComputeContext& ctx) = 0;

  /// UDF compute(t, frontier): one processing round of t.
  virtual ComputeStatus Compute(Task& task, ComputeContext& ctx) = 0;

  /// Decodes a task previously written by Task::Encode.
  virtual StatusOr<TaskPtr> DecodeTask(Decoder* dec) const = 0;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_TASK_H_
