// Configuration of the reforged G-thinker engine (paper §5-§6).
//
// The engine simulates a cluster in-process: `num_machines` Workers each own
// a hash partition of the vertices, a global big-task queue, spill files and
// `threads_per_machine` mining threads; a master thread rebalances big tasks
// across workers ("task stealing"). See DESIGN.md §3 for the mapping between
// the paper's distributed deployment and this simulation.

#ifndef QCM_GTHINKER_ENGINE_CONFIG_H_
#define QCM_GTHINKER_ENGINE_CONFIG_H_

#include <cstdint>
#include <string>

#include "quick/quasi_clique.h"
#include "util/status.h"

namespace qcm {

/// How iteration-3 mining tasks are divided for concurrency (paper §6).
enum class DecomposeMode {
  /// Never decompose: each spawned root is mined to completion by one
  /// thread (parallelism across roots only).
  kNone,
  /// Algorithm 8: split a task one level whenever |ext(S)| > tau_split,
  /// recursively.
  kSizeThreshold,
  /// Algorithms 9-10: mine for tau_time seconds, then wrap the remaining
  /// subtree nodes into new tasks (the paper's default and best strategy).
  kTimeDelayed,
};

const char* DecomposeModeName(DecomposeMode mode);

/// Eviction policy of the per-machine VertexCache (paper §5, Fig. 8).
enum class CachePolicy {
  /// Exact least-recently-used (list + map per shard).
  kLRU,
  /// CLOCK / second-chance: a ring with reference bits -- cheaper refresh
  /// and more scan-resistant than LRU for pull-heavy workloads.
  kClock,
  /// LRU eviction behind a TinyLFU admission filter: a count-min sketch
  /// estimates access frequency, and at capacity a new entry is admitted
  /// only if it is at least as frequent as the eviction victim -- one-shot
  /// scans cannot flush the hot working set.
  kTinyLFU,
};

const char* CachePolicyName(CachePolicy policy);

/// Parses "lru" / "clock" / "tinylfu" (the --cache-policy vocabulary).
Status ParseCachePolicy(const std::string& name, CachePolicy* policy);

/// Engine knobs. Defaults follow the paper's common settings scaled to a
/// single-host simulation.
struct EngineConfig {
  /// Simulated machines (the paper uses 16).
  int num_machines = 1;
  /// Mining threads per machine (the paper uses 32).
  int threads_per_machine = 2;

  /// tau_split: |ext(S)| above which a task is "big" and routed to the
  /// machine-wide global queue instead of a thread-local queue.
  uint32_t tau_split = 100;
  /// tau_time: seconds of mining before time-delayed decomposition kicks in.
  double tau_time = 0.01;
  DecomposeMode mode = DecomposeMode::kTimeDelayed;

  /// In-memory task capacity of each thread-local queue; overflow spills a
  /// batch of tasks to disk (L_small).
  size_t local_queue_capacity = 256;
  /// Capacity of each machine's global queue; overflow spills to L_big.
  size_t global_queue_capacity = 1024;
  /// Batch size C for spilling, refilling, spawning and stealing.
  size_t batch_size = 16;

  /// Directory for spill files; empty = a fresh directory under the
  /// system temp dir, removed after the run.
  std::string spill_dir;

  /// Master load-balancing period (the paper uses 1 s; scaled down to
  /// match single-host task granularity).
  double steal_period_sec = 0.02;
  /// Balance big tasks across machines.
  bool enable_stealing = true;

  /// Per-machine vertex-cache capacity in adjacency-list entries (paper
  /// §5, Figure 8); 0 disables the cache, forcing every remote access
  /// onto the pull/transfer path.
  size_t vertex_cache_capacity = 1 << 16;
  /// Maximum vertex ids per batched pull message: a broker flush sends
  /// one request per remote machine, split into chunks of this size.
  size_t max_pull_batch = 2048;
  /// VertexCache eviction policy.
  CachePolicy cache_policy = CachePolicy::kLRU;

  /// Spawn-time pull prefetch (sched/scheduler.h pipeline stage): a newly
  /// spawned task Want()s its first compute round's vertices through the
  /// fabric BEFORE its first schedule, so the first round finds pinned
  /// entries instead of suspending on a pull. Results are bit-identical
  /// with the stage on or off (prefetch only changes availability).
  bool spawn_prefetch = false;
  /// Max tasks parked in the kPrefetching stage per machine at once (the
  /// pipeline depth; backpressure falls back to non-prefetched admission).
  /// Must be >= 1 while spawn_prefetch is on -- a zero-depth prefetch
  /// pipeline is a contradiction Validate() rejects.
  size_t prefetch_limit = 64;

  /// Latency-aware steal planning (sched/steal_planner.h): per-move batch
  /// caps scale with the link's RTT EWMA in units of this reference RTT;
  /// links at or above it also suppress sub-half-cap moves ("larger,
  /// rarer batches on slow links"). Must be > 0.
  double steal_rtt_reference_sec = 1e-3;
  /// Hard cap multiplier: one steal move never exceeds
  /// batch_size * steal_max_batch_factor tasks. Must be >= 1.
  uint64_t steal_max_batch_factor = 8;

  /// Modeled network latency of every CommFabric message (pull requests,
  /// pull responses, steal batches). A message enqueued while the
  /// destination machine is at service tick T becomes deliverable at tick
  /// T + net_latency_ticks AND no earlier than net_latency_sec of wall
  /// time after the send; both default to 0 = deliver on the next service
  /// tick (the pre-latency behavior). Compers advance their machine's
  /// tick once per scheduling loop, so tick latency is wall-clock-free
  /// and deterministic per service cadence, while net_latency_sec models
  /// real wire delay the vertex cache must hide.
  uint64_t net_latency_ticks = 0;
  double net_latency_sec = 0.0;

  /// Transport send aggregation (process-per-machine mode; see
  /// net/transport.h CoalesceConfig). Data frames park in a per-peer
  /// buffer until it holds net_coalesce_bytes or the oldest frame has
  /// waited net_linger_usec, then the buffer flushes as one writev.
  /// Both 0 = coalescing off (every frame flushes immediately; the
  /// default, preserving pre-coalescing flush behavior bit for bit).
  /// Enabling one knob without the other is a contradiction Validate()
  /// rejects: a threshold with no linger bound could park a frame
  /// forever, a linger with no threshold never aggregates anything.
  int64_t net_coalesce_bytes = 0;
  int64_t net_linger_usec = 0;

  /// Record per-root task aggregates (subgraph size, accumulated mining
  /// time) for the figure-reproduction benches.
  bool record_task_log = false;

  /// Fault tolerance (process-per-machine mode). checkpoint_dir is the
  /// shared root under which every rank keeps an append-only progress log
  /// at <checkpoint_dir>/rank<R>/log: emitted result sets and completed
  /// root ids, replayed by a replacement worker of the same rank so a
  /// crash never loses finished work. Empty = checkpointing off (the
  /// single-process default; qcm_cluster supplies a directory).
  std::string checkpoint_dir;
  /// Seconds between durability flushes of the progress log (appends are
  /// buffered in between; a crash re-mines at most this much work).
  /// Must be > 0 when checkpoint_dir is set.
  double checkpoint_interval_sec = 0.25;
  /// Worker -> coordinator liveness beacon period in microseconds; the
  /// coordinator declares a rank dead when nothing (heartbeat, status,
  /// report) has arrived from it within its deadline. 0 = no heartbeat
  /// thread (single-process runs).
  int64_t heartbeat_usec = 100000;

  /// Tracing + telemetry (util/trace.h). trace_out names the Chrome
  /// trace-event JSON file to write: qcm_mine writes it directly, while
  /// cluster workers write per-rank fragments (<trace_out>.rank<R>.jsonl)
  /// the launcher merges into one timeline. Empty = tracing off (the
  /// default; every event site then costs a couple of relaxed atomic
  /// loads, keeping digests and kernel timings bit-identical to an
  /// untraced build).
  std::string trace_out;
  /// Per-thread trace ring capacity in KiB (24-byte records). A full ring
  /// drops further records and counts them -- never blocks a comper.
  /// Must be >= 1.
  int64_t trace_buffer_kb = 256;
  /// Period of the engine's telemetry sampler in milliseconds: each tick
  /// records queue depth / in-flight bytes / cache hit ratio / busy
  /// compers as trace counters and, in distributed mode, ships them to
  /// the coordinator as a kStats frame (the qcm_cluster ticker). 0 =
  /// sampler off. Must be >= 0.
  int64_t stats_interval_ms = 500;

  /// Out-of-core graph storage (graph/csr_snapshot.h). graph_snapshot
  /// names a packed .qcsr file: workers mmap it and serve their partition
  /// straight from the mapping instead of re-parsing / re-generating the
  /// full graph per rank (qcm_cluster packs once and fills this in).
  /// Empty = legacy resident load from the job's input / generator spec.
  std::string graph_snapshot;
  /// Page size (bytes) qcm_pack stamps into new snapshots and the
  /// residency granularity of the paged store. Power of two, >= 4096.
  int64_t graph_page_size = 1 << 16;
  /// Resident-adjacency budget (bytes) of the PagedAdjacencyStore: a rank
  /// whose partition exceeds it mines anyway, faulting pages in on demand
  /// and evicting under CLOCK. 0 = unbounded (fully resident on use).
  /// Requires graph_snapshot -- a budget with no snapshot to page against
  /// is a contradiction Validate() rejects.
  int64_t graph_memory_budget = 0;

  /// Quasi-clique parameters and pruning toggles.
  MiningOptions mining;

  Status Validate() const;
};

class Encoder;
class Decoder;

/// Serializes every engine knob (including the nested MiningOptions) so a
/// cluster coordinator can ship one run configuration to every worker
/// process. Round-trips exactly; pinned by tests/wire_serde_test.cc.
void EncodeEngineConfig(const EngineConfig& config, Encoder* enc);
Status DecodeEngineConfig(Decoder* dec, EngineConfig* config);

}  // namespace qcm

#endif  // QCM_GTHINKER_ENGINE_CONFIG_H_
