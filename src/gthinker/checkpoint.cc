#include "gthinker/checkpoint.h"

#include <errno.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cstring>

#include "util/serde.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qcm {

namespace {

/// Record framing around a payload: [type u8][len u32][payload][fnv u64].
constexpr size_t kRecordHeaderBytes = 1 + 4;
constexpr size_t kRecordTrailerBytes = 8;

std::string FrameRecord(uint8_t type, const std::string& payload) {
  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size() + kRecordTrailerBytes);
  out.push_back(static_cast<char>(type));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  out.append(payload);
  const uint64_t sum = Fingerprint(payload);
  out.append(reinterpret_cast<const char*>(&sum), sizeof(sum));
  return out;
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IOError("mkdir " + dir + ": " + std::strerror(errno));
}

std::string ReadWholeFile(std::FILE* f) {
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  return out;
}

}  // namespace

CheckpointLog::~CheckpointLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status CheckpointLog::Open(const std::string& dir, uint32_t epoch,
                           double flush_interval_sec, LoadResult* replay) {
  std::lock_guard<std::mutex> lock(mu_);
  QCM_RETURN_IF_ERROR(EnsureDir(dir));
  dir_ = dir;
  flush_interval_usec_ =
      static_cast<int64_t>(flush_interval_sec * 1e6);
  const std::string path = dir + "/log";
  if (epoch == 0) {
    // First incarnation: any log at this path is leftover state from an
    // unrelated earlier run and must not leak into this one.
    file_ = std::fopen(path.c_str(), "wb");
  } else {
    QCM_TRACE_SPAN(trace::kCheckpoint, "ckpt_replay", epoch);
    std::FILE* in = std::fopen(path.c_str(), "rb");
    std::string bytes;
    if (in != nullptr) {
      bytes = ReadWholeFile(in);
      std::fclose(in);
    }
    ParseRecords(bytes, replay);
    if (replay->torn_bytes > 0) {
      // Drop the torn tail on disk too, so this incarnation's appends
      // start at a record boundary.
      std::FILE* trunc = std::fopen(path.c_str(), "wb");
      if (trunc == nullptr) {
        return Status::IOError("checkpoint rewrite failed: " + path);
      }
      const size_t keep = bytes.size() - replay->torn_bytes;
      if (keep > 0 && std::fwrite(bytes.data(), 1, keep, trunc) != keep) {
        std::fclose(trunc);
        return Status::IOError("checkpoint rewrite failed: " + path);
      }
      std::fclose(trunc);
    }
    file_ = std::fopen(path.c_str(), "ab");
  }
  if (file_ == nullptr) {
    return Status::IOError("checkpoint open failed: " + path + ": " +
                           std::strerror(errno));
  }
  last_flush_usec_ = NowMicros();
  return Status::OK();
}

void CheckpointLog::AppendLocked(const std::string& record) {
  if (file_ == nullptr) return;
  std::fwrite(record.data(), 1, record.size(), file_);
  bytes_appended_ += record.size();
  const int64_t now = NowMicros();
  if (now - last_flush_usec_ >= flush_interval_usec_) {
    QCM_TRACE_SPAN(trace::kCheckpoint, "ckpt_flush", bytes_appended_);
    std::fflush(file_);
    last_flush_usec_ = now;
    ++flushes_;
  }
}

void CheckpointLog::AppendResult(const VertexSet& result) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(EncodeResultRecord(result));
}

void CheckpointLog::AppendRootDone(VertexId root) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(EncodeRootDoneRecord(root));
}

void CheckpointLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  QCM_TRACE_SPAN(trace::kCheckpoint, "ckpt_flush", bytes_appended_);
  std::fflush(file_);
  last_flush_usec_ = NowMicros();
  ++flushes_;
}

Status CheckpointLog::WriteManifest(const std::string& contents) {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dir = dir_;
  }
  if (dir.empty()) return Status::OK();
  const std::string tmp = dir + "/manifest.tmp";
  const std::string final_path = dir + "/manifest";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("manifest open failed: " + tmp);
  }
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  if (!ok || ::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::IOError("manifest write failed: " + final_path);
  }
  return Status::OK();
}

uint64_t CheckpointLog::flushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushes_;
}

uint64_t CheckpointLog::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_appended_;
}

std::string CheckpointLog::EncodeResultRecord(const VertexSet& result) {
  Encoder enc;
  enc.PutU32Vector(result);
  return FrameRecord(kResultRecord, enc.Release());
}

std::string CheckpointLog::EncodeRootDoneRecord(VertexId root) {
  Encoder enc;
  enc.PutU32(root);
  return FrameRecord(kRootDoneRecord, enc.Release());
}

void CheckpointLog::ParseRecords(const std::string& bytes, LoadResult* out) {
  size_t pos = 0;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < kRecordHeaderBytes + kRecordTrailerBytes) break;
    const uint8_t type = static_cast<uint8_t>(bytes[pos]);
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos + 1, sizeof(len));
    if (type != kResultRecord && type != kRootDoneRecord) break;
    if (remaining < kRecordHeaderBytes + len + kRecordTrailerBytes) break;
    const char* payload = bytes.data() + pos + kRecordHeaderBytes;
    uint64_t sum = 0;
    std::memcpy(&sum, payload + len, sizeof(sum));
    if (sum != ExtendFingerprint(kFingerprintSeed, payload, len)) break;
    Decoder dec(payload, len);
    if (type == kResultRecord) {
      VertexSet result;
      if (!dec.GetU32Vector(&result).ok() || !dec.Done()) break;
      out->results.push_back(std::move(result));
    } else {
      VertexId root = 0;
      if (!dec.GetU32(&root).ok() || !dec.Done()) break;
      out->completed_roots.insert(root);
    }
    ++out->records;
    pos += kRecordHeaderBytes + len + kRecordTrailerBytes;
  }
  out->torn_bytes = bytes.size() - pos;
}

void RootProgress::OnSpawn(VertexId root) {
  std::lock_guard<std::mutex> lock(mu_);
  roots_[root] = State{1, false};
}

void RootProgress::OnSubtask(VertexId root) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = roots_.find(root);
  if (it != roots_.end()) ++it->second.outstanding;
}

void RootProgress::OnTaskDone(VertexId root) {
  bool done = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = roots_.find(root);
    if (it == roots_.end()) return;
    if (--it->second.outstanding > 0) return;
    done = !it->second.tainted;
    roots_.erase(it);
  }
  if (done && log_ != nullptr) log_->AppendRootDone(root);
}

void RootProgress::Taint(VertexId root) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = roots_.find(root);
  if (it != roots_.end()) it->second.tainted = true;
}

size_t RootProgress::tracked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_.size();
}

}  // namespace qcm
