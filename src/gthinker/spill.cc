#include "gthinker/spill.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/serde.h"

namespace qcm {

SpillManager::SpillManager(std::string dir, std::string tag,
                           EngineCounters* counters)
    : dir_(std::move(dir)), tag_(std::move(tag)), counters_(counters) {}

Status SpillManager::SpillBatch(const std::vector<std::string>& blobs) {
  if (blobs.empty()) return Status::OK();
  std::string payload;
  for (const std::string& blob : blobs) {
    AppendFramedBlob(blob, &payload);
  }
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = dir_ + "/" + tag_ + "_" + std::to_string(seq_++) + ".spill";
  }
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("spill: cannot create " + path + ": " +
                           std::strerror(errno));
  }
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  if (std::fclose(f) != 0 || written != payload.size()) {
    return Status::IOError("spill: short write to " + path);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    files_.push_back({path, blobs.size()});
    pending_tasks_ += blobs.size();
  }
  if (counters_ != nullptr) {
    counters_->spill_files.fetch_add(1, std::memory_order_relaxed);
    counters_->spilled_tasks.fetch_add(blobs.size(),
                                       std::memory_order_relaxed);
    counters_->spill_bytes_written.fetch_add(payload.size(),
                                             std::memory_order_relaxed);
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> SpillManager::PopBatch() {
  FileEntry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.empty()) return std::vector<std::string>{};
    entry = files_.back();
    files_.pop_back();
    pending_tasks_ -= entry.task_count;
  }
  FILE* f = std::fopen(entry.path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("spill: cannot open " + entry.path + ": " +
                           std::strerror(errno));
  }
  std::string payload;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    payload.append(buf, got);
  }
  std::fclose(f);
  std::remove(entry.path.c_str());

  std::vector<std::string> blobs;
  blobs.reserve(entry.task_count);
  size_t pos = 0;
  while (pos < payload.size()) {
    std::string blob;
    QCM_RETURN_IF_ERROR(ReadFramedBlob(payload, &pos, &blob));
    blobs.push_back(std::move(blob));
  }
  if (blobs.size() != entry.task_count) {
    return Status::Corruption("spill: task count mismatch in " + entry.path);
  }
  if (counters_ != nullptr) {
    counters_->spill_bytes_read.fetch_add(payload.size(),
                                          std::memory_order_relaxed);
  }
  return blobs;
}

size_t SpillManager::FileCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.size();
}

uint64_t SpillManager::PendingTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_tasks_;
}

void SpillManager::RemoveAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const FileEntry& e : files_) {
    std::remove(e.path.c_str());
  }
  files_.clear();
  pending_tasks_ = 0;
}

}  // namespace qcm
