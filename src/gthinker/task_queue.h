// The machine-wide global queue for big tasks -- the centerpiece of the
// G-thinker reforge (paper §5): big tasks (|ext(S)| > tau_split) are shared
// by all mining threads of a machine so they are prioritized whenever a
// thread has capacity; overflow spills batches to L_big; the steal master
// moves batches between machines' global queues.
//
// Thread-local small-task queues need no class of their own: they are
// single-owner deques inside each Comper (see engine.cc) whose overflow
// spills to the machine's L_small.

#ifndef QCM_GTHINKER_TASK_QUEUE_H_
#define QCM_GTHINKER_TASK_QUEUE_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "gthinker/spill.h"
#include "gthinker/task.h"

namespace qcm {

class GlobalQueue {
 public:
  /// `spill` backs L_big; `app` decodes refilled tasks; both must outlive
  /// the queue.
  GlobalQueue(size_t capacity, size_t batch, SpillManager* spill,
              const App* app, EngineCounters* counters);

  /// Appends a big task; if the queue exceeds capacity, a batch of C tasks
  /// at the tail is spilled to L_big.
  void Push(TaskPtr task);

  /// Pops the task at the front. Returns null when the queue is locked by
  /// another thread (the paper's try-lock failure, Case I) or empty. When
  /// the in-memory count is below one batch, refills from L_big first.
  TaskPtr TryPop();

  /// Steal support: removes up to `max_tasks` from the tail.
  std::vector<TaskPtr> StealBatch(size_t max_tasks);

  /// Steal support: stolen tasks are prefetched work -- they go to the
  /// front so the receiving machine processes them right away.
  void PushStolenFront(std::vector<TaskPtr> tasks);

  /// Lock-free approximate size (in-memory only; excludes L_big).
  size_t ApproxSize() const {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  void SpillTailLocked();  // requires mu_ held
  void RefillLocked();     // requires mu_ held

  const size_t capacity_;
  const size_t batch_;
  SpillManager* spill_;
  const App* app_;
  EngineCounters* counters_;

  std::mutex mu_;
  std::deque<TaskPtr> q_;
  std::atomic<size_t> size_{0};
};

}  // namespace qcm

#endif  // QCM_GTHINKER_TASK_QUEUE_H_
