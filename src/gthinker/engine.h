// The reforged G-thinker engine (paper §5): an in-process simulation of a
// cluster of machines, each running mining threads ("compers") over
// thread-local small-task queues plus a machine-wide global big-task queue,
// with disk spilling (L_small / L_big), prioritized big-task scheduling,
// batched task spawning, and master-coordinated stealing of big tasks
// between machines.
//
// Scheduling policy -- task lifecycle, admission/routing, the spawn-time
// prefetch pipeline, local-queue spill/refill, park/resume -- lives in
// the src/sched/ layer (one Scheduler per machine); the compute loop
// here is a thin driver of it (the paper's reforged Alg. 3):
//   0. Scheduler::ServiceFabric: advance the machine's service tick,
//      deliver every due message (serve peer pull requests, accept pull
//      responses and re-enqueue the tasks that were suspended on them,
//      inject stolen big-task batches into the global queue), then pump
//      the broker's outstanding vertex requests onto the fabric.
//   1. Scheduler::NextTask: the machine's global big-task queue first
//      (try-lock; refill from L_big when low), then the thread's local
//      queue -- refilled from L_small, else by spawning a fresh batch
//      from the machine's unspawned vertices (where the spawn-time
//      prefetch stage runs) -- stopping early if a spawned task is big.
//   2. Scheduler::OnComputeResult folds the round's outcome back into
//      the lifecycle.
//   3. No work anywhere: idle briefly and re-check for termination.
//
// A task whose compute round Request()ed vertices that are neither local,
// pinned, nor cached returns kSuspended: it yields its comper and parks in
// the machine's PullBroker until batched kPullRequest/kPullResponse
// messages -- delayed by the fabric's modeled network latency -- have
// delivered (and pinned) every missing adjacency. Steal transfers ride
// the same fabric as kStealBatch messages, so transfer time overlaps
// with mining on both machines instead of blocking the steal master; the
// balancing plan itself (shared with the cluster Coordinator) comes from
// sched/steal_planner.h, sized per link by the RTT EWMAs the fabric
// feeds into a LinkRttTracker.
//
// Process-per-machine mode: constructed with a Transport and a
// partitioned VertexTable, the engine hosts exactly ONE machine (the
// transport's rank) of a real multi-process cluster. The compute path is
// identical -- same fabric message types, same scheduling discipline, same
// pull protocol -- but remote fabric sends ride the wire, the in-process
// steal master is replaced by the cluster coordinator's kStealCmd frames
// (executed here against the local global queue), and local quiescence is
// only reported upward (StatusLoop): termination arrives from the
// coordinator's distributed detection instead of MaybeFinish. Pending-
// task accounting crosses the wire with the tasks: a shipped steal batch
// leaves this process's pending_ only after its frame was counted as
// sent, and enters the receiver's pending_ before the frame is counted
// as processed, so the coordinator can never observe a state where work
// exists but no rank shows it.

#ifndef QCM_GTHINKER_ENGINE_H_
#define QCM_GTHINKER_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "gthinker/checkpoint.h"
#include "gthinker/comm.h"
#include "gthinker/engine_config.h"
#include "gthinker/metrics.h"
#include "gthinker/spill.h"
#include "gthinker/task.h"
#include "gthinker/task_queue.h"
#include "gthinker/vertex_table.h"
#include "graph/graph.h"
#include "net/transport.h"
#include "sched/rtt.h"
#include "sched/scheduler.h"
#include "util/status.h"

namespace qcm {

class Engine {
 public:
  /// Simulated mode: all of config.num_machines live in this process.
  /// `graph` and `app` must outlive the engine.
  Engine(const Graph* graph, EngineConfig config, App* app);

  /// Process-per-machine mode: this engine runs machine
  /// `transport->rank()` of a `transport->world_size()`-machine cluster
  /// over a partitioned vertex table (config.num_machines must equal the
  /// world size). `app` and `transport` must outlive the engine; the
  /// transport must be connected but not yet started (Run() installs the
  /// handlers and starts it).
  Engine(std::unique_ptr<VertexTable> table, EngineConfig config, App* app,
         Transport* transport);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the job to completion and returns the merged report (this
  /// process's machines only; a cluster launcher merges per-rank
  /// reports). Run() may be called once per Engine instance.
  StatusOr<EngineReport> Run();

 private:
  struct Worker;
  class Comper;

  bool distributed() const { return transport_ != nullptr; }
  /// Machine id of workers_[0] (the only worker in distributed mode).
  int first_machine() const { return distributed() ? transport_->rank() : 0; }

  void StealLoop();
  void StatusLoop();
  /// One telemetry sample of this rank's live gauges (kStats payload /
  /// trace counter tracks).
  WireStatsSample SampleStats() const;
  /// Simulated-mode twin of StatusLoop's kStats cadence: records counter
  /// trace events locally (there is no coordinator to ship them to).
  /// Spawned only when tracing is on and stats_interval_ms > 0.
  void StatsSamplerLoop();
  void OnWireData(int src, uint8_t type, std::string payload,
                  uint64_t wire_transit_usec);
  void OnStealCommand(int receiver, uint64_t want);
  /// Rank `peer` was declared dead (transport hook, after its old
  /// incarnation's receive path is fully quiesced): reset the pair's
  /// processed counter and re-inject every steal batch this rank had
  /// shipped there -- whatever the dead rank had not finished of them is
  /// mined here instead (completed parts become duplicates the final
  /// dedup discards).
  void OnPeerDown(int peer);
  /// Rank `peer`'s replacement is up: re-request every vertex pull that
  /// was in flight toward the old incarnation.
  void OnPeerUp(int peer);
  /// Puts a kStealBatch payload back into the local fabric as local
  /// work. `add_pending` distinguishes a batch whose tasks already left
  /// pending_ (shipped earlier; re-add them) from one caught before the
  /// ship (never decremented).
  void ReinjectStealPayload(std::string payload, bool add_pending);
  /// Periodic observability manifest beside the checkpoint log.
  void WriteCheckpointManifest();
  void MaybeFinish();
  bool SpawnExhausted() const;

  const Graph* graph_;
  EngineConfig config_;
  App* app_;
  Transport* transport_ = nullptr;

  std::unique_ptr<VertexTable> table_;
  std::unique_ptr<CommFabric> fabric_;
  /// Per-link delivery-latency EWMAs (fed by the fabric, read by the
  /// steal planner).
  std::unique_ptr<LinkRttTracker> rtt_;
  std::vector<std::unique_ptr<Worker>> workers_;
  EngineCounters counters_;

  std::string spill_dir_;
  bool owns_spill_dir_ = false;

  // ---- fault-tolerance state (distributed mode with checkpointing) ----
  /// Durable progress log + replay of a crashed predecessor (see
  /// gthinker/checkpoint.h). Null when config_.checkpoint_dir is empty.
  std::unique_ptr<CheckpointLog> ckpt_log_;
  std::unique_ptr<RootProgress> root_progress_;
  /// Spawn roots the previous incarnation fully mined (skipped at spawn).
  std::unordered_set<VertexId> completed_roots_;
  /// Results replayed from the predecessor's log; appended to the final
  /// report alongside freshly mined ones.
  std::vector<VertexSet> recovered_results_;
  /// Copies of every kStealBatch payload shipped to each peer, kept until
  /// that peer dies (then re-injected locally) or the run ends. Steal
  /// batches are few and small relative to the graph, so per-run
  /// retention is cheap insurance against losing shipped tasks.
  std::mutex retained_mu_;
  std::vector<std::vector<std::string>> retained_steals_;

  std::atomic<int64_t> pending_{0};
  std::atomic<int> active_spawners_{0};
  /// Data frames fully folded into this process (distributed mode).
  std::atomic<uint64_t> frames_processed_{0};
  /// Per-source-rank processed-frame counters (the per-pair half of the
  /// termination contract; reset to zero when the source rank dies).
  std::vector<std::atomic<uint64_t>> processed_from_;
  std::atomic<bool> done_{false};
  bool ran_ = false;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_ENGINE_H_
