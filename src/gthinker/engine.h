// The reforged G-thinker engine (paper §5): an in-process simulation of a
// cluster of machines, each running mining threads ("compers") over
// thread-local small-task queues plus a machine-wide global big-task queue,
// with disk spilling (L_small / L_big), prioritized big-task scheduling,
// batched task spawning, and master-coordinated stealing of big tasks
// between machines.
//
// Scheduling discipline per mining thread (the paper's reforged Alg. 3):
//   0. Service the machine's CommFabric inbox: advance the service tick,
//      deliver every due message (serve peer pull requests, accept pull
//      responses and re-enqueue the tasks that were suspended on them,
//      inject stolen big-task batches into the global queue), then pump
//      the broker's outstanding vertex requests onto the fabric.
//   1. Try to pop a big task from this machine's global queue (try-lock;
//      refill from L_big when low).
//   2. Otherwise pop from the thread's local queue; when low, refill from
//      L_small, else spawn a fresh batch of tasks from the machine's
//      unspawned vertices -- stopping early if a spawned task is big.
//   3. Otherwise idle briefly and re-check for termination.
//
// A task whose compute round Request()ed vertices that are neither local,
// pinned, nor cached returns kSuspended: it yields its comper and parks in
// the machine's PullBroker until batched kPullRequest/kPullResponse
// messages -- delayed by the fabric's modeled network latency -- have
// delivered (and pinned) every missing adjacency. Steal transfers ride
// the same fabric as kStealBatch messages, so transfer time overlaps
// with mining on both machines instead of blocking the steal master.

#ifndef QCM_GTHINKER_ENGINE_H_
#define QCM_GTHINKER_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "gthinker/comm.h"
#include "gthinker/engine_config.h"
#include "gthinker/metrics.h"
#include "gthinker/spill.h"
#include "gthinker/task.h"
#include "gthinker/task_queue.h"
#include "gthinker/vertex_table.h"
#include "graph/graph.h"
#include "util/status.h"

namespace qcm {

class Engine {
 public:
  /// `graph` and `app` must outlive the engine.
  Engine(const Graph* graph, EngineConfig config, App* app);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the job to completion and returns the merged report.
  /// Run() may be called once per Engine instance.
  StatusOr<EngineReport> Run();

 private:
  struct Worker;
  class Comper;

  void StealLoop();
  void MaybeFinish();
  bool SpawnExhausted() const;

  const Graph* graph_;
  EngineConfig config_;
  App* app_;

  std::unique_ptr<VertexTable> table_;
  std::unique_ptr<CommFabric> fabric_;
  std::vector<std::unique_ptr<Worker>> workers_;
  EngineCounters counters_;

  std::string spill_dir_;
  bool owns_spill_dir_ = false;

  std::atomic<int64_t> pending_{0};
  std::atomic<int> active_spawners_{0};
  std::atomic<bool> done_{false};
  bool ran_ = false;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_ENGINE_H_
