#include "gthinker/vertex_table.h"

namespace qcm {

VertexTable::VertexTable(const Graph* graph, int num_machines)
    : graph_(graph), num_machines_(num_machines), owned_(num_machines) {
  for (VertexId v = 0; v < graph_->NumVertices(); ++v) {
    owned_[Owner(v)].push_back(v);
  }
}

RemoteCache::RemoteCache(size_t capacity_entries, EngineCounters* counters)
    : capacity_per_shard_(capacity_entries / kShards + 1),
      counters_(counters) {}

std::shared_ptr<const std::vector<VertexId>> RemoteCache::Get(
    VertexId v, const VertexTable& table) {
  Shard& shard = shards_[v % kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(v);
    if (it != shard.map.end()) {
      if (counters_ != nullptr) {
        counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second;
    }
  }
  // Miss: "transfer" the adjacency list from the owner (a copy).
  auto adj = table.Adjacency(v);
  auto copy = std::make_shared<const std::vector<VertexId>>(adj.begin(),
                                                            adj.end());
  if (counters_ != nullptr) {
    counters_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    counters_->remote_bytes.fetch_add(copy->size() * sizeof(VertexId),
                                      std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.emplace(v, copy);
  if (inserted) {
    shard.fifo.push_back(v);
    while (shard.fifo.size() > capacity_per_shard_) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
      if (counters_ != nullptr) {
        counters_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return it->second;
}

size_t RemoteCache::ApproxSize() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

DataService::DataService(const VertexTable* table, int machine,
                         size_t cache_capacity, EngineCounters* counters)
    : table_(table), machine_(machine), cache_(cache_capacity, counters) {}

AdjRef DataService::Fetch(VertexId v) {
  if (table_->Owner(v) == machine_) {
    return AdjRef{table_->Adjacency(v), nullptr};
  }
  auto pinned = cache_.Get(v, *table_);
  return AdjRef{std::span<const VertexId>(pinned->data(), pinned->size()),
                std::move(pinned)};
}

}  // namespace qcm
