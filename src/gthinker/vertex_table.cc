#include "gthinker/vertex_table.h"

#include <algorithm>

#include "util/logging.h"
#include "util/serde.h"
#include "util/trace.h"

namespace qcm {

VertexTable::VertexTable(const Graph* graph, int num_machines)
    : graph_(graph), num_machines_(num_machines), owned_(num_machines) {
  for (VertexId v = 0; v < graph_->NumVertices(); ++v) {
    owned_[Owner(v)].push_back(v);
  }
}

VertexTable::VertexTable(const Graph& full, int num_machines,
                         int local_rank)
    : graph_(nullptr),
      num_machines_(num_machines),
      local_rank_(local_rank),
      owned_(num_machines) {
  QCM_CHECK(local_rank >= 0 && local_rank < num_machines)
      << "bad local rank " << local_rank << "/" << num_machines;
  const uint32_t n = full.NumVertices();
  degrees_.resize(n);
  local_offsets_.assign(n + 1, 0);
  uint64_t local_entries = 0;
  for (VertexId v = 0; v < n; ++v) {
    degrees_[v] = full.Degree(v);
    const int owner = Owner(v);
    owned_[owner].push_back(v);
    if (owner == local_rank) local_entries += degrees_[v];
  }
  local_adj_.reserve(local_entries);
  for (VertexId v = 0; v < n; ++v) {
    local_offsets_[v] = local_adj_.size();
    if (Owner(v) == local_rank) {
      auto adj = full.Neighbors(v);
      local_adj_.insert(local_adj_.end(), adj.begin(), adj.end());
    }
  }
  local_offsets_[n] = local_adj_.size();
}

VertexTable::VertexTable(std::shared_ptr<CsrSnapshot> snapshot,
                         int num_machines, int local_rank,
                         uint64_t graph_memory_budget)
    : graph_(nullptr),
      num_machines_(num_machines),
      local_rank_(local_rank),
      owned_(num_machines),
      snapshot_(std::move(snapshot)) {
  QCM_CHECK(snapshot_ != nullptr);
  QCM_CHECK(local_rank >= -1 && local_rank < num_machines)
      << "bad local rank " << local_rank << "/" << num_machines;
  const uint32_t n = snapshot_->NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    owned_[Owner(v)].push_back(v);
  }
  PagedStoreConfig store_config;
  store_config.memory_budget_bytes = graph_memory_budget;
  store_config.num_machines = num_machines;
  store_config.local_rank = local_rank;
  paged_ = std::make_unique<PagedAdjacencyStore>(snapshot_, store_config);
}

std::span<const VertexId> VertexTable::Adjacency(VertexId v) const {
  if (graph_ != nullptr) return graph_->Neighbors(v);
  if (snapshot_ != nullptr) {
    QCM_CHECK(local_rank_ < 0 || Owner(v) == local_rank_)
        << "adjacency of vertex " << v << " (owner " << Owner(v)
        << ") read on rank " << local_rank_
        << ": remote adjacency does not exist in a partitioned table";
    return paged_->Adjacency(v);
  }
  QCM_CHECK(Owner(v) == local_rank_)
      << "adjacency of vertex " << v << " (owner " << Owner(v)
      << ") read on rank " << local_rank_
      << ": remote adjacency does not exist in a partitioned table";
  return {local_adj_.data() + local_offsets_[v],
          local_adj_.data() + local_offsets_[v + 1]};
}

DataService::DataService(const VertexTable* table, int machine,
                         size_t cache_capacity, EngineCounters* counters,
                         CachePolicy policy)
    : table_(table),
      machine_(machine),
      counters_(counters),
      cache_(cache_capacity, counters, policy) {}

AdjRef DataService::Fetch(VertexId v) {
  if (IsLocal(v)) {
    return AdjRef{table_->Adjacency(v), nullptr};
  }
  if (auto cached = cache_.Lookup(v)) {
    return AdjRef{std::span<const VertexId>(cached->data(), cached->size()),
                  std::move(cached)};
  }
  // Synchronous fallback: v was never requested (or its pin was dropped by
  // a spill round-trip); copy the adjacency from the owner's table and
  // count the unbatched transfer. In process-per-machine mode there is no
  // owner table to read -- every remote adjacency must arrive through the
  // pull protocol, so reaching this line is a protocol violation.
  QCM_CHECK(!table_->partitioned())
      << "synchronous remote fetch of vertex " << v << " on rank "
      << table_->local_rank()
      << ": vertex was never Request()ed/pinned (pull-protocol violation)";
  QCM_TRACE_INSTANT(trace::kPull, "cache_miss", static_cast<uint32_t>(v));
  auto adj = table_->Adjacency(v);
  auto copy =
      std::make_shared<const std::vector<VertexId>>(adj.begin(), adj.end());
  if (counters_ != nullptr) {
    counters_->remote_bytes.fetch_add(copy->size() * sizeof(VertexId),
                                      std::memory_order_relaxed);
  }
  cache_.Insert(v, copy);
  return AdjRef{std::span<const VertexId>(copy->data(), copy->size()),
                std::move(copy)};
}

PullBroker::PullBroker(DataService* data, int machine, size_t max_batch,
                       EngineCounters* counters)
    : data_(data),
      machine_(machine),
      max_batch_(std::max<size_t>(max_batch, 1)),
      counters_(counters) {}

void PullBroker::Park(TaskPtr task) {
  std::vector<VertexId> wanted = task->pulls().TakeWanted();
  // A task may Request() the same vertex twice in one round; count each
  // id once so delivery bookkeeping matches pinning.
  std::sort(wanted.begin(), wanted.end());
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  Parked parked;
  parked.task = std::move(task);
  for (VertexId v : wanted) {
    // Served since the task suspended (by another task's pull or a
    // fallback fetch): pin without any transfer or waiting.
    if (auto cached = data_->cache().Lookup(v, /*count_stats=*/false)) {
      parked.task->pulls().Pin(v, std::move(cached));
      continue;
    }
    waiters_[v].push_back(id);
    ++parked.remaining;
    if (inflight_.insert(v).second) pending_.push_back(v);
  }
  if (parked.remaining == 0) {
    // Everything was locally servable after all; hand the task back on
    // the next pump (Park cannot return it -- the comper moved on).
    ready_.push_back(std::move(parked.task));
    return;
  }
  // A park is a cache-miss stall: the task now waits on `remaining`
  // uncached remote adjacencies.
  QCM_TRACE_INSTANT(trace::kPull, "pull_park",
                    static_cast<uint32_t>(parked.remaining));
  parked_.emplace(id, std::move(parked));
}

std::vector<TaskPtr> PullBroker::PumpRequests(CommFabric* fabric) {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return {};
  std::vector<TaskPtr> ready = std::move(ready_);
  ready_.clear();
  if (pending_.empty()) return ready;

  std::vector<VertexId> pending = std::move(pending_);
  pending_.clear();
  // Emitted retroactively below only when a batch actually goes out --
  // PumpRequests is polled from idle compers and must not flood the ring.
  const uint64_t round_begin_usec =
      trace::Enabled() ? trace::TraceNowMicros() : 0;

  // Recheck the cache: ids cached since they were queued (by another
  // task's pull round or a fallback fetch) are served without a message.
  const VertexTable& table = data_->table();
  std::vector<std::vector<VertexId>> groups(table.NumMachines());
  for (VertexId v : pending) {
    if (auto cached = data_->cache().Lookup(v, /*count_stats=*/false)) {
      inflight_.erase(v);
      auto it = waiters_.find(v);
      if (it != waiters_.end()) {
        for (uint64_t id : it->second) {
          auto p = parked_.find(id);
          if (p == parked_.end()) continue;
          p->second.task->pulls().Pin(v, cached);
          if (--p->second.remaining == 0) {
            ready.push_back(std::move(p->second.task));
            parked_.erase(p);
          }
        }
        waiters_.erase(it);
      }
      continue;
    }
    groups[table.Owner(v)].push_back(v);
  }

  // One batched request message per owner machine, split at max_batch.
  uint64_t batches_sent = 0;
  for (size_t owner = 0; owner < groups.size(); ++owner) {
    std::vector<VertexId>& group = groups[owner];
    if (group.empty()) continue;
    std::sort(group.begin(), group.end());
    for (size_t off = 0; off < group.size(); off += max_batch_) {
      const size_t n = std::min(max_batch_, group.size() - off);
      Encoder enc;
      enc.PutU32Span(group.data() + off, n);
      fabric->Send(MessageType::kPullRequest, machine_,
                   static_cast<int>(owner), enc.Release());
      ++batches_sent;
    }
  }
  if (counters_ != nullptr && batches_sent > 0) {
    counters_->pull_batches.fetch_add(batches_sent,
                                      std::memory_order_relaxed);
    counters_->pull_rounds.fetch_add(1, std::memory_order_relaxed);
  }
  if (batches_sent > 0 && trace::Enabled()) {
    trace::EmitSpan(QCM_TRACE_NAME("pull_round"), trace::kPull,
                    round_begin_usec,
                    trace::TraceNowMicros() - round_begin_usec,
                    static_cast<uint32_t>(batches_sent));
  }
  return ready;
}

std::string PullBroker::ServeRequest(const std::string& request_payload)
    const {
  Decoder dec(request_payload);
  std::vector<VertexId> ids;
  Status s = dec.GetU32Vector(&ids);
  QCM_CHECK(s.ok()) << "corrupt pull request: " << s.ToString();
  QCM_TRACE_SPAN(trace::kPull, "pull_serve",
                 static_cast<uint32_t>(ids.size()));

  const VertexTable& table = data_->table();
  Encoder enc;
  enc.PutU32Vector(ids);
  uint64_t adj_bytes = 0;
  for (VertexId v : ids) {
    auto adj = table.Adjacency(v);
    enc.PutU32Span(adj.data(), adj.size());
    adj_bytes += adj.size() * sizeof(VertexId);
  }
  if (counters_ != nullptr) {
    counters_->pulled_vertices.fetch_add(ids.size(),
                                         std::memory_order_relaxed);
    counters_->pull_bytes.fetch_add(adj_bytes, std::memory_order_relaxed);
  }
  return enc.Release();
}

std::vector<TaskPtr> PullBroker::AcceptResponse(
    const std::string& response_payload) {
  Decoder dec(response_payload);
  std::vector<VertexId> ids;
  Status s = dec.GetU32Vector(&ids);
  QCM_CHECK(s.ok()) << "corrupt pull response: " << s.ToString();

  QCM_TRACE_SPAN(trace::kPull, "pull_accept",
                 static_cast<uint32_t>(ids.size()));
  std::vector<TaskPtr> ready;
  std::lock_guard<std::mutex> lock(mu_);
  for (VertexId v : ids) {
    std::vector<VertexId> adj;
    s = dec.GetU32Vector(&adj);
    QCM_CHECK(s.ok()) << "corrupt pull response: " << s.ToString();
    auto copy =
        std::make_shared<const std::vector<VertexId>>(std::move(adj));
    data_->cache().Insert(v, copy);
    inflight_.erase(v);
    auto it = waiters_.find(v);
    if (it == waiters_.end()) continue;
    for (uint64_t id : it->second) {
      auto p = parked_.find(id);
      if (p == parked_.end()) continue;
      p->second.task->pulls().Pin(v, copy);
      if (--p->second.remaining == 0) {
        ready.push_back(std::move(p->second.task));
        parked_.erase(p);
      }
    }
    waiters_.erase(it);
  }
  return ready;
}

size_t PullBroker::RequeueInflightFor(int owner) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_set<VertexId> queued(pending_.begin(), pending_.end());
  size_t requeued = 0;
  for (VertexId v : inflight_) {
    if (data_->table().Owner(v) != owner) continue;
    if (!queued.insert(v).second) continue;  // already awaiting a pump
    pending_.push_back(v);
    ++requeued;
  }
  return requeued;
}

size_t PullBroker::ParkedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_.size() + ready_.size();
}

size_t PullBroker::InFlightVertices() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size();
}

}  // namespace qcm
