#include "gthinker/vertex_table.h"

#include <algorithm>
#include <unordered_map>

namespace qcm {

VertexTable::VertexTable(const Graph* graph, int num_machines)
    : graph_(graph), num_machines_(num_machines), owned_(num_machines) {
  for (VertexId v = 0; v < graph_->NumVertices(); ++v) {
    owned_[Owner(v)].push_back(v);
  }
}

DataService::DataService(const VertexTable* table, int machine,
                         size_t cache_capacity, EngineCounters* counters)
    : table_(table),
      machine_(machine),
      counters_(counters),
      cache_(cache_capacity, counters) {}

AdjRef DataService::Fetch(VertexId v) {
  if (IsLocal(v)) {
    return AdjRef{table_->Adjacency(v), nullptr};
  }
  if (auto cached = cache_.Lookup(v)) {
    return AdjRef{std::span<const VertexId>(cached->data(), cached->size()),
                  std::move(cached)};
  }
  // Synchronous fallback: v was never requested (or its pin was dropped by
  // a spill round-trip); copy the adjacency from the owner's table and
  // count the unbatched transfer.
  auto adj = table_->Adjacency(v);
  auto copy =
      std::make_shared<const std::vector<VertexId>>(adj.begin(), adj.end());
  if (counters_ != nullptr) {
    counters_->remote_bytes.fetch_add(copy->size() * sizeof(VertexId),
                                      std::memory_order_relaxed);
  }
  cache_.Insert(v, copy);
  return AdjRef{std::span<const VertexId>(copy->data(), copy->size()),
                std::move(copy)};
}

PullBroker::PullBroker(DataService* data, size_t max_batch,
                       EngineCounters* counters)
    : data_(data), max_batch_(std::max<size_t>(max_batch, 1)),
      counters_(counters) {}

void PullBroker::Park(TaskPtr task) {
  Parked parked;
  parked.wanted = task->pulls().TakeWanted();
  parked.task = std::move(task);
  std::lock_guard<std::mutex> lock(mu_);
  parked_.push_back(std::move(parked));
}

std::vector<TaskPtr> PullBroker::Flush() {
  std::vector<Parked> batch;
  {
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock() || parked_.empty()) return {};
    batch.swap(parked_);
  }

  // Deduplicate the wanted ids across every parked task; requests that got
  // cached since they were queued (by another task's pull or a fallback
  // fetch) are served from the cache without a new transfer.
  std::unordered_map<VertexId, VertexCache::AdjPtr> responses;
  for (const Parked& p : batch) {
    for (VertexId v : p.wanted) responses.emplace(v, nullptr);
  }
  const VertexTable& table = data_->table();
  std::vector<std::vector<VertexId>> groups(table.NumMachines());
  for (auto& [v, adj] : responses) {
    adj = data_->cache().Lookup(v, /*count_stats=*/false);
    if (adj == nullptr) groups[table.Owner(v)].push_back(v);
  }

  // One batched request per owner machine (split at max_batch ids): copy
  // each adjacency -- the simulated network response -- into the cache and
  // the response map.
  uint64_t batches_sent = 0;
  for (std::vector<VertexId>& group : groups) {
    if (group.empty()) continue;
    std::sort(group.begin(), group.end());
    batches_sent += (group.size() + max_batch_ - 1) / max_batch_;
    for (VertexId v : group) {
      auto adj = table.Adjacency(v);
      auto copy = std::make_shared<const std::vector<VertexId>>(adj.begin(),
                                                                adj.end());
      if (counters_ != nullptr) {
        counters_->pulled_vertices.fetch_add(1, std::memory_order_relaxed);
        counters_->pull_bytes.fetch_add(copy->size() * sizeof(VertexId),
                                        std::memory_order_relaxed);
      }
      data_->cache().Insert(v, copy);
      responses[v] = std::move(copy);
    }
  }
  if (counters_ != nullptr && batches_sent > 0) {
    counters_->pull_batches.fetch_add(batches_sent,
                                      std::memory_order_relaxed);
    counters_->pull_rounds.fetch_add(1, std::memory_order_relaxed);
  }

  // Deliver: pin every response into its requesting task; all tasks of
  // this flush are now ready.
  std::vector<TaskPtr> ready;
  ready.reserve(batch.size());
  for (Parked& p : batch) {
    for (VertexId v : p.wanted) {
      auto it = responses.find(v);
      if (it != responses.end() && it->second != nullptr) {
        p.task->pulls().Pin(v, it->second);
      }
    }
    ready.push_back(std::move(p.task));
  }
  return ready;
}

size_t PullBroker::ParkedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_.size();
}

}  // namespace qcm
