#include "gthinker/comm.h"

#include <algorithm>

#include "util/logging.h"
#include "util/serde.h"

namespace qcm {

namespace {

/// Relaxed atomic max (counters are read only after the engine quiesces).
void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t seen = target->load(std::memory_order_relaxed);
  while (seen < value &&
         !target->compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPullRequest:
      return "pull-request";
    case MessageType::kPullResponse:
      return "pull-response";
    case MessageType::kStealBatch:
      return "steal-batch";
  }
  return "?";
}

StatusOr<uint32_t> StealBatchTaskCount(const std::string& payload) {
  Decoder dec(payload);
  uint32_t count = 0;
  QCM_RETURN_IF_ERROR(dec.GetU32(&count));
  return count;
}

CommFabric::CommFabric(int num_machines, uint64_t latency_ticks,
                       double latency_sec, EngineCounters* counters,
                       Transport* transport)
    : latency_ticks_(latency_ticks),
      latency_sec_(latency_sec),
      counters_(counters),
      transport_(transport),
      local_rank_(transport != nullptr ? transport->rank() : -1) {
  inboxes_.reserve(num_machines);
  for (int m = 0; m < num_machines; ++m) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void CommFabric::SetBusyProbe(std::function<int(int)> probe) {
  busy_probe_ = std::move(probe);
}

void CommFabric::Send(MessageType type, int src, int dst,
                      std::string payload) {
  if (transport_ != nullptr && dst != local_rank_) {
    // Remote machine: the message leaves this process. The send is
    // counted here; inbox/delivery metrics belong to the destination
    // process, which mirrors this accounting in Inject().
    if (counters_ != nullptr) {
      const int t = static_cast<int>(type);
      counters_->msg_sent[t].fetch_add(1, std::memory_order_relaxed);
      counters_->msg_bytes[t].fetch_add(payload.size(),
                                        std::memory_order_relaxed);
    }
    Status s = transport_->SendData(dst, static_cast<uint8_t>(type),
                                    std::move(payload));
    // A failed wire send means a lost message, which the termination
    // protocol can never recover from: fail loudly, never silently.
    QCM_CHECK(s.ok()) << "wire send of " << MessageTypeName(type)
                      << " to rank " << dst << " failed: " << s.ToString();
    return;
  }
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.payload = std::move(payload);
  Enqueue(std::move(m), /*count_send=*/true);
}

void CommFabric::Inject(MessageType type, int src, std::string payload,
                        uint64_t wire_transit_usec) {
  QCM_CHECK(transport_ != nullptr && local_rank_ >= 0)
      << "Inject without a transport";
  Message m;
  m.type = type;
  m.src = src;
  m.dst = local_rank_;
  m.payload = std::move(payload);
  m.wire_transit_usec = wire_transit_usec;
  // The sender counted msg_sent in its own process; here the message
  // (re-)enters a latency-modeled inbox, so in-flight/depth/overlap
  // accounting resumes as if it had been enqueued locally.
  Enqueue(std::move(m), /*count_send=*/false);
}

void CommFabric::Enqueue(Message m, bool count_send) {
  const double now = clock_.Seconds();
  m.enqueue_sec = now;
  m.due_sec = now + latency_sec_;

  const int t = static_cast<int>(m.type);
  const int dst = m.dst;
  const uint64_t bytes = m.payload.size();
  size_t depth;
  {
    Inbox& inbox = *inboxes_[dst];
    std::lock_guard<std::mutex> lock(inbox.mu);
    m.enqueue_tick = inbox.tick;
    m.due_tick = inbox.tick + latency_ticks_;
    inbox.q.push_back(std::move(m));
    depth = inbox.q.size();
  }
  if (counters_ != nullptr) {
    if (count_send) {
      counters_->msg_sent[t].fetch_add(1, std::memory_order_relaxed);
      counters_->msg_bytes[t].fetch_add(bytes, std::memory_order_relaxed);
    }
    const uint64_t inflight =
        counters_->msg_inflight_bytes.fetch_add(bytes,
                                                std::memory_order_relaxed) +
        bytes;
    AtomicMax(&counters_->msg_inflight_bytes_peak, inflight);
    AtomicMax(&counters_->msg_queue_depth_peak, depth);
    if (busy_probe_ && busy_probe_(dst) > 0) {
      counters_->msg_overlapped.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void CommFabric::CountDelivery(const Message& m, double now) {
  // Observed delivery latency: inbox time (enqueue to this service) plus
  // any wire transit the transport measured before injection. In
  // simulated mode wire_transit_usec is always 0 and this reduces to the
  // pre-wire accounting bit for bit.
  const double latency = std::max(0.0, now - m.enqueue_sec) +
                         static_cast<double>(m.wire_transit_usec) * 1e-6;
  // Feed the steal planner's RTT EWMAs only when there is real transfer
  // delay to learn: modeled latency, or measured wire transit (which
  // includes coalescing dwell). At zero modeled latency and zero wire
  // transit, enqueue->delivery time is pure service-cadence noise that
  // would nudge the planner off the legacy flat plan; with either source
  // of delay present, inbox dwell is part of the effective transfer
  // delay the policy is supposed to amortize.
  if (rtt_ != nullptr && (latency_ticks_ > 0 || latency_sec_ > 0.0 ||
                          m.wire_transit_usec > 0)) {
    rtt_->RecordOneWay(m.src, m.dst, latency);
  }
  if (counters_ == nullptr) return;
  const int t = static_cast<int>(m.type);
  counters_->msg_delivered[t].fetch_add(1, std::memory_order_relaxed);
  counters_->msg_inflight_bytes.fetch_sub(m.payload.size(),
                                          std::memory_order_relaxed);
  counters_->msg_latency_hist[MsgLatencyBucketIndex(latency)].fetch_add(
      1, std::memory_order_relaxed);
  counters_->msg_latency_usec_sum.fetch_add(
      static_cast<uint64_t>(latency * 1e6), std::memory_order_relaxed);
}

std::vector<Message> CommFabric::Service(int dst) {
  const double now = clock_.Seconds();
  std::vector<Message> due;
  {
    Inbox& inbox = *inboxes_[dst];
    std::lock_guard<std::mutex> lock(inbox.mu);
    ++inbox.tick;
    while (!inbox.q.empty() && inbox.q.front().due_tick <= inbox.tick &&
           inbox.q.front().due_sec <= now) {
      due.push_back(std::move(inbox.q.front()));
      inbox.q.pop_front();
    }
  }
  for (const Message& m : due) CountDelivery(m, now);
  return due;
}

std::vector<Message> CommFabric::Drain(int dst) {
  std::vector<Message> out;
  {
    Inbox& inbox = *inboxes_[dst];
    std::lock_guard<std::mutex> lock(inbox.mu);
    while (!inbox.q.empty()) {
      out.push_back(std::move(inbox.q.front()));
      inbox.q.pop_front();
    }
  }
  if (counters_ != nullptr) {
    for (const Message& m : out) {
      counters_->msg_drained.fetch_add(1, std::memory_order_relaxed);
      counters_->msg_inflight_bytes.fetch_sub(m.payload.size(),
                                              std::memory_order_relaxed);
    }
  }
  return out;
}

size_t CommFabric::InFlight() const {
  size_t total = 0;
  for (const auto& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox->mu);
    total += inbox->q.size();
  }
  return total;
}

uint64_t CommFabric::InFlightBytes() const {
  uint64_t total = 0;
  for (const auto& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox->mu);
    for (const Message& m : inbox->q) total += m.payload.size();
  }
  return total;
}

uint64_t CommFabric::Tick(int dst) const {
  Inbox& inbox = *inboxes_[dst];
  std::lock_guard<std::mutex> lock(inbox.mu);
  return inbox.tick;
}

}  // namespace qcm
