#include "gthinker/comm.h"

#include <algorithm>

namespace qcm {

namespace {

/// Relaxed atomic max (counters are read only after the engine quiesces).
void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t seen = target->load(std::memory_order_relaxed);
  while (seen < value &&
         !target->compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPullRequest:
      return "pull-request";
    case MessageType::kPullResponse:
      return "pull-response";
    case MessageType::kStealBatch:
      return "steal-batch";
  }
  return "?";
}

CommFabric::CommFabric(int num_machines, uint64_t latency_ticks,
                       double latency_sec, EngineCounters* counters)
    : latency_ticks_(latency_ticks),
      latency_sec_(latency_sec),
      counters_(counters) {
  inboxes_.reserve(num_machines);
  for (int m = 0; m < num_machines; ++m) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void CommFabric::SetBusyProbe(std::function<int(int)> probe) {
  busy_probe_ = std::move(probe);
}

void CommFabric::Send(MessageType type, int src, int dst,
                      std::string payload) {
  const double now = clock_.Seconds();
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.payload = std::move(payload);
  m.enqueue_sec = now;
  m.due_sec = now + latency_sec_;

  const int t = static_cast<int>(type);
  const uint64_t bytes = m.payload.size();
  size_t depth;
  {
    Inbox& inbox = *inboxes_[dst];
    std::lock_guard<std::mutex> lock(inbox.mu);
    m.enqueue_tick = inbox.tick;
    m.due_tick = inbox.tick + latency_ticks_;
    inbox.q.push_back(std::move(m));
    depth = inbox.q.size();
  }
  if (counters_ != nullptr) {
    counters_->msg_sent[t].fetch_add(1, std::memory_order_relaxed);
    counters_->msg_bytes[t].fetch_add(bytes, std::memory_order_relaxed);
    const uint64_t inflight =
        counters_->msg_inflight_bytes.fetch_add(bytes,
                                                std::memory_order_relaxed) +
        bytes;
    AtomicMax(&counters_->msg_inflight_bytes_peak, inflight);
    AtomicMax(&counters_->msg_queue_depth_peak, depth);
    if (busy_probe_ && busy_probe_(dst) > 0) {
      counters_->msg_overlapped.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void CommFabric::CountDelivery(const Message& m, double now) {
  if (counters_ == nullptr) return;
  const int t = static_cast<int>(m.type);
  counters_->msg_delivered[t].fetch_add(1, std::memory_order_relaxed);
  counters_->msg_inflight_bytes.fetch_sub(m.payload.size(),
                                          std::memory_order_relaxed);
  const double latency = std::max(0.0, now - m.enqueue_sec);
  counters_->msg_latency_hist[MsgLatencyBucketIndex(latency)].fetch_add(
      1, std::memory_order_relaxed);
  counters_->msg_latency_usec_sum.fetch_add(
      static_cast<uint64_t>(latency * 1e6), std::memory_order_relaxed);
}

std::vector<Message> CommFabric::Service(int dst) {
  const double now = clock_.Seconds();
  std::vector<Message> due;
  {
    Inbox& inbox = *inboxes_[dst];
    std::lock_guard<std::mutex> lock(inbox.mu);
    ++inbox.tick;
    while (!inbox.q.empty() && inbox.q.front().due_tick <= inbox.tick &&
           inbox.q.front().due_sec <= now) {
      due.push_back(std::move(inbox.q.front()));
      inbox.q.pop_front();
    }
  }
  for (const Message& m : due) CountDelivery(m, now);
  return due;
}

std::vector<Message> CommFabric::Drain(int dst) {
  std::vector<Message> out;
  {
    Inbox& inbox = *inboxes_[dst];
    std::lock_guard<std::mutex> lock(inbox.mu);
    while (!inbox.q.empty()) {
      out.push_back(std::move(inbox.q.front()));
      inbox.q.pop_front();
    }
  }
  if (counters_ != nullptr) {
    for (const Message& m : out) {
      counters_->msg_drained.fetch_add(1, std::memory_order_relaxed);
      counters_->msg_inflight_bytes.fetch_sub(m.payload.size(),
                                              std::memory_order_relaxed);
    }
  }
  return out;
}

size_t CommFabric::InFlight() const {
  size_t total = 0;
  for (const auto& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox->mu);
    total += inbox->q.size();
  }
  return total;
}

uint64_t CommFabric::InFlightBytes() const {
  uint64_t total = 0;
  for (const auto& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox->mu);
    for (const Message& m : inbox->q) total += m.payload.size();
  }
  return total;
}

uint64_t CommFabric::Tick(int dst) const {
  Inbox& inbox = *inboxes_[dst];
  std::lock_guard<std::mutex> lock(inbox.mu);
  return inbox.tick;
}

}  // namespace qcm
