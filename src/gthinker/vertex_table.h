// The distributed graph store of the simulation (paper §5, Figure 8):
//   * VertexTable -- the graph hash-partitioned across machines; each
//     machine's "local vertex table" is the set of vertices it owns.
//   * DataService -- the per-machine facade tasks fetch through: local
//     vertices resolve to the local table, remote ones to the bounded
//     VertexCache, and cold remote reads fall back to a synchronous
//     (unbatched, metrics-counted) transfer.
//   * PullBroker -- the request/response protocol endpoint of a machine:
//     tasks suspended on missing vertices park here; a request pump
//     aggregates every outstanding id into one batched kPullRequest
//     CommFabric message per remote machine, the owner serves it into a
//     kPullResponse on a later service tick, and accepting the response
//     populates the cache, pins the adjacencies into the waiting tasks,
//     and releases tasks whose every request has been delivered.

#ifndef QCM_GTHINKER_VERTEX_TABLE_H_
#define QCM_GTHINKER_VERTEX_TABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gthinker/comm.h"
#include "gthinker/metrics.h"
#include "gthinker/task.h"
#include "gthinker/vertex_cache.h"
#include "graph/csr_snapshot.h"
#include "graph/graph.h"
#include "graph/paged_adjacency.h"

namespace qcm {

/// Hash partitioning of an immutable graph across machines.
///
/// Two storage modes share one interface:
///   * Simulated (in-process) mode wraps the full shared Graph -- every
///     machine's adjacency is readable because every "machine" lives in
///     this process.
///   * Partitioned (process-per-machine) mode holds only the local rank's
///     adjacency lists plus a replicated degree array: degree is vertex
///     metadata every process keeps (spawn thresholds and frontier
///     qualification read remote degrees), while reading a remote
///     vertex's adjacency is impossible by construction and fails loudly
///     -- exactly the discipline the pull protocol must satisfy.
class VertexTable {
 public:
  /// Simulated mode: the full graph, hash-partitioned across
  /// `num_machines` in-process machines. `graph` must outlive the table.
  VertexTable(const Graph* graph, int num_machines);

  /// Partitioned mode: copies only the adjacency lists `full` assigns to
  /// `local_rank` (plus the degree metadata of every vertex) and does NOT
  /// retain `full` -- the caller may free the full graph afterwards,
  /// leaving this process with its partition only.
  VertexTable(const Graph& full, int num_machines, int local_rank);

  /// Snapshot mode: serves degrees and adjacency straight out of a
  /// mmap'd .qcsr snapshot -- no transient full Graph is ever built, so
  /// startup peak RSS is the owned slice plus replicated metadata.
  /// `local_rank` >= 0 behaves like partitioned mode (owned adjacency
  /// only, remote reads fail loudly); -1 serves every vertex.
  /// `graph_memory_budget` > 0 bounds resident adjacency bytes via the
  /// PagedAdjacencyStore; 0 keeps the partition's pages resident on use.
  VertexTable(std::shared_ptr<CsrSnapshot> snapshot, int num_machines,
              int local_rank, uint64_t graph_memory_budget);

  int Owner(VertexId v) const {
    return static_cast<int>(v % static_cast<uint32_t>(num_machines_));
  }

  int NumMachines() const { return num_machines_; }

  /// True in process-per-machine mode (only the local rank's adjacency
  /// is readable). Simulated and single-process snapshot tables serve
  /// every vertex and report false.
  bool partitioned() const { return local_rank_ >= 0; }

  /// The rank whose adjacency this partition holds (-1 when simulated).
  int local_rank() const { return local_rank_; }

  /// Adjacency of v. Partitioned mode: v must be owned by the local rank
  /// (QCM_CHECK -- a remote adjacency physically is not here).
  std::span<const VertexId> Adjacency(VertexId v) const;

  uint32_t Degree(VertexId v) const {
    if (graph_ != nullptr) return graph_->Degree(v);
    if (snapshot_ != nullptr) return snapshot_->Degree(v);
    return degrees_[v];
  }

  uint32_t NumVertices() const {
    if (graph_ != nullptr) return graph_->NumVertices();
    if (snapshot_ != nullptr) return snapshot_->NumVertices();
    return static_cast<uint32_t>(degrees_.size());
  }

  /// Vertices owned by `machine`, ascending.
  const std::vector<VertexId>& OwnedVertices(int machine) const {
    return owned_[machine];
  }

  /// Non-null in snapshot mode.
  const CsrSnapshot* snapshot() const { return snapshot_.get(); }

  /// Non-null in snapshot mode: the paged local store (paging may be
  /// disabled inside it when the budget is 0).
  PagedAdjacencyStore* paged_store() const { return paged_.get(); }

 private:
  const Graph* graph_;  // simulated mode; null when partitioned
  int num_machines_;
  int local_rank_ = -1;
  std::vector<std::vector<VertexId>> owned_;

  // Partitioned-mode storage: degree of every vertex; CSR rows only for
  // vertices owned by local_rank_ (others have zero extent).
  std::vector<uint32_t> degrees_;
  std::vector<uint64_t> local_offsets_;  // size NumVertices()+1
  std::vector<VertexId> local_adj_;

  // Snapshot-mode storage: degrees/adjacency live in the mapping; the
  // paged store manages adjacency residency under the budget.
  std::shared_ptr<CsrSnapshot> snapshot_;
  std::unique_ptr<PagedAdjacencyStore> paged_;
};

/// Per-machine data access facade.
class DataService {
 public:
  DataService(const VertexTable* table, int machine, size_t cache_capacity,
              EngineCounters* counters,
              CachePolicy policy = CachePolicy::kLRU);

  bool IsLocal(VertexId v) const { return table_->Owner(v) == machine_; }

  /// Immediate vertex pull: local table span, cached remote copy, or a
  /// synchronous fallback transfer (copy from the owner, counted in
  /// remote_bytes and inserted into the cache). Task pins are consulted
  /// by the comper before it reaches this layer.
  AdjRef Fetch(VertexId v);

  /// Cache-only probe (counts hit/miss); null on miss.
  VertexCache::AdjPtr TryCached(VertexId v) { return cache_.Lookup(v); }

  uint32_t Degree(VertexId v) const { return table_->Degree(v); }

  const VertexTable& table() const { return *table_; }
  VertexCache& cache() { return cache_; }

 private:
  const VertexTable* table_;
  int machine_;
  EngineCounters* counters_;
  VertexCache cache_;
};

/// One machine's endpoint of the pull protocol (paper §5): the "request"
/// side parks suspended tasks and pumps batched kPullRequest messages
/// onto the CommFabric; the "respond" side serves a peer's request from
/// the local vertex table; accepting a kPullResponse pins the delivered
/// adjacencies and releases the tasks whose pulls completed. Transfer
/// time is whatever the fabric's latency model says -- tasks stay parked
/// (still counted in Engine::pending_) until delivery.
class PullBroker {
 public:
  /// `data` is this machine's DataService (responses populate its cache);
  /// `machine` is its id (message source); `max_batch` caps ids per
  /// batched request message.
  PullBroker(DataService* data, int machine, size_t max_batch,
             EngineCounters* counters);

  /// Parks `task` until every id in its TaskPullState wanted-set has been
  /// delivered. The wanted-set is consumed (deduplicated; ids already in
  /// the cache are pinned immediately). A task whose every want was
  /// servable locally is returned by the next PumpRequests call.
  void Park(TaskPtr task);

  /// Sends one batched kPullRequest per remote machine covering every id
  /// not yet requested (rechecking the cache first, so ids cached since
  /// they were parked transfer nothing), and returns the tasks that
  /// became ready without a transfer. Non-blocking: returns empty when
  /// another thread holds the broker.
  std::vector<TaskPtr> PumpRequests(CommFabric* fabric);

  /// Owner side: serves a kPullRequest payload (U32Vector of ids) from
  /// the local table into a kPullResponse payload.
  std::string ServeRequest(const std::string& request_payload) const;

  /// Requester side: accepts a kPullResponse payload -- inserts every
  /// delivered adjacency into the vertex cache, pins it into the waiting
  /// tasks, and returns the tasks whose outstanding pulls all completed.
  std::vector<TaskPtr> AcceptResponse(const std::string& response_payload);

  /// Recovery path: re-queues every in-flight vertex id owned by
  /// `owner` for the next request pump. The request (or its response)
  /// died with the owner's old incarnation; its replacement holds the
  /// same partition and can serve the same ids again. Returns how many
  /// ids were re-queued. Idempotent per id: an id whose response arrives
  /// before the re-sent request is simply served twice, and the second
  /// response finds no waiters.
  size_t RequeueInflightFor(int owner);

  /// Tasks currently parked (including ready ones not yet collected).
  size_t ParkedCount() const;

  /// Distinct vertex ids with an outstanding (sent, undelivered) request.
  size_t InFlightVertices() const;

 private:
  struct Parked {
    TaskPtr task;
    /// Wanted ids not yet pinned; the task resumes when this hits 0.
    size_t remaining = 0;
  };

  DataService* data_;
  int machine_;
  size_t max_batch_;
  EngineCounters* counters_;

  mutable std::mutex mu_;
  uint64_t next_id_ = 0;
  std::unordered_map<uint64_t, Parked> parked_;
  /// Tasks whose pulls all completed, awaiting the next pump.
  std::vector<TaskPtr> ready_;
  /// vertex id -> parked-task ids waiting on it.
  std::unordered_map<VertexId, std::vector<uint64_t>> waiters_;
  /// Ids queued for the next request pump (insertion order).
  std::vector<VertexId> pending_;
  /// Ids whose kPullRequest is queued or in flight (dedup across tasks
  /// and pumps); erased when the response delivers.
  std::unordered_set<VertexId> inflight_;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_VERTEX_TABLE_H_
