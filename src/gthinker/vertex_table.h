// The distributed graph store of the simulation (paper §5, Figure 8):
//   * VertexTable -- the graph hash-partitioned across machines; each
//     machine's "local vertex table" is the set of vertices it owns.
//   * RemoteCache -- per-machine bounded cache of adjacency lists fetched
//     from other machines; misses copy the list (modeling the network
//     transfer) and count transferred bytes.
//   * DataService -- the per-machine facade tasks fetch through.

#ifndef QCM_GTHINKER_VERTEX_TABLE_H_
#define QCM_GTHINKER_VERTEX_TABLE_H_

#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gthinker/metrics.h"
#include "gthinker/task.h"
#include "graph/graph.h"

namespace qcm {

/// Hash partitioning of an immutable graph across simulated machines.
class VertexTable {
 public:
  VertexTable(const Graph* graph, int num_machines);

  int Owner(VertexId v) const {
    return static_cast<int>(v % static_cast<uint32_t>(num_machines_));
  }

  std::span<const VertexId> Adjacency(VertexId v) const {
    return graph_->Neighbors(v);
  }

  uint32_t Degree(VertexId v) const { return graph_->Degree(v); }

  uint32_t NumVertices() const { return graph_->NumVertices(); }

  /// Vertices owned by `machine`, ascending.
  const std::vector<VertexId>& OwnedVertices(int machine) const {
    return owned_[machine];
  }

 private:
  const Graph* graph_;
  int num_machines_;
  std::vector<std::vector<VertexId>> owned_;
};

/// Sharded, bounded, FIFO-evicting cache of remote adjacency lists.
class RemoteCache {
 public:
  RemoteCache(size_t capacity_entries, EngineCounters* counters);

  /// Returns the cached copy of v's adjacency, fetching (copying) it from
  /// the owner's table on a miss.
  std::shared_ptr<const std::vector<VertexId>> Get(VertexId v,
                                                   const VertexTable& table);

  size_t ApproxSize() const;

 private:
  static constexpr int kShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<VertexId, std::shared_ptr<const std::vector<VertexId>>>
        map;
    std::deque<VertexId> fifo;  // insertion order for eviction
  };

  size_t capacity_per_shard_;
  EngineCounters* counters_;
  Shard shards_[kShards];
};

/// Per-machine data access facade.
class DataService : public std::enable_shared_from_this<DataService> {
 public:
  DataService(const VertexTable* table, int machine, size_t cache_capacity,
              EngineCounters* counters);

  /// The paper's vertex pull: local vertices resolve to the local table,
  /// remote ones go through the cache.
  AdjRef Fetch(VertexId v);

  uint32_t Degree(VertexId v) const { return table_->Degree(v); }

  const VertexTable& table() const { return *table_; }

 private:
  const VertexTable* table_;
  int machine_;
  RemoteCache cache_;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_VERTEX_TABLE_H_
