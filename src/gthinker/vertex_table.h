// The distributed graph store of the simulation (paper §5, Figure 8):
//   * VertexTable -- the graph hash-partitioned across machines; each
//     machine's "local vertex table" is the set of vertices it owns.
//   * DataService -- the per-machine facade tasks fetch through: local
//     vertices resolve to the local table, remote ones to the bounded
//     VertexCache, and cold remote reads fall back to a synchronous
//     (unbatched, metrics-counted) transfer.
//   * PullBroker -- the request/response batching layer between machines:
//     tasks suspended on missing vertices park here; a flush aggregates
//     every outstanding id into one batched pull per remote machine,
//     populates the cache, pins responses into the waiting tasks, and
//     releases them back to the scheduler.

#ifndef QCM_GTHINKER_VERTEX_TABLE_H_
#define QCM_GTHINKER_VERTEX_TABLE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "gthinker/metrics.h"
#include "gthinker/task.h"
#include "gthinker/vertex_cache.h"
#include "graph/graph.h"

namespace qcm {

/// Hash partitioning of an immutable graph across simulated machines.
class VertexTable {
 public:
  VertexTable(const Graph* graph, int num_machines);

  int Owner(VertexId v) const {
    return static_cast<int>(v % static_cast<uint32_t>(num_machines_));
  }

  int NumMachines() const { return num_machines_; }

  std::span<const VertexId> Adjacency(VertexId v) const {
    return graph_->Neighbors(v);
  }

  uint32_t Degree(VertexId v) const { return graph_->Degree(v); }

  uint32_t NumVertices() const { return graph_->NumVertices(); }

  /// Vertices owned by `machine`, ascending.
  const std::vector<VertexId>& OwnedVertices(int machine) const {
    return owned_[machine];
  }

 private:
  const Graph* graph_;
  int num_machines_;
  std::vector<std::vector<VertexId>> owned_;
};

/// Per-machine data access facade.
class DataService {
 public:
  DataService(const VertexTable* table, int machine, size_t cache_capacity,
              EngineCounters* counters);

  bool IsLocal(VertexId v) const { return table_->Owner(v) == machine_; }

  /// Immediate vertex pull: local table span, cached remote copy, or a
  /// synchronous fallback transfer (copy from the owner, counted in
  /// remote_bytes and inserted into the cache). Task pins are consulted
  /// by the comper before it reaches this layer.
  AdjRef Fetch(VertexId v);

  /// Cache-only probe (counts hit/miss); null on miss.
  VertexCache::AdjPtr TryCached(VertexId v) { return cache_.Lookup(v); }

  uint32_t Degree(VertexId v) const { return table_->Degree(v); }

  const VertexTable& table() const { return *table_; }
  VertexCache& cache() { return cache_; }

 private:
  const VertexTable* table_;
  int machine_;
  EngineCounters* counters_;
  VertexCache cache_;
};

/// The request/response batching layer between machines (paper §5): the
/// "respond" side of G-thinker's pull model, simulated synchronously at
/// flush time while preserving the batching discipline and its metrics.
class PullBroker {
 public:
  /// `data` is this machine's DataService (responses populate its cache);
  /// `max_batch` caps ids per batched message.
  PullBroker(DataService* data, size_t max_batch, EngineCounters* counters);

  /// Parks `task` until every id in its TaskPullState wanted-set has been
  /// delivered. The wanted-set is consumed.
  void Park(TaskPtr task);

  /// Serves every currently outstanding request: ids are deduplicated
  /// across parked tasks, grouped into one batched pull per remote
  /// machine (split at max_batch), transferred (copy + byte accounting),
  /// inserted into the vertex cache, and pinned into each waiting task.
  /// Returns the tasks that are now ready to resume. Non-blocking: an
  /// empty vector is returned when nothing is parked or another thread
  /// holds the broker.
  std::vector<TaskPtr> Flush();

  size_t ParkedCount() const;

 private:
  struct Parked {
    TaskPtr task;
    std::vector<VertexId> wanted;
  };

  DataService* data_;
  size_t max_batch_;
  EngineCounters* counters_;

  mutable std::mutex mu_;
  std::vector<Parked> parked_;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_VERTEX_TABLE_H_
