// The per-machine vertex cache of the pull-based compute model (paper §5,
// Figure 8): a capacity-bounded, sharded cache of remote adjacency lists.
// Batched pull responses and synchronous fallback fetches both land here,
// so a vertex pulled for one task is served to every later task on the
// machine without another network transfer.
//
// Three eviction policies are selectable via EngineConfig::cache_policy:
//   * kLRU     -- exact least-recently-used per shard (list + map).
//   * kClock   -- CLOCK / second-chance: a ring of entries with reference
//     bits; a hit only sets a bit (no list splice), and a full ring
//     evicts the first entry the hand finds unreferenced. Cheaper per
//     hit and more scan-resistant under pull-heavy workloads.
//   * kTinyLFU -- LRU eviction behind a TinyLFU admission filter: a tiny
//     count-min sketch (4 hashes, 8-bit saturating counters, periodic
//     halving so estimates age) tracks how often each vertex is demanded;
//     at capacity a new entry is admitted only if its estimated frequency
//     beats the LRU victim's, so a one-shot scan of cold vertices cannot
//     flush the hot working set the way it can under pure recency
//     policies. Rejected admissions are counted in cache_admit_rejects.
//
// Entries are handed out as shared_ptrs ("pins"): eviction drops the
// cache's reference, but a task holding a pin keeps the adjacency alive
// for as long as it needs it -- the simulation analogue of G-thinker's
// rule that cached vertices in use by a comper are not evictable.
//
// A capacity of 0 disables caching entirely: Lookup always misses and
// Insert is a no-op, forcing every remote access onto the pull/transfer
// path (used to measure the cache's benefit, and by tests).

#ifndef QCM_GTHINKER_VERTEX_CACHE_H_
#define QCM_GTHINKER_VERTEX_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gthinker/engine_config.h"
#include "gthinker/metrics.h"
#include "graph/graph.h"

namespace qcm {

class VertexCache {
 public:
  using AdjPtr = std::shared_ptr<const std::vector<VertexId>>;

  /// `capacity_entries` bounds the number of cached adjacency lists per
  /// machine; 0 disables the cache. `counters` may be null. Small caches
  /// (< kShardThreshold entries) use a single shard so eviction order is
  /// exactly the policy's; larger ones shard by vertex id to cut lock
  /// contention.
  VertexCache(size_t capacity_entries, EngineCounters* counters,
              CachePolicy policy = CachePolicy::kLRU);

  VertexCache(const VertexCache&) = delete;
  VertexCache& operator=(const VertexCache&) = delete;

  /// Returns the cached adjacency of v (refreshing its LRU position or
  /// setting its CLOCK reference bit), or null on a miss. Counts a cache
  /// hit or miss unless `count_stats` is false (internal re-probes, e.g.
  /// the broker checking whether a queued request got cached meanwhile,
  /// must not double-count the demand).
  AdjPtr Lookup(VertexId v, bool count_stats = true);

  /// Inserts (or refreshes) v, evicting per the policy while over
  /// capacity. No-op when the cache is disabled.
  void Insert(VertexId v, AdjPtr adj);

  /// Total entries currently cached (sums shards; approximate only in the
  /// sense that shards are locked one at a time).
  size_t ApproxSize() const;

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }
  CachePolicy policy() const { return policy_; }

 private:
  /// Below this capacity a single shard keeps eviction globally ordered.
  static constexpr size_t kShardThreshold = 1024;
  static constexpr size_t kMaxShards = 8;

  /// CLOCK ring slot.
  struct ClockEntry {
    VertexId v = 0;
    AdjPtr adj;
    bool referenced = false;
  };

  /// TinyLFU frequency estimator: a count-min sketch with 4 hash rows in
  /// one power-of-two array of 8-bit saturating counters. Every counted
  /// demand Touch()es the key; once the sample budget is spent all
  /// counters halve, so stale popularity decays instead of pinning the
  /// cache forever.
  struct FreqSketch {
    std::vector<uint8_t> counts;
    uint64_t mask = 0;
    uint64_t samples = 0;
    uint64_t sample_cap = 0;

    void Init(size_t capacity_entries);
    void Touch(VertexId v);
    uint32_t Estimate(VertexId v) const;
  };

  struct Shard {
    mutable std::mutex mu;

    // -- kLRU / kTinyLFU state: front = most recently used.
    std::list<std::pair<VertexId, AdjPtr>> lru;
    std::unordered_map<VertexId,
                       std::list<std::pair<VertexId, AdjPtr>>::iterator>
        map;

    // -- kClock state: ring + hand.
    std::vector<ClockEntry> ring;
    size_t hand = 0;
    std::unordered_map<VertexId, size_t> slot;

    // -- kTinyLFU admission state.
    FreqSketch sketch;
  };

  void InsertLru(Shard& shard, VertexId v, AdjPtr adj);
  void InsertClock(Shard& shard, VertexId v, AdjPtr adj);
  void InsertTinyLfu(Shard& shard, VertexId v, AdjPtr adj);

  // Only remote vertices are ever cached, and ownership is v %
  // num_machines -- a raw modulo here would alias with that partition and
  // leave most shards unreachable. Mix the id first (murmur3 finalizer).
  Shard& ShardFor(VertexId v) {
    uint64_t x = v;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return *shards_[x % shards_.size()];
  }

  size_t capacity_ = 0;
  size_t capacity_per_shard_ = 0;
  EngineCounters* counters_;
  CachePolicy policy_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_VERTEX_CACHE_H_
