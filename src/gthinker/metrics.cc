#include "gthinker/metrics.h"

#include <algorithm>

namespace qcm {

int MsgLatencyBucketIndex(double seconds) {
  static constexpr double kBounds[kMsgLatencyBuckets - 1] = {
      1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
  for (int b = 0; b < kMsgLatencyBuckets - 1; ++b) {
    if (seconds < kBounds[b]) return b;
  }
  return kMsgLatencyBuckets - 1;
}

const char* MsgLatencyBucketLabel(int bucket) {
  static constexpr const char* kLabels[kMsgLatencyBuckets] = {
      "<10us", "<100us", "<1ms", "<10ms", "<100ms", "<1s", "<10s", ">=10s"};
  if (bucket < 0 || bucket >= kMsgLatencyBuckets) return "?";
  return kLabels[bucket];
}

EngineCountersSnapshot EngineCountersSnapshot::From(const EngineCounters& c) {
  EngineCountersSnapshot s;
  s.big_tasks = c.big_tasks.load(std::memory_order_relaxed);
  s.small_tasks = c.small_tasks.load(std::memory_order_relaxed);
  s.spill_files = c.spill_files.load(std::memory_order_relaxed);
  s.spilled_tasks = c.spilled_tasks.load(std::memory_order_relaxed);
  s.spill_bytes_written =
      c.spill_bytes_written.load(std::memory_order_relaxed);
  s.spill_bytes_read = c.spill_bytes_read.load(std::memory_order_relaxed);
  s.steal_events = c.steal_events.load(std::memory_order_relaxed);
  s.stolen_tasks = c.stolen_tasks.load(std::memory_order_relaxed);
  s.steal_bytes = c.steal_bytes.load(std::memory_order_relaxed);
  s.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = c.cache_misses.load(std::memory_order_relaxed);
  s.cache_evictions = c.cache_evictions.load(std::memory_order_relaxed);
  s.pin_hits = c.pin_hits.load(std::memory_order_relaxed);
  s.remote_bytes = c.remote_bytes.load(std::memory_order_relaxed);
  s.task_suspensions = c.task_suspensions.load(std::memory_order_relaxed);
  s.pull_rounds = c.pull_rounds.load(std::memory_order_relaxed);
  s.pull_batches = c.pull_batches.load(std::memory_order_relaxed);
  s.pulled_vertices = c.pulled_vertices.load(std::memory_order_relaxed);
  s.pull_bytes = c.pull_bytes.load(std::memory_order_relaxed);
  s.tasks_completed = c.tasks_completed.load(std::memory_order_relaxed);
  for (int t = 0; t < kNumMessageTypes; ++t) {
    s.msg_sent[t] = c.msg_sent[t].load(std::memory_order_relaxed);
    s.msg_delivered[t] = c.msg_delivered[t].load(std::memory_order_relaxed);
    s.msg_bytes[t] = c.msg_bytes[t].load(std::memory_order_relaxed);
  }
  s.msg_drained = c.msg_drained.load(std::memory_order_relaxed);
  s.msg_inflight_bytes_peak =
      c.msg_inflight_bytes_peak.load(std::memory_order_relaxed);
  s.msg_queue_depth_peak =
      c.msg_queue_depth_peak.load(std::memory_order_relaxed);
  for (int b = 0; b < kMsgLatencyBuckets; ++b) {
    s.msg_latency_hist[b] =
        c.msg_latency_hist[b].load(std::memory_order_relaxed);
  }
  s.msg_latency_usec_sum =
      c.msg_latency_usec_sum.load(std::memory_order_relaxed);
  s.msg_overlapped = c.msg_overlapped.load(std::memory_order_relaxed);
  s.steal_idle_usec = c.steal_idle_usec.load(std::memory_order_relaxed);
  s.steal_active_usec = c.steal_active_usec.load(std::memory_order_relaxed);
  return s;
}

uint64_t EngineCountersSnapshot::MessagesSent() const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) total += msg_sent[t];
  return total;
}

uint64_t EngineCountersSnapshot::MessageBytes() const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) total += msg_bytes[t];
  return total;
}

double EngineCountersSnapshot::MessageOverlapRatio() const {
  const uint64_t sent = MessagesSent();
  if (sent == 0) return 1.0;
  return static_cast<double>(msg_overlapped) / static_cast<double>(sent);
}

double EngineCountersSnapshot::MeanDeliveryLatencySeconds() const {
  uint64_t delivered = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) delivered += msg_delivered[t];
  if (delivered == 0) return 0.0;
  return static_cast<double>(msg_latency_usec_sum) * 1e-6 /
         static_cast<double>(delivered);
}

double EngineCountersSnapshot::CacheHitRatio() const {
  const uint64_t served = cache_hits + pin_hits;
  const uint64_t demanded = served + cache_misses;
  if (demanded == 0) return 1.0;
  return static_cast<double>(served) / static_cast<double>(demanded);
}

double EngineReport::BusyImbalance() const {
  if (threads.empty()) return 1.0;
  double min_busy = threads[0].busy_seconds;
  double max_busy = threads[0].busy_seconds;
  for (const ThreadSummary& t : threads) {
    min_busy = std::min(min_busy, t.busy_seconds);
    max_busy = std::max(max_busy, t.busy_seconds);
  }
  if (min_busy <= 0.0) return max_busy > 0.0 ? 1e9 : 1.0;
  return max_busy / min_busy;
}

}  // namespace qcm
