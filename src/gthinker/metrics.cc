#include "gthinker/metrics.h"

#include <algorithm>
#include <cstdio>

#include "graph/paged_adjacency.h"
#include "util/serde.h"

namespace qcm {

int MsgLatencyBucketIndex(double seconds) {
  static constexpr double kBounds[kMsgLatencyBuckets - 1] = {
      1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
  for (int b = 0; b < kMsgLatencyBuckets - 1; ++b) {
    if (seconds < kBounds[b]) return b;
  }
  return kMsgLatencyBuckets - 1;
}

const char* MsgLatencyBucketLabel(int bucket) {
  static constexpr const char* kLabels[kMsgLatencyBuckets] = {
      "<10us", "<100us", "<1ms", "<10ms", "<100ms", "<1s", "<10s", ">=10s"};
  if (bucket < 0 || bucket >= kMsgLatencyBuckets) return "?";
  return kLabels[bucket];
}

EngineCountersSnapshot EngineCountersSnapshot::From(const EngineCounters& c) {
  EngineCountersSnapshot s;
  s.big_tasks = c.big_tasks.load(std::memory_order_relaxed);
  s.small_tasks = c.small_tasks.load(std::memory_order_relaxed);
  s.spill_files = c.spill_files.load(std::memory_order_relaxed);
  s.spilled_tasks = c.spilled_tasks.load(std::memory_order_relaxed);
  s.spill_bytes_written =
      c.spill_bytes_written.load(std::memory_order_relaxed);
  s.spill_bytes_read = c.spill_bytes_read.load(std::memory_order_relaxed);
  s.steal_events = c.steal_events.load(std::memory_order_relaxed);
  s.stolen_tasks = c.stolen_tasks.load(std::memory_order_relaxed);
  s.steal_bytes = c.steal_bytes.load(std::memory_order_relaxed);
  s.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = c.cache_misses.load(std::memory_order_relaxed);
  s.cache_evictions = c.cache_evictions.load(std::memory_order_relaxed);
  s.cache_admit_rejects =
      c.cache_admit_rejects.load(std::memory_order_relaxed);
  s.pin_hits = c.pin_hits.load(std::memory_order_relaxed);
  s.remote_bytes = c.remote_bytes.load(std::memory_order_relaxed);
  s.task_suspensions = c.task_suspensions.load(std::memory_order_relaxed);
  s.prefetch_tasks = c.prefetch_tasks.load(std::memory_order_relaxed);
  s.prefetch_issued = c.prefetch_issued.load(std::memory_order_relaxed);
  s.prefetch_hits = c.prefetch_hits.load(std::memory_order_relaxed);
  s.first_schedule_pins =
      c.first_schedule_pins.load(std::memory_order_relaxed);
  s.pull_rounds = c.pull_rounds.load(std::memory_order_relaxed);
  s.pull_batches = c.pull_batches.load(std::memory_order_relaxed);
  s.pulled_vertices = c.pulled_vertices.load(std::memory_order_relaxed);
  s.pull_bytes = c.pull_bytes.load(std::memory_order_relaxed);
  s.tasks_completed = c.tasks_completed.load(std::memory_order_relaxed);
  for (int t = 0; t < kNumMessageTypes; ++t) {
    s.msg_sent[t] = c.msg_sent[t].load(std::memory_order_relaxed);
    s.msg_delivered[t] = c.msg_delivered[t].load(std::memory_order_relaxed);
    s.msg_bytes[t] = c.msg_bytes[t].load(std::memory_order_relaxed);
  }
  s.msg_drained = c.msg_drained.load(std::memory_order_relaxed);
  s.msg_inflight_bytes_peak =
      c.msg_inflight_bytes_peak.load(std::memory_order_relaxed);
  s.msg_queue_depth_peak =
      c.msg_queue_depth_peak.load(std::memory_order_relaxed);
  for (int b = 0; b < kMsgLatencyBuckets; ++b) {
    s.msg_latency_hist[b] =
        c.msg_latency_hist[b].load(std::memory_order_relaxed);
  }
  s.msg_latency_usec_sum =
      c.msg_latency_usec_sum.load(std::memory_order_relaxed);
  s.msg_overlapped = c.msg_overlapped.load(std::memory_order_relaxed);
  s.steal_idle_usec = c.steal_idle_usec.load(std::memory_order_relaxed);
  s.steal_active_usec = c.steal_active_usec.load(std::memory_order_relaxed);
  s.replayed_tasks = c.replayed_tasks.load(std::memory_order_relaxed);
  s.recovered_results = c.recovered_results.load(std::memory_order_relaxed);
  s.completed_roots_skipped =
      c.completed_roots_skipped.load(std::memory_order_relaxed);
  s.checkpoint_flushes =
      c.checkpoint_flushes.load(std::memory_order_relaxed);
  s.checkpoint_bytes = c.checkpoint_bytes.load(std::memory_order_relaxed);
  for (int from = 0; from < kNumTaskStates; ++from) {
    for (int to = 0; to < kNumTaskStates; ++to) {
      s.lifecycle_transitions[from][to] =
          c.lifecycle.transitions[from][to].load(std::memory_order_relaxed);
    }
  }
  return s;
}

uint64_t EngineCountersSnapshot::MessagesSent() const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) total += msg_sent[t];
  return total;
}

uint64_t EngineCountersSnapshot::MessageBytes() const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) total += msg_bytes[t];
  return total;
}

double EngineCountersSnapshot::MessageOverlapRatio() const {
  const uint64_t sent = MessagesSent();
  if (sent == 0) return 1.0;
  return static_cast<double>(msg_overlapped) / static_cast<double>(sent);
}

double EngineCountersSnapshot::MeanDeliveryLatencySeconds() const {
  uint64_t delivered = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) delivered += msg_delivered[t];
  if (delivered == 0) return 0.0;
  return static_cast<double>(msg_latency_usec_sum) * 1e-6 /
         static_cast<double>(delivered);
}

void EngineCountersSnapshot::AddPagedStoreStats(
    const PagedStoreStatsSnapshot& ps) {
  graph_page_pins += ps.page_pins;
  graph_page_ins += ps.page_ins;
  graph_page_evictions += ps.page_evictions;
  graph_fault_stall_usec += ps.fault_stall_usec;
  graph_inline_served += ps.inline_served;
}

void EngineCountersSnapshot::AddFlushStats(const TransportFlushStats& fs) {
  net_flushes += fs.flushes;
  net_flush_frames += fs.flushed_frames;
  net_flush_bytes += fs.flushed_bytes;
  net_flush_size += fs.flush_size;
  net_flush_linger += fs.flush_linger;
  net_flush_forced += fs.flush_forced;
  net_flush_direct += fs.flush_direct;
  net_flush_park_usec += fs.park_usec_sum;
  for (int b = 0; b < kFlushBytesBuckets; ++b) {
    net_flush_bytes_hist[b] += fs.bytes_hist[b];
  }
}

double EngineCountersSnapshot::FramesPerFlush() const {
  if (net_flushes == 0) return 0.0;
  return static_cast<double>(net_flush_frames) /
         static_cast<double>(net_flushes);
}

double EngineCountersSnapshot::MeanFlushParkUsec() const {
  if (net_flush_frames == 0) return 0.0;
  return static_cast<double>(net_flush_park_usec) /
         static_cast<double>(net_flush_frames);
}

double EngineCountersSnapshot::CacheHitRatio() const {
  const uint64_t served = cache_hits + pin_hits;
  const uint64_t demanded = served + cache_misses;
  if (demanded == 0) return 1.0;
  return static_cast<double>(served) / static_cast<double>(demanded);
}

namespace {

/// The counter fields of a snapshot in one flat, ordered view -- keeps the
/// wire encoding, the merge, and the JSON emission in lockstep (adding a
/// counter means touching exactly this list).
struct CounterField {
  const char* name;
  uint64_t EngineCountersSnapshot::* member;
  /// Merge rule: sums by default, max for gauge peaks.
  bool is_peak;
};

constexpr CounterField kCounterFields[] = {
    {"big_tasks", &EngineCountersSnapshot::big_tasks, false},
    {"small_tasks", &EngineCountersSnapshot::small_tasks, false},
    {"spill_files", &EngineCountersSnapshot::spill_files, false},
    {"spilled_tasks", &EngineCountersSnapshot::spilled_tasks, false},
    {"spill_bytes_written", &EngineCountersSnapshot::spill_bytes_written,
     false},
    {"spill_bytes_read", &EngineCountersSnapshot::spill_bytes_read, false},
    {"steal_events", &EngineCountersSnapshot::steal_events, false},
    {"stolen_tasks", &EngineCountersSnapshot::stolen_tasks, false},
    {"steal_bytes", &EngineCountersSnapshot::steal_bytes, false},
    {"cache_hits", &EngineCountersSnapshot::cache_hits, false},
    {"cache_misses", &EngineCountersSnapshot::cache_misses, false},
    {"cache_evictions", &EngineCountersSnapshot::cache_evictions, false},
    {"cache_admit_rejects", &EngineCountersSnapshot::cache_admit_rejects,
     false},
    {"pin_hits", &EngineCountersSnapshot::pin_hits, false},
    {"remote_bytes", &EngineCountersSnapshot::remote_bytes, false},
    {"task_suspensions", &EngineCountersSnapshot::task_suspensions, false},
    {"prefetch_tasks", &EngineCountersSnapshot::prefetch_tasks, false},
    {"prefetch_issued", &EngineCountersSnapshot::prefetch_issued, false},
    {"prefetch_hits", &EngineCountersSnapshot::prefetch_hits, false},
    {"first_schedule_pins", &EngineCountersSnapshot::first_schedule_pins,
     false},
    {"pull_rounds", &EngineCountersSnapshot::pull_rounds, false},
    {"pull_batches", &EngineCountersSnapshot::pull_batches, false},
    {"pulled_vertices", &EngineCountersSnapshot::pulled_vertices, false},
    {"pull_bytes", &EngineCountersSnapshot::pull_bytes, false},
    {"tasks_completed", &EngineCountersSnapshot::tasks_completed, false},
    {"msg_drained", &EngineCountersSnapshot::msg_drained, false},
    {"msg_inflight_bytes_peak",
     &EngineCountersSnapshot::msg_inflight_bytes_peak, true},
    {"msg_queue_depth_peak", &EngineCountersSnapshot::msg_queue_depth_peak,
     true},
    {"msg_latency_usec_sum", &EngineCountersSnapshot::msg_latency_usec_sum,
     false},
    {"msg_overlapped", &EngineCountersSnapshot::msg_overlapped, false},
    {"steal_idle_usec", &EngineCountersSnapshot::steal_idle_usec, false},
    {"steal_active_usec", &EngineCountersSnapshot::steal_active_usec, false},
    {"replayed_tasks", &EngineCountersSnapshot::replayed_tasks, false},
    {"recovered_results", &EngineCountersSnapshot::recovered_results, false},
    {"completed_roots_skipped",
     &EngineCountersSnapshot::completed_roots_skipped, false},
    {"checkpoint_flushes", &EngineCountersSnapshot::checkpoint_flushes,
     false},
    {"checkpoint_bytes", &EngineCountersSnapshot::checkpoint_bytes, false},
    {"net_flushes", &EngineCountersSnapshot::net_flushes, false},
    {"net_flush_frames", &EngineCountersSnapshot::net_flush_frames, false},
    {"net_flush_bytes", &EngineCountersSnapshot::net_flush_bytes, false},
    {"net_flush_size", &EngineCountersSnapshot::net_flush_size, false},
    {"net_flush_linger", &EngineCountersSnapshot::net_flush_linger, false},
    {"net_flush_forced", &EngineCountersSnapshot::net_flush_forced, false},
    {"net_flush_direct", &EngineCountersSnapshot::net_flush_direct, false},
    {"net_flush_park_usec", &EngineCountersSnapshot::net_flush_park_usec,
     false},
    {"graph_page_pins", &EngineCountersSnapshot::graph_page_pins, false},
    {"graph_page_ins", &EngineCountersSnapshot::graph_page_ins, false},
    {"graph_page_evictions", &EngineCountersSnapshot::graph_page_evictions,
     false},
    {"graph_fault_stall_usec",
     &EngineCountersSnapshot::graph_fault_stall_usec, false},
    {"graph_inline_served", &EngineCountersSnapshot::graph_inline_served,
     false},
};

constexpr uint64_t MiningStats::* kMiningFields[] = {
    &MiningStats::nodes_explored,
    &MiningStats::bounding_iterations,
    &MiningStats::emitted,
    &MiningStats::type1_degree_pruned,
    &MiningStats::type1_upper_pruned,
    &MiningStats::type1_lower_pruned,
    &MiningStats::type2_prunes,
    &MiningStats::bound_fail_prunes,
    &MiningStats::critical_moves,
    &MiningStats::cover_skipped,
    &MiningStats::lookahead_hits,
    &MiningStats::diameter_filtered,
    &MiningStats::size_prunes,
    &MiningStats::subtasks_spawned,
    &MiningStats::dense_tasks,
    &MiningStats::sparse_tasks,
    &MiningStats::bitset_words_touched,
};

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string MessageTypeJsonKey(int type) {
  switch (type) {
    case 0:
      return "pull_request";
    case 1:
      return "pull_response";
    case 2:
      return "steal_batch";
  }
  return "type" + std::to_string(type);
}

}  // namespace

void EncodeEngineReport(const EngineReport& report, Encoder* enc) {
  enc->PutDouble(report.wall_seconds);
  enc->PutU64(report.peak_rss_bytes);
  enc->PutDouble(report.total_mining_seconds);
  enc->PutDouble(report.total_materialize_seconds);
  enc->PutDouble(report.total_build_seconds);
  enc->PutDouble(report.total_busy_seconds);
  enc->PutDouble(report.total_idle_seconds);
  for (const CounterField& f : kCounterFields) {
    enc->PutU64(report.counters.*(f.member));
  }
  for (int t = 0; t < kNumMessageTypes; ++t) {
    enc->PutU64(report.counters.msg_sent[t]);
    enc->PutU64(report.counters.msg_delivered[t]);
    enc->PutU64(report.counters.msg_bytes[t]);
  }
  for (int b = 0; b < kMsgLatencyBuckets; ++b) {
    enc->PutU64(report.counters.msg_latency_hist[b]);
  }
  for (int b = 0; b < kFlushBytesBuckets; ++b) {
    enc->PutU64(report.counters.net_flush_bytes_hist[b]);
  }
  for (int from = 0; from < kNumTaskStates; ++from) {
    for (int to = 0; to < kNumTaskStates; ++to) {
      enc->PutU64(report.counters.lifecycle_transitions[from][to]);
    }
  }
  for (auto field : kMiningFields) enc->PutU64(report.mining.*field);
  enc->PutU64(report.threads.size());
  for (const ThreadSummary& t : report.threads) {
    enc->PutU32(static_cast<uint32_t>(t.machine));
    enc->PutU32(static_cast<uint32_t>(t.thread));
    enc->PutDouble(t.busy_seconds);
    enc->PutDouble(t.idle_seconds);
    enc->PutDouble(t.mining_seconds);
    enc->PutDouble(t.materialize_seconds);
    enc->PutU64(t.tasks_processed);
  }
  enc->PutU64(report.results.size());
  for (const VertexSet& s : report.results) enc->PutU32Vector(s);
}

Status DecodeEngineReport(Decoder* dec, EngineReport* report) {
  *report = EngineReport();
  QCM_RETURN_IF_ERROR(dec->GetDouble(&report->wall_seconds));
  QCM_RETURN_IF_ERROR(dec->GetU64(&report->peak_rss_bytes));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&report->total_mining_seconds));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&report->total_materialize_seconds));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&report->total_build_seconds));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&report->total_busy_seconds));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&report->total_idle_seconds));
  for (const CounterField& f : kCounterFields) {
    QCM_RETURN_IF_ERROR(dec->GetU64(&(report->counters.*(f.member))));
  }
  for (int t = 0; t < kNumMessageTypes; ++t) {
    QCM_RETURN_IF_ERROR(dec->GetU64(&report->counters.msg_sent[t]));
    QCM_RETURN_IF_ERROR(dec->GetU64(&report->counters.msg_delivered[t]));
    QCM_RETURN_IF_ERROR(dec->GetU64(&report->counters.msg_bytes[t]));
  }
  for (int b = 0; b < kMsgLatencyBuckets; ++b) {
    QCM_RETURN_IF_ERROR(dec->GetU64(&report->counters.msg_latency_hist[b]));
  }
  for (int b = 0; b < kFlushBytesBuckets; ++b) {
    QCM_RETURN_IF_ERROR(
        dec->GetU64(&report->counters.net_flush_bytes_hist[b]));
  }
  for (int from = 0; from < kNumTaskStates; ++from) {
    for (int to = 0; to < kNumTaskStates; ++to) {
      QCM_RETURN_IF_ERROR(
          dec->GetU64(&report->counters.lifecycle_transitions[from][to]));
    }
  }
  for (auto field : kMiningFields) {
    QCM_RETURN_IF_ERROR(dec->GetU64(&(report->mining.*field)));
  }
  uint64_t n = 0;
  QCM_RETURN_IF_ERROR(dec->GetU64(&n));
  // Bound counts by the bytes actually present (every other decoder in
  // the codebase does) so a corrupt report blob surfaces as Corruption,
  // never as a gigantic resize. Each ThreadSummary needs 48 payload
  // bytes, each result set at least its 8-byte length.
  if (n > dec->Remaining() / 48) {
    return Status::Corruption("report thread count exceeds payload");
  }
  report->threads.resize(n);
  for (ThreadSummary& t : report->threads) {
    uint32_t u = 0;
    QCM_RETURN_IF_ERROR(dec->GetU32(&u));
    t.machine = static_cast<int>(u);
    QCM_RETURN_IF_ERROR(dec->GetU32(&u));
    t.thread = static_cast<int>(u);
    QCM_RETURN_IF_ERROR(dec->GetDouble(&t.busy_seconds));
    QCM_RETURN_IF_ERROR(dec->GetDouble(&t.idle_seconds));
    QCM_RETURN_IF_ERROR(dec->GetDouble(&t.mining_seconds));
    QCM_RETURN_IF_ERROR(dec->GetDouble(&t.materialize_seconds));
    QCM_RETURN_IF_ERROR(dec->GetU64(&t.tasks_processed));
  }
  QCM_RETURN_IF_ERROR(dec->GetU64(&n));
  if (n > dec->Remaining() / 8) {
    return Status::Corruption("report result count exceeds payload");
  }
  report->results.resize(n);
  for (VertexSet& s : report->results) {
    QCM_RETURN_IF_ERROR(dec->GetU32Vector(&s));
  }
  return Status::OK();
}

EngineReport MergeEngineReports(const std::vector<EngineReport>& reports) {
  EngineReport merged;
  for (const EngineReport& r : reports) {
    merged.wall_seconds = std::max(merged.wall_seconds, r.wall_seconds);
    merged.peak_rss_bytes += r.peak_rss_bytes;
    merged.total_mining_seconds += r.total_mining_seconds;
    merged.total_materialize_seconds += r.total_materialize_seconds;
    merged.total_build_seconds += r.total_build_seconds;
    merged.total_busy_seconds += r.total_busy_seconds;
    merged.total_idle_seconds += r.total_idle_seconds;
    for (const CounterField& f : kCounterFields) {
      if (f.is_peak) {
        merged.counters.*(f.member) =
            std::max(merged.counters.*(f.member), r.counters.*(f.member));
      } else {
        merged.counters.*(f.member) += r.counters.*(f.member);
      }
    }
    for (int t = 0; t < kNumMessageTypes; ++t) {
      merged.counters.msg_sent[t] += r.counters.msg_sent[t];
      merged.counters.msg_delivered[t] += r.counters.msg_delivered[t];
      merged.counters.msg_bytes[t] += r.counters.msg_bytes[t];
    }
    for (int b = 0; b < kMsgLatencyBuckets; ++b) {
      merged.counters.msg_latency_hist[b] += r.counters.msg_latency_hist[b];
    }
    for (int b = 0; b < kFlushBytesBuckets; ++b) {
      merged.counters.net_flush_bytes_hist[b] +=
          r.counters.net_flush_bytes_hist[b];
    }
    for (int from = 0; from < kNumTaskStates; ++from) {
      for (int to = 0; to < kNumTaskStates; ++to) {
        merged.counters.lifecycle_transitions[from][to] +=
            r.counters.lifecycle_transitions[from][to];
      }
    }
    merged.mining.Add(r.mining);
    merged.threads.insert(merged.threads.end(), r.threads.begin(),
                          r.threads.end());
    merged.results.insert(merged.results.end(), r.results.begin(),
                          r.results.end());
    merged.root_tasks.insert(merged.root_tasks.end(), r.root_tasks.begin(),
                             r.root_tasks.end());
  }
  return merged;
}

std::string EngineReportJson(const EngineReport& report) {
  std::string json = "{\n";
  json += "  \"wall_seconds\": " + JsonDouble(report.wall_seconds) + ",\n";
  json += "  \"peak_rss_bytes\": " + std::to_string(report.peak_rss_bytes) +
          ",\n";
  json += "  \"total_busy_seconds\": " +
          JsonDouble(report.total_busy_seconds) + ",\n";
  json += "  \"total_idle_seconds\": " +
          JsonDouble(report.total_idle_seconds) + ",\n";
  json += "  \"total_mining_seconds\": " +
          JsonDouble(report.total_mining_seconds) + ",\n";
  json += "  \"total_materialize_seconds\": " +
          JsonDouble(report.total_materialize_seconds) + ",\n";
  json += "  \"total_build_seconds\": " +
          JsonDouble(report.total_build_seconds) + ",\n";
  json += "  \"counters\": {\n";
  for (const CounterField& f : kCounterFields) {
    json += "    \"" + std::string(f.name) +
            "\": " + std::to_string(report.counters.*(f.member)) + ",\n";
  }
  for (int t = 0; t < kNumMessageTypes; ++t) {
    const std::string type = MessageTypeJsonKey(t);
    json += "    \"msg_sent_" + type +
            "\": " + std::to_string(report.counters.msg_sent[t]) + ",\n";
    json += "    \"msg_delivered_" + type +
            "\": " + std::to_string(report.counters.msg_delivered[t]) +
            ",\n";
    json += "    \"msg_bytes_" + type +
            "\": " + std::to_string(report.counters.msg_bytes[t]) + ",\n";
  }
  json += "    \"mining_nodes_explored\": " +
          std::to_string(report.mining.nodes_explored) + ",\n";
  json += "    \"mining_dense_tasks\": " +
          std::to_string(report.mining.dense_tasks) + ",\n";
  json += "    \"mining_sparse_tasks\": " +
          std::to_string(report.mining.sparse_tasks) + ",\n";
  json += "    \"mining_bitset_words_touched\": " +
          std::to_string(report.mining.bitset_words_touched) + ",\n";
  json += "    \"mining_emitted\": " +
          std::to_string(report.mining.emitted) + "\n";
  json += "  },\n";
  json += "  \"net_flush_bytes_hist\": [";
  for (int b = 0; b < kFlushBytesBuckets; ++b) {
    json += std::to_string(report.counters.net_flush_bytes_hist[b]);
    if (b + 1 < kFlushBytesBuckets) json += ", ";
  }
  json += "],\n";
  json += "  \"lifecycle\": {\n";
  {
    std::string rows;
    for (int from = 0; from < kNumTaskStates; ++from) {
      for (int to = 0; to < kNumTaskStates; ++to) {
        const uint64_t n = report.counters.lifecycle_transitions[from][to];
        if (n == 0) continue;  // the matrix is sparse; omit silent rows
        if (!rows.empty()) rows += ",\n";
        rows += std::string("    \"") +
                TaskStateName(static_cast<TaskState>(from)) + "->" +
                TaskStateName(static_cast<TaskState>(to)) +
                "\": " + std::to_string(n);
      }
    }
    json += rows.empty() ? "" : rows + "\n";
  }
  json += "  },\n";
  json += "  \"derived\": {\n";
  json += "    \"cache_hit_ratio\": " +
          JsonDouble(report.counters.CacheHitRatio()) + ",\n";
  json += "    \"message_overlap_ratio\": " +
          JsonDouble(report.counters.MessageOverlapRatio()) + ",\n";
  json += "    \"mean_delivery_latency_sec\": " +
          JsonDouble(report.counters.MeanDeliveryLatencySeconds()) + ",\n";
  json += "    \"frames_per_flush\": " +
          JsonDouble(report.counters.FramesPerFlush()) + ",\n";
  json += "    \"mean_flush_park_usec\": " +
          JsonDouble(report.counters.MeanFlushParkUsec()) + ",\n";
  json += "    \"busy_imbalance\": " + JsonDouble(report.BusyImbalance()) +
          "\n";
  json += "  },\n";
  json += "  \"threads\": [\n";
  for (size_t i = 0; i < report.threads.size(); ++i) {
    const ThreadSummary& t = report.threads[i];
    json += "    {\"machine\": " + std::to_string(t.machine) +
            ", \"thread\": " + std::to_string(t.thread) +
            ", \"busy_seconds\": " + JsonDouble(t.busy_seconds) +
            ", \"idle_seconds\": " + JsonDouble(t.idle_seconds) +
            ", \"mining_seconds\": " + JsonDouble(t.mining_seconds) +
            ", \"materialize_seconds\": " +
            JsonDouble(t.materialize_seconds) +
            ", \"tasks_processed\": " + std::to_string(t.tasks_processed) +
            "}";
    json += i + 1 < report.threads.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"raw_result_sets\": " + std::to_string(report.results.size()) +
          "\n";
  json += "}\n";
  return json;
}

double EngineReport::BusyImbalance() const {
  if (threads.empty()) return 1.0;
  double min_busy = threads[0].busy_seconds;
  double max_busy = threads[0].busy_seconds;
  for (const ThreadSummary& t : threads) {
    min_busy = std::min(min_busy, t.busy_seconds);
    max_busy = std::max(max_busy, t.busy_seconds);
  }
  // A thread that never ran makes the ratio undefined; report 0.0 (a
  // clearly-invalid value for a max/min ratio) instead of a pseudo-inf
  // that poisons downstream aggregation and JSON consumers.
  if (min_busy <= 0.0) return max_busy > 0.0 ? 0.0 : 1.0;
  return max_busy / min_busy;
}

}  // namespace qcm
