#include "gthinker/metrics.h"

#include <algorithm>

namespace qcm {

EngineCountersSnapshot EngineCountersSnapshot::From(const EngineCounters& c) {
  EngineCountersSnapshot s;
  s.big_tasks = c.big_tasks.load(std::memory_order_relaxed);
  s.small_tasks = c.small_tasks.load(std::memory_order_relaxed);
  s.spill_files = c.spill_files.load(std::memory_order_relaxed);
  s.spilled_tasks = c.spilled_tasks.load(std::memory_order_relaxed);
  s.spill_bytes_written =
      c.spill_bytes_written.load(std::memory_order_relaxed);
  s.spill_bytes_read = c.spill_bytes_read.load(std::memory_order_relaxed);
  s.steal_events = c.steal_events.load(std::memory_order_relaxed);
  s.stolen_tasks = c.stolen_tasks.load(std::memory_order_relaxed);
  s.steal_bytes = c.steal_bytes.load(std::memory_order_relaxed);
  s.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = c.cache_misses.load(std::memory_order_relaxed);
  s.cache_evictions = c.cache_evictions.load(std::memory_order_relaxed);
  s.pin_hits = c.pin_hits.load(std::memory_order_relaxed);
  s.remote_bytes = c.remote_bytes.load(std::memory_order_relaxed);
  s.task_suspensions = c.task_suspensions.load(std::memory_order_relaxed);
  s.pull_rounds = c.pull_rounds.load(std::memory_order_relaxed);
  s.pull_batches = c.pull_batches.load(std::memory_order_relaxed);
  s.pulled_vertices = c.pulled_vertices.load(std::memory_order_relaxed);
  s.pull_bytes = c.pull_bytes.load(std::memory_order_relaxed);
  s.tasks_completed = c.tasks_completed.load(std::memory_order_relaxed);
  return s;
}

double EngineCountersSnapshot::CacheHitRatio() const {
  const uint64_t served = cache_hits + pin_hits;
  const uint64_t demanded = served + cache_misses;
  if (demanded == 0) return 1.0;
  return static_cast<double>(served) / static_cast<double>(demanded);
}

double EngineReport::BusyImbalance() const {
  if (threads.empty()) return 1.0;
  double min_busy = threads[0].busy_seconds;
  double max_busy = threads[0].busy_seconds;
  for (const ThreadSummary& t : threads) {
    min_busy = std::min(min_busy, t.busy_seconds);
    max_busy = std::max(max_busy, t.busy_seconds);
  }
  if (min_busy <= 0.0) return max_busy > 0.0 ? 1e9 : 1.0;
  return max_busy / min_busy;
}

}  // namespace qcm
