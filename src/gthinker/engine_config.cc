#include "gthinker/engine_config.h"

#include "graph/csr_snapshot.h"
#include "net/wire.h"
#include "util/serde.h"

namespace qcm {

const char* DecomposeModeName(DecomposeMode mode) {
  switch (mode) {
    case DecomposeMode::kNone:
      return "none";
    case DecomposeMode::kSizeThreshold:
      return "size-threshold";
    case DecomposeMode::kTimeDelayed:
      return "time-delayed";
  }
  return "?";
}

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLRU:
      return "lru";
    case CachePolicy::kClock:
      return "clock";
    case CachePolicy::kTinyLFU:
      return "tinylfu";
  }
  return "?";
}

// Every config rejection names the exact check that fired: a bad flag
// should cost one glance at engine_config.cc, not a bisection of
// defaults that silently papered over it.
#define QCM_CONFIG_ERROR(msg)                                         \
  Status::InvalidArgument(std::string("engine_config.cc:") +          \
                          std::to_string(__LINE__) + ": " + (msg))

Status ParseCachePolicy(const std::string& name, CachePolicy* policy) {
  if (name == "lru") {
    *policy = CachePolicy::kLRU;
  } else if (name == "clock") {
    *policy = CachePolicy::kClock;
  } else if (name == "tinylfu") {
    *policy = CachePolicy::kTinyLFU;
  } else {
    return QCM_CONFIG_ERROR("unknown cache policy: \"" + name +
                            "\" (expected lru | clock | tinylfu)");
  }
  return Status::OK();
}

Status EngineConfig::Validate() const {
  if (num_machines < 1) {
    return QCM_CONFIG_ERROR("num_machines must be >= 1");
  }
  if (threads_per_machine < 1) {
    return QCM_CONFIG_ERROR("threads_per_machine must be >= 1");
  }
  if (batch_size < 1) {
    return QCM_CONFIG_ERROR("batch_size must be >= 1");
  }
  if (local_queue_capacity < batch_size) {
    return QCM_CONFIG_ERROR("local_queue_capacity must be >= batch_size");
  }
  if (global_queue_capacity < batch_size) {
    return QCM_CONFIG_ERROR("global_queue_capacity must be >= batch_size");
  }
  if (mode == DecomposeMode::kTimeDelayed && tau_time < 0) {
    return QCM_CONFIG_ERROR("tau_time must be >= 0");
  }
  if (steal_period_sec <= 0) {
    return QCM_CONFIG_ERROR("steal_period_sec must be > 0");
  }
  if (max_pull_batch < 1) {
    return QCM_CONFIG_ERROR("max_pull_batch must be >= 1");
  }
  if (net_latency_sec < 0) {
    return QCM_CONFIG_ERROR("net_latency_sec must be >= 0 (negative "
                            "latency is not a thing)");
  }
  if (net_coalesce_bytes < 0) {
    return QCM_CONFIG_ERROR("net_coalesce_bytes must be >= 0");
  }
  if (net_linger_usec < 0) {
    return QCM_CONFIG_ERROR("net_linger_usec must be >= 0 (a negative "
                            "linger is not a thing)");
  }
  if (net_coalesce_bytes >
      static_cast<int64_t>(kMaxFramePayload)) {
    return QCM_CONFIG_ERROR(
        "net_coalesce_bytes exceeds the wire frame cap (" +
        std::to_string(kMaxFramePayload) +
        "); no single buffer may out-size the largest legal frame");
  }
  if (net_linger_usec > 0 && net_coalesce_bytes == 0) {
    return QCM_CONFIG_ERROR(
        "contradictory: net_linger_usec is set but net_coalesce_bytes is "
        "0 (a linger bound without a coalescing buffer bounds nothing; "
        "set both or neither)");
  }
  if (net_coalesce_bytes > 0 && net_linger_usec == 0) {
    return QCM_CONFIG_ERROR(
        "contradictory: net_coalesce_bytes is set but net_linger_usec is "
        "0 (an unbounded linger would park a lone frame forever; set "
        "both or neither)");
  }
  if (spawn_prefetch && prefetch_limit == 0) {
    return QCM_CONFIG_ERROR(
        "contradictory: spawn_prefetch is on but prefetch_limit is 0 (a "
        "zero-depth prefetch pipeline admits nothing; raise the limit or "
        "disable prefetch)");
  }
  if (steal_rtt_reference_sec <= 0) {
    return QCM_CONFIG_ERROR("steal_rtt_reference_sec must be > 0");
  }
  if (steal_max_batch_factor < 1) {
    return QCM_CONFIG_ERROR(
        "contradictory: steal_max_batch_factor 0 would cap every steal "
        "batch at nothing; use 1 to disable latency scaling");
  }
  if (!checkpoint_dir.empty() && checkpoint_interval_sec <= 0) {
    return QCM_CONFIG_ERROR(
        "contradictory: checkpoint_dir is set but checkpoint_interval_sec "
        "is not > 0 (a checkpoint that never flushes recovers nothing)");
  }
  if (heartbeat_usec < 0) {
    return QCM_CONFIG_ERROR("heartbeat_usec must be >= 0");
  }
  if (mining.dense_threshold < 0) {
    return QCM_CONFIG_ERROR(
        "mining.dense_threshold must be >= 0 (0 disables the dense bitset "
        "kernels; a positive value is the max subgraph size that gets "
        "bitmap rows)");
  }
  if (trace_buffer_kb < 1) {
    return QCM_CONFIG_ERROR(
        "trace_buffer_kb must be >= 1 (a zero-capacity trace ring would "
        "drop every record; disable tracing by clearing trace_out "
        "instead)");
  }
  if (stats_interval_ms < 0) {
    return QCM_CONFIG_ERROR(
        "stats_interval_ms must be >= 0 (0 disables the telemetry "
        "sampler)");
  }
  if (graph_page_size <= 0) {
    return QCM_CONFIG_ERROR("graph_page_size must be > 0");
  }
  if (graph_page_size < static_cast<int64_t>(kCsrMinPageSize) ||
      (graph_page_size & (graph_page_size - 1)) != 0) {
    return QCM_CONFIG_ERROR(
        "graph_page_size must be a power of two >= " +
        std::to_string(kCsrMinPageSize) + ", got " +
        std::to_string(graph_page_size));
  }
  if (graph_memory_budget < 0) {
    return QCM_CONFIG_ERROR("graph_memory_budget must be >= 0 (0 = "
                            "unbounded resident adjacency)");
  }
  if (graph_memory_budget > 0 && graph_memory_budget < graph_page_size) {
    return QCM_CONFIG_ERROR(
        "graph_memory_budget " + std::to_string(graph_memory_budget) +
        " is smaller than one " + std::to_string(graph_page_size) +
        "-byte page (the paged store cannot hold even a single frame)");
  }
  if (graph_memory_budget > 0 && graph_snapshot.empty()) {
    return QCM_CONFIG_ERROR(
        "contradictory: graph_memory_budget is set but graph_snapshot is "
        "empty (a resident-adjacency budget only applies to a mmap'd "
        ".qcsr snapshot; pack one with qcm_pack or drop the budget)");
  }
  return mining.Validate();
}

#undef QCM_CONFIG_ERROR

void EncodeEngineConfig(const EngineConfig& config, Encoder* enc) {
  enc->PutU32(static_cast<uint32_t>(config.num_machines));
  enc->PutU32(static_cast<uint32_t>(config.threads_per_machine));
  enc->PutU32(config.tau_split);
  enc->PutDouble(config.tau_time);
  enc->PutU8(static_cast<uint8_t>(config.mode));
  enc->PutU64(config.local_queue_capacity);
  enc->PutU64(config.global_queue_capacity);
  enc->PutU64(config.batch_size);
  enc->PutString(config.spill_dir);
  enc->PutDouble(config.steal_period_sec);
  enc->PutU8(config.enable_stealing ? 1 : 0);
  enc->PutU64(config.vertex_cache_capacity);
  enc->PutU64(config.max_pull_batch);
  enc->PutU8(static_cast<uint8_t>(config.cache_policy));
  enc->PutU64(config.net_latency_ticks);
  enc->PutDouble(config.net_latency_sec);
  enc->PutI64(config.net_coalesce_bytes);
  enc->PutI64(config.net_linger_usec);
  enc->PutU8(config.spawn_prefetch ? 1 : 0);
  enc->PutU64(config.prefetch_limit);
  enc->PutDouble(config.steal_rtt_reference_sec);
  enc->PutU64(config.steal_max_batch_factor);
  enc->PutU8(config.record_task_log ? 1 : 0);
  enc->PutString(config.checkpoint_dir);
  enc->PutDouble(config.checkpoint_interval_sec);
  enc->PutI64(config.heartbeat_usec);
  enc->PutDouble(config.mining.gamma);
  enc->PutU32(config.mining.min_size);
  enc->PutU8(config.mining.use_cover_vertex ? 1 : 0);
  enc->PutU8(config.mining.use_critical_vertex ? 1 : 0);
  enc->PutU8(config.mining.use_upper_bound ? 1 : 0);
  enc->PutU8(config.mining.use_lower_bound ? 1 : 0);
  enc->PutU8(config.mining.use_degree_pruning ? 1 : 0);
  enc->PutU8(config.mining.use_lookahead ? 1 : 0);
  enc->PutU8(config.mining.quick_compat ? 1 : 0);
  enc->PutI64(config.mining.dense_threshold);
  enc->PutString(config.trace_out);
  enc->PutI64(config.trace_buffer_kb);
  enc->PutI64(config.stats_interval_ms);
  enc->PutString(config.graph_snapshot);
  enc->PutI64(config.graph_page_size);
  enc->PutI64(config.graph_memory_budget);
}

Status DecodeEngineConfig(Decoder* dec, EngineConfig* config) {
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  uint8_t u8 = 0;
  QCM_RETURN_IF_ERROR(dec->GetU32(&u32));
  config->num_machines = static_cast<int>(u32);
  QCM_RETURN_IF_ERROR(dec->GetU32(&u32));
  config->threads_per_machine = static_cast<int>(u32);
  QCM_RETURN_IF_ERROR(dec->GetU32(&config->tau_split));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&config->tau_time));
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  if (u8 > static_cast<uint8_t>(DecomposeMode::kTimeDelayed)) {
    return Status::Corruption("bad decompose mode tag");
  }
  config->mode = static_cast<DecomposeMode>(u8);
  QCM_RETURN_IF_ERROR(dec->GetU64(&u64));
  config->local_queue_capacity = u64;
  QCM_RETURN_IF_ERROR(dec->GetU64(&u64));
  config->global_queue_capacity = u64;
  QCM_RETURN_IF_ERROR(dec->GetU64(&u64));
  config->batch_size = u64;
  QCM_RETURN_IF_ERROR(dec->GetString(&config->spill_dir));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&config->steal_period_sec));
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->enable_stealing = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetU64(&u64));
  config->vertex_cache_capacity = u64;
  QCM_RETURN_IF_ERROR(dec->GetU64(&u64));
  config->max_pull_batch = u64;
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  if (u8 > static_cast<uint8_t>(CachePolicy::kTinyLFU)) {
    return Status::Corruption("bad cache policy tag");
  }
  config->cache_policy = static_cast<CachePolicy>(u8);
  QCM_RETURN_IF_ERROR(dec->GetU64(&config->net_latency_ticks));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&config->net_latency_sec));
  QCM_RETURN_IF_ERROR(dec->GetI64(&config->net_coalesce_bytes));
  QCM_RETURN_IF_ERROR(dec->GetI64(&config->net_linger_usec));
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->spawn_prefetch = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetU64(&u64));
  config->prefetch_limit = u64;
  QCM_RETURN_IF_ERROR(dec->GetDouble(&config->steal_rtt_reference_sec));
  QCM_RETURN_IF_ERROR(dec->GetU64(&config->steal_max_batch_factor));
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->record_task_log = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetString(&config->checkpoint_dir));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&config->checkpoint_interval_sec));
  QCM_RETURN_IF_ERROR(dec->GetI64(&config->heartbeat_usec));
  QCM_RETURN_IF_ERROR(dec->GetDouble(&config->mining.gamma));
  QCM_RETURN_IF_ERROR(dec->GetU32(&config->mining.min_size));
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->mining.use_cover_vertex = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->mining.use_critical_vertex = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->mining.use_upper_bound = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->mining.use_lower_bound = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->mining.use_degree_pruning = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->mining.use_lookahead = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetU8(&u8));
  config->mining.quick_compat = u8 != 0;
  QCM_RETURN_IF_ERROR(dec->GetI64(&config->mining.dense_threshold));
  QCM_RETURN_IF_ERROR(dec->GetString(&config->trace_out));
  QCM_RETURN_IF_ERROR(dec->GetI64(&config->trace_buffer_kb));
  QCM_RETURN_IF_ERROR(dec->GetI64(&config->stats_interval_ms));
  QCM_RETURN_IF_ERROR(dec->GetString(&config->graph_snapshot));
  QCM_RETURN_IF_ERROR(dec->GetI64(&config->graph_page_size));
  QCM_RETURN_IF_ERROR(dec->GetI64(&config->graph_memory_budget));
  return Status::OK();
}

}  // namespace qcm
