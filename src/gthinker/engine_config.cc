#include "gthinker/engine_config.h"

namespace qcm {

const char* DecomposeModeName(DecomposeMode mode) {
  switch (mode) {
    case DecomposeMode::kNone:
      return "none";
    case DecomposeMode::kSizeThreshold:
      return "size-threshold";
    case DecomposeMode::kTimeDelayed:
      return "time-delayed";
  }
  return "?";
}

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLRU:
      return "lru";
    case CachePolicy::kClock:
      return "clock";
  }
  return "?";
}

Status EngineConfig::Validate() const {
  if (num_machines < 1) {
    return Status::InvalidArgument("num_machines must be >= 1");
  }
  if (threads_per_machine < 1) {
    return Status::InvalidArgument("threads_per_machine must be >= 1");
  }
  if (batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (local_queue_capacity < batch_size) {
    return Status::InvalidArgument(
        "local_queue_capacity must be >= batch_size");
  }
  if (global_queue_capacity < batch_size) {
    return Status::InvalidArgument(
        "global_queue_capacity must be >= batch_size");
  }
  if (mode == DecomposeMode::kTimeDelayed && tau_time < 0) {
    return Status::InvalidArgument("tau_time must be >= 0");
  }
  if (steal_period_sec <= 0) {
    return Status::InvalidArgument("steal_period_sec must be > 0");
  }
  if (max_pull_batch < 1) {
    return Status::InvalidArgument("max_pull_batch must be >= 1");
  }
  if (net_latency_sec < 0) {
    return Status::InvalidArgument("net_latency_sec must be >= 0");
  }
  return mining.Validate();
}

}  // namespace qcm
