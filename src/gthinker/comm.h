// CommFabric: the single asynchronous message substrate for every
// cross-machine transfer of the simulated cluster (paper §5's codesign:
// all network traffic -- batched vertex pulls and master-coordinated big-
// task steals -- overlaps with mining instead of blocking it).
//
// Each transfer is a typed message (kPullRequest, kPullResponse,
// kStealBatch) carrying a serialized payload. A message enqueued while
// the destination machine is at service tick T becomes deliverable at
// tick T + net_latency_ticks, and no earlier than net_latency_sec of
// wall time after the send. Compers advance their machine's tick once
// per scheduling loop (Engine::Comper::ServiceComm), so with both knobs
// at 0 a message is delivered on the destination's next service -- the
// pre-fabric synchronous behavior -- while positive latency parks the
// message in flight, which is exactly the window the VertexCache and the
// big-task queues must hide.
//
// Delivery is FIFO per destination: due times are monotone in enqueue
// order (ticks and wall clock both only move forward), so popping from
// the inbox head while the head is due preserves send order.
//
// The fabric never blocks and never loses messages: pending-task
// accounting keeps the engine alive while anything meaningful is in
// flight (parked tasks and stolen batches are still counted in
// Engine::pending_), and Drain() hands back undelivered messages at
// termination for inspection.
//
// Process-per-machine mode (paper §5 run for real): with a Transport
// injected, this process hosts exactly one machine (the transport's
// rank). Send() to any other machine frames the message as a kData wire
// frame and ships it over the transport instead of enqueueing it
// in-process; the transport's receive thread hands arriving frames back
// through Inject(), which enqueues them into the local inbox under the
// same tick/wall-clock latency model. Everything downstream of the inbox
// -- Service cadence, FIFO order, drain semantics, metrics -- is one code
// path shared by both modes, so a message's meaning never depends on
// whether it crossed a thread boundary or a socket.

#ifndef QCM_GTHINKER_COMM_H_
#define QCM_GTHINKER_COMM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gthinker/metrics.h"
#include "net/transport.h"
#include "sched/rtt.h"
#include "util/status.h"
#include "util/timer.h"

namespace qcm {

/// Every cross-machine transfer is exactly one of these.
enum class MessageType : uint8_t {
  /// Batched vertex-pull request: a U32Vector of wanted vertex ids,
  /// split at EngineConfig::max_pull_batch per message.
  kPullRequest = 0,
  /// Batched pull response: ids plus their adjacency lists.
  kPullResponse = 1,
  /// A batch of stolen big tasks (count + concatenated task encodings).
  kStealBatch = 2,
};

const char* MessageTypeName(MessageType type);

/// Number of tasks in a kStealBatch payload without decoding the tasks
/// (the receiving process must fold the count into its pending-task
/// accounting before the batch is even injected into the inbox).
StatusOr<uint32_t> StealBatchTaskCount(const std::string& payload);

/// One in-flight transfer.
struct Message {
  MessageType type = MessageType::kPullRequest;
  int src = 0;
  int dst = 0;
  std::string payload;
  /// Destination service tick at enqueue / first tick deliverable.
  uint64_t enqueue_tick = 0;
  uint64_t due_tick = 0;
  /// Fabric clock (seconds since construction) at enqueue / earliest
  /// wall-clock delivery.
  double enqueue_sec = 0.0;
  double due_sec = 0.0;
  /// Process-per-machine mode only: receiver-measured wire transit
  /// (sender stamp to receive thread, microseconds) of a message that
  /// arrived over the transport -- coalescing dwell plus wire time.
  /// Zero for in-process messages.
  uint64_t wire_transit_usec = 0;
};

class CommFabric {
 public:
  /// `latency_ticks` / `latency_sec` model the network delay of every
  /// message (see file comment). `counters` may be null. `transport`
  /// null = simulated mode (all machines in-process); non-null =
  /// process-per-machine mode, where only the transport's rank is local
  /// and remote sends ride the wire (see file comment).
  CommFabric(int num_machines, uint64_t latency_ticks, double latency_sec,
             EngineCounters* counters, Transport* transport = nullptr);

  CommFabric(const CommFabric&) = delete;
  CommFabric& operator=(const CommFabric&) = delete;

  /// Optional probe returning how many compers of a machine are busy
  /// mining; sampled at enqueue time for the overlap-ratio metric.
  void SetBusyProbe(std::function<int(int machine)> probe);

  /// Optional per-link latency tracker (sched/rtt.h): every delivery
  /// folds its observed enqueue->delivery latency into the (src, dst)
  /// EWMA, which is what the latency-aware steal planner reads. Must
  /// outlive the fabric.
  void SetRttTracker(LinkRttTracker* tracker) { rtt_ = tracker; }

  /// Enqueues a message. Never blocks; the destination's next due
  /// service tick will deliver it. In process-per-machine mode a remote
  /// destination ships the message over the transport instead.
  void Send(MessageType type, int src, int dst, std::string payload);

  /// Process-per-machine receive path: enqueues a message that arrived
  /// over the transport into the local machine's inbox under the same
  /// latency model as an in-process send. Called by the transport's
  /// receive thread (via the engine's data handler).
  /// `wire_transit_usec` is the receiver-measured transit time of the
  /// frame (sender send-timestamp to receive thread): it is added to the
  /// message's observed delivery latency so the latency metrics and the
  /// steal planner's RTT EWMAs see real wire time, not just inbox dwell.
  void Inject(MessageType type, int src, std::string payload,
              uint64_t wire_transit_usec = 0);

  /// Advances `dst`'s service tick and pops every message now due, in
  /// enqueue order. Called by the destination machine's compers once per
  /// scheduling loop.
  std::vector<Message> Service(int dst);

  /// Pops every undelivered message for `dst` regardless of due time
  /// (termination drain; counted in msg_drained, not msg_delivered).
  std::vector<Message> Drain(int dst);

  /// Undelivered messages across all destinations.
  size_t InFlight() const;

  /// Undelivered payload bytes across all destinations.
  uint64_t InFlightBytes() const;

  /// Current service tick of `dst`.
  uint64_t Tick(int dst) const;

  uint64_t latency_ticks() const { return latency_ticks_; }
  double latency_sec() const { return latency_sec_; }

 private:
  struct Inbox {
    mutable std::mutex mu;
    std::deque<Message> q;
    uint64_t tick = 0;
  };

  void CountDelivery(const Message& m, double now);
  void Enqueue(Message m, bool count_send);

  uint64_t latency_ticks_;
  double latency_sec_;
  EngineCounters* counters_;
  Transport* transport_;
  LinkRttTracker* rtt_ = nullptr;
  /// The one machine hosted by this process (-1 in simulated mode).
  int local_rank_;
  std::function<int(int)> busy_probe_;
  WallTimer clock_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_COMM_H_
