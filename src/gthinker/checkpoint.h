// Durable per-rank mining progress for worker fault tolerance.
//
// Each rank keeps ONE append-only log at <checkpoint_dir>/rank<R>/log.
// Records are framed [type u8][len u32][payload][FNV-1a u64 of payload]
// and come in two types: a kResultRecord carries one emitted maximal-
// candidate vertex set, a kRootDoneRecord marks one spawn root as fully
// mined (every task of its subtree reached kDone on this rank, none were
// shipped away). A replacement worker of the same rank replays the log:
// result records become recovered results appended to its final report,
// root-done records become spawn roots it skips entirely.
//
// Durability model: appends are buffered in the process's stdio buffer
// and flushed to the kernel page cache every checkpoint_interval_sec.
// A SIGKILL (the failure this subsystem exists for) does not lose page-
// cache bytes, so no fsync is needed; only whatever sat in the stdio
// buffer since the last flush is lost, and the single in-order stream
// guarantees a root-done record can never become durable before the
// result records of its subtree -- a lost tail therefore only means the
// replacement re-mines those roots, and the exact duplicate-set dedup in
// FilterMaximal makes the doubly-mined results harmless. A torn tail
// (flush cut mid-record) is detected by the length/checksum framing and
// discarded on load.
//
// Alongside the log the rank periodically rewrites a human-readable
// `manifest` (tmp + rename, so it is always either the old or the new
// version) with its spawn cursor, task counters and spill-file listing --
// observability for operators poking at a crash, not a recovery input.

#ifndef QCM_GTHINKER_CHECKPOINT_H_
#define QCM_GTHINKER_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "quick/quasi_clique.h"
#include "util/status.h"

namespace qcm {

class CheckpointLog {
 public:
  static constexpr uint8_t kResultRecord = 1;
  static constexpr uint8_t kRootDoneRecord = 2;

  /// What a replacement worker recovers from its predecessor's log.
  struct LoadResult {
    std::vector<VertexSet> results;
    std::unordered_set<VertexId> completed_roots;
    uint64_t records = 0;
    /// Bytes discarded at the tail (torn or corrupt final record).
    uint64_t torn_bytes = 0;
  };

  CheckpointLog() = default;
  ~CheckpointLog();
  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  /// Opens <dir>/log (creating <dir> if needed). Epoch 0 truncates any
  /// stale log from a previous run; epoch > 0 first replays the previous
  /// incarnation's records into *replay, then appends after the last
  /// intact record.
  Status Open(const std::string& dir, uint32_t epoch,
              double flush_interval_sec, LoadResult* replay);

  bool is_open() const { return file_ != nullptr; }

  /// Thread-safe appends; each may trigger an interval-driven flush.
  void AppendResult(const VertexSet& result);
  void AppendRootDone(VertexId root);

  /// Forces buffered records to the page cache.
  void Flush();

  /// Atomically (tmp + rename) rewrites <dir>/manifest with `contents`.
  Status WriteManifest(const std::string& contents);

  uint64_t flushes() const;
  uint64_t bytes_appended() const;

  /// Record codec, exposed so tests can byte-pin the on-disk format.
  static std::string EncodeResultRecord(const VertexSet& result);
  static std::string EncodeRootDoneRecord(VertexId root);
  /// Parses records from `bytes` until the end or the first torn/corrupt
  /// record (everything after it is counted into torn_bytes -- a cut can
  /// only be at the tail because appends are a single in-order stream).
  static void ParseRecords(const std::string& bytes, LoadResult* out);

 private:
  void AppendLocked(const std::string& record);

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string dir_;
  int64_t flush_interval_usec_ = 0;
  int64_t last_flush_usec_ = 0;
  uint64_t flushes_ = 0;
  uint64_t bytes_appended_ = 0;
};

/// Tracks, per locally-spawned root, how many of its subtree's tasks are
/// still outstanding on this rank, and appends a kRootDoneRecord the
/// moment the last one completes -- unless any task of the subtree was
/// shipped to another rank ("tainted"): a shipped task's completion is
/// invisible here, so a tainted root is never declared done and a
/// replacement re-mines it in full (the exact-duplicate dedup downstream
/// absorbs the overlap). Roots stolen IN from other ranks are absent from
/// the map and every call is a no-op for them; owned-root sets are
/// disjoint across ranks, so membership is unambiguous.
class RootProgress {
 public:
  explicit RootProgress(CheckpointLog* log) : log_(log) {}

  /// A root task was spawned locally: subtree outstanding = 1.
  void OnSpawn(VertexId root);
  /// A decomposition added one more task under `root` (no-op if the root
  /// is not locally tracked -- its subtask came from a stolen-in task).
  void OnSubtask(VertexId root);
  /// One task under `root` reached kDone. The final mutex-ordered
  /// decrement happens-after every sibling task's result append, so the
  /// root-done record it writes is always ordered after all of the
  /// subtree's results in the log.
  void OnTaskDone(VertexId root);
  /// A task under `root` was shipped to another rank.
  void Taint(VertexId root);

  size_t tracked() const;

 private:
  struct State {
    uint64_t outstanding = 0;
    bool tainted = false;
  };
  mutable std::mutex mu_;
  std::unordered_map<VertexId, State> roots_;
  CheckpointLog* log_;
};

}  // namespace qcm

#endif  // QCM_GTHINKER_CHECKPOINT_H_
