#include "graph/ego_builder.h"

#include <algorithm>
#include <cstring>

namespace qcm {

namespace {

// flags_ bits (valid while mark_epoch_[v] == epoch_).
constexpr uint8_t kOneHop = 1;    // v is in t.N = {root} ∪ 1-hop frontier
constexpr uint8_t kExcluded = 2;  // V2: 1-hop vertex pruned by Theorem 2
constexpr uint8_t kInBall = 4;    // pulled 2-hop frontier member

inline uint64_t PackEdge(uint32_t u, uint32_t v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

// ---------------------------------------------------------------------------
// EgoScratch
// ---------------------------------------------------------------------------

void EgoScratch::Reset(uint32_t num_vertices) {
  ++epoch_;
  if (epoch_ == 0) HandleEpochWrap();
  if (num_vertices > 0) EnsureVertex(num_vertices - 1);
  slot_vid_.clear();
  slot_alive_.clear();
  slot_adj_begin_.clear();
  slot_adj_end_.clear();
  adj_pool_.clear();
}

void EgoScratch::HandleEpochWrap() {
  // Reached only after 2^32 resets: invalidate every stale epoch mark.
  std::fill(mark_epoch_.begin(), mark_epoch_.end(), 0u);
  std::fill(slot_epoch_.begin(), slot_epoch_.end(), 0u);
  epoch_ = 1;
}

void EgoScratch::EnsureVertex(VertexId v) {
  if (v < mark_epoch_.size()) return;
  const size_t size = static_cast<size_t>(v) + 1;
  mark_epoch_.resize(size, 0);
  flags_.resize(size, 0);
  slot_epoch_.resize(size, 0);
  slot_of_.resize(size, 0);
}

uint64_t EgoScratch::MemoryBytes() const {
  return mark_epoch_.capacity() * sizeof(uint32_t) +
         flags_.capacity() * sizeof(uint8_t) +
         slot_epoch_.capacity() * sizeof(uint32_t) +
         slot_of_.capacity() * sizeof(uint32_t) +
         slot_vid_.capacity() * sizeof(VertexId) +
         slot_alive_.capacity() * sizeof(uint8_t) +
         (slot_adj_begin_.capacity() + slot_adj_end_.capacity()) *
             sizeof(uint32_t) +
         (adj_pool_.capacity() + frontier_.capacity() +
          filter_buf_.capacity() + phantom_buf_.capacity() +
          vids_buf_.capacity()) *
             sizeof(VertexId) +
         local_buf_.capacity() * sizeof(uint32_t) +
         cursor_buf_.capacity() * sizeof(uint32_t) +
         edge_buf_.capacity() * sizeof(uint64_t);
}

// ---------------------------------------------------------------------------
// EgoBuilder: staging primitives
// ---------------------------------------------------------------------------

EgoBuilder::EgoBuilder()
    : owned_(std::make_unique<EgoScratch>()), scratch_(owned_.get()) {
  scratch_->Reset(0);
}

EgoBuilder::EgoBuilder(EgoScratch* scratch) : scratch_(scratch) {
  scratch_->Reset(0);
}

void EgoBuilder::Reset() { scratch_->Reset(0); }

void EgoBuilder::Stage(VertexId v, std::span<const VertexId> adj) {
  EgoScratch& sc = *scratch_;
  sc.EnsureVertex(v);
  const uint32_t begin = static_cast<uint32_t>(sc.adj_pool_.size());
  sc.adj_pool_.insert(sc.adj_pool_.end(), adj.begin(), adj.end());
  const uint32_t end = static_cast<uint32_t>(sc.adj_pool_.size());
  if (sc.slot_epoch_[v] == sc.epoch_) {
    // Restage: overwrite in place (the previous pool range is simply
    // abandoned until the next Reset).
    const uint32_t s = sc.slot_of_[v];
    sc.slot_adj_begin_[s] = begin;
    sc.slot_adj_end_[s] = end;
    sc.slot_alive_[s] = 1;
    return;
  }
  sc.slot_epoch_[v] = sc.epoch_;
  sc.slot_of_[v] = static_cast<uint32_t>(sc.slot_vid_.size());
  sc.slot_vid_.push_back(v);
  sc.slot_alive_.push_back(1);
  sc.slot_adj_begin_.push_back(begin);
  sc.slot_adj_end_.push_back(end);
}

bool EgoBuilder::IsStaged(VertexId v) const {
  const EgoScratch& sc = *scratch_;
  return v < sc.slot_epoch_.size() && sc.slot_epoch_[v] == sc.epoch_ &&
         sc.slot_alive_[sc.slot_of_[v]] != 0;
}

size_t EgoBuilder::StagedCount() const {
  const EgoScratch& sc = *scratch_;
  size_t count = 0;
  for (uint8_t a : sc.slot_alive_) count += a;
  return count;
}

size_t EgoBuilder::AdjLength(VertexId v) const {
  const EgoScratch& sc = *scratch_;
  if (!IsStaged(v)) return 0;
  const uint32_t s = sc.slot_of_[v];
  return sc.slot_adj_end_[s] - sc.slot_adj_begin_[s];
}

void EgoBuilder::CollectPhantomTargets() const {
  EgoScratch& sc = *scratch_;
  sc.phantom_buf_.clear();
  const size_t slots = sc.slot_vid_.size();
  for (size_t s = 0; s < slots; ++s) {
    if (!sc.slot_alive_[s]) continue;
    for (uint32_t i = sc.slot_adj_begin_[s]; i < sc.slot_adj_end_[s]; ++i) {
      const VertexId w = sc.adj_pool_[i];
      if (!IsStaged(w)) sc.phantom_buf_.push_back(w);
    }
  }
  std::sort(sc.phantom_buf_.begin(), sc.phantom_buf_.end());
  sc.phantom_buf_.erase(
      std::unique(sc.phantom_buf_.begin(), sc.phantom_buf_.end()),
      sc.phantom_buf_.end());
}

std::vector<VertexId> EgoBuilder::PhantomTargets() const {
  CollectPhantomTargets();
  return scratch_->phantom_buf_;
}

void EgoBuilder::PeelToKCore(uint32_t k) {
  // Multi-pass fixpoint, mirroring Alg. 6 line 10: drop adjacency entries
  // that point at peeled staged vertices, then peel newly under-degree
  // vertices. Entries pointing at never-staged ("phantom") vertices are
  // retained and count toward the degree ("a destination w that is 2 hops
  // from v stays untouched ... though w is counted for degree checking").
  EgoScratch& sc = *scratch_;
  const size_t slots = sc.slot_vid_.size();
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < slots; ++s) {
      if (!sc.slot_alive_[s]) continue;
      // Compact away entries whose target is a peeled staged vertex.
      uint32_t write = sc.slot_adj_begin_[s];
      for (uint32_t i = sc.slot_adj_begin_[s]; i < sc.slot_adj_end_[s];
           ++i) {
        const VertexId w = sc.adj_pool_[i];
        const bool dead = w < sc.slot_epoch_.size() &&
                          sc.slot_epoch_[w] == sc.epoch_ &&
                          sc.slot_alive_[sc.slot_of_[w]] == 0;
        if (!dead) sc.adj_pool_[write++] = w;
      }
      sc.slot_adj_end_[s] = write;
      if (write - sc.slot_adj_begin_[s] < k) {
        sc.slot_alive_[s] = 0;
        changed = true;
      }
    }
  }
}

LocalGraph EgoBuilder::Build() const {
  EgoScratch& sc = *scratch_;
  const size_t slots = sc.slot_vid_.size();

  sc.vids_buf_.clear();
  for (size_t s = 0; s < slots; ++s) {
    if (sc.slot_alive_[s]) sc.vids_buf_.push_back(sc.slot_vid_[s]);
  }
  std::sort(sc.vids_buf_.begin(), sc.vids_buf_.end());
  const uint32_t n = static_cast<uint32_t>(sc.vids_buf_.size());

  // slot -> local id of the sorted order (n = peeled/absent).
  sc.local_buf_.assign(slots, n);
  for (uint32_t i = 0; i < n; ++i) {
    sc.local_buf_[sc.slot_of_[sc.vids_buf_[i]]] = i;
  }

  // An edge survives iff either endpoint listed it and both are alive;
  // dedup via a packed sorted edge list.
  sc.edge_buf_.clear();
  for (size_t s = 0; s < slots; ++s) {
    if (!sc.slot_alive_[s]) continue;
    const uint32_t lu = sc.local_buf_[s];
    for (uint32_t i = sc.slot_adj_begin_[s]; i < sc.slot_adj_end_[s]; ++i) {
      const VertexId w = sc.adj_pool_[i];
      if (!IsStaged(w)) continue;  // phantom (never staged or peeled)
      const uint32_t lw = sc.local_buf_[sc.slot_of_[w]];
      if (lw == lu) continue;  // self-loop
      sc.edge_buf_.push_back(PackEdge(std::min(lu, lw), std::max(lu, lw)));
    }
  }
  std::sort(sc.edge_buf_.begin(), sc.edge_buf_.end());
  sc.edge_buf_.erase(std::unique(sc.edge_buf_.begin(), sc.edge_buf_.end()),
                     sc.edge_buf_.end());

  LocalGraph g;
  g.vids_.assign(sc.vids_buf_.begin(), sc.vids_buf_.end());
  g.offsets_.assign(n + 1, 0);
  for (uint64_t e : sc.edge_buf_) {
    ++g.offsets_[(e >> 32) + 1];
    ++g.offsets_[(e & 0xffffffffu) + 1];
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(sc.edge_buf_.size() * 2);
  sc.cursor_buf_.assign(g.offsets_.begin(), g.offsets_.end() - 1);
  // Edges are sorted by (min, max): every vertex first receives its
  // smaller endpoints in ascending order, then its larger ones, so each
  // final adjacency range is already sorted.
  for (uint64_t e : sc.edge_buf_) {
    const uint32_t u = static_cast<uint32_t>(e >> 32);
    const uint32_t v = static_cast<uint32_t>(e & 0xffffffffu);
    g.adj_[sc.cursor_buf_[u]++] = v;
    g.adj_[sc.cursor_buf_[v]++] = u;
  }
  if (n > 0 && n <= dense_threshold_) g.BuildDenseRows();
  return g;
}

// ---------------------------------------------------------------------------
// EgoBuilder: Alg. 6-7, phased and end to end
// ---------------------------------------------------------------------------

void EgoBuilder::MarkFlag(VertexId v, uint8_t bit) {
  EgoScratch& sc = *scratch_;
  sc.EnsureVertex(v);
  if (sc.mark_epoch_[v] != sc.epoch_) {
    sc.mark_epoch_[v] = sc.epoch_;
    sc.flags_[v] = 0;
  }
  sc.flags_[v] |= bit;
}

bool EgoBuilder::HasFlag(VertexId v, uint8_t bit) const {
  const EgoScratch& sc = *scratch_;
  return v < sc.mark_epoch_.size() && sc.mark_epoch_[v] == sc.epoch_ &&
         (sc.flags_[v] & bit) != 0;
}

bool EgoBuilder::BuildEgoFirstHop(EgoVertexSource& source, VertexId root,
                                  uint32_t k) {
  EgoScratch& sc = *scratch_;
  sc.Reset(0);

  // ---- Iteration 1 (Alg. 6) ----
  // Pull only ids larger than the root (set-enumeration discipline); split
  // the frontier into V1 (degree >= k, staged) and V2 (pruned by
  // Theorem 2, excluded from every staged adjacency of this iteration).
  MarkFlag(root, kOneHop);
  sc.frontier_.clear();
  for (VertexId u : source.Adjacency(root)) {
    if (u <= root) continue;
    MarkFlag(u, kOneHop);
    if (source.Degree(u) >= k) {
      sc.frontier_.push_back(u);
    } else {
      MarkFlag(u, kExcluded);
    }
  }
  if (sc.frontier_.empty()) return false;

  // Root's adjacency inside t.g is exactly V1.
  Stage(root, sc.frontier_);
  const size_t v1_size = sc.frontier_.size();
  for (size_t i = 0; i < v1_size; ++i) {
    const VertexId u = sc.frontier_[i];
    sc.filter_buf_.clear();
    for (VertexId w : source.Adjacency(u)) {
      if (w >= root && !HasFlag(w, kExcluded)) sc.filter_buf_.push_back(w);
    }
    Stage(u, sc.filter_buf_);
  }
  PeelToKCore(k);
  return IsStaged(root);
}

void EgoBuilder::MarkSecondHopBall() {
  // The 2-hop frontier: staged adjacency targets that are neither staged
  // nor within one hop. B = t.N ∪ pulled second hop; entries outside B
  // would be 3 hops from the root and cannot share a diameter-2
  // quasi-clique with it (Theorem 1).
  EgoScratch& sc = *scratch_;
  CollectPhantomTargets();
  sc.frontier_.clear();
  for (VertexId w : sc.phantom_buf_) {
    if (!HasFlag(w, kOneHop)) {
      sc.frontier_.push_back(w);
      MarkFlag(w, kInBall);
    }
  }
}

std::vector<VertexId> EgoBuilder::SecondHopPullSet(EgoVertexSource& source,
                                                   uint32_t k) {
  MarkSecondHopBall();
  // Only ball members that survive the Theorem-2 degree filter are ever
  // read by Alg. 7 -- that is the pull set.
  EgoScratch& sc = *scratch_;
  std::vector<VertexId> pulls;
  pulls.reserve(sc.frontier_.size());
  for (VertexId w : sc.frontier_) {
    if (source.Degree(w) >= k) pulls.push_back(w);
  }
  return pulls;
}

LocalGraph EgoBuilder::BuildEgoSecondHop(EgoVertexSource& source,
                                         VertexId root, uint32_t k,
                                         uint32_t min_size) {
  // ---- Iteration 2 (Alg. 7) ----
  EgoScratch& sc = *scratch_;
  const size_t second_hop_size = sc.frontier_.size();
  for (size_t i = 0; i < second_hop_size; ++i) {
    const VertexId w = sc.frontier_[i];
    if (source.Degree(w) < k) continue;  // Theorem 2 again
    sc.filter_buf_.clear();
    for (VertexId x : source.Adjacency(w)) {
      if (x >= root && (HasFlag(x, kOneHop) || HasFlag(x, kInBall))) {
        sc.filter_buf_.push_back(x);
      }
    }
    Stage(w, sc.filter_buf_);
  }
  PeelToKCore(k);
  if (!IsStaged(root)) return LocalGraph();

  LocalGraph g = Build();
  if (g.n() < min_size) return LocalGraph();
  return g;
}

LocalGraph EgoBuilder::BuildEgo(EgoVertexSource& source, VertexId root,
                                uint32_t k, uint32_t min_size) {
  if (!BuildEgoFirstHop(source, root, k)) return LocalGraph();
  MarkSecondHopBall();
  return BuildEgoSecondHop(source, root, k, min_size);
}

}  // namespace qcm
