// Synthetic graph generators. These stand in for the paper's SNAP / KONECT /
// NCBI-GEO datasets, which are not redistributable offline (see DESIGN.md
// §5): gene-coexpression inputs are modeled as overlapping planted dense
// modules, social/collaboration networks as power-law backgrounds with
// planted near-gamma-dense communities. All generators are deterministic
// for a given seed.

#ifndef QCM_GRAPH_GENERATORS_H_
#define QCM_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace qcm {

/// G(n, m) Erdos-Renyi: m distinct uniform random edges.
StatusOr<Graph> GenErdosRenyi(uint32_t n, uint64_t m, uint64_t seed);

/// Barabasi-Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `attach` existing vertices chosen
/// proportionally to degree. Produces a power-law degree distribution.
StatusOr<Graph> GenBarabasiAlbert(uint32_t n, uint32_t attach, uint64_t seed);

/// R-MAT / Kronecker-style sampler with partition probabilities (a, b, c)
/// and d = 1-a-b-c. n = 2^scale vertices; duplicate samples are collapsed,
/// so the realized edge count can be slightly below `edges`.
StatusOr<Graph> GenRMAT(uint32_t scale, uint64_t edges, double a, double b,
                        double c, uint64_t seed);

/// Background topology for planted-community graphs.
enum class BackgroundModel {
  kErdosRenyi,
  kPowerLaw,  // Barabasi-Albert
};

/// Configuration for GenPlantedCommunities.
struct PlantedConfig {
  uint32_t num_vertices = 1000;
  /// Background edges (ER) or attachment count (power-law).
  uint64_t background_edges = 3000;
  BackgroundModel background = BackgroundModel::kPowerLaw;
  uint32_t ba_attach = 2;

  /// Number of dense communities to plant.
  uint32_t num_communities = 10;
  /// Community size range (inclusive).
  uint32_t community_min = 10;
  uint32_t community_max = 20;
  /// Probability of each intra-community edge. Setting this above the
  /// mining gamma plants whp-valid gamma-quasi-cliques.
  double intra_density = 0.95;
  /// Fraction of each community's members shared with the previous one
  /// (models the overlapping gene modules / social circles the paper
  /// motivates).
  double overlap_fraction = 0.0;

  uint64_t seed = 1;
};

/// Power-law (or ER) background with planted near-clique communities.
/// Returns the graph and, via out-param if non-null, the planted membership
/// lists (for test oracles).
StatusOr<Graph> GenPlantedCommunities(
    const PlantedConfig& config,
    std::vector<std::vector<VertexId>>* communities = nullptr);

/// Parses the tools' --gen-planted spec ("n=5000,communities=10,
/// size=16..20,density=0.95,overlap=0.3,edges=12000") into a
/// PlantedConfig with the given seed. Shared by qcm_mine and qcm_worker
/// so a cluster job and its single-process reference build the exact same
/// graph from the same spec string.
StatusOr<PlantedConfig> ParsePlantedSpec(const std::string& spec,
                                         uint64_t seed);

/// The 9-vertex illustrative graph of the paper's Figure 4
/// (vertices a..i -> ids 0..8). {a,b,c,d} and {a,b,c,d,e} are
/// 0.6-quasi-cliques; B(e) = {f,g,h,i}.
Graph PaperFigure4Graph();

}  // namespace qcm

#endif  // QCM_GRAPH_GENERATORS_H_
