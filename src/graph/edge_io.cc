#include "graph/edge_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace qcm {

namespace {

/// "file:line: why: 'offending text'" -- the offending line is clipped and
/// stripped of its newline so the message stays one line.
Status MalformedLine(const std::string& path, size_t lineno,
                     const std::string& why, const char* line) {
  std::string excerpt(line);
  if (!excerpt.empty() && excerpt.back() == '\n') excerpt.pop_back();
  constexpr size_t kMaxExcerpt = 60;
  if (excerpt.size() > kMaxExcerpt) {
    excerpt.resize(kMaxExcerpt);
    excerpt += "...";
  }
  return Status::Corruption(path + ":" + std::to_string(lineno) + ": " +
                            why + ": '" + excerpt + "'");
}

/// Parses a non-negative decimal id at *p (advancing past it). False on a
/// missing digit or uint64 overflow. Explicit so that signs, hex and other
/// sscanf leniencies are rejected instead of silently misread.
bool ParseId(const char** p, uint64_t* out) {
  const char* q = *p;
  if (*q < '0' || *q > '9') return false;
  uint64_t value = 0;
  while (*q >= '0' && *q <= '9') {
    const uint64_t digit = static_cast<uint64_t>(*q - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
    ++q;
  }
  *p = q;
  *out = value;
  return true;
}

}  // namespace

StatusOr<LoadedGraph> LoadEdgeList(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::vector<std::pair<uint64_t, uint64_t>> raw_edges;
  char line[512];
  size_t lineno = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    if (std::strchr(line, '\n') == nullptr && !std::feof(f)) {
      std::fclose(f);
      return MalformedLine(path, lineno, "edge line too long", line);
    }
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\r' || *p == '\0') {
      continue;
    }
    uint64_t u = 0, v = 0;
    if (!ParseId(&p, &u)) {
      std::fclose(f);
      return MalformedLine(path, lineno,
                           "malformed edge line (expected source id)",
                           line);
    }
    if (*p != ' ' && *p != '\t') {
      std::fclose(f);
      return MalformedLine(
          path, lineno, "malformed edge line (expected \"u v\")", line);
    }
    while (*p == ' ' || *p == '\t') ++p;
    if (!ParseId(&p, &v)) {
      std::fclose(f);
      return MalformedLine(path, lineno,
                           "malformed edge line (expected target id)",
                           line);
    }
    while (*p == ' ' || *p == '\t') ++p;
    if (*p != '\n' && *p != '\r' && *p != '\0') {
      std::fclose(f);
      return MalformedLine(
          path, lineno,
          "malformed edge line (trailing characters after edge)", line);
    }
    raw_edges.emplace_back(u, v);
  }
  std::fclose(f);

  // Compact ids by sorted rank.
  std::vector<uint64_t> ids;
  ids.reserve(raw_edges.size() * 2);
  for (const auto& [u, v] : raw_edges) {
    ids.push_back(u);
    ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() > static_cast<size_t>(UINT32_MAX)) {
    return Status::OutOfRange(path + ": too many distinct vertex ids");
  }
  auto rank = [&ids](uint64_t x) {
    return static_cast<VertexId>(
        std::lower_bound(ids.begin(), ids.end(), x) - ids.begin());
  };
  std::vector<Edge> edges;
  edges.reserve(raw_edges.size());
  for (const auto& [u, v] : raw_edges) {
    edges.emplace_back(rank(u), rank(v));
  }
  auto graph = Graph::FromEdges(static_cast<uint32_t>(ids.size()),
                                std::move(edges));
  QCM_RETURN_IF_ERROR(graph.status());
  LoadedGraph out;
  out.graph = std::move(graph).value();
  out.original_ids = std::move(ids);
  return out;
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing: " +
                           std::strerror(errno));
  }
  std::fprintf(f, "# qcm edge list: %u vertices, %lu edges\n",
               g.NumVertices(), static_cast<unsigned long>(g.NumEdges()));
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) std::fprintf(f, "%u %u\n", u, v);
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("error closing " + path);
  }
  return Status::OK();
}

}  // namespace qcm
