// k-core decomposition via the O(n + m) bucket peeling algorithm of
// Batagelj & Zaversnik (paper reference [13]).
//
// The size-threshold pruning (P2, Theorem 2) reduces the input graph to its
// k-core with k = ceil(gamma * (tau_size - 1)) before any mining; the paper
// reports this single preprocessing step as "a dominating factor to scale
// beyond a small graph" (§4 T1).

#ifndef QCM_GRAPH_KCORE_H_
#define QCM_GRAPH_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace qcm {

/// Core number of every vertex (the largest k such that the vertex belongs
/// to the k-core). O(n + m) time, O(n) extra space.
std::vector<uint32_t> CoreDecomposition(const Graph& g);

/// Membership mask of the k-core: out[v] != 0 iff v survives peeling with
/// threshold k. Derived from CoreDecomposition.
std::vector<uint8_t> KCoreMask(const Graph& g, uint32_t k);

/// Number of vertices in the k-core.
uint64_t KCoreSize(const Graph& g, uint32_t k);

}  // namespace qcm

#endif  // QCM_GRAPH_KCORE_H_
