// Immutable undirected graph in CSR (compressed sparse row) form.
//
// This is the "big graph" store of the system (paper §5): vertices are
// identified by dense 32-bit ids, adjacency lists are sorted, and the
// structure is immutable after construction so it can be shared read-only by
// every mining thread and partitioned across simulated machines without
// synchronization.

#ifndef QCM_GRAPH_GRAPH_H_
#define QCM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/status.h"

namespace qcm {

/// Dense vertex identifier. The set-enumeration order of the mining
/// algorithm (Figure 5 of the paper) is the natural order of these ids.
using VertexId = uint32_t;

/// An undirected edge as an unordered pair of endpoints.
using Edge = std::pair<VertexId, VertexId>;

/// Immutable CSR graph. Adjacency lists are sorted ascending and contain no
/// self-loops or duplicates.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph with `num_vertices` vertices from an edge list.
  /// Self-loops are dropped, duplicate edges (in either orientation) are
  /// collapsed. Returns InvalidArgument if an endpoint is >= num_vertices.
  static StatusOr<Graph> FromEdges(uint32_t num_vertices,
                                   std::vector<Edge> edges);

  /// Number of vertices (ids are 0 .. NumVertices()-1).
  uint32_t NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  uint64_t NumEdges() const { return adj_.size() / 2; }

  /// Degree of vertex v; 0 for ids outside [0, NumVertices()) -- callers
  /// probing an empty or smaller graph must not read past offsets_.
  uint32_t Degree(VertexId v) const {
    if (static_cast<size_t>(v) + 1 >= offsets_.size()) return 0;
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbors of v; empty for ids outside [0, NumVertices()).
  std::span<const VertexId> Neighbors(VertexId v) const {
    if (static_cast<size_t>(v) + 1 >= offsets_.size()) return {};
    return {adj_.data() + offsets_[v],
            adj_.data() + offsets_[v + 1]};
  }

  /// True iff the undirected edge (u, v) exists. O(log deg) via binary
  /// search over the smaller adjacency list.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Maximum degree over all vertices (0 for the empty graph).
  uint32_t MaxDegree() const;

  /// Approximate heap footprint in bytes.
  uint64_t MemoryBytes() const {
    return offsets_.size() * sizeof(uint64_t) + adj_.size() * sizeof(VertexId);
  }

 private:
  std::vector<uint64_t> offsets_;  // size NumVertices()+1
  std::vector<VertexId> adj_;      // size 2*NumEdges()
};

}  // namespace qcm

#endif  // QCM_GRAPH_GRAPH_H_
