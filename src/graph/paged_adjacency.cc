#include "graph/paged_adjacency.h"

#include <sys/mman.h>

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qcm {

PagedAdjacencyStore::PagedAdjacencyStore(
    std::shared_ptr<CsrSnapshot> snapshot, const PagedStoreConfig& config)
    : snapshot_(std::move(snapshot)), config_(config) {
  QCM_CHECK(snapshot_ != nullptr);
  page_size_ = snapshot_->page_size();
  adj_file_offset_ =
      snapshot_->header().sections[kCsrAdjacency].file_offset;
  if (!paging_enabled()) return;

  QCM_CHECK(config_.memory_budget_bytes >= page_size_)
      << "graph memory budget " << config_.memory_budget_bytes
      << " is smaller than one " << page_size_ << "-byte page";
  frame_capacity_ =
      static_cast<size_t>(config_.memory_budget_bytes / page_size_);
  frames_.reserve(frame_capacity_);

  // Demand paging wants no readahead: a miner's access pattern over the
  // adjacency section is the task spawn order, not sequential.
  uint8_t* map = const_cast<uint8_t*>(snapshot_->map_base());
  const uint64_t adj_bytes =
      snapshot_->header().sections[kCsrAdjacency].bytes;
  if (adj_bytes != 0) {
    ::madvise(map + adj_file_offset_, adj_bytes, MADV_RANDOM);
  }

  // Build the inline arena for this partition's small lists. This is the
  // only pass that reads adjacency eagerly; the faulted pages are dropped
  // right after so mining starts with an empty frame pool.
  const uint32_t n = snapshot_->NumVertices();
  arena_offsets_.assign(uint64_t{n} + 1, 0);
  uint64_t entries = 0;
  for (VertexId v = 0; v < n; ++v) {
    arena_offsets_[v] = entries;
    const uint32_t deg = snapshot_->Degree(v);
    if (deg != 0 && deg <= config_.inline_degree && Owned(v)) {
      entries += deg;
    }
  }
  arena_offsets_[n] = entries;
  arena_.reserve(entries);
  for (VertexId v = 0; v < n; ++v) {
    if (arena_offsets_[v + 1] != arena_offsets_[v]) {
      auto adj = snapshot_->Neighbors(v);
      arena_.insert(arena_.end(), adj.begin(), adj.end());
    }
  }
  QCM_CHECK(arena_.size() == entries);
  if (adj_bytes != 0) {
    ::madvise(map + adj_file_offset_, adj_bytes, MADV_DONTNEED);
  }
}

bool PagedAdjacencyStore::PinPage(uint32_t page) {
  auto it = slot_of_page_.find(page);
  if (it != slot_of_page_.end()) {
    frames_[it->second].ref = 1;
    return false;
  }
  size_t slot;
  if (frames_.size() < frame_capacity_) {
    slot = frames_.size();
    frames_.emplace_back();
  } else {
    // CLOCK second-chance sweep: clear reference bits until an
    // unreferenced, unpinned frame comes around. Two full revolutions
    // guarantee a victim unless every frame is pinned by a concurrent
    // fault-in, in which case we transiently overflow the pool (bounded
    // by the number of mining threads) rather than deadlock.
    size_t victim = frames_.size();
    for (size_t step = 0; step < 2 * frames_.size(); ++step) {
      Frame& f = frames_[clock_hand_];
      clock_hand_ = (clock_hand_ + 1) % frames_.size();
      if (f.pins != 0) continue;
      if (f.ref != 0) {
        f.ref = 0;
        continue;
      }
      victim = (clock_hand_ + frames_.size() - 1) % frames_.size();
      break;
    }
    if (victim == frames_.size()) {
      slot = frames_.size();
      frames_.emplace_back();
    } else {
      slot = victim;
      const uint32_t old_page = frames_[slot].page;
      slot_of_page_.erase(old_page);
      uint8_t* addr = const_cast<uint8_t*>(snapshot_->map_base()) +
                      uint64_t{old_page} * page_size_;
      const uint64_t len = std::min<uint64_t>(
          page_size_,
          snapshot_->MappedBytes() - uint64_t{old_page} * page_size_);
      ::madvise(addr, len, MADV_DONTNEED);
      page_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  frames_[slot] = Frame{page, /*ref=*/1, /*pins=*/1};
  slot_of_page_[page] = slot;
  page_ins_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PagedAdjacencyStore::UnpinPage(uint32_t page) {
  auto it = slot_of_page_.find(page);
  QCM_CHECK(it != slot_of_page_.end() && frames_[it->second].pins > 0)
      << "unpin of page " << page << " that is not pinned";
  --frames_[it->second].pins;
}

std::span<const VertexId> PagedAdjacencyStore::Adjacency(VertexId v) {
  auto span = snapshot_->Neighbors(v);
  if (!paging_enabled() || span.empty()) return span;
  if (arena_offsets_[v + 1] != arena_offsets_[v]) {
    inline_served_.fetch_add(1, std::memory_order_relaxed);
    return {arena_.data() + arena_offsets_[v],
            arena_.data() + arena_offsets_[v + 1]};
  }

  // Pin every file page the list touches, fault in the non-resident
  // ones, and release the pins: a later eviction only drops physical
  // pages, so the span stays readable after return.
  const uint64_t byte_begin =
      adj_file_offset_ + snapshot_->AdjOffset(v) * sizeof(VertexId);
  const uint64_t byte_end = byte_begin + span.size() * sizeof(VertexId);
  const uint32_t first_page = static_cast<uint32_t>(byte_begin / page_size_);
  const uint32_t last_page =
      static_cast<uint32_t>((byte_end - 1) / page_size_);

  uint32_t faulted[2];
  size_t num_faulted = 0;
  std::vector<uint32_t> faulted_overflow;  // lists spanning many pages
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t p = first_page; p <= last_page; ++p) {
      if (PinPage(p)) {
        if (num_faulted < 2) {
          faulted[num_faulted++] = p;
        } else {
          faulted_overflow.push_back(p);
        }
      }
    }
    page_pins_.fetch_add(last_page - first_page + 1,
                         std::memory_order_relaxed);
  }
  if (num_faulted != 0 || !faulted_overflow.empty()) {
    const uint8_t* base = snapshot_->map_base();
    WallTimer stall;
    {
      QCM_TRACE_SPAN(trace::kPage, "page_in",
                     static_cast<uint32_t>(num_faulted +
                                           faulted_overflow.size()));
      auto touch = [&](uint32_t p) {
        volatile uint8_t sink = base[uint64_t{p} * page_size_];
        (void)sink;
      };
      for (size_t i = 0; i < num_faulted; ++i) touch(faulted[i]);
      for (uint32_t p : faulted_overflow) touch(p);
    }
    fault_stall_usec_.fetch_add(static_cast<uint64_t>(stall.Micros()),
                                std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < num_faulted; ++i) UnpinPage(faulted[i]);
    for (uint32_t p : faulted_overflow) UnpinPage(p);
  }
  return span;
}

PagedStoreStatsSnapshot PagedAdjacencyStore::stats() const {
  PagedStoreStatsSnapshot out;
  out.page_pins = page_pins_.load(std::memory_order_relaxed);
  out.page_ins = page_ins_.load(std::memory_order_relaxed);
  out.page_evictions = page_evictions_.load(std::memory_order_relaxed);
  out.fault_stall_usec = fault_stall_usec_.load(std::memory_order_relaxed);
  out.inline_served = inline_served_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.resident_pages = slot_of_page_.size();
  }
  out.frame_capacity = frame_capacity_;
  out.inline_bytes = inline_arena_bytes();
  return out;
}

}  // namespace qcm
