#include "graph/generators.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_set>

#include "util/rng.h"

namespace qcm {

namespace {

/// Packs an undirected edge into a 64-bit key for dedup sets.
uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

StatusOr<Graph> GenErdosRenyi(uint32_t n, uint64_t m, uint64_t seed) {
  if (n < 2) return Status::InvalidArgument("GenErdosRenyi: need n >= 2");
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  if (m > max_edges) {
    return Status::InvalidArgument("GenErdosRenyi: m exceeds n*(n-1)/2");
  }
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) {
      edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

StatusOr<Graph> GenBarabasiAlbert(uint32_t n, uint32_t attach,
                                  uint64_t seed) {
  if (attach == 0) return Status::InvalidArgument("GenBarabasiAlbert: attach=0");
  if (n <= attach) {
    return Status::InvalidArgument("GenBarabasiAlbert: need n > attach");
  }
  Rng rng(seed);
  std::vector<Edge> edges;
  // Endpoint multiset: sampling a uniform element is sampling proportional
  // to degree.
  std::vector<VertexId> endpoints;
  // Seed with a clique on attach+1 vertices.
  const uint32_t seed_n = attach + 1;
  for (VertexId u = 0; u < seed_n; ++u) {
    for (VertexId v = u + 1; v < seed_n; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::unordered_set<uint64_t> picked;
  for (VertexId v = seed_n; v < n; ++v) {
    picked.clear();
    uint32_t added = 0;
    // Rejection-sample distinct targets; cap attempts to stay O(1) expected.
    uint32_t attempts = 0;
    while (added < attach && attempts < 32 * attach) {
      ++attempts;
      VertexId target = endpoints[rng.Uniform(endpoints.size())];
      if (target == v) continue;
      if (!picked.insert(EdgeKey(v, target)).second) continue;
      edges.emplace_back(v, target);
      ++added;
    }
    // Fallback: connect to arbitrary distinct earlier vertices.
    for (VertexId t = 0; added < attach && t < v; ++t) {
      if (picked.insert(EdgeKey(v, t)).second) {
        edges.emplace_back(v, t);
        ++added;
      }
    }
    for (uint32_t i = 0; i < added; ++i) {
      endpoints.push_back(v);
    }
    for (auto it = edges.end() - added; it != edges.end(); ++it) {
      endpoints.push_back(it->second == v ? it->first : it->second);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

StatusOr<Graph> GenRMAT(uint32_t scale, uint64_t edges, double a, double b,
                        double c, uint64_t seed) {
  if (scale == 0 || scale > 30) {
    return Status::InvalidArgument("GenRMAT: scale must be in [1, 30]");
  }
  const double d = 1.0 - a - b - c;
  if (a < 0 || b < 0 || c < 0 || d < 0) {
    return Status::InvalidArgument("GenRMAT: probabilities must be >= 0 and sum <= 1");
  }
  const uint32_t n = 1u << scale;
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(edges * 2);
  std::vector<Edge> out;
  out.reserve(edges);
  // Duplicate collapse means we may fall short; bound total attempts.
  uint64_t attempts = 0;
  const uint64_t max_attempts = edges * 8;
  while (out.size() < edges && attempts < max_attempts) {
    ++attempts;
    uint32_t u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // quadrant (0,0)
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) {
      out.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(n, std::move(out));
}

StatusOr<Graph> GenPlantedCommunities(
    const PlantedConfig& config,
    std::vector<std::vector<VertexId>>* communities) {
  const uint32_t n = config.num_vertices;
  if (n < 4) return Status::InvalidArgument("GenPlantedCommunities: n < 4");
  if (config.community_min < 3 ||
      config.community_max < config.community_min ||
      config.community_max > n) {
    return Status::InvalidArgument(
        "GenPlantedCommunities: bad community size range");
  }
  if (config.intra_density <= 0.0 || config.intra_density > 1.0) {
    return Status::InvalidArgument(
        "GenPlantedCommunities: intra_density must be in (0, 1]");
  }

  // Background topology.
  std::vector<Edge> edges;
  {
    StatusOr<Graph> bg =
        config.background == BackgroundModel::kErdosRenyi
            ? GenErdosRenyi(n, config.background_edges, config.seed)
            : GenBarabasiAlbert(n, config.ba_attach, config.seed);
    QCM_RETURN_IF_ERROR(bg.status());
    const Graph& b = bg.value();
    for (VertexId u = 0; u < b.NumVertices(); ++u) {
      for (VertexId v : b.Neighbors(u)) {
        if (u < v) edges.emplace_back(u, v);
      }
    }
  }

  Rng rng(config.seed ^ 0xC0FFEEULL);
  std::vector<VertexId> prev_members;
  if (communities != nullptr) communities->clear();
  for (uint32_t ci = 0; ci < config.num_communities; ++ci) {
    const uint32_t size =
        config.community_min +
        static_cast<uint32_t>(rng.Uniform(
            config.community_max - config.community_min + 1));
    std::vector<VertexId> members;
    std::unordered_set<VertexId> member_set;
    // Share a prefix with the previous community (overlapping modules).
    uint32_t shared = static_cast<uint32_t>(config.overlap_fraction * size);
    shared = std::min<uint32_t>(shared, static_cast<uint32_t>(prev_members.size()));
    for (uint32_t i = 0; i < shared; ++i) {
      members.push_back(prev_members[i]);
      member_set.insert(prev_members[i]);
    }
    while (members.size() < size) {
      VertexId v = static_cast<VertexId>(rng.Uniform(n));
      if (member_set.insert(v).second) members.push_back(v);
    }
    for (uint32_t i = 0; i < members.size(); ++i) {
      for (uint32_t j = i + 1; j < members.size(); ++j) {
        if (rng.Bernoulli(config.intra_density)) {
          edges.emplace_back(members[i], members[j]);
        }
      }
    }
    std::sort(members.begin(), members.end());
    if (communities != nullptr) communities->push_back(members);
    prev_members = std::move(members);
  }
  return Graph::FromEdges(n, std::move(edges));
}

StatusOr<PlantedConfig> ParsePlantedSpec(const std::string& spec,
                                         uint64_t seed) {
  PlantedConfig config;
  config.seed = seed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string kv = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad planted-spec entry: " + kv);
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "n") {
      config.num_vertices = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (key == "communities") {
      config.num_communities =
          static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (key == "size") {
      const size_t dots = value.find("..");
      if (dots == std::string::npos) {
        config.community_min = config.community_max =
            static_cast<uint32_t>(std::atoi(value.c_str()));
      } else {
        config.community_min =
            static_cast<uint32_t>(std::atoi(value.substr(0, dots).c_str()));
        config.community_max = static_cast<uint32_t>(
            std::atoi(value.substr(dots + 2).c_str()));
      }
    } else if (key == "density") {
      config.intra_density = std::atof(value.c_str());
    } else if (key == "overlap") {
      config.overlap_fraction = std::atof(value.c_str());
    } else if (key == "edges") {
      config.background = BackgroundModel::kErdosRenyi;
      config.background_edges =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else {
      return Status::InvalidArgument("unknown planted-spec key: " + key);
    }
  }
  return config;
}

Graph PaperFigure4Graph() {
  // Vertices a..i -> 0..8. Satisfies the facts stated in §3.1:
  // Gamma(d) = {a, c, e, h, i}, Gamma(e) = {a, b, c, d}, B(e) = {f, g, h, i},
  // and {a,b,c,d} / {a,b,c,d,e} are 0.6-quasi-cliques.
  constexpr VertexId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6, h = 7,
                     i = 8;
  std::vector<Edge> edges = {
      {a, b}, {a, c}, {a, d}, {a, e}, {b, c}, {b, e}, {c, d}, {c, e},
      {d, e}, {d, h}, {d, i}, {b, f}, {c, g}, {f, g}, {g, h}, {h, i},
  };
  auto result = Graph::FromEdges(9, std::move(edges));
  return std::move(result).value();
}

}  // namespace qcm
