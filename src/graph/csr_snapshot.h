// Binary on-disk CSR graph snapshots (.qcsr): the out-of-core storage
// format of the system. A snapshot is a page-aligned, versioned,
// per-section checksummed image of an immutable Graph plus its original
// external ids, laid out so a worker can mmap the file and touch only the
// pages that hold its partition instead of text-parsing and transiently
// materializing the full graph (ROADMAP "out-of-core graph storage").
//
// File layout (all integers little-endian; every section starts on a
// page_size boundary and is padded with zeros up to the next one):
//
//   offset 0    header (144 bytes, zero-padded to page_size)
//     +0   u32  magic "QCSR"
//     +4   u32  format version
//     +8   u32  page_size (power of two, >= 4096)
//     +12  u32  num_vertices
//     +16  u64  num_edges (undirected)
//     +24  u64  build_seed (generator provenance; 0 for edge-list inputs)
//     +32  u64  file_bytes (total size incl. tail sentinel)
//     +40  4 x {u64 file_offset, u64 bytes, u64 fnv1a checksum}
//          section table: degrees, offsets, original-ids, adjacency
//     +136 u64  fnv1a checksum of header bytes [0, 136)
//   degrees       u32[n]    per-vertex degree (replicated metadata)
//   offsets       u64[n+1]  adjacency entry offsets (CSR row starts)
//   original-ids  u64[n]    dense id -> external id map
//   adjacency     u32[2m]   concatenated sorted adjacency lists
//   tail          u64       tail magic at file_bytes-8 (torn-tail guard)
//
// The adjacency section is deliberately last: a rank validates the three
// metadata sections (a contiguous prefix) and then faults adjacency pages
// on demand through PagedAdjacencyStore.

#ifndef QCM_GRAPH_CSR_SNAPSHOT_H_
#define QCM_GRAPH_CSR_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace qcm {

inline constexpr uint32_t kCsrMagic = 0x52534351u;  // "QCSR" little-endian
inline constexpr uint32_t kCsrVersion = 1;
inline constexpr uint32_t kCsrMinPageSize = 4096;
inline constexpr uint32_t kCsrDefaultPageSize = 1u << 16;
inline constexpr uint64_t kCsrTailMagic = 0x4c494154'52534351ull;  // "QCSRTAIL"
inline constexpr size_t kCsrHeaderBytes = 144;

/// Section ids, in file order.
enum CsrSectionId : int {
  kCsrDegrees = 0,
  kCsrOffsets = 1,
  kCsrOriginalIds = 2,
  kCsrAdjacency = 3,
  kCsrNumSections = 4,
};

const char* CsrSectionName(int section);

struct CsrSectionDesc {
  uint64_t file_offset = 0;  // page_size-aligned
  uint64_t bytes = 0;        // payload bytes, unpadded
  uint64_t checksum = 0;     // FNV-1a over the payload
};

struct CsrHeader {
  uint32_t magic = kCsrMagic;
  uint32_t version = kCsrVersion;
  uint32_t page_size = kCsrDefaultPageSize;
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t build_seed = 0;
  uint64_t file_bytes = 0;
  CsrSectionDesc sections[kCsrNumSections];
  uint64_t header_checksum = 0;
};

struct CsrWriteOptions {
  uint32_t page_size = kCsrDefaultPageSize;
  uint64_t build_seed = 0;
};

/// Packs `g` into a .qcsr snapshot at `path`. `original_ids` maps dense
/// ids back to external ids (identity when empty; otherwise must have
/// exactly NumVertices() entries). Overwrites any existing file.
Status WriteCsrSnapshot(const Graph& g,
                        const std::vector<uint64_t>& original_ids,
                        const std::string& path,
                        const CsrWriteOptions& opts = {});

/// A read-only mmap of a .qcsr file. Open() always validates the header
/// (magic/version/page-size/checksum), the declared-vs-actual file size,
/// the tail sentinel, section-table geometry, and offset-array
/// monotonicity -- so the accessors below can never read out of bounds on
/// a corrupt file. Section checksum verification is opt-out for the
/// adjacency section only, because streaming it faults every page (a
/// budget-constrained rank wants to avoid exactly that).
///
/// All accessors return pointers/spans into the mapping; they stay valid
/// for the lifetime of the CsrSnapshot even if pages are transiently
/// evicted with madvise(MADV_DONTNEED) -- a read-only file-backed mapping
/// refaults evicted pages with identical content.
class CsrSnapshot {
 public:
  struct OpenOptions {
    /// Stream-verify the degrees/offsets/original-ids checksums.
    bool verify_sections = true;
    /// Also stream-verify the adjacency checksum (touches every page).
    bool verify_adjacency = false;
  };

  static StatusOr<std::shared_ptr<CsrSnapshot>> Open(
      const std::string& path, const OpenOptions& opts);
  static StatusOr<std::shared_ptr<CsrSnapshot>> Open(const std::string& path) {
    return Open(path, OpenOptions{});
  }

  ~CsrSnapshot();
  CsrSnapshot(const CsrSnapshot&) = delete;
  CsrSnapshot& operator=(const CsrSnapshot&) = delete;

  const CsrHeader& header() const { return hdr_; }
  const std::string& path() const { return path_; }
  uint32_t NumVertices() const { return hdr_.num_vertices; }
  uint64_t NumEdges() const { return hdr_.num_edges; }
  uint32_t page_size() const { return hdr_.page_size; }

  /// Total bytes mapped (the whole file).
  uint64_t MappedBytes() const { return map_len_; }

  uint32_t Degree(VertexId v) const { return degrees_[v]; }

  /// CSR row start of v, in adjacency *entries* (not bytes).
  uint64_t AdjOffset(VertexId v) const { return offsets_[v]; }

  uint64_t OriginalId(VertexId v) const { return original_ids_[v]; }

  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adj_ + offsets_[v], adj_ + offsets_[v + 1]};
  }

  /// Base of the mapping and of the adjacency section within it (the
  /// paged store advises page residency against these).
  const uint8_t* map_base() const { return map_; }
  const VertexId* adjacency_base() const { return adj_; }

  /// Materializes a fully resident in-memory Graph (the qcm_mine
  /// resident-load path; also the parity reference in tests).
  StatusOr<Graph> ToGraph() const;

  std::vector<uint64_t> OriginalIdsVector() const {
    return {original_ids_, original_ids_ + hdr_.num_vertices};
  }

 private:
  CsrSnapshot() = default;

  std::string path_;
  int fd_ = -1;
  uint8_t* map_ = nullptr;
  size_t map_len_ = 0;
  CsrHeader hdr_;
  const uint32_t* degrees_ = nullptr;
  const uint64_t* offsets_ = nullptr;
  const uint64_t* original_ids_ = nullptr;
  const VertexId* adj_ = nullptr;
};

}  // namespace qcm

#endif  // QCM_GRAPH_CSR_SNAPSHOT_H_
