#include "graph/graph.h"

#include <algorithm>
#include <string>

namespace qcm {

StatusOr<Graph> Graph::FromEdges(uint32_t num_vertices,
                                 std::vector<Edge> edges) {
  for (auto& [u, v] : edges) {
    if (u >= num_vertices || v >= num_vertices) {
      return Status::InvalidArgument(
          "edge endpoint out of range: (" + std::to_string(u) + ", " +
          std::to_string(v) + ") with num_vertices=" +
          std::to_string(num_vertices));
    }
    if (u > v) std::swap(u, v);
  }
  // Drop self-loops, then dedupe.
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const Edge& e) { return e.first == e.second; }),
              edges.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(edges.size() * 2);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adj_[cursor[u]++] = v;
    g.adj_[cursor[v]++] = u;
  }
  // Each adjacency range was filled in edge-sorted order; ranges for u are
  // sorted by construction for the first endpoint but not the second, so
  // sort each range to establish the invariant.
  for (uint32_t v = 0; v < num_vertices; ++v) {
    std::sort(g.adj_.begin() + static_cast<int64_t>(g.offsets_[v]),
              g.adj_.begin() + static_cast<int64_t>(g.offsets_[v + 1]));
  }
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint32_t Graph::MaxDegree() const {
  uint32_t best = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

}  // namespace qcm
