#include "graph/stats.h"

#include <algorithm>
#include <deque>

#include "graph/local_graph.h"

namespace qcm {

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.NumVertices();
  s.num_edges = g.NumEdges();
  if (s.num_vertices == 0) return s;
  s.min_degree = UINT32_MAX;
  uint64_t total = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    uint32_t d = g.Degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    total += d;
  }
  s.avg_degree = static_cast<double>(total) / static_cast<double>(s.num_vertices);
  if (s.num_vertices > 1) {
    s.density = 2.0 * static_cast<double>(s.num_edges) /
                (static_cast<double>(s.num_vertices) *
                 static_cast<double>(s.num_vertices - 1));
  }
  return s;
}

TaskFeatures ComputeTaskFeatures(const LocalGraph& g, uint32_t top_k) {
  TaskFeatures f;
  f.num_vertices = g.n();
  f.num_edges = g.NumEdges();
  if (g.n() == 0) return f;
  uint64_t total = 0;
  for (LocalId v = 0; v < g.n(); ++v) {
    uint32_t d = g.Degree(v);
    f.max_degree = std::max(f.max_degree, d);
    total += d;
  }
  f.avg_degree = static_cast<double>(total) / static_cast<double>(g.n());

  // Core decomposition on the local graph (queue-based; task scope).
  std::vector<uint32_t> degree(g.n());
  std::vector<uint32_t> core(g.n(), 0);
  std::vector<uint8_t> removed(g.n(), 0);
  for (LocalId v = 0; v < g.n(); ++v) degree[v] = g.Degree(v);
  uint32_t level = 0;
  uint32_t remaining = g.n();
  while (remaining > 0) {
    std::deque<LocalId> queue;
    for (LocalId v = 0; v < g.n(); ++v) {
      if (!removed[v] && degree[v] <= level) {
        removed[v] = 1;
        queue.push_back(v);
      }
    }
    while (!queue.empty()) {
      LocalId v = queue.front();
      queue.pop_front();
      core[v] = level;
      --remaining;
      for (LocalId u : g.Neighbors(v)) {
        if (!removed[u] && --degree[u] <= level) {
          removed[u] = 1;
          queue.push_back(u);
        }
      }
    }
    ++level;
  }
  std::sort(core.begin(), core.end(), std::greater<>());
  if (core.size() > top_k) core.resize(top_k);
  f.top_core_numbers = std::move(core);
  return f;
}

}  // namespace qcm
