// Graph summary statistics used by the dataset table (Table 1) and by the
// task-cost predictability analysis (the paper's §1 Challenge 3 discussion:
// features such as vertex/edge counts, degree moments and top-k core numbers
// fail to predict task runtime).

#ifndef QCM_GRAPH_STATS_H_
#define QCM_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace qcm {

/// Degree and size summary of a graph.
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t min_degree = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  /// 2m / (n*(n-1)).
  double density = 0.0;
};

/// Computes the summary in one pass.
GraphStats ComputeGraphStats(const Graph& g);

/// Task-cost features the paper tried (and failed) to regress runtime on:
/// |V|, |E|, avg/max degree, and the top-k core numbers of the subgraph.
struct TaskFeatures {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0.0;
  uint32_t max_degree = 0;
  std::vector<uint32_t> top_core_numbers;  // descending, up to k entries
};

class LocalGraph;

/// Extracts the regression features of a task subgraph.
TaskFeatures ComputeTaskFeatures(const LocalGraph& g, uint32_t top_k);

}  // namespace qcm

#endif  // QCM_GRAPH_STATS_H_
