// LocalGraph: the materialized subgraph a mining task works on (t.g in the
// paper, §5-§6). Vertices carry *local* ids 0..n-1 that map to global
// VertexIds through a strictly increasing table, so local-id order equals
// global-id order and the set-enumeration discipline (Figure 5) can be
// enforced on local ids directly.
//
// LocalGraphs are created three ways:
//   * by the serial miner, as the 2-hop ego network of a spawned root;
//   * by compute() iterations 1-2 of the parallel algorithm (Alg. 6-7),
//     via LocalGraphBuilder;
//   * by task decomposition (Alg. 8 line 19 / Alg. 10), via Induce() --
//     whose cost is the "subgraph materialization time" measured in Table 6.
//
// They are serializable because tasks get spilled to disk and stolen across
// simulated machines.

#ifndef QCM_GRAPH_LOCAL_GRAPH_H_
#define QCM_GRAPH_LOCAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/serde.h"
#include "util/status.h"

namespace qcm {

/// Local vertex index inside a LocalGraph.
using LocalId = uint32_t;

/// Compact CSR subgraph with a local->global id table.
class LocalGraph {
 public:
  LocalGraph() = default;

  /// Number of vertices in the subgraph.
  uint32_t n() const {
    return offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  uint64_t NumEdges() const { return adj_.size() / 2; }

  uint32_t Degree(LocalId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Sorted (ascending local id) neighbors of v.
  std::span<const LocalId> Neighbors(LocalId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Global id of local vertex v.
  VertexId GlobalId(LocalId v) const { return vids_[v]; }

  /// Full local->global table (strictly increasing).
  const std::vector<VertexId>& GlobalIds() const { return vids_; }

  /// Local id of a global vertex, or n() if absent. O(log n).
  LocalId FindLocal(VertexId global) const;

  /// True iff the local edge (u, v) exists. O(log deg).
  bool HasEdge(LocalId u, LocalId v) const;

  /// Subgraph induced on `keep` (sorted ascending local ids of *this*).
  /// Global ids are preserved. This is the decomposition materialization
  /// step whose cost Table 6 accounts separately from mining.
  LocalGraph Induce(const std::vector<LocalId>& keep) const;

  /// k-core of this subgraph (peels vertices of induced degree < k).
  /// Global ids are preserved.
  LocalGraph KCore(uint32_t k) const;

  /// Approximate heap footprint in bytes (used for RAM accounting).
  uint64_t MemoryBytes() const {
    return vids_.size() * sizeof(VertexId) +
           offsets_.size() * sizeof(uint32_t) + adj_.size() * sizeof(LocalId);
  }

  /// Binary serialization (task spill / steal).
  void Encode(Encoder* enc) const;
  static StatusOr<LocalGraph> Decode(Decoder* dec);

  bool operator==(const LocalGraph& other) const = default;

 private:
  friend class LocalGraphBuilder;

  std::vector<VertexId> vids_;     // strictly increasing
  std::vector<uint32_t> offsets_;  // size n()+1
  std::vector<LocalId> adj_;       // sorted within each range
};

/// Incremental builder used by compute() iterations: vertices are staged
/// with global-id adjacency, peeled, and finally compiled into a LocalGraph.
class LocalGraphBuilder {
 public:
  /// Stages a vertex with its (global-id) adjacency. The adjacency may
  /// reference vertices that are never staged ("phantom" 2-hop endpoints in
  /// Alg. 6); they count toward peeling degrees but are dropped at Build()
  /// unless staged by then. Staging the same vertex twice overwrites.
  void Stage(VertexId v, std::vector<VertexId> adj);

  /// True iff v has been staged and not peeled.
  bool IsStaged(VertexId v) const;

  /// Number of staged (alive) vertices.
  size_t StagedCount() const;

  /// Current adjacency length of a staged vertex (phantoms included);
  /// 0 if not staged.
  size_t AdjLength(VertexId v) const;

  /// Distinct adjacency targets of alive entries that are not themselves
  /// staged-alive ("phantom" endpoints -- the 2-hop frontier Alg. 6 pulls
  /// in its lines 12-15), ascending.
  std::vector<VertexId> PhantomTargets() const;

  /// Peels staged vertices whose current adjacency length is < k,
  /// cascading removals (entries pointing at peeled vertices are erased;
  /// phantom entries are never peeled). Mirrors "t.g <- k-core(t.g)" in
  /// Alg. 6 line 10 / Alg. 7 line 9.
  void PeelToKCore(uint32_t k);

  /// Compiles the staged structure into a LocalGraph. Adjacency entries
  /// whose target was never staged (or was peeled) are dropped; edges are
  /// made symmetric (an edge is kept iff either endpoint listed it).
  LocalGraph Build() const;

 private:
  struct Entry {
    std::vector<VertexId> adj;
    bool alive = true;
  };

  std::unordered_map<VertexId, Entry> entries_;
};

}  // namespace qcm

#endif  // QCM_GRAPH_LOCAL_GRAPH_H_
