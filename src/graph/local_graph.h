// LocalGraph: the materialized subgraph a mining task works on (t.g in the
// paper, §5-§6). Vertices carry *local* ids 0..n-1 that map to global
// VertexIds through a strictly increasing table, so local-id order equals
// global-id order and the set-enumeration discipline (Figure 5) can be
// enforced on local ids directly.
//
// LocalGraphs are created two ways:
//   * by ego-network materialization (Alg. 6-7) -- the shared EgoBuilder
//     layer (graph/ego_builder.h) that both the serial miner and the
//     G-thinker compute() iterations drive;
//   * by task decomposition (Alg. 8 line 19 / Alg. 10), via Induce() --
//     whose cost is the "subgraph materialization time" measured in Table 6.
//
// They are serializable because tasks get spilled to disk and stolen across
// simulated machines.

#ifndef QCM_GRAPH_LOCAL_GRAPH_H_
#define QCM_GRAPH_LOCAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/serde.h"
#include "util/status.h"

namespace qcm {

/// Local vertex index inside a LocalGraph.
using LocalId = uint32_t;

/// Compact CSR subgraph with a local->global id table.
class LocalGraph {
 public:
  LocalGraph() = default;

  /// Number of vertices in the subgraph.
  uint32_t n() const {
    return offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  uint64_t NumEdges() const { return adj_.size() / 2; }

  /// Degree of v; 0 for ids outside [0, n()) (empty graphs included).
  uint32_t Degree(LocalId v) const {
    if (static_cast<size_t>(v) + 1 >= offsets_.size()) return 0;
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted (ascending local id) neighbors of v; empty outside [0, n()).
  std::span<const LocalId> Neighbors(LocalId v) const {
    if (static_cast<size_t>(v) + 1 >= offsets_.size()) return {};
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Global id of local vertex v.
  VertexId GlobalId(LocalId v) const { return vids_[v]; }

  /// Full local->global table (strictly increasing).
  const std::vector<VertexId>& GlobalIds() const { return vids_; }

  /// Local id of a global vertex, or n() if absent. O(log n).
  LocalId FindLocal(VertexId global) const;

  /// True iff the local edge (u, v) exists. O(log deg).
  bool HasEdge(LocalId u, LocalId v) const;

  /// Subgraph induced on `keep` (sorted ascending local ids of *this*).
  /// Global ids are preserved. This is the decomposition materialization
  /// step whose cost Table 6 accounts separately from mining.
  LocalGraph Induce(const std::vector<LocalId>& keep) const;

  /// k-core of this subgraph (peels vertices of induced degree < k).
  /// Global ids are preserved.
  LocalGraph KCore(uint32_t k) const;

  /// Approximate heap footprint in bytes (used for RAM accounting).
  uint64_t MemoryBytes() const {
    return vids_.size() * sizeof(VertexId) +
           offsets_.size() * sizeof(uint32_t) + adj_.size() * sizeof(LocalId) +
           dense_bits_.size() * sizeof(uint64_t);
  }

  /// True iff per-vertex adjacency bitmap rows are materialized alongside
  /// the CSR (the dense half of the hybrid representation).
  bool has_dense() const { return dense_words_ != 0; }

  /// Words per dense row: ceil(n/64); 0 when rows are absent.
  uint32_t DenseWords() const { return dense_words_; }

  /// Dense adjacency row of v: DenseWords() uint64 words, bit w set iff
  /// edge (v, w) exists. Only valid when has_dense().
  const uint64_t* DenseRow(LocalId v) const {
    return dense_bits_.data() + static_cast<size_t>(v) * dense_words_;
  }

  /// Materializes the dense rows from the CSR. Idempotent; no-op when
  /// n() == 0. The rows are a derived cache: they are never serialized
  /// (Encode/Decode carry CSR only) and do not participate in equality.
  void BuildDenseRows();

  /// Binary serialization (task spill / steal).
  void Encode(Encoder* enc) const;
  static StatusOr<LocalGraph> Decode(Decoder* dec);

  /// Equality is over the serialized CSR identity only; the dense rows are
  /// a derived cache and deliberately excluded, so a decoded graph compares
  /// equal to the one that was encoded.
  bool operator==(const LocalGraph& other) const {
    return vids_ == other.vids_ && offsets_ == other.offsets_ &&
           adj_ == other.adj_;
  }

 private:
  friend class EgoBuilder;

  std::vector<VertexId> vids_;     // strictly increasing
  std::vector<uint32_t> offsets_;  // size n()+1
  std::vector<LocalId> adj_;       // sorted within each range

  // Hybrid dense representation: n() rows of dense_words_ words each,
  // materialized on demand for small subgraphs. Never serialized.
  uint32_t dense_words_ = 0;
  std::vector<uint64_t> dense_bits_;
};

}  // namespace qcm

#endif  // QCM_GRAPH_LOCAL_GRAPH_H_
