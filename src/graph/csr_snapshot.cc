#include "graph/csr_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"
#include "util/serde.h"

namespace qcm {

namespace {

std::string At(const std::string& path, uint64_t offset,
               const std::string& what) {
  return path + ":" + std::to_string(offset) + ": " + what;
}

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

// Serializes the header into its fixed 144-byte image. The checksum field
// is computed over the first 136 bytes, so callers fill it after a first
// pass with checksum 0.
std::string EncodeHeader(const CsrHeader& h) {
  Encoder enc;
  enc.PutU32(h.magic);
  enc.PutU32(h.version);
  enc.PutU32(h.page_size);
  enc.PutU32(h.num_vertices);
  enc.PutU64(h.num_edges);
  enc.PutU64(h.build_seed);
  enc.PutU64(h.file_bytes);
  for (const CsrSectionDesc& s : h.sections) {
    enc.PutU64(s.file_offset);
    enc.PutU64(s.bytes);
    enc.PutU64(s.checksum);
  }
  enc.PutU64(h.header_checksum);
  return enc.Release();
}

// Buffered sequential file writer tracking the absolute offset, so
// section layout and padding stay in one place.
class FileWriter {
 public:
  FileWriter(int fd, std::string path) : fd_(fd), path_(std::move(path)) {
    buf_.reserve(kBufCap);
  }

  Status Append(const void* data, size_t n) {
    const char* p = static_cast<const char*>(data);
    while (n != 0) {
      const size_t take = std::min(n, kBufCap - buf_.size());
      buf_.append(p, take);
      p += take;
      n -= take;
      offset_ += take;
      if (buf_.size() == kBufCap) QCM_RETURN_IF_ERROR(Flush());
    }
    return Status::OK();
  }

  Status PadTo(uint64_t target) {
    static const char zeros[4096] = {0};
    while (offset_ < target) {
      const size_t n =
          std::min<uint64_t>(sizeof(zeros), target - offset_);
      QCM_RETURN_IF_ERROR(Append(zeros, n));
    }
    return Status::OK();
  }

  Status Flush() {
    const char* p = buf_.data();
    size_t n = buf_.size();
    while (n != 0) {
      const ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(path_ + ": write: " +
                               std::string(std::strerror(errno)));
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    buf_.clear();
    return Status::OK();
  }

  uint64_t offset() const { return offset_; }

 private:
  static constexpr size_t kBufCap = 1u << 20;
  int fd_;
  std::string path_;
  std::string buf_;
  uint64_t offset_ = 0;
};

}  // namespace

const char* CsrSectionName(int section) {
  switch (section) {
    case kCsrDegrees: return "degrees";
    case kCsrOffsets: return "offsets";
    case kCsrOriginalIds: return "original-ids";
    case kCsrAdjacency: return "adjacency";
    default: return "unknown";
  }
}

Status WriteCsrSnapshot(const Graph& g,
                        const std::vector<uint64_t>& original_ids,
                        const std::string& path,
                        const CsrWriteOptions& opts) {
  if (opts.page_size < kCsrMinPageSize || !IsPow2(opts.page_size)) {
    return Status::InvalidArgument(
        "snapshot page size must be a power of two >= " +
        std::to_string(kCsrMinPageSize) + ", got " +
        std::to_string(opts.page_size));
  }
  const uint32_t n = g.NumVertices();
  const uint64_t m = g.NumEdges();
  if (!original_ids.empty() && original_ids.size() != n) {
    return Status::InvalidArgument(
        "original-id map has " + std::to_string(original_ids.size()) +
        " entries for a " + std::to_string(n) + "-vertex graph");
  }

  CsrHeader hdr;
  hdr.page_size = opts.page_size;
  hdr.num_vertices = n;
  hdr.num_edges = m;
  hdr.build_seed = opts.build_seed;
  const uint64_t psz = opts.page_size;
  hdr.sections[kCsrDegrees].bytes = uint64_t{n} * sizeof(uint32_t);
  hdr.sections[kCsrOffsets].bytes = (uint64_t{n} + 1) * sizeof(uint64_t);
  hdr.sections[kCsrOriginalIds].bytes = uint64_t{n} * sizeof(uint64_t);
  hdr.sections[kCsrAdjacency].bytes = 2 * m * sizeof(VertexId);
  uint64_t off = psz;  // header occupies page 0
  for (CsrSectionDesc& s : hdr.sections) {
    s.file_offset = off;
    off = AlignUp(off + s.bytes, psz);
  }
  hdr.file_bytes =
      hdr.sections[kCsrAdjacency].file_offset +
      hdr.sections[kCsrAdjacency].bytes + sizeof(kCsrTailMagic);

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(path + ": open: " +
                           std::string(std::strerror(errno)));
  }
  FileWriter out(fd, path);
  auto fail = [&](Status s) {
    ::close(fd);
    ::unlink(path.c_str());
    return s;
  };

  // Pass 1: header with a zero checksum; rewritten once sections land.
  std::string header_img = EncodeHeader(hdr);
  if (Status s = out.Append(header_img.data(), header_img.size()); !s.ok())
    return fail(s);

  // Degrees.
  if (Status s = out.PadTo(hdr.sections[kCsrDegrees].file_offset); !s.ok())
    return fail(s);
  {
    std::vector<uint32_t> degrees(n);
    for (VertexId v = 0; v < n; ++v) degrees[v] = g.Degree(v);
    hdr.sections[kCsrDegrees].checksum =
        Fingerprint(reinterpret_cast<const char*>(degrees.data()),
                    hdr.sections[kCsrDegrees].bytes);
    if (Status s = out.Append(degrees.data(),
                              hdr.sections[kCsrDegrees].bytes);
        !s.ok())
      return fail(s);
  }

  // Offsets.
  if (Status s = out.PadTo(hdr.sections[kCsrOffsets].file_offset); !s.ok())
    return fail(s);
  {
    std::vector<uint64_t> offsets(uint64_t{n} + 1, 0);
    for (VertexId v = 0; v < n; ++v)
      offsets[v + 1] = offsets[v] + g.Degree(v);
    hdr.sections[kCsrOffsets].checksum =
        Fingerprint(reinterpret_cast<const char*>(offsets.data()),
                    hdr.sections[kCsrOffsets].bytes);
    if (Status s = out.Append(offsets.data(),
                              hdr.sections[kCsrOffsets].bytes);
        !s.ok())
      return fail(s);
  }

  // Original ids (identity when the caller has none).
  if (Status s = out.PadTo(hdr.sections[kCsrOriginalIds].file_offset);
      !s.ok())
    return fail(s);
  {
    std::vector<uint64_t> ids;
    if (original_ids.empty()) {
      ids.resize(n);
      for (VertexId v = 0; v < n; ++v) ids[v] = v;
    } else {
      ids = original_ids;
    }
    hdr.sections[kCsrOriginalIds].checksum =
        Fingerprint(reinterpret_cast<const char*>(ids.data()),
                    hdr.sections[kCsrOriginalIds].bytes);
    if (Status s = out.Append(ids.data(),
                              hdr.sections[kCsrOriginalIds].bytes);
        !s.ok())
      return fail(s);
  }

  // Adjacency, streamed per vertex.
  if (Status s = out.PadTo(hdr.sections[kCsrAdjacency].file_offset); !s.ok())
    return fail(s);
  {
    uint64_t fp = kFingerprintSeed;
    for (VertexId v = 0; v < n; ++v) {
      auto adj = g.Neighbors(v);
      if (adj.empty()) continue;
      const char* bytes = reinterpret_cast<const char*>(adj.data());
      const size_t len = adj.size() * sizeof(VertexId);
      fp = ExtendFingerprint(fp, bytes, len);
      if (Status s = out.Append(bytes, len); !s.ok()) return fail(s);
    }
    hdr.sections[kCsrAdjacency].checksum = fp;
  }

  // Tail sentinel.
  if (Status s = out.Append(&kCsrTailMagic, sizeof(kCsrTailMagic)); !s.ok())
    return fail(s);
  if (Status s = out.Flush(); !s.ok()) return fail(s);
  QCM_CHECK(out.offset() == hdr.file_bytes)
      << "snapshot writer layout mismatch: wrote " << out.offset()
      << " bytes, header declares " << hdr.file_bytes;

  // Pass 2: final header with section checksums + header checksum.
  header_img = EncodeHeader(hdr);
  hdr.header_checksum =
      Fingerprint(header_img.data(), kCsrHeaderBytes - sizeof(uint64_t));
  header_img = EncodeHeader(hdr);
  for (size_t done = 0; done < header_img.size();) {
    const ssize_t w = ::pwrite(fd, header_img.data() + done,
                               header_img.size() - done, done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return fail(Status::IOError(path + ": pwrite header: " +
                                  std::string(std::strerror(errno))));
    }
    done += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    return fail(Status::IOError(path + ": fsync: " +
                                std::string(std::strerror(errno))));
  }
  ::close(fd);
  return Status::OK();
}

StatusOr<std::shared_ptr<CsrSnapshot>> CsrSnapshot::Open(
    const std::string& path, const OpenOptions& opts) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(path + ": open: " +
                           std::string(std::strerror(errno)));
  }
  auto snap = std::shared_ptr<CsrSnapshot>(new CsrSnapshot());
  snap->path_ = path;
  snap->fd_ = fd;

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IOError(path + ": fstat: " +
                           std::string(std::strerror(errno)));
  }
  const uint64_t actual_bytes = static_cast<uint64_t>(st.st_size);
  if (actual_bytes < kCsrHeaderBytes) {
    return Status::Corruption(
        At(path, 0, "truncated header: file is only " +
                        std::to_string(actual_bytes) + " bytes"));
  }

  // Parse + validate the header from a pread (the page size that governs
  // the mapping is not known until the header is read).
  char raw[kCsrHeaderBytes];
  for (size_t done = 0; done < sizeof(raw);) {
    const ssize_t r = ::pread(fd, raw + done, sizeof(raw) - done, done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(path + ": pread header: " +
                             std::string(std::strerror(errno)));
    }
    if (r == 0) break;
    done += static_cast<size_t>(r);
  }
  CsrHeader& h = snap->hdr_;
  Decoder dec(raw, sizeof(raw));
  QCM_CHECK(dec.GetU32(&h.magic).ok() && dec.GetU32(&h.version).ok() &&
            dec.GetU32(&h.page_size).ok() &&
            dec.GetU32(&h.num_vertices).ok() &&
            dec.GetU64(&h.num_edges).ok() && dec.GetU64(&h.build_seed).ok() &&
            dec.GetU64(&h.file_bytes).ok());
  for (CsrSectionDesc& s : h.sections) {
    QCM_CHECK(dec.GetU64(&s.file_offset).ok() && dec.GetU64(&s.bytes).ok() &&
              dec.GetU64(&s.checksum).ok());
  }
  QCM_CHECK(dec.GetU64(&h.header_checksum).ok() && dec.Done());

  if (h.magic != kCsrMagic) {
    return Status::Corruption(
        At(path, 0, "bad magic " + Hex(h.magic) + " (want " +
                        Hex(kCsrMagic) + "): not a .qcsr snapshot"));
  }
  if (h.version != kCsrVersion) {
    return Status::Corruption(
        At(path, 4, "unsupported snapshot version " +
                        std::to_string(h.version) + " (this build reads v" +
                        std::to_string(kCsrVersion) + ")"));
  }
  if (h.page_size < kCsrMinPageSize || !IsPow2(h.page_size) ||
      h.page_size > (1u << 30)) {
    return Status::Corruption(
        At(path, 8, "bad page size " + std::to_string(h.page_size)));
  }
  const uint64_t want_hdr_fp =
      Fingerprint(raw, kCsrHeaderBytes - sizeof(uint64_t));
  if (h.header_checksum != want_hdr_fp) {
    return Status::Corruption(
        At(path, kCsrHeaderBytes - sizeof(uint64_t),
           "header checksum mismatch (stored " + Hex(h.header_checksum) +
               ", computed " + Hex(want_hdr_fp) + ")"));
  }
  if (h.file_bytes != actual_bytes) {
    return Status::Corruption(
        At(path, 32, "torn tail: header declares " +
                         std::to_string(h.file_bytes) + " bytes, file has " +
                         std::to_string(actual_bytes)));
  }

  // Section geometry: expected sizes, page alignment, in-bounds.
  const uint64_t n = h.num_vertices;
  const uint64_t expected_bytes[kCsrNumSections] = {
      n * sizeof(uint32_t), (n + 1) * sizeof(uint64_t), n * sizeof(uint64_t),
      2 * h.num_edges * sizeof(VertexId)};
  for (int i = 0; i < kCsrNumSections; ++i) {
    const CsrSectionDesc& s = h.sections[i];
    if (s.bytes != expected_bytes[i] || s.file_offset % h.page_size != 0 ||
        s.file_offset < h.page_size ||
        s.file_offset + s.bytes + sizeof(kCsrTailMagic) > h.file_bytes) {
      return Status::Corruption(
          At(path, 40 + static_cast<uint64_t>(i) * 24,
             std::string(CsrSectionName(i)) + " section descriptor invalid" +
                 " (offset " + std::to_string(s.file_offset) + ", " +
                 std::to_string(s.bytes) + " bytes, expected " +
                 std::to_string(expected_bytes[i]) + " bytes)"));
    }
  }

  uint64_t tail = 0;
  for (size_t done = 0; done < sizeof(tail);) {
    const ssize_t r =
        ::pread(fd, reinterpret_cast<char*>(&tail) + done,
                sizeof(tail) - done, h.file_bytes - sizeof(tail) + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(path + ": pread tail: " +
                             std::string(std::strerror(errno)));
    }
    if (r == 0) break;
    done += static_cast<size_t>(r);
  }
  if (tail != kCsrTailMagic) {
    return Status::Corruption(
        At(path, h.file_bytes - sizeof(tail),
           "torn tail: sentinel is " + Hex(tail) + " (want " +
               Hex(kCsrTailMagic) + ")"));
  }

  void* map = ::mmap(nullptr, h.file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    return Status::IOError(path + ": mmap: " +
                           std::string(std::strerror(errno)));
  }
  snap->map_ = static_cast<uint8_t*>(map);
  snap->map_len_ = h.file_bytes;
  snap->degrees_ = reinterpret_cast<const uint32_t*>(
      snap->map_ + h.sections[kCsrDegrees].file_offset);
  snap->offsets_ = reinterpret_cast<const uint64_t*>(
      snap->map_ + h.sections[kCsrOffsets].file_offset);
  snap->original_ids_ = reinterpret_cast<const uint64_t*>(
      snap->map_ + h.sections[kCsrOriginalIds].file_offset);
  snap->adj_ = reinterpret_cast<const VertexId*>(
      snap->map_ + h.sections[kCsrAdjacency].file_offset);

  // Offset-array sanity: every accessor indexes adjacency through these,
  // so a corrupt row must be caught here regardless of checksum options.
  if (snap->offsets_[0] != 0 || snap->offsets_[n] != 2 * h.num_edges) {
    return Status::Corruption(
        At(path, h.sections[kCsrOffsets].file_offset,
           "offsets section endpoints invalid (offsets[0]=" +
               std::to_string(snap->offsets_[0]) + ", offsets[n]=" +
               std::to_string(snap->offsets_[n]) + ", 2m=" +
               std::to_string(2 * h.num_edges) + ")"));
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (snap->offsets_[v] > snap->offsets_[v + 1]) {
      return Status::Corruption(
          At(path,
             h.sections[kCsrOffsets].file_offset + v * sizeof(uint64_t),
             "offsets section not monotone at vertex " + std::to_string(v)));
    }
  }

  const int last =
      opts.verify_adjacency ? kCsrAdjacency : kCsrOriginalIds;
  if (opts.verify_sections) {
    for (int i = 0; i <= last; ++i) {
      const CsrSectionDesc& s = h.sections[i];
      const uint64_t fp = Fingerprint(
          reinterpret_cast<const char*>(snap->map_ + s.file_offset),
          s.bytes);
      if (fp != s.checksum) {
        return Status::Corruption(
            At(path, s.file_offset,
               std::string(CsrSectionName(i)) +
                   " section checksum mismatch (stored " + Hex(s.checksum) +
                   ", computed " + Hex(fp) + ")"));
      }
    }
  }
  return snap;
}

CsrSnapshot::~CsrSnapshot() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<Graph> CsrSnapshot::ToGraph() const {
  std::vector<Edge> edges;
  edges.reserve(hdr_.num_edges);
  for (VertexId v = 0; v < hdr_.num_vertices; ++v) {
    for (VertexId u : Neighbors(v)) {
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return Graph::FromEdges(hdr_.num_vertices, std::move(edges));
}

}  // namespace qcm
