#include "graph/kcore.h"

#include <algorithm>

namespace qcm {

std::vector<uint32_t> CoreDecomposition(const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> degree(n), core(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort vertices by degree.
  std::vector<uint32_t> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v]];
  uint32_t start = 0;
  for (uint32_t d = 0; d <= max_degree; ++d) {
    uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(n);    // vertices sorted by current degree
  std::vector<uint32_t> pos(n);      // position of each vertex in `order`
  for (VertexId v = 0; v < n; ++v) {
    pos[v] = bin[degree[v]];
    order[pos[v]] = v;
    ++bin[degree[v]];
  }
  // Restore bin[d] = first index of degree-d block.
  for (uint32_t d = max_degree; d >= 1; --d) bin[d] = bin[d - 1];
  if (max_degree + 1 < bin.size()) bin[max_degree + 1] = n;
  bin[0] = 0;

  for (uint32_t i = 0; i < n; ++i) {
    VertexId v = order[i];
    core[v] = degree[v];
    for (VertexId u : g.Neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Move u to the front of its degree block, then decrement.
        uint32_t du = degree[u];
        uint32_t pu = pos[u];
        uint32_t pw = bin[du];
        VertexId w = order[pw];
        if (u != w) {
          order[pu] = w;
          order[pw] = u;
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return core;
}

std::vector<uint8_t> KCoreMask(const Graph& g, uint32_t k) {
  std::vector<uint32_t> core = CoreDecomposition(g);
  std::vector<uint8_t> mask(g.NumVertices(), 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    mask[v] = core[v] >= k ? 1 : 0;
  }
  return mask;
}

uint64_t KCoreSize(const Graph& g, uint32_t k) {
  std::vector<uint8_t> mask = KCoreMask(g, k);
  uint64_t count = 0;
  for (uint8_t m : mask) count += m;
  return count;
}

}  // namespace qcm
