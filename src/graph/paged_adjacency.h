// Buffer-managed paged adjacency storage over a CsrSnapshot mmap -- the
// out-of-core half of the graph store (kuzu-style Lists paging adapted to
// a read-only CSR): a rank can mine a partition whose adjacency bytes
// exceed its --graph-memory-budget, because adjacency pages are faulted
// in on demand and evicted with madvise(MADV_DONTNEED) under a CLOCK
// second-chance policy (the same eviction discipline VertexCache uses for
// remote adjacencies, applied to local pages).
//
// Residency model: the snapshot mapping is read-only and file-backed, so
// "eviction" only drops the physical page -- a later access transparently
// refaults identical bytes. Spans returned by Adjacency() therefore stay
// valid for the store's lifetime (the EgoVertexSource contract only
// requires validity until the next call, so this is strictly stronger),
// and concurrent compers never see a dangling pointer; the budget bounds
// resident set size, not correctness.
//
// Small-list / large-list split: lists of at most `inline_degree` entries
// are copied once into a resident arena at construction (serving a
// 32-byte list should not pin and thrash a whole page under a tight
// budget); longer lists are served from the mapping through the pager. A
// zero budget disables paging entirely: every list is a direct mmap span
// with no locking (the default, full-speed resident mode).

#ifndef QCM_GRAPH_PAGED_ADJACENCY_H_
#define QCM_GRAPH_PAGED_ADJACENCY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr_snapshot.h"
#include "graph/graph.h"

namespace qcm {

struct PagedStoreConfig {
  /// Adjacency residency budget in bytes; 0 = fully resident (no paging).
  uint64_t memory_budget_bytes = 0;
  /// Lists with at most this many entries live in the resident arena.
  uint32_t inline_degree = 8;
  int num_machines = 1;
  /// Rank whose partition this store serves; -1 serves every vertex
  /// (single-process mode).
  int local_rank = -1;
};

/// Counter snapshot; mirrors into EngineCountersSnapshot for the report.
struct PagedStoreStatsSnapshot {
  uint64_t page_pins = 0;         // page references taken through the pager
  uint64_t page_ins = 0;          // pages faulted into the frame pool
  uint64_t page_evictions = 0;    // pages dropped via MADV_DONTNEED
  uint64_t fault_stall_usec = 0;  // wall time blocked on page-in faults
  uint64_t inline_served = 0;     // reads served by the inline arena
  uint64_t resident_pages = 0;    // frames currently tracked resident
  uint64_t frame_capacity = 0;    // budget in pages
  uint64_t inline_bytes = 0;      // resident arena footprint
};

class PagedAdjacencyStore {
 public:
  PagedAdjacencyStore(std::shared_ptr<CsrSnapshot> snapshot,
                      const PagedStoreConfig& config);

  /// Sorted adjacency of v (which must belong to this store's partition
  /// when local_rank >= 0). Thread-safe; the returned span stays valid
  /// for the store's lifetime regardless of later evictions.
  std::span<const VertexId> Adjacency(VertexId v);

  uint32_t Degree(VertexId v) const { return snapshot_->Degree(v); }

  bool paging_enabled() const { return config_.memory_budget_bytes > 0; }
  uint64_t budget_bytes() const { return config_.memory_budget_bytes; }
  uint64_t inline_arena_bytes() const {
    return arena_.size() * sizeof(VertexId) +
           arena_offsets_.size() * sizeof(uint64_t);
  }

  PagedStoreStatsSnapshot stats() const;

 private:
  struct Frame {
    uint32_t page = 0;  // file page index
    uint8_t ref = 0;    // CLOCK reference bit
    uint32_t pins = 0;  // faulting readers; never evicted while > 0
  };

  bool Owned(VertexId v) const {
    return config_.local_rank < 0 ||
           static_cast<int>(v % static_cast<uint32_t>(
                                    config_.num_machines)) ==
               config_.local_rank;
  }

  /// Ensures file page `page` has a frame; returns whether this call
  /// faulted it in (the caller must touch it and then Unpin). Called and
  /// returns with mu_ held for the bookkeeping, but the actual touch
  /// happens outside the lock under the pin.
  bool PinPage(uint32_t page);
  void UnpinPage(uint32_t page);

  std::shared_ptr<CsrSnapshot> snapshot_;
  PagedStoreConfig config_;
  uint64_t page_size_ = 0;
  uint64_t adj_file_offset_ = 0;  // adjacency section start in the file
  size_t frame_capacity_ = 0;

  // Inline arena: rows only for owned lists with degree <= inline_degree
  // (other rows have zero extent). Built once; immutable afterwards.
  std::vector<VertexId> arena_;
  std::vector<uint64_t> arena_offsets_;  // size NumVertices()+1

  mutable std::mutex mu_;
  std::unordered_map<uint32_t, size_t> slot_of_page_;
  std::vector<Frame> frames_;  // CLOCK ring; may transiently overflow
                               // capacity while every frame is pinned
  size_t clock_hand_ = 0;

  std::atomic<uint64_t> page_pins_{0};
  std::atomic<uint64_t> page_ins_{0};
  std::atomic<uint64_t> page_evictions_{0};
  std::atomic<uint64_t> fault_stall_usec_{0};
  std::atomic<uint64_t> inline_served_{0};
};

}  // namespace qcm

#endif  // QCM_GRAPH_PAGED_ADJACENCY_H_
