// EgoBuilder: the single implementation of task-subgraph materialization
// (the paper's Alg. 6-7) shared by every miner in the system.
//
// A spawned root's task subgraph is its 2-hop ego network, shrunk:
//   * iteration 1 (Alg. 6) pulls the root's 1-hop frontier, keeps only ids
//     larger than the root (set-enumeration discipline, Figure 5), splits
//     it by the Theorem-2 degree filter (deg >= k), stages the surviving
//     vertices with their adjacency, and peels the staged structure to its
//     k-core -- counting not-yet-pulled 2-hop endpoints ("phantoms")
//     toward peel degrees exactly as Alg. 6 line 10 prescribes;
//   * iteration 2 (Alg. 7) pulls the 2-hop frontier, restricts adjacency
//     to the pulled ball B (anything outside B is 3 hops from the root and
//     cannot share a diameter-2 quasi-clique with it, Theorem 1), peels
//     again, and compiles the survivors into a CSR LocalGraph.
//
// The builder is parameterized over EgoVertexSource so the serial miner
// (direct CSR reads) and the G-thinker ComputeContext (simulated vertex
// pulling, metrics-counted) drive the identical code.
//
// All intermediate state lives in an EgoScratch of flat epoch-marked
// arrays: after warm-up, building an ego network performs zero heap
// allocations besides the returned LocalGraph itself. One scratch is meant
// to be owned per mining thread (per comper) and reused across tasks.

#ifndef QCM_GRAPH_EGO_BUILDER_H_
#define QCM_GRAPH_EGO_BUILDER_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/local_graph.h"

namespace qcm {

/// Read access to the big graph's vertices, from whatever medium the caller
/// mines over. Adjacency spans are valid only until the next Adjacency()
/// call on the same source.
class EgoVertexSource {
 public:
  virtual ~EgoVertexSource() = default;

  /// Degree of v (vertex metadata; no adjacency transfer). A source may
  /// report 0 for vertices it wants excluded from materialization.
  virtual uint32_t Degree(VertexId v) = 0;

  /// Sorted adjacency list of v.
  virtual std::span<const VertexId> Adjacency(VertexId v) = 0;
};

/// EgoVertexSource over an in-memory CSR Graph, optionally masked: vertices
/// with mask[v] == 0 report degree 0 and are therefore never staged (the
/// serial miner passes its global k-core mask so egos never contain
/// globally peeled vertices).
class GraphVertexSource final : public EgoVertexSource {
 public:
  explicit GraphVertexSource(const Graph* graph,
                             const std::vector<uint8_t>* mask = nullptr)
      : graph_(graph), mask_(mask) {}

  uint32_t Degree(VertexId v) override {
    if (mask_ != nullptr && !(*mask_)[v]) return 0;
    return graph_->Degree(v);
  }

  std::span<const VertexId> Adjacency(VertexId v) override {
    return graph_->Neighbors(v);
  }

 private:
  const Graph* graph_;
  const std::vector<uint8_t>* mask_;
};

/// Reusable flat scratch for EgoBuilder. Per-vertex arrays are invalidated
/// wholesale by bumping an epoch counter, so resetting between tasks is
/// O(1) and staging never touches a hash map. Grows monotonically to the
/// largest vertex-id space seen; steady-state use allocates nothing.
class EgoScratch {
 public:
  EgoScratch() = default;

  /// Ensures per-vertex arrays cover ids [0, num_vertices) and starts a
  /// fresh task (previous marks and staged entries all become invalid).
  void Reset(uint32_t num_vertices);

  /// Approximate heap footprint in bytes.
  uint64_t MemoryBytes() const;

 private:
  friend class EgoBuilder;

  // Guards against the (never expected in practice) epoch wrap-around: on
  // wrap every per-vertex array is cleared explicitly.
  void HandleEpochWrap();
  // Grows per-vertex arrays to cover id v.
  void EnsureVertex(VertexId v);

  uint32_t epoch_ = 0;

  // ---- Per-vertex arrays (indexed by global VertexId) ----
  std::vector<uint32_t> mark_epoch_;  // epoch in which flags_[v] is valid
  std::vector<uint8_t> flags_;        // kOneHop / kExcluded / kInBall bits
  std::vector<uint32_t> slot_epoch_;  // epoch in which slot_of_[v] is valid
  std::vector<uint32_t> slot_of_;     // staged slot index of v

  // ---- Per-slot arrays (one slot per staged vertex, dense) ----
  std::vector<VertexId> slot_vid_;
  std::vector<uint8_t> slot_alive_;
  std::vector<uint32_t> slot_adj_begin_;  // [begin, end) into adj_pool_
  std::vector<uint32_t> slot_adj_end_;

  // ---- Pools and work buffers ----
  std::vector<VertexId> adj_pool_;     // staged adjacency, bump-allocated
  std::vector<VertexId> frontier_;     // V1 / second-hop staging lists
  std::vector<VertexId> filter_buf_;   // per-vertex filtered adjacency
  std::vector<VertexId> phantom_buf_;  // sorted distinct phantom targets
  std::vector<VertexId> vids_buf_;     // sorted alive vids at compile time
  std::vector<uint32_t> local_buf_;    // slot -> local id at compile time
  std::vector<uint32_t> cursor_buf_;   // CSR fill cursors at compile time
  std::vector<uint64_t> edge_buf_;     // packed (min,max) local edge list
};

/// Builds LocalGraphs from staged per-vertex adjacency. Two usage modes:
///
///   * BuildEgo() runs Alg. 6-7 end to end against an EgoVertexSource --
///     the one call every miner's materialization path goes through;
///   * the Stage / PeelToKCore / Build primitives are exposed directly for
///     tests and ad-hoc LocalGraph construction (they are the same
///     primitives BuildEgo is made of).
///
/// A default-constructed builder owns a private scratch; hot paths pass a
/// long-lived per-thread scratch instead.
class EgoBuilder {
 public:
  /// Uses an internally owned scratch (convenience for tests/tools).
  EgoBuilder();

  /// Borrows `scratch` (must outlive the builder). The scratch is reset
  /// lazily by BuildEgo()/Reset(); a freshly borrowed scratch can be used
  /// for staging immediately after construction.
  explicit EgoBuilder(EgoScratch* scratch);

  EgoBuilder(const EgoBuilder&) = delete;
  EgoBuilder& operator=(const EgoBuilder&) = delete;

  /// Materializes the task subgraph of `root` (Alg. 6-7): 1-hop pull with
  /// the Theorem-2 degree filter and the > root discipline, phantom-aware
  /// k-core peeling, 2-hop pull under the Theorem-1 diameter bound, final
  /// CSR compile. Returns an empty LocalGraph when the task dies (root
  /// peeled, no qualifying frontier, or fewer than `min_size` survivors).
  /// Equivalent to BuildEgoFirstHop + SecondHopPullSet + BuildEgoSecondHop
  /// run back to back.
  LocalGraph BuildEgo(EgoVertexSource& source, VertexId root, uint32_t k,
                      uint32_t min_size);

  // ---- Phased build (the pull-based engine's iteration boundaries) ----
  //
  // The G-thinker compute model runs Alg. 6 and Alg. 7 in separate
  // iterations with a batched vertex pull (and a task suspension) between
  // them. These three calls expose that boundary: FirstHop stages and
  // peels the 1-hop structure, SecondHopPullSet names exactly the
  // vertices Alg. 7 will read (so the caller can Request() them and
  // suspend), and SecondHop finishes the build. State lives in the
  // scratch, so the trio must run on one builder without interleaving
  // other builds; a caller that suspended in between instead re-runs
  // BuildEgo from its (now pinned) vertices.

  /// Alg. 6 alone: stages root + the qualifying 1-hop frontier with
  /// filtered adjacency and peels to the k-core. Returns false when the
  /// task dies here (no qualifying frontier or root peeled).
  bool BuildEgoFirstHop(EgoVertexSource& source, VertexId root, uint32_t k);

  /// The vertices Alg. 7 will pull: 2-hop frontier members (marked into
  /// the ball as a side effect) passing the Theorem-2 degree filter,
  /// ascending. Call exactly once, after a successful BuildEgoFirstHop.
  std::vector<VertexId> SecondHopPullSet(EgoVertexSource& source,
                                         uint32_t k);

  /// Alg. 7: stages the 2-hop ball computed by SecondHopPullSet, peels,
  /// and compiles. Returns an empty LocalGraph when the task dies.
  LocalGraph BuildEgoSecondHop(EgoVertexSource& source, VertexId root,
                               uint32_t k, uint32_t min_size);

  // ---- Staging primitives ----

  /// Discards all staged state and starts a fresh build.
  void Reset();

  /// Stages a vertex with its (global-id) adjacency. The adjacency may
  /// reference vertices that are never staged ("phantom" 2-hop endpoints
  /// in Alg. 6); they count toward peeling degrees but are dropped at
  /// Build() unless staged by then. Staging the same vertex twice
  /// overwrites.
  void Stage(VertexId v, std::span<const VertexId> adj);
  void Stage(VertexId v, std::initializer_list<VertexId> adj) {
    Stage(v, std::span<const VertexId>(adj.begin(), adj.size()));
  }

  /// True iff v has been staged and not peeled.
  bool IsStaged(VertexId v) const;

  /// Number of staged (alive) vertices.
  size_t StagedCount() const;

  /// Current adjacency length of a staged vertex (phantoms included);
  /// 0 if not staged.
  size_t AdjLength(VertexId v) const;

  /// Distinct adjacency targets of alive entries that are not themselves
  /// staged-alive ("phantom" endpoints -- the 2-hop frontier Alg. 6 pulls
  /// in its lines 12-15), ascending.
  std::vector<VertexId> PhantomTargets() const;

  /// Peels staged vertices whose current adjacency length is < k,
  /// cascading removals (entries pointing at peeled vertices are erased;
  /// phantom entries are never peeled). Mirrors "t.g <- k-core(t.g)" in
  /// Alg. 6 line 10 / Alg. 7 line 9.
  void PeelToKCore(uint32_t k);

  /// Compiles the staged structure into a LocalGraph. Adjacency entries
  /// whose target was never staged (or was peeled) are dropped; edges are
  /// made symmetric (an edge is kept iff either endpoint listed it).
  /// When a dense threshold is set and the compiled subgraph has
  /// 0 < n <= threshold vertices, its adjacency bitmap rows are
  /// materialized too (LocalGraph::BuildDenseRows).
  LocalGraph Build() const;

  /// Subgraphs compiled with n <= `threshold` vertices get dense bitmap
  /// rows; <= 0 disables dense materialization (the default).
  void set_dense_threshold(int64_t threshold) {
    dense_threshold_ = threshold > 0 ? static_cast<uint64_t>(threshold) : 0;
  }

 private:
  // Phantom targets of alive entries, sorted distinct, into
  // scratch->phantom_buf_.
  void CollectPhantomTargets() const;

  // Epoch-validated per-vertex flag helpers (kOneHop/kExcluded/kInBall).
  void MarkFlag(VertexId v, uint8_t bit);
  bool HasFlag(VertexId v, uint8_t bit) const;

  // Computes the 2-hop ball into the scratch frontier and marks kInBall
  // (the allocation-free core of SecondHopPullSet).
  void MarkSecondHopBall();

  std::unique_ptr<EgoScratch> owned_;
  EgoScratch* scratch_;
  uint64_t dense_threshold_ = 0;
};

}  // namespace qcm

#endif  // QCM_GRAPH_EGO_BUILDER_H_
