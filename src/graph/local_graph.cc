#include "graph/local_graph.h"

#include <algorithm>
#include <deque>

namespace qcm {

LocalId LocalGraph::FindLocal(VertexId global) const {
  auto it = std::lower_bound(vids_.begin(), vids_.end(), global);
  if (it == vids_.end() || *it != global) return n();
  return static_cast<LocalId>(it - vids_.begin());
}

bool LocalGraph::HasEdge(LocalId u, LocalId v) const {
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

LocalGraph LocalGraph::Induce(const std::vector<LocalId>& keep) const {
  LocalGraph out;
  const uint32_t old_n = n();
  const uint32_t new_n = static_cast<uint32_t>(keep.size());
  // old local id -> new local id (new_n = absent).
  std::vector<LocalId> remap(old_n, new_n);
  out.vids_.reserve(new_n);
  for (uint32_t i = 0; i < new_n; ++i) {
    remap[keep[i]] = i;
    out.vids_.push_back(vids_[keep[i]]);
  }
  out.offsets_.assign(new_n + 1, 0);
  // First pass: count surviving adjacency entries.
  for (uint32_t i = 0; i < new_n; ++i) {
    uint32_t count = 0;
    for (LocalId w : Neighbors(keep[i])) {
      if (remap[w] != new_n) ++count;
    }
    out.offsets_[i + 1] = out.offsets_[i] + count;
  }
  out.adj_.resize(out.offsets_[new_n]);
  for (uint32_t i = 0; i < new_n; ++i) {
    uint32_t pos = out.offsets_[i];
    for (LocalId w : Neighbors(keep[i])) {
      if (remap[w] != new_n) out.adj_[pos++] = remap[w];
    }
    // Source adjacency is sorted ascending and remap is monotone over kept
    // ids, so the output range is already sorted.
  }
  return out;
}

LocalGraph LocalGraph::KCore(uint32_t k) const {
  const uint32_t nn = n();
  std::vector<uint32_t> degree(nn);
  std::vector<uint8_t> alive(nn, 1);
  std::deque<LocalId> queue;
  for (LocalId v = 0; v < nn; ++v) {
    degree[v] = Degree(v);
    if (degree[v] < k) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    LocalId v = queue.front();
    queue.pop_front();
    for (LocalId u : Neighbors(v)) {
      if (alive[u] && --degree[u] < k) {
        alive[u] = 0;
        queue.push_back(u);
      }
    }
  }
  std::vector<LocalId> keep;
  keep.reserve(nn);
  for (LocalId v = 0; v < nn; ++v) {
    if (alive[v]) keep.push_back(v);
  }
  if (keep.size() == nn) return *this;
  return Induce(keep);
}

void LocalGraph::Encode(Encoder* enc) const {
  enc->PutU32Vector(vids_);
  enc->PutU32Vector(offsets_);
  enc->PutU32Vector(adj_);
}

StatusOr<LocalGraph> LocalGraph::Decode(Decoder* dec) {
  LocalGraph g;
  QCM_RETURN_IF_ERROR(dec->GetU32Vector(&g.vids_));
  QCM_RETURN_IF_ERROR(dec->GetU32Vector(&g.offsets_));
  QCM_RETURN_IF_ERROR(dec->GetU32Vector(&g.adj_));
  // Structural validation: decoded blobs come from disk spill files.
  if (g.offsets_.size() != g.vids_.size() + 1 &&
      !(g.vids_.empty() && g.offsets_.empty())) {
    return Status::Corruption("LocalGraph: offsets/vids size mismatch");
  }
  if (!g.offsets_.empty()) {
    if (g.offsets_.front() != 0 || g.offsets_.back() != g.adj_.size()) {
      return Status::Corruption("LocalGraph: bad offset bounds");
    }
    for (size_t i = 1; i < g.offsets_.size(); ++i) {
      if (g.offsets_[i] < g.offsets_[i - 1]) {
        return Status::Corruption("LocalGraph: offsets not monotone");
      }
    }
    for (LocalId t : g.adj_) {
      if (t >= g.vids_.size()) {
        return Status::Corruption("LocalGraph: adjacency target out of range");
      }
    }
  } else if (!g.adj_.empty()) {
    return Status::Corruption("LocalGraph: adjacency without vertices");
  }
  return g;
}

void LocalGraphBuilder::Stage(VertexId v, std::vector<VertexId> adj) {
  Entry& e = entries_[v];
  e.adj = std::move(adj);
  e.alive = true;
}

bool LocalGraphBuilder::IsStaged(VertexId v) const {
  auto it = entries_.find(v);
  return it != entries_.end() && it->second.alive;
}

size_t LocalGraphBuilder::StagedCount() const {
  size_t count = 0;
  for (const auto& [vid, e] : entries_) {
    if (e.alive) ++count;
  }
  return count;
}

size_t LocalGraphBuilder::AdjLength(VertexId v) const {
  auto it = entries_.find(v);
  if (it == entries_.end() || !it->second.alive) return 0;
  return it->second.adj.size();
}

std::vector<VertexId> LocalGraphBuilder::PhantomTargets() const {
  std::vector<VertexId> out;
  for (const auto& [vid, e] : entries_) {
    if (!e.alive) continue;
    for (VertexId w : e.adj) {
      auto it = entries_.find(w);
      if (it == entries_.end() || !it->second.alive) out.push_back(w);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void LocalGraphBuilder::PeelToKCore(uint32_t k) {
  // Multi-pass fixpoint: drop adjacency entries that point at peeled staged
  // vertices, then peel newly under-degree vertices. Entries pointing at
  // never-staged ("phantom") vertices are retained and count toward the
  // degree, exactly as Alg. 6 line 10 prescribes ("a destination w that is
  // 2 hops from v stays untouched ... though w is counted for degree
  // checking").
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [vid, e] : entries_) {
      if (!e.alive) continue;
      auto dead = [this](VertexId w) {
        auto it = entries_.find(w);
        return it != entries_.end() && !it->second.alive;
      };
      e.adj.erase(std::remove_if(e.adj.begin(), e.adj.end(), dead),
                  e.adj.end());
      if (e.adj.size() < k) {
        e.alive = false;
        changed = true;
      }
    }
  }
}

LocalGraph LocalGraphBuilder::Build() const {
  std::vector<VertexId> vids;
  vids.reserve(entries_.size());
  for (const auto& [vid, e] : entries_) {
    if (e.alive) vids.push_back(vid);
  }
  std::sort(vids.begin(), vids.end());

  auto local_of = [&vids](VertexId v) -> uint32_t {
    auto it = std::lower_bound(vids.begin(), vids.end(), v);
    if (it == vids.end() || *it != v) {
      return static_cast<uint32_t>(vids.size());
    }
    return static_cast<uint32_t>(it - vids.begin());
  };

  const uint32_t n = static_cast<uint32_t>(vids.size());
  // An edge survives iff either endpoint listed it and both are alive.
  std::vector<std::pair<LocalId, LocalId>> edges;
  for (const auto& [vid, e] : entries_) {
    if (!e.alive) continue;
    LocalId lu = local_of(vid);
    for (VertexId w : e.adj) {
      LocalId lw = local_of(w);
      if (lw == n || lw == lu) continue;  // phantom/peeled or self-loop
      edges.emplace_back(std::min(lu, lw), std::max(lu, lw));
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  LocalGraph g;
  g.vids_ = std::move(vids);
  g.offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(edges.size() * 2);
  std::vector<uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adj_[cursor[u]++] = v;
    g.adj_[cursor[v]++] = u;
  }
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(g.adj_.begin() + g.offsets_[v], g.adj_.begin() + g.offsets_[v + 1]);
  }
  return g;
}

}  // namespace qcm
