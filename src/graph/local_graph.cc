#include "graph/local_graph.h"

#include <algorithm>
#include <deque>

namespace qcm {

LocalId LocalGraph::FindLocal(VertexId global) const {
  auto it = std::lower_bound(vids_.begin(), vids_.end(), global);
  if (it == vids_.end() || *it != global) return n();
  return static_cast<LocalId>(it - vids_.begin());
}

bool LocalGraph::HasEdge(LocalId u, LocalId v) const {
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

LocalGraph LocalGraph::Induce(const std::vector<LocalId>& keep) const {
  LocalGraph out;
  const uint32_t old_n = n();
  const uint32_t new_n = static_cast<uint32_t>(keep.size());
  // old local id -> new local id (new_n = absent).
  std::vector<LocalId> remap(old_n, new_n);
  out.vids_.reserve(new_n);
  for (uint32_t i = 0; i < new_n; ++i) {
    remap[keep[i]] = i;
    out.vids_.push_back(vids_[keep[i]]);
  }
  out.offsets_.assign(new_n + 1, 0);
  // First pass: count surviving adjacency entries.
  for (uint32_t i = 0; i < new_n; ++i) {
    uint32_t count = 0;
    for (LocalId w : Neighbors(keep[i])) {
      if (remap[w] != new_n) ++count;
    }
    out.offsets_[i + 1] = out.offsets_[i] + count;
  }
  out.adj_.resize(out.offsets_[new_n]);
  for (uint32_t i = 0; i < new_n; ++i) {
    uint32_t pos = out.offsets_[i];
    for (LocalId w : Neighbors(keep[i])) {
      if (remap[w] != new_n) out.adj_[pos++] = remap[w];
    }
    // Source adjacency is sorted ascending and remap is monotone over kept
    // ids, so the output range is already sorted.
  }
  // The induced subgraph is never larger than its source, so a dense source
  // keeps its decomposed tasks (Alg. 8/10) on the dense kernel path too.
  if (has_dense()) out.BuildDenseRows();
  return out;
}

void LocalGraph::BuildDenseRows() {
  const uint32_t nn = n();
  if (nn == 0 || dense_words_ != 0) return;
  dense_words_ = (nn + 63) / 64;
  dense_bits_.assign(static_cast<size_t>(nn) * dense_words_, 0);
  for (LocalId v = 0; v < nn; ++v) {
    uint64_t* row = dense_bits_.data() + static_cast<size_t>(v) * dense_words_;
    for (LocalId w : Neighbors(v)) {
      row[w >> 6] |= uint64_t{1} << (w & 63);
    }
  }
}

LocalGraph LocalGraph::KCore(uint32_t k) const {
  const uint32_t nn = n();
  std::vector<uint32_t> degree(nn);
  std::vector<uint8_t> alive(nn, 1);
  std::deque<LocalId> queue;
  for (LocalId v = 0; v < nn; ++v) {
    degree[v] = Degree(v);
    if (degree[v] < k) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    LocalId v = queue.front();
    queue.pop_front();
    for (LocalId u : Neighbors(v)) {
      if (alive[u] && --degree[u] < k) {
        alive[u] = 0;
        queue.push_back(u);
      }
    }
  }
  std::vector<LocalId> keep;
  keep.reserve(nn);
  for (LocalId v = 0; v < nn; ++v) {
    if (alive[v]) keep.push_back(v);
  }
  if (keep.size() == nn) return *this;
  return Induce(keep);
}

void LocalGraph::Encode(Encoder* enc) const {
  enc->PutU32Vector(vids_);
  enc->PutU32Vector(offsets_);
  enc->PutU32Vector(adj_);
}

StatusOr<LocalGraph> LocalGraph::Decode(Decoder* dec) {
  LocalGraph g;
  QCM_RETURN_IF_ERROR(dec->GetU32Vector(&g.vids_));
  QCM_RETURN_IF_ERROR(dec->GetU32Vector(&g.offsets_));
  QCM_RETURN_IF_ERROR(dec->GetU32Vector(&g.adj_));
  // Structural validation: decoded blobs come from disk spill files.
  if (g.offsets_.size() != g.vids_.size() + 1 &&
      !(g.vids_.empty() && g.offsets_.empty())) {
    return Status::Corruption("LocalGraph: offsets/vids size mismatch");
  }
  if (!g.offsets_.empty()) {
    if (g.offsets_.front() != 0 || g.offsets_.back() != g.adj_.size()) {
      return Status::Corruption("LocalGraph: bad offset bounds");
    }
    for (size_t i = 1; i < g.offsets_.size(); ++i) {
      if (g.offsets_[i] < g.offsets_[i - 1]) {
        return Status::Corruption("LocalGraph: offsets not monotone");
      }
    }
    for (LocalId t : g.adj_) {
      if (t >= g.vids_.size()) {
        return Status::Corruption("LocalGraph: adjacency target out of range");
      }
    }
  } else if (!g.adj_.empty()) {
    return Status::Corruption("LocalGraph: adjacency without vertices");
  }
  return g;
}

}  // namespace qcm
