// SNAP-style edge-list text I/O ("# comment" lines; "u<ws>v" per edge).
// Arbitrary external ids are compacted to dense VertexIds by rank; the
// mapping can be recovered for reporting.

#ifndef QCM_GRAPH_EDGE_IO_H_
#define QCM_GRAPH_EDGE_IO_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace qcm {

/// Result of loading an edge list: compact graph + dense-id -> original-id.
struct LoadedGraph {
  Graph graph;
  std::vector<uint64_t> original_ids;  // indexed by VertexId
};

/// Loads a SNAP-format edge list. Lines starting with '#' or '%' are
/// comments; each other line holds exactly two whitespace-separated
/// non-negative integer ids. Ids are compacted by sorted rank
/// (deterministic). A malformed line (sign, non-digit, missing field,
/// trailing garbage, overflow, or an over-long line) fails the load with
/// a Corruption status naming file:line and quoting the offending text.
StatusOr<LoadedGraph> LoadEdgeList(const std::string& path);

/// Writes the graph as "u v" lines (dense ids), one undirected edge each,
/// with a header comment.
Status SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace qcm

#endif  // QCM_GRAPH_EDGE_IO_H_
