#include "net/tcp_transport.h"

#include <unistd.h>

#include <utility>

#include <chrono>

#include "net/socket_util.h"
#include "util/logging.h"
#include "util/serde.h"

namespace qcm {

namespace {

/// Bring-up steps must not hang forever when a process dies mid-handshake.
constexpr double kHandshakeTimeoutSec = 60.0;

/// A peer closing its sockets during an orderly shutdown can be observed
/// before our own kTerminate has been processed (the broadcast and the
/// peer's teardown race on different connections). EOF only counts as a
/// crash if no termination arrives within this window.
constexpr double kPeerEofGraceSec = 10.0;

}  // namespace

StatusOr<std::unique_ptr<TcpTransport>> TcpTransport::ConnectWorker(
    const std::string& host, uint16_t port) {
  std::unique_ptr<TcpTransport> t(new TcpTransport());

  // 1. hello -> rank assignment.
  auto coord = ConnectTcp(host, port);
  QCM_RETURN_IF_ERROR(coord.status());
  t->coord_fd_ = coord.value();
  SetRecvTimeout(t->coord_fd_, kHandshakeTimeoutSec);
  QCM_RETURN_IF_ERROR(WriteFrame(
      t->coord_fd_, Frame{FrameKind::kHello, kUnassignedRank,
                          EncodeHello(static_cast<uint64_t>(::getpid()))}));
  Frame frame;
  QCM_RETURN_IF_ERROR(ReadFrame(t->coord_fd_, &frame));
  if (frame.kind != FrameKind::kAssign) {
    return Status::Corruption(std::string("expected assign, got ") +
                              FrameKindName(frame.kind));
  }
  uint32_t rank = 0;
  uint32_t world = 0;
  QCM_RETURN_IF_ERROR(
      DecodeAssign(frame.payload, &rank, &world, &t->config_blob_));
  if (world == 0 || rank >= world) {
    return Status::Corruption("bad rank assignment " + std::to_string(rank) +
                              "/" + std::to_string(world));
  }
  t->rank_ = static_cast<int>(rank);
  t->world_size_ = static_cast<int>(world);
  t->peer_fds_.assign(world, -1);
  t->peer_mus_.clear();
  for (uint32_t i = 0; i < world; ++i) {
    t->peer_mus_.push_back(std::make_unique<std::mutex>());
  }

  // 2. open the peer listener and exchange ports through the coordinator.
  uint16_t peer_port = 0;
  auto listener = ListenLoopback(0, &peer_port);
  QCM_RETURN_IF_ERROR(listener.status());
  const int listen_fd = listener.value();
  {
    Encoder enc;
    enc.PutU32(peer_port);
    QCM_RETURN_IF_ERROR(WriteFrame(
        t->coord_fd_, Frame{FrameKind::kListening, rank, enc.Release()}));
  }
  Status peers_status = ReadFrame(t->coord_fd_, &frame);
  std::vector<uint32_t> ports;
  if (peers_status.ok() && frame.kind != FrameKind::kPeers) {
    peers_status = Status::Corruption(std::string("expected peers, got ") +
                                      FrameKindName(frame.kind));
  }
  if (peers_status.ok()) {
    Decoder dec(frame.payload);
    peers_status = dec.GetU32Vector(&ports);
    if (peers_status.ok() && ports.size() != world) {
      peers_status = Status::Corruption("peer port list size mismatch");
    }
  }
  if (!peers_status.ok()) {
    CloseSocket(listen_fd);
    return peers_status;
  }

  // 3. build the mesh: dial every lower rank, accept every higher one.
  Status mesh_status;
  for (uint32_t r = 0; r < rank && mesh_status.ok(); ++r) {
    auto fd = ConnectTcp(host, static_cast<uint16_t>(ports[r]));
    mesh_status = fd.status();
    if (!mesh_status.ok()) break;
    t->peer_fds_[r] = fd.value();
    mesh_status =
        WriteFrame(fd.value(), Frame{FrameKind::kPeerHello, rank, {}});
  }
  for (uint32_t i = rank + 1; i < world && mesh_status.ok(); ++i) {
    auto fd = AcceptTcp(listen_fd, kHandshakeTimeoutSec);
    mesh_status = fd.status();
    if (!mesh_status.ok()) break;
    SetRecvTimeout(fd.value(), kHandshakeTimeoutSec);
    Frame hello;
    mesh_status = ReadFrame(fd.value(), &hello);
    if (mesh_status.ok() && (hello.kind != FrameKind::kPeerHello ||
                             hello.src >= world || hello.src <= rank ||
                             t->peer_fds_[hello.src] != -1)) {
      mesh_status = Status::Corruption("bad peer hello");
    }
    if (!mesh_status.ok()) {
      CloseSocket(fd.value());
      break;
    }
    SetRecvTimeout(fd.value(), 0);
    t->peer_fds_[hello.src] = fd.value();
  }
  CloseSocket(listen_fd);
  QCM_RETURN_IF_ERROR(mesh_status);
  SetRecvTimeout(t->coord_fd_, 0);
  return t;
}

TcpTransport::~TcpTransport() { Shutdown(); }

void TcpTransport::SetDataHandler(DataHandler handler) {
  QCM_CHECK(!started_.load()) << "SetDataHandler after Start";
  data_handler_ = std::move(handler);
}

void TcpTransport::SetControlHooks(ControlHooks hooks) {
  QCM_CHECK(!started_.load()) << "SetControlHooks after Start";
  hooks_ = std::move(hooks);
}

Status TcpTransport::Start() {
  QCM_CHECK(!started_.load()) << "Start called twice";
  QCM_RETURN_IF_ERROR(WriteTo(
      coord_fd_, coord_mu_,
      Frame{FrameKind::kReady, static_cast<uint32_t>(rank_), {}}));
  SetRecvTimeout(coord_fd_, kHandshakeTimeoutSec);
  Frame frame;
  QCM_RETURN_IF_ERROR(ReadFrame(coord_fd_, &frame));
  if (frame.kind != FrameKind::kStart) {
    return Status::Corruption(std::string("expected start, got ") +
                              FrameKindName(frame.kind));
  }
  SetRecvTimeout(coord_fd_, 0);
  started_.store(true);
  recv_threads_.emplace_back([this] { RecvCoordinatorLoop(); });
  for (int r = 0; r < world_size_; ++r) {
    if (r == rank_) continue;
    recv_threads_.emplace_back([this, r] { RecvPeerLoop(r); });
  }
  return Status::OK();
}

Status TcpTransport::SendData(int dst, uint8_t type,
                              const std::string& payload) {
  QCM_CHECK(dst >= 0 && dst < world_size_ && dst != rank_)
      << "SendData to bad rank " << dst;
  if (payload.size() + 1 > kMaxFramePayload) {
    // Fail at the cause (an oversized fabric message, e.g. a pull batch
    // of enormous adjacency lists) instead of letting the receiver
    // reject an inexplicable frame and blame the connection.
    Status s = Status::InvalidArgument(
        "fabric message of " + std::to_string(payload.size()) +
        " bytes exceeds the wire cap; lower --pull-batch or the batch "
        "size");
    Fail(s.ToString());
    return s;
  }
  const std::string bytes =
      EncodeDataFrame(static_cast<uint32_t>(rank_), type, payload);
  // Counted before the write: the destination can only process a frame
  // the wire already carries, so sent >= processed in every snapshot the
  // termination detector can take.
  data_frames_sent_.fetch_add(1, std::memory_order_acq_rel);
  Status s;
  {
    const int fd = peer_fds_[dst];
    if (fd < 0) {
      s = Status::Aborted("connection closed");
    } else {
      std::lock_guard<std::mutex> lock(*peer_mus_[dst]);
      s = WriteFrameBytes(fd, bytes);
    }
  }
  if (!s.ok()) {
    Fail("send to rank " + std::to_string(dst) + " failed: " + s.ToString());
  }
  return s;
}

void TcpTransport::PublishStatus(const RankStatus& status) {
  WireRankStatus wire;
  wire.pending = status.pending;
  wire.spawn_done = status.spawn_done ? 1 : 0;
  wire.data_frames_sent = status.data_frames_sent;
  wire.data_frames_processed = status.data_frames_processed;
  wire.pending_big = status.pending_big;
  wire.delivery_latency_usec = status.delivery_latency_usec;
  // Failures surface through the coordinator receive loop; a lost status
  // frame only delays detection.
  (void)WriteTo(coord_fd_, coord_mu_,
                Frame{FrameKind::kStatus, static_cast<uint32_t>(rank_),
                      EncodeRankStatus(wire)});
}

Status TcpTransport::SendReport(const std::string& payload) {
  return WriteTo(coord_fd_, coord_mu_,
                 Frame{FrameKind::kReport, static_cast<uint32_t>(rank_),
                       payload});
}

void TcpTransport::SendAbort(const std::string& reason) {
  (void)WriteTo(coord_fd_, coord_mu_,
                Frame{FrameKind::kAbort, static_cast<uint32_t>(rank_),
                      reason});
}

std::string TcpTransport::failure() const {
  std::lock_guard<std::mutex> lock(failure_mu_);
  return failure_;
}

void TcpTransport::Fail(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(failure_mu_);
    if (failure_.empty()) failure_ = reason;
  }
  failed_.store(true, std::memory_order_release);
  NotifyStateChange();
  // Unblock the engine: a dead connection can never deliver kTerminate.
  if (hooks_.on_terminate) hooks_.on_terminate();
}

void TcpTransport::NotifyStateChange() {
  // The lock orders the notify against a waiter's predicate re-check.
  std::lock_guard<std::mutex> lock(state_mu_);
  state_cv_.notify_all();
}

Status TcpTransport::WriteTo(int fd, std::mutex& mu, const Frame& frame) {
  if (fd < 0) return Status::Aborted("connection closed");
  std::lock_guard<std::mutex> lock(mu);
  return WriteFrame(fd, frame);
}

void TcpTransport::RecvCoordinatorLoop() {
  Frame frame;
  for (;;) {
    Status s = ReadFrame(coord_fd_, &frame);
    if (!s.ok()) {
      // EOF after termination is the normal coordinator goodbye.
      if (!terminate_received_.load() && !shutdown_.load()) {
        Fail("coordinator connection lost: " + s.ToString());
      }
      return;
    }
    switch (frame.kind) {
      case FrameKind::kTerminate:
        terminate_received_.store(true, std::memory_order_release);
        NotifyStateChange();
        if (hooks_.on_terminate) hooks_.on_terminate();
        break;
      case FrameKind::kStealCmd: {
        uint32_t receiver = 0;
        uint64_t want = 0;
        if (!DecodeStealCmd(frame.payload, &receiver, &want).ok() ||
            receiver >= static_cast<uint32_t>(world_size_)) {
          Fail("corrupt steal command");
          return;
        }
        if (hooks_.on_steal_command) {
          hooks_.on_steal_command(static_cast<int>(receiver), want);
        }
        break;
      }
      case FrameKind::kAbort:
        Fail("coordinator aborted: " + frame.payload);
        return;
      default:
        Fail(std::string("unexpected control frame: ") +
             FrameKindName(frame.kind));
        return;
    }
  }
}

void TcpTransport::RecvPeerLoop(int peer) {
  Frame frame;
  for (;;) {
    Status s = ReadFrame(peer_fds_[peer], &frame);
    if (!s.ok()) {
      // Peers close their sockets after global termination -- which this
      // rank may learn about a moment later on a different connection.
      // Only an EOF that no termination explains within the grace window
      // means the peer died with work potentially in flight.
      {
        std::unique_lock<std::mutex> lock(state_mu_);
        state_cv_.wait_for(
            lock, std::chrono::duration<double>(kPeerEofGraceSec), [this] {
              return terminate_received_.load() || shutdown_.load() ||
                     failed_.load();
            });
      }
      if (!terminate_received_.load() && !shutdown_.load()) {
        Fail("peer rank " + std::to_string(peer) +
             " connection lost: " + s.ToString());
      }
      return;
    }
    if (frame.kind != FrameKind::kData ||
        frame.src != static_cast<uint32_t>(peer) || frame.payload.empty()) {
      Fail("corrupt data frame from rank " + std::to_string(peer));
      return;
    }
    const uint8_t type = static_cast<uint8_t>(frame.payload[0]);
    frame.payload.erase(0, 1);
    data_handler_(peer, type, std::move(frame.payload));
  }
}

void TcpTransport::Shutdown() {
  if (shutdown_.exchange(true)) return;
  NotifyStateChange();
  // Unblock the receive threads first; fds stay valid until they joined
  // (closing a socket another thread still reads from invites fd reuse).
  ShutdownSocket(coord_fd_);
  for (int fd : peer_fds_) ShutdownSocket(fd);
  for (std::thread& th : recv_threads_) {
    if (th.joinable()) th.join();
  }
  recv_threads_.clear();
  CloseSocket(coord_fd_);
  coord_fd_ = -1;
  for (int& fd : peer_fds_) {
    CloseSocket(fd);
    fd = -1;
  }
}

}  // namespace qcm
