#include "net/tcp_transport.h"

#include <unistd.h>

#include <utility>

#include <chrono>

#include "net/socket_util.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/timer.h"

namespace qcm {

namespace {

/// Bring-up steps must not hang forever when a process dies mid-handshake.
constexpr double kHandshakeTimeoutSec = 60.0;

/// A peer closing its sockets during an orderly shutdown can be observed
/// before our own kTerminate has been processed (the broadcast and the
/// peer's teardown race on different connections). EOF only counts as a
/// crash if no termination arrives within this window.
constexpr double kPeerEofGraceSec = 10.0;

}  // namespace

StatusOr<std::unique_ptr<TcpTransport>> TcpTransport::ConnectWorker(
    const std::string& host, uint16_t port) {
  std::unique_ptr<TcpTransport> t(new TcpTransport());

  // 1. hello -> rank assignment.
  auto coord = ConnectTcp(host, port);
  QCM_RETURN_IF_ERROR(coord.status());
  t->coord_fd_ = coord.value();
  SetRecvTimeout(t->coord_fd_, kHandshakeTimeoutSec);
  QCM_RETURN_IF_ERROR(WriteFrame(
      t->coord_fd_, Frame{FrameKind::kHello, kUnassignedRank,
                          EncodeHello(static_cast<uint64_t>(::getpid()))}));
  Frame frame;
  QCM_RETURN_IF_ERROR(ReadFrame(t->coord_fd_, &frame));
  if (frame.kind != FrameKind::kAssign) {
    return Status::Corruption(std::string("expected assign, got ") +
                              FrameKindName(frame.kind));
  }
  uint32_t rank = 0;
  uint32_t world = 0;
  QCM_RETURN_IF_ERROR(
      DecodeAssign(frame.payload, &rank, &world, &t->config_blob_));
  if (world == 0 || rank >= world) {
    return Status::Corruption("bad rank assignment " + std::to_string(rank) +
                              "/" + std::to_string(world));
  }
  t->rank_ = static_cast<int>(rank);
  t->world_size_ = static_cast<int>(world);
  t->peer_fds_.assign(world, -1);
  t->peer_mus_.clear();
  for (uint32_t i = 0; i < world; ++i) {
    t->peer_mus_.push_back(std::make_unique<std::mutex>());
  }
  t->send_state_.resize(world);

  // 2. open the peer listener and exchange ports through the coordinator.
  uint16_t peer_port = 0;
  auto listener = ListenLoopback(0, &peer_port);
  QCM_RETURN_IF_ERROR(listener.status());
  const int listen_fd = listener.value();
  {
    Encoder enc;
    enc.PutU32(peer_port);
    QCM_RETURN_IF_ERROR(WriteFrame(
        t->coord_fd_, Frame{FrameKind::kListening, rank, enc.Release()}));
  }
  Status peers_status = ReadFrame(t->coord_fd_, &frame);
  std::vector<uint32_t> ports;
  if (peers_status.ok() && frame.kind != FrameKind::kPeers) {
    peers_status = Status::Corruption(std::string("expected peers, got ") +
                                      FrameKindName(frame.kind));
  }
  if (peers_status.ok()) {
    Decoder dec(frame.payload);
    peers_status = dec.GetU32Vector(&ports);
    if (peers_status.ok() && ports.size() != world) {
      peers_status = Status::Corruption("peer port list size mismatch");
    }
  }
  if (!peers_status.ok()) {
    CloseSocket(listen_fd);
    return peers_status;
  }

  // 3. build the mesh: dial every lower rank, accept every higher one.
  Status mesh_status;
  for (uint32_t r = 0; r < rank && mesh_status.ok(); ++r) {
    auto fd = ConnectTcp(host, static_cast<uint16_t>(ports[r]));
    mesh_status = fd.status();
    if (!mesh_status.ok()) break;
    t->peer_fds_[r] = fd.value();
    mesh_status =
        WriteFrame(fd.value(), Frame{FrameKind::kPeerHello, rank, {}});
  }
  for (uint32_t i = rank + 1; i < world && mesh_status.ok(); ++i) {
    auto fd = AcceptTcp(listen_fd, kHandshakeTimeoutSec);
    mesh_status = fd.status();
    if (!mesh_status.ok()) break;
    SetRecvTimeout(fd.value(), kHandshakeTimeoutSec);
    Frame hello;
    mesh_status = ReadFrame(fd.value(), &hello);
    if (mesh_status.ok() && (hello.kind != FrameKind::kPeerHello ||
                             hello.src >= world || hello.src <= rank ||
                             t->peer_fds_[hello.src] != -1)) {
      mesh_status = Status::Corruption("bad peer hello");
    }
    if (!mesh_status.ok()) {
      CloseSocket(fd.value());
      break;
    }
    SetRecvTimeout(fd.value(), 0);
    t->peer_fds_[hello.src] = fd.value();
  }
  CloseSocket(listen_fd);
  QCM_RETURN_IF_ERROR(mesh_status);
  SetRecvTimeout(t->coord_fd_, 0);
  return t;
}

TcpTransport::~TcpTransport() { Shutdown(); }

void TcpTransport::SetDataHandler(DataHandler handler) {
  QCM_CHECK(!started_.load()) << "SetDataHandler after Start";
  data_handler_ = std::move(handler);
}

void TcpTransport::SetControlHooks(ControlHooks hooks) {
  QCM_CHECK(!started_.load()) << "SetControlHooks after Start";
  hooks_ = std::move(hooks);
}

Status TcpTransport::Start() {
  QCM_CHECK(!started_.load()) << "Start called twice";
  QCM_RETURN_IF_ERROR(WriteTo(
      coord_fd_, coord_mu_,
      Frame{FrameKind::kReady, static_cast<uint32_t>(rank_), {}}));
  SetRecvTimeout(coord_fd_, kHandshakeTimeoutSec);
  Frame frame;
  QCM_RETURN_IF_ERROR(ReadFrame(coord_fd_, &frame));
  if (frame.kind != FrameKind::kStart) {
    return Status::Corruption(std::string("expected start, got ") +
                              FrameKindName(frame.kind));
  }
  SetRecvTimeout(coord_fd_, 0);
  started_.store(true);
  recv_threads_.emplace_back([this] { RecvCoordinatorLoop(); });
  for (int r = 0; r < world_size_; ++r) {
    if (r == rank_) continue;
    recv_threads_.emplace_back([this, r] { RecvPeerLoop(r); });
  }
  if (coalesce_.enabled()) {
    flusher_thread_ = std::thread([this] { FlusherLoop(); });
  }
  return Status::OK();
}

void TcpTransport::ConfigureCoalescing(const CoalesceConfig& config) {
  QCM_CHECK(!started_.load()) << "ConfigureCoalescing after Start";
  coalesce_ = config;
}

TransportFlushStats TcpTransport::FlushStats() const {
  std::lock_guard<std::mutex> lock(flush_stats_mu_);
  return flush_stats_;
}

Status TcpTransport::SendData(int dst, uint8_t type, std::string payload) {
  QCM_CHECK(dst >= 0 && dst < world_size_ && dst != rank_)
      << "SendData to bad rank " << dst;
  if (payload.size() + kDataFrameMetaBytes > kMaxFramePayload) {
    // Fail at the cause (an oversized fabric message, e.g. a pull batch
    // of enormous adjacency lists) instead of letting the receiver
    // reject an inexplicable frame and blame the connection.
    Status s = Status::InvalidArgument(
        "fabric message of " + std::to_string(payload.size()) +
        " bytes exceeds the wire cap; lower --pull-batch or the batch "
        "size");
    Fail(s.ToString());
    return s;
  }
  // The send timestamp is stamped BEFORE the frame can park in a
  // coalescing buffer, so the receiver's transit measurement includes
  // the buffer dwell the linger bound allows.
  const uint64_t now = static_cast<uint64_t>(NowMicros());
  PendingFrame frame;
  {
    DataFrameParts parts = EncodeDataFrameParts(static_cast<uint32_t>(rank_),
                                                type, now, payload);
    frame.head = std::move(parts.head);
    frame.trailer = std::move(parts.trailer);
  }
  frame.payload = std::move(payload);  // the only copy of the body bytes
  frame.enqueue_usec = now;
  const size_t frame_bytes =
      frame.head.size() + frame.payload.size() + frame.trailer.size();
  // Counted before the frame can park or hit the wire: the destination
  // can only process a frame the counter already covers, so
  // sent >= processed in every snapshot the termination detector takes.
  data_frames_sent_.fetch_add(1, std::memory_order_acq_rel);
  Status s;
  bool kick_flusher = false;
  {
    std::lock_guard<std::mutex> lock(*peer_mus_[dst]);
    if (peer_fds_[dst] < 0) {
      s = Status::Aborted("connection closed");
    } else {
      PeerSendState& st = send_state_[dst];
      if (st.pending.empty()) st.oldest_enqueue_usec = now;
      st.pending.push_back(std::move(frame));
      st.pending_bytes += frame_bytes;
      if (!coalesce_.enabled()) {
        s = FlushPeerLocked(dst, FlushCause::kDirect);
      } else if (st.pending_bytes >=
                 static_cast<size_t>(coalesce_.coalesce_bytes)) {
        s = FlushPeerLocked(dst, FlushCause::kSize);
      } else if (st.pending.size() == 1) {
        kick_flusher = true;  // new earliest linger deadline
      }
    }
  }
  if (kick_flusher) {
    {
      std::lock_guard<std::mutex> lock(flusher_mu_);
      flusher_kick_ = true;
    }
    flusher_cv_.notify_all();
  }
  if (!s.ok()) {
    Fail("send to rank " + std::to_string(dst) + " failed: " + s.ToString());
  }
  return s;
}

Status TcpTransport::FlushPeerLocked(int dst, FlushCause cause) {
  PeerSendState& st = send_state_[dst];
  if (st.pending.empty()) return Status::OK();
  const int fd = peer_fds_[dst];
  if (fd < 0) {
    st.pending.clear();
    st.pending_bytes = 0;
    return Status::Aborted("connection closed");
  }
  std::vector<WireSlice> slices;
  slices.reserve(st.pending.size() * 3);
  for (const PendingFrame& f : st.pending) {
    slices.push_back({f.head.data(), f.head.size()});
    if (!f.payload.empty()) {
      slices.push_back({f.payload.data(), f.payload.size()});
    }
    slices.push_back({f.trailer.data(), f.trailer.size()});
  }
  uint64_t syscalls = 0;
  Status s = WriteFrameSlices(fd, slices, &syscalls);
  const uint64_t now = static_cast<uint64_t>(NowMicros());
  {
    std::lock_guard<std::mutex> lock(flush_stats_mu_);
    flush_stats_.flushes += syscalls;
    flush_stats_.flushed_frames += st.pending.size();
    flush_stats_.flushed_bytes += st.pending_bytes;
    switch (cause) {
      case FlushCause::kSize: ++flush_stats_.flush_size; break;
      case FlushCause::kLinger: ++flush_stats_.flush_linger; break;
      case FlushCause::kForced: ++flush_stats_.flush_forced; break;
      case FlushCause::kDirect: ++flush_stats_.flush_direct; break;
    }
    for (const PendingFrame& f : st.pending) {
      if (now > f.enqueue_usec) {
        flush_stats_.park_usec_sum += now - f.enqueue_usec;
      }
    }
    ++flush_stats_.bytes_hist[FlushBytesBucketIndex(st.pending_bytes)];
  }
  st.pending.clear();
  st.pending_bytes = 0;
  return s;
}

void TcpTransport::FlusherLoop() {
  for (;;) {
    // Sweep: flush every peer whose oldest frame has out-waited the
    // linger; remember the earliest deadline still pending.
    const uint64_t now = static_cast<uint64_t>(NowMicros());
    uint64_t earliest = 0;
    for (int r = 0; r < world_size_; ++r) {
      if (r == rank_) continue;
      Status s;
      {
        std::lock_guard<std::mutex> lock(*peer_mus_[r]);
        PeerSendState& st = send_state_[r];
        if (st.pending.empty()) continue;
        const uint64_t deadline =
            st.oldest_enqueue_usec +
            static_cast<uint64_t>(coalesce_.linger_usec);
        if (deadline <= now) {
          s = FlushPeerLocked(r, FlushCause::kLinger);
        } else if (earliest == 0 || deadline < earliest) {
          earliest = deadline;
        }
      }
      if (!s.ok() && !terminate_received_.load() && !shutdown_.load()) {
        // A failed linger flush after termination is just a peer that
        // hung up first; before termination it is a real link failure.
        Fail("flush to rank " + std::to_string(r) + " failed: " +
             s.ToString());
      }
    }
    std::unique_lock<std::mutex> lock(flusher_mu_);
    if (flusher_stop_) return;
    if (earliest == 0) {
      // Nothing parked anywhere: sleep until a send kicks us (or
      // shutdown). The predicate re-check makes the kick race-free.
      flusher_cv_.wait(lock,
                       [this] { return flusher_stop_ || flusher_kick_; });
    } else {
      const uint64_t now2 = static_cast<uint64_t>(NowMicros());
      if (earliest > now2) {
        flusher_cv_.wait_for(lock, std::chrono::microseconds(earliest - now2));
      }
    }
    flusher_kick_ = false;
  }
}

void TcpTransport::PublishStatus(const RankStatus& status) {
  WireRankStatus wire;
  wire.pending = status.pending;
  wire.spawn_done = status.spawn_done ? 1 : 0;
  wire.data_frames_sent = status.data_frames_sent;
  wire.data_frames_processed = status.data_frames_processed;
  wire.pending_big = status.pending_big;
  wire.delivery_latency_usec = status.delivery_latency_usec;
  // Failures surface through the coordinator receive loop; a lost status
  // frame only delays detection.
  (void)WriteTo(coord_fd_, coord_mu_,
                Frame{FrameKind::kStatus, static_cast<uint32_t>(rank_),
                      EncodeRankStatus(wire)});
}

Status TcpTransport::SendReport(const std::string& payload) {
  return WriteTo(coord_fd_, coord_mu_,
                 Frame{FrameKind::kReport, static_cast<uint32_t>(rank_),
                       payload});
}

void TcpTransport::SendAbort(const std::string& reason) {
  (void)WriteTo(coord_fd_, coord_mu_,
                Frame{FrameKind::kAbort, static_cast<uint32_t>(rank_),
                      reason});
}

std::string TcpTransport::failure() const {
  std::lock_guard<std::mutex> lock(failure_mu_);
  return failure_;
}

void TcpTransport::Fail(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(failure_mu_);
    if (failure_.empty()) failure_ = reason;
  }
  failed_.store(true, std::memory_order_release);
  NotifyStateChange();
  // Unblock the engine: a dead connection can never deliver kTerminate.
  if (hooks_.on_terminate) hooks_.on_terminate();
}

void TcpTransport::NotifyStateChange() {
  // The lock orders the notify against a waiter's predicate re-check.
  std::lock_guard<std::mutex> lock(state_mu_);
  state_cv_.notify_all();
}

Status TcpTransport::WriteTo(int fd, std::mutex& mu, const Frame& frame) {
  if (fd < 0) return Status::Aborted("connection closed");
  std::lock_guard<std::mutex> lock(mu);
  return WriteFrame(fd, frame);
}

void TcpTransport::RecvCoordinatorLoop() {
  Frame frame;
  for (;;) {
    Status s = ReadFrame(coord_fd_, &frame);
    if (!s.ok()) {
      // EOF after termination is the normal coordinator goodbye.
      if (!terminate_received_.load() && !shutdown_.load()) {
        Fail("coordinator connection lost: " + s.ToString());
      }
      return;
    }
    switch (frame.kind) {
      case FrameKind::kTerminate:
        terminate_received_.store(true, std::memory_order_release);
        NotifyStateChange();
        if (hooks_.on_terminate) hooks_.on_terminate();
        break;
      case FrameKind::kStealCmd: {
        uint32_t receiver = 0;
        uint64_t want = 0;
        if (!DecodeStealCmd(frame.payload, &receiver, &want).ok() ||
            receiver >= static_cast<uint32_t>(world_size_)) {
          Fail("corrupt steal command");
          return;
        }
        if (hooks_.on_steal_command) {
          hooks_.on_steal_command(static_cast<int>(receiver), want);
        }
        break;
      }
      case FrameKind::kAbort:
        Fail("coordinator aborted: " + frame.payload);
        return;
      default:
        Fail(std::string("unexpected control frame: ") +
             FrameKindName(frame.kind));
        return;
    }
  }
}

void TcpTransport::RecvPeerLoop(int peer) {
  Frame frame;
  for (;;) {
    Status s = ReadFrame(peer_fds_[peer], &frame);
    if (!s.ok()) {
      // Peers close their sockets after global termination -- which this
      // rank may learn about a moment later on a different connection.
      // Only an EOF that no termination explains within the grace window
      // means the peer died with work potentially in flight.
      {
        std::unique_lock<std::mutex> lock(state_mu_);
        state_cv_.wait_for(
            lock, std::chrono::duration<double>(kPeerEofGraceSec), [this] {
              return terminate_received_.load() || shutdown_.load() ||
                     failed_.load();
            });
      }
      if (!terminate_received_.load() && !shutdown_.load()) {
        Fail("peer rank " + std::to_string(peer) +
             " connection lost: " + s.ToString());
      }
      return;
    }
    uint8_t type = 0;
    uint64_t send_ts_usec = 0;
    std::string body;
    if (frame.kind != FrameKind::kData ||
        frame.src != static_cast<uint32_t>(peer) ||
        !SplitDataFramePayload(frame.payload, &type, &send_ts_usec, &body)
             .ok()) {
      Fail("corrupt data frame from rank " + std::to_string(peer));
      return;
    }
    // Receiver-measured transit: coalescing dwell + wire time. The
    // steady clock is shared across processes on one machine; clamp at
    // zero so cross-host clock offset can only under-report, never
    // poison the latency EWMAs with garbage.
    const uint64_t now = static_cast<uint64_t>(NowMicros());
    const uint64_t transit = now > send_ts_usec ? now - send_ts_usec : 0;
    data_handler_(peer, type, std::move(body), transit);
  }
}

void TcpTransport::Shutdown() {
  if (shutdown_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(flusher_mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_thread_.joinable()) flusher_thread_.join();
  // Push any residue out of the coalescing buffers before the sockets
  // go down. Peers may already be gone after a clean termination, so a
  // failed forced flush is not an error here.
  for (int r = 0; r < world_size_; ++r) {
    if (r == rank_) continue;
    std::lock_guard<std::mutex> lock(*peer_mus_[r]);
    (void)FlushPeerLocked(r, FlushCause::kForced);
  }
  NotifyStateChange();
  // Unblock the receive threads first; fds stay valid until they joined
  // (closing a socket another thread still reads from invites fd reuse).
  ShutdownSocket(coord_fd_);
  for (int fd : peer_fds_) ShutdownSocket(fd);
  for (std::thread& th : recv_threads_) {
    if (th.joinable()) th.join();
  }
  recv_threads_.clear();
  CloseSocket(coord_fd_);
  coord_fd_ = -1;
  for (int& fd : peer_fds_) {
    CloseSocket(fd);
    fd = -1;
  }
}

}  // namespace qcm
