#include "net/tcp_transport.h"

#include <unistd.h>

#include <chrono>
#include <utility>

#include "net/socket_util.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qcm {

namespace {

/// Bring-up steps must not hang forever when a process dies mid-handshake.
constexpr double kHandshakeTimeoutSec = 60.0;

/// A peer closing its sockets during an orderly shutdown can be observed
/// before our own kTerminate has been processed (the broadcast and the
/// peer's teardown race on different connections). EOF only counts as a
/// crash if no termination arrives within this window.
constexpr double kPeerEofGraceSec = 10.0;

/// The persistent accept loop polls at this granularity so Shutdown() is
/// never stuck behind a blocking accept.
constexpr double kAcceptPollSec = 0.25;

/// Dial retry policy: a worker forked a moment before its target listens
/// (the coordinator at launch, a survivor's listener while the host is
/// briefly saturated) deserves a few patient attempts before the bring-up
/// fails.
constexpr int kConnectAttempts = 8;
constexpr int64_t kConnectBackoffBaseUsec = 20000;  // 20ms, doubling

StatusOr<int> ConnectTcpRetry(const std::string& host, uint16_t port) {
  int64_t backoff = kConnectBackoffBaseUsec;
  StatusOr<int> fd = Status::IOError("unreachable");
  for (int attempt = 0; attempt < kConnectAttempts; ++attempt) {
    fd = ConnectTcp(host, port);
    if (fd.ok()) return fd;
    ::usleep(static_cast<useconds_t>(backoff));
    backoff *= 2;
  }
  return fd;
}

}  // namespace

StatusOr<std::unique_ptr<TcpTransport>> TcpTransport::ConnectWorker(
    const std::string& host, uint16_t port) {
  std::unique_ptr<TcpTransport> t(new TcpTransport());

  // 1. hello -> rank assignment.
  auto coord = ConnectTcpRetry(host, port);
  QCM_RETURN_IF_ERROR(coord.status());
  t->coord_fd_ = coord.value();
  SetRecvTimeout(t->coord_fd_, kHandshakeTimeoutSec);
  QCM_RETURN_IF_ERROR(WriteFrame(
      t->coord_fd_, Frame{FrameKind::kHello, kUnassignedRank,
                          EncodeHello(static_cast<uint64_t>(::getpid()))}));
  Frame frame;
  QCM_RETURN_IF_ERROR(ReadFrame(t->coord_fd_, &frame));
  if (frame.kind != FrameKind::kAssign) {
    return Status::Corruption(std::string("expected assign, got ") +
                              FrameKindName(frame.kind));
  }
  uint32_t rank = 0;
  uint32_t world = 0;
  QCM_RETURN_IF_ERROR(DecodeAssign(frame.payload, &rank, &world,
                                   &t->config_blob_, &t->epoch_));
  if (world == 0 || rank >= world) {
    return Status::Corruption("bad rank assignment " + std::to_string(rank) +
                              "/" + std::to_string(world));
  }
  t->rank_ = static_cast<int>(rank);
  t->world_size_ = static_cast<int>(world);
  t->peer_fds_.assign(world, -1);
  t->peer_mus_.clear();
  for (uint32_t i = 0; i < world; ++i) {
    t->peer_mus_.push_back(std::make_unique<std::mutex>());
  }
  t->send_state_.resize(world);
  t->sent_to_.assign(world, 0);
  t->peer_epoch_.assign(world, 0u);
  t->peer_down_flags_ = std::make_unique<std::atomic<bool>[]>(world);
  for (uint32_t i = 0; i < world; ++i) t->peer_down_flags_[i].store(false);
  t->recv_peer_threads_.resize(world);

  // 2. open the peer listener and exchange ports through the coordinator.
  // The listener stays open for the whole run: a crashed peer's
  // replacement dials back in through it long after bring-up.
  uint16_t peer_port = 0;
  auto listener = ListenLoopback(0, &peer_port);
  QCM_RETURN_IF_ERROR(listener.status());
  t->listen_fd_ = listener.value();
  {
    Encoder enc;
    enc.PutU32(peer_port);
    QCM_RETURN_IF_ERROR(WriteFrame(
        t->coord_fd_, Frame{FrameKind::kListening, rank, enc.Release()}));
  }
  Status peers_status = ReadFrame(t->coord_fd_, &frame);
  std::vector<uint32_t> ports;
  if (peers_status.ok() && frame.kind != FrameKind::kPeers) {
    peers_status = Status::Corruption(std::string("expected peers, got ") +
                                      FrameKindName(frame.kind));
  }
  if (peers_status.ok()) {
    Decoder dec(frame.payload);
    peers_status = dec.GetU32Vector(&ports);
    if (peers_status.ok() && ports.size() != world) {
      peers_status = Status::Corruption("peer port list size mismatch");
    }
  }
  QCM_RETURN_IF_ERROR(peers_status);

  // 3. build the mesh. First incarnation: dial every lower rank, accept
  // every higher one (a deterministic pairing with no dial/accept
  // races). Replacement incarnation: every survivor is already up with a
  // persistent accept loop, so dial ALL of them and accept none.
  Status mesh_status;
  const bool dial_all = t->epoch_ > 0;
  for (uint32_t r = 0; r < world && mesh_status.ok(); ++r) {
    if (r == rank) continue;
    if (!dial_all && r > rank) continue;
    auto fd = ConnectTcpRetry(host, static_cast<uint16_t>(ports[r]));
    mesh_status = fd.status();
    if (!mesh_status.ok()) break;
    t->peer_fds_[r] = fd.value();
    mesh_status = WriteFrame(
        fd.value(),
        Frame{FrameKind::kPeerHello, rank, EncodePeerHello(t->epoch_)});
  }
  for (uint32_t i = rank + 1; i < world && mesh_status.ok() && !dial_all;
       ++i) {
    auto fd = AcceptTcp(t->listen_fd_, kHandshakeTimeoutSec);
    mesh_status = fd.status();
    if (!mesh_status.ok()) break;
    SetRecvTimeout(fd.value(), kHandshakeTimeoutSec);
    Frame hello;
    mesh_status = ReadFrame(fd.value(), &hello);
    uint32_t hello_epoch = 0;
    if (mesh_status.ok()) {
      mesh_status = DecodePeerHello(hello.payload, &hello_epoch);
    }
    if (mesh_status.ok() && (hello.kind != FrameKind::kPeerHello ||
                             hello.src >= world || hello.src <= rank ||
                             t->peer_fds_[hello.src] != -1)) {
      mesh_status = Status::Corruption("bad peer hello");
    }
    if (!mesh_status.ok()) {
      CloseSocket(fd.value());
      break;
    }
    SetRecvTimeout(fd.value(), 0);
    t->peer_fds_[hello.src] = fd.value();
  }
  QCM_RETURN_IF_ERROR(mesh_status);
  SetRecvTimeout(t->coord_fd_, 0);
  return t;
}

TcpTransport::~TcpTransport() { Shutdown(); }

void TcpTransport::SetDataHandler(DataHandler handler) {
  QCM_CHECK(!started_.load()) << "SetDataHandler after Start";
  data_handler_ = std::move(handler);
}

void TcpTransport::SetControlHooks(ControlHooks hooks) {
  QCM_CHECK(!started_.load()) << "SetControlHooks after Start";
  hooks_ = std::move(hooks);
}

void TcpTransport::SetHeartbeatInterval(int64_t usec) {
  QCM_CHECK(!started_.load()) << "SetHeartbeatInterval after Start";
  heartbeat_usec_ = usec;
}

Status TcpTransport::Start() {
  QCM_CHECK(!started_.load()) << "Start called twice";
  QCM_RETURN_IF_ERROR(WriteTo(
      coord_fd_, coord_mu_,
      Frame{FrameKind::kReady, static_cast<uint32_t>(rank_), {}}));
  SetRecvTimeout(coord_fd_, kHandshakeTimeoutSec);
  Frame frame;
  QCM_RETURN_IF_ERROR(ReadFrame(coord_fd_, &frame));
  if (frame.kind != FrameKind::kStart) {
    return Status::Corruption(std::string("expected start, got ") +
                              FrameKindName(frame.kind));
  }
  SetRecvTimeout(coord_fd_, 0);
  started_.store(true);
  coord_recv_thread_ = std::thread([this] { RecvCoordinatorLoop(); });
  {
    std::lock_guard<std::mutex> lock(recv_threads_mu_);
    for (int r = 0; r < world_size_; ++r) {
      if (r == rank_ || peer_fds_[r] < 0) continue;
      const int fd = peer_fds_[r];
      recv_peer_threads_[r] = std::thread([this, r, fd] {
        RecvPeerLoop(r, fd);
      });
    }
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (heartbeat_usec_ > 0) {
    heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  }
  if (coalesce_.enabled()) {
    flusher_thread_ = std::thread([this] { FlusherLoop(); });
  }
  return Status::OK();
}

void TcpTransport::ConfigureCoalescing(const CoalesceConfig& config) {
  QCM_CHECK(!started_.load()) << "ConfigureCoalescing after Start";
  coalesce_ = config;
}

TransportFlushStats TcpTransport::FlushStats() const {
  std::lock_guard<std::mutex> lock(flush_stats_mu_);
  return flush_stats_;
}

Status TcpTransport::SendData(int dst, uint8_t type, std::string payload) {
  QCM_CHECK(dst >= 0 && dst < world_size_ && dst != rank_)
      << "SendData to bad rank " << dst;
  if (payload.size() + kDataFrameMetaBytes > kMaxFramePayload) {
    // Fail at the cause (an oversized fabric message, e.g. a pull batch
    // of enormous adjacency lists) instead of letting the receiver
    // reject an inexplicable frame and blame the connection.
    Status s = Status::InvalidArgument(
        "fabric message of " + std::to_string(payload.size()) +
        " bytes exceeds the wire cap; lower --pull-batch or the batch "
        "size");
    Fail(s.ToString());
    return s;
  }
  // The send timestamp is stamped BEFORE the frame can park in a
  // coalescing buffer, so the receiver's transit measurement includes
  // the buffer dwell the linger bound allows.
  const uint64_t now = static_cast<uint64_t>(NowMicros());
  PendingFrame frame;
  {
    DataFrameParts parts = EncodeDataFrameParts(static_cast<uint32_t>(rank_),
                                                type, now, payload);
    frame.head = std::move(parts.head);
    frame.trailer = std::move(parts.trailer);
  }
  frame.payload = std::move(payload);  // the only copy of the body bytes
  frame.enqueue_usec = now;
  const size_t frame_bytes =
      frame.head.size() + frame.payload.size() + frame.trailer.size();
  Status s;
  bool kick_flusher = false;
  {
    std::lock_guard<std::mutex> lock(*peer_mus_[dst]);
    if (peer_down_flags_[dst].load(std::memory_order_relaxed) ||
        peer_fds_[dst] < 0) {
      // Peer is between its down and up transitions: drop the frame,
      // uncounted. Whatever mattered in it is replayed by the recovery
      // protocol (steal batches from the donor's retained copies,
      // vertex pulls by the broker's re-request on peer-up).
      return Status::OK();
    }
    // Counted under the same lock that orders the frame onto the wire:
    // the destination can only process a frame the counter already
    // covers, so sent_to[dst] >= the peer's processed_from[us] in every
    // snapshot the termination detector takes.
    ++sent_to_[dst];
    data_frames_sent_.fetch_add(1, std::memory_order_acq_rel);
    PeerSendState& st = send_state_[dst];
    if (st.pending.empty()) st.oldest_enqueue_usec = now;
    st.pending.push_back(std::move(frame));
    st.pending_bytes += frame_bytes;
    if (!coalesce_.enabled()) {
      s = FlushPeerLocked(dst, FlushCause::kDirect);
    } else if (st.pending_bytes >=
               static_cast<size_t>(coalesce_.coalesce_bytes)) {
      s = FlushPeerLocked(dst, FlushCause::kSize);
    } else if (st.pending.size() == 1) {
      kick_flusher = true;  // new earliest linger deadline
    }
  }
  if (kick_flusher) {
    {
      std::lock_guard<std::mutex> lock(flusher_mu_);
      flusher_kick_ = true;
    }
    flusher_cv_.notify_all();
  }
  if (!s.ok()) {
    // A write error to a live-looking peer is almost always a peer that
    // just died (EPIPE before its kPeerDown reached us). Do NOT fail the
    // run: if the peer really died the coordinator declares it and the
    // pair's counters reset; if it did not, the now-stale sent counter
    // blocks termination until the coordinator's sweep timeout surfaces
    // the problem loudly.
    QCM_WLOG << "rank " << rank_ << ": dropped send to rank " << dst
             << " (" << s.ToString() << "); awaiting liveness verdict";
  }
  return Status::OK();
}

Status TcpTransport::FlushPeerLocked(int dst, FlushCause cause) {
  PeerSendState& st = send_state_[dst];
  if (st.pending.empty()) return Status::OK();
  const int fd = peer_fds_[dst];
  if (fd < 0) {
    st.pending.clear();
    st.pending_bytes = 0;
    return Status::Aborted("connection closed");
  }
  std::vector<WireSlice> slices;
  slices.reserve(st.pending.size() * 3);
  for (const PendingFrame& f : st.pending) {
    slices.push_back({f.head.data(), f.head.size()});
    if (!f.payload.empty()) {
      slices.push_back({f.payload.data(), f.payload.size()});
    }
    slices.push_back({f.trailer.data(), f.trailer.size()});
  }
  uint64_t syscalls = 0;
  Status s;
  {
    // Span covers the writev syscall(s) of this flush; arg = frame bytes.
    QCM_TRACE_SPAN(trace::kNet, "flush_writev", st.pending_bytes);
    s = WriteFrameSlices(fd, slices, &syscalls);
  }
  const uint64_t now = static_cast<uint64_t>(NowMicros());
  {
    std::lock_guard<std::mutex> lock(flush_stats_mu_);
    flush_stats_.flushes += syscalls;
    flush_stats_.flushed_frames += st.pending.size();
    flush_stats_.flushed_bytes += st.pending_bytes;
    switch (cause) {
      case FlushCause::kSize: ++flush_stats_.flush_size; break;
      case FlushCause::kLinger: ++flush_stats_.flush_linger; break;
      case FlushCause::kForced: ++flush_stats_.flush_forced; break;
      case FlushCause::kDirect: ++flush_stats_.flush_direct; break;
    }
    for (const PendingFrame& f : st.pending) {
      if (now > f.enqueue_usec) {
        flush_stats_.park_usec_sum += now - f.enqueue_usec;
      }
    }
    ++flush_stats_.bytes_hist[FlushBytesBucketIndex(st.pending_bytes)];
  }
  st.pending.clear();
  st.pending_bytes = 0;
  return s;
}

void TcpTransport::FlusherLoop() {
  for (;;) {
    // Sweep: flush every peer whose oldest frame has out-waited the
    // linger; remember the earliest deadline still pending.
    const uint64_t now = static_cast<uint64_t>(NowMicros());
    uint64_t earliest = 0;
    for (int r = 0; r < world_size_; ++r) {
      if (r == rank_) continue;
      Status s;
      {
        std::lock_guard<std::mutex> lock(*peer_mus_[r]);
        PeerSendState& st = send_state_[r];
        if (st.pending.empty()) continue;
        const uint64_t deadline =
            st.oldest_enqueue_usec +
            static_cast<uint64_t>(coalesce_.linger_usec);
        if (deadline <= now) {
          s = FlushPeerLocked(r, FlushCause::kLinger);
        } else if (earliest == 0 || deadline < earliest) {
          earliest = deadline;
        }
      }
      if (!s.ok() && !terminate_received_.load() && !shutdown_.load() &&
          PeerAlive(r)) {
        // Same policy as SendData: a linger-flush write error means the
        // peer most likely just died; the liveness verdict (kPeerDown or
        // the coordinator's sweep timeout) decides, not this thread.
        QCM_WLOG << "rank " << rank_ << ": dropped linger flush to rank "
                 << r << " (" << s.ToString() << ")";
      }
    }
    std::unique_lock<std::mutex> lock(flusher_mu_);
    if (flusher_stop_) return;
    if (earliest == 0) {
      // Nothing parked anywhere: sleep until a send kicks us (or
      // shutdown). The predicate re-check makes the kick race-free.
      flusher_cv_.wait(lock,
                       [this] { return flusher_stop_ || flusher_kick_; });
    } else {
      const uint64_t now2 = static_cast<uint64_t>(NowMicros());
      if (earliest > now2) {
        flusher_cv_.wait_for(lock, std::chrono::microseconds(earliest - now2));
      }
    }
    flusher_kick_ = false;
  }
}

void TcpTransport::PublishStatus(const RankStatus& status) {
  WireRankStatus wire;
  wire.pending = status.pending;
  wire.spawn_done = status.spawn_done ? 1 : 0;
  // The engine filled processed_from before this call; the sent_to
  // snapshot is taken after, keeping any inconsistency in the
  // conservative sent > processed direction (which can only delay
  // termination, never declare it early).
  wire.processed_from = status.processed_from;
  wire.processed_from.resize(static_cast<size_t>(world_size_), 0);
  wire.sent_to.assign(static_cast<size_t>(world_size_), 0);
  for (int r = 0; r < world_size_; ++r) {
    if (r == rank_) continue;
    std::lock_guard<std::mutex> lock(*peer_mus_[r]);
    wire.sent_to[r] = sent_to_[r];
  }
  wire.pending_big = status.pending_big;
  wire.delivery_latency_usec = status.delivery_latency_usec;
  // Failures surface through the coordinator receive loop; a lost status
  // frame only delays detection.
  (void)WriteTo(coord_fd_, coord_mu_,
                Frame{FrameKind::kStatus, static_cast<uint32_t>(rank_),
                      EncodeRankStatus(wire)});
}

void TcpTransport::PublishStats(const WireStatsSample& sample) {
  // Best effort, same policy as PublishStatus: telemetry never fails a
  // run, and a lost sample only leaves a gap in the ticker.
  (void)WriteTo(coord_fd_, coord_mu_,
                Frame{FrameKind::kStats, static_cast<uint32_t>(rank_),
                      EncodeStatsSample(sample)});
}

Status TcpTransport::SendReport(const std::string& payload) {
  return WriteTo(coord_fd_, coord_mu_,
                 Frame{FrameKind::kReport, static_cast<uint32_t>(rank_),
                       payload});
}

void TcpTransport::SendAbort(const std::string& reason) {
  (void)WriteTo(coord_fd_, coord_mu_,
                Frame{FrameKind::kAbort, static_cast<uint32_t>(rank_),
                      reason});
}

std::string TcpTransport::failure() const {
  std::lock_guard<std::mutex> lock(failure_mu_);
  return failure_;
}

void TcpTransport::Fail(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(failure_mu_);
    if (failure_.empty()) failure_ = reason;
  }
  failed_.store(true, std::memory_order_release);
  NotifyStateChange();
  // Unblock the engine: a dead connection can never deliver kTerminate.
  if (hooks_.on_terminate) hooks_.on_terminate();
}

void TcpTransport::NotifyStateChange() {
  // The lock orders the notify against a waiter's predicate re-check.
  std::lock_guard<std::mutex> lock(state_mu_);
  state_cv_.notify_all();
}

Status TcpTransport::WriteTo(int fd, std::mutex& mu, const Frame& frame) {
  if (fd < 0) return Status::Aborted("connection closed");
  std::lock_guard<std::mutex> lock(mu);
  return WriteFrame(fd, frame);
}

void TcpTransport::MarkPeerDown(int peer, uint32_t epoch) {
  int old_fd = -1;
  {
    std::lock_guard<std::mutex> lock(*peer_mus_[peer]);
    if (epoch <= peer_epoch_[peer]) return;  // stale or already handled
    peer_epoch_[peer] = epoch;
    peer_down_flags_[peer].store(true, std::memory_order_release);
    // Frames parked for the dead incarnation will never be processed;
    // drop them now so a forced flush cannot write to a dangling fd.
    send_state_[peer].pending.clear();
    send_state_[peer].pending_bytes = 0;
    old_fd = peer_fds_[peer];
    peer_fds_[peer] = -1;
    // Symmetric counter reset: the replacement starts every counter at
    // zero, so this side of the pair must too (the engine hook resets
    // the processed_from direction).
    sent_to_[peer] = 0;
  }
  NotifyStateChange();
  // Quiesce the old incarnation's receive path completely before the
  // engine hook runs: after on_peer_down returns, no frame from the old
  // incarnation can ever be delivered.
  if (old_fd >= 0) ShutdownSocket(old_fd);
  std::thread old_recv;
  {
    std::lock_guard<std::mutex> lock(recv_threads_mu_);
    old_recv = std::move(recv_peer_threads_[peer]);
  }
  if (old_recv.joinable()) old_recv.join();
  if (old_fd >= 0) CloseSocket(old_fd);
  QCM_ILOG << "rank " << rank_ << ": peer rank " << peer
           << " down (epoch " << epoch << ")";
  if (hooks_.on_peer_down) hooks_.on_peer_down(peer);
}

void TcpTransport::HandlePeerUp(int peer, uint32_t epoch) {
  // The replacement's kPeerHello travels on its own data connection and
  // has no ordering against the coordinator's kPeerUp; wait (bounded)
  // for the accept thread to swap the new connection in.
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    state_cv_.wait_for(
        lock, std::chrono::duration<double>(kHandshakeTimeoutSec),
        [this, peer] {
          return shutdown_.load() || failed_.load() ||
                 !peer_down_flags_[peer].load(std::memory_order_acquire);
        });
  }
  if (shutdown_.load() || failed_.load()) return;
  bool up = false;
  {
    std::lock_guard<std::mutex> lock(*peer_mus_[peer]);
    up = !peer_down_flags_[peer].load(std::memory_order_relaxed) &&
         peer_epoch_[peer] == epoch && peer_fds_[peer] >= 0;
  }
  if (!up) {
    Fail("peer-up for rank " + std::to_string(peer) + " (epoch " +
         std::to_string(epoch) +
         ") but its replacement never connected here");
    return;
  }
  QCM_ILOG << "rank " << rank_ << ": peer rank " << peer
           << " back up (epoch " << epoch << ")";
  if (hooks_.on_peer_up) hooks_.on_peer_up(peer);
}

void TcpTransport::AcceptLoop() {
  while (!shutdown_.load() && !failed_.load()) {
    auto fd = AcceptTcp(listen_fd_, kAcceptPollSec);
    if (!fd.ok()) continue;  // poll timeout (or listener closing down)
    if (shutdown_.load() || failed_.load()) {
      CloseSocket(fd.value());
      return;
    }
    SetRecvTimeout(fd.value(), kHandshakeTimeoutSec);
    Frame hello;
    uint32_t hello_epoch = 0;
    Status s = ReadFrame(fd.value(), &hello);
    if (s.ok() && (hello.kind != FrameKind::kPeerHello ||
                   hello.src >= static_cast<uint32_t>(world_size_) ||
                   hello.src == static_cast<uint32_t>(rank_))) {
      s = Status::Corruption("bad peer hello");
    }
    if (s.ok()) s = DecodePeerHello(hello.payload, &hello_epoch);
    if (!s.ok()) {
      QCM_WLOG << "rank " << rank_ << ": rejected inbound peer connection: "
               << s.ToString();
      CloseSocket(fd.value());
      continue;
    }
    const int peer = static_cast<int>(hello.src);
    // The replacement's hello can outrun the coordinator's kPeerDown
    // (different connections): run the down transition here first. A
    // no-op when kPeerDown already did it.
    MarkPeerDown(peer, hello_epoch);
    SetRecvTimeout(fd.value(), 0);
    bool accepted = false;
    {
      std::lock_guard<std::mutex> lock(*peer_mus_[peer]);
      if (peer_epoch_[peer] == hello_epoch &&
          peer_down_flags_[peer].load(std::memory_order_relaxed)) {
        peer_fds_[peer] = fd.value();
        peer_down_flags_[peer].store(false, std::memory_order_release);
        accepted = true;
      }
    }
    if (!accepted) {
      // A superseded incarnation (or an epoch-0 dial outside bring-up).
      CloseSocket(fd.value());
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(recv_threads_mu_);
      const int new_fd = fd.value();
      recv_peer_threads_[peer] = std::thread([this, peer, new_fd] {
        RecvPeerLoop(peer, new_fd);
      });
    }
    NotifyStateChange();  // wake a HandlePeerUp waiting for the swap
  }
}

void TcpTransport::HeartbeatLoop() {
  uint64_t seq = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mu_);
      state_cv_.wait_for(lock, std::chrono::microseconds(heartbeat_usec_),
                         [this] {
                           return shutdown_.load() || failed_.load() ||
                                  terminate_received_.load();
                         });
    }
    if (shutdown_.load() || failed_.load() || terminate_received_.load()) {
      return;
    }
    // A lost beacon only delays liveness; the receive loop owns failure.
    (void)WriteTo(coord_fd_, coord_mu_,
                  Frame{FrameKind::kHeartbeat, static_cast<uint32_t>(rank_),
                        EncodeHeartbeat(seq++)});
  }
}

void TcpTransport::RecvCoordinatorLoop() {
  Frame frame;
  for (;;) {
    Status s = ReadFrame(coord_fd_, &frame);
    if (!s.ok()) {
      // EOF after termination is the normal coordinator goodbye.
      if (!terminate_received_.load() && !shutdown_.load()) {
        Fail("coordinator connection lost: " + s.ToString());
      }
      return;
    }
    switch (frame.kind) {
      case FrameKind::kTerminate:
        terminate_received_.store(true, std::memory_order_release);
        NotifyStateChange();
        if (hooks_.on_terminate) hooks_.on_terminate();
        break;
      case FrameKind::kStealCmd: {
        uint32_t receiver = 0;
        uint64_t want = 0;
        if (!DecodeStealCmd(frame.payload, &receiver, &want).ok() ||
            receiver >= static_cast<uint32_t>(world_size_)) {
          Fail("corrupt steal command");
          return;
        }
        if (hooks_.on_steal_command) {
          hooks_.on_steal_command(static_cast<int>(receiver), want);
        }
        break;
      }
      case FrameKind::kPeerDown:
      case FrameKind::kPeerUp: {
        uint32_t peer = 0;
        uint32_t ep = 0;
        if (!DecodePeerEvent(frame.payload, &peer, &ep).ok() ||
            peer >= static_cast<uint32_t>(world_size_) ||
            peer == static_cast<uint32_t>(rank_)) {
          Fail("corrupt peer event");
          return;
        }
        if (frame.kind == FrameKind::kPeerDown) {
          MarkPeerDown(static_cast<int>(peer), ep);
        } else {
          HandlePeerUp(static_cast<int>(peer), ep);
        }
        break;
      }
      case FrameKind::kAbort:
        Fail("coordinator aborted: " + frame.payload);
        return;
      default:
        Fail(std::string("unexpected control frame: ") +
             FrameKindName(frame.kind));
        return;
    }
  }
}

void TcpTransport::RecvPeerLoop(int peer, int fd) {
  Frame frame;
  for (;;) {
    Status s = ReadFrame(fd, &frame);
    if (!s.ok()) {
      // Peers close their sockets after global termination -- which this
      // rank may learn about a moment later on a different connection --
      // and a crashed peer's EOF is usually explained by a kPeerDown
      // moments later. Only an EOF that neither termination nor a peer-
      // death verdict explains within the grace window fails the run.
      {
        std::unique_lock<std::mutex> lock(state_mu_);
        state_cv_.wait_for(
            lock, std::chrono::duration<double>(kPeerEofGraceSec),
            [this, peer] {
              return terminate_received_.load() || shutdown_.load() ||
                     failed_.load() ||
                     peer_down_flags_[peer].load(std::memory_order_acquire);
            });
      }
      if (!terminate_received_.load() && !shutdown_.load() &&
          !peer_down_flags_[peer].load(std::memory_order_acquire)) {
        Fail("peer rank " + std::to_string(peer) +
             " connection lost: " + s.ToString());
      }
      return;
    }
    uint8_t type = 0;
    uint64_t send_ts_usec = 0;
    std::string body;
    if (frame.kind != FrameKind::kData ||
        frame.src != static_cast<uint32_t>(peer) ||
        !SplitDataFramePayload(frame.payload, &type, &send_ts_usec, &body)
             .ok()) {
      // A frame torn by the peer dying mid-write is a death symptom, not
      // corruption; the liveness verdict decides.
      if (peer_down_flags_[peer].load(std::memory_order_acquire)) return;
      Fail("corrupt data frame from rank " + std::to_string(peer));
      return;
    }
    // Receiver-measured transit: coalescing dwell + wire time. The
    // steady clock is shared across processes on one machine; clamp at
    // zero so cross-host clock offset can only under-report, never
    // poison the latency EWMAs with garbage.
    const uint64_t now = static_cast<uint64_t>(NowMicros());
    const uint64_t transit = now > send_ts_usec ? now - send_ts_usec : 0;
    data_handler_(peer, type, std::move(body), transit);
  }
}

void TcpTransport::Shutdown() {
  if (shutdown_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(flusher_mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_thread_.joinable()) flusher_thread_.join();
  // Push any residue out of the coalescing buffers before the sockets
  // go down. Peers may already be gone after a clean termination, so a
  // failed forced flush is not an error here.
  for (int r = 0; r < world_size_; ++r) {
    if (r == rank_) continue;
    std::lock_guard<std::mutex> lock(*peer_mus_[r]);
    (void)FlushPeerLocked(r, FlushCause::kForced);
  }
  NotifyStateChange();
  // Unblock the receive threads first; fds stay valid until they joined
  // (closing a socket another thread still reads from invites fd reuse).
  ShutdownSocket(coord_fd_);
  {
    std::lock_guard<std::mutex> lock(recv_threads_mu_);
    for (int r = 0; r < world_size_; ++r) {
      if (r == rank_) continue;
      std::lock_guard<std::mutex> peer_lock(*peer_mus_[r]);
      ShutdownSocket(peer_fds_[r]);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (coord_recv_thread_.joinable()) coord_recv_thread_.join();
  std::vector<std::thread> recvs;
  {
    std::lock_guard<std::mutex> lock(recv_threads_mu_);
    recvs = std::move(recv_peer_threads_);
    recv_peer_threads_.clear();
  }
  for (std::thread& th : recvs) {
    if (th.joinable()) th.join();
  }
  CloseSocket(coord_fd_);
  coord_fd_ = -1;
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : peer_fds_) {
    CloseSocket(fd);
    fd = -1;
  }
}

}  // namespace qcm
