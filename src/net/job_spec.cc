#include "net/job_spec.h"

#include "util/serde.h"

namespace qcm {

std::string EncodeJobSpec(const ClusterJobSpec& spec) {
  Encoder enc;
  enc.PutString(spec.input);
  enc.PutString(spec.gen_planted);
  enc.PutU64(spec.seed);
  EncodeEngineConfig(spec.config, &enc);
  return enc.Release();
}

Status DecodeJobSpec(const std::string& blob, ClusterJobSpec* spec) {
  Decoder dec(blob);
  QCM_RETURN_IF_ERROR(dec.GetString(&spec->input));
  QCM_RETURN_IF_ERROR(dec.GetString(&spec->gen_planted));
  QCM_RETURN_IF_ERROR(dec.GetU64(&spec->seed));
  QCM_RETURN_IF_ERROR(DecodeEngineConfig(&dec, &spec->config));
  if (!dec.Done()) return Status::Corruption("trailing bytes in job spec");
  if (spec->input.empty() == spec->gen_planted.empty()) {
    return Status::InvalidArgument(
        "job spec needs exactly one of input / gen_planted");
  }
  return Status::OK();
}

}  // namespace qcm
