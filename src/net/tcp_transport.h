// TcpTransport: the worker-process side of the multi-process deployment.
//
// One instance lives in each qcm_worker process. ConnectWorker() runs the
// full bring-up against the cluster coordinator (hello -> rank assignment
// -> peer-port exchange -> full data-plane mesh: this rank dials every
// lower rank and accepts every higher one, each link authenticated by a
// kPeerHello frame). Start() then releases the start barrier (kReady /
// kStart) and spawns one receive thread per connection.
//
// Data plane: SendData frames one CommFabric message per kData frame and
// writes it straight onto the rank-to-rank socket (per-socket write lock;
// the sent-frame counter increments before the write so the termination
// detector can never observe a processed frame that was not counted as
// sent). Received kData frames are handed to the engine's data handler on
// the receive thread.
//
// Control plane (coordinator connection): PublishStatus sends kStatus up;
// kStealCmd and kTerminate invoke the engine's control hooks; kAbort or
// any connection loss before kTerminate marks the transport failed and
// forces engine shutdown -- a cluster with a dead member never hangs, it
// fails loudly.

#ifndef QCM_NET_TCP_TRANSPORT_H_
#define QCM_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "util/status.h"

namespace qcm {

class TcpTransport : public Transport {
 public:
  /// Runs the worker bring-up against a coordinator listening on
  /// `host:port`: handshake, rank assignment, peer mesh. Blocks until the
  /// mesh is complete (every peer link established) or a step fails.
  static StatusOr<std::unique_ptr<TcpTransport>> ConnectWorker(
      const std::string& host, uint16_t port);

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // ---- Transport ----
  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }
  void SetDataHandler(DataHandler handler) override;
  void SetControlHooks(ControlHooks hooks) override;
  Status Start() override;
  Status SendData(int dst, uint8_t type, const std::string& payload) override;
  uint64_t DataFramesSent() const override {
    return data_frames_sent_.load(std::memory_order_acquire);
  }
  void PublishStatus(const RankStatus& status) override;
  bool healthy() const override { return !failed(); }

  // ---- worker-process extras (not part of the engine-facing seam) ----

  /// Opaque job configuration delivered with the rank assignment.
  const std::string& config_blob() const { return config_blob_; }

  /// Ships the final EngineReport/result blob to the coordinator.
  Status SendReport(const std::string& payload);

  /// Tells the coordinator this worker failed (best effort).
  void SendAbort(const std::string& reason);

  /// True once the coordinator declared global termination; false while
  /// running or if a connection died first.
  bool terminated() const {
    return terminate_received_.load(std::memory_order_acquire);
  }

  /// True if any connection failed before a clean termination.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// First recorded failure reason (empty when !failed()).
  std::string failure() const;

  /// Closes every connection and joins the receive threads. Idempotent.
  void Shutdown();

 private:
  TcpTransport() = default;

  void RecvCoordinatorLoop();
  void RecvPeerLoop(int peer);
  void Fail(const std::string& reason);
  /// Wakes threads blocked on the terminated/failed/shutdown state (the
  /// peer-EOF grace wait).
  void NotifyStateChange();
  Status WriteTo(int fd, std::mutex& mu, const Frame& frame);

  int rank_ = -1;
  int world_size_ = 0;
  std::string config_blob_;

  int coord_fd_ = -1;
  std::mutex coord_mu_;
  /// Rank -> connected socket (self slot unused, -1).
  std::vector<int> peer_fds_;
  std::vector<std::unique_ptr<std::mutex>> peer_mus_;

  DataHandler data_handler_;
  ControlHooks hooks_;

  std::atomic<uint64_t> data_frames_sent_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> terminate_received_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> shutdown_{false};
  mutable std::mutex failure_mu_;
  std::string failure_;
  std::mutex state_mu_;
  std::condition_variable state_cv_;

  std::vector<std::thread> recv_threads_;
};

}  // namespace qcm

#endif  // QCM_NET_TCP_TRANSPORT_H_
