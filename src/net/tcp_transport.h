// TcpTransport: the worker-process side of the multi-process deployment.
//
// One instance lives in each qcm_worker process. ConnectWorker() runs the
// full bring-up against the cluster coordinator (hello -> rank assignment
// -> peer-port exchange -> full data-plane mesh: this rank dials every
// lower rank and accepts every higher one, each link authenticated by a
// kPeerHello frame). Start() then releases the start barrier (kReady /
// kStart) and spawns one receive thread per connection.
//
// Data plane: SendData frames one CommFabric message per kData frame.
// With coalescing off every frame goes straight onto the rank-to-rank
// socket as a zero-copy {head, payload, trailer} scatter-gather write;
// with coalescing on (ConfigureCoalescing), frames park in a per-peer
// pending buffer until the buffer crosses the byte threshold or a
// background flusher's linger deadline expires, then the whole buffer
// flushes in one writev -- many frames per syscall. The per-peer mutex
// guards both the pending buffer and the socket, so frame order is
// preserved across the direct, size-triggered, and linger-triggered
// paths. The sent-frame counter increments before a frame can park or
// hit the wire, so a coalesced-but-unflushed frame shows up as
// sent > processed and termination detection can never fire around it.
// Received kData frames are handed to the engine's data handler on the
// receive thread, together with the receiver-measured wire transit
// (now minus the frame's sender timestamp).
//
// Control plane (coordinator connection): PublishStatus sends kStatus up;
// kStealCmd and kTerminate invoke the engine's control hooks; kAbort or
// any connection loss before kTerminate marks the transport failed and
// forces engine shutdown -- a cluster with a dead member never hangs, it
// fails loudly.

#ifndef QCM_NET_TCP_TRANSPORT_H_
#define QCM_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "util/status.h"

namespace qcm {

class TcpTransport : public Transport {
 public:
  /// Runs the worker bring-up against a coordinator listening on
  /// `host:port`: handshake, rank assignment, peer mesh. Blocks until the
  /// mesh is complete (every peer link established) or a step fails.
  static StatusOr<std::unique_ptr<TcpTransport>> ConnectWorker(
      const std::string& host, uint16_t port);

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // ---- Transport ----
  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }
  void SetDataHandler(DataHandler handler) override;
  void SetControlHooks(ControlHooks hooks) override;
  Status Start() override;
  Status SendData(int dst, uint8_t type, std::string payload) override;
  uint64_t DataFramesSent() const override {
    return data_frames_sent_.load(std::memory_order_acquire);
  }
  void ConfigureCoalescing(const CoalesceConfig& config) override;
  TransportFlushStats FlushStats() const override;
  void PublishStatus(const RankStatus& status) override;
  bool healthy() const override { return !failed(); }

  // ---- worker-process extras (not part of the engine-facing seam) ----

  /// Opaque job configuration delivered with the rank assignment.
  const std::string& config_blob() const { return config_blob_; }

  /// Ships the final EngineReport/result blob to the coordinator.
  Status SendReport(const std::string& payload);

  /// Tells the coordinator this worker failed (best effort).
  void SendAbort(const std::string& reason);

  /// True once the coordinator declared global termination; false while
  /// running or if a connection died first.
  bool terminated() const {
    return terminate_received_.load(std::memory_order_acquire);
  }

  /// True if any connection failed before a clean termination.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// First recorded failure reason (empty when !failed()).
  std::string failure() const;

  /// Closes every connection and joins the receive threads. Idempotent.
  void Shutdown();

 private:
  TcpTransport() = default;

  /// What made a pending buffer flush (statistics breakdown).
  enum class FlushCause { kSize, kLinger, kForced, kDirect };

  /// One frame parked in a peer's coalescing buffer: pre-encoded head
  /// (header + data meta) and trailer (checksum) around the moved-in
  /// fabric payload -- the slices a writev flush references in place.
  struct PendingFrame {
    std::string head;
    std::string payload;
    std::string trailer;
    uint64_t enqueue_usec = 0;
  };

  /// Per-peer send aggregation state, guarded by peer_mus_[peer] (the
  /// same mutex that serializes socket writes, so flush order == send
  /// order).
  struct PeerSendState {
    std::vector<PendingFrame> pending;
    size_t pending_bytes = 0;
    /// Enqueue time of pending.front() (the linger deadline anchor).
    uint64_t oldest_enqueue_usec = 0;
  };

  void RecvCoordinatorLoop();
  void RecvPeerLoop(int peer);
  void FlusherLoop();
  /// Writes a peer's whole pending buffer with one scatter-gather flush
  /// and folds the outcome into the flush stats. Requires
  /// peer_mus_[dst] held.
  Status FlushPeerLocked(int dst, FlushCause cause);
  void Fail(const std::string& reason);
  /// Wakes threads blocked on the terminated/failed/shutdown state (the
  /// peer-EOF grace wait).
  void NotifyStateChange();
  Status WriteTo(int fd, std::mutex& mu, const Frame& frame);

  int rank_ = -1;
  int world_size_ = 0;
  std::string config_blob_;

  int coord_fd_ = -1;
  std::mutex coord_mu_;
  /// Rank -> connected socket (self slot unused, -1).
  std::vector<int> peer_fds_;
  std::vector<std::unique_ptr<std::mutex>> peer_mus_;
  std::vector<PeerSendState> send_state_;

  CoalesceConfig coalesce_;
  mutable std::mutex flush_stats_mu_;
  TransportFlushStats flush_stats_;

  std::thread flusher_thread_;
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;
  /// Set when a frame lands in a previously-empty buffer: the flusher
  /// must re-derive its earliest linger deadline.
  bool flusher_kick_ = false;

  DataHandler data_handler_;
  ControlHooks hooks_;

  std::atomic<uint64_t> data_frames_sent_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> terminate_received_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> shutdown_{false};
  mutable std::mutex failure_mu_;
  std::string failure_;
  std::mutex state_mu_;
  std::condition_variable state_cv_;

  std::vector<std::thread> recv_threads_;
};

}  // namespace qcm

#endif  // QCM_NET_TCP_TRANSPORT_H_
