// TcpTransport: the worker-process side of the multi-process deployment.
//
// One instance lives in each qcm_worker process. ConnectWorker() runs the
// full bring-up against the cluster coordinator (hello -> rank assignment
// -> peer-port exchange -> full data-plane mesh). A first-incarnation
// worker (epoch 0) dials every lower rank and accepts every higher one; a
// replacement worker (epoch > 0, relaunched by the coordinator after its
// predecessor crashed) dials every peer and accepts none -- the survivors'
// persistent accept threads swap the new connection in. Start() then
// releases the start barrier (kReady / kStart) and spawns the receive
// threads, the persistent peer-accept thread, and (when configured) the
// coordinator heartbeat thread.
//
// Data plane: SendData frames one CommFabric message per kData frame.
// With coalescing off every frame goes straight onto the rank-to-rank
// socket as a zero-copy {head, payload, trailer} scatter-gather write;
// with coalescing on (ConfigureCoalescing), frames park in a per-peer
// pending buffer until the buffer crosses the byte threshold or a
// background flusher's linger deadline expires, then the whole buffer
// flushes in one writev -- many frames per syscall. The per-peer mutex
// guards the pending buffer, the socket, the peer's liveness state AND
// the per-peer sent counter, so frame order is preserved and a frame is
// counted sent_to[dst] if and only if it was actually accepted for a
// live peer. A send to a peer marked dead is dropped, uncounted, and
// still returns OK (the recovery protocol replays or re-requests what
// matters); a write error to a peer not yet declared dead drops the
// buffered frames WITHOUT failing the run -- either the peer really died
// (the coordinator's child-exit watchdog or heartbeat deadline will
// declare it and reset the pair's counters) or the stale sent counter
// blocks termination until the coordinator's sweep timeout fails the run
// loudly.
//
// Control plane (coordinator connection): PublishStatus sends kStatus up
// (per-peer sent_to snapshot taken at publish time, after the engine's
// processed_from, keeping any inconsistency in the conservative
// sent > processed direction); kStealCmd / kTerminate invoke the
// engine's control hooks; kPeerDown runs the idempotent peer-down
// transition (quiesce the link, join its receive thread, reset
// sent_to[peer], then the engine hook); kPeerUp waits until the
// replacement's connection has been swapped in and fires the engine's
// peer-up hook. kAbort or an unexplained coordinator connection loss
// marks the transport failed -- a cluster with a dead COORDINATOR never
// hangs, it fails loudly; a dead worker is the recoverable case.

#ifndef QCM_NET_TCP_TRANSPORT_H_
#define QCM_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "util/status.h"

namespace qcm {

class TcpTransport : public Transport {
 public:
  /// Runs the worker bring-up against a coordinator listening on
  /// `host:port`: handshake, rank assignment, peer mesh. Blocks until the
  /// mesh is complete (every peer link established) or a step fails.
  /// The initial dial of the coordinator retries with backoff, so a
  /// worker forked a moment before the coordinator listens still comes
  /// up.
  static StatusOr<std::unique_ptr<TcpTransport>> ConnectWorker(
      const std::string& host, uint16_t port);

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // ---- Transport ----
  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }
  void SetDataHandler(DataHandler handler) override;
  void SetControlHooks(ControlHooks hooks) override;
  Status Start() override;
  Status SendData(int dst, uint8_t type, std::string payload) override;
  uint64_t DataFramesSent() const override {
    return data_frames_sent_.load(std::memory_order_acquire);
  }
  void ConfigureCoalescing(const CoalesceConfig& config) override;
  TransportFlushStats FlushStats() const override;
  void PublishStatus(const RankStatus& status) override;
  void PublishStats(const WireStatsSample& sample) override;
  bool healthy() const override { return !failed(); }
  bool PeerAlive(int peer) const override {
    return !peer_down_flags_[peer].load(std::memory_order_acquire);
  }
  uint32_t epoch() const override { return epoch_; }

  // ---- worker-process extras (not part of the engine-facing seam) ----

  /// Opaque job configuration delivered with the rank assignment.
  const std::string& config_blob() const { return config_blob_; }

  /// Sets the coordinator heartbeat period (microseconds; 0 = no
  /// heartbeat thread). Must be called before Start().
  void SetHeartbeatInterval(int64_t usec);

  /// Ships the final EngineReport/result blob to the coordinator.
  Status SendReport(const std::string& payload);

  /// Tells the coordinator this worker failed (best effort).
  void SendAbort(const std::string& reason);

  /// True once the coordinator declared global termination; false while
  /// running or if a connection died first.
  bool terminated() const {
    return terminate_received_.load(std::memory_order_acquire);
  }

  /// True if any connection failed before a clean termination.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// First recorded failure reason (empty when !failed()).
  std::string failure() const;

  /// Closes every connection and joins the receive threads. Idempotent.
  void Shutdown();

 private:
  TcpTransport() = default;

  /// What made a pending buffer flush (statistics breakdown).
  enum class FlushCause { kSize, kLinger, kForced, kDirect };

  /// One frame parked in a peer's coalescing buffer: pre-encoded head
  /// (header + data meta) and trailer (checksum) around the moved-in
  /// fabric payload -- the slices a writev flush references in place.
  struct PendingFrame {
    std::string head;
    std::string payload;
    std::string trailer;
    uint64_t enqueue_usec = 0;
  };

  /// Per-peer send aggregation state, guarded by peer_mus_[peer] (the
  /// same mutex that serializes socket writes, so flush order == send
  /// order).
  struct PeerSendState {
    std::vector<PendingFrame> pending;
    size_t pending_bytes = 0;
    /// Enqueue time of pending.front() (the linger deadline anchor).
    uint64_t oldest_enqueue_usec = 0;
  };

  void RecvCoordinatorLoop();
  /// Reads data frames from one incarnation of a peer; `fd` is fixed for
  /// the thread's lifetime (a replacement's connection gets a new
  /// thread).
  void RecvPeerLoop(int peer, int fd);
  /// Persistent accept loop on the peer listener: swaps a replacement
  /// rank's new connection in (running the down transition first when
  /// its kPeerHello outruns the coordinator's kPeerDown).
  void AcceptLoop();
  /// Periodic kHeartbeat beacons to the coordinator.
  void HeartbeatLoop();
  void FlusherLoop();
  /// Idempotent peer-down transition to successor epoch `epoch`: marks
  /// the peer dead, drops its parked frames, quiesces and joins its
  /// receive thread, resets sent_to_[peer], then fires the engine's
  /// on_peer_down hook. No-op when `epoch` is not newer than the peer's
  /// current epoch.
  void MarkPeerDown(int peer, uint32_t epoch);
  /// kPeerUp handler: waits (bounded) for the accept thread to swap the
  /// replacement's connection in, then fires the engine's on_peer_up
  /// hook.
  void HandlePeerUp(int peer, uint32_t epoch);
  /// Writes a peer's whole pending buffer with one scatter-gather flush
  /// and folds the outcome into the flush stats. Requires
  /// peer_mus_[dst] held.
  Status FlushPeerLocked(int dst, FlushCause cause);
  void Fail(const std::string& reason);
  /// Wakes threads blocked on the terminated/failed/shutdown/peer state
  /// (the peer-EOF grace wait, the peer-up wait, the heartbeat sleep).
  void NotifyStateChange();
  Status WriteTo(int fd, std::mutex& mu, const Frame& frame);

  int rank_ = -1;
  int world_size_ = 0;
  uint32_t epoch_ = 0;
  std::string config_blob_;

  int coord_fd_ = -1;
  std::mutex coord_mu_;
  /// Peer-listener fd; stays open for the whole run so a replacement
  /// rank can dial in after a crash.
  int listen_fd_ = -1;
  /// Rank -> connected socket (self slot unused, -1). Guarded by
  /// peer_mus_[rank].
  std::vector<int> peer_fds_;
  std::vector<std::unique_ptr<std::mutex>> peer_mus_;
  std::vector<PeerSendState> send_state_;
  /// Guarded by peer_mus_[rank]: data frames accepted for the wire to
  /// that peer's CURRENT incarnation (reset by MarkPeerDown).
  std::vector<uint64_t> sent_to_;
  /// Guarded by peer_mus_[rank]: epoch of the peer incarnation this rank
  /// is (or was last) connected to.
  std::vector<uint32_t> peer_epoch_;
  /// Lock-free mirror of "peer is between down and up transitions";
  /// written under peer_mus_[rank].
  std::unique_ptr<std::atomic<bool>[]> peer_down_flags_;

  CoalesceConfig coalesce_;
  mutable std::mutex flush_stats_mu_;
  TransportFlushStats flush_stats_;

  std::thread flusher_thread_;
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;
  /// Set when a frame lands in a previously-empty buffer: the flusher
  /// must re-derive its earliest linger deadline.
  bool flusher_kick_ = false;

  DataHandler data_handler_;
  ControlHooks hooks_;

  int64_t heartbeat_usec_ = 0;

  std::atomic<uint64_t> data_frames_sent_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> terminate_received_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> shutdown_{false};
  mutable std::mutex failure_mu_;
  std::string failure_;
  std::mutex state_mu_;
  std::condition_variable state_cv_;

  std::thread coord_recv_thread_;
  std::thread accept_thread_;
  std::thread heartbeat_thread_;
  /// Rank -> the receive thread of that peer's current incarnation.
  /// Guarded by recv_threads_mu_ (spawned by Start/AcceptLoop, joined by
  /// MarkPeerDown/Shutdown).
  std::mutex recv_threads_mu_;
  std::vector<std::thread> recv_peer_threads_;
};

}  // namespace qcm

#endif  // QCM_NET_TCP_TRANSPORT_H_
