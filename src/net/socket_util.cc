#include "net/socket_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace qcm {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Sockets must not leak across the cluster launcher's fork/exec into
/// worker processes (a worker holding the coordinator's listener would
/// keep the port bound after the coordinator dies).
void SetCloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

StatusOr<int> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  SetCloexec(fd);
  return fd;
}

StatusOr<int> ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status s =
        Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  SetNoDelay(fd);
  SetCloexec(fd);
  return fd;
}

StatusOr<int> AcceptTcp(int listen_fd, double timeout_sec) {
  if (timeout_sec > 0) {
    pollfd pfd{listen_fd, POLLIN, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout_sec * 1e3));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return Errno("poll");
    if (rc == 0) return Status::IOError("accept timed out");
  }
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  SetNoDelay(fd);
  SetCloexec(fd);
  return fd;
}

void SetRecvTimeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void ShutdownSocket(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
}

void CloseSocket(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

}  // namespace qcm
