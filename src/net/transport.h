// Transport: the process-boundary seam of the CommFabric (paper §5 run as
// a real distributed system instead of an in-process simulation).
//
// The engine and fabric are written against this interface only. With no
// transport injected (nullptr), every machine is local and the CommFabric
// delivers through its in-memory inboxes exactly as before -- the
// simulated mode. With a transport, the engine runs ONE machine (the
// transport's rank): fabric sends whose destination is a remote rank are
// handed to the transport as data frames, arriving frames are injected
// into the local inbox by the transport's receive thread, and the control
// plane (status publication up, steal commands and the termination signal
// down) replaces the in-process steal master and MaybeFinish.
//
// Termination-detection contract (the engine's drain invariant across
// processes): a rank publishes {pending, spawn_done, sent_to[],
// processed_from[], pending_big}. The coordinator may declare global
// termination only after two consecutive sweeps in which every rank
// reported pending == 0 and spawn_done, for every ordered pair (i, j)
// rank i's sent_to[j] equals rank j's processed_from[i], and no rank's
// counters moved between the sweeps (each rank must have published a
// fresh, unchanged status in between). Senders count a data frame as
// sent *before* it can possibly be processed, and receivers fold a
// frame's pending-task delta into `pending` *before* counting it
// processed, so any in-flight or unprocessed frame shows up as either
// sent > processed or pending > 0 in every consistent snapshot. The
// per-pair form (rather than global totals) is what lets a rank be
// replaced mid-run: when rank R dies, every survivor resets sent_to[R]
// and processed_from[R] to zero and R's replacement starts all its
// counters at zero, so both sides of every dead pair stay consistent
// while live pairs are untouched.

#ifndef QCM_NET_TRANSPORT_H_
#define QCM_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace qcm {

struct WireStatsSample;  // net/wire.h

/// One rank's termination-detection inputs (see file comment).
struct RankStatus {
  /// Tasks alive in this process (queued, running, parked, spilled).
  int64_t pending = 0;
  /// Every owned vertex has been offered to Spawn and no spawner is mid-
  /// batch.
  bool spawn_done = false;
  /// processed_from[i]: data frames from rank i fully folded into this
  /// rank's state (counted after any pending-task delta was applied).
  /// The engine fills this; the transport adds its own per-peer sent_to
  /// counters at publish time (processed is read first, keeping any
  /// inconsistency in the conservative sent > processed direction).
  std::vector<uint64_t> processed_from;
  /// Big tasks available for stealing (global queue + L_big), the input
  /// of the coordinator's balancing plan.
  uint64_t pending_big = 0;
  /// Mean observed fabric delivery latency at this rank (microseconds;
  /// 0 = nothing delivered yet). The coordinator's input to latency-
  /// aware steal planning: it approximates the RTT of a link as the sum
  /// of the two endpoint ranks' delivery latencies. Covers modeled
  /// latency, inbox dwell, AND real wire transit: data frames carry the
  /// sender's monotonic send timestamp (stamped before any coalescing
  /// dwell), so time parked in a send buffer and on the wire is visible
  /// to the steal planner's RTT EWMAs.
  uint64_t delivery_latency_usec = 0;
};

/// Send-aggregation knobs (EngineConfig::net_coalesce_bytes /
/// net_linger_usec). Both zero = coalescing off: every data frame is
/// flushed immediately (still zero-copy via scatter-gather write).
struct CoalesceConfig {
  /// Flush a peer's pending buffer once it holds at least this many
  /// frame bytes (MTU-ish; ~1400 is the classic choice).
  int64_t coalesce_bytes = 0;
  /// Upper bound on how long a parked frame may wait for company before
  /// a background flusher pushes it out anyway.
  int64_t linger_usec = 0;
  bool enabled() const { return coalesce_bytes > 0 && linger_usec > 0; }
};

/// Bytes-per-flush histogram buckets: <256, <1K, <2K, <4K, <16K, <64K,
/// <256K, >=256K.
inline constexpr int kFlushBytesBuckets = 8;

inline int FlushBytesBucketIndex(uint64_t bytes) {
  if (bytes < 256) return 0;
  if (bytes < 1024) return 1;
  if (bytes < 2048) return 2;
  if (bytes < 4096) return 3;
  if (bytes < 16384) return 4;
  if (bytes < 65536) return 5;
  if (bytes < 262144) return 6;
  return 7;
}

/// Aggregate data-plane flush statistics of a transport: how many write
/// syscall batches were issued, what drove each one, and how long frames
/// sat parked in coalescing buffers. Mirrored into EngineCounters as the
/// net_flush_* fields after a run.
struct TransportFlushStats {
  /// Write syscalls issued for data frames (each flush = one
  /// writev/sendmsg unless partial writes or the iovec cap force more).
  uint64_t flushes = 0;
  /// Data frames and frame bytes pushed through those flushes.
  uint64_t flushed_frames = 0;
  uint64_t flushed_bytes = 0;
  /// Flush-cause breakdown (sums to the number of flush decisions):
  /// the buffer crossed the size threshold / the linger deadline
  /// expired / shutdown forced the residue out / coalescing was off and
  /// the frame went straight to the wire.
  uint64_t flush_size = 0;
  uint64_t flush_linger = 0;
  uint64_t flush_forced = 0;
  uint64_t flush_direct = 0;
  /// Total microseconds frames spent parked in coalescing buffers
  /// (enqueue to flush); divide by flushed_frames for the mean added
  /// latency.
  uint64_t park_usec_sum = 0;
  /// Bytes-per-flush histogram (see FlushBytesBucketIndex).
  uint64_t bytes_hist[kFlushBytesBuckets] = {0, 0, 0, 0, 0, 0, 0, 0};
};

class Transport {
 public:
  /// Invoked on a receive thread for every arriving fabric data frame.
  /// `wire_transit_usec` is the receiver-measured transit time (now minus
  /// the frame's sender timestamp, clamped at 0): coalescing dwell plus
  /// wire time. Meaningful across processes on one machine; only
  /// clock-offset-approximate across hosts.
  using DataHandler = std::function<void(
      int src, uint8_t type, std::string payload, uint64_t wire_transit_usec)>;

  /// Control-plane callbacks, invoked on a receive thread.
  struct ControlHooks {
    /// Global quiescence was declared; the engine must shut down.
    std::function<void()> on_terminate;
    /// The coordinator's balancing plan wants `want` big tasks moved from
    /// this rank to `receiver`.
    std::function<void(int receiver, uint64_t want)> on_steal_command;
    /// Rank `peer` was declared dead. Invoked after the transport has
    /// stopped delivering frames from that peer's old incarnation and
    /// reset its own sent_to[peer]; the engine resets
    /// processed_from[peer] and re-injects any retained steal batches it
    /// had shipped there.
    std::function<void(int peer)> on_peer_down;
    /// Rank `peer`'s replacement is connected and started; safe to
    /// re-request anything lost in flight (e.g. unanswered vertex pulls).
    std::function<void(int peer)> on_peer_up;
  };

  virtual ~Transport() = default;

  /// This process's machine id / total machine count.
  virtual int rank() const = 0;
  virtual int world_size() const = 0;

  /// Installs the handlers. Must be called before Start(); frames never
  /// arrive earlier.
  virtual void SetDataHandler(DataHandler handler) = 0;
  virtual void SetControlHooks(ControlHooks hooks) = 0;

  /// Releases the receive path (and, for the TCP transport, the cluster
  /// start barrier). Returns once data and control frames may flow.
  virtual Status Start() = 0;

  /// Ships one fabric message to `dst`'s process. Increments the
  /// sent-frame counter before the bytes can reach the destination.
  /// Takes the payload by value so callers can std::move it in; the
  /// transport keeps that one buffer alive until the scatter-gather
  /// write — no second copy of the payload bytes is ever made.
  /// A send to a peer currently marked dead is silently dropped and not
  /// counted (the recovery protocol replays or re-requests what matters);
  /// it still returns OK.
  virtual Status SendData(int dst, uint8_t type, std::string payload) = 0;

  /// Data frames handed to the wire so far.
  virtual uint64_t DataFramesSent() const = 0;

  /// False while `peer` is marked dead (between its peer-down and
  /// peer-up transitions). Engines consult this before volunteering work
  /// to a peer (e.g. serving a steal command naming a dead receiver).
  virtual bool PeerAlive(int peer) const {
    (void)peer;
    return true;
  }

  /// This rank's incarnation number: 0 on first launch, >0 when this
  /// process is a replacement for a crashed rank (it then replays its
  /// predecessor's checkpoint).
  virtual uint32_t epoch() const { return 0; }

  /// Installs the send-aggregation policy. Must be called before
  /// Start(); the default transport ignores it (no coalescing).
  virtual void ConfigureCoalescing(const CoalesceConfig& config) {
    (void)config;
  }

  /// Data-plane flush statistics accumulated so far (all zeros for
  /// transports without a coalescing layer).
  virtual TransportFlushStats FlushStats() const { return {}; }

  /// Publishes this rank's termination-detection inputs to whoever runs
  /// detection (the cluster coordinator).
  virtual void PublishStatus(const RankStatus& status) = 0;

  /// Ships one periodic telemetry sample (engine stats sampler) to the
  /// coordinator as a kStats frame. Best-effort: transports without a
  /// coordinator connection ignore it.
  virtual void PublishStats(const WireStatsSample& sample) { (void)sample; }

  /// False once a connection failed before clean termination; the engine
  /// then reports an error instead of pretending its partial state is a
  /// completed run.
  virtual bool healthy() const { return true; }
};

}  // namespace qcm

#endif  // QCM_NET_TRANSPORT_H_
