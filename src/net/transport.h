// Transport: the process-boundary seam of the CommFabric (paper §5 run as
// a real distributed system instead of an in-process simulation).
//
// The engine and fabric are written against this interface only. With no
// transport injected (nullptr), every machine is local and the CommFabric
// delivers through its in-memory inboxes exactly as before -- the
// simulated mode. With a transport, the engine runs ONE machine (the
// transport's rank): fabric sends whose destination is a remote rank are
// handed to the transport as data frames, arriving frames are injected
// into the local inbox by the transport's receive thread, and the control
// plane (status publication up, steal commands and the termination signal
// down) replaces the in-process steal master and MaybeFinish.
//
// Termination-detection contract (the engine's drain invariant across
// processes): a rank publishes {pending, spawn_done, data_frames_sent,
// data_frames_processed, pending_big}. The coordinator may declare global
// termination only after two consecutive sweeps in which every rank
// reported pending == 0 and spawn_done, the totals of sent and processed
// frames match, and no rank's counters moved between the sweeps (each rank
// must have published a fresh, unchanged status in between). Senders
// count a data frame as sent *before* it can possibly be processed, and
// receivers fold a frame's pending-task delta into `pending` *before*
// counting it processed, so any in-flight or unprocessed frame shows up
// as either sent > processed or pending > 0 in every consistent snapshot.

#ifndef QCM_NET_TRANSPORT_H_
#define QCM_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/status.h"

namespace qcm {

/// One rank's termination-detection inputs (see file comment).
struct RankStatus {
  /// Tasks alive in this process (queued, running, parked, spilled).
  int64_t pending = 0;
  /// Every owned vertex has been offered to Spawn and no spawner is mid-
  /// batch.
  bool spawn_done = false;
  /// Data frames handed to the wire by this rank (counted pre-write).
  uint64_t data_frames_sent = 0;
  /// Data frames fully folded into this rank's state (counted after any
  /// pending-task delta was applied).
  uint64_t data_frames_processed = 0;
  /// Big tasks available for stealing (global queue + L_big), the input
  /// of the coordinator's balancing plan.
  uint64_t pending_big = 0;
  /// Mean observed fabric delivery latency at this rank (microseconds;
  /// 0 = nothing delivered yet). The coordinator's input to latency-
  /// aware steal planning: it approximates the RTT of a link as the sum
  /// of the two endpoint ranks' delivery latencies. Measured off inbox
  /// timestamps, so in process-per-machine mode it covers the modeled
  /// latency plus inbox dwell but NOT raw wire transit -- data frames
  /// carry no send timestamp yet (a multi-host-mode gap; see ROADMAP).
  uint64_t delivery_latency_usec = 0;
};

class Transport {
 public:
  /// Invoked on a receive thread for every arriving fabric data frame.
  using DataHandler =
      std::function<void(int src, uint8_t type, std::string payload)>;

  /// Control-plane callbacks, invoked on a receive thread.
  struct ControlHooks {
    /// Global quiescence was declared; the engine must shut down.
    std::function<void()> on_terminate;
    /// The coordinator's balancing plan wants `want` big tasks moved from
    /// this rank to `receiver`.
    std::function<void(int receiver, uint64_t want)> on_steal_command;
  };

  virtual ~Transport() = default;

  /// This process's machine id / total machine count.
  virtual int rank() const = 0;
  virtual int world_size() const = 0;

  /// Installs the handlers. Must be called before Start(); frames never
  /// arrive earlier.
  virtual void SetDataHandler(DataHandler handler) = 0;
  virtual void SetControlHooks(ControlHooks hooks) = 0;

  /// Releases the receive path (and, for the TCP transport, the cluster
  /// start barrier). Returns once data and control frames may flow.
  virtual Status Start() = 0;

  /// Ships one fabric message to `dst`'s process. Increments the
  /// sent-frame counter before the bytes can reach the destination.
  virtual Status SendData(int dst, uint8_t type,
                          const std::string& payload) = 0;

  /// Data frames handed to the wire so far.
  virtual uint64_t DataFramesSent() const = 0;

  /// Publishes this rank's termination-detection inputs to whoever runs
  /// detection (the cluster coordinator).
  virtual void PublishStatus(const RankStatus& status) = 0;

  /// False once a connection failed before clean termination; the engine
  /// then reports an error instead of pretending its partial state is a
  /// completed run.
  virtual bool healthy() const { return true; }
};

}  // namespace qcm

#endif  // QCM_NET_TRANSPORT_H_
