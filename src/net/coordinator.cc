#include "net/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/socket_util.h"
#include "util/serde.h"
#include "util/timer.h"

namespace qcm {

StatusOr<std::unique_ptr<Coordinator>> Coordinator::Listen(
    CoordinatorConfig config, uint16_t port) {
  if (config.world_size < 1) {
    return Status::InvalidArgument("world_size must be >= 1");
  }
  std::unique_ptr<Coordinator> c(new Coordinator(std::move(config)));
  uint16_t bound = 0;
  auto fd = ListenLoopback(port, &bound);
  QCM_RETURN_IF_ERROR(fd.status());
  c->listen_fd_ = fd.value();
  c->port_ = bound;
  c->workers_.resize(c->config_.world_size);
  // Alpha 0.5: status-borne latency estimates are already EWMAs of many
  // deliveries, so the coordinator tracks them tightly.
  c->rtt_ = std::make_unique<LinkRttTracker>(c->config_.world_size, 0.5);
  return c;
}

Coordinator::~Coordinator() { Close(); }

Status Coordinator::RunHandshake() {
  const int world = config_.world_size;

  // Accept and rank-assign in connection order. The accept poll is kept
  // short so an Abort() (a worker process died before connecting) fails
  // the handshake promptly instead of after the full timeout.
  for (int rank = 0; rank < world; ++rank) {
    WallTimer waited;
    int accepted = -1;
    while (accepted < 0) {
      if (failed_.load()) {
        std::lock_guard<std::mutex> lock(mu_);
        return Status::Aborted(failure_);
      }
      auto fd = AcceptTcp(listen_fd_, 0.1);
      if (fd.ok()) {
        accepted = fd.value();
        break;
      }
      if (fd.status().message() != "accept timed out") return fd.status();
      if (waited.Seconds() > config_.timeout_sec) return fd.status();
    }
    WorkerSlot& slot = workers_[rank];
    slot.fd = accepted;
    SetRecvTimeout(slot.fd, config_.timeout_sec);
    Frame frame;
    QCM_RETURN_IF_ERROR(ReadFrame(slot.fd, &frame));
    if (frame.kind != FrameKind::kHello) {
      return Status::Corruption(std::string("expected hello, got ") +
                                FrameKindName(frame.kind));
    }
    uint32_t version = 0;
    uint64_t pid = 0;
    QCM_RETURN_IF_ERROR(DecodeHello(frame.payload, &version, &pid));
    if (version != kWireProtocolVersion) {
      return Status::InvalidArgument(
          "worker speaks wire protocol v" + std::to_string(version) +
          ", coordinator expects v" + std::to_string(kWireProtocolVersion));
    }
    QCM_RETURN_IF_ERROR(WriteFrame(
        slot.fd,
        Frame{FrameKind::kAssign, kCoordinatorRank,
              EncodeAssign(static_cast<uint32_t>(rank),
                           static_cast<uint32_t>(world),
                           config_.config_blob)}));
  }

  // Collect peer listener ports, then publish the full port map.
  std::vector<uint32_t> ports(world, 0);
  for (int rank = 0; rank < world; ++rank) {
    Frame frame;
    QCM_RETURN_IF_ERROR(ReadFrame(workers_[rank].fd, &frame));
    if (frame.kind != FrameKind::kListening) {
      return Status::Corruption(std::string("expected listening, got ") +
                                FrameKindName(frame.kind));
    }
    Decoder dec(frame.payload);
    QCM_RETURN_IF_ERROR(dec.GetU32(&ports[rank]));
  }
  {
    Encoder enc;
    enc.PutU32Vector(ports);
    QCM_RETURN_IF_ERROR(Broadcast(FrameKind::kPeers, enc.Release()));
  }

  // Mesh barrier: every rank reports ready, then all start together.
  for (int rank = 0; rank < world; ++rank) {
    Frame frame;
    QCM_RETURN_IF_ERROR(ReadFrame(workers_[rank].fd, &frame));
    if (frame.kind != FrameKind::kReady) {
      return Status::Corruption(std::string("expected ready, got ") +
                                FrameKindName(frame.kind));
    }
  }
  QCM_RETURN_IF_ERROR(Broadcast(FrameKind::kStart, {}));

  // Hand each connection to its receiver thread.
  for (int rank = 0; rank < world; ++rank) {
    SetRecvTimeout(workers_[rank].fd, 0);
    workers_[rank].recv_thread =
        std::thread([this, rank] { RecvLoop(rank); });
  }
  handshake_done_ = true;
  return Status::OK();
}

void Coordinator::RecvLoop(int rank) {
  WorkerSlot& slot = workers_[rank];
  Frame frame;
  for (;;) {
    Status s = ReadFrame(slot.fd, &frame);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      slot.disconnected = true;
      // EOF after the report (or after termination) is the worker's
      // normal goodbye; anything earlier is a crash.
      if (!slot.report_received && !terminate_sent_.load()) {
        if (failure_.empty()) {
          failure_ = "rank " + std::to_string(rank) +
                     " disconnected before termination: " + s.ToString();
        }
        failed_.store(true);
      }
      return;
    }
    switch (frame.kind) {
      case FrameKind::kStatus: {
        WireRankStatus status;
        if (!DecodeRankStatus(frame.payload, &status).ok()) {
          Fail("corrupt status from rank " + std::to_string(rank));
          return;
        }
        std::lock_guard<std::mutex> lock(mu_);
        slot.status = status;
        ++slot.status_seq;
        break;
      }
      case FrameKind::kReport: {
        std::lock_guard<std::mutex> lock(mu_);
        slot.report = std::move(frame.payload);
        slot.report_received = true;
        break;
      }
      case FrameKind::kAbort:
        Fail("rank " + std::to_string(rank) + " aborted: " + frame.payload);
        return;
      default:
        Fail(std::string("unexpected frame from rank ") +
             std::to_string(rank) + ": " + FrameKindName(frame.kind));
        return;
    }
  }
}

void Coordinator::Fail(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failure_.empty()) failure_ = reason;
  }
  failed_.store(true);
}

void Coordinator::Abort(const std::string& reason) { Fail(reason); }

Status Coordinator::Broadcast(FrameKind kind, const std::string& payload) {
  for (int rank = 0; rank < config_.world_size; ++rank) {
    QCM_RETURN_IF_ERROR(SendTo(rank, kind, payload));
  }
  return Status::OK();
}

Status Coordinator::SendTo(int rank, FrameKind kind,
                           const std::string& payload) {
  WorkerSlot& slot = workers_[rank];
  std::lock_guard<std::mutex> lock(*slot.send_mu);
  return WriteFrame(slot.fd, Frame{kind, kCoordinatorRank, payload});
}

StatusOr<std::vector<std::string>> Coordinator::RunToCompletion() {
  if (!handshake_done_) {
    return Status::InvalidArgument("RunToCompletion before RunHandshake");
  }
  const int world = config_.world_size;

  // Double-sweep quiescence candidate: per-rank (sent, processed) totals
  // and the status sequence numbers they were observed at.
  bool have_candidate = false;
  std::vector<std::pair<uint64_t, uint64_t>> cand_counters(world);
  std::vector<uint64_t> cand_seq(world);

  // Steal mastering bookkeeping: local estimates so repeated sweeps do
  // not re-plan the same move before fresh statuses arrive.
  WallTimer steal_timer;

  while (!failed_.load()) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::max(config_.sweep_period_sec, 1e-5)));

    std::vector<WireRankStatus> statuses(world);
    std::vector<uint64_t> seqs(world);
    bool all_reported = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int r = 0; r < world; ++r) {
        statuses[r] = workers_[r].status;
        seqs[r] = workers_[r].status_seq;
        if (seqs[r] == 0) all_reported = false;
      }
    }
    if (!all_reported) continue;

    uint64_t total_sent = 0;
    uint64_t total_processed = 0;
    bool quiescent = true;
    for (int r = 0; r < world; ++r) {
      if (statuses[r].pending != 0 || statuses[r].spawn_done == 0) {
        quiescent = false;
      }
      total_sent += statuses[r].data_frames_sent;
      total_processed += statuses[r].data_frames_processed;
    }
    quiescent = quiescent && total_sent == total_processed;

    if (quiescent) {
      if (have_candidate) {
        bool confirmed = true;
        for (int r = 0; r < world; ++r) {
          // A fresh status must have arrived since the candidate sweep,
          // and its counters must not have moved: the rank verifiably
          // did nothing in between.
          if (seqs[r] <= cand_seq[r] ||
              statuses[r].data_frames_sent != cand_counters[r].first ||
              statuses[r].data_frames_processed != cand_counters[r].second) {
            confirmed = false;
            break;
          }
        }
        if (confirmed) break;  // global quiescence proven twice
      }
      have_candidate = true;
      for (int r = 0; r < world; ++r) {
        cand_counters[r] = {statuses[r].data_frames_sent,
                            statuses[r].data_frames_processed};
        cand_seq[r] = seqs[r];
      }
      continue;  // no point planning steals in a quiescent sweep
    }
    have_candidate = false;

    // Steal mastering: the shared sched/steal_planner.h plan (identical
    // to the simulated engine's steal master), with link RTTs estimated
    // from the per-rank delivery latencies the workers publish.
    if (config_.steal_period_sec > 0 && world >= 2 &&
        steal_timer.Seconds() >= config_.steal_period_sec) {
      steal_timer.Reset();
      std::vector<uint64_t> counts(world);
      for (int r = 0; r < world; ++r) {
        counts[r] = statuses[r].pending_big;
        if (statuses[r].delivery_latency_usec != 0) {
          rtt_->RecordInbound(
              r, 1e-6 * static_cast<double>(
                            statuses[r].delivery_latency_usec));
        }
      }
      StealPlannerOptions opts;
      opts.base_batch = config_.steal_batch_cap;
      opts.rtt_reference_sec = config_.steal_rtt_reference_sec;
      opts.max_batch_factor = config_.steal_max_batch_factor;
      for (const StealMove& move : PlanSteals(counts, opts, rtt_.get())) {
        Status s = SendTo(
            move.donor, FrameKind::kStealCmd,
            EncodeStealCmd(static_cast<uint32_t>(move.receiver),
                           move.want));
        if (!s.ok()) {
          Fail("steal command to rank " + std::to_string(move.donor) +
               " failed: " + s.ToString());
          break;
        }
        ++steal_commands_;
      }
    }
  }

  if (failed_.load()) {
    std::lock_guard<std::mutex> lock(mu_);
    return Status::Aborted(failure_);
  }

  terminate_sent_.store(true);
  QCM_RETURN_IF_ERROR(Broadcast(FrameKind::kTerminate, {}));

  // Collect one report per rank.
  WallTimer waited;
  for (;;) {
    bool all = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int r = 0; r < world; ++r) {
        if (!workers_[r].report_received) {
          all = false;
          if (workers_[r].disconnected) {
            return Status::Aborted("rank " + std::to_string(r) +
                                   " exited without a report");
          }
        }
      }
    }
    if (all) break;
    if (failed_.load()) {
      std::lock_guard<std::mutex> lock(mu_);
      return Status::Aborted(failure_);
    }
    if (waited.Seconds() > config_.timeout_sec) {
      return Status::IOError("timed out waiting for worker reports");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<std::string> reports(world);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int r = 0; r < world; ++r) reports[r] = workers_[r].report;
  }
  return reports;
}

void Coordinator::Close() {
  if (closed_) return;
  closed_ = true;
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  for (WorkerSlot& slot : workers_) {
    ShutdownSocket(slot.fd);
  }
  for (WorkerSlot& slot : workers_) {
    if (slot.recv_thread.joinable()) slot.recv_thread.join();
  }
  for (WorkerSlot& slot : workers_) {
    CloseSocket(slot.fd);
    slot.fd = -1;
  }
}

}  // namespace qcm
