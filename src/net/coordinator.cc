#include "net/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/socket_util.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qcm {

namespace {

/// v[idx] with absent entries reading as zero (a status published before
/// a world resize, or a replacement's first sweeps).
uint64_t VecAt(const std::vector<uint64_t>& v, size_t idx) {
  return idx < v.size() ? v[idx] : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// LivenessTracker
// ---------------------------------------------------------------------------

LivenessTracker::LivenessTracker(int world_size, double deadline_sec)
    : deadline_sec_(deadline_sec),
      last_seen_(world_size, 0.0),
      armed_(world_size, false),
      dead_(world_size, false) {}

void LivenessTracker::Arm(int rank, double now_sec) {
  last_seen_[rank] = now_sec;
  armed_[rank] = true;
  dead_[rank] = false;
}

void LivenessTracker::Observe(int rank, double now_sec) {
  if (dead_[rank]) return;
  last_seen_[rank] = std::max(last_seen_[rank], now_sec);
  armed_[rank] = true;
}

void LivenessTracker::MarkDead(int rank) { dead_[rank] = true; }

std::vector<int> LivenessTracker::Expired(double now_sec) const {
  std::vector<int> expired;
  if (deadline_sec_ <= 0) return expired;
  for (size_t r = 0; r < last_seen_.size(); ++r) {
    if (!armed_[r] || dead_[r]) continue;
    if (now_sec - last_seen_[r] > deadline_sec_) {
      expired.push_back(static_cast<int>(r));
    }
  }
  return expired;
}

double LivenessTracker::SilenceSec(int rank, double now_sec) const {
  if (!armed_[rank]) return 0.0;
  return std::max(0.0, now_sec - last_seen_[rank]);
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<Coordinator>> Coordinator::Listen(
    CoordinatorConfig config, uint16_t port) {
  if (config.world_size < 1) {
    return Status::InvalidArgument("world_size must be >= 1");
  }
  std::unique_ptr<Coordinator> c(new Coordinator(std::move(config)));
  uint16_t bound = 0;
  auto fd = ListenLoopback(port, &bound);
  QCM_RETURN_IF_ERROR(fd.status());
  c->listen_fd_ = fd.value();
  c->port_ = bound;
  c->workers_.resize(c->config_.world_size);
  c->peer_ports_.assign(c->config_.world_size, 0);
  c->rank_epoch_.assign(c->config_.world_size, 0);
  c->rank_pid_.assign(c->config_.world_size, 0);
  c->restarts_.assign(c->config_.world_size, 0);
  // Alpha 0.5: status-borne latency estimates are already EWMAs of many
  // deliveries, so the coordinator tracks them tightly.
  c->rtt_ = std::make_unique<LinkRttTracker>(c->config_.world_size, 0.5);
  c->clock_ = std::make_unique<WallTimer>();
  c->liveness_ = std::make_unique<LivenessTracker>(
      c->config_.world_size, c->config_.heartbeat_deadline_sec);
  return c;
}

Coordinator::~Coordinator() { Close(); }

double Coordinator::NowSec() const { return clock_->Seconds(); }

void Coordinator::SetRecoveryCallbacks(std::function<void(int)> kill,
                                       std::function<Status(int)> relaunch) {
  kill_cb_ = std::move(kill);
  relaunch_cb_ = std::move(relaunch);
}

void Coordinator::SetStatsCallback(StatsCallback cb) {
  stats_cb_ = std::move(cb);
}

Status Coordinator::RunHandshake() {
  const int world = config_.world_size;

  // Accept and rank-assign in connection order. The accept poll is kept
  // short so an Abort() (a worker process died before connecting) fails
  // the handshake promptly instead of after the full timeout.
  for (int rank = 0; rank < world; ++rank) {
    WallTimer waited;
    int accepted = -1;
    while (accepted < 0) {
      if (failed_.load()) {
        std::lock_guard<std::mutex> lock(mu_);
        return Status::Aborted(failure_);
      }
      auto fd = AcceptTcp(listen_fd_, 0.1);
      if (fd.ok()) {
        accepted = fd.value();
        break;
      }
      if (fd.status().message() != "accept timed out") return fd.status();
      if (waited.Seconds() > config_.timeout_sec) return fd.status();
    }
    WorkerSlot& slot = workers_[rank];
    slot.fd = accepted;
    SetRecvTimeout(slot.fd, config_.timeout_sec);
    Frame frame;
    QCM_RETURN_IF_ERROR(ReadFrame(slot.fd, &frame));
    if (frame.kind != FrameKind::kHello) {
      return Status::Corruption(std::string("expected hello, got ") +
                                FrameKindName(frame.kind));
    }
    uint32_t version = 0;
    uint64_t pid = 0;
    QCM_RETURN_IF_ERROR(DecodeHello(frame.payload, &version, &pid));
    if (version != kWireProtocolVersion) {
      return Status::InvalidArgument(
          "worker speaks wire protocol v" + std::to_string(version) +
          ", coordinator expects v" + std::to_string(kWireProtocolVersion));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      rank_pid_[rank] = pid;
    }
    QCM_RETURN_IF_ERROR(WriteFrame(
        slot.fd,
        Frame{FrameKind::kAssign, kCoordinatorRank,
              EncodeAssign(static_cast<uint32_t>(rank),
                           static_cast<uint32_t>(world), config_.config_blob,
                           /*epoch=*/0)}));
  }

  // Collect peer listener ports, then publish the full port map.
  for (int rank = 0; rank < world; ++rank) {
    Frame frame;
    QCM_RETURN_IF_ERROR(ReadFrame(workers_[rank].fd, &frame));
    if (frame.kind != FrameKind::kListening) {
      return Status::Corruption(std::string("expected listening, got ") +
                                FrameKindName(frame.kind));
    }
    Decoder dec(frame.payload);
    QCM_RETURN_IF_ERROR(dec.GetU32(&peer_ports_[rank]));
  }
  {
    Encoder enc;
    enc.PutU32Vector(peer_ports_);
    QCM_RETURN_IF_ERROR(Broadcast(FrameKind::kPeers, enc.Release()));
  }

  // Mesh barrier: every rank reports ready, then all start together.
  for (int rank = 0; rank < world; ++rank) {
    Frame frame;
    QCM_RETURN_IF_ERROR(ReadFrame(workers_[rank].fd, &frame));
    if (frame.kind != FrameKind::kReady) {
      return Status::Corruption(std::string("expected ready, got ") +
                                FrameKindName(frame.kind));
    }
  }
  QCM_RETURN_IF_ERROR(Broadcast(FrameKind::kStart, {}));

  // Hand each connection to its receiver thread; liveness deadlines arm
  // at the barrier release.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int rank = 0; rank < world; ++rank) {
      liveness_->Arm(rank, NowSec());
    }
  }
  for (int rank = 0; rank < world; ++rank) {
    SetRecvTimeout(workers_[rank].fd, 0);
    workers_[rank].recv_thread =
        std::thread([this, rank] { RecvLoop(rank); });
  }
  handshake_done_ = true;
  return Status::OK();
}

void Coordinator::RecvLoop(int rank) {
  WorkerSlot& slot = workers_[rank];
  Frame frame;
  for (;;) {
    Status s = ReadFrame(slot.fd, &frame);
    if (!s.ok()) {
      bool reported = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        slot.disconnected = true;
        // The coordinator itself tore this connection down (the rank was
        // already declared dead): expected exit, nothing more to do.
        if (slot.superseded) return;
        reported = slot.report_received;
      }
      // EOF after the report (or after termination) is the worker's
      // normal goodbye; anything earlier is a death.
      if (!reported && !terminate_sent_.load()) {
        RequestRecovery(rank, "disconnect");
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      liveness_->Observe(rank, NowSec());
      if (slot.superseded) {
        // Late frame from a killed incarnation racing its teardown.
        continue;
      }
    }
    switch (frame.kind) {
      case FrameKind::kStatus: {
        WireRankStatus status;
        if (!DecodeRankStatus(frame.payload, &status).ok()) {
          Fail("corrupt status from rank " + std::to_string(rank));
          return;
        }
        std::lock_guard<std::mutex> lock(mu_);
        slot.status = std::move(status);
        ++slot.status_seq;
        break;
      }
      case FrameKind::kHeartbeat: {
        // The Observe above already refreshed the deadline; the payload
        // sequence is not otherwise needed.
        break;
      }
      case FrameKind::kStats: {
        WireStatsSample sample;
        if (!DecodeStatsSample(frame.payload, &sample).ok()) {
          Fail("corrupt stats from rank " + std::to_string(rank));
          return;
        }
        // Telemetry only: never touches termination or steal state.
        // stats_cb_ is installed before RunHandshake, so reading it
        // without mu_ is race-free.
        if (stats_cb_) stats_cb_(rank, sample);
        break;
      }
      case FrameKind::kReport: {
        std::lock_guard<std::mutex> lock(mu_);
        slot.report = std::move(frame.payload);
        slot.report_received = true;
        break;
      }
      case FrameKind::kAbort:
        Fail("rank " + std::to_string(rank) + " aborted: " + frame.payload);
        return;
      default:
        Fail(std::string("unexpected frame from rank ") +
             std::to_string(rank) + ": " + FrameKindName(frame.kind));
        return;
    }
  }
}

void Coordinator::Fail(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failure_.empty()) failure_ = reason;
  }
  failed_.store(true);
}

void Coordinator::Abort(const std::string& reason) { Fail(reason); }

void Coordinator::OnRankDeath(int rank) {
  if (rank < 0 || rank >= config_.world_size) return;
  if (terminate_sent_.load()) return;  // post-termination exits are normal
  RequestRecovery(rank, "child-exit");
}

void Coordinator::RequestRecovery(int rank, const char* method) {
  const bool recovery_available =
      static_cast<bool>(kill_cb_) && static_cast<bool>(relaunch_cb_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_[rank].superseded) return;  // already declared this death
    if (recovery_available && restarts_[rank] < config_.max_rank_restarts) {
      PendingRecovery death;
      death.rank = rank;
      death.method = method;
      death.detection_latency_usec = static_cast<uint64_t>(
          liveness_->SilenceSec(rank, NowSec()) * 1e6);
      workers_[rank].superseded = true;
      liveness_->MarkDead(rank);
      QCM_TRACE_INSTANT(trace::kRecovery, "rank_declared_dead", rank);
      QCM_WLOG << "rank " << rank << " declared dead (" << method
               << ", silent "
               << death.detection_latency_usec / 1000 << " ms); queueing "
               << "replacement epoch " << rank_epoch_[rank] + 1;
      dead_queue_.push_back(std::move(death));
      return;
    }
  }
  std::string reason = "rank " + std::to_string(rank) + " died (" + method +
                       ")";
  if (recovery_available) {
    reason += " after exhausting " +
              std::to_string(config_.max_rank_restarts) + " restarts";
  } else {
    reason += " and no recovery callbacks are installed";
  }
  Fail(reason);
}

Status Coordinator::RecoverRank(const PendingRecovery& death) {
  const int rank = death.rank;
  const int world = config_.world_size;
  WallTimer recovery_timer;
  QCM_TRACE_SPAN(trace::kRecovery, "recover_rank", rank);
  uint32_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = ++rank_epoch_[rank];
  }

  {
    QCM_TRACE_SPAN(trace::kRecovery, "recover_kill", rank);
    // 1. Make sure the old incarnation is actually dead before telling
    // the survivors so: a half-alive process must not keep writing to
    // peers that have already reset its counters.
    if (kill_cb_) kill_cb_(rank);

    // 2. Tear down the old control connection (its RecvLoop sees
    // superseded and exits quietly).
    WorkerSlot& slot0 = workers_[rank];
    ShutdownSocket(slot0.fd);
    if (slot0.recv_thread.joinable()) slot0.recv_thread.join();
    CloseSocket(slot0.fd);
    slot0.fd = -1;

    // 3. Survivors quiesce the dead pair: their transports drop the
    // connection, reset sent_to[rank], and re-inject retained steal
    // batches (engine OnPeerDown).
    const std::string down =
        EncodePeerEvent(static_cast<uint32_t>(rank), epoch);
    for (int r = 0; r < world; ++r) {
      if (r == rank) continue;
      QCM_RETURN_IF_ERROR(SendTo(r, FrameKind::kPeerDown, down));
    }
  }
  WorkerSlot& slot = workers_[rank];

  QCM_TRACE_SPAN(trace::kRecovery, "recover_relaunch", rank);
  // 4. Launch the replacement and walk it through the same handshake the
  // original got, with the bumped epoch (its transport then dials every
  // survivor instead of accepting).
  QCM_RETURN_IF_ERROR(relaunch_cb_(rank));

  WallTimer waited;
  int accepted = -1;
  while (accepted < 0) {
    if (failed_.load()) {
      std::lock_guard<std::mutex> lock(mu_);
      return Status::Aborted(failure_);
    }
    auto fd = AcceptTcp(listen_fd_, 0.1);
    if (fd.ok()) {
      accepted = fd.value();
      break;
    }
    if (fd.status().message() != "accept timed out") return fd.status();
    if (waited.Seconds() > config_.timeout_sec) {
      return Status::IOError("timed out waiting for rank " +
                             std::to_string(rank) + " replacement");
    }
  }
  slot.fd = accepted;
  SetRecvTimeout(slot.fd, config_.timeout_sec);

  Frame frame;
  QCM_RETURN_IF_ERROR(ReadFrame(slot.fd, &frame));
  if (frame.kind != FrameKind::kHello) {
    return Status::Corruption(std::string("expected hello, got ") +
                              FrameKindName(frame.kind));
  }
  uint32_t version = 0;
  uint64_t pid = 0;
  QCM_RETURN_IF_ERROR(DecodeHello(frame.payload, &version, &pid));
  if (version != kWireProtocolVersion) {
    return Status::InvalidArgument("replacement speaks wire protocol v" +
                                   std::to_string(version));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    rank_pid_[rank] = pid;
  }
  QCM_RETURN_IF_ERROR(WriteFrame(
      slot.fd, Frame{FrameKind::kAssign, kCoordinatorRank,
                     EncodeAssign(static_cast<uint32_t>(rank),
                                  static_cast<uint32_t>(world),
                                  config_.config_blob, epoch)}));
  QCM_RETURN_IF_ERROR(ReadFrame(slot.fd, &frame));
  if (frame.kind != FrameKind::kListening) {
    return Status::Corruption(std::string("expected listening, got ") +
                              FrameKindName(frame.kind));
  }
  {
    Decoder dec(frame.payload);
    QCM_RETURN_IF_ERROR(dec.GetU32(&peer_ports_[rank]));
  }
  {
    Encoder enc;
    enc.PutU32Vector(peer_ports_);
    QCM_RETURN_IF_ERROR(WriteFrame(
        slot.fd, Frame{FrameKind::kPeers, kCoordinatorRank, enc.Release()}));
  }
  // kReady arrives only after the replacement has dialed every survivor,
  // so the mesh is complete here.
  QCM_RETURN_IF_ERROR(ReadFrame(slot.fd, &frame));
  if (frame.kind != FrameKind::kReady) {
    return Status::Corruption(std::string("expected ready, got ") +
                              FrameKindName(frame.kind));
  }

  // 5. Reset the slot's bookkeeping and hand the connection to a fresh
  // receiver before releasing the replacement.
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot.status = WireRankStatus{};
    slot.status_seq = 0;
    slot.report_received = false;
    slot.report.clear();
    slot.disconnected = false;
    slot.superseded = false;
    liveness_->Arm(rank, NowSec());
    ++restarts_[rank];
  }
  SetRecvTimeout(slot.fd, 0);
  slot.recv_thread = std::thread([this, rank] { RecvLoop(rank); });
  QCM_RETURN_IF_ERROR(SendTo(rank, FrameKind::kStart, {}));

  // 6. Survivors re-open the pair: their transports wait for the
  // replacement's dial (already done -- kReady proves it) and re-request
  // in-flight pulls (engine OnPeerUp).
  const std::string up = EncodePeerEvent(static_cast<uint32_t>(rank), epoch);
  for (int r = 0; r < world; ++r) {
    if (r == rank) continue;
    QCM_RETURN_IF_ERROR(SendTo(r, FrameKind::kPeerUp, up));
  }

  RecoveryEvent event;
  event.rank = rank;
  event.epoch = epoch;
  event.method = death.method;
  event.detection_latency_usec = death.detection_latency_usec;
  event.recovery_sec = recovery_timer.Seconds();
  QCM_ILOG << "rank " << rank << " recovered: epoch " << epoch << " ("
           << death.method << ", detection "
           << death.detection_latency_usec / 1000 << " ms, recovery "
           << static_cast<int>(event.recovery_sec * 1000) << " ms)";
  {
    std::lock_guard<std::mutex> lock(mu_);
    recovery_events_.push_back(std::move(event));
  }
  return Status::OK();
}

std::vector<Coordinator::RecoveryEvent> Coordinator::recovery_events()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovery_events_;
}

std::vector<int> Coordinator::restarts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restarts_;
}

uint64_t Coordinator::RankPid(int rank) const {
  if (rank < 0 || rank >= config_.world_size) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return rank_pid_[rank];
}

bool Coordinator::SnapshotStatus(int rank, WireRankStatus* out) const {
  if (rank < 0 || rank >= config_.world_size) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (workers_[rank].status_seq == 0) return false;
  *out = workers_[rank].status;
  return true;
}

Status Coordinator::Broadcast(FrameKind kind, const std::string& payload) {
  for (int rank = 0; rank < config_.world_size; ++rank) {
    QCM_RETURN_IF_ERROR(SendTo(rank, kind, payload));
  }
  return Status::OK();
}

Status Coordinator::SendTo(int rank, FrameKind kind,
                           const std::string& payload) {
  WorkerSlot& slot = workers_[rank];
  std::lock_guard<std::mutex> lock(*slot.send_mu);
  return WriteFrame(slot.fd, Frame{kind, kCoordinatorRank, payload});
}

StatusOr<std::vector<std::string>> Coordinator::RunToCompletion() {
  if (!handshake_done_) {
    return Status::InvalidArgument("RunToCompletion before RunHandshake");
  }
  const int world = config_.world_size;

  // Double-sweep quiescence candidate: per-rank per-pair counters and the
  // status sequence numbers they were observed at.
  bool have_candidate = false;
  std::vector<WireRankStatus> cand(world);
  std::vector<uint64_t> cand_seq(world);

  // Steal mastering bookkeeping: local estimates so repeated sweeps do
  // not re-plan the same move before fresh statuses arrive.
  WallTimer steal_timer;

  while (!failed_.load()) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::max(config_.sweep_period_sec, 1e-5)));

    // Liveness first: declare heartbeat-silent ranks dead, then run any
    // queued recoveries inline (steal mastering and termination
    // confirmation are paused for the rest of this sweep -- and until
    // the replacement publishes a status, via the all_reported gate).
    std::vector<PendingRecovery> deaths;
    {
      std::vector<int> expired;
      {
        std::lock_guard<std::mutex> lock(mu_);
        expired = liveness_->Expired(NowSec());
      }
      for (int r : expired) RequestRecovery(r, "heartbeat-timeout");
      std::lock_guard<std::mutex> lock(mu_);
      deaths = std::move(dead_queue_);
      dead_queue_.clear();
    }
    if (!deaths.empty()) {
      for (const PendingRecovery& death : deaths) {
        Status s = RecoverRank(death);
        if (!s.ok()) {
          Fail("recovery of rank " + std::to_string(death.rank) +
               " failed: " + s.ToString());
          break;
        }
      }
      have_candidate = false;
      continue;
    }

    std::vector<WireRankStatus> statuses(world);
    std::vector<uint64_t> seqs(world);
    bool all_reported = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int r = 0; r < world; ++r) {
        statuses[r] = workers_[r].status;
        seqs[r] = workers_[r].status_seq;
        if (seqs[r] == 0) all_reported = false;
      }
    }
    if (!all_reported) continue;

    // Quiescence: no rank holds work, and every ordered pair's wire is
    // drained (sent_to on the sender matches processed_from on the
    // receiver).
    bool quiescent = true;
    for (int r = 0; r < world && quiescent; ++r) {
      if (statuses[r].pending != 0 || statuses[r].spawn_done == 0) {
        quiescent = false;
      }
    }
    for (int i = 0; i < world && quiescent; ++i) {
      for (int j = 0; j < world; ++j) {
        if (i == j) continue;
        if (VecAt(statuses[i].sent_to, j) !=
            VecAt(statuses[j].processed_from, i)) {
          quiescent = false;
          break;
        }
      }
    }

    if (quiescent) {
      if (have_candidate) {
        bool confirmed = true;
        for (int r = 0; r < world && confirmed; ++r) {
          // A fresh status must have arrived since the candidate sweep,
          // and its counters must not have moved: the rank verifiably
          // did nothing in between.
          if (seqs[r] <= cand_seq[r]) {
            confirmed = false;
            break;
          }
          for (int p = 0; p < world; ++p) {
            if (VecAt(statuses[r].sent_to, p) !=
                    VecAt(cand[r].sent_to, p) ||
                VecAt(statuses[r].processed_from, p) !=
                    VecAt(cand[r].processed_from, p)) {
              confirmed = false;
              break;
            }
          }
        }
        if (confirmed) break;  // global quiescence proven twice
      }
      have_candidate = true;
      for (int r = 0; r < world; ++r) {
        cand[r] = statuses[r];
        cand_seq[r] = seqs[r];
      }
      continue;  // no point planning steals in a quiescent sweep
    }
    have_candidate = false;

    // Steal mastering: the shared sched/steal_planner.h plan (identical
    // to the simulated engine's steal master), with link RTTs estimated
    // from the per-rank delivery latencies the workers publish.
    if (config_.steal_period_sec > 0 && world >= 2 &&
        steal_timer.Seconds() >= config_.steal_period_sec) {
      steal_timer.Reset();
      std::vector<uint64_t> counts(world);
      for (int r = 0; r < world; ++r) {
        counts[r] = statuses[r].pending_big;
        if (statuses[r].delivery_latency_usec != 0) {
          rtt_->RecordInbound(
              r, 1e-6 * static_cast<double>(
                            statuses[r].delivery_latency_usec));
        }
      }
      StealPlannerOptions opts;
      opts.base_batch = config_.steal_batch_cap;
      opts.rtt_reference_sec = config_.steal_rtt_reference_sec;
      opts.max_batch_factor = config_.steal_max_batch_factor;
      for (const StealMove& move : PlanSteals(counts, opts, rtt_.get())) {
        Status s = SendTo(
            move.donor, FrameKind::kStealCmd,
            EncodeStealCmd(static_cast<uint32_t>(move.receiver),
                           move.want));
        if (!s.ok()) {
          Fail("steal command to rank " + std::to_string(move.donor) +
               " failed: " + s.ToString());
          break;
        }
        ++steal_commands_;
      }
    }
  }

  if (failed_.load()) {
    std::lock_guard<std::mutex> lock(mu_);
    return Status::Aborted(failure_);
  }

  terminate_sent_.store(true);
  QCM_RETURN_IF_ERROR(Broadcast(FrameKind::kTerminate, {}));

  // Collect one report per rank.
  WallTimer waited;
  for (;;) {
    bool all = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int r = 0; r < world; ++r) {
        if (!workers_[r].report_received) {
          all = false;
          if (workers_[r].disconnected) {
            return Status::Aborted("rank " + std::to_string(r) +
                                   " exited without a report");
          }
        }
      }
    }
    if (all) break;
    if (failed_.load()) {
      std::lock_guard<std::mutex> lock(mu_);
      return Status::Aborted(failure_);
    }
    if (waited.Seconds() > config_.timeout_sec) {
      return Status::IOError("timed out waiting for worker reports");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<std::string> reports(world);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int r = 0; r < world; ++r) reports[r] = workers_[r].report;
  }
  return reports;
}

void Coordinator::Close() {
  if (closed_) return;
  closed_ = true;
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  for (WorkerSlot& slot : workers_) {
    ShutdownSocket(slot.fd);
  }
  for (WorkerSlot& slot : workers_) {
    if (slot.recv_thread.joinable()) slot.recv_thread.join();
  }
  for (WorkerSlot& slot : workers_) {
    CloseSocket(slot.fd);
    slot.fd = -1;
  }
}

}  // namespace qcm
