// ClusterJobSpec: everything a worker process needs to run its share of a
// distributed mining job, shipped as the opaque config blob of the rank-
// assignment handshake (wire.h kAssign). The graph itself is NOT shipped:
// workers rebuild it deterministically from the spec (an edge-list path
// readable by every process, or a seeded synthetic-generator spec) and
// then keep only their own partition.

#ifndef QCM_NET_JOB_SPEC_H_
#define QCM_NET_JOB_SPEC_H_

#include <string>

#include "gthinker/engine_config.h"
#include "util/status.h"

namespace qcm {

struct ClusterJobSpec {
  /// Exactly one of these is non-empty (same contract as qcm_mine).
  std::string input;        // SNAP edge-list path
  std::string gen_planted;  // planted-community generator spec
  uint64_t seed = 1;        // generator seed (ignored for --input)

  /// Full engine configuration; num_machines must equal the cluster's
  /// world size.
  EngineConfig config;
};

std::string EncodeJobSpec(const ClusterJobSpec& spec);
Status DecodeJobSpec(const std::string& blob, ClusterJobSpec* spec);

}  // namespace qcm

#endif  // QCM_NET_JOB_SPEC_H_
