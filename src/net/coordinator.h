// Coordinator: the cluster-side control plane of the multi-process
// deployment (the role the in-process engine's MaybeFinish + StealLoop
// play in simulated mode, lifted out of the worker processes).
//
// It accepts exactly `world_size` workers, runs the rank-assignment
// handshake (wire.h), releases the start barrier, and then drives two
// periodic jobs off the workers' kStatus stream:
//
//   * Distributed termination detection. A sweep is quiescent when every
//     rank reported pending == 0 and spawn_done and the cluster-wide
//     totals of data frames sent and processed match. Termination is
//     declared only after two consecutive quiescent sweeps with identical
//     per-rank counters, where every rank published a fresh status in
//     between -- the engine-side counting discipline (transport.h)
//     guarantees any in-flight or unprocessed frame breaks one of the two
//     sweeps, so the drain invariant holds across processes.
//
//   * Steal mastering. THE SAME balancing plan object as the simulated
//     engine's steal master (sched/steal_planner.h: move at most one
//     batch per donor per period toward the average pending-big count,
//     with per-link batch caps scaled by RTT estimates -- larger, rarer
//     batches on slow links), except the move is a kStealCmd to the
//     donor, which ships the batch rank-to-rank as a kStealBatch fabric
//     message. The coordinator cannot observe fabric timestamps itself,
//     so its RTT input is the per-rank mean delivery latency every
//     worker publishes in its kStatus stream.
//
// After kTerminate it collects one kReport per rank and hands the payloads
// to the caller (tools/qcm_cluster merges them). Any worker failure --
// kAbort, connection loss before termination, malformed frames -- fails
// the whole run loudly instead of hanging.

#ifndef QCM_NET_COORDINATOR_H_
#define QCM_NET_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "sched/rtt.h"
#include "sched/steal_planner.h"
#include "util/status.h"

namespace qcm {

struct CoordinatorConfig {
  /// Number of worker processes (= machines = ranks).
  int world_size = 0;
  /// Opaque job configuration delivered to every worker with its rank.
  std::string config_blob;
  /// Termination-detection sweep cadence.
  double sweep_period_sec = 0.001;
  /// Steal-mastering period; <= 0 disables stealing.
  double steal_period_sec = 0.02;
  /// Base tasks per steal command (the engine's batch size C); the
  /// latency-aware planner may grow a command up to
  /// steal_batch_cap * steal_max_batch_factor on slow links.
  uint64_t steal_batch_cap = 16;
  /// Link RTT granting one extra base batch (EngineConfig::
  /// steal_rtt_reference_sec's cluster-side twin).
  double steal_rtt_reference_sec = 1e-3;
  /// Hard cap multiplier for latency-scaled steal commands.
  uint64_t steal_max_batch_factor = 8;
  /// Bring-up / report-collection guard.
  double timeout_sec = 120.0;
};

class Coordinator {
 public:
  /// Binds a listener on 127.0.0.1:`port` (0 = ephemeral).
  static StatusOr<std::unique_ptr<Coordinator>> Listen(
      CoordinatorConfig config, uint16_t port = 0);

  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Port workers must connect to.
  uint16_t port() const { return port_; }

  /// Accepts every worker, assigns ranks in connection order, exchanges
  /// peer listener ports, and releases the start barrier. Blocks.
  Status RunHandshake();

  /// Drives termination detection (and steal mastering) until global
  /// quiescence, broadcasts kTerminate, and returns every rank's report
  /// payload (index = rank). Blocks.
  StatusOr<std::vector<std::string>> RunToCompletion();

  /// Total kStealCmd frames issued (observability for tests/tools).
  uint64_t steal_commands_issued() const { return steal_commands_; }

  /// Fails the run from another thread (e.g. the launcher's child
  /// watchdog noticing a worker process died): RunHandshake stops
  /// accepting and RunToCompletion returns Aborted promptly.
  void Abort(const std::string& reason);

  /// Closes every connection and joins receiver threads. Idempotent.
  void Close();

 private:
  struct WorkerSlot {
    int fd = -1;
    std::unique_ptr<std::mutex> send_mu = std::make_unique<std::mutex>();
    std::thread recv_thread;

    // Guarded by Coordinator::mu_.
    uint64_t status_seq = 0;
    WireRankStatus status;
    bool report_received = false;
    std::string report;
    bool disconnected = false;
  };

  explicit Coordinator(CoordinatorConfig config)
      : config_(std::move(config)) {}

  void RecvLoop(int rank);
  void Fail(const std::string& reason);
  Status Broadcast(FrameKind kind, const std::string& payload);
  Status SendTo(int rank, FrameKind kind, const std::string& payload);

  CoordinatorConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<WorkerSlot> workers_;
  bool handshake_done_ = false;
  bool closed_ = false;

  std::atomic<bool> terminate_sent_{false};
  std::atomic<bool> failed_{false};
  uint64_t steal_commands_ = 0;
  /// Per-rank delivery-latency EWMAs assembled from kStatus publications
  /// (the planner's RTT input). Created by Listen().
  std::unique_ptr<LinkRttTracker> rtt_;

  mutable std::mutex mu_;
  std::string failure_;
};

}  // namespace qcm

#endif  // QCM_NET_COORDINATOR_H_
