// Coordinator: the cluster-side control plane of the multi-process
// deployment (the role the in-process engine's MaybeFinish + StealLoop
// play in simulated mode, lifted out of the worker processes).
//
// It accepts exactly `world_size` workers, runs the rank-assignment
// handshake (wire.h), releases the start barrier, and then drives three
// periodic jobs off the workers' kStatus / kHeartbeat streams:
//
//   * Distributed termination detection. A sweep is quiescent when every
//     rank reported pending == 0 and spawn_done and, for every ordered
//     pair (i, j), rank i's sent_to[j] equals rank j's processed_from[i]
//     (the per-pair form survives a rank being replaced mid-run, because
//     both sides of a dead pair reset symmetrically). Termination is
//     declared only after two consecutive quiescent sweeps with identical
//     per-pair counters, where every rank published a fresh status in
//     between -- the engine-side counting discipline (transport.h)
//     guarantees any in-flight or unprocessed frame breaks one of the two
//     sweeps, so the drain invariant holds across processes.
//
//   * Steal mastering. THE SAME balancing plan object as the simulated
//     engine's steal master (sched/steal_planner.h: move at most one
//     batch per donor per period toward the average pending-big count,
//     with per-link batch caps scaled by RTT estimates -- larger, rarer
//     batches on slow links), except the move is a kStealCmd to the
//     donor, which ships the batch rank-to-rank as a kStealBatch fabric
//     message. The coordinator cannot observe fabric timestamps itself,
//     so its RTT input is the per-rank mean delivery latency every
//     worker publishes in its kStatus stream.
//
//   * Liveness + recovery. Every frame a rank sends (heartbeats fill the
//     silences) refreshes its liveness deadline. A rank that goes silent
//     past heartbeat_deadline_sec, loses its control connection, or is
//     reported dead by the launcher's child watchdog (OnRankDeath) is
//     recovered in place when recovery callbacks are installed: the old
//     process is killed, survivors get kPeerDown {rank, epoch+1}, a
//     replacement is launched and walked through the same handshake with
//     the bumped epoch (it re-dials every survivor; its checkpoint replay
//     restores its durable progress), and survivors get kPeerUp once the
//     replacement is wired. Steal mastering and termination confirmation
//     naturally pause until the replacement publishes its first status.
//     Without callbacks -- or past max_rank_restarts -- a death fails the
//     run loudly, exactly like the pre-recovery behavior.
//
// After kTerminate it collects one kReport per rank and hands the payloads
// to the caller (tools/qcm_cluster merges them).

#ifndef QCM_NET_COORDINATOR_H_
#define QCM_NET_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "sched/rtt.h"
#include "sched/steal_planner.h"
#include "util/status.h"
#include "util/timer.h"

namespace qcm {

struct CoordinatorConfig {
  /// Number of worker processes (= machines = ranks).
  int world_size = 0;
  /// Opaque job configuration delivered to every worker with its rank.
  std::string config_blob;
  /// Termination-detection sweep cadence.
  double sweep_period_sec = 0.001;
  /// Steal-mastering period; <= 0 disables stealing.
  double steal_period_sec = 0.02;
  /// Base tasks per steal command (the engine's batch size C); the
  /// latency-aware planner may grow a command up to
  /// steal_batch_cap * steal_max_batch_factor on slow links.
  uint64_t steal_batch_cap = 16;
  /// Link RTT granting one extra base batch (EngineConfig::
  /// steal_rtt_reference_sec's cluster-side twin).
  double steal_rtt_reference_sec = 1e-3;
  /// Hard cap multiplier for latency-scaled steal commands.
  uint64_t steal_max_batch_factor = 8;
  /// Bring-up / report-collection guard.
  double timeout_sec = 120.0;
  /// A rank silent (no frame of any kind) for this long is declared dead
  /// and recovered. <= 0 disables heartbeat-based detection; child-exit
  /// (OnRankDeath) and connection-loss detection still apply.
  double heartbeat_deadline_sec = 5.0;
  /// Hard cap on replacements of any single rank before the run fails.
  int max_rank_restarts = 2;
};

/// Per-rank liveness bookkeeping: last-seen timestamps against a silence
/// deadline. Socket-free so the deadline arithmetic is unit-testable
/// (tests/recovery_test.cc); the Coordinator feeds it wall-clock seconds
/// under its own lock. A rank starts un-armed until the first Arm/Observe.
class LivenessTracker {
 public:
  LivenessTracker(int world_size, double deadline_sec);

  /// (Re-)arms `rank`'s deadline at `now_sec` (bring-up, or a replacement
  /// coming online) and clears its dead marker.
  void Arm(int rank, double now_sec);
  /// A frame arrived from `rank`: refresh its deadline. Ignored while the
  /// rank is marked dead (a late frame from a killed incarnation must not
  /// resurrect it).
  void Observe(int rank, double now_sec);
  /// Marks `rank` dead: excluded from Expired() until re-armed.
  void MarkDead(int rank);

  /// Armed, not-dead ranks whose silence exceeds the deadline at
  /// `now_sec`. Empty when the deadline is disabled (<= 0).
  std::vector<int> Expired(double now_sec) const;

  /// Seconds of silence for `rank` at `now_sec` (detection latency at the
  /// moment of declaring death); 0 when never armed.
  double SilenceSec(int rank, double now_sec) const;

  bool IsDead(int rank) const { return dead_[rank]; }
  double deadline_sec() const { return deadline_sec_; }

 private:
  double deadline_sec_;
  std::vector<double> last_seen_;
  std::vector<bool> armed_;
  std::vector<bool> dead_;
};

class Coordinator {
 public:
  /// One completed rank recovery (observability for reports/tests).
  struct RecoveryEvent {
    int rank = -1;
    /// Incarnation epoch of the replacement (first replacement = 1).
    uint32_t epoch = 0;
    /// What noticed the death: "heartbeat-timeout", "disconnect", or
    /// "child-exit".
    std::string method;
    /// Silence observed at the moment of declaring the rank dead.
    uint64_t detection_latency_usec = 0;
    /// Kill -> replacement-wired wall time.
    double recovery_sec = 0;
  };

  /// Binds a listener on 127.0.0.1:`port` (0 = ephemeral).
  static StatusOr<std::unique_ptr<Coordinator>> Listen(
      CoordinatorConfig config, uint16_t port = 0);

  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Port workers must connect to.
  uint16_t port() const { return port_; }

  /// Installs the rank-recovery callbacks; without them a worker death
  /// fails the run. `kill` must ensure the rank's current process is dead
  /// before returning (SIGKILL + reap); `relaunch` spawns a fresh worker
  /// process that will dial this coordinator. Both are invoked from the
  /// RunToCompletion thread only. Call before RunToCompletion.
  void SetRecoveryCallbacks(std::function<void(int)> kill,
                            std::function<Status(int)> relaunch);

  /// Installs the kStats telemetry consumer (the qcm_cluster ticker /
  /// merged-trace counter tracks). Invoked from per-rank receiver
  /// threads; the callback must be thread-safe. Call before
  /// RunHandshake.
  using StatsCallback =
      std::function<void(int rank, const WireStatsSample& sample)>;
  void SetStatsCallback(StatsCallback cb);

  /// Accepts every worker, assigns ranks in connection order, exchanges
  /// peer listener ports, and releases the start barrier. Blocks.
  Status RunHandshake();

  /// Drives termination detection (plus steal mastering and rank
  /// recovery) until global quiescence, broadcasts kTerminate, and
  /// returns every rank's report payload (index = rank). Blocks.
  StatusOr<std::vector<std::string>> RunToCompletion();

  /// Total kStealCmd frames issued (observability for tests/tools).
  uint64_t steal_commands_issued() const { return steal_commands_; }

  /// Completed rank recoveries, in order.
  std::vector<RecoveryEvent> recovery_events() const;
  /// Replacements performed per rank.
  std::vector<int> restarts() const;

  /// Latest status published by `rank` (false until its first kStatus).
  /// Launcher-side fault-injection hooks poll this to kill a worker only
  /// once it verifiably holds work.
  bool SnapshotStatus(int rank, WireRankStatus* out) const;

  /// OS pid the current incarnation of `rank` reported in its kHello
  /// (0 before its handshake). Ranks are assigned in CONNECT order, not
  /// the launcher's spawn order -- the launcher must use this to map a
  /// rank onto the process it forked before killing/replacing anything.
  uint64_t RankPid(int rank) const;

  /// The launcher's child watchdog noticed rank `rank`'s process exit:
  /// queue it for recovery (or fail the run when recovery is off).
  /// Thread-safe.
  void OnRankDeath(int rank);

  /// Fails the run from another thread: RunHandshake stops accepting and
  /// RunToCompletion returns Aborted promptly.
  void Abort(const std::string& reason);

  /// Closes every connection and joins receiver threads. Idempotent.
  void Close();

 private:
  struct WorkerSlot {
    int fd = -1;
    std::unique_ptr<std::mutex> send_mu = std::make_unique<std::mutex>();
    std::thread recv_thread;

    // Guarded by Coordinator::mu_.
    uint64_t status_seq = 0;
    WireRankStatus status;
    bool report_received = false;
    std::string report;
    bool disconnected = false;
    /// The coordinator has declared this incarnation dead; its RecvLoop
    /// exit is expected and must not re-queue a recovery.
    bool superseded = false;
  };

  /// A declared death awaiting inline recovery in RunToCompletion.
  struct PendingRecovery {
    int rank = -1;
    std::string method;
    uint64_t detection_latency_usec = 0;
  };

  explicit Coordinator(CoordinatorConfig config)
      : config_(std::move(config)) {}

  void RecvLoop(int rank);
  void Fail(const std::string& reason);
  Status Broadcast(FrameKind kind, const std::string& payload);
  Status SendTo(int rank, FrameKind kind, const std::string& payload);
  /// Declares `rank` dead (idempotent) and queues it for recovery; fails
  /// the run instead when recovery is unavailable or exhausted.
  void RequestRecovery(int rank, const char* method);
  /// Kills, replaces, and re-wires one rank. RunToCompletion thread only.
  Status RecoverRank(const PendingRecovery& death);
  double NowSec() const;

  CoordinatorConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<WorkerSlot> workers_;
  /// Peer listener port of every rank (updated when a rank is replaced;
  /// a replacement receives the whole refreshed map).
  std::vector<uint32_t> peer_ports_;
  /// Current incarnation epoch per rank (0 = original process).
  std::vector<uint32_t> rank_epoch_;
  /// Self-reported OS pid per rank (from kHello). Guarded by mu_.
  std::vector<uint64_t> rank_pid_;
  bool handshake_done_ = false;
  bool closed_ = false;

  std::function<void(int)> kill_cb_;
  std::function<Status(int)> relaunch_cb_;
  StatsCallback stats_cb_;

  std::atomic<bool> terminate_sent_{false};
  std::atomic<bool> failed_{false};
  uint64_t steal_commands_ = 0;
  /// Per-rank delivery-latency EWMAs assembled from kStatus publications
  /// (the planner's RTT input). Created by Listen().
  std::unique_ptr<LinkRttTracker> rtt_;
  /// Monotonic clock for liveness deadlines; created by Listen().
  std::unique_ptr<WallTimer> clock_;

  mutable std::mutex mu_;
  std::string failure_;
  // All guarded by mu_.
  std::unique_ptr<LivenessTracker> liveness_;
  std::vector<PendingRecovery> dead_queue_;
  std::vector<RecoveryEvent> recovery_events_;
  std::vector<int> restarts_;
};

}  // namespace qcm

#endif  // QCM_NET_COORDINATOR_H_
