// Small loopback-TCP helpers shared by the worker transport and the
// cluster coordinator. All sockets are IPv4; the deployment targets a
// single host (or a trusted network) and keeps the address handling
// deliberately minimal.

#ifndef QCM_NET_SOCKET_UTIL_H_
#define QCM_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace qcm {

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 = ephemeral) and
/// returns its fd; `*bound_port` receives the actual port.
StatusOr<int> ListenLoopback(uint16_t port, uint16_t* bound_port);

/// Blocking connect to `host:port`; returns the connected fd with
/// TCP_NODELAY set.
StatusOr<int> ConnectTcp(const std::string& host, uint16_t port);

/// Blocking accept on `listen_fd`; returns the connected fd with
/// TCP_NODELAY set. `timeout_sec` > 0 bounds the wait (IOError on expiry).
StatusOr<int> AcceptTcp(int listen_fd, double timeout_sec);

/// Sets (or clears, with 0) a receive timeout on `fd`.
void SetRecvTimeout(int fd, double seconds);

/// shutdown(2) only; unblocks any reader without invalidating the fd
/// (close it after the reading thread has been joined).
void ShutdownSocket(int fd);

/// shutdown(2) + close(2); tolerates fd < 0. Unblocks any reader.
void CloseSocket(int fd);

}  // namespace qcm

#endif  // QCM_NET_SOCKET_UTIL_H_
