// Wire protocol of the multi-process deployment: length-prefixed frames
// with an integrity checksum, plus the handshake / rank-assignment control
// vocabulary spoken between the cluster coordinator (tools/qcm_cluster)
// and its worker processes (tools/qcm_worker).
//
// Every frame on a connection is
//
//   offset  size  field
//   0       4     magic "QCMW" (bytes 'Q','C','M','W')
//   4       1     kind (FrameKind)
//   5       4     src rank, u32 (kUnassignedRank before the coordinator
//                 has assigned one; the coordinator itself sends
//                 kCoordinatorRank)
//   9       4     payload length n, u32
//   13      n     payload bytes
//   13+n    8     FNV-1a fingerprint of the payload, u64
//
// Multi-byte fields are in host byte order, like every other codec in
// util/serde.h -- the deployment targets same-architecture clusters
// (little-endian on every supported platform; the byte pins in
// tests/wire_serde_test.cc assume it). A mixed-endianness cluster is out
// of contract and fails safely: the length/checksum mismatch rejects the
// first frame.
//
// and is rejected as Corruption on bad magic, an oversized length, or a
// checksum mismatch -- a worker never mines on a frame it cannot prove it
// received intact. This framing is the process-boundary twin of the
// CommFabric message contract: a kData frame carries exactly one fabric
// message as [MessageType u8][send timestamp usec u64][the same serialized
// payload the in-process fabric would enqueue], so simulated and
// distributed runs share one payload format end to end. The timestamp is
// the sender's monotonic clock at the moment the message entered the send
// path (BEFORE any coalescing dwell), so the receiver can measure real
// wire transit including time parked in a send buffer; it is meaningful
// across processes on one machine (one monotonic clock) and only
// clock-offset-approximate across hosts.
//
// The data-plane hot path never materializes a contiguous frame: a kData
// frame is encoded as {head, payload, trailer} parts (EncodeDataFrameParts)
// and written with scatter-gather writev/sendmsg (WriteFrameSlices), so the
// fabric message's payload string is the only copy of the payload bytes
// from serialization to syscall.
//
// Connection bring-up (the rank-assignment protocol):
//   1. worker -> coordinator  kHello     {protocol version, pid}
//   2. coordinator -> worker  kAssign    {rank, world size, config blob}
//   3. worker -> coordinator  kListening {port of the worker's peer
//                                         listener}
//   4. coordinator -> worker  kPeers     {peer listener port of every rank}
//   5. workers connect to every lower rank and identify themselves with
//      kPeerHello (src = their rank); the mesh is complete
//   6. worker -> coordinator  kReady; once all ranks are ready the
//      coordinator releases the barrier with kStart
// After kStart the data plane (kData) flows rank-to-rank while the control
// plane (kStatus up, kStealCmd / kTerminate down, kReport up at the end)
// stays on the coordinator connection.

#ifndef QCM_NET_WIRE_H_
#define QCM_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace qcm {

/// First four bytes of every frame.
inline constexpr char kWireMagic[4] = {'Q', 'C', 'M', 'W'};
/// Bump on any incompatible frame/payload change; checked in kHello.
// v2: WireRankStatus grew delivery_latency_usec (latency-aware steal
// planning input).
// v3: kData payloads carry the sender's monotonic send timestamp between
// the type byte and the fabric payload (real wire-transit measurement,
// including coalescing dwell); EngineConfig grew the coalescing knobs.
// v4: fault tolerance. New frame kinds kHeartbeat (worker liveness
// beacon), kPeerDown / kPeerUp (coordinator-driven rank recovery
// transitions); kAssign and kPeerHello carry the rank's incarnation
// epoch; WireRankStatus counts data frames per ordered peer pair
// (sent_to / processed_from vectors) so the drain invariant survives a
// rank being replaced mid-run; EngineConfig grew the checkpoint and
// heartbeat knobs.
// v5: observability. New frame kind kStats (epoch-tagged periodic
// telemetry sample: queue depth, in-flight bytes, cache hits/misses,
// busy compers) for the qcm_cluster live ticker and merged-trace counter
// tracks; EngineConfig grew the tracing knobs (trace_out,
// trace_buffer_kb, stats_interval_ms).
// v6: out-of-core graph storage. EngineConfig grew the snapshot knobs
// (graph_snapshot path, graph_page_size, graph_memory_budget) so the
// launcher packs the graph once and ships the .qcsr path to every rank;
// EngineReport grew the paged-store counters (page pins / page-ins /
// evictions / fault-stall time).
inline constexpr uint32_t kWireProtocolVersion = 6;
/// Frame header bytes before the payload (magic + kind + src + length).
inline constexpr size_t kWireHeaderBytes = 13;
/// Trailing checksum bytes after the payload.
inline constexpr size_t kWireTrailerBytes = 8;
/// Leading bytes of every kData frame payload: MessageType byte + the
/// sender's monotonic send timestamp (microseconds, u64).
inline constexpr size_t kDataFrameMetaBytes = 1 + 8;
/// Hard cap on a single frame payload; anything larger is Corruption
/// (protects a reader from a garbage length field allocating gigabytes).
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

/// `src` value of a worker that has not been assigned a rank yet.
inline constexpr uint32_t kUnassignedRank = 0xFFFFFFFFu;
/// `src` value of the coordinator on control frames it originates.
inline constexpr uint32_t kCoordinatorRank = 0xFFFFFFFEu;

/// Every frame is exactly one of these.
enum class FrameKind : uint8_t {
  kHello = 0,      // worker -> coordinator: {version u32, pid u64}
  kAssign = 1,     // coordinator -> worker: {rank u32, world u32, config}
  kListening = 2,  // worker -> coordinator: {peer listener port u32}
  kPeers = 3,      // coordinator -> worker: {port u32 per rank}
  kPeerHello = 4,  // worker -> worker: empty (src carries the rank)
  kReady = 5,      // worker -> coordinator: empty
  kStart = 6,      // coordinator -> worker: empty (mining barrier release)
  kStatus = 7,     // worker -> coordinator: RankStatus (termination input)
  kStealCmd = 8,   // coordinator -> worker: {receiver u32, want u64}
  kTerminate = 9,  // coordinator -> worker: empty (global quiescence)
  kReport = 10,    // worker -> coordinator: serialized EngineReport+results
  kData = 11,      // worker -> worker: {MessageType u8, fabric payload}
  kAbort = 12,     // either direction: {human-readable reason}
  kHeartbeat = 13,  // worker -> coordinator: {seq u64} liveness beacon
  kPeerDown = 14,   // coordinator -> worker: {rank u32, epoch u32}
  kPeerUp = 15,     // coordinator -> worker: {rank u32, epoch u32}
  kStats = 16,      // worker -> coordinator: WireStatsSample telemetry
};

const char* FrameKindName(FrameKind kind);

/// One parsed frame.
struct Frame {
  FrameKind kind = FrameKind::kHello;
  uint32_t src = kUnassignedRank;
  std::string payload;
};

/// Serializes a frame into its exact wire bytes (header + payload +
/// checksum). The byte layout is pinned by tests/wire_serde_test.cc.
std::string EncodeFrame(const Frame& frame);

/// Exact wire bytes of a kData frame whose payload is
/// [type byte][send_ts_usec u64][body], built in one buffer. Test/tool
/// convenience; the transport hot path uses EncodeDataFrameParts + a
/// scatter-gather write instead. Byte-identical to EncodeFrame on the
/// equivalent Frame.
std::string EncodeDataFrame(uint32_t src, uint8_t type,
                            uint64_t send_ts_usec, const std::string& body);

/// A kData frame split for scatter-gather writes: `head` is the frame
/// header plus the payload meta (type byte + send timestamp), `trailer`
/// is the checksum; the body bytes stay in the caller's buffer and are
/// never copied. head + body + trailer is byte-identical to
/// EncodeDataFrame(src, type, send_ts_usec, body).
struct DataFrameParts {
  std::string head;     // kWireHeaderBytes + kDataFrameMetaBytes bytes
  std::string trailer;  // kWireTrailerBytes bytes
};

DataFrameParts EncodeDataFrameParts(uint32_t src, uint8_t type,
                                    uint64_t send_ts_usec,
                                    const std::string& body);

/// Splits a received kData frame payload into its meta and fabric body.
/// Returns Corruption when the payload is shorter than the meta prefix.
Status SplitDataFramePayload(const std::string& payload, uint8_t* type,
                             uint64_t* send_ts_usec, std::string* body);

/// Parses one frame starting at `*pos` of `buf`; advances `*pos` past it.
/// Returns Corruption on bad magic / length / checksum, and IOError when
/// `buf` ends before the frame does (caller should read more bytes).
Status DecodeFrame(const std::string& buf, size_t* pos, Frame* frame);

/// Blocking write of one frame to a socket/pipe fd, looping over partial
/// writes. Not synchronized -- callers serialize per-fd access.
Status WriteFrame(int fd, const Frame& frame);

/// Blocking write of pre-encoded frame bytes (EncodeFrame /
/// EncodeDataFrame output). Same contract as WriteFrame.
Status WriteFrameBytes(int fd, const std::string& bytes);

/// One slice of a scatter-gather frame write.
struct WireSlice {
  const char* data;
  size_t len;
};

/// Blocking scatter-gather write of pre-encoded frame slices (e.g. the
/// concatenation of several frames' {head, body, trailer} parts) in one
/// writev/sendmsg per syscall, looping over partial writes and chunking
/// at the iovec limit. Same contract as WriteFrame; `syscalls` (optional)
/// receives the number of write syscalls issued.
Status WriteFrameSlices(int fd, const std::vector<WireSlice>& slices,
                        uint64_t* syscalls = nullptr);

/// Blocking read of one frame from a socket/pipe fd. A clean EOF before
/// the first header byte returns Aborted("connection closed"); EOF inside
/// a frame is Corruption.
Status ReadFrame(int fd, Frame* frame);

// ---------------------------------------------------------------------------
// Typed payload helpers for the control vocabulary.
// ---------------------------------------------------------------------------

/// kStatus payload: one rank's termination-detection inputs. See
/// Transport::PublishStatus for field semantics.
struct WireRankStatus {
  int64_t pending = 0;
  uint8_t spawn_done = 0;
  /// sent_to[j]: data frames this rank handed to the wire for peer j;
  /// processed_from[i]: data frames from peer i this rank fully folded
  /// into its local state. Quiescence requires, for every ordered pair
  /// (i, j), status[i].sent_to[j] == status[j].processed_from[i] -- the
  /// per-pair form survives a rank being replaced mid-run, because both
  /// sides of a dead pair reset symmetrically.
  std::vector<uint64_t> sent_to;
  std::vector<uint64_t> processed_from;
  uint64_t pending_big = 0;
  /// Mean fabric delivery latency observed at the rank (microseconds) --
  /// the coordinator's latency-aware steal-planning input.
  uint64_t delivery_latency_usec = 0;
};

std::string EncodeRankStatus(const WireRankStatus& status);
Status DecodeRankStatus(const std::string& payload, WireRankStatus* status);

std::string EncodeHello(uint64_t pid);
Status DecodeHello(const std::string& payload, uint32_t* version,
                   uint64_t* pid);

/// `epoch` is the rank's incarnation number: 0 for the first launch,
/// incremented by the coordinator for every replacement of that rank.
std::string EncodeAssign(uint32_t rank, uint32_t world_size,
                         const std::string& config_blob, uint32_t epoch);
Status DecodeAssign(const std::string& payload, uint32_t* rank,
                    uint32_t* world_size, std::string* config_blob,
                    uint32_t* epoch);

std::string EncodeStealCmd(uint32_t receiver, uint64_t want);
Status DecodeStealCmd(const std::string& payload, uint32_t* receiver,
                      uint64_t* want);

/// kPeerHello payload: the dialing rank's incarnation epoch (the rank
/// itself rides in the frame's src field). A survivor that accepts a
/// hello with a newer epoch than it has seen runs the peer-down
/// transition for the old incarnation before swapping in the new
/// connection.
std::string EncodePeerHello(uint32_t epoch);
Status DecodePeerHello(const std::string& payload, uint32_t* epoch);

/// kHeartbeat payload: a monotonically increasing beacon sequence.
std::string EncodeHeartbeat(uint64_t seq);
Status DecodeHeartbeat(const std::string& payload, uint64_t* seq);

/// kPeerDown / kPeerUp payload: which rank changed state and the epoch
/// of the incarnation the transition refers to (down names the dead
/// incarnation's successor epoch; up confirms that successor is wired).
std::string EncodePeerEvent(uint32_t rank, uint32_t epoch);
Status DecodePeerEvent(const std::string& payload, uint32_t* rank,
                       uint32_t* epoch);

/// kStats payload: one periodic telemetry sample from a rank. Timestamps
/// are the sender's monotonic clock (comparable across loopback ranks);
/// `epoch` is the sending incarnation so samples from a dead incarnation
/// can be told apart from its successor's.
struct WireStatsSample {
  uint32_t epoch = 0;
  uint64_t ts_usec = 0;
  uint64_t queue_depth = 0;     // tasks waiting in the global queue
  uint64_t inflight_bytes = 0;  // fabric bytes sent but not yet processed
  uint64_t cache_hits = 0;      // cumulative vertex-cache hits
  uint64_t cache_misses = 0;    // cumulative vertex-cache misses
  uint32_t busy_compers = 0;    // compers inside Compute right now
  uint64_t tasks_completed = 0; // cumulative tasks finished
  int64_t pending = 0;          // local termination-detector pending count
};

std::string EncodeStatsSample(const WireStatsSample& sample);
Status DecodeStatsSample(const std::string& payload,
                         WireStatsSample* sample);

}  // namespace qcm

#endif  // QCM_NET_WIRE_H_
