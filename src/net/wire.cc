#include "net/wire.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>

#include "util/serde.h"

namespace qcm {

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello:
      return "hello";
    case FrameKind::kAssign:
      return "assign";
    case FrameKind::kListening:
      return "listening";
    case FrameKind::kPeers:
      return "peers";
    case FrameKind::kPeerHello:
      return "peer-hello";
    case FrameKind::kReady:
      return "ready";
    case FrameKind::kStart:
      return "start";
    case FrameKind::kStatus:
      return "status";
    case FrameKind::kStealCmd:
      return "steal-cmd";
    case FrameKind::kTerminate:
      return "terminate";
    case FrameKind::kReport:
      return "report";
    case FrameKind::kData:
      return "data";
    case FrameKind::kAbort:
      return "abort";
    case FrameKind::kHeartbeat:
      return "heartbeat";
    case FrameKind::kPeerDown:
      return "peer-down";
    case FrameKind::kPeerUp:
      return "peer-up";
    case FrameKind::kStats:
      return "stats";
  }
  return "?";
}

namespace {

void AppendFrameHeader(FrameKind kind, uint32_t src, uint32_t len,
                       std::string* out) {
  out->append(kWireMagic, sizeof(kWireMagic));
  out->push_back(static_cast<char>(kind));
  out->append(reinterpret_cast<const char*>(&src), sizeof(src));
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
}

void AppendChecksum(uint64_t sum, std::string* out) {
  out->append(reinterpret_cast<const char*>(&sum), sizeof(sum));
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kWireHeaderBytes + frame.payload.size() + kWireTrailerBytes);
  AppendFrameHeader(frame.kind, frame.src,
                    static_cast<uint32_t>(frame.payload.size()), &out);
  out.append(frame.payload);
  AppendChecksum(Fingerprint(frame.payload), &out);
  return out;
}

namespace {

/// The payload meta prefix of a kData frame: type byte + send timestamp.
void AppendDataMeta(uint8_t type, uint64_t send_ts_usec, std::string* out) {
  out->push_back(static_cast<char>(type));
  out->append(reinterpret_cast<const char*>(&send_ts_usec),
              sizeof(send_ts_usec));
}

}  // namespace

std::string EncodeDataFrame(uint32_t src, uint8_t type,
                            uint64_t send_ts_usec, const std::string& body) {
  DataFrameParts parts = EncodeDataFrameParts(src, type, send_ts_usec, body);
  std::string out;
  out.reserve(parts.head.size() + body.size() + parts.trailer.size());
  out.append(parts.head);
  out.append(body);
  out.append(parts.trailer);
  return out;
}

DataFrameParts EncodeDataFrameParts(uint32_t src, uint8_t type,
                                    uint64_t send_ts_usec,
                                    const std::string& body) {
  DataFrameParts parts;
  parts.head.reserve(kWireHeaderBytes + kDataFrameMetaBytes);
  AppendFrameHeader(
      FrameKind::kData, src,
      static_cast<uint32_t>(body.size() + kDataFrameMetaBytes), &parts.head);
  AppendDataMeta(type, send_ts_usec, &parts.head);
  // Checksum covers the frame payload = meta + body; FNV-1a streams, so
  // no concatenated copy is needed -- the body bytes stay where the
  // fabric serialized them.
  AppendChecksum(
      ExtendFingerprint(
          ExtendFingerprint(kFingerprintSeed,
                            parts.head.data() + kWireHeaderBytes,
                            kDataFrameMetaBytes),
          body.data(), body.size()),
      &parts.trailer);
  return parts;
}

Status SplitDataFramePayload(const std::string& payload, uint8_t* type,
                             uint64_t* send_ts_usec, std::string* body) {
  if (payload.size() < kDataFrameMetaBytes) {
    return Status::Corruption("data frame payload shorter than its meta");
  }
  *type = static_cast<uint8_t>(payload[0]);
  std::memcpy(send_ts_usec, payload.data() + 1, sizeof(*send_ts_usec));
  body->assign(payload, kDataFrameMetaBytes,
               payload.size() - kDataFrameMetaBytes);
  return Status::OK();
}

Status DecodeFrame(const std::string& buf, size_t* pos, Frame* frame) {
  const size_t avail = buf.size() - *pos;
  if (avail < kWireHeaderBytes) {
    return Status::IOError("frame header truncated");
  }
  const char* p = buf.data() + *pos;
  if (std::memcmp(p, kWireMagic, sizeof(kWireMagic)) != 0) {
    return Status::Corruption("bad frame magic");
  }
  const uint8_t kind = static_cast<uint8_t>(p[4]);
  if (kind > static_cast<uint8_t>(FrameKind::kStats)) {
    return Status::Corruption("unknown frame kind " + std::to_string(kind));
  }
  uint32_t src = 0;
  uint32_t len = 0;
  std::memcpy(&src, p + 5, sizeof(src));
  std::memcpy(&len, p + 9, sizeof(len));
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame payload length " + std::to_string(len) +
                              " exceeds cap");
  }
  if (avail < kWireHeaderBytes + len + kWireTrailerBytes) {
    return Status::IOError("frame body truncated");
  }
  frame->kind = static_cast<FrameKind>(kind);
  frame->src = src;
  frame->payload.assign(p + kWireHeaderBytes, len);
  uint64_t sum = 0;
  std::memcpy(&sum, p + kWireHeaderBytes + len, sizeof(sum));
  if (sum != Fingerprint(frame->payload)) {
    return Status::Corruption("frame checksum mismatch");
  }
  *pos += kWireHeaderBytes + len + kWireTrailerBytes;
  return Status::OK();
}

Status WriteFrame(int fd, const Frame& frame) {
  // Enforce the cap at the sender, where the error can name the real
  // cause -- the receiver would only see an unexplained oversized frame
  // from an apparently-dead peer.
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte wire cap");
  }
  return WriteFrameBytes(fd, EncodeFrame(frame));
}

Status WriteFrameBytes(int fd, const std::string& bytes) {
  size_t off = 0;
  bool use_send = true;  // MSG_NOSIGNAL: a closed peer must surface as
                         // EPIPE, never as a process-killing SIGPIPE
  while (off < bytes.size()) {
    ssize_t n;
    if (use_send) {
      n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        use_send = false;  // pipe/file fd (tests): plain write
        continue;
      }
    } else {
      n = ::write(fd, bytes.data() + off, bytes.size() - off);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame write failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFrameSlices(int fd, const std::vector<WireSlice>& slices,
                        uint64_t* syscalls) {
  // Mutable iovec window over the caller's slices; partial writes advance
  // base/len in place instead of re-copying any bytes.
  std::vector<struct iovec> iov;
  iov.reserve(slices.size());
  for (const WireSlice& s : slices) {
    if (s.len == 0) continue;
    iov.push_back({const_cast<char*>(s.data), s.len});
  }
  // Stay well under IOV_MAX (1024 on Linux) per syscall; one coalesced
  // flush is normally far smaller than this.
  constexpr size_t kMaxIovPerCall = 512;
  size_t i = 0;
  bool use_sendmsg = true;  // MSG_NOSIGNAL, same rationale as above
  while (i < iov.size()) {
    const size_t count = std::min(kMaxIovPerCall, iov.size() - i);
    ssize_t n;
    if (use_sendmsg) {
      struct msghdr msg = {};
      msg.msg_iov = iov.data() + i;
      msg.msg_iovlen = count;
      n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        use_sendmsg = false;  // pipe/file fd (tests): plain writev
        continue;
      }
    } else {
      n = ::writev(fd, iov.data() + i, static_cast<int>(count));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame writev failed: ") +
                             std::strerror(errno));
    }
    if (syscalls != nullptr) ++*syscalls;
    size_t written = static_cast<size_t>(n);
    while (i < iov.size() && written >= iov[i].iov_len) {
      written -= iov[i].iov_len;
      ++i;
    }
    if (written > 0) {
      iov[i].iov_base = static_cast<char*>(iov[i].iov_base) + written;
      iov[i].iov_len -= written;
    }
  }
  return Status::OK();
}

namespace {

/// Reads exactly `n` bytes. An EOF before the first byte returns
/// Aborted("connection closed") when `clean_eof_ok` (a frame boundary is
/// a legitimate place for the peer to close); any other EOF is
/// Corruption -- the peer died mid-frame.
Status ReadExactly(int fd, char* out, size_t n, bool clean_eof_ok) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, out + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame read failed: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      if (off == 0 && clean_eof_ok) {
        return Status::Aborted("connection closed");
      }
      return Status::Corruption("EOF inside a frame");
    }
    off += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, Frame* frame) {
  // Only the framing itself (magic + length, needed to know how many
  // bytes to pull off the socket) is interpreted here; everything else
  // is validated by the one DecodeFrame implementation the byte-pinning
  // tests exercise.
  std::string buf(kWireHeaderBytes, '\0');
  QCM_RETURN_IF_ERROR(
      ReadExactly(fd, buf.data(), kWireHeaderBytes, /*clean_eof_ok=*/true));
  if (std::memcmp(buf.data(), kWireMagic, sizeof(kWireMagic)) != 0) {
    return Status::Corruption("bad frame magic");
  }
  uint32_t len = 0;
  std::memcpy(&len, buf.data() + 9, sizeof(len));
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame payload length " + std::to_string(len) +
                              " exceeds cap");
  }
  buf.resize(kWireHeaderBytes + len + kWireTrailerBytes);
  QCM_RETURN_IF_ERROR(ReadExactly(fd, buf.data() + kWireHeaderBytes,
                                  len + kWireTrailerBytes,
                                  /*clean_eof_ok=*/false));
  size_t pos = 0;
  return DecodeFrame(buf, &pos, frame);
}

// ---------------------------------------------------------------------------
// Typed payloads.
// ---------------------------------------------------------------------------

std::string EncodeRankStatus(const WireRankStatus& status) {
  Encoder enc;
  enc.PutI64(status.pending);
  enc.PutU8(status.spawn_done);
  enc.PutU64Vector(status.sent_to);
  enc.PutU64Vector(status.processed_from);
  enc.PutU64(status.pending_big);
  enc.PutU64(status.delivery_latency_usec);
  return enc.Release();
}

Status DecodeRankStatus(const std::string& payload, WireRankStatus* status) {
  Decoder dec(payload);
  QCM_RETURN_IF_ERROR(dec.GetI64(&status->pending));
  QCM_RETURN_IF_ERROR(dec.GetU8(&status->spawn_done));
  QCM_RETURN_IF_ERROR(dec.GetU64Vector(&status->sent_to));
  QCM_RETURN_IF_ERROR(dec.GetU64Vector(&status->processed_from));
  QCM_RETURN_IF_ERROR(dec.GetU64(&status->pending_big));
  QCM_RETURN_IF_ERROR(dec.GetU64(&status->delivery_latency_usec));
  if (!dec.Done()) return Status::Corruption("trailing bytes in status");
  return Status::OK();
}

std::string EncodeHello(uint64_t pid) {
  Encoder enc;
  enc.PutU32(kWireProtocolVersion);
  enc.PutU64(pid);
  return enc.Release();
}

Status DecodeHello(const std::string& payload, uint32_t* version,
                   uint64_t* pid) {
  Decoder dec(payload);
  QCM_RETURN_IF_ERROR(dec.GetU32(version));
  QCM_RETURN_IF_ERROR(dec.GetU64(pid));
  if (!dec.Done()) return Status::Corruption("trailing bytes in hello");
  return Status::OK();
}

std::string EncodeAssign(uint32_t rank, uint32_t world_size,
                         const std::string& config_blob, uint32_t epoch) {
  Encoder enc;
  enc.PutU32(rank);
  enc.PutU32(world_size);
  enc.PutString(config_blob);
  enc.PutU32(epoch);
  return enc.Release();
}

Status DecodeAssign(const std::string& payload, uint32_t* rank,
                    uint32_t* world_size, std::string* config_blob,
                    uint32_t* epoch) {
  Decoder dec(payload);
  QCM_RETURN_IF_ERROR(dec.GetU32(rank));
  QCM_RETURN_IF_ERROR(dec.GetU32(world_size));
  QCM_RETURN_IF_ERROR(dec.GetString(config_blob));
  QCM_RETURN_IF_ERROR(dec.GetU32(epoch));
  if (!dec.Done()) return Status::Corruption("trailing bytes in assign");
  return Status::OK();
}

std::string EncodeStealCmd(uint32_t receiver, uint64_t want) {
  Encoder enc;
  enc.PutU32(receiver);
  enc.PutU64(want);
  return enc.Release();
}

Status DecodeStealCmd(const std::string& payload, uint32_t* receiver,
                      uint64_t* want) {
  Decoder dec(payload);
  QCM_RETURN_IF_ERROR(dec.GetU32(receiver));
  QCM_RETURN_IF_ERROR(dec.GetU64(want));
  if (!dec.Done()) return Status::Corruption("trailing bytes in steal-cmd");
  return Status::OK();
}

std::string EncodePeerHello(uint32_t epoch) {
  Encoder enc;
  enc.PutU32(epoch);
  return enc.Release();
}

Status DecodePeerHello(const std::string& payload, uint32_t* epoch) {
  // A v3 peer hello had an empty payload; that worker predates recovery
  // and can only be epoch 0, but mixed versions are rejected at kHello
  // anyway -- so an empty payload here is corruption, not compatibility.
  Decoder dec(payload);
  QCM_RETURN_IF_ERROR(dec.GetU32(epoch));
  if (!dec.Done()) return Status::Corruption("trailing bytes in peer-hello");
  return Status::OK();
}

std::string EncodeHeartbeat(uint64_t seq) {
  Encoder enc;
  enc.PutU64(seq);
  return enc.Release();
}

Status DecodeHeartbeat(const std::string& payload, uint64_t* seq) {
  Decoder dec(payload);
  QCM_RETURN_IF_ERROR(dec.GetU64(seq));
  if (!dec.Done()) return Status::Corruption("trailing bytes in heartbeat");
  return Status::OK();
}

std::string EncodePeerEvent(uint32_t rank, uint32_t epoch) {
  Encoder enc;
  enc.PutU32(rank);
  enc.PutU32(epoch);
  return enc.Release();
}

Status DecodePeerEvent(const std::string& payload, uint32_t* rank,
                       uint32_t* epoch) {
  Decoder dec(payload);
  QCM_RETURN_IF_ERROR(dec.GetU32(rank));
  QCM_RETURN_IF_ERROR(dec.GetU32(epoch));
  if (!dec.Done()) return Status::Corruption("trailing bytes in peer event");
  return Status::OK();
}

std::string EncodeStatsSample(const WireStatsSample& sample) {
  Encoder enc;
  enc.PutU32(sample.epoch);
  enc.PutU64(sample.ts_usec);
  enc.PutU64(sample.queue_depth);
  enc.PutU64(sample.inflight_bytes);
  enc.PutU64(sample.cache_hits);
  enc.PutU64(sample.cache_misses);
  enc.PutU32(sample.busy_compers);
  enc.PutU64(sample.tasks_completed);
  enc.PutI64(sample.pending);
  return enc.Release();
}

Status DecodeStatsSample(const std::string& payload,
                         WireStatsSample* sample) {
  Decoder dec(payload);
  QCM_RETURN_IF_ERROR(dec.GetU32(&sample->epoch));
  QCM_RETURN_IF_ERROR(dec.GetU64(&sample->ts_usec));
  QCM_RETURN_IF_ERROR(dec.GetU64(&sample->queue_depth));
  QCM_RETURN_IF_ERROR(dec.GetU64(&sample->inflight_bytes));
  QCM_RETURN_IF_ERROR(dec.GetU64(&sample->cache_hits));
  QCM_RETURN_IF_ERROR(dec.GetU64(&sample->cache_misses));
  QCM_RETURN_IF_ERROR(dec.GetU32(&sample->busy_compers));
  QCM_RETURN_IF_ERROR(dec.GetU64(&sample->tasks_completed));
  QCM_RETURN_IF_ERROR(dec.GetI64(&sample->pending));
  if (!dec.Done()) return Status::Corruption("trailing bytes in stats");
  return Status::OK();
}

}  // namespace qcm
