// Algorithm 1 of the paper: the iterative bound-based pruning subprocedure.
//
// Given <S, ext(S)>, repeatedly (a) recomputes degrees, (b) recomputes
// U_S / L_S (whose failure triggers Type-II pruning), (c) applies
// critical-vertex expansion (P6), (d) applies the Type-II rules
// (Theorems 4, 6, 8), and (e) applies the Type-I rules (Theorems 3, 5, 7)
// to shrink ext(S) -- iterating because each shrink tightens the bounds.

#ifndef QCM_QUICK_ITERATIVE_BOUNDING_H_
#define QCM_QUICK_ITERATIVE_BOUNDING_H_

#include <vector>

#include "quick/mining_context.h"

namespace qcm {

/// Outcome of IterativeBounding.
struct BoundingResult {
  /// True iff extending S (beyond S itself) was pruned -- the caller must
  /// not recurse. Mirrors the boolean return of Algorithm 1.
  bool pruned = false;
  /// True iff some candidate quasi-clique (S, possibly after critical-vertex
  /// expansion) was emitted during bounding. Lets the caller maintain the
  /// "found a quasi-clique extending S" flag precisely.
  bool emitted = false;
};

/// Runs Algorithm 1 on <s, ext>, both passed by reference:
///   * ext may shrink (Type-I pruning), preserving relative order;
///   * s may grow (critical-vertex expansion, Theorem 9).
/// REQUIRES: s non-empty, s/ext disjoint, members are local ids of ctx.g().
/// Guarantees pruned == false only if ext is non-empty on return.
BoundingResult IterativeBounding(MiningContext& ctx, std::vector<LocalId>& s,
                                 std::vector<LocalId>& ext);

}  // namespace qcm

#endif  // QCM_QUICK_ITERATIVE_BOUNDING_H_
