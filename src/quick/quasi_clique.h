// Problem definitions (paper §3.1): gamma-quasi-cliques, mining options,
// result sinks, and validity checking.

#ifndef QCM_QUICK_QUASI_CLIQUE_H_
#define QCM_QUICK_QUASI_CLIQUE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/graph.h"
#include "quick/gamma.h"
#include "util/status.h"

namespace qcm {

/// A quasi-clique result: sorted ascending global vertex ids.
using VertexSet = std::vector<VertexId>;

/// Mining parameters and pruning-rule toggles.
///
/// All toggles default to on (the paper's full algorithm). Turning a rule
/// off never changes the reported maximal result set -- rules only prune
/// work -- which is what the pruning-ablation benchmark exploits.
struct MiningOptions {
  /// Minimum degree ratio gamma (Definition 1). Must be in [0.5, 1]: the
  /// diameter-2 pruning (P1) that both the serial ego-network construction
  /// and the parallel two-hop task spawning rely on requires gamma >= 0.5
  /// (Theorem 1), matching the paper's setting.
  double gamma = 0.9;

  /// Minimum result size tau_size (Definition 3). Must be >= 2.
  uint32_t min_size = 10;

  /// (P7) Cover-vertex pruning in the recursive miner.
  bool use_cover_vertex = true;
  /// (P6) Critical-vertex expansion inside iterative bounding.
  bool use_critical_vertex = true;
  /// (P4) Upper-bound rules (Theorems 5, 6 and the U_S computation).
  bool use_upper_bound = true;
  /// (P5) Lower-bound rules (Theorems 7, 8 and the L_S computation).
  bool use_lower_bound = true;
  /// (P3) Degree-based rules (Theorems 3, 4).
  bool use_degree_pruning = true;
  /// Lookahead: emit S + ext(S) wholesale when it already qualifies
  /// (Alg. 2 lines 8-10).
  bool use_lookahead = true;

  /// Hybrid dense/sparse kernel selection: a task whose subgraph has
  /// n <= dense_threshold vertices additionally materializes per-vertex
  /// adjacency bitmap rows (ceil(n/64) uint64 words each) and runs the
  /// word-parallel pruning kernels (degree recomputation, two-hop
  /// filtering, cover-vertex intersection, validity checking) over
  /// popcounts instead of CSR scans. Larger tasks fall back to the scalar
  /// CSR twins. Both paths emit bit-identical result sets and pruning
  /// counters, so the knob is pure performance: 0 disables the dense path
  /// entirely. Must be >= 0.
  int64_t dense_threshold = 4096;

  /// Reproduces the original Quick algorithm's two missed result checks
  /// (the paper's remarks in §4 T5/T6): skips the G(S) examination before
  /// critical-vertex expansion and the G(S') check when ext(S') shrinks to
  /// empty after diameter filtering. With this flag the miner can MISS
  /// maximal quasi-cliques, exactly like Quick; used by regression tests
  /// and the ablation benchmark.
  bool quick_compat = false;

  /// Checks parameter domains; returns InvalidArgument on violation.
  Status Validate() const;

  /// k = ceil(gamma * (min_size - 1)): the degree every member of a valid
  /// result must have (Theorem 2); drives all k-core pruning.
  uint32_t MinDegreeK() const;
};

/// Receives emitted candidate quasi-cliques. Emission order is unspecified;
/// candidates may include non-maximal sets (the paper's postprocessing
/// removes them, see maximality_filter.h).
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// `set` is sorted ascending.
  virtual void Emit(VertexSet set) = 0;
};

/// Collects results into a vector (not thread-safe; use one per thread).
class VectorSink : public ResultSink {
 public:
  void Emit(VertexSet set) override { results_.push_back(std::move(set)); }
  std::vector<VertexSet>& results() { return results_; }
  const std::vector<VertexSet>& results() const { return results_; }

 private:
  std::vector<VertexSet> results_;
};

/// Counts results without storing them.
class CountingSink : public ResultSink {
 public:
  void Emit(VertexSet set) override {
    ++count_;
    (void)set;
  }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Mutex-guarded collector for ad-hoc parallel use.
class SynchronizedSink : public ResultSink {
 public:
  void Emit(VertexSet set) override {
    std::lock_guard<std::mutex> lock(mu_);
    results_.push_back(std::move(set));
  }
  std::vector<VertexSet> TakeResults() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(results_);
  }

 private:
  std::mutex mu_;
  std::vector<VertexSet> results_;
};

/// Checks Definition 1 on the induced subgraph G(S) of a global graph:
/// every member's induced degree is >= ceil(gamma * (|S|-1)) and G(S) is
/// connected. (For gamma >= 0.5 the degree condition implies connectivity;
/// the explicit check makes this usable as a test oracle for any gamma.)
bool IsQuasiCliqueGlobal(const Graph& g, const VertexSet& s,
                         const Gamma& gamma);

}  // namespace qcm

#endif  // QCM_QUICK_QUASI_CLIQUE_H_
