#include "quick/bounds.h"

#include <algorithm>

namespace qcm {

namespace {

/// Shared input of Eq. (4) and Eq. (8): sum of dS over S, and prefix sums
/// of dS(u_i) with ext sorted by dS non-increasing (Figures 6 and 7).
struct PrefixInput {
  int64_t sum_ds_s = 0;
  std::vector<int64_t> prefix;  // prefix[t] = sum of t largest dS(u)
};

PrefixInput BuildPrefixInput(MiningContext& ctx,
                             const std::vector<LocalId>& s,
                             const std::vector<LocalId>& ext) {
  PrefixInput in;
  for (LocalId v : s) in.sum_ds_s += ctx.ds()[v];
  std::vector<uint32_t> ds_ext;
  ds_ext.reserve(ext.size());
  for (LocalId u : ext) ds_ext.push_back(ctx.ds()[u]);
  std::sort(ds_ext.begin(), ds_ext.end(), std::greater<>());
  in.prefix.resize(ext.size() + 1);
  in.prefix[0] = 0;
  for (size_t i = 0; i < ds_ext.size(); ++i) {
    in.prefix[i + 1] = in.prefix[i] + ds_ext[i];
  }
  return in;
}

}  // namespace

Bounds ComputeBounds(MiningContext& ctx, const std::vector<LocalId>& s,
                     const std::vector<LocalId>& ext) {
  Bounds out;
  const int64_t s_size = static_cast<int64_t>(s.size());
  const int64_t n_ext = static_cast<int64_t>(ext.size());
  const MiningOptions& opts = ctx.opts();

  const bool need_prefix = opts.use_upper_bound || opts.use_lower_bound;
  PrefixInput in;
  if (need_prefix) in = BuildPrefixInput(ctx, s, ext);

  // Lemma 2 feasibility of adding exactly t vertices:
  //   sum_{v in S} dS(v) + sum_{i<=t} dS(u_i) >= |S| * ceil(gamma(|S|+t-1))
  auto feasible = [&](int64_t t) {
    return in.sum_ds_s + in.prefix[static_cast<size_t>(t)] >=
           s_size * ctx.CeilGamma(s_size + t - 1);
  };

  // ---- Upper bound U_S (Eqs. 1-4). ----
  if (opts.use_upper_bound) {
    int64_t dmin = INT64_MAX;  // Eq. (1): min over S of dS + dext
    for (LocalId v : s) {
      dmin = std::min(dmin,
                      static_cast<int64_t>(ctx.ds()[v]) + ctx.dext()[v]);
    }
    // Eq. (3): U_S^min = floor(dmin / gamma) + 1 - |S|.
    const int64_t u_min = ctx.gamma().FloorDiv(dmin) + 1 - s_size;
    // Eq. (4): largest feasible t in [1, min(U_S^min, |ext|)].
    int64_t u = -1;
    for (int64_t t = std::min(u_min, n_ext); t >= 1; --t) {
      if (feasible(t)) {
        u = t;
        break;
      }
    }
    if (u < 0) {
      // No extension count is feasible: extensions pruned, but G(S) itself
      // is still a candidate (paper: "we still need to examine G(S)").
      ++ctx.stats.bound_fail_prunes;
      out.outcome = BoundOutcome::kPruneExtCheckS;
      return out;
    }
    out.upper = u;
  } else {
    out.upper = n_ext;
  }

  // ---- Lower bound L_S (Eqs. 6-8). ----
  if (opts.use_lower_bound) {
    int64_t dmin_s = INT64_MAX;  // Eq. (6): min over S of dS
    for (LocalId v : s) {
      dmin_s = std::min(dmin_s, static_cast<int64_t>(ctx.ds()[v]));
    }
    // Eq. (7): smallest t in [0, |ext|] with dmin_s + t >= ceil(gamma(|S|+t-1)).
    int64_t l_min = -1;
    for (int64_t t = 0; t <= n_ext; ++t) {
      if (dmin_s + t >= ctx.CeilGamma(s_size + t - 1)) {
        l_min = t;
        break;
      }
    }
    if (l_min < 0) {
      // Even adding all of ext cannot repair the worst member: S and all
      // extensions are pruned (t = 0 included, so S itself is invalid).
      ++ctx.stats.bound_fail_prunes;
      out.outcome = BoundOutcome::kPruneAll;
      return out;
    }
    // Eq. (8): smallest feasible t in [L_S^min, |ext|].
    int64_t l = -1;
    for (int64_t t = l_min; t <= n_ext; ++t) {
      if (feasible(t)) {
        l = t;
        break;
      }
    }
    if (l < 0) {
      ++ctx.stats.bound_fail_prunes;
      out.outcome = BoundOutcome::kPruneAll;
      return out;
    }
    out.lower = l;
  } else {
    out.lower = 0;
  }

  // U_S < L_S: needs at least L_S additions but can take at most U_S.
  // L_S >= 1 then (U_S >= 1 when computed... see below), so S itself is
  // invalid too and everything is pruned.
  if (opts.use_upper_bound && opts.use_lower_bound &&
      out.upper < out.lower) {
    ++ctx.stats.bound_fail_prunes;
    out.outcome = BoundOutcome::kPruneAll;
    return out;
  }
  return out;
}

}  // namespace qcm
