#include "quick/cover_vertex.h"

#include <algorithm>

namespace qcm {

std::vector<LocalId> FindBestCoverSet(MiningContext& ctx,
                                      const std::vector<LocalId>& s,
                                      const std::vector<LocalId>& ext) {
  if (!ctx.opts().use_cover_vertex || ext.empty() || s.empty()) return {};
  const LocalGraph& g = ctx.g();
  const int64_t thresh = ctx.CeilGamma(static_cast<int64_t>(s.size()));

  // Precompute dS for all members of S and ext while the S-membership mark
  // is pristine (mark array 1 is reused later for neighbor intersections).
  const uint32_t s_tag = ctx.NewMark();
  for (LocalId v : s) ctx.Mark(v, s_tag);
  auto ds_of = [&](LocalId x) {
    int64_t d = 0;
    for (LocalId w : g.Neighbors(x)) {
      if (ctx.Marked(w, s_tag)) ++d;
    }
    return d;
  };
  std::vector<int64_t> ds_s(s.size());
  for (size_t i = 0; i < s.size(); ++i) ds_s[i] = ds_of(s[i]);
  std::vector<int64_t> ds_ext(ext.size());
  for (size_t i = 0; i < ext.size(); ++i) ds_ext[i] = ds_of(ext[i]);

  std::vector<LocalId> best;
  std::vector<LocalId> cover;
  std::vector<LocalId> filtered;
  for (size_t ui = 0; ui < ext.size(); ++ui) {
    const LocalId u = ext[ui];
    if (ds_ext[ui] < thresh) continue;

    // Mark Gamma(u).
    const uint32_t u_tag = ctx.NewMark2();
    for (LocalId w : g.Neighbors(u)) ctx.Mark2(w, u_tag);

    // All v in S not adjacent to u must satisfy dS(v) >= thresh.
    bool ok = true;
    for (size_t i = 0; i < s.size(); ++i) {
      if (!ctx.Marked2(s[i], u_tag) && ds_s[i] < thresh) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    // Candidate cover starts as Gamma_ext(u) = ext ∩ Gamma(u). If it is
    // already no bigger than the best cover, u cannot win (the paper's
    // early-skip in Alg. 2 line 2 commentary).
    cover.clear();
    for (LocalId w : ext) {
      if (w != u && ctx.Marked2(w, u_tag)) cover.push_back(w);
    }
    if (cover.size() <= best.size()) continue;

    // Intersect with Gamma(v) of every non-neighbor v in S (Eq. 9).
    for (LocalId v : s) {
      if (ctx.Marked2(v, u_tag)) continue;  // v adjacent to u
      const uint32_t v_tag = ctx.NewMark();
      for (LocalId w : g.Neighbors(v)) ctx.Mark(w, v_tag);
      filtered.clear();
      for (LocalId w : cover) {
        if (ctx.Marked(w, v_tag)) filtered.push_back(w);
      }
      cover.swap(filtered);
      if (cover.size() <= best.size()) break;
    }
    if (cover.size() > best.size()) best = cover;
  }
  return best;
}

}  // namespace qcm
