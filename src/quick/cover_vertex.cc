#include "quick/cover_vertex.h"

#include <algorithm>
#include <bit>

namespace qcm {

namespace {

/// Word-parallel twin of the scalar search below: same candidate order,
/// same early skips/breaks (popcounted sizes equal the scalar list sizes at
/// every decision point), so it selects the same winning cover SET -- only
/// the element order of the result differs, which callers never observe.
std::vector<LocalId> FindBestCoverSetDense(MiningContext& ctx,
                                           const std::vector<LocalId>& s,
                                           const std::vector<LocalId>& ext,
                                           int64_t thresh) {
  const uint32_t words = ctx.words();
  uint64_t* s_mask = ctx.WordBuf(1);
  uint64_t* ext_mask = ctx.WordBuf(2);
  uint64_t* cover = ctx.WordBuf(3);
  std::fill(s_mask, s_mask + words, 0);
  std::fill(ext_mask, ext_mask + words, 0);
  for (LocalId v : s) s_mask[v >> 6] |= uint64_t{1} << (v & 63);
  for (LocalId w : ext) ext_mask[w >> 6] |= uint64_t{1} << (w & 63);
  uint64_t touched = 2 * static_cast<uint64_t>(words);

  auto ds_of = [&](LocalId x) {
    const uint64_t* row = ctx.Row(x);
    int64_t d = 0;
    for (uint32_t w = 0; w < words; ++w) {
      d += std::popcount(row[w] & s_mask[w]);
    }
    touched += words;
    return d;
  };
  std::vector<int64_t> ds_s(s.size());
  for (size_t i = 0; i < s.size(); ++i) ds_s[i] = ds_of(s[i]);
  std::vector<int64_t> ds_ext(ext.size());
  for (size_t i = 0; i < ext.size(); ++i) ds_ext[i] = ds_of(ext[i]);

  std::vector<LocalId> best;
  for (size_t ui = 0; ui < ext.size(); ++ui) {
    const LocalId u = ext[ui];
    if (ds_ext[ui] < thresh) continue;
    const uint64_t* row_u = ctx.Row(u);

    // All v in S not adjacent to u must satisfy dS(v) >= thresh.
    bool ok = true;
    for (size_t i = 0; i < s.size(); ++i) {
      const LocalId v = s[i];
      if (!((row_u[v >> 6] >> (v & 63)) & 1) && ds_s[i] < thresh) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    // Candidate cover = ext ∩ Gamma(u); no self-loops, so bit u is absent.
    int64_t csize = 0;
    for (uint32_t w = 0; w < words; ++w) {
      cover[w] = row_u[w] & ext_mask[w];
      csize += std::popcount(cover[w]);
    }
    touched += words;
    if (csize <= static_cast<int64_t>(best.size())) continue;

    // Intersect with Gamma(v) of every non-neighbor v in S (Eq. 9).
    for (LocalId v : s) {
      if ((row_u[v >> 6] >> (v & 63)) & 1) continue;  // v adjacent to u
      const uint64_t* row_v = ctx.Row(v);
      csize = 0;
      for (uint32_t w = 0; w < words; ++w) {
        cover[w] &= row_v[w];
        csize += std::popcount(cover[w]);
      }
      touched += words;
      if (csize <= static_cast<int64_t>(best.size())) break;
    }
    if (csize > static_cast<int64_t>(best.size())) {
      best.clear();
      best.reserve(static_cast<size_t>(csize));
      for (uint32_t w = 0; w < words; ++w) {
        uint64_t bits = cover[w];
        while (bits) {
          const int b = std::countr_zero(bits);
          best.push_back((w << 6) + static_cast<LocalId>(b));
          bits &= bits - 1;
        }
      }
    }
  }
  ctx.stats.bitset_words_touched += touched;
  return best;
}

}  // namespace

std::vector<LocalId> FindBestCoverSet(MiningContext& ctx,
                                      const std::vector<LocalId>& s,
                                      const std::vector<LocalId>& ext) {
  if (!ctx.opts().use_cover_vertex || ext.empty() || s.empty()) return {};
  const LocalGraph& g = ctx.g();
  const int64_t thresh = ctx.CeilGamma(static_cast<int64_t>(s.size()));
  if (ctx.dense()) return FindBestCoverSetDense(ctx, s, ext, thresh);

  // Precompute dS for all members of S and ext while the S-membership mark
  // is pristine (mark array 1 is reused later for neighbor intersections).
  const uint32_t s_tag = ctx.NewMark();
  for (LocalId v : s) ctx.Mark(v, s_tag);
  auto ds_of = [&](LocalId x) {
    int64_t d = 0;
    for (LocalId w : g.Neighbors(x)) {
      if (ctx.Marked(w, s_tag)) ++d;
    }
    return d;
  };
  std::vector<int64_t> ds_s(s.size());
  for (size_t i = 0; i < s.size(); ++i) ds_s[i] = ds_of(s[i]);
  std::vector<int64_t> ds_ext(ext.size());
  for (size_t i = 0; i < ext.size(); ++i) ds_ext[i] = ds_of(ext[i]);

  std::vector<LocalId> best;
  std::vector<LocalId> cover;
  std::vector<LocalId> filtered;
  for (size_t ui = 0; ui < ext.size(); ++ui) {
    const LocalId u = ext[ui];
    if (ds_ext[ui] < thresh) continue;

    // Mark Gamma(u).
    const uint32_t u_tag = ctx.NewMark2();
    for (LocalId w : g.Neighbors(u)) ctx.Mark2(w, u_tag);

    // All v in S not adjacent to u must satisfy dS(v) >= thresh.
    bool ok = true;
    for (size_t i = 0; i < s.size(); ++i) {
      if (!ctx.Marked2(s[i], u_tag) && ds_s[i] < thresh) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    // Candidate cover starts as Gamma_ext(u) = ext ∩ Gamma(u). If it is
    // already no bigger than the best cover, u cannot win (the paper's
    // early-skip in Alg. 2 line 2 commentary).
    cover.clear();
    for (LocalId w : ext) {
      if (w != u && ctx.Marked2(w, u_tag)) cover.push_back(w);
    }
    if (cover.size() <= best.size()) continue;

    // Intersect with Gamma(v) of every non-neighbor v in S (Eq. 9).
    for (LocalId v : s) {
      if (ctx.Marked2(v, u_tag)) continue;  // v adjacent to u
      const uint32_t v_tag = ctx.NewMark();
      for (LocalId w : g.Neighbors(v)) ctx.Mark(w, v_tag);
      filtered.clear();
      for (LocalId w : cover) {
        if (ctx.Marked(w, v_tag)) filtered.push_back(w);
      }
      cover.swap(filtered);
      if (cover.size() <= best.size()) break;
    }
    if (cover.size() > best.size()) best = cover;
  }
  return best;
}

}  // namespace qcm
