#include "quick/mining_context.h"

#include <algorithm>

#include "util/logging.h"

namespace qcm {

void MiningStats::Add(const MiningStats& other) {
  nodes_explored += other.nodes_explored;
  bounding_iterations += other.bounding_iterations;
  emitted += other.emitted;
  type1_degree_pruned += other.type1_degree_pruned;
  type1_upper_pruned += other.type1_upper_pruned;
  type1_lower_pruned += other.type1_lower_pruned;
  type2_prunes += other.type2_prunes;
  bound_fail_prunes += other.bound_fail_prunes;
  critical_moves += other.critical_moves;
  cover_skipped += other.cover_skipped;
  lookahead_hits += other.lookahead_hits;
  diameter_filtered += other.diameter_filtered;
  size_prunes += other.size_prunes;
  subtasks_spawned += other.subtasks_spawned;
}

MiningContext::MiningContext(const LocalGraph* graph,
                             const MiningOptions& options, ResultSink* sink)
    : graph_(graph),
      options_(options),
      gamma_(*Gamma::Create(options.gamma)),
      sink_(sink),
      state_(graph->n(), static_cast<uint8_t>(VState::kOut)),
      ds_(graph->n(), 0),
      dext_(graph->n(), 0),
      mark1_(graph->n(), 0),
      mark2_(graph->n(), 0) {
  QCM_CHECK(options.Validate().ok()) << options.Validate().ToString();
}

void MiningContext::ArmTimeout(double tau_time_seconds, SubtaskSink sink) {
  deadline_micros_ =
      NowMicros() + static_cast<int64_t>(tau_time_seconds * 1e6);
  subtask_sink_ = std::move(sink);
}

bool MiningContext::IsQuasiCliqueUnion(std::span<const LocalId> a,
                                       std::span<const LocalId> b) {
  const size_t size = a.size() + b.size();
  if (size == 0) return false;
  if (size == 1) return true;
  const uint32_t tag = NewMark2();
  for (LocalId v : a) Mark2(v, tag);
  for (LocalId v : b) Mark2(v, tag);
  const int64_t need = CeilGamma(static_cast<int64_t>(size) - 1);
  auto degree_ok = [&](LocalId v) {
    int64_t deg = 0;
    for (LocalId u : graph_->Neighbors(v)) {
      if (Marked2(u, tag)) ++deg;
    }
    return deg >= need;
  };
  for (LocalId v : a) {
    if (!degree_ok(v)) return false;
  }
  for (LocalId v : b) {
    if (!degree_ok(v)) return false;
  }
  // gamma >= 0.5 (enforced by MiningOptions::Validate) makes the minimum
  // induced degree >= (|S|-1)/2, which implies connectivity: two
  // non-adjacent members must share a neighbor inside S by pigeonhole.
  return true;
}

bool MiningContext::CheckAndEmit(std::span<const LocalId> s) {
  if (s.size() < options_.min_size) return false;
  if (!IsQuasiClique(s)) return false;
  EmitVerified(s);
  return true;
}

void MiningContext::EmitVerified(std::span<const LocalId> s) {
  VertexSet out;
  out.reserve(s.size());
  for (LocalId v : s) out.push_back(graph_->GlobalId(v));
  std::sort(out.begin(), out.end());
  ++stats.emitted;
  sink_->Emit(std::move(out));
}

void ComputeDegrees(MiningContext& ctx, const std::vector<LocalId>& s,
                    const std::vector<LocalId>& ext) {
  const LocalGraph& g = ctx.g();
  auto& state = ctx.state();
  auto& ds = ctx.ds();
  auto& dext = ctx.dext();
  auto count = [&](LocalId x) {
    uint32_t in_s = 0, in_ext = 0;
    for (LocalId w : g.Neighbors(x)) {
      VState st = static_cast<VState>(state[w]);
      if (st == VState::kInS) {
        ++in_s;
      } else if (st == VState::kInExt) {
        ++in_ext;
      }
    }
    ds[x] = in_s;
    dext[x] = in_ext;
  };
  for (LocalId v : s) count(v);
  for (LocalId u : ext) count(u);
}

}  // namespace qcm
