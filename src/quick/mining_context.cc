#include "quick/mining_context.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"
#include "util/trace.h"

namespace qcm {

void MiningStats::Add(const MiningStats& other) {
  nodes_explored += other.nodes_explored;
  bounding_iterations += other.bounding_iterations;
  emitted += other.emitted;
  type1_degree_pruned += other.type1_degree_pruned;
  type1_upper_pruned += other.type1_upper_pruned;
  type1_lower_pruned += other.type1_lower_pruned;
  type2_prunes += other.type2_prunes;
  bound_fail_prunes += other.bound_fail_prunes;
  critical_moves += other.critical_moves;
  cover_skipped += other.cover_skipped;
  lookahead_hits += other.lookahead_hits;
  diameter_filtered += other.diameter_filtered;
  size_prunes += other.size_prunes;
  subtasks_spawned += other.subtasks_spawned;
  dense_tasks += other.dense_tasks;
  sparse_tasks += other.sparse_tasks;
  bitset_words_touched += other.bitset_words_touched;
}

MiningContext::MiningContext(const LocalGraph* graph,
                             const MiningOptions& options, ResultSink* sink,
                             MiningScratch* scratch)
    : graph_(graph),
      options_(options),
      gamma_(*Gamma::Create(options.gamma)),
      sink_(sink),
      scratch_(scratch) {
  QCM_CHECK(options.Validate().ok()) << options.Validate().ToString();
  if (scratch_ == nullptr) {
    owned_scratch_ = std::make_unique<MiningScratch>();
    scratch_ = owned_scratch_.get();
  }
  const uint32_t n = graph->n();
  MiningScratch& sc = *scratch_;
  sc.state_.assign(n, static_cast<uint8_t>(VState::kOut));
  if (sc.ds_.size() < n) sc.ds_.resize(n, 0);
  if (sc.dext_.size() < n) sc.dext_.resize(n, 0);
  // Mark arrays keep their epochs across tasks: stale tags from earlier
  // (possibly larger) tasks are strictly smaller than any fresh tag.
  if (sc.mark1_.size() < n) sc.mark1_.resize(n, 0);
  if (sc.mark2_.size() < n) sc.mark2_.resize(n, 0);

  dense_ = options_.dense_threshold > 0 && n > 0 &&
           static_cast<int64_t>(n) <= options_.dense_threshold;
  if (dense_) {
    words_ = (n + 63) / 64;
    sc.in_s_mask_.assign(words_, 0);
    sc.in_ext_mask_.assign(words_, 0);
    const size_t buf_words = static_cast<size_t>(kNumWordBufs) * words_;
    if (sc.word_buf_.size() < buf_words) sc.word_buf_.resize(buf_words);
    if (graph->has_dense()) {
      rows_ = graph->DenseRow(0);
    } else {
      // Decoded spilled/stolen tasks arrive CSR-only; build rows into the
      // pooled arena so they still take the dense path.
      sc.rows_.assign(static_cast<size_t>(n) * words_, 0);
      for (LocalId v = 0; v < n; ++v) {
        uint64_t* row = sc.rows_.data() + static_cast<size_t>(v) * words_;
        for (LocalId w : graph->Neighbors(v)) {
          row[w >> 6] |= uint64_t{1} << (w & 63);
        }
      }
      rows_ = sc.rows_.data();
    }
    ++stats.dense_tasks;
    QCM_TRACE_INSTANT(trace::kKernel, "kernel_dense", n);
  } else {
    ++stats.sparse_tasks;
    QCM_TRACE_INSTANT(trace::kKernel, "kernel_sparse", n);
  }
}

void MiningContext::HandleMarkWrap(std::vector<uint32_t>* marks) {
  // Epoch wrapped to 0 (never expected in practice): clear every stale tag
  // and restart tags at 1 so "tag != entry" stays a valid freshness test.
  std::fill(marks->begin(), marks->end(), 0);
  if (marks == &scratch_->mark1_) {
    scratch_->epoch1_ = 1;
  } else {
    scratch_->epoch2_ = 1;
  }
}

void MiningContext::ArmTimeout(double tau_time_seconds, SubtaskSink sink) {
  deadline_micros_ =
      NowMicros() + static_cast<int64_t>(tau_time_seconds * 1e6);
  subtask_sink_ = std::move(sink);
}

bool MiningContext::IsQuasiCliqueUnion(std::span<const LocalId> a,
                                       std::span<const LocalId> b) {
  const size_t size = a.size() + b.size();
  if (size == 0) return false;
  if (size == 1) return true;
  const int64_t need = CeilGamma(static_cast<int64_t>(size) - 1);
  if (dense_) {
    // Word-parallel twin: membership mask of A ∪ B, then one masked
    // popcount per member. Same a-then-b early-exit order as the scalar
    // path, so counters and control flow stay identical.
    uint64_t* member = WordBuf(0);
    std::fill(member, member + words_, 0);
    for (LocalId v : a) member[v >> 6] |= uint64_t{1} << (v & 63);
    for (LocalId v : b) member[v >> 6] |= uint64_t{1} << (v & 63);
    uint64_t touched = words_;
    auto degree_ok = [&](LocalId v) {
      const uint64_t* row = Row(v);
      int64_t deg = 0;
      for (uint32_t w = 0; w < words_; ++w) {
        deg += std::popcount(row[w] & member[w]);
      }
      touched += words_;
      return deg >= need;
    };
    for (LocalId v : a) {
      if (!degree_ok(v)) {
        stats.bitset_words_touched += touched;
        return false;
      }
    }
    for (LocalId v : b) {
      if (!degree_ok(v)) {
        stats.bitset_words_touched += touched;
        return false;
      }
    }
    stats.bitset_words_touched += touched;
    return true;
  }
  const uint32_t tag = NewMark2();
  for (LocalId v : a) Mark2(v, tag);
  for (LocalId v : b) Mark2(v, tag);
  auto degree_ok = [&](LocalId v) {
    int64_t deg = 0;
    for (LocalId u : graph_->Neighbors(v)) {
      if (Marked2(u, tag)) ++deg;
    }
    return deg >= need;
  };
  for (LocalId v : a) {
    if (!degree_ok(v)) return false;
  }
  for (LocalId v : b) {
    if (!degree_ok(v)) return false;
  }
  // gamma >= 0.5 (enforced by MiningOptions::Validate) makes the minimum
  // induced degree >= (|S|-1)/2, which implies connectivity: two
  // non-adjacent members must share a neighbor inside S by pigeonhole.
  return true;
}

bool MiningContext::CheckAndEmit(std::span<const LocalId> s) {
  if (s.size() < options_.min_size) return false;
  if (!IsQuasiClique(s)) return false;
  EmitVerified(s);
  return true;
}

void MiningContext::EmitVerified(std::span<const LocalId> s) {
  VertexSet out;
  out.reserve(s.size());
  for (LocalId v : s) out.push_back(graph_->GlobalId(v));
  std::sort(out.begin(), out.end());
  ++stats.emitted;
  sink_->Emit(std::move(out));
}

void ComputeDegrees(MiningContext& ctx, const std::vector<LocalId>& s,
                    const std::vector<LocalId>& ext) {
  auto& ds = ctx.ds();
  auto& dext = ctx.dext();
  if (ctx.dense()) {
    // Word-parallel twin: the incremental membership bitsets SetVState()
    // maintains turn both degree counts into masked popcounts.
    const uint32_t words = ctx.words();
    const uint64_t* s_mask = ctx.in_s_mask();
    const uint64_t* e_mask = ctx.in_ext_mask();
    auto count = [&](LocalId x) {
      const uint64_t* row = ctx.Row(x);
      uint32_t in_s = 0, in_ext = 0;
      for (uint32_t w = 0; w < words; ++w) {
        in_s += static_cast<uint32_t>(std::popcount(row[w] & s_mask[w]));
        in_ext += static_cast<uint32_t>(std::popcount(row[w] & e_mask[w]));
      }
      ds[x] = in_s;
      dext[x] = in_ext;
    };
    for (LocalId v : s) count(v);
    for (LocalId u : ext) count(u);
    ctx.stats.bitset_words_touched +=
        static_cast<uint64_t>(words) * (s.size() + ext.size());
    return;
  }
  const LocalGraph& g = ctx.g();
  auto& state = ctx.state();
  auto count = [&](LocalId x) {
    uint32_t in_s = 0, in_ext = 0;
    for (LocalId w : g.Neighbors(x)) {
      VState st = static_cast<VState>(state[w]);
      if (st == VState::kInS) {
        ++in_s;
      } else if (st == VState::kInExt) {
        ++in_ext;
      }
    }
    ds[x] = in_s;
    dext[x] = in_ext;
  };
  for (LocalId v : s) count(v);
  for (LocalId u : ext) count(u);
}

}  // namespace qcm
