// Algorithm 2 (recursive_mine) and its time-delayed variant (Algorithm 10).
//
// The two algorithms share all structure; Algorithm 10 differs only in the
// branch taken when the task's mining deadline has passed: instead of
// recursing into <S', ext(S')>, the pair is wrapped into a new task through
// the context's SubtaskSink, and G(S') is examined immediately because the
// current task loses track of the subtask's findings (Alg. 10 lines 18-24).
// Arming MiningContext::ArmTimeout therefore *is* the time-delayed strategy;
// without it this function is exactly Algorithm 2.

#ifndef QCM_QUICK_RECURSIVE_MINE_H_
#define QCM_QUICK_RECURSIVE_MINE_H_

#include <vector>

#include "quick/mining_context.h"

namespace qcm {

/// Mines all valid quasi-cliques Q ⊇ S with Q ⊆ S ∪ ext (set-enumeration
/// subtree T_S). Returns true iff some valid Q ⊋ S was found and emitted.
/// Candidates are emitted through ctx's sink; non-maximal candidates are
/// possible and removed by postprocessing (maximality_filter.h).
///
/// REQUIRES: s non-empty and disjoint from ext; all ids local to ctx.g().
bool RecursiveMine(MiningContext& ctx, std::vector<LocalId> s,
                   std::vector<LocalId> ext);

/// Diameter-based candidate filter (P1 / Alg. 2 line 12): keeps the members
/// of `candidates` within 2 hops of v in ctx.g(), preserving order.
std::vector<LocalId> TwoHopFilter(MiningContext& ctx,
                                  std::span<const LocalId> candidates,
                                  LocalId v);

}  // namespace qcm

#endif  // QCM_QUICK_RECURSIVE_MINE_H_
