// Exact arithmetic for the degree threshold gamma.
//
// Every pruning rule in the paper compares integer degrees against
// ceil(gamma * x) for some integer x. Evaluating that with doubles is
// hazardous: e.g. 0.9 * 10 evaluates to 9.000000000000002, whose ceil is 10,
// silently tightening the threshold and losing results. We therefore store
// gamma as an exact rational num/10^6 (six decimal digits cover every value
// used in the paper and benchmarks) and do the ceil/floor in 64-bit integer
// arithmetic.

#ifndef QCM_QUICK_GAMMA_H_
#define QCM_QUICK_GAMMA_H_

#include <cstdint>

#include "util/status.h"

namespace qcm {

/// Exact rational representation of the quasi-clique degree threshold.
class Gamma {
 public:
  /// Validates gamma in (0, 1] and rounds it to 6 decimal digits.
  static StatusOr<Gamma> Create(double gamma);

  /// ceil(gamma * x) for x >= 0, computed exactly.
  int64_t CeilMul(int64_t x) const {
    return (num_ * x + kDen - 1) / kDen;
  }

  /// floor(x / gamma) for x >= 0, computed exactly (used by the upper
  /// bound U_S^min, Eq. (3) of the paper).
  int64_t FloorDiv(int64_t x) const { return x * kDen / num_; }

  /// The threshold as a double (for reporting only).
  double value() const {
    return static_cast<double>(num_) / static_cast<double>(kDen);
  }

  bool operator==(const Gamma&) const = default;

 private:
  explicit Gamma(int64_t num) : num_(num) {}

  static constexpr int64_t kDen = 1000000;
  int64_t num_ = kDen;
};

}  // namespace qcm

#endif  // QCM_QUICK_GAMMA_H_
