// Upper bound U_S (P4, Eqs. 1-4) and lower bound L_S (P5, Eqs. 6-8) on the
// number of ext(S) vertices that can extend S into a valid quasi-clique,
// plus the Type-II outcomes their computation can trigger (paper §3.2 and
// §4 T3).

#ifndef QCM_QUICK_BOUNDS_H_
#define QCM_QUICK_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "quick/mining_context.h"

namespace qcm {

/// What the bound computation concluded.
enum class BoundOutcome {
  /// Bounds are valid; continue with the pruning rules.
  kOk,
  /// Extensions of S are pruned but G(S) itself must still be examined
  /// (Eq. (4) infeasible, or U_S^min <= 0 -- "for U_S's case, we still need
  /// to examine G(S)").
  kPruneExtCheckS,
  /// S and all extensions are pruned with no examination (Eq. (7)/(8)
  /// infeasible -- t = 0 included -- or U_S < L_S with L_S >= 1).
  kPruneAll,
};

/// Computed bounds. When a rule family is disabled via MiningOptions, its
/// bound degenerates to the no-constraint value (U = |ext|, L = 0).
struct Bounds {
  BoundOutcome outcome = BoundOutcome::kOk;
  int64_t upper = 0;  // U_S
  int64_t lower = 0;  // L_S
};

/// Computes U_S and L_S. REQUIRES: ds()/dext() freshly computed for every
/// member of S and ext (see ComputeDegrees). S must be non-empty.
Bounds ComputeBounds(MiningContext& ctx, const std::vector<LocalId>& s,
                     const std::vector<LocalId>& ext);

}  // namespace qcm

#endif  // QCM_QUICK_BOUNDS_H_
