#include "quick/serial_miner.h"

#include <algorithm>
#include <unordered_set>

#include "graph/kcore.h"
#include "quick/recursive_mine.h"
#include "util/timer.h"

namespace qcm {

LocalGraph BuildRootEgo(const Graph& g, const std::vector<uint8_t>& alive,
                        VertexId root, uint32_t k) {
  if (!alive[root]) return LocalGraph();
  // First hop: neighbors with larger id (set-enumeration discipline).
  std::vector<VertexId> vset;
  vset.push_back(root);
  std::unordered_set<VertexId> seen;
  seen.insert(root);
  for (VertexId u : g.Neighbors(root)) {
    if (u > root && alive[u]) {
      vset.push_back(u);
      seen.insert(u);
    }
  }
  const size_t first_hop_end = vset.size();
  if (first_hop_end == 1) return LocalGraph();
  // Second hop through surviving first-hop vertices.
  for (size_t i = 1; i < first_hop_end; ++i) {
    for (VertexId w : g.Neighbors(vset[i])) {
      if (w > root && alive[w] && seen.insert(w).second) {
        vset.push_back(w);
      }
    }
  }
  std::sort(vset.begin(), vset.end());

  // Induce edges among vset.
  LocalGraphBuilder builder;
  std::vector<VertexId> adj;
  for (VertexId x : vset) {
    adj.clear();
    for (VertexId w : g.Neighbors(x)) {
      if (w != x && seen.count(w) != 0) adj.push_back(w);
    }
    builder.Stage(x, adj);
  }
  LocalGraph ego = builder.Build().KCore(k);
  if (ego.FindLocal(root) == ego.n()) return LocalGraph();
  return ego;
}

StatusOr<SerialMineReport> SerialMiner::Run(const Graph& g, ResultSink* sink,
                                            const RootObserver& observer) {
  QCM_RETURN_IF_ERROR(options_.Validate());
  SerialMineReport report;
  WallTimer total;

  // (T1) size-threshold pruning: shrink to the k-core.
  const uint32_t k = options_.MinDegreeK();
  std::vector<uint8_t> alive = KCoreMask(g, k);
  for (uint8_t a : alive) report.kcore_size += a;

  for (VertexId root = 0; root < g.NumVertices(); ++root) {
    if (!alive[root]) {
      ++report.roots_skipped;
      continue;
    }
    WallTimer build_timer;
    LocalGraph ego = BuildRootEgo(g, alive, root, k);
    report.build_seconds += build_timer.Seconds();
    if (ego.n() == 0) {
      ++report.roots_skipped;
      continue;
    }

    WallTimer mine_timer;
    MiningContext ctx(&ego, options_, sink);
    const LocalId local_root = ego.FindLocal(root);
    std::vector<LocalId> ext;
    ext.reserve(ego.n() - 1);
    for (LocalId u = 0; u < ego.n(); ++u) {
      if (u != local_root) ext.push_back(u);
    }
    RecursiveMine(ctx, {local_root}, std::move(ext));
    const double mine_secs = mine_timer.Seconds();
    report.mine_seconds += mine_secs;
    report.stats.Add(ctx.stats);
    ++report.roots_processed;

    if (observer) {
      observer(RootTaskInfo{.root = root,
                            .subgraph_vertices = ego.n(),
                            .subgraph_edges = ego.NumEdges(),
                            .seconds = mine_secs});
    }
  }
  report.total_seconds = total.Seconds();
  return report;
}

}  // namespace qcm
