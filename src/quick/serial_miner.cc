#include "quick/serial_miner.h"

#include "graph/ego_builder.h"
#include "graph/kcore.h"
#include "quick/recursive_mine.h"
#include "util/timer.h"

namespace qcm {

StatusOr<SerialMineReport> SerialMiner::Run(const Graph& g, ResultSink* sink,
                                            const RootObserver& observer) {
  QCM_RETURN_IF_ERROR(options_.Validate());
  SerialMineReport report;
  WallTimer total;

  // (T1) size-threshold pruning: shrink to the k-core.
  const uint32_t k = options_.MinDegreeK();
  std::vector<uint8_t> alive = KCoreMask(g, k);
  for (uint8_t a : alive) report.kcore_size += a;

  // The shared materialization layer (Alg. 6-7), reading the CSR graph
  // directly, masked to the global k-core. One scratch serves every root.
  EgoScratch scratch;
  scratch.Reset(g.NumVertices());
  GraphVertexSource source(&g, &alive);
  EgoBuilder builder(&scratch);
  builder.set_dense_threshold(options_.dense_threshold);
  MiningScratch mining_scratch;  // pooled across every root's task

  for (VertexId root = 0; root < g.NumVertices(); ++root) {
    if (!alive[root]) {
      ++report.roots_skipped;
      continue;
    }
    WallTimer build_timer;
    LocalGraph ego = builder.BuildEgo(source, root, k, options_.min_size);
    report.build_seconds += build_timer.Seconds();
    if (ego.n() == 0) {
      ++report.roots_skipped;
      continue;
    }

    WallTimer mine_timer;
    MiningContext ctx(&ego, options_, sink, &mining_scratch);
    const LocalId local_root = ego.FindLocal(root);
    std::vector<LocalId> ext;
    ext.reserve(ego.n() - 1);
    for (LocalId u = 0; u < ego.n(); ++u) {
      if (u != local_root) ext.push_back(u);
    }
    RecursiveMine(ctx, {local_root}, std::move(ext));
    const double mine_secs = mine_timer.Seconds();
    report.mine_seconds += mine_secs;
    report.stats.Add(ctx.stats);
    ++report.roots_processed;

    if (observer) {
      observer(RootTaskInfo{.root = root,
                            .subgraph_vertices = ego.n(),
                            .subgraph_edges = ego.NumEdges(),
                            .seconds = mine_secs});
    }
  }
  report.total_seconds = total.Seconds();
  return report;
}

}  // namespace qcm
