// MiningContext: per-task state shared by the pruning machinery --
// the task's LocalGraph, options, scratch arrays (degree buffers, vertex
// state flags, epoch marks), statistics counters, the result sink, and the
// time-delayed decomposition hook (deadline + subtask sink).
//
// One context is created per mining task (its scratch is sized to the
// task's subgraph); it is not thread-safe and not shared across tasks.

#ifndef QCM_QUICK_MINING_CONTEXT_H_
#define QCM_QUICK_MINING_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/local_graph.h"
#include "quick/gamma.h"
#include "quick/quasi_clique.h"
#include "util/timer.h"

namespace qcm {

/// Membership state of a local vertex during iterative bounding.
enum class VState : uint8_t {
  kOut = 0,
  kInS = 1,
  kInExt = 2,
};

/// Work and pruning counters (merged across tasks/threads for reports).
struct MiningStats {
  uint64_t nodes_explored = 0;       // recursive_mine invocations
  uint64_t bounding_iterations = 0;  // Alg. 1 loop iterations
  uint64_t emitted = 0;              // candidate quasi-cliques emitted

  uint64_t type1_degree_pruned = 0;  // Theorem 3
  uint64_t type1_upper_pruned = 0;   // Theorem 5
  uint64_t type1_lower_pruned = 0;   // Theorem 7
  uint64_t type2_prunes = 0;         // Theorems 4/6/8 subtree prunes
  uint64_t bound_fail_prunes = 0;    // Eq. (4)/(7)/(8) infeasible or U < L
  uint64_t critical_moves = 0;       // Theorem 9 expansions
  uint64_t cover_skipped = 0;        // vertices skipped via CS(u) (P7)
  uint64_t lookahead_hits = 0;       // Alg. 2 lines 8-10
  uint64_t diameter_filtered = 0;    // ext(S') candidates cut by B(v) (P1)
  uint64_t size_prunes = 0;          // Alg. 2 line 6
  uint64_t subtasks_spawned = 0;     // time-delayed decomposition wraps

  void Add(const MiningStats& other);
};

/// Signature of the time-delayed decomposition hook: receives <S', ext(S')>
/// in *local ids* of the context's graph and wraps them into a new task
/// (Alg. 10 lines 19-22).
using SubtaskSink = std::function<void(const std::vector<LocalId>& s,
                                       const std::vector<LocalId>& ext)>;

class MiningContext {
 public:
  /// `graph` and `sink` must outlive the context.
  /// REQUIRES: options.Validate().ok() and gamma successfully created,
  /// enforced by the callers that construct contexts (miners/engine).
  MiningContext(const LocalGraph* graph, const MiningOptions& options,
                ResultSink* sink);

  const LocalGraph& g() const { return *graph_; }
  const MiningOptions& opts() const { return options_; }
  const Gamma& gamma() const { return gamma_; }

  /// ceil(gamma * x), exact.
  int64_t CeilGamma(int64_t x) const { return gamma_.CeilMul(x); }

  // ---- time-delayed decomposition hook (Alg. 9-10) ----

  /// Arms the timeout: tasks may mine for `tau_time_seconds` before the
  /// remaining workload is wrapped into subtasks through `sink`.
  void ArmTimeout(double tau_time_seconds, SubtaskSink sink);

  /// True iff a timeout is armed and has expired.
  bool TimedOut() const {
    return deadline_micros_ >= 0 && NowMicros() > deadline_micros_;
  }
  const SubtaskSink& subtask_sink() const { return subtask_sink_; }

  // ---- candidate emission ----

  /// If |s| >= tau_size and G(s) is a gamma-quasi-clique, emits the global
  /// id set and returns true.
  bool CheckAndEmit(std::span<const LocalId> s);

  /// Emits without checking (caller already verified validity).
  void EmitVerified(std::span<const LocalId> s);

  /// Validity of G(A ∪ B) by Definition 1 (degree condition only; gamma >=
  /// 0.5 implies connectivity). A and B must be disjoint.
  bool IsQuasiCliqueUnion(std::span<const LocalId> a,
                          std::span<const LocalId> b);

  bool IsQuasiClique(std::span<const LocalId> s) {
    return IsQuasiCliqueUnion(s, {});
  }

  // ---- scratch shared by the pruning machinery ----
  // state_/ds_/dext_ are owned by IterativeBounding while it runs; the
  // helpers outside it (cover vertex, two-hop filter, validity checks) use
  // only the epoch marks.

  std::vector<uint8_t>& state() { return state_; }
  std::vector<uint32_t>& ds() { return ds_; }
  std::vector<uint32_t>& dext() { return dext_; }

  /// Starts a fresh epoch on mark array 1 and returns its tag.
  uint32_t NewMark() { return ++epoch1_; }
  void Mark(LocalId v, uint32_t tag) { mark1_[v] = tag; }
  bool Marked(LocalId v, uint32_t tag) const { return mark1_[v] == tag; }

  /// Second, independent mark array (for nested set operations).
  uint32_t NewMark2() { return ++epoch2_; }
  void Mark2(LocalId v, uint32_t tag) { mark2_[v] = tag; }
  bool Marked2(LocalId v, uint32_t tag) const { return mark2_[v] == tag; }

  MiningStats stats;

 private:
  const LocalGraph* graph_;
  MiningOptions options_;
  Gamma gamma_;
  ResultSink* sink_;

  int64_t deadline_micros_ = -1;
  SubtaskSink subtask_sink_;

  std::vector<uint8_t> state_;
  std::vector<uint32_t> ds_, dext_;
  std::vector<uint32_t> mark1_, mark2_;
  uint32_t epoch1_ = 0, epoch2_ = 0;
};

/// Recomputes ds/dext for every vertex of S and ext. REQUIRES: state() set
/// to kInS / kInExt for exactly the members of S / ext.
void ComputeDegrees(MiningContext& ctx, const std::vector<LocalId>& s,
                    const std::vector<LocalId>& ext);

}  // namespace qcm

#endif  // QCM_QUICK_MINING_CONTEXT_H_
