// MiningContext: per-task state shared by the pruning machinery --
// the task's LocalGraph, options, scratch arrays (degree buffers, vertex
// state flags, epoch marks), statistics counters, the result sink, and the
// time-delayed decomposition hook (deadline + subtask sink).
//
// One context is created per mining task; it is not thread-safe and not
// shared across tasks. Its scratch arrays live in a MiningScratch that is
// meant to be pooled per mining thread (per comper) and reused across
// tasks, so the steady-state hot path allocates nothing.
//
// Hybrid dense/sparse kernels: when the task subgraph is small enough
// (MiningOptions::dense_threshold) the context switches the four pruning
// hot paths -- degree recomputation, two-hop filtering, cover-vertex
// intersection, validity checking -- to word-parallel popcounts over
// per-vertex adjacency bitmap rows, maintaining S/ext membership bitsets
// incrementally via SetVState(). Every dense kernel is arithmetic-identical
// to its scalar CSR twin, so emitted sets, pruning counters, and therefore
// cluster digests are bit-identical in both modes.

#ifndef QCM_QUICK_MINING_CONTEXT_H_
#define QCM_QUICK_MINING_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/local_graph.h"
#include "quick/gamma.h"
#include "quick/quasi_clique.h"
#include "util/timer.h"

namespace qcm {

/// Membership state of a local vertex during iterative bounding.
enum class VState : uint8_t {
  kOut = 0,
  kInS = 1,
  kInExt = 2,
};

/// Work and pruning counters (merged across tasks/threads for reports).
struct MiningStats {
  uint64_t nodes_explored = 0;       // recursive_mine invocations
  uint64_t bounding_iterations = 0;  // Alg. 1 loop iterations
  uint64_t emitted = 0;              // candidate quasi-cliques emitted

  uint64_t type1_degree_pruned = 0;  // Theorem 3
  uint64_t type1_upper_pruned = 0;   // Theorem 5
  uint64_t type1_lower_pruned = 0;   // Theorem 7
  uint64_t type2_prunes = 0;         // Theorems 4/6/8 subtree prunes
  uint64_t bound_fail_prunes = 0;    // Eq. (4)/(7)/(8) infeasible or U < L
  uint64_t critical_moves = 0;       // Theorem 9 expansions
  uint64_t cover_skipped = 0;        // vertices skipped via CS(u) (P7)
  uint64_t lookahead_hits = 0;       // Alg. 2 lines 8-10
  uint64_t diameter_filtered = 0;    // ext(S') candidates cut by B(v) (P1)
  uint64_t size_prunes = 0;          // Alg. 2 line 6
  uint64_t subtasks_spawned = 0;     // time-delayed decomposition wraps

  uint64_t dense_tasks = 0;           // tasks mined with bitmap rows
  uint64_t sparse_tasks = 0;          // tasks mined over CSR scans only
  uint64_t bitset_words_touched = 0;  // uint64 words the dense kernels read

  void Add(const MiningStats& other);
};

/// Signature of the time-delayed decomposition hook: receives <S', ext(S')>
/// in *local ids* of the context's graph and wraps them into a new task
/// (Alg. 10 lines 19-22).
using SubtaskSink = std::function<void(const std::vector<LocalId>& s,
                                       const std::vector<LocalId>& ext)>;

/// Reusable per-thread scratch backing MiningContext: per-vertex state and
/// degree arrays, epoch-marked tag arrays, and the word buffers of the
/// dense bitset kernels. Arrays grow monotonically to the largest task seen
/// and epochs persist across tasks, so steady-state reuse allocates
/// nothing. Owned by one mining thread (one comper); never shared.
class MiningScratch {
 public:
  MiningScratch() = default;

  /// Approximate heap footprint in bytes. Capacities, not sizes: several
  /// arrays are assign()ed down for small tasks but their allocations
  /// persist (that persistence is the point of pooling).
  uint64_t MemoryBytes() const {
    return state_.capacity() * sizeof(uint8_t) +
           (ds_.capacity() + dext_.capacity() + mark1_.capacity() +
            mark2_.capacity()) *
               sizeof(uint32_t) +
           (in_s_mask_.capacity() + in_ext_mask_.capacity() +
            word_buf_.capacity() + rows_.capacity()) *
               sizeof(uint64_t);
  }

 private:
  friend class MiningContext;

  std::vector<uint8_t> state_;
  std::vector<uint32_t> ds_, dext_;
  std::vector<uint32_t> mark1_, mark2_;
  uint32_t epoch1_ = 0, epoch2_ = 0;

  // ---- Dense-kernel buffers (sized in words = ceil(n/64)) ----
  std::vector<uint64_t> in_s_mask_;    // bit v set iff state[v] == kInS
  std::vector<uint64_t> in_ext_mask_;  // bit v set iff state[v] == kInExt
  std::vector<uint64_t> word_buf_;     // kNumWordBufs task-local slots
  std::vector<uint64_t> rows_;  // adjacency rows when the graph has none
};

class MiningContext {
 public:
  /// `graph` and `sink` must outlive the context. `scratch` (optional)
  /// is the pooled per-thread arena; when null the context owns a private
  /// one (convenience for tests/tools -- it then allocates per task).
  /// REQUIRES: options.Validate().ok() and gamma successfully created,
  /// enforced by the callers that construct contexts (miners/engine).
  MiningContext(const LocalGraph* graph, const MiningOptions& options,
                ResultSink* sink, MiningScratch* scratch = nullptr);

  const LocalGraph& g() const { return *graph_; }
  const MiningOptions& opts() const { return options_; }
  const Gamma& gamma() const { return gamma_; }

  /// ceil(gamma * x), exact.
  int64_t CeilGamma(int64_t x) const { return gamma_.CeilMul(x); }

  // ---- time-delayed decomposition hook (Alg. 9-10) ----

  /// Arms the timeout: tasks may mine for `tau_time_seconds` before the
  /// remaining workload is wrapped into subtasks through `sink`.
  void ArmTimeout(double tau_time_seconds, SubtaskSink sink);

  /// True iff a timeout is armed and has expired.
  bool TimedOut() const {
    return deadline_micros_ >= 0 && NowMicros() > deadline_micros_;
  }
  const SubtaskSink& subtask_sink() const { return subtask_sink_; }

  // ---- candidate emission ----

  /// If |s| >= tau_size and G(s) is a gamma-quasi-clique, emits the global
  /// id set and returns true.
  bool CheckAndEmit(std::span<const LocalId> s);

  /// Emits without checking (caller already verified validity).
  void EmitVerified(std::span<const LocalId> s);

  /// Validity of G(A ∪ B) by Definition 1 (degree condition only; gamma >=
  /// 0.5 implies connectivity). A and B must be disjoint.
  bool IsQuasiCliqueUnion(std::span<const LocalId> a,
                          std::span<const LocalId> b);

  bool IsQuasiClique(std::span<const LocalId> s) {
    return IsQuasiCliqueUnion(s, {});
  }

  // ---- scratch shared by the pruning machinery ----
  // state_/ds_/dext_ are owned by IterativeBounding while it runs; the
  // helpers outside it (cover vertex, two-hop filter, validity checks) use
  // only the epoch marks and the dense word buffers.

  std::vector<uint8_t>& state() { return scratch_->state_; }
  std::vector<uint32_t>& ds() { return scratch_->ds_; }
  std::vector<uint32_t>& dext() { return scratch_->dext_; }

  /// The one sanctioned writer of state(): updates the byte AND, on the
  /// dense path, the incremental S/ext membership bitsets the word-parallel
  /// degree kernel popcounts against. All state transitions (StateGuard
  /// setup/restore, critical-vertex moves, Type-I prunes) go through here.
  void SetVState(LocalId v, VState st) {
    scratch_->state_[v] = static_cast<uint8_t>(st);
    if (!dense_) return;
    const size_t w = v >> 6;
    const uint64_t bit = uint64_t{1} << (v & 63);
    scratch_->in_s_mask_[w] &= ~bit;
    scratch_->in_ext_mask_[w] &= ~bit;
    if (st == VState::kInS) {
      scratch_->in_s_mask_[w] |= bit;
    } else if (st == VState::kInExt) {
      scratch_->in_ext_mask_[w] |= bit;
    }
  }

  /// Starts a fresh epoch on mark array 1 and returns its tag.
  uint32_t NewMark() {
    if (++scratch_->epoch1_ == 0) HandleMarkWrap(&scratch_->mark1_);
    return scratch_->epoch1_;
  }
  void Mark(LocalId v, uint32_t tag) { scratch_->mark1_[v] = tag; }
  bool Marked(LocalId v, uint32_t tag) const {
    return scratch_->mark1_[v] == tag;
  }

  /// Second, independent mark array (for nested set operations).
  uint32_t NewMark2() {
    if (++scratch_->epoch2_ == 0) HandleMarkWrap(&scratch_->mark2_);
    return scratch_->epoch2_;
  }
  void Mark2(LocalId v, uint32_t tag) { scratch_->mark2_[v] = tag; }
  bool Marked2(LocalId v, uint32_t tag) const {
    return scratch_->mark2_[v] == tag;
  }

  // ---- dense bitset kernels ----

  /// True iff this task runs the word-parallel kernels (subgraph within
  /// dense_threshold; rows materialized).
  bool dense() const { return dense_; }

  /// Words per row/mask: ceil(n/64). 0 when sparse.
  uint32_t words() const { return words_; }

  /// Adjacency bitmap row of v (words() uint64s, bit w = edge v-w).
  /// Only valid when dense().
  const uint64_t* Row(LocalId v) const {
    return rows_ + static_cast<size_t>(v) * words_;
  }

  /// Membership bitsets maintained by SetVState(). Only valid when dense().
  const uint64_t* in_s_mask() const { return scratch_->in_s_mask_.data(); }
  const uint64_t* in_ext_mask() const { return scratch_->in_ext_mask_.data(); }

  /// Distinct task-local word buffers (words() words each) for the dense
  /// kernels. Slot ownership: 0 = two-hop reach mask / union member mask
  /// (never live simultaneously), 1-3 = cover-vertex (S mask, ext/working
  /// cover, best cover). Only valid when dense().
  static constexpr int kNumWordBufs = 4;
  uint64_t* WordBuf(int slot) {
    return scratch_->word_buf_.data() + static_cast<size_t>(slot) * words_;
  }

  MiningStats stats;

 private:
  void HandleMarkWrap(std::vector<uint32_t>* marks);

  const LocalGraph* graph_;
  MiningOptions options_;
  Gamma gamma_;
  ResultSink* sink_;

  int64_t deadline_micros_ = -1;
  SubtaskSink subtask_sink_;

  std::unique_ptr<MiningScratch> owned_scratch_;
  MiningScratch* scratch_;

  bool dense_ = false;
  uint32_t words_ = 0;
  const uint64_t* rows_ = nullptr;  // graph rows or scratch-built copy
};

/// Recomputes ds/dext for every vertex of S and ext. REQUIRES: state() set
/// (via SetVState) to kInS / kInExt for exactly the members of S / ext.
/// Dense path: two masked popcounts per member over the row bitsets.
void ComputeDegrees(MiningContext& ctx, const std::vector<LocalId>& s,
                    const std::vector<LocalId>& ext);

}  // namespace qcm

#endif  // QCM_QUICK_MINING_CONTEXT_H_
