#include "quick/recursive_mine.h"

#include <algorithm>

#include "quick/cover_vertex.h"
#include "quick/iterative_bounding.h"

namespace qcm {

std::vector<LocalId> TwoHopFilter(MiningContext& ctx,
                                  std::span<const LocalId> candidates,
                                  LocalId v) {
  const LocalGraph& g = ctx.g();
  if (ctx.dense()) {
    // Word-parallel twin: reach = {v} ∪ Gamma(v) as one bitset; u is
    // within 2 hops iff its own bit is in reach or its row intersects it.
    const uint32_t words = ctx.words();
    const uint64_t* row_v = ctx.Row(v);
    uint64_t* reach = ctx.WordBuf(0);
    std::copy(row_v, row_v + words, reach);
    reach[v >> 6] |= uint64_t{1} << (v & 63);
    uint64_t touched = words;
    std::vector<LocalId> kept;
    kept.reserve(candidates.size());
    for (LocalId u : candidates) {
      bool within = (reach[u >> 6] >> (u & 63)) & 1;
      if (!within) {
        const uint64_t* row_u = ctx.Row(u);
        for (uint32_t w = 0; w < words; ++w) {
          ++touched;
          if (row_u[w] & reach[w]) {
            within = true;
            break;
          }
        }
      }
      if (within) {
        kept.push_back(u);
      } else {
        ++ctx.stats.diameter_filtered;
      }
    }
    ctx.stats.bitset_words_touched += touched;
    return kept;
  }
  // Mark {v} ∪ Gamma(v); u is within 2 hops iff u or one of its neighbors
  // is marked. Intermediate hops may pass through any vertex of the task
  // subgraph, exactly like B(v) in the paper (computed on t.g).
  const uint32_t tag = ctx.NewMark();
  ctx.Mark(v, tag);
  for (LocalId w : g.Neighbors(v)) ctx.Mark(w, tag);

  std::vector<LocalId> kept;
  kept.reserve(candidates.size());
  for (LocalId u : candidates) {
    bool within = ctx.Marked(u, tag);
    if (!within) {
      for (LocalId w : g.Neighbors(u)) {
        if (ctx.Marked(w, tag)) {
          within = true;
          break;
        }
      }
    }
    if (within) {
      kept.push_back(u);
    } else {
      ++ctx.stats.diameter_filtered;
    }
  }
  return kept;
}

namespace {

/// Reorders ext so the members of `cover` form the tail, preserving the
/// relative order of the rest (Alg. 2 line 4). Returns the loop bound
/// |ext| - |cover|.
size_t MoveCoverToTail(MiningContext& ctx, std::vector<LocalId>& ext,
                       const std::vector<LocalId>& cover) {
  if (cover.empty()) return ext.size();
  const uint32_t tag = ctx.NewMark2();
  for (LocalId w : cover) ctx.Mark2(w, tag);
  std::stable_partition(ext.begin(), ext.end(), [&](LocalId u) {
    return !ctx.Marked2(u, tag);
  });
  return ext.size() - cover.size();
}

}  // namespace

bool RecursiveMine(MiningContext& ctx, std::vector<LocalId> s,
                   std::vector<LocalId> ext) {
  ++ctx.stats.nodes_explored;
  bool found = false;
  const MiningOptions& opts = ctx.opts();

  // Lines 2-4: cover-vertex pruning (P7). Vertices covered by the best
  // cover vertex are never used as the branching vertex v.
  const std::vector<LocalId> cover = FindBestCoverSet(ctx, s, ext);
  const size_t loop_end = MoveCoverToTail(ctx, ext, cover);
  ctx.stats.cover_skipped += cover.size();

  for (size_t i = 0; i < loop_end; ++i) {
    // ext(S) at this point is the suffix ext[i..); earlier branching
    // vertices are excluded for good (the set-enumeration discipline,
    // Alg. 2 line 11).
    const size_t remaining = ext.size() - i;

    // Lines 6-7: size-threshold subtree cut.
    if (s.size() + remaining < opts.min_size) {
      ++ctx.stats.size_prunes;
      return found;
    }

    // Lines 8-10: lookahead -- if S ∪ ext(S) is already a quasi-clique it
    // is the unique maximal result of this subtree.
    if (opts.use_lookahead &&
        ctx.IsQuasiCliqueUnion(s, std::span(ext).subspan(i))) {
      std::vector<LocalId> whole(s);
      whole.insert(whole.end(), ext.begin() + static_cast<int64_t>(i),
                   ext.end());
      ctx.EmitVerified(whole);
      ++ctx.stats.lookahead_hits;
      return true;
    }

    // Line 11: branch on v.
    const LocalId v = ext[i];
    std::vector<LocalId> s_child(s);
    s_child.push_back(v);

    // Line 12: ext(S') = ext(S) ∩ B(v) (P1).
    std::vector<LocalId> ext_child =
        TwoHopFilter(ctx, std::span(ext).subspan(i + 1), v);

    if (ext_child.empty()) {
      // Lines 13-16. The original Quick misses this check (§4 T6 remark).
      if (!opts.quick_compat) {
        found |= ctx.CheckAndEmit(s_child);
      }
      continue;
    }

    // Line 18: Algorithm 1. May shrink ext_child, may expand s_child
    // (critical vertices), may emit candidates.
    BoundingResult bounding = IterativeBounding(ctx, s_child, ext_child);
    found |= bounding.emitted;
    if (bounding.pruned) continue;
    // Line 20 guard: even taking all of ext(S') cannot reach tau_size.
    if (s_child.size() + ext_child.size() < opts.min_size) continue;

    if (ctx.TimedOut() && ctx.subtask_sink()) {
      // Algorithm 10 lines 18-24: wrap <S', ext(S')> as a new task and
      // examine G(S') immediately -- this task will never see the
      // subtask's results, so skipping the check could lose a maximal
      // result. (This is the extra checking that inflates result counts
      // for small tau_time in Tables 3/4.)
      ctx.subtask_sink()(s_child, ext_child);
      ++ctx.stats.subtasks_spawned;
      found |= ctx.CheckAndEmit(s_child);
      continue;
    }

    // Line 21: recurse. s_child is kept alive: if the subtree finds
    // nothing, lines 23-25 examine G(S') -- and S' here is the
    // critical-vertex-expanded set, not merely S ∪ {v}.
    const bool child_found =
        RecursiveMine(ctx, s_child, std::move(ext_child));
    found |= child_found;
    if (!child_found) {
      found |= ctx.CheckAndEmit(s_child);
    }
  }
  return found;
}

}  // namespace qcm
