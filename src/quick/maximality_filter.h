// Maximality postprocessing (paper §3.1): the set-enumeration tasks cannot
// see results found under other roots, so the union of all emitted
// candidates may contain duplicates and non-maximal sets. This filter
// removes both, leaving exactly the maximal quasi-cliques -- correct
// because the miner is guaranteed to emit every *maximal* one.

#ifndef QCM_QUICK_MAXIMALITY_FILTER_H_
#define QCM_QUICK_MAXIMALITY_FILTER_H_

#include <vector>

#include "quick/quasi_clique.h"

namespace qcm {

/// Removes duplicates and sets that are strict subsets of another set.
/// Input sets must be sorted ascending (the sink contract). Output is
/// sorted lexicographically for determinism. When `duplicates` is
/// non-null it receives the number of exact-duplicate candidates removed
/// -- after a rank recovery this counts the doubly-mined results whose
/// suppression keeps the final digest identical to a crash-free run.
std::vector<VertexSet> FilterMaximal(std::vector<VertexSet> sets,
                                     size_t* duplicates = nullptr);

/// Canonical form for comparing result sets across runs and deployments:
/// sorts every set ascending, then sorts the sets lexicographically.
/// FilterMaximal output is already canonical; raw candidate dumps are not.
void CanonicalizeResults(std::vector<VertexSet>* sets);

/// Order-sensitive FNV-1a digest over a canonical result set; two runs
/// mined the same quasi-cliques iff their digests match (used by the
/// cluster launcher and the smoke check to compare a multi-process run
/// against single-process simulated mode).
uint64_t ResultSetDigest(const std::vector<VertexSet>& sets);

/// The one implementation of canonical result emission shared by
/// qcm_mine and qcm_cluster: canonicalizes `*sets` in place, prints
/// "result-digest: <16 hex>" on stderr, and -- when `output_path` is
/// non-empty -- writes one space-separated set per line ("-" = stdout).
/// check_smoke.sh and the cluster e2e test compare these exact bytes
/// across the two tools, so the format must never drift between them.
/// Returns the digest, or IOError when the output file cannot be opened.
StatusOr<uint64_t> EmitCanonicalResults(std::vector<VertexSet>* sets,
                                        const std::string& output_path);

}  // namespace qcm

#endif  // QCM_QUICK_MAXIMALITY_FILTER_H_
