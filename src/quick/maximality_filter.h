// Maximality postprocessing (paper §3.1): the set-enumeration tasks cannot
// see results found under other roots, so the union of all emitted
// candidates may contain duplicates and non-maximal sets. This filter
// removes both, leaving exactly the maximal quasi-cliques -- correct
// because the miner is guaranteed to emit every *maximal* one.

#ifndef QCM_QUICK_MAXIMALITY_FILTER_H_
#define QCM_QUICK_MAXIMALITY_FILTER_H_

#include <vector>

#include "quick/quasi_clique.h"

namespace qcm {

/// Removes duplicates and sets that are strict subsets of another set.
/// Input sets must be sorted ascending (the sink contract). Output is
/// sorted lexicographically for determinism.
std::vector<VertexSet> FilterMaximal(std::vector<VertexSet> sets);

}  // namespace qcm

#endif  // QCM_QUICK_MAXIMALITY_FILTER_H_
