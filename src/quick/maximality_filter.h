// Maximality postprocessing (paper §3.1): the set-enumeration tasks cannot
// see results found under other roots, so the union of all emitted
// candidates may contain duplicates and non-maximal sets. This filter
// removes both, leaving exactly the maximal quasi-cliques -- correct
// because the miner is guaranteed to emit every *maximal* one.

#ifndef QCM_QUICK_MAXIMALITY_FILTER_H_
#define QCM_QUICK_MAXIMALITY_FILTER_H_

#include <vector>

#include "quick/quasi_clique.h"

namespace qcm {

/// Removes duplicates and sets that are strict subsets of another set.
/// Input sets must be sorted ascending (the sink contract). Output is
/// sorted lexicographically for determinism. When `duplicates` is
/// non-null it receives the number of exact-duplicate candidates removed
/// -- after a rank recovery this counts the doubly-mined results whose
/// suppression keeps the final digest identical to a crash-free run.
std::vector<VertexSet> FilterMaximal(std::vector<VertexSet> sets,
                                     size_t* duplicates = nullptr);

/// What CanonicalizeResults actually had to do. Every set reaching it is
/// sorted at emission (ResultSink contract) and FilterMaximal returns a
/// lexicographically sorted vector, so in the steady state canonicalization
/// verifies invariants instead of re-sorting -- these counters prove it.
struct CanonicalizeStats {
  uint64_t sets_already_sorted = 0;  // per-set re-sorts skipped
  uint64_t sets_resorted = 0;        // sink-contract violations (debug: assert)
  uint64_t vector_sort_skipped = 0;  // 1 iff the whole-vector sort was skipped
  uint64_t comparisons_saved = 0;    // ~n*ceil(log2 n) per skipped sort
};

/// Canonical form for comparing result sets across runs and deployments:
/// every set sorted ascending, the sets sorted lexicographically.
/// Sets arrive sorted (emission invariant) and FilterMaximal output is
/// already fully canonical, so this asserts/verifies instead of re-sorting
/// wherever possible; `stats` (optional) reports the comparisons saved.
/// A per-set violation asserts in debug builds and falls back to sorting
/// in release builds.
void CanonicalizeResults(std::vector<VertexSet>* sets,
                         CanonicalizeStats* stats = nullptr);

/// Order-sensitive FNV-1a digest over a canonical result set; two runs
/// mined the same quasi-cliques iff their digests match (used by the
/// cluster launcher and the smoke check to compare a multi-process run
/// against single-process simulated mode).
uint64_t ResultSetDigest(const std::vector<VertexSet>& sets);

/// The one implementation of canonical result emission shared by
/// qcm_mine and qcm_cluster: canonicalizes `*sets` in place, prints
/// "result-digest: <16 hex>" on stderr, and -- when `output_path` is
/// non-empty -- writes one space-separated set per line ("-" = stdout).
/// check_smoke.sh and the cluster e2e test compare these exact bytes
/// across the two tools, so the format must never drift between them.
/// Returns the digest, or IOError when the output file cannot be opened.
/// `canon_stats` (optional) receives the CanonicalizeResults counters.
StatusOr<uint64_t> EmitCanonicalResults(std::vector<VertexSet>* sets,
                                        const std::string& output_path,
                                        CanonicalizeStats* canon_stats =
                                            nullptr);

}  // namespace qcm

#endif  // QCM_QUICK_MAXIMALITY_FILTER_H_
