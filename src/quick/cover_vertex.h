// Cover-vertex pruning (P7, Eq. 9): finds the vertex u in ext(S) whose
// cover set C_S(u) is largest. Extensions of S confined to C_S(u) cannot be
// maximal (adding u keeps them valid), so the recursive miner moves C_S(u)
// to the tail of ext(S) and never uses its members as the branching vertex.

#ifndef QCM_QUICK_COVER_VERTEX_H_
#define QCM_QUICK_COVER_VERTEX_H_

#include <vector>

#include "quick/mining_context.h"

namespace qcm {

/// Returns C_S(u*) for the u* in ext maximizing |C_S(u)|, or an empty
/// vector when no vertex qualifies (or the rule is disabled).
///
/// A vertex u qualifies only if dS(u) >= ceil(gamma |S|) and every
/// v in S \ Gamma(u) has dS(v) >= ceil(gamma |S|) (paper §3.2 P7).
/// Computes its own degree information; usable outside IterativeBounding.
/// Element order of the returned set is unspecified (the dense and sparse
/// kernels order it differently); callers use only membership and size.
std::vector<LocalId> FindBestCoverSet(MiningContext& ctx,
                                      const std::vector<LocalId>& s,
                                      const std::vector<LocalId>& ext);

}  // namespace qcm

#endif  // QCM_QUICK_COVER_VERTEX_H_
