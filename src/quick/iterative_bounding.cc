#include "quick/iterative_bounding.h"

#include <algorithm>

#include "quick/bounds.h"

namespace qcm {

namespace {

/// Clears the VState flags of every vertex that was ever in S or ext.
/// S only gains vertices that came from ext, so the union of the *initial*
/// S and ext covers everything ever flagged.
class StateGuard {
 public:
  StateGuard(MiningContext& ctx, const std::vector<LocalId>& s,
             const std::vector<LocalId>& ext)
      : ctx_(ctx) {
    dirty_.reserve(s.size() + ext.size());
    for (LocalId v : s) {
      ctx_.SetVState(v, VState::kInS);
      dirty_.push_back(v);
    }
    for (LocalId u : ext) {
      ctx_.SetVState(u, VState::kInExt);
      dirty_.push_back(u);
    }
  }
  ~StateGuard() {
    // SetVState also clears the dense membership bitsets bit by bit, so
    // they end the task all-zero, ready for the next one.
    for (LocalId v : dirty_) {
      ctx_.SetVState(v, VState::kOut);
    }
  }

 private:
  MiningContext& ctx_;
  std::vector<LocalId> dirty_;
};

}  // namespace

BoundingResult IterativeBounding(MiningContext& ctx, std::vector<LocalId>& s,
                                 std::vector<LocalId>& ext) {
  BoundingResult result;
  const MiningOptions& opts = ctx.opts();
  StateGuard guard(ctx, s, ext);

  auto& state = ctx.state();
  auto& ds = ctx.ds();
  auto& dext = ctx.dext();

  while (true) {
    if (ext.empty()) break;  // case C1
    ++ctx.stats.bounding_iterations;

    // Line 2: recompute dS / dext for all members.
    ComputeDegrees(ctx, s, ext);

    // Line 3: bounds; their computation may trigger Type-II pruning.
    Bounds bounds = ComputeBounds(ctx, s, ext);
    if (bounds.outcome == BoundOutcome::kPruneExtCheckS) {
      result.emitted |= ctx.CheckAndEmit(s);
      result.pruned = true;
      return result;
    }
    if (bounds.outcome == BoundOutcome::kPruneAll) {
      result.pruned = true;
      return result;
    }
    const int64_t s_size = static_cast<int64_t>(s.size());
    const int64_t u_bound = bounds.upper;
    const int64_t l_bound = bounds.lower;

    // Lines 4-8: critical-vertex expansion (Theorem 9). The paper examines
    // G(S) *before* the expansion (T5: Quick misses this check).
    if (opts.use_critical_vertex && opts.use_lower_bound) {
      const int64_t crit = ctx.CeilGamma(s_size + l_bound - 1);
      LocalId crit_vertex = ctx.g().n();
      for (LocalId v : s) {
        if (static_cast<int64_t>(ds[v]) + dext[v] == crit && dext[v] > 0) {
          crit_vertex = v;
          break;
        }
      }
      if (crit_vertex != ctx.g().n()) {
        if (!opts.quick_compat) {
          result.emitted |= ctx.CheckAndEmit(s);
        }
        // Move I = Gamma(v) ∩ ext into S (stable removal from ext).
        size_t kept = 0;
        for (LocalId w : ctx.g().Neighbors(crit_vertex)) {
          if (state[w] == static_cast<uint8_t>(VState::kInExt)) {
            ctx.SetVState(w, VState::kInS);
            s.push_back(w);
          }
        }
        for (LocalId u : ext) {
          if (state[u] == static_cast<uint8_t>(VState::kInExt)) {
            ext[kept++] = u;
          }
        }
        ext.resize(kept);
        ++ctx.stats.critical_moves;
        // Line 8: degrees and bounds must be recomputed; if ext became
        // empty we exit to the C1 handling at the loop top.
        continue;
      }
    }

    // Lines 9-16: Type-II rules over S (Theorems 4, 6, 8).
    bool cond_4i = false;
    for (LocalId v : s) {
      const int64_t dsv = ds[v];
      const int64_t dev = dext[v];
      if (opts.use_degree_pruning) {
        // Theorem 4 (ii): prunes S and extensions.
        if (dsv + dev < ctx.CeilGamma(s_size - 1 + dev)) {
          ++ctx.stats.type2_prunes;
          result.pruned = true;
          return result;
        }
        // Theorem 4 (i): prunes extensions only.
        if (dev == 0 && dsv < ctx.CeilGamma(s_size)) {
          cond_4i = true;
        }
      }
      if (opts.use_upper_bound &&
          dsv + u_bound < ctx.CeilGamma(s_size + u_bound - 1)) {
        ++ctx.stats.type2_prunes;  // Theorem 6: prunes S and extensions.
        result.pruned = true;
        return result;
      }
      if (opts.use_lower_bound &&
          dsv + dev < ctx.CeilGamma(s_size + l_bound - 1)) {
        ++ctx.stats.type2_prunes;  // Theorem 8: prunes S and extensions.
        result.pruned = true;
        return result;
      }
    }
    if (cond_4i) {
      // Extensions cannot qualify, but G(S) itself might (lines 13-16).
      result.emitted |= ctx.CheckAndEmit(s);
      result.pruned = true;
      return result;
    }

    // Lines 17-20: Type-I rules over ext (Theorems 3, 5, 7).
    size_t kept = 0;
    for (LocalId u : ext) {
      const int64_t dsu = ds[u];
      const int64_t deu = dext[u];
      bool prune = false;
      if (opts.use_degree_pruning &&
          dsu + deu < ctx.CeilGamma(s_size + deu)) {
        ++ctx.stats.type1_degree_pruned;  // Theorem 3
        prune = true;
      } else if (opts.use_upper_bound &&
                 dsu + u_bound - 1 < ctx.CeilGamma(s_size + u_bound - 1)) {
        ++ctx.stats.type1_upper_pruned;  // Theorem 5
        prune = true;
      } else if (opts.use_lower_bound &&
                 dsu + deu < ctx.CeilGamma(s_size + l_bound - 1)) {
        ++ctx.stats.type1_lower_pruned;  // Theorem 7
        prune = true;
      }
      if (prune) {
        ctx.SetVState(u, VState::kOut);
      } else {
        ext[kept++] = u;
      }
    }
    const bool shrunk = kept != ext.size();
    ext.resize(kept);
    // Line 21: iterate while Type-I pruning makes progress.
    if (!shrunk) break;  // case C2 (if ext non-empty)
  }

  if (ext.empty()) {
    // Case C1 (lines 22-25): nothing to extend with; examine G(S).
    result.emitted |= ctx.CheckAndEmit(s);
    result.pruned = true;
    return result;
  }
  // Case C2: caller continues the recursion with the shrunk ext.
  result.pruned = false;
  return result;
}

}  // namespace qcm
