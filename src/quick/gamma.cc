#include "quick/gamma.h"

#include <cmath>
#include <string>

namespace qcm {

StatusOr<Gamma> Gamma::Create(double gamma) {
  if (!(gamma > 0.0) || gamma > 1.0) {
    return Status::InvalidArgument("gamma must be in (0, 1], got " +
                                   std::to_string(gamma));
  }
  int64_t num = static_cast<int64_t>(std::llround(gamma * kDen));
  if (num <= 0) num = 1;
  if (num > kDen) num = kDen;
  return Gamma(num);
}

}  // namespace qcm
