// Serial whole-graph miner: the paper's §4 algorithm driven over every
// vertex. Shrinks the input to its k-core (T1), builds each root's 2-hop
// ego network (the same subgraph a G-thinker task would materialize), and
// runs RecursiveMine on it. This is both the single-thread baseline of the
// evaluation and the correctness reference for the parallel engine.

#ifndef QCM_QUICK_SERIAL_MINER_H_
#define QCM_QUICK_SERIAL_MINER_H_

#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/local_graph.h"
#include "quick/mining_context.h"
#include "quick/quasi_clique.h"
#include "util/status.h"

namespace qcm {

/// Per-run report of the serial miner.
struct SerialMineReport {
  MiningStats stats;
  uint64_t roots_processed = 0;  // roots whose ego survived pruning
  uint64_t roots_skipped = 0;    // roots pruned before mining
  uint64_t kcore_size = 0;       // vertices surviving the global k-core
  double build_seconds = 0.0;    // ego-network materialization time
  double mine_seconds = 0.0;     // time inside RecursiveMine
  double total_seconds = 0.0;
};

/// Observer invoked after each root's task completes (used by the
/// figure-reproduction benches to record per-task cost).
struct RootTaskInfo {
  VertexId root = 0;
  uint32_t subgraph_vertices = 0;
  uint64_t subgraph_edges = 0;
  double seconds = 0.0;
};
using RootObserver = std::function<void(const RootTaskInfo&)>;

/// Serial maximal quasi-clique miner. Task-subgraph materialization goes
/// through the shared EgoBuilder layer (graph/ego_builder.h) -- the same
/// Alg. 6-7 code the parallel engine's compute() iterations drive.
class SerialMiner {
 public:
  explicit SerialMiner(const MiningOptions& options) : options_(options) {}

  /// Mines all candidates into `sink` (postprocess with FilterMaximal to
  /// obtain exactly the maximal sets). `observer` may be null.
  StatusOr<SerialMineReport> Run(const Graph& g, ResultSink* sink,
                                 const RootObserver& observer = nullptr);

 private:
  MiningOptions options_;
};

}  // namespace qcm

#endif  // QCM_QUICK_SERIAL_MINER_H_
