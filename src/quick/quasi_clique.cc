#include "quick/quasi_clique.h"

#include <deque>
#include <string>
#include <unordered_set>

namespace qcm {

Status MiningOptions::Validate() const {
  if (gamma < 0.5 || gamma > 1.0) {
    return Status::InvalidArgument(
        "gamma must be in [0.5, 1] (diameter-2 regime, Theorem 1), got " +
        std::to_string(gamma));
  }
  if (min_size < 2) {
    return Status::InvalidArgument("min_size (tau_size) must be >= 2, got " +
                                   std::to_string(min_size));
  }
  if (dense_threshold < 0) {
    return Status::InvalidArgument(
        "dense_threshold must be >= 0 (0 disables the dense bitset "
        "kernels), got " +
        std::to_string(dense_threshold));
  }
  return Status::OK();
}

uint32_t MiningOptions::MinDegreeK() const {
  auto g = Gamma::Create(gamma);
  if (!g.ok()) return 0;
  return static_cast<uint32_t>(g->CeilMul(static_cast<int64_t>(min_size) - 1));
}

bool IsQuasiCliqueGlobal(const Graph& g, const VertexSet& s,
                         const Gamma& gamma) {
  if (s.empty()) return false;
  if (s.size() == 1) return s[0] < g.NumVertices();
  std::unordered_set<VertexId> members(s.begin(), s.end());
  if (members.size() != s.size()) return false;  // duplicates
  const int64_t need = gamma.CeilMul(static_cast<int64_t>(s.size()) - 1);
  for (VertexId v : s) {
    if (v >= g.NumVertices()) return false;
    int64_t deg = 0;
    for (VertexId u : g.Neighbors(v)) {
      if (members.count(u) != 0) ++deg;
    }
    if (deg < need) return false;
  }
  // Connectivity (Definition 1). Redundant for gamma >= 0.5 but kept so the
  // oracle is valid for any gamma.
  std::unordered_set<VertexId> seen{s[0]};
  std::deque<VertexId> queue{s[0]};
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : g.Neighbors(v)) {
      if (members.count(u) != 0 && seen.insert(u).second) {
        queue.push_back(u);
      }
    }
  }
  return seen.size() == s.size();
}

}  // namespace qcm
