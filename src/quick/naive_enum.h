// Exhaustive enumeration oracle for tiny graphs: checks every vertex subset
// against Definition 1 (including connectivity, so it is valid for any
// gamma in (0, 1]) and keeps exactly the maximal sets. Exponential -- used
// only by tests and micro-examples, capped at 24 vertices.

#ifndef QCM_QUICK_NAIVE_ENUM_H_
#define QCM_QUICK_NAIVE_ENUM_H_

#include <vector>

#include "graph/graph.h"
#include "quick/quasi_clique.h"
#include "util/status.h"

namespace qcm {

/// All maximal gamma-quasi-cliques of g with at least min_size vertices,
/// sorted lexicographically. InvalidArgument if g has more than 24 vertices.
StatusOr<std::vector<VertexSet>> NaiveMaximalQuasiCliques(const Graph& g,
                                                          double gamma,
                                                          uint32_t min_size);

}  // namespace qcm

#endif  // QCM_QUICK_NAIVE_ENUM_H_
