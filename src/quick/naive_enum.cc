#include "quick/naive_enum.h"

#include <algorithm>
#include <bit>

namespace qcm {

StatusOr<std::vector<VertexSet>> NaiveMaximalQuasiCliques(const Graph& g,
                                                          double gamma,
                                                          uint32_t min_size) {
  const uint32_t n = g.NumVertices();
  if (n > 24) {
    return Status::InvalidArgument(
        "NaiveMaximalQuasiCliques: graph too large for exhaustive search");
  }
  auto gamma_or = Gamma::Create(gamma);
  QCM_RETURN_IF_ERROR(gamma_or.status());
  const Gamma& gq = gamma_or.value();

  // Bitmask adjacency.
  std::vector<uint32_t> adj(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.Neighbors(v)) adj[v] |= 1u << u;
  }

  auto connected = [&](uint32_t mask) {
    const uint32_t start = mask & (~mask + 1);  // lowest set bit
    uint32_t reached = start;
    uint32_t frontier = start;
    while (frontier != 0) {
      uint32_t next = 0;
      uint32_t f = frontier;
      while (f != 0) {
        const int v = std::countr_zero(f);
        f &= f - 1;
        next |= adj[v] & mask & ~reached;
      }
      reached |= next;
      frontier = next;
    }
    return reached == mask;
  };

  std::vector<uint32_t> valid;  // all valid quasi-cliques as bitmasks
  const uint32_t limit = n == 32 ? 0 : (1u << n);
  for (uint32_t mask = 1; mask < limit; ++mask) {
    const int size = std::popcount(mask);
    if (size < static_cast<int>(min_size)) continue;
    const int64_t need = gq.CeilMul(size - 1);
    bool ok = true;
    uint32_t m = mask;
    while (m != 0) {
      const int v = std::countr_zero(m);
      m &= m - 1;
      if (std::popcount(adj[v] & mask) < need) {
        ok = false;
        break;
      }
    }
    if (ok && connected(mask)) valid.push_back(mask);
  }

  // Keep the maximal ones: not a strict subset of any other valid set.
  std::vector<VertexSet> out;
  for (uint32_t s : valid) {
    bool maximal = true;
    for (uint32_t t : valid) {
      if (t != s && (s & t) == s) {
        maximal = false;
        break;
      }
    }
    if (!maximal) continue;
    VertexSet set;
    uint32_t m = s;
    while (m != 0) {
      const int v = std::countr_zero(m);
      m &= m - 1;
      set.push_back(static_cast<VertexId>(v));
    }
    out.push_back(std::move(set));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace qcm
