#include "quick/maximality_filter.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <unordered_map>

#include "util/serde.h"

namespace qcm {

namespace {

// Comparison cost a std::sort of n elements would have paid, ~n*ceil(log2 n)
// -- the bookkeeping currency of the re-sorts the sorted-emission invariant
// makes unnecessary.
uint64_t SortCostEstimate(size_t n) {
  if (n < 2) return 0;
  uint64_t log2 = 0;
  for (size_t m = n - 1; m > 0; m >>= 1) ++log2;
  return static_cast<uint64_t>(n) * log2;
}

}  // namespace

std::vector<VertexSet> FilterMaximal(std::vector<VertexSet> sets,
                                     size_t* duplicates) {
  // The subset probe below (std::includes) requires each set sorted; the
  // sinks emit sorted sets, so this is an invariant check, not a re-sort.
#ifndef NDEBUG
  for (const VertexSet& s : sets) {
    assert(std::is_sorted(s.begin(), s.end()) &&
           "FilterMaximal input set violates the sorted-emission invariant");
  }
#endif
  // Exact dedup first.
  std::sort(sets.begin(), sets.end());
  const size_t before = sets.size();
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  if (duplicates != nullptr) *duplicates = before - sets.size();
  // Process larger sets first: any strict superset of a candidate is
  // already kept by the time the candidate is considered.
  std::stable_sort(sets.begin(), sets.end(),
                   [](const VertexSet& a, const VertexSet& b) {
                     return a.size() > b.size();
                   });

  std::vector<VertexSet> kept;
  // Inverted index: vertex -> indices of kept sets containing it.
  std::unordered_map<VertexId, std::vector<size_t>> index;
  for (VertexSet& s : sets) {
    if (s.empty()) continue;
    // Probe via the member contained in the fewest kept sets.
    VertexId probe = s[0];
    size_t probe_count = SIZE_MAX;
    for (VertexId v : s) {
      auto it = index.find(v);
      const size_t c = it == index.end() ? 0 : it->second.size();
      if (c < probe_count) {
        probe_count = c;
        probe = v;
      }
    }
    bool subsumed = false;
    if (probe_count > 0) {
      for (size_t idx : index[probe]) {
        const VertexSet& t = kept[idx];
        if (t.size() > s.size() &&
            std::includes(t.begin(), t.end(), s.begin(), s.end())) {
          subsumed = true;
          break;
        }
      }
    }
    if (subsumed) continue;
    const size_t idx = kept.size();
    kept.push_back(std::move(s));
    for (VertexId v : kept.back()) index[v].push_back(idx);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

void CanonicalizeResults(std::vector<VertexSet>* sets,
                         CanonicalizeStats* stats) {
  CanonicalizeStats local;
  for (VertexSet& s : *sets) {
    if (std::is_sorted(s.begin(), s.end())) {
      ++local.sets_already_sorted;
      local.comparisons_saved += SortCostEstimate(s.size());
    } else {
      // Every emission path sorts; an unsorted set here means a sink
      // contract violation upstream.
      assert(false && "result set violates the sorted-emission invariant");
      ++local.sets_resorted;
      std::sort(s.begin(), s.end());
    }
  }
  if (std::is_sorted(sets->begin(), sets->end())) {
    // FilterMaximal already returns lexicographic order; verifying costs
    // n-1 comparisons instead of the n*log2 n a blind sort would.
    local.vector_sort_skipped = 1;
    local.comparisons_saved += SortCostEstimate(sets->size());
  } else {
    std::sort(sets->begin(), sets->end());
  }
  if (stats != nullptr) *stats = local;
}

uint64_t ResultSetDigest(const std::vector<VertexSet>& sets) {
  Encoder enc;
  enc.PutU64(sets.size());
  for (const VertexSet& s : sets) enc.PutU32Vector(s);
  return Fingerprint(enc.buffer());
}

StatusOr<uint64_t> EmitCanonicalResults(std::vector<VertexSet>* sets,
                                        const std::string& output_path,
                                        CanonicalizeStats* canon_stats) {
  CanonicalizeResults(sets, canon_stats);
  const uint64_t digest = ResultSetDigest(*sets);
  std::fprintf(stderr, "result-digest: %016llx\n",
               static_cast<unsigned long long>(digest));
  if (!output_path.empty()) {
    FILE* f = output_path == "-" ? stdout
                                 : std::fopen(output_path.c_str(), "w");
    if (f == nullptr) {
      return Status::IOError("cannot open " + output_path +
                             " for writing");
    }
    for (const VertexSet& s : *sets) {
      for (size_t i = 0; i < s.size(); ++i) {
        std::fprintf(f, "%s%u", i ? " " : "", s[i]);
      }
      std::fprintf(f, "\n");
    }
    if (f != stdout) std::fclose(f);
  }
  return digest;
}

}  // namespace qcm
