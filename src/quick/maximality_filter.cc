#include "quick/maximality_filter.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "util/serde.h"

namespace qcm {

std::vector<VertexSet> FilterMaximal(std::vector<VertexSet> sets,
                                     size_t* duplicates) {
  // Exact dedup first.
  std::sort(sets.begin(), sets.end());
  const size_t before = sets.size();
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  if (duplicates != nullptr) *duplicates = before - sets.size();
  // Process larger sets first: any strict superset of a candidate is
  // already kept by the time the candidate is considered.
  std::stable_sort(sets.begin(), sets.end(),
                   [](const VertexSet& a, const VertexSet& b) {
                     return a.size() > b.size();
                   });

  std::vector<VertexSet> kept;
  // Inverted index: vertex -> indices of kept sets containing it.
  std::unordered_map<VertexId, std::vector<size_t>> index;
  for (VertexSet& s : sets) {
    if (s.empty()) continue;
    // Probe via the member contained in the fewest kept sets.
    VertexId probe = s[0];
    size_t probe_count = SIZE_MAX;
    for (VertexId v : s) {
      auto it = index.find(v);
      const size_t c = it == index.end() ? 0 : it->second.size();
      if (c < probe_count) {
        probe_count = c;
        probe = v;
      }
    }
    bool subsumed = false;
    if (probe_count > 0) {
      for (size_t idx : index[probe]) {
        const VertexSet& t = kept[idx];
        if (t.size() > s.size() &&
            std::includes(t.begin(), t.end(), s.begin(), s.end())) {
          subsumed = true;
          break;
        }
      }
    }
    if (subsumed) continue;
    const size_t idx = kept.size();
    kept.push_back(std::move(s));
    for (VertexId v : kept.back()) index[v].push_back(idx);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

void CanonicalizeResults(std::vector<VertexSet>* sets) {
  for (VertexSet& s : *sets) std::sort(s.begin(), s.end());
  std::sort(sets->begin(), sets->end());
}

uint64_t ResultSetDigest(const std::vector<VertexSet>& sets) {
  Encoder enc;
  enc.PutU64(sets.size());
  for (const VertexSet& s : sets) enc.PutU32Vector(s);
  return Fingerprint(enc.buffer());
}

StatusOr<uint64_t> EmitCanonicalResults(std::vector<VertexSet>* sets,
                                        const std::string& output_path) {
  CanonicalizeResults(sets);
  const uint64_t digest = ResultSetDigest(*sets);
  std::fprintf(stderr, "result-digest: %016llx\n",
               static_cast<unsigned long long>(digest));
  if (!output_path.empty()) {
    FILE* f = output_path == "-" ? stdout
                                 : std::fopen(output_path.c_str(), "w");
    if (f == nullptr) {
      return Status::IOError("cannot open " + output_path +
                             " for writing");
    }
    for (const VertexSet& s : *sets) {
      for (size_t i = 0; i < s.size(); ++i) {
        std::fprintf(f, "%s%u", i ? " " : "", s[i]);
      }
      std::fprintf(f, "\n");
    }
    if (f != stdout) std::fclose(f);
  }
  return digest;
}

}  // namespace qcm
