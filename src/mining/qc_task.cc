#include "mining/qc_task.h"

namespace qcm {

TaskPtr QCTask::MakeSpawn(VertexId root, uint64_t size_hint) {
  auto t = std::make_unique<QCTask>();
  t->root_ = root;
  t->iteration_ = 1;
  t->size_hint_ = size_hint;
  return t;
}

TaskPtr QCTask::MakeSubtask(VertexId root, std::vector<VertexId> s,
                            std::vector<VertexId> ext, LocalGraph g) {
  auto t = std::make_unique<QCTask>();
  t->root_ = root;
  t->iteration_ = 3;
  t->size_hint_ = ext.size();
  t->s_ = std::move(s);
  t->ext_ = std::move(ext);
  t->g_ = std::move(g);
  return t;
}

void QCTask::PromoteToMining(std::vector<VertexId> s,
                             std::vector<VertexId> ext, LocalGraph g) {
  iteration_ = 3;
  size_hint_ = ext.size();
  s_ = std::move(s);
  ext_ = std::move(ext);
  g_ = std::move(g);
  // Mining reads only t.g from here on: drop the pulled-adjacency pins so
  // that memory is reclaimable while the (possibly long) mining phase runs.
  pulls().Clear();
}

void QCTask::Encode(Encoder* enc) const {
  enc->PutU32(root_);
  enc->PutU8(iteration_);
  enc->PutU64(size_hint_);
  enc->PutU32Vector(s_);
  enc->PutU32Vector(ext_);
  g_.Encode(enc);
}

StatusOr<TaskPtr> QCTask::Decode(Decoder* dec) {
  auto t = std::make_unique<QCTask>();
  QCM_RETURN_IF_ERROR(dec->GetU32(&t->root_));
  QCM_RETURN_IF_ERROR(dec->GetU8(&t->iteration_));
  QCM_RETURN_IF_ERROR(dec->GetU64(&t->size_hint_));
  QCM_RETURN_IF_ERROR(dec->GetU32Vector(&t->s_));
  QCM_RETURN_IF_ERROR(dec->GetU32Vector(&t->ext_));
  auto g = LocalGraph::Decode(dec);
  QCM_RETURN_IF_ERROR(g.status());
  t->g_ = std::move(g).value();
  if (t->iteration_ < 1 || t->iteration_ > 3) {
    return Status::Corruption("QCTask: bad iteration tag");
  }
  // Pull pins are transient (never serialized): a spawn task that crossed
  // a spill file or a steal transfer mid-build lost every adjacency it had
  // pulled, so restart its pull protocol from iteration 1. Requests for
  // still-cached vertices are answered without a transfer, and the rebuild
  // is deterministic -- the result set cannot change. Without this reset
  // the task would fall back to synchronous remote fetches, which do not
  // exist in process-per-machine mode.
  if (t->NeedsBuild()) t->iteration_ = 1;
  return TaskPtr(std::move(t));
}

}  // namespace qcm
