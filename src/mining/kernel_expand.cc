#include "mining/kernel_expand.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "mining/parallel_miner.h"
#include "util/timer.h"

namespace qcm {

Status KernelExpandOptions::Validate() const {
  if (kernel_gamma <= gamma) {
    return Status::InvalidArgument(
        "kernel_gamma must exceed gamma (kernels are denser)");
  }
  if (kernel_gamma > 1.0 || gamma < 0.5) {
    return Status::InvalidArgument(
        "thresholds must satisfy 0.5 <= gamma < kernel_gamma <= 1");
  }
  if (kernel_min_size < 2) {
    return Status::InvalidArgument("kernel_min_size must be >= 2");
  }
  if (top_k == 0) {
    return Status::InvalidArgument("top_k must be >= 1");
  }
  return Status::OK();
}

VertexSet ExpandKernel(const Graph& g, const VertexSet& seed,
                       const Gamma& gamma) {
  // Members + their degree into the current set.
  std::unordered_set<VertexId> members(seed.begin(), seed.end());
  std::unordered_map<VertexId, uint32_t> inside_degree;  // member -> deg
  auto deg_into = [&](VertexId v) {
    uint32_t d = 0;
    for (VertexId u : g.Neighbors(v)) d += members.count(u);
    return d;
  };
  for (VertexId v : seed) inside_degree[v] = deg_into(v);

  // Candidate pool: vertices adjacent to the set (diameter-2 superset not
  // needed for a greedy heuristic; adjacency keeps it cheap and exact
  // validity is re-checked for every addition).
  std::unordered_map<VertexId, uint32_t> candidates;  // v -> deg into set
  auto add_candidates_of = [&](VertexId v) {
    for (VertexId u : g.Neighbors(v)) {
      if (members.count(u) != 0) continue;
      auto [it, inserted] = candidates.emplace(u, 0);
      if (inserted) it->second = deg_into(u);
    }
  };
  for (VertexId v : seed) add_candidates_of(v);

  while (!candidates.empty()) {
    // Best candidate: highest degree into the set, ties to smaller id
    // (deterministic).
    VertexId best = 0;
    uint32_t best_deg = 0;
    bool have = false;
    for (const auto& [v, d] : candidates) {
      if (!have || d > best_deg || (d == best_deg && v < best)) {
        best = v;
        best_deg = d;
        have = true;
      }
    }
    // Admissibility: every member of S ∪ {best} must keep degree >=
    // ceil(gamma * |S|) (sizes grow by one).
    const int64_t need = gamma.CeilMul(static_cast<int64_t>(members.size()));
    bool ok = best_deg >= static_cast<uint64_t>(need);
    if (ok) {
      // Every existing member must still meet the (grown) bound: members
      // adjacent to `best` gain +1 degree, the rest keep theirs.
      std::unordered_set<VertexId> best_nbrs(g.Neighbors(best).begin(),
                                             g.Neighbors(best).end());
      for (const auto& [v, d] : inside_degree) {
        const uint32_t new_d = d + (best_nbrs.count(v) != 0 ? 1 : 0);
        if (static_cast<int64_t>(new_d) < need) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      candidates.erase(best);
      continue;
    }
    // Commit the addition.
    members.insert(best);
    inside_degree[best] = best_deg;
    for (VertexId u : g.Neighbors(best)) {
      auto it = inside_degree.find(u);
      if (it != inside_degree.end()) ++it->second;
      auto cit = candidates.find(u);
      if (cit != candidates.end()) ++cit->second;
    }
    candidates.erase(best);
    add_candidates_of(best);
    // Candidates rejected at a smaller size may become admissible later;
    // they are still in the pool unless erased above, and erased ones
    // rejoin through add_candidates_of if adjacent to new members. To keep
    // the heuristic simple (and matching [32]'s greedy growth), erased
    // candidates are not resurrected unless re-discovered.
  }

  VertexSet out(members.begin(), members.end());
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<KernelExpandResult> MineTopKQuasiCliques(
    const Graph& g, const KernelExpandOptions& options) {
  QCM_RETURN_IF_ERROR(options.Validate());
  auto gamma_or = Gamma::Create(options.gamma);
  QCM_RETURN_IF_ERROR(gamma_or.status());
  const Gamma& gamma = gamma_or.value();

  KernelExpandResult result;

  // ---- Phase 1: parallel kernel mining at gamma' (QuickM-style: the
  // kernels themselves need not be maximal at gamma; we still filter for
  // deduplication). ----
  WallTimer kernel_timer;
  EngineConfig config = options.engine;
  config.mining.gamma = options.kernel_gamma;
  config.mining.min_size = options.kernel_min_size;
  ParallelMiner miner(config);
  auto mined = miner.Run(g);
  QCM_RETURN_IF_ERROR(mined.status());
  result.kernels = std::move(mined->maximal);
  result.kernel_seconds = kernel_timer.Seconds();

  // Largest kernels first; expand a bounded number of them.
  std::sort(result.kernels.begin(), result.kernels.end(),
            [](const VertexSet& a, const VertexSet& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });

  // ---- Phase 2: greedy expansion at gamma. ----
  WallTimer expand_timer;
  const size_t expand_count =
      std::min(result.kernels.size(), options.top_k * 4);
  std::vector<VertexSet> grown;
  grown.reserve(expand_count);
  for (size_t i = 0; i < expand_count; ++i) {
    grown.push_back(ExpandKernel(g, result.kernels[i], gamma));
  }
  // Deduplicate, keep the largest top_k.
  std::sort(grown.begin(), grown.end());
  grown.erase(std::unique(grown.begin(), grown.end()), grown.end());
  std::sort(grown.begin(), grown.end(),
            [](const VertexSet& a, const VertexSet& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  if (grown.size() > options.top_k) grown.resize(options.top_k);
  result.top = std::move(grown);
  result.expand_seconds = expand_timer.Seconds();
  return result;
}

}  // namespace qcm
