#include "mining/qc_app.h"

#include <algorithm>
#include <unordered_set>

#include "quick/mining_context.h"
#include "quick/recursive_mine.h"
#include "util/timer.h"

namespace qcm {

QCApp::QCApp(const EngineConfig& config)
    : config_(config), k_(config.mining.MinDegreeK()) {}

TaskPtr QCApp::Spawn(VertexId v, ComputeContext& ctx) {
  // Alg. 4: only spawn when deg(v) >= k (Theorem 2).
  const uint32_t degree = ctx.Degree(v);
  if (degree < k_) return nullptr;
  return QCTask::MakeSpawn(v, degree);
}

StatusOr<TaskPtr> QCApp::DecodeTask(Decoder* dec) const {
  return QCTask::Decode(dec);
}

ComputeStatus QCApp::Compute(Task& task, ComputeContext& ctx) {
  auto& t = static_cast<QCTask&>(task);
  if (t.iteration() == 1) {
    WallTimer build;
    const bool alive = BuildEgoGraph(t, ctx);
    ctx.metrics().build_seconds += build.Seconds();
    if (!alive) return ComputeStatus::kDone;
    // Iteration 2 pulls nothing further, so iteration 3 runs right away
    // (paper: "t will not be suspended but rather run the third iteration
    // immediately").
  }
  MineTask(t, ctx);
  return ComputeStatus::kDone;
}

bool QCApp::BuildEgoGraph(QCTask& t, ComputeContext& ctx) {
  const VertexId root = t.root();

  // ---- Iteration 1 (Alg. 6) ----
  AdjRef root_adj = ctx.Fetch(root);
  // Pull only ids larger than the root (set-enumeration discipline); split
  // the frontier into V1 (degree >= k) and V2 (pruned by Theorem 2).
  std::vector<VertexId> v1;
  std::unordered_set<VertexId> v2;
  std::unordered_set<VertexId> one_hop;  // t.N = frontier ∪ {root}
  one_hop.insert(root);
  for (VertexId u : root_adj.adj) {
    if (u <= root) continue;
    one_hop.insert(u);
    if (ctx.Degree(u) >= k_) {
      v1.push_back(u);
    } else {
      v2.insert(u);
    }
  }
  if (v1.empty()) return false;

  LocalGraphBuilder builder;
  // Root's adjacency inside t.g is exactly V1 (entries must be >= root and
  // not in V2).
  builder.Stage(root, v1);
  std::vector<VertexId> adj;
  for (VertexId u : v1) {
    AdjRef au = ctx.Fetch(u);
    adj.clear();
    for (VertexId w : au.adj) {
      if (w >= root && v2.count(w) == 0) adj.push_back(w);
    }
    builder.Stage(u, adj);
  }
  builder.PeelToKCore(k_);
  if (!builder.IsStaged(root)) return false;

  // ---- Iteration 2 (Alg. 7) ----
  // Pull the 2-hop frontier: adjacency targets not yet staged and not
  // within one hop.
  std::vector<VertexId> second_hop;
  for (VertexId w : builder.PhantomTargets()) {
    if (one_hop.count(w) == 0) second_hop.push_back(w);
  }
  // B = N ∪ pulled second hop: entries outside B would be 3 hops from the
  // root and cannot share a diameter-2 quasi-clique with it (Theorem 1).
  std::unordered_set<VertexId> b(one_hop.begin(), one_hop.end());
  for (VertexId w : second_hop) b.insert(w);
  for (VertexId w : second_hop) {
    if (ctx.Degree(w) < k_) continue;
    AdjRef aw = ctx.Fetch(w);
    adj.clear();
    for (VertexId x : aw.adj) {
      if (x >= root && b.count(x) != 0) adj.push_back(x);
    }
    builder.Stage(w, adj);
  }
  builder.PeelToKCore(k_);
  if (!builder.IsStaged(root)) return false;

  LocalGraph g = builder.Build();
  if (g.n() < config_.mining.min_size) return false;

  // End of Alg. 7: t.S <- {v}, t.ext(S) <- V(g) - v.
  std::vector<VertexId> ext;
  ext.reserve(g.n() - 1);
  for (LocalId l = 0; l < g.n(); ++l) {
    if (g.GlobalId(l) != root) ext.push_back(g.GlobalId(l));
  }
  if (config_.record_task_log) {
    RootTaskAgg& agg = ctx.metrics().root_agg[root];
    agg.root = root;
    agg.subgraph_vertices = g.n();
    agg.subgraph_edges = g.NumEdges();
  }
  t.PromoteToMining({root}, std::move(ext), std::move(g));
  return true;
}

void QCApp::MineTask(QCTask& t, ComputeContext& ctx) {
  const LocalGraph& g = t.g();

  // Re-localize <S, ext(S)> (subtasks arrive with global ids).
  std::vector<LocalId> s_local, ext_local;
  s_local.reserve(t.s().size());
  for (VertexId vid : t.s()) s_local.push_back(g.FindLocal(vid));
  ext_local.reserve(t.ext().size());
  for (VertexId vid : t.ext()) ext_local.push_back(g.FindLocal(vid));

  MiningContext mctx(&g, config_.mining, &ctx.sink());

  // Decomposition policy (paper §6).
  const bool decompose =
      (config_.mode == DecomposeMode::kTimeDelayed) ||
      (config_.mode == DecomposeMode::kSizeThreshold &&
       t.ext().size() > config_.tau_split);
  if (decompose) {
    // tau_time seconds of real mining first (Alg. 10); for the pure
    // size-threshold strategy (Alg. 8) the deadline is immediate, which
    // turns every branch of the first level into a subtask.
    const double deadline =
        config_.mode == DecomposeMode::kTimeDelayed ? config_.tau_time : 0.0;
    mctx.ArmTimeout(deadline, [&](const std::vector<LocalId>& s_child,
                                  const std::vector<LocalId>& ext_child) {
      // Materialize the subtask's subgraph (the decomposition overhead
      // measured by Table 6) and hand it to the engine.
      ScopedAccumulator mat(&ctx.metrics().materialize_seconds);
      std::vector<LocalId> keep;
      keep.reserve(s_child.size() + ext_child.size());
      keep.insert(keep.end(), s_child.begin(), s_child.end());
      keep.insert(keep.end(), ext_child.begin(), ext_child.end());
      std::sort(keep.begin(), keep.end());
      LocalGraph sub = g.Induce(keep);
      std::vector<VertexId> s_global, ext_global;
      s_global.reserve(s_child.size());
      for (LocalId l : s_child) s_global.push_back(g.GlobalId(l));
      ext_global.reserve(ext_child.size());
      for (LocalId l : ext_child) ext_global.push_back(g.GlobalId(l));
      std::sort(s_global.begin(), s_global.end());
      std::sort(ext_global.begin(), ext_global.end());
      ctx.AddTask(QCTask::MakeSubtask(t.root(), std::move(s_global),
                                      std::move(ext_global),
                                      std::move(sub)));
      ++ctx.metrics().subtasks_created;
    });
  }

  WallTimer mine;
  const double mat_before = ctx.metrics().materialize_seconds;
  RecursiveMine(mctx, std::move(s_local), std::move(ext_local));
  // Attribute time spent materializing subtasks to materialization, not
  // mining (Table 6 separates the two).
  const double mine_seconds =
      mine.Seconds() - (ctx.metrics().materialize_seconds - mat_before);
  ctx.metrics().mining_seconds += mine_seconds;
  ctx.metrics().mining_stats.Add(mctx.stats);

  if (config_.record_task_log) {
    RootTaskAgg& agg = ctx.metrics().root_agg[t.root()];
    agg.root = t.root();
    agg.mining_seconds += mine_seconds;
    ++agg.tasks;
  }
}

}  // namespace qcm
