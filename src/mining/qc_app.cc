#include "mining/qc_app.h"

#include <algorithm>

#include "graph/ego_builder.h"
#include "quick/mining_context.h"
#include "quick/recursive_mine.h"
#include "util/timer.h"

namespace qcm {

namespace {

/// EgoVertexSource over the engine's simulated vertex storage: adjacency
/// pulls go through ComputeContext::Fetch, so remote reads are cached and
/// metrics-counted exactly like any other vertex pulling.
class ContextVertexSource final : public EgoVertexSource {
 public:
  explicit ContextVertexSource(ComputeContext* ctx) : ctx_(ctx) {}

  uint32_t Degree(VertexId v) override { return ctx_->Degree(v); }

  std::span<const VertexId> Adjacency(VertexId v) override {
    ref_ = ctx_->Fetch(v);
    return ref_.adj;
  }

 private:
  ComputeContext* ctx_;
  AdjRef ref_;  // keeps the most recent remote copy pinned
};

}  // namespace

QCApp::QCApp(const EngineConfig& config)
    : config_(config), k_(config.mining.MinDegreeK()) {}

TaskPtr QCApp::Spawn(VertexId v, ComputeContext& ctx) {
  // Alg. 4: only spawn when deg(v) >= k (Theorem 2).
  const uint32_t degree = ctx.Degree(v);
  if (degree < k_) return nullptr;
  return QCTask::MakeSpawn(v, degree);
}

StatusOr<TaskPtr> QCApp::DecodeTask(Decoder* dec) const {
  return QCTask::Decode(dec);
}

void QCApp::SpawnPrefetch(Task& task, PrefetchContext& ctx) {
  auto& t = static_cast<QCTask&>(task);
  // Only freshly spawned tasks have a first round worth prefetching
  // (iteration 1 reads the root's adjacency plus the qualifying 1-hop
  // frontier); the root is machine-local by construction -- tasks spawn
  // on their owner -- so the frontier is computable without a transfer.
  if (t.iteration() != 1 || !ctx.IsLocal(t.root())) return;
  for (VertexId u : ctx.LocalAdjacency(t.root())) {
    if (u <= t.root()) continue;
    if (ctx.Degree(u) < k_) continue;
    ctx.Want(u);
  }
}

ComputeStatus QCApp::Compute(Task& task, ComputeContext& ctx) {
  auto& t = static_cast<QCTask&>(task);
  if (t.iteration() == 1) {
    // The root's own adjacency must be pullable too: a task stolen to a
    // machine that does not own its root (or reloaded from a spill file
    // after its pins were dropped) rides the same batched request/
    // response protocol instead of a synchronous fallback fetch -- in
    // process-per-machine mode the remote adjacency physically is not
    // here, so this is the only correct path.
    if (!ctx.Request(t.root())) return ComputeStatus::kSuspended;
    // Iteration 1 (Alg. 6 lines 1-3): request the 1-hop frontier.
    WallTimer build;
    const FirstHop r = RequestFirstHop(t, ctx);
    ctx.metrics().build_seconds += build.Seconds();
    if (r == FirstHop::kDead) return ComputeStatus::kDone;
    t.AdvanceIteration(2);
    if (r == FirstHop::kMissing) return ComputeStatus::kSuspended;
    // Everything local/cached: run iteration 2 in the same round.
  }
  if (t.iteration() == 2) {
    // Iteration 2 (Alg. 6 + the Alg. 7 pull): first-hop staging and peel
    // over the now-available frontier, then request the 2-hop ball.
    WallTimer build;
    ContextVertexSource source(&ctx);
    EgoBuilder builder(&ctx.ego_scratch());
    builder.set_dense_threshold(config_.mining.dense_threshold);
    if (!builder.BuildEgoFirstHop(source, t.root(), k_)) {
      ctx.metrics().build_seconds += build.Seconds();
      return ComputeStatus::kDone;
    }
    bool all_available = true;
    for (VertexId w : builder.SecondHopPullSet(source, k_)) {
      all_available = ctx.Request(w) && all_available;
    }
    t.AdvanceIteration(3);
    if (!all_available) {
      // Yield the comper while the batched pull is outstanding (Alg. 3's
      // "add t back to the queue"): the task stays parked until the
      // CommFabric delivers every kPullResponse, however long the modeled
      // network latency delays them. Other tasks reuse this comper's
      // scratch meanwhile, so iteration 3 re-runs Alg. 6 -- every read by
      // then is a pin/cache hit, costing CPU but no transfer.
      ctx.metrics().build_seconds += build.Seconds();
      return ComputeStatus::kSuspended;
    }
    // Nothing missing: finish Alg. 7 on the live builder state and mine
    // immediately (paper: "t will not be suspended but rather run the
    // third iteration immediately").
    LocalGraph g = builder.BuildEgoSecondHop(source, t.root(), k_,
                                             config_.mining.min_size);
    const bool alive = PromoteBuilt(t, std::move(g), ctx);
    ctx.metrics().build_seconds += build.Seconds();
    if (!alive) return ComputeStatus::kDone;
  } else if (t.NeedsBuild()) {
    // Iteration 3, resumed after the 2-hop pull (or reloaded from a spill
    // file): materialize from pinned/cached vertices.
    WallTimer build;
    const bool alive = BuildEgoGraph(t, ctx);
    ctx.metrics().build_seconds += build.Seconds();
    if (!alive) return ComputeStatus::kDone;
  }
  MineTask(t, ctx);
  return ComputeStatus::kDone;
}

QCApp::FirstHop QCApp::RequestFirstHop(QCTask& t, ComputeContext& ctx) {
  // The qualifying 1-hop frontier {u in Gamma(v): u > v, deg(u) >= k} is
  // computable from the root's adjacency (machine-local for tasks spawned
  // here, pinned by the Request(root) round for stolen/reloaded ones)
  // plus degree metadata, which transfers no adjacency.
  AdjRef root_adj = ctx.Fetch(t.root());
  bool any = false;
  bool all_available = true;
  for (VertexId u : root_adj.adj) {
    if (u <= t.root()) continue;
    if (ctx.Degree(u) < k_) continue;
    any = true;
    all_available = ctx.Request(u) && all_available;
  }
  if (!any) return FirstHop::kDead;  // Alg. 6: no qualifying frontier
  return all_available ? FirstHop::kReady : FirstHop::kMissing;
}

bool QCApp::BuildEgoGraph(QCTask& t, ComputeContext& ctx) {
  // Full Alg. 6-7 through the shared materialization layer, pulling
  // vertices via the engine's simulated storage and reusing this comper's
  // scratch across tasks.
  ContextVertexSource source(&ctx);
  EgoBuilder builder(&ctx.ego_scratch());
  builder.set_dense_threshold(config_.mining.dense_threshold);
  LocalGraph g =
      builder.BuildEgo(source, t.root(), k_, config_.mining.min_size);
  return PromoteBuilt(t, std::move(g), ctx);
}

bool QCApp::PromoteBuilt(QCTask& t, LocalGraph g, ComputeContext& ctx) {
  if (g.n() == 0) return false;
  const VertexId root = t.root();

  // End of Alg. 7: t.S <- {v}, t.ext(S) <- V(g) - v.
  std::vector<VertexId> ext;
  ext.reserve(g.n() - 1);
  for (LocalId l = 0; l < g.n(); ++l) {
    if (g.GlobalId(l) != root) ext.push_back(g.GlobalId(l));
  }
  if (config_.record_task_log) {
    RootTaskAgg& agg = ctx.metrics().root_agg[root];
    agg.root = root;
    agg.subgraph_vertices = g.n();
    agg.subgraph_edges = g.NumEdges();
  }
  t.PromoteToMining({root}, std::move(ext), std::move(g));
  return true;
}

void QCApp::MineTask(QCTask& t, ComputeContext& ctx) {
  const LocalGraph& g = t.g();

  // Re-localize <S, ext(S)> (subtasks arrive with global ids).
  std::vector<LocalId> s_local, ext_local;
  s_local.reserve(t.s().size());
  for (VertexId vid : t.s()) s_local.push_back(g.FindLocal(vid));
  ext_local.reserve(t.ext().size());
  for (VertexId vid : t.ext()) ext_local.push_back(g.FindLocal(vid));

  MiningContext mctx(&g, config_.mining, &ctx.sink(), ctx.mining_scratch());

  // Decomposition policy (paper §6).
  const bool decompose =
      (config_.mode == DecomposeMode::kTimeDelayed) ||
      (config_.mode == DecomposeMode::kSizeThreshold &&
       t.ext().size() > config_.tau_split);
  if (decompose) {
    // tau_time seconds of real mining first (Alg. 10); for the pure
    // size-threshold strategy (Alg. 8) the deadline is immediate, which
    // turns every branch of the first level into a subtask.
    const double deadline =
        config_.mode == DecomposeMode::kTimeDelayed ? config_.tau_time : 0.0;
    mctx.ArmTimeout(deadline, [&](const std::vector<LocalId>& s_child,
                                  const std::vector<LocalId>& ext_child) {
      // Materialize the subtask's subgraph (the decomposition overhead
      // measured by Table 6) and hand it to the engine.
      ScopedAccumulator mat(&ctx.metrics().materialize_seconds);
      std::vector<LocalId> keep;
      keep.reserve(s_child.size() + ext_child.size());
      keep.insert(keep.end(), s_child.begin(), s_child.end());
      keep.insert(keep.end(), ext_child.begin(), ext_child.end());
      std::sort(keep.begin(), keep.end());
      LocalGraph sub = g.Induce(keep);
      std::vector<VertexId> s_global, ext_global;
      s_global.reserve(s_child.size());
      for (LocalId l : s_child) s_global.push_back(g.GlobalId(l));
      ext_global.reserve(ext_child.size());
      for (LocalId l : ext_child) ext_global.push_back(g.GlobalId(l));
      std::sort(s_global.begin(), s_global.end());
      std::sort(ext_global.begin(), ext_global.end());
      ctx.AddTask(QCTask::MakeSubtask(t.root(), std::move(s_global),
                                      std::move(ext_global),
                                      std::move(sub)));
      ++ctx.metrics().subtasks_created;
    });
  }

  WallTimer mine;
  const double mat_before = ctx.metrics().materialize_seconds;
  RecursiveMine(mctx, std::move(s_local), std::move(ext_local));
  // Attribute time spent materializing subtasks to materialization, not
  // mining (Table 6 separates the two).
  const double mine_seconds =
      mine.Seconds() - (ctx.metrics().materialize_seconds - mat_before);
  ctx.metrics().mining_seconds += mine_seconds;
  ctx.metrics().mining_stats.Add(mctx.stats);

  if (config_.record_task_log) {
    RootTaskAgg& agg = ctx.metrics().root_agg[t.root()];
    agg.root = t.root();
    agg.mining_seconds += mine_seconds;
    ++agg.tasks;
  }
}

}  // namespace qcm
