// Kernel-based top-k quasi-clique mining -- the paper's §8 future work:
// Sanei-Mehri et al. [32] observe that mining gamma'-quasi-cliques first
// with gamma' > gamma yields a small set of dense "kernels" from which
// large gamma-quasi-cliques can be grown far more cheaply than mining the
// whole graph at gamma. The paper proposes running that kernel search on
// the parallel engine ("paralleling their algorithm is considered a future
// work in [32], and our solution fills this gap") -- which is exactly what
// this module does: phase 1 mines kernels with ParallelMiner at gamma',
// phase 2 greedily expands each kernel at gamma.
//
// This is a *heuristic*: results are valid, locally-maximal
// gamma-quasi-cliques, but completeness is not guaranteed (matching [32],
// whose method "is not guaranteed to return exactly the set of top-k
// maximal quasi-cliques, though the error is small").

#ifndef QCM_MINING_KERNEL_EXPAND_H_
#define QCM_MINING_KERNEL_EXPAND_H_

#include <vector>

#include "gthinker/engine_config.h"
#include "graph/graph.h"
#include "quick/quasi_clique.h"
#include "util/status.h"

namespace qcm {

/// Options for MineTopKQuasiCliques.
struct KernelExpandOptions {
  /// Target threshold gamma and the kernel threshold gamma' > gamma.
  double gamma = 0.8;
  double kernel_gamma = 0.95;
  /// Minimum size of a *kernel* (tau_size for phase 1). Phase-2 results
  /// are at least this large (expansion only adds vertices).
  uint32_t kernel_min_size = 10;
  /// How many results to return (largest first).
  size_t top_k = 10;
  /// Engine configuration for the parallel kernel search (mining options
  /// inside it are overwritten from the fields above).
  EngineConfig engine;

  Status Validate() const;
};

/// Result of the two-phase mining.
struct KernelExpandResult {
  /// Top-k expanded gamma-quasi-cliques, largest first. Each is a valid,
  /// locally-maximal (no single vertex can be added) gamma-quasi-clique.
  std::vector<VertexSet> top;
  /// The gamma'-kernels found by phase 1 (maximal, post-filter).
  std::vector<VertexSet> kernels;
  double kernel_seconds = 0.0;     // phase 1 wall time
  double expand_seconds = 0.0;     // phase 2 wall time
};

/// Grows `seed` into a locally-maximal gamma-quasi-clique of g: repeatedly
/// adds the best admissible vertex (highest connectivity into the current
/// set) while validity is preserved. Deterministic. Exposed for testing.
VertexSet ExpandKernel(const Graph& g, const VertexSet& seed,
                       const Gamma& gamma);

/// Two-phase top-k mining (kernels at gamma' in parallel, then expansion).
StatusOr<KernelExpandResult> MineTopKQuasiCliques(
    const Graph& g, const KernelExpandOptions& options);

}  // namespace qcm

#endif  // QCM_MINING_KERNEL_EXPAND_H_
