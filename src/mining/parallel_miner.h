// High-level facade: run the full parallel maximal quasi-clique pipeline
// (spawn -> build -> mine -> decompose -> postprocess) on a graph and
// return both the exact maximal result set and the engine's run report.

#ifndef QCM_MINING_PARALLEL_MINER_H_
#define QCM_MINING_PARALLEL_MINER_H_

#include <vector>

#include "gthinker/engine.h"
#include "gthinker/engine_config.h"
#include "graph/graph.h"
#include "quick/quasi_clique.h"
#include "util/status.h"

namespace qcm {

/// Output of ParallelMiner::Run.
struct ParallelMineResult {
  /// Exactly the maximal quasi-cliques (after FilterMaximal postprocessing).
  std::vector<VertexSet> maximal;
  /// Raw candidate count before postprocessing (the paper's tables report
  /// this as "Result #": its GitHub release "do[es] not include a
  /// processing step to remove non-maximal results").
  uint64_t raw_candidates = 0;
  /// Full engine metrics and per-thread/per-root accounting.
  EngineReport report;
};

class ParallelMiner {
 public:
  explicit ParallelMiner(EngineConfig config) : config_(std::move(config)) {}

  /// Mines `graph` to completion.
  StatusOr<ParallelMineResult> Run(const Graph& graph);

 private:
  EngineConfig config_;
};

}  // namespace qcm

#endif  // QCM_MINING_PARALLEL_MINER_H_
