// The quasi-clique G-thinker application: the two UDFs of paper §6.
//   * Spawn (Alg. 4): one task per vertex with degree >= k.
//   * Compute (Alg. 5): iterations 1-2 build the root's 2-hop ego network
//     with k-core shrinking (Alg. 6-7), requesting remote vertices via the
//     engine's batched pull layer and suspending while pulls are
//     outstanding; iteration 3 mines it (Alg. 8-10), decomposing into
//     subtasks according to the configured mode. When everything a round
//     needs is already local/pinned/cached, the next iteration runs in the
//     same round (no artificial suspension).

#ifndef QCM_MINING_QC_APP_H_
#define QCM_MINING_QC_APP_H_

#include "gthinker/task.h"
#include "mining/qc_task.h"

namespace qcm {

class QCApp : public App {
 public:
  /// `config` is the engine configuration this app will run under (used
  /// for mining options, decomposition mode and thresholds).
  explicit QCApp(const EngineConfig& config);

  TaskPtr Spawn(VertexId v, ComputeContext& ctx) override;
  ComputeStatus Compute(Task& task, ComputeContext& ctx) override;
  StatusOr<TaskPtr> DecodeTask(Decoder* dec) const override;

  /// Spawn-time prefetch (EngineConfig::spawn_prefetch): Want() the
  /// qualifying 1-hop frontier {u in Gamma(root): u > root, deg(u) >= k}
  /// -- exactly the set iteration 1 will Request() -- so the pull rides
  /// the fabric before the task's first schedule and the first compute
  /// round runs against pins instead of suspending.
  void SpawnPrefetch(Task& task, PrefetchContext& ctx) override;

 private:
  enum class FirstHop { kDead, kReady, kMissing };

  /// Iteration 1: requests the qualifying 1-hop frontier (computable from
  /// the root's machine-local adjacency plus degree metadata). kDead if
  /// the frontier is empty (Theorem 2), kMissing if a pull is outstanding.
  FirstHop RequestFirstHop(QCTask& t, ComputeContext& ctx);

  /// Full Alg. 6-7 build (every vertex already local/pinned/cached):
  /// returns false if the task dies. On success the task is promoted to
  /// mining state.
  bool BuildEgoGraph(QCTask& t, ComputeContext& ctx);

  /// Shared promotion tail: end of Alg. 7 (t.S <- {v}, t.ext(S) <-
  /// V(g) - v) plus per-root task-log recording. False when g is empty.
  bool PromoteBuilt(QCTask& t, LocalGraph g, ComputeContext& ctx);

  /// Iteration 3 (Alg. 8/9/10): mines t.g, decomposing per `mode_`.
  void MineTask(QCTask& t, ComputeContext& ctx);

  EngineConfig config_;
  uint32_t k_;  // ceil(gamma * (tau_size - 1))
};

}  // namespace qcm

#endif  // QCM_MINING_QC_APP_H_
