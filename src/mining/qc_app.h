// The quasi-clique G-thinker application: the two UDFs of paper §6.
//   * Spawn (Alg. 4): one task per vertex with degree >= k.
//   * Compute (Alg. 5): iterations 1-2 build the root's 2-hop ego network
//     with k-core shrinking (Alg. 6-7); iteration 3 mines it (Alg. 8-10),
//     decomposing into subtasks according to the configured mode.

#ifndef QCM_MINING_QC_APP_H_
#define QCM_MINING_QC_APP_H_

#include "gthinker/task.h"
#include "mining/qc_task.h"

namespace qcm {

class QCApp : public App {
 public:
  /// `config` is the engine configuration this app will run under (used
  /// for mining options, decomposition mode and thresholds).
  explicit QCApp(const EngineConfig& config);

  TaskPtr Spawn(VertexId v, ComputeContext& ctx) override;
  ComputeStatus Compute(Task& task, ComputeContext& ctx) override;
  StatusOr<TaskPtr> DecodeTask(Decoder* dec) const override;

 private:
  /// Iterations 1-2 (Alg. 6-7): returns false if the task dies (root
  /// peeled). On success the task is promoted to iteration 3.
  bool BuildEgoGraph(QCTask& t, ComputeContext& ctx);

  /// Iteration 3 (Alg. 8/9/10): mines t.g, decomposing per `mode_`.
  void MineTask(QCTask& t, ComputeContext& ctx);

  EngineConfig config_;
  uint32_t k_;  // ceil(gamma * (tau_size - 1))
};

}  // namespace qcm

#endif  // QCM_MINING_QC_APP_H_
