// The quasi-clique mining task (paper §6). Two task shapes exist on queues:
//   * iteration 1 -- a freshly spawned task carrying only its root; its
//     compute round builds the root's 2-hop ego network (Alg. 6-7) and then
//     mines it (iteration 3 logic) in the same round, because with the
//     simulation's synchronous vertex fetch there is no pull latency to
//     suspend on (DESIGN.md §3).
//   * iteration 3 -- a decomposed subtask carrying <S, ext(S)> (global ids)
//     and its materialized subgraph t.g (Alg. 8 line 19 / Alg. 10).
// Both shapes serialize losslessly for spilling and stealing.

#ifndef QCM_MINING_QC_TASK_H_
#define QCM_MINING_QC_TASK_H_

#include <vector>

#include "graph/local_graph.h"
#include "gthinker/task.h"

namespace qcm {

class QCTask : public Task {
 public:
  QCTask() = default;

  /// Fresh spawn (Alg. 4): iteration 1, size hint = spawn degree proxy.
  static TaskPtr MakeSpawn(VertexId root, uint64_t size_hint);

  /// Decomposed subtask: iteration 3 with materialized state.
  static TaskPtr MakeSubtask(VertexId root, std::vector<VertexId> s,
                             std::vector<VertexId> ext, LocalGraph g);

  VertexId root() const override { return root_; }
  uint64_t SizeHint() const override { return size_hint_; }
  void Encode(Encoder* enc) const override;
  static StatusOr<TaskPtr> Decode(Decoder* dec);

  uint8_t iteration() const { return iteration_; }
  const std::vector<VertexId>& s() const { return s_; }
  const std::vector<VertexId>& ext() const { return ext_; }
  const LocalGraph& g() const { return g_; }

  /// Promotes a freshly built spawn task to mining state (end of Alg. 7:
  /// t.S <- {v}, t.ext(S) <- V(g) - v, iteration <- 3).
  void PromoteToMining(std::vector<VertexId> s, std::vector<VertexId> ext,
                       LocalGraph g);

 private:
  VertexId root_ = 0;
  uint8_t iteration_ = 1;
  uint64_t size_hint_ = 0;
  std::vector<VertexId> s_;
  std::vector<VertexId> ext_;
  LocalGraph g_;
};

}  // namespace qcm

#endif  // QCM_MINING_QC_TASK_H_
