// The quasi-clique mining task (paper §6), a three-iteration state machine
// driven by the engine's pull-based compute model (§5):
//   * iteration 1 -- a freshly spawned task carrying only its root; its
//     compute round requests the qualifying 1-hop frontier and suspends if
//     any of it must be pulled from a remote machine.
//   * iteration 2 -- the 1-hop frontier is available; the round runs
//     Alg. 6 (first-hop staging + peel), requests the 2-hop ball, and
//     either suspends on the pull or finishes the build and mines
//     immediately (the paper: "t will not be suspended but rather run the
//     third iteration immediately" when nothing is missing).
//   * iteration 3 -- every needed vertex is available. A resumed spawn
//     task (empty S) materializes its ego network first; a decomposed
//     subtask arrives with <S, ext(S)> (global ids) and its materialized
//     subgraph t.g (Alg. 8 line 19 / Alg. 10). Both then mine.
// All shapes serialize losslessly for spilling and stealing (pull pins are
// transient and simply re-fetched after a disk round-trip).

#ifndef QCM_MINING_QC_TASK_H_
#define QCM_MINING_QC_TASK_H_

#include <vector>

#include "graph/local_graph.h"
#include "gthinker/task.h"

namespace qcm {

class QCTask : public Task {
 public:
  QCTask() = default;

  /// Fresh spawn (Alg. 4): iteration 1, size hint = spawn degree proxy.
  static TaskPtr MakeSpawn(VertexId root, uint64_t size_hint);

  /// Decomposed subtask: iteration 3 with materialized state.
  static TaskPtr MakeSubtask(VertexId root, std::vector<VertexId> s,
                             std::vector<VertexId> ext, LocalGraph g);

  VertexId root() const override { return root_; }
  uint64_t SizeHint() const override { return size_hint_; }
  void Encode(Encoder* enc) const override;
  static StatusOr<TaskPtr> Decode(Decoder* dec);

  uint8_t iteration() const { return iteration_; }
  const std::vector<VertexId>& s() const { return s_; }
  const std::vector<VertexId>& ext() const { return ext_; }
  const LocalGraph& g() const { return g_; }

  /// Moves a spawn task to its next pull iteration (1 -> 2 -> 3).
  void AdvanceIteration(uint8_t iteration) { iteration_ = iteration; }

  /// True for an iteration-3 task that still has to materialize its ego
  /// network (a resumed spawn task, as opposed to a decomposed subtask
  /// that carries its subgraph).
  bool NeedsBuild() const { return s_.empty(); }

  /// Promotes a freshly built spawn task to mining state (end of Alg. 7:
  /// t.S <- {v}, t.ext(S) <- V(g) - v, iteration <- 3).
  void PromoteToMining(std::vector<VertexId> s, std::vector<VertexId> ext,
                       LocalGraph g);

 private:
  VertexId root_ = 0;
  uint8_t iteration_ = 1;
  uint64_t size_hint_ = 0;
  std::vector<VertexId> s_;
  std::vector<VertexId> ext_;
  LocalGraph g_;
};

}  // namespace qcm

#endif  // QCM_MINING_QC_TASK_H_
