#include "mining/parallel_miner.h"

#include "mining/qc_app.h"
#include "quick/maximality_filter.h"

namespace qcm {

StatusOr<ParallelMineResult> ParallelMiner::Run(const Graph& graph) {
  QCM_RETURN_IF_ERROR(config_.Validate());
  QCApp app(config_);
  Engine engine(&graph, config_, &app);
  auto report = engine.Run();
  QCM_RETURN_IF_ERROR(report.status());

  ParallelMineResult result;
  result.report = std::move(report).value();
  result.raw_candidates = result.report.results.size();
  result.maximal = FilterMaximal(result.report.results);
  return result;
}

}  // namespace qcm
