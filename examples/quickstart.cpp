// Quickstart: mine maximal quasi-cliques from a small graph in ~20 lines.
//
// Uses the paper's own illustrative graph (Figure 4, vertices a..i): with
// gamma = 0.6 and tau_size = 4 the unique maximal quasi-clique containing
// {a,b,c,d} is {a,b,c,d,e}.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "graph/generators.h"
#include "quick/maximality_filter.h"
#include "quick/quasi_clique.h"
#include "quick/serial_miner.h"

int main() {
  using namespace qcm;

  // 1. A graph: 9 vertices a..i (ids 0..8), 16 edges.
  Graph graph = PaperFigure4Graph();
  std::printf("Graph: %u vertices, %lu edges\n", graph.NumVertices(),
              static_cast<unsigned long>(graph.NumEdges()));

  // 2. Mining parameters: each member must connect to >= 60% of the other
  //    members, and results must have at least 4 vertices.
  MiningOptions options;
  options.gamma = 0.6;
  options.min_size = 4;

  // 3. Mine. The sink collects candidates; FilterMaximal removes the
  //    non-maximal ones (the paper's postprocessing step).
  VectorSink sink;
  SerialMiner miner(options);
  auto report = miner.Run(graph, &sink);
  if (!report.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  auto maximal = FilterMaximal(std::move(sink.results()));

  // 4. Print results (vertex ids 0..8 = a..i).
  std::printf("Maximal 0.6-quasi-cliques with >= 4 vertices:\n");
  for (const VertexSet& s : maximal) {
    std::printf("  {");
    for (size_t i = 0; i < s.size(); ++i) {
      std::printf("%s%c", i ? ", " : " ", 'a' + static_cast<char>(s[i]));
    }
    std::printf(" }\n");
  }
  std::printf("Search explored %lu set-enumeration nodes.\n",
              static_cast<unsigned long>(report->stats.nodes_explored));
  return 0;
}
