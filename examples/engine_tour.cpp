// A tour of the reforged G-thinker framework as a *general* engine: write
// your own graph-mining application by implementing the two UDFs of paper
// §5 (task_spawn and compute) plus a task codec.
//
// The app here counts, for every vertex, the size of its 2-hop
// neighborhood, fanning out one subtask per first-hop neighbor so the
// engine's queues, spilling and big-task routing all engage.
//
// Build & run:  ./build/examples/engine_tour

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "graph/generators.h"
#include "gthinker/engine.h"

namespace {

using namespace qcm;

/// Task state: root vertex + the first-hop frontier still to expand.
class HopTask : public Task {
 public:
  HopTask(VertexId root, uint64_t hint) : root_(root), hint_(hint) {}

  VertexId root() const override { return root_; }
  uint64_t SizeHint() const override { return hint_; }

  void Encode(Encoder* enc) const override {
    enc->PutU32(root_);
    enc->PutU64(hint_);
    enc->PutU8(stage_);
    enc->PutU32Vector(frontier_);
  }
  static StatusOr<TaskPtr> Decode(Decoder* dec) {
    VertexId root;
    uint64_t hint;
    QCM_RETURN_IF_ERROR(dec->GetU32(&root));
    QCM_RETURN_IF_ERROR(dec->GetU64(&hint));
    auto t = std::make_unique<HopTask>(root, hint);
    QCM_RETURN_IF_ERROR(dec->GetU8(&t->stage_));
    QCM_RETURN_IF_ERROR(dec->GetU32Vector(&t->frontier_));
    return TaskPtr(std::move(t));
  }

  uint8_t stage_ = 0;                // 0 = expand root, 1 = count
  std::vector<VertexId> frontier_;   // one-hop neighbors

 private:
  VertexId root_;
  uint64_t hint_;
};

/// UDF pair: spawn a task per vertex; compute expands 2 hops and emits
/// {root, |N2+(root)|} as a 2-element "result set" (id, count).
class TwoHopApp : public App {
 public:
  TaskPtr Spawn(VertexId v, ComputeContext& ctx) override {
    if (ctx.Degree(v) == 0) return nullptr;
    return std::make_unique<HopTask>(v, ctx.Degree(v));
  }

  ComputeStatus Compute(Task& task, ComputeContext& ctx) override {
    auto& t = static_cast<HopTask&>(task);
    if (t.stage_ == 0) {
      AdjRef adj = ctx.Fetch(t.root());
      t.frontier_.assign(adj.adj.begin(), adj.adj.end());
      t.stage_ = 1;
      return ComputeStatus::kRequeue;  // back through the queues
    }
    std::unordered_set<VertexId> seen(t.frontier_.begin(),
                                      t.frontier_.end());
    seen.insert(t.root());
    for (VertexId u : t.frontier_) {
      AdjRef au = ctx.Fetch(u);  // remote fetches go through the cache
      for (VertexId w : au.adj) seen.insert(w);
    }
    ctx.sink().Emit({t.root(), static_cast<VertexId>(seen.size() - 1)});
    return ComputeStatus::kDone;
  }

  StatusOr<TaskPtr> DecodeTask(Decoder* dec) const override {
    return HopTask::Decode(dec);
  }
};

}  // namespace

int main() {
  using namespace qcm;

  auto graph_or = GenBarabasiAlbert(20000, 3, 7);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = *graph_or;

  EngineConfig config;
  config.num_machines = 4;          // simulated cluster
  config.threads_per_machine = 2;
  config.tau_split = 64;            // degree > 64 => big task
  config.local_queue_capacity = 32; // small queues: watch the spilling
  config.batch_size = 8;
  config.mining.gamma = 0.9;        // unused by this app; must validate
  config.mining.min_size = 2;

  TwoHopApp app;
  Engine engine(&graph, config, &app);
  auto report = engine.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  // The "results" are (vertex, 2-hop-size) pairs; find the biggest hubs.
  auto results = std::move(report->results);
  std::sort(results.begin(), results.end(),
            [](const VertexSet& a, const VertexSet& b) {
              return a[1] > b[1];
            });
  std::printf("2-hop neighborhood sizes on a %u-vertex power-law graph:\n",
              graph.NumVertices());
  for (size_t i = 0; i < std::min<size_t>(5, results.size()); ++i) {
    std::printf("  vertex %6u reaches %u vertices within 2 hops\n",
                results[i][0], results[i][1]);
  }

  std::printf("\nWhat the engine did (wall %.2f s):\n",
              report->wall_seconds);
  std::printf("  tasks: %lu completed (%lu big, %lu small), %lu spilled "
              "to %lu files\n",
              static_cast<unsigned long>(report->counters.tasks_completed),
              static_cast<unsigned long>(report->counters.big_tasks),
              static_cast<unsigned long>(report->counters.small_tasks),
              static_cast<unsigned long>(report->counters.spilled_tasks),
              static_cast<unsigned long>(report->counters.spill_files));
  std::printf("  stealing: %lu transfers moved %lu big tasks (%lu bytes "
              "simulated network)\n",
              static_cast<unsigned long>(report->counters.steal_events),
              static_cast<unsigned long>(report->counters.stolen_tasks),
              static_cast<unsigned long>(report->counters.steal_bytes));
  std::printf("  remote vertex cache: %lu hits, %lu misses, %lu evictions\n",
              static_cast<unsigned long>(report->counters.cache_hits),
              static_cast<unsigned long>(report->counters.cache_misses),
              static_cast<unsigned long>(report->counters.cache_evictions));
  std::printf("  per-thread busy max/min: %.2f\n", report->BusyImbalance());
  return 0;
}
