// Gene co-expression module discovery -- the biology use case of the
// paper's CX_GSE1730 / CX_GSE10158 inputs: genes are vertices, an edge
// means correlated expression, and gamma-quasi-cliques are co-expressed
// modules (protein complexes / functional groups).
//
// Demonstrates: overlapping-module generation, edge-list persistence,
// serial vs. parallel agreement, and interpreting pruning statistics.
//
// Build & run:  ./build/examples/coexpression_modules

#include <algorithm>
#include <cstdio>

#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/kcore.h"
#include "mining/parallel_miner.h"
#include "quick/maximality_filter.h"
#include "quick/serial_miner.h"

int main() {
  using namespace qcm;

  // A coexpression network: 1,500 genes, ER noise, 9 overlapping dense
  // modules (overlap = genes shared between pathways).
  auto graph_or = GenPlantedCommunities({.num_vertices = 1500,
                                         .background_edges = 4000,
                                         .background =
                                             BackgroundModel::kErdosRenyi,
                                         .num_communities = 9,
                                         .community_min = 24,
                                         .community_max = 30,
                                         .intra_density = 0.95,
                                         .overlap_fraction = 0.4,
                                         .seed = 1730});
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = *graph_or;

  // Persist / reload as a SNAP-style edge list (what you would do with a
  // real GEO-derived network).
  const std::string path = "/tmp/qcm_coexpression_edges.txt";
  if (auto s = SaveEdgeList(graph, path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto loaded = LoadEdgeList(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Coexpression network: %u genes, %lu correlation edges "
              "(round-tripped through %s)\n",
              loaded->graph.NumVertices(),
              static_cast<unsigned long>(loaded->graph.NumEdges()),
              path.c_str());

  MiningOptions options;
  options.gamma = 0.9;     // tight co-expression
  options.min_size = 22;   // biologically significant module size
  const uint32_t k = options.MinDegreeK();
  std::printf("Theorem 2 preprocessing: k-core with k=%u keeps %lu of %u "
              "genes\n",
              k, static_cast<unsigned long>(KCoreSize(loaded->graph, k)),
              loaded->graph.NumVertices());

  // Serial reference.
  VectorSink sink;
  SerialMiner serial(options);
  auto serial_report = serial.Run(loaded->graph, &sink);
  if (!serial_report.ok()) {
    std::fprintf(stderr, "%s\n", serial_report.status().ToString().c_str());
    return 1;
  }
  auto serial_modules = FilterMaximal(std::move(sink.results()));

  // Parallel run on the simulated cluster.
  EngineConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 2;
  config.mining = options;
  config.tau_time = 0.005;
  ParallelMiner parallel(config);
  auto par = parallel.Run(loaded->graph);
  if (!par.ok()) {
    std::fprintf(stderr, "%s\n", par.status().ToString().c_str());
    return 1;
  }

  std::printf("\nSerial:   %zu maximal modules in %.2f s\n",
              serial_modules.size(), serial_report->total_seconds);
  std::printf("Parallel: %zu maximal modules in %.2f s (agreement: %s)\n",
              par->maximal.size(), par->report.wall_seconds,
              par->maximal == serial_modules ? "EXACT" : "MISMATCH!");

  // Module size histogram.
  std::printf("\nModule sizes:");
  std::vector<size_t> sizes;
  for (const auto& m : par->maximal) sizes.push_back(m.size());
  std::sort(sizes.begin(), sizes.end());
  for (size_t s : sizes) std::printf(" %zu", s);
  std::printf("\n");

  // What the pruning rules did (serial pass).
  const MiningStats& st = serial_report->stats;
  std::printf("\nPruning statistics (serial pass):\n");
  std::printf("  search nodes            : %lu\n",
              static_cast<unsigned long>(st.nodes_explored));
  std::printf("  Type I prunes (deg/U/L) : %lu / %lu / %lu\n",
              static_cast<unsigned long>(st.type1_degree_pruned),
              static_cast<unsigned long>(st.type1_upper_pruned),
              static_cast<unsigned long>(st.type1_lower_pruned));
  std::printf("  Type II subtree prunes  : %lu (+%lu bound failures)\n",
              static_cast<unsigned long>(st.type2_prunes),
              static_cast<unsigned long>(st.bound_fail_prunes));
  std::printf("  critical-vertex moves   : %lu\n",
              static_cast<unsigned long>(st.critical_moves));
  std::printf("  cover-vertex skips      : %lu\n",
              static_cast<unsigned long>(st.cover_skipped));
  std::printf("  lookahead hits          : %lu\n",
              static_cast<unsigned long>(st.lookahead_hits));
  std::remove(path.c_str());
  return 0;
}
