// Community detection on a social-network-like graph with the full
// parallel pipeline -- the workload class the paper's introduction
// motivates (detecting dense communities in online interaction networks).
//
// Generates a power-law graph with planted overlapping communities, mines
// maximal 0.9-quasi-cliques on the simulated G-thinker cluster, and prints
// both the communities and the engine's execution report (queues, spill,
// stealing, load balance).
//
// Build & run:  ./build/examples/community_detection

#include <algorithm>
#include <cstdio>

#include "graph/generators.h"
#include "mining/parallel_miner.h"

int main() {
  using namespace qcm;

  // A 50k-vertex social graph: sparse power-law periphery + 12 planted
  // overlapping communities of 20-28 members.
  std::vector<std::vector<VertexId>> planted;
  auto graph_or = GenPlantedCommunities({.num_vertices = 50000,
                                         .background =
                                             BackgroundModel::kPowerLaw,
                                         .ba_attach = 2,
                                         .num_communities = 12,
                                         .community_min = 20,
                                         .community_max = 28,
                                         .intra_density = 0.95,
                                         .overlap_fraction = 0.3,
                                         .seed = 2026},
                                        &planted);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = *graph_or;
  std::printf("Social graph: %u vertices, %lu edges, %zu planted "
              "communities\n",
              graph.NumVertices(),
              static_cast<unsigned long>(graph.NumEdges()), planted.size());

  // Simulated cluster: 2 machines x 2 mining threads, time-delayed task
  // decomposition (the paper's default strategy).
  EngineConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 2;
  config.mode = DecomposeMode::kTimeDelayed;
  config.tau_time = 0.01;
  config.tau_split = 50;
  config.mining.gamma = 0.9;
  config.mining.min_size = 18;

  ParallelMiner miner(config);
  auto result = miner.Run(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nFound %zu maximal 0.9-quasi-clique communities "
              "(>= %u members) in %.2f s\n",
              result->maximal.size(), config.mining.min_size,
              result->report.wall_seconds);
  // Largest five communities.
  auto communities = result->maximal;
  std::sort(communities.begin(), communities.end(),
            [](const VertexSet& a, const VertexSet& b) {
              return a.size() > b.size();
            });
  for (size_t i = 0; i < std::min<size_t>(5, communities.size()); ++i) {
    std::printf("  #%zu: %zu members, first ids:", i + 1,
                communities[i].size());
    for (size_t j = 0; j < std::min<size_t>(8, communities[i].size()); ++j) {
      std::printf(" %u", communities[i][j]);
    }
    std::printf(" ...\n");
  }

  // How many planted communities were recovered (contained in a result)?
  size_t recovered = 0;
  for (const auto& c : planted) {
    for (const auto& s : result->maximal) {
      if (std::includes(s.begin(), s.end(), c.begin(), c.end())) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("Planted communities fully recovered inside results: %zu/%zu\n",
              recovered, planted.size());

  const EngineReport& r = result->report;
  std::printf("\nEngine report:\n");
  std::printf("  tasks completed     : %lu (big: %lu, small: %lu)\n",
              static_cast<unsigned long>(r.counters.tasks_completed),
              static_cast<unsigned long>(r.counters.big_tasks),
              static_cast<unsigned long>(r.counters.small_tasks));
  std::printf("  spilled to disk     : %lu tasks in %lu files\n",
              static_cast<unsigned long>(r.counters.spilled_tasks),
              static_cast<unsigned long>(r.counters.spill_files));
  std::printf("  stolen across nodes : %lu tasks in %lu transfers\n",
              static_cast<unsigned long>(r.counters.stolen_tasks),
              static_cast<unsigned long>(r.counters.steal_events));
  std::printf("  remote cache        : %lu hits / %lu misses\n",
              static_cast<unsigned long>(r.counters.cache_hits),
              static_cast<unsigned long>(r.counters.cache_misses));
  std::printf("  mining vs. materialization: %.3f s vs %.3f s\n",
              r.total_mining_seconds, r.total_materialize_seconds);
  std::printf("  thread busy max/min ratio : %.2f\n", r.BusyImbalance());
  return 0;
}
