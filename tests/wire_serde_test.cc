// Wire-stability tests: the payload of every CommFabric message type and
// the frame format that carries them across process boundaries are pinned
// byte-for-byte. These bytes ARE the deployment contract between
// qcm_cluster, qcm_worker, and any future remote peer -- a change that
// flips one of the asserts below is a wire-protocol break and must bump
// kWireProtocolVersion.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "gthinker/comm.h"
#include "gthinker/engine_config.h"
#include "gthinker/metrics.h"
#include "mining/qc_task.h"
#include "net/job_spec.h"
#include "net/wire.h"
#include "util/serde.h"

namespace qcm {
namespace {

std::string Hex(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// kPullRequest payload: a U32Vector of wanted vertex ids.
// ---------------------------------------------------------------------------

TEST(MessagePayloadTest, PullRequestRoundTripAndExactBytes) {
  Encoder enc;
  enc.PutU32Vector({7, 260, 0xDEADBEEF});
  const std::string payload = enc.Release();

  // [count u64 LE][ids u32 LE each] -- 8 + 3*4 bytes.
  EXPECT_EQ(Hex(payload),
            "0300000000000000"   // count = 3
            "07000000"           // 7
            "04010000"           // 260
            "efbeadde");         // 0xDEADBEEF
  Decoder dec(payload);
  std::vector<uint32_t> ids;
  ASSERT_TRUE(dec.GetU32Vector(&ids).ok());
  EXPECT_EQ(ids, (std::vector<uint32_t>{7, 260, 0xDEADBEEF}));
  EXPECT_TRUE(dec.Done());
}

// ---------------------------------------------------------------------------
// kPullResponse payload: the requested ids followed by one adjacency list
// per id (PullBroker::ServeRequest / AcceptResponse framing).
// ---------------------------------------------------------------------------

TEST(MessagePayloadTest, PullResponseRoundTripAndExactBytes) {
  Encoder enc;
  enc.PutU32Vector({5, 9});
  const std::vector<uint32_t> adj5 = {1, 2};
  const std::vector<uint32_t> adj9 = {4};
  enc.PutU32Span(adj5.data(), adj5.size());
  enc.PutU32Span(adj9.data(), adj9.size());
  const std::string payload = enc.Release();

  EXPECT_EQ(Hex(payload),
            "0200000000000000"  // 2 ids
            "05000000"          // id 5
            "09000000"          // id 9
            "0200000000000000"  // |adj(5)| = 2
            "01000000"          // 1
            "02000000"          // 2
            "0100000000000000"  // |adj(9)| = 1
            "04000000");        // 4
  Decoder dec(payload);
  std::vector<uint32_t> ids, a5, a9;
  ASSERT_TRUE(dec.GetU32Vector(&ids).ok());
  ASSERT_TRUE(dec.GetU32Vector(&a5).ok());
  ASSERT_TRUE(dec.GetU32Vector(&a9).ok());
  EXPECT_EQ(ids, (std::vector<uint32_t>{5, 9}));
  EXPECT_EQ(a5, adj5);
  EXPECT_EQ(a9, adj9);
  EXPECT_TRUE(dec.Done());
}

// ---------------------------------------------------------------------------
// kStealBatch payload: task count + concatenated QCTask encodings. Tasks
// now cross process boundaries, so both the round trip and the exact
// bytes of a spawn-task encoding are pinned.
// ---------------------------------------------------------------------------

TEST(MessagePayloadTest, StealBatchRoundTrip) {
  Encoder enc;
  enc.PutU32(2);
  QCTask::MakeSpawn(11, 42)->Encode(&enc);
  QCTask::MakeSpawn(12, 7)->Encode(&enc);
  const std::string payload = enc.Release();

  auto count = StealBatchTaskCount(payload);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 2u);

  Decoder dec(payload);
  uint32_t n = 0;
  ASSERT_TRUE(dec.GetU32(&n).ok());
  ASSERT_EQ(n, 2u);
  auto t1 = QCTask::Decode(&dec);
  auto t2 = QCTask::Decode(&dec);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ((*t1)->root(), 11u);
  EXPECT_EQ((*t1)->SizeHint(), 42u);
  EXPECT_EQ((*t2)->root(), 12u);
  EXPECT_TRUE(dec.Done());
}

TEST(MessagePayloadTest, SpawnTaskEncodingExactBytes) {
  Encoder enc;
  QCTask::MakeSpawn(11, 42)->Encode(&enc);
  // [root u32][iteration u8][size_hint u64][|S| u64][|ext| u64]
  // [LocalGraph: vids / offsets / adjacency as empty U32Vectors].
  EXPECT_EQ(Hex(enc.buffer()),
            "0b000000"            // root = 11
            "01"                  // iteration = 1
            "2a00000000000000"    // size hint = 42
            "0000000000000000"    // S empty
            "0000000000000000"    // ext empty
            "0000000000000000"    // LocalGraph vids empty
            "0000000000000000"    // LocalGraph offsets empty
            "0000000000000000");  // LocalGraph adjacency empty
}

TEST(MessagePayloadTest, CorruptStealBatchIsRejected) {
  EXPECT_FALSE(StealBatchTaskCount("ab").ok());  // < 4 bytes
}

// ---------------------------------------------------------------------------
// Wire frames.
// ---------------------------------------------------------------------------

TEST(WireFrameTest, ExactBytes) {
  Frame frame;
  frame.kind = FrameKind::kData;
  frame.src = 2;
  frame.payload = "hi";
  const std::string bytes = EncodeFrame(frame);
  // magic "QCMW" | kind 0x0b | src 2 | len 2 | "hi" | fnv64("hi").
  const uint64_t sum = Fingerprint(std::string("hi"));
  Encoder trailer;
  trailer.PutU64(sum);
  EXPECT_EQ(Hex(bytes.substr(0, 13)),
            "51434d57"   // 'Q' 'C' 'M' 'W'
            "0b"         // FrameKind::kData
            "02000000"   // src rank 2
            "02000000")  // payload length 2
      << Hex(bytes);
  EXPECT_EQ(bytes.substr(13, 2), "hi");
  EXPECT_EQ(Hex(bytes.substr(15)), Hex(trailer.buffer()));
  EXPECT_EQ(bytes.size(), kWireHeaderBytes + 2 + kWireTrailerBytes);
}

/// The kData payload prefix the wire contract mandates: type byte, then
/// the sender timestamp as a little-endian u64, then the fabric body.
std::string DataMeta(uint8_t type, uint64_t send_ts_usec) {
  Encoder enc;
  enc.PutU8(type);
  enc.PutU64(send_ts_usec);
  return enc.Release();
}

TEST(WireFrameTest, DataFrameFastPathMatchesGenericEncoding) {
  // The kData encoder (the hot pull path) must be byte-identical to
  // EncodeFrame on the equivalent Frame -- payload
  // [type u8][send_ts u64 LE][body] -- including the streamed checksum.
  const std::string body = "adjacency-bytes\x00\x01\x02";
  Frame generic;
  generic.kind = FrameKind::kData;
  generic.src = 1;
  generic.payload = DataMeta(2, 0x123456789ABCDEFull) + body;
  EXPECT_EQ(Hex(EncodeDataFrame(1, 2, 0x123456789ABCDEFull, body)),
            Hex(EncodeFrame(generic)));
  EXPECT_EQ(Hex(EncodeDataFrame(3, 0, 0, "")),
            Hex(EncodeFrame(Frame{FrameKind::kData, 3, DataMeta(0, 0)})));
}

TEST(WireFrameTest, DataFramePartsConcatenateToTheFullEncoding) {
  // The scatter-gather parts {head, body, trailer} are the zero-copy
  // twin of EncodeDataFrame: concatenated they must be byte-identical,
  // with the head carrying exactly header + meta and the trailer exactly
  // the checksum.
  const std::string body = "pull-response-bytes";
  const uint64_t ts = 987654321;
  DataFrameParts parts = EncodeDataFrameParts(4, 1, ts, body);
  EXPECT_EQ(parts.head.size(), kWireHeaderBytes + kDataFrameMetaBytes);
  EXPECT_EQ(parts.trailer.size(), kWireTrailerBytes);
  EXPECT_EQ(Hex(parts.head + body + parts.trailer),
            Hex(EncodeDataFrame(4, 1, ts, body)));

  uint8_t type = 0;
  uint64_t out_ts = 0;
  std::string out_body;
  ASSERT_TRUE(SplitDataFramePayload(DataMeta(1, ts) + body, &type, &out_ts,
                                    &out_body)
                  .ok());
  EXPECT_EQ(type, 1);
  EXPECT_EQ(out_ts, ts);
  EXPECT_EQ(out_body, body);
  // A payload shorter than the meta prefix is corruption, not a read
  // past the end.
  EXPECT_EQ(SplitDataFramePayload("12345678", &type, &out_ts, &out_body)
                .code(),
            StatusCode::kCorruption);
}

TEST(WireFrameTest, CoalescedFlushDecodesToIdenticalFrameSequence) {
  // A coalesced flush is the byte concatenation of N individually
  // encoded frames; decoding the buffer sequentially must yield the
  // exact frames N individual writes would have delivered, each
  // checksum-verified.
  const std::vector<std::string> bodies = {"alpha", "", "gamma-123",
                                           std::string(300, 'z')};
  std::string flush;
  for (size_t k = 0; k < bodies.size(); ++k) {
    DataFrameParts parts = EncodeDataFrameParts(
        2, static_cast<uint8_t>(k % 3), 1000 + k, bodies[k]);
    flush += parts.head;
    flush += bodies[k];
    flush += parts.trailer;
  }

  size_t pos = 0;
  for (size_t k = 0; k < bodies.size(); ++k) {
    Frame frame;
    ASSERT_TRUE(DecodeFrame(flush, &pos, &frame).ok()) << "frame " << k;
    EXPECT_EQ(frame.kind, FrameKind::kData);
    EXPECT_EQ(frame.src, 2u);
    EXPECT_EQ(Hex(frame.payload),
              Hex(DataMeta(static_cast<uint8_t>(k % 3), 1000 + k) +
                  bodies[k]));
  }
  EXPECT_EQ(pos, flush.size());

  // Torn read mid-buffer: a reader that got only part of frame 3 sees
  // IOError ("need more bytes") on the partial frame -- never corruption,
  // never a phantom frame -- after cleanly decoding frames 1 and 2.
  const std::string torn = flush.substr(0, flush.size() - 100);
  pos = 0;
  Frame frame;
  ASSERT_TRUE(DecodeFrame(torn, &pos, &frame).ok());
  ASSERT_TRUE(DecodeFrame(torn, &pos, &frame).ok());
  ASSERT_TRUE(DecodeFrame(torn, &pos, &frame).ok());
  const size_t resume_pos = pos;
  EXPECT_EQ(DecodeFrame(torn, &pos, &frame).code(), StatusCode::kIOError);
  // The failed attempt must not advance the cursor: once the rest of the
  // bytes arrive, decoding resumes at the torn frame's header.
  EXPECT_EQ(pos, resume_pos);
  ASSERT_TRUE(DecodeFrame(flush, &pos, &frame).ok());
  EXPECT_EQ(pos, flush.size());
  EXPECT_EQ(frame.payload.substr(kDataFrameMetaBytes),
            std::string(300, 'z'));
}

TEST(WireFrameTest, RoundTripAllKinds) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(FrameKind::kStats); ++k) {
    Frame in;
    in.kind = static_cast<FrameKind>(k);
    in.src = 7;
    in.payload = std::string("payload-") + std::to_string(k);
    const std::string bytes = EncodeFrame(in);
    Frame out;
    size_t pos = 0;
    ASSERT_TRUE(DecodeFrame(bytes, &pos, &out).ok());
    EXPECT_EQ(pos, bytes.size());
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.src, in.src);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(WireFrameTest, CorruptionIsDetected) {
  Frame frame;
  frame.kind = FrameKind::kStatus;
  frame.src = 1;
  frame.payload = "abcdef";
  std::string bytes = EncodeFrame(frame);

  // Flipped payload byte -> checksum mismatch.
  std::string flipped = bytes;
  flipped[kWireHeaderBytes + 2] ^= 0x40;
  size_t pos = 0;
  Frame out;
  EXPECT_EQ(DecodeFrame(flipped, &pos, &out).code(),
            StatusCode::kCorruption);

  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  pos = 0;
  EXPECT_EQ(DecodeFrame(bad_magic, &pos, &out).code(),
            StatusCode::kCorruption);

  // Truncation -> IOError (caller should read more).
  pos = 0;
  EXPECT_EQ(DecodeFrame(bytes.substr(0, bytes.size() - 1), &pos, &out)
                .code(),
            StatusCode::kIOError);
}

TEST(WireFrameTest, ControlPayloadsRoundTrip) {
  WireRankStatus status;
  status.pending = -3;
  status.spawn_done = 1;
  status.sent_to = {0, 100, 7};
  status.processed_from = {0, 99, 8};
  status.pending_big = 12;
  status.delivery_latency_usec = 1500;
  WireRankStatus status2;
  ASSERT_TRUE(DecodeRankStatus(EncodeRankStatus(status), &status2).ok());
  EXPECT_EQ(status2.pending, -3);
  EXPECT_EQ(status2.spawn_done, 1);
  EXPECT_EQ(status2.sent_to, (std::vector<uint64_t>{0, 100, 7}));
  EXPECT_EQ(status2.processed_from, (std::vector<uint64_t>{0, 99, 8}));
  EXPECT_EQ(status2.pending_big, 12u);
  EXPECT_EQ(status2.delivery_latency_usec, 1500u);

  uint32_t version = 0, rank = 0, world = 0, receiver = 0, epoch = 0;
  uint64_t pid = 0, want = 0;
  std::string blob;
  ASSERT_TRUE(DecodeHello(EncodeHello(4242), &version, &pid).ok());
  EXPECT_EQ(version, kWireProtocolVersion);
  EXPECT_EQ(pid, 4242u);
  ASSERT_TRUE(DecodeAssign(EncodeAssign(2, 3, "cfg", 5), &rank, &world,
                           &blob, &epoch)
                  .ok());
  EXPECT_EQ(rank, 2u);
  EXPECT_EQ(world, 3u);
  EXPECT_EQ(blob, "cfg");
  EXPECT_EQ(epoch, 5u);
  ASSERT_TRUE(DecodeStealCmd(EncodeStealCmd(1, 16), &receiver, &want).ok());
  EXPECT_EQ(receiver, 1u);
  EXPECT_EQ(want, 16u);

  // Trailing garbage is corruption, not silence.
  EXPECT_EQ(DecodeRankStatus(EncodeRankStatus(status) + "x", &status2)
                .code(),
            StatusCode::kCorruption);
}

TEST(WireFrameTest, FaultTolerancePayloadsRoundTrip) {
  uint32_t epoch = 0;
  ASSERT_TRUE(DecodePeerHello(EncodePeerHello(3), &epoch).ok());
  EXPECT_EQ(epoch, 3u);

  uint64_t seq = 0;
  ASSERT_TRUE(DecodeHeartbeat(EncodeHeartbeat(0xFEEDull), &seq).ok());
  EXPECT_EQ(seq, 0xFEEDull);

  uint32_t rank = 0;
  ASSERT_TRUE(DecodePeerEvent(EncodePeerEvent(2, 4), &rank, &epoch).ok());
  EXPECT_EQ(rank, 2u);
  EXPECT_EQ(epoch, 4u);

  // Truncated payloads are corruption, never a read past the end.
  EXPECT_FALSE(DecodePeerEvent("abc", &rank, &epoch).ok());
  EXPECT_FALSE(DecodeHeartbeat("", &seq).ok());
}

TEST(WireFrameTest, StatsSampleRoundTrip) {
  WireStatsSample in;
  in.epoch = 2;
  in.ts_usec = 123456789;
  in.queue_depth = 17;
  in.inflight_bytes = 65536;
  in.cache_hits = 1000;
  in.cache_misses = 50;
  in.busy_compers = 3;
  in.tasks_completed = 4242;
  in.pending = -7;  // the detector's pending count can go negative

  WireStatsSample out;
  ASSERT_TRUE(DecodeStatsSample(EncodeStatsSample(in), &out).ok());
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.ts_usec, 123456789u);
  EXPECT_EQ(out.queue_depth, 17u);
  EXPECT_EQ(out.inflight_bytes, 65536u);
  EXPECT_EQ(out.cache_hits, 1000u);
  EXPECT_EQ(out.cache_misses, 50u);
  EXPECT_EQ(out.busy_compers, 3u);
  EXPECT_EQ(out.tasks_completed, 4242u);
  EXPECT_EQ(out.pending, -7);

  // Truncation and trailing garbage are corruption, never a silent
  // partial decode.
  const std::string bytes = EncodeStatsSample(in);
  EXPECT_FALSE(
      DecodeStatsSample(bytes.substr(0, bytes.size() - 1), &out).ok());
  EXPECT_FALSE(DecodeStatsSample(bytes + "x", &out).ok());
}

// ---------------------------------------------------------------------------
// Job spec / engine config / engine report round trips (the other blobs
// that cross process boundaries).
// ---------------------------------------------------------------------------

TEST(JobSpecTest, RoundTripPreservesEveryField) {
  ClusterJobSpec spec;
  spec.gen_planted = "n=100,communities=2";
  spec.seed = 77;
  spec.config.num_machines = 3;
  spec.config.threads_per_machine = 4;
  spec.config.tau_split = 55;
  spec.config.tau_time = 0.125;
  spec.config.mode = DecomposeMode::kSizeThreshold;
  spec.config.local_queue_capacity = 128;
  spec.config.global_queue_capacity = 512;
  spec.config.batch_size = 8;
  spec.config.spill_dir = "/tmp/x";
  spec.config.steal_period_sec = 0.5;
  spec.config.enable_stealing = false;
  spec.config.vertex_cache_capacity = 999;
  spec.config.max_pull_batch = 33;
  spec.config.cache_policy = CachePolicy::kTinyLFU;
  spec.config.net_latency_ticks = 2;
  spec.config.net_latency_sec = 0.001;
  spec.config.net_coalesce_bytes = 1400;
  spec.config.net_linger_usec = 100;
  spec.config.spawn_prefetch = true;
  spec.config.prefetch_limit = 21;
  spec.config.steal_rtt_reference_sec = 0.002;
  spec.config.steal_max_batch_factor = 5;
  spec.config.record_task_log = true;
  spec.config.checkpoint_dir = "/tmp/ckpt";
  spec.config.checkpoint_interval_sec = 0.125;
  spec.config.heartbeat_usec = 50000;
  spec.config.mining.gamma = 0.75;
  spec.config.mining.min_size = 6;
  spec.config.mining.use_lookahead = false;
  spec.config.mining.quick_compat = true;
  spec.config.mining.dense_threshold = 512;
  spec.config.trace_out = "/tmp/run_trace.json";
  spec.config.trace_buffer_kb = 128;
  spec.config.stats_interval_ms = 250;
  spec.config.graph_snapshot = "/tmp/graph.qcsr";
  spec.config.graph_page_size = 4096;
  spec.config.graph_memory_budget = 1 << 20;

  ClusterJobSpec out;
  ASSERT_TRUE(DecodeJobSpec(EncodeJobSpec(spec), &out).ok());
  EXPECT_EQ(out.gen_planted, spec.gen_planted);
  EXPECT_EQ(out.input, "");
  EXPECT_EQ(out.seed, 77u);
  EXPECT_EQ(out.config.num_machines, 3);
  EXPECT_EQ(out.config.threads_per_machine, 4);
  EXPECT_EQ(out.config.tau_split, 55u);
  EXPECT_EQ(out.config.tau_time, 0.125);
  EXPECT_EQ(out.config.mode, DecomposeMode::kSizeThreshold);
  EXPECT_EQ(out.config.local_queue_capacity, 128u);
  EXPECT_EQ(out.config.global_queue_capacity, 512u);
  EXPECT_EQ(out.config.batch_size, 8u);
  EXPECT_EQ(out.config.spill_dir, "/tmp/x");
  EXPECT_EQ(out.config.steal_period_sec, 0.5);
  EXPECT_FALSE(out.config.enable_stealing);
  EXPECT_EQ(out.config.vertex_cache_capacity, 999u);
  EXPECT_EQ(out.config.max_pull_batch, 33u);
  EXPECT_EQ(out.config.cache_policy, CachePolicy::kTinyLFU);
  EXPECT_EQ(out.config.net_latency_ticks, 2u);
  EXPECT_EQ(out.config.net_latency_sec, 0.001);
  EXPECT_EQ(out.config.net_coalesce_bytes, 1400);
  EXPECT_EQ(out.config.net_linger_usec, 100);
  EXPECT_TRUE(out.config.spawn_prefetch);
  EXPECT_EQ(out.config.prefetch_limit, 21u);
  EXPECT_EQ(out.config.steal_rtt_reference_sec, 0.002);
  EXPECT_EQ(out.config.steal_max_batch_factor, 5u);
  EXPECT_TRUE(out.config.record_task_log);
  EXPECT_EQ(out.config.checkpoint_dir, "/tmp/ckpt");
  EXPECT_EQ(out.config.checkpoint_interval_sec, 0.125);
  EXPECT_EQ(out.config.heartbeat_usec, 50000);
  EXPECT_EQ(out.config.mining.gamma, 0.75);
  EXPECT_EQ(out.config.mining.min_size, 6u);
  EXPECT_FALSE(out.config.mining.use_lookahead);
  EXPECT_TRUE(out.config.mining.quick_compat);
  EXPECT_EQ(out.config.mining.dense_threshold, 512);
  EXPECT_EQ(out.config.trace_out, "/tmp/run_trace.json");
  EXPECT_EQ(out.config.trace_buffer_kb, 128);
  EXPECT_EQ(out.config.stats_interval_ms, 250);
  EXPECT_EQ(out.config.graph_snapshot, "/tmp/graph.qcsr");
  EXPECT_EQ(out.config.graph_page_size, 4096);
  EXPECT_EQ(out.config.graph_memory_budget, 1 << 20);
}

TEST(JobSpecTest, RejectsAmbiguousGraphSource) {
  ClusterJobSpec spec;  // neither input nor gen_planted
  ClusterJobSpec out;
  EXPECT_FALSE(DecodeJobSpec(EncodeJobSpec(spec), &out).ok());
}

TEST(EngineReportSerdeTest, RoundTripAndMerge) {
  EngineReport a;
  a.wall_seconds = 1.5;
  a.peak_rss_bytes = 1000;
  a.counters.tasks_completed = 10;
  a.counters.msg_sent[0] = 4;
  a.counters.msg_inflight_bytes_peak = 77;
  a.counters.msg_latency_hist[2] = 3;
  a.counters.net_flushes = 6;
  a.counters.net_flush_frames = 24;
  a.counters.net_flush_bytes = 4096;
  a.counters.net_flush_size = 4;
  a.counters.net_flush_linger = 2;
  a.counters.net_flush_park_usec = 350;
  a.counters.net_flush_bytes_hist[1] = 6;
  a.mining.nodes_explored = 42;
  a.threads.push_back(ThreadSummary{.machine = 0,
                                    .thread = 1,
                                    .busy_seconds = 0.5,
                                    .idle_seconds = 0.1,
                                    .mining_seconds = 0.4,
                                    .materialize_seconds = 0.05,
                                    .tasks_processed = 9});
  a.results.push_back({1, 2, 3});
  a.results.push_back({4, 5});

  Encoder enc;
  EncodeEngineReport(a, &enc);
  const std::string blob = enc.Release();
  Decoder dec(blob);
  EngineReport b;
  ASSERT_TRUE(DecodeEngineReport(&dec, &b).ok());
  EXPECT_TRUE(dec.Done());
  EXPECT_EQ(b.wall_seconds, 1.5);
  EXPECT_EQ(b.peak_rss_bytes, 1000u);
  EXPECT_EQ(b.counters.tasks_completed, 10u);
  EXPECT_EQ(b.counters.msg_sent[0], 4u);
  EXPECT_EQ(b.counters.msg_inflight_bytes_peak, 77u);
  EXPECT_EQ(b.counters.msg_latency_hist[2], 3u);
  EXPECT_EQ(b.counters.net_flushes, 6u);
  EXPECT_EQ(b.counters.net_flush_frames, 24u);
  EXPECT_EQ(b.counters.net_flush_bytes, 4096u);
  EXPECT_EQ(b.counters.net_flush_size, 4u);
  EXPECT_EQ(b.counters.net_flush_linger, 2u);
  EXPECT_EQ(b.counters.net_flush_park_usec, 350u);
  EXPECT_EQ(b.counters.net_flush_bytes_hist[1], 6u);
  EXPECT_EQ(b.mining.nodes_explored, 42u);
  ASSERT_EQ(b.threads.size(), 1u);
  EXPECT_EQ(b.threads[0].tasks_processed, 9u);
  ASSERT_EQ(b.results.size(), 2u);
  EXPECT_EQ(b.results[0], (VertexSet{1, 2, 3}));

  EngineReport c;
  c.wall_seconds = 0.5;
  c.counters.tasks_completed = 5;
  c.counters.msg_inflight_bytes_peak = 200;
  c.counters.net_flushes = 4;
  c.counters.net_flush_bytes_hist[1] = 1;
  c.results.push_back({6});
  EngineReport merged = MergeEngineReports({b, c});
  EXPECT_EQ(merged.wall_seconds, 1.5);  // max
  EXPECT_EQ(merged.counters.tasks_completed, 15u);  // sum
  EXPECT_EQ(merged.counters.msg_inflight_bytes_peak, 200u);  // peak: max
  EXPECT_EQ(merged.counters.net_flushes, 10u);  // sum across ranks
  EXPECT_EQ(merged.counters.net_flush_bytes_hist[1], 7u);
  EXPECT_EQ(merged.results.size(), 3u);
  EXPECT_EQ(merged.threads.size(), 1u);

  // Truncated blobs must be rejected, never read past the end.
  Decoder short_dec(blob.data(), blob.size() - 3);
  EngineReport d;
  EXPECT_FALSE(DecodeEngineReport(&short_dec, &d).ok());
}

}  // namespace
}  // namespace qcm
