// Regression tests for SNAP edge-list I/O: round-trip fidelity, comment
// and blank-line tolerance, and -- the hardening contract -- a descriptive
// file:line Corruption status for every malformed-input shape instead of
// silently skipping or misreading lines.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/edge_io.h"

namespace qcm {
namespace {

std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return path;
}

TEST(EdgeIoTest, LoadsEdgesWithCommentsAndBlankLines) {
  const std::string path = WriteTempFile("edges_ok.txt",
                                         "# a SNAP-style comment\n"
                                         "% a matrix-market comment\n"
                                         "\n"
                                         "10 20\n"
                                         "  20\t30\n"
                                         "10 30   \n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.NumVertices(), 3u);
  EXPECT_EQ(loaded->graph.NumEdges(), 3u);
  // External ids compacted by sorted rank.
  EXPECT_EQ(loaded->original_ids,
            (std::vector<uint64_t>{10, 20, 30}));
}

TEST(EdgeIoTest, SaveLoadRoundTrip) {
  const std::string in = WriteTempFile("edges_rt.txt", "0 1\n1 2\n0 2\n");
  auto loaded = LoadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  const std::string out = testing::TempDir() + "/edges_rt_out.txt";
  ASSERT_TRUE(SaveEdgeList(loaded->graph, out).ok());
  auto reloaded = LoadEdgeList(out);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->graph.NumVertices(), loaded->graph.NumVertices());
  EXPECT_EQ(reloaded->graph.NumEdges(), loaded->graph.NumEdges());
  for (VertexId v = 0; v < loaded->graph.NumVertices(); ++v) {
    auto a = loaded->graph.Neighbors(v);
    auto b = reloaded->graph.Neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "v=" << v;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "v=" << v;
  }
}

TEST(EdgeIoTest, MissingFileIsIOError) {
  auto loaded = LoadEdgeList(testing::TempDir() + "/no_such_edges.txt");
  EXPECT_FALSE(loaded.ok());
}

TEST(EdgeIoTest, EmptyFileIsAnEmptyGraph) {
  const std::string path = WriteTempFile("edges_empty.txt", "# nothing\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.NumVertices(), 0u);
  EXPECT_EQ(loaded->graph.NumEdges(), 0u);
}

struct CorruptCase {
  const char* name;
  const char* content;
  const char* expected_location;  // "file:line" suffix the status must name
};

class EdgeIoCorruptInput : public testing::TestWithParam<CorruptCase> {};

TEST_P(EdgeIoCorruptInput, FailsWithFileAndLine) {
  const CorruptCase& c = GetParam();
  const std::string path =
      WriteTempFile(std::string("edges_") + c.name + ".txt", c.content);
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok()) << c.name << ": corrupt input was accepted";
  const std::string message = loaded.status().ToString();
  EXPECT_NE(message.find(path + ":" + c.expected_location),
            std::string::npos)
      << c.name << ": status lacks file:line -- " << message;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EdgeIoCorruptInput,
    testing::Values(
        CorruptCase{"letters", "1 2\nfoo bar\n", "2"},
        CorruptCase{"single_field", "1 2\n3\n1 4\n", "2"},
        CorruptCase{"negative_id", "1 2\n-3 4\n", "2"},
        CorruptCase{"trailing_garbage", "1 2\n3 4 extra\n", "2"},
        CorruptCase{"float_id", "1 2\n3.5 4\n", "2"},
        CorruptCase{"overflow", "1 2\n99999999999999999999 4\n", "2"},
        CorruptCase{"first_line", "oops\n1 2\n", "1"}),
    [](const testing::TestParamInfo<CorruptCase>& info) {
      return info.param.name;
    });

TEST(EdgeIoTest, OverlongLineIsRejected) {
  std::string long_line(2000, '1');  // one huge digit run, no newline room
  long_line += " 2\n";
  const std::string path =
      WriteTempFile("edges_long.txt", "1 2\n" + long_line);
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find(":2:"), std::string::npos)
      << loaded.status().ToString();
}

}  // namespace
}  // namespace qcm
