// Unit tests for graph/: CSR construction, k-core peeling, edge I/O, stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/kcore.h"
#include "graph/stats.h"

namespace qcm {
namespace {

Graph MakePath(uint32_t n) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return std::move(Graph::FromEdges(n, std::move(edges))).value();
}

Graph MakeClique(uint32_t n) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return std::move(Graph::FromEdges(n, std::move(edges))).value();
}

TEST(GraphTest, EmptyGraph) {
  auto g = Graph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 0u);
  EXPECT_EQ(g->NumEdges(), 0u);
  EXPECT_EQ(g->MaxDegree(), 0u);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  auto g = Graph::FromEdges(3, {{0, 3}});
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, DropsSelfLoopsAndDuplicates) {
  auto g = Graph::FromEdges(4, {{0, 1}, {1, 0}, {2, 2}, {0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 2u);
  EXPECT_EQ(g->Degree(0), 1u);
  EXPECT_EQ(g->Degree(1), 2u);
  EXPECT_EQ(g->Degree(2), 1u);
  EXPECT_EQ(g->Degree(3), 0u);
}

TEST(GraphTest, AdjacencySortedAndSymmetric) {
  auto g = Graph::FromEdges(5, {{3, 1}, {3, 0}, {3, 4}, {3, 2}, {1, 4}});
  ASSERT_TRUE(g.ok());
  auto nbrs = g->Neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
  for (VertexId u = 0; u < g->NumVertices(); ++u) {
    for (VertexId v : g->Neighbors(u)) {
      EXPECT_TRUE(g->HasEdge(v, u)) << u << "-" << v;
    }
  }
}

TEST(GraphTest, HasEdge) {
  Graph g = MakePath(4);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_FALSE(g.HasEdge(0, 99));
}

TEST(GraphTest, CliqueDegrees) {
  Graph g = MakeClique(6);
  EXPECT_EQ(g.NumEdges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 5u);
  EXPECT_EQ(g.MaxDegree(), 5u);
}

TEST(KCoreTest, PathCoreNumbers) {
  Graph g = MakePath(5);
  auto core = CoreDecomposition(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(core[v], 1u) << v;
}

TEST(KCoreTest, CliqueCoreNumbers) {
  Graph g = MakeClique(5);
  auto core = CoreDecomposition(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(core[v], 4u);
}

TEST(KCoreTest, CliqueWithPendant) {
  // Clique 0-3 plus pendant 4 attached to 0.
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = i + 1; j < 4; ++j) edges.emplace_back(i, j);
  }
  edges.emplace_back(0, 4);
  auto g = std::move(Graph::FromEdges(5, std::move(edges))).value();
  auto core = CoreDecomposition(g);
  EXPECT_EQ(core[4], 1u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(core[v], 3u);
  auto mask = KCoreMask(g, 3);
  EXPECT_EQ(KCoreSize(g, 3), 4u);
  EXPECT_FALSE(mask[4]);
}

TEST(KCoreTest, PeelingCascades) {
  // A "tail" 0-1-2 hanging off a triangle 2,3,4: 2-core is the triangle.
  auto g = std::move(Graph::FromEdges(
                         5, {{0, 1}, {1, 2}, {2, 3}, {2, 4}, {3, 4}}))
               .value();
  EXPECT_EQ(KCoreSize(g, 2), 3u);
  auto mask = KCoreMask(g, 2);
  EXPECT_FALSE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[2]);
  EXPECT_TRUE(mask[3]);
  EXPECT_TRUE(mask[4]);
}

TEST(KCoreTest, MatchesBruteForceOnRandomGraphs) {
  // Property: the k-core mask equals iterated naive peeling.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto g = std::move(GenErdosRenyi(60, 150, seed)).value();
    for (uint32_t k = 1; k <= 5; ++k) {
      auto mask = KCoreMask(g, k);
      // Naive peeling.
      std::vector<uint8_t> alive(g.NumVertices(), 1);
      bool changed = true;
      while (changed) {
        changed = false;
        for (VertexId v = 0; v < g.NumVertices(); ++v) {
          if (!alive[v]) continue;
          uint32_t d = 0;
          for (VertexId u : g.Neighbors(v)) d += alive[u];
          if (d < k) {
            alive[v] = 0;
            changed = true;
          }
        }
      }
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        EXPECT_EQ(mask[v] != 0, alive[v] != 0)
            << "seed=" << seed << " k=" << k << " v=" << v;
      }
    }
  }
}

TEST(KCoreTest, CoreMonotoneInK) {
  auto g = std::move(GenBarabasiAlbert(200, 3, 5)).value();
  uint64_t prev = g.NumVertices();
  for (uint32_t k = 1; k <= 8; ++k) {
    uint64_t size = KCoreSize(g, k);
    EXPECT_LE(size, prev);
    prev = size;
  }
}

TEST(EdgeIoTest, RoundTrip) {
  auto g = std::move(GenErdosRenyi(50, 100, 42)).value();
  const std::string path = testing::TempDir() + "/qcm_edgeio_test.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const Graph& h = loaded->graph;
  // Isolated vertices are not representable in edge lists; compare edges.
  ASSERT_EQ(h.NumEdges(), g.NumEdges());
  for (VertexId u = 0; u < h.NumVertices(); ++u) {
    for (VertexId v : h.Neighbors(u)) {
      VertexId gu = static_cast<VertexId>(loaded->original_ids[u]);
      VertexId gv = static_cast<VertexId>(loaded->original_ids[v]);
      EXPECT_TRUE(g.HasEdge(gu, gv));
    }
  }
  std::remove(path.c_str());
}

TEST(EdgeIoTest, ParsesCommentsAndCompactsIds) {
  const std::string path = testing::TempDir() + "/qcm_edgeio_comments.txt";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("# SNAP header\n% konect header\n1000 7\n7 42\n\n42 1000\n", f);
  fclose(f);
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.NumVertices(), 3u);
  EXPECT_EQ(loaded->graph.NumEdges(), 3u);
  EXPECT_EQ(loaded->original_ids, (std::vector<uint64_t>{7, 42, 1000}));
  std::remove(path.c_str());
}

TEST(EdgeIoTest, MissingFileIsIOError) {
  auto loaded = LoadEdgeList("/nonexistent/path/graph.txt");
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(EdgeIoTest, MalformedLineIsCorruption) {
  const std::string path = testing::TempDir() + "/qcm_edgeio_bad.txt";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("1 2\nnot an edge\n", f);
  fclose(f);
  auto loaded = LoadEdgeList(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StatsTest, CliqueStats) {
  Graph g = MakeClique(10);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 10u);
  EXPECT_EQ(s.num_edges, 45u);
  EXPECT_EQ(s.min_degree, 9u);
  EXPECT_EQ(s.max_degree, 9u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 9.0);
  EXPECT_DOUBLE_EQ(s.density, 1.0);
}

TEST(StatsTest, EmptyGraphStats) {
  auto g = std::move(Graph::FromEdges(0, {})).value();
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_edges, 0u);
}

}  // namespace
}  // namespace qcm
